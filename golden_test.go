package relroute_test

// Golden-output tests pinning the simulator's observable behaviour across
// the allocation-free core rewrite: every experiment table must be
// byte-identical to the output captured from the pre-optimization engine
// (commit "Capture pre-optimization golden experiment outputs"), at both
// one worker and eight. Pooling, arena-backed event slots, pre-bound MAC
// callbacks, and slice-backed indices must not change a single draw of any
// random stream or the order of any event — these files prove it.
//
// To regenerate after an INTENTIONAL behaviour change (never for a pure
// optimization), run:
//
//	go test -run TestGoldenOutputs -update-golden
//
// and explain the diff in the commit message.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/vanetlab/relroute"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are full simulations; skipped in -short")
	}
	for _, id := range []string{"fig2", "abl-storm", "table1", "abl-disaster", "chaos"} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("%s/w%d", id, workers)
			t.Run(name, func(t *testing.T) {
				tab, err := relroute.RunExperiment(id, relroute.ExperimentConfig{
					Seed: 1, Quick: true, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := tab.String()
				path := filepath.Join("testdata", fmt.Sprintf("golden_%s_w%d.txt", id, workers))
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
				}
				if got != string(want) {
					t.Fatalf("experiment %s output diverged from the golden capture.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
				}
			})
		}
	}
}
