// Command vanetsim runs one VANET routing simulation and prints the
// metrics summary.
//
// Usage:
//
//	vanetsim -proto TBP-SS -vehicles 60 -duration 60 -seed 1
//	vanetsim -proto DRR -rsus 3 -vehicles 12 -length 3000
//	vanetsim -proto TBP-SS -trace city.fcd.xml        # replay a SUMO FCD trace
//	vanetsim -proto Greedy -scenario city-rush        # named scenario preset
//	vanetsim -list
//	vanetsim -list-scenarios
//
// Crash safety: -checkpoint snapshots the run periodically, -stop-at
// stops it early with a final snapshot, and -resume continues from a
// snapshot — byte-identical to the uninterrupted run, at any -shards
// value. A first Ctrl-C interrupts the run gracefully (leaving the last
// boundary snapshot resumable); a second hard-exits.
//
//	vanetsim -proto TBP-SS -checkpoint run.ckpt -checkpoint-every 10
//	vanetsim -proto TBP-SS -checkpoint run.ckpt -stop-at 30
//	vanetsim -resume run.ckpt -checkpoint run.ckpt
//	vanetsim -resume run.ckpt -shards 4               # restore sharded
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/vanetlab/relroute"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vanetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vanetsim", flag.ContinueOnError)
	var (
		proto     = fs.String("proto", "TBP-SS", "routing protocol (see -list)")
		list      = fs.Bool("list", false, "list available protocols and exit")
		listScen  = fs.Bool("list-scenarios", false, "list named scenarios and exit")
		scen      = fs.String("scenario", "", "named scenario preset (see -list-scenarios)")
		trace     = fs.String("trace", "", "replay this SUMO FCD trace file instead of synthetic mobility")
		arrival   = fs.Float64("arrival", 0, "open-world Poisson arrival rate in vehicles/s (0 = closed world)")
		lifetime  = fs.Float64("lifetime", 0, "mean vehicle lifetime in seconds for open-world runs (0 = stay to the end)")
		seed      = fs.Int64("seed", 1, "random seed (same seed => identical run)")
		vehicles  = fs.Int("vehicles", 60, "number of vehicles")
		length    = fs.Float64("length", 2000, "highway length in meters")
		city      = fs.Bool("city", false, "use a Manhattan grid instead of a highway")
		speed     = fs.Float64("speed", 30, "mean desired speed in m/s")
		speedStd  = fs.Float64("speedstd", 6, "desired speed standard deviation in m/s")
		duration  = fs.Float64("duration", 60, "simulated seconds")
		flows     = fs.Int("flows", 4, "number of CBR flows")
		packets   = fs.Int("packets", 30, "packets per flow")
		rsus      = fs.Int("rsus", 0, "road-side units (DRR protocol)")
		buses     = fs.Int("buses", 0, "ferry buses (Bus protocol)")
		shadowing = fs.Bool("shadowing", false, "log-normal shadowing channel instead of unit disk")
		rng       = fs.Float64("range", 250, "nominal radio range in meters")
		tickets   = fs.Int("tickets", 3, "TBP-SS ticket budget")
		estimator = fs.String("estimator", "", "reliability-plane link estimator (see -list-estimators; empty = composite)")
		listEst   = fs.Bool("list-estimators", false, "list link estimators and exit")
		faults    = fs.String("faults", "", "chaos profile injecting failures (see -list-faults; empty = none)")
		listFault = fs.Bool("list-faults", false, "list fault profiles and exit")
		shards    = fs.Int("shards", 1, "intra-run worker shards for the step loop (output is identical for any value)")
		ckptPath  = fs.String("checkpoint", "", "snapshot the run to this file at every checkpoint boundary")
		ckptEvery = fs.Float64("checkpoint-every", 10, "simulated seconds between checkpoint boundaries")
		stopAt    = fs.Float64("stop-at", 0, "stop at this simulated time after writing a final checkpoint (0 = run to the end)")
		resume    = fs.String("resume", "", "resume from this checkpoint file instead of starting a new run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range relroute.Protocols() {
			fmt.Println(p)
		}
		return nil
	}
	if *listScen {
		descs := relroute.ScenarioDescriptions()
		for _, name := range relroute.Scenarios() {
			fmt.Printf("%-14s %s\n", name, descs[name])
		}
		return nil
	}
	if *listEst {
		for _, name := range relroute.Estimators() {
			fmt.Println(name)
		}
		return nil
	}
	if *listFault {
		descs := relroute.FaultProfileDescriptions()
		for _, name := range relroute.FaultProfiles() {
			fmt.Printf("%-18s %s\n", name, descs[name])
		}
		return nil
	}
	opts := relroute.Options{
		Seed: *seed, Vehicles: *vehicles, HighwayLength: *length,
		SpeedMean: *speed, SpeedStd: *speedStd, Duration: *duration,
		Flows: *flows, FlowPackets: *packets,
		RSUs: *rsus, Buses: *buses, Shadowing: *shadowing, Range: *rng,
		TicketBudget: *tickets, Estimator: *estimator, Faults: *faults,
		Scenario: *scen, TracePath: *trace,
		ArrivalRate: *arrival, MeanLifetime: *lifetime,
		Shards: *shards,
	}
	if *city {
		opts.Kind = relroute.CityKind
	}
	if *stopAt > 0 && *ckptPath == "" {
		return fmt.Errorf("-stop-at needs -checkpoint (there is nowhere to write the final snapshot)")
	}

	var sc *relroute.Scenario
	if *resume != "" {
		snap, err := relroute.ReadCheckpoint(*resume)
		if err != nil {
			return err
		}
		// The run's identity comes from the snapshot; -shards is the one
		// flag that still applies, because shard count is not part of it.
		shardsSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsSet = true
			}
		})
		if shardsSet {
			snap.Opts.Shards = *shards
		}
		fmt.Fprintf(os.Stderr, "vanetsim: resuming %s/%s from t=%.2fs of %.2fs\n",
			snap.Protocol, snap.Name, snap.T, snap.Duration)
		if sc, err = relroute.RestoreCheckpoint(snap); err != nil {
			return err
		}
	} else {
		var err error
		if sc, err = relroute.BuildScenario(*proto, opts); err != nil {
			return err
		}
	}

	// First Ctrl-C interrupts the engine at the next event boundary — the
	// run unwinds cleanly and the last checkpoint stays resumable. A
	// second Ctrl-C hard-exits.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vanetsim: interrupt — stopping at the next event boundary (interrupt again to hard-exit)")
		sc.World.Engine().Interrupt()
		<-sigs
		os.Exit(130)
	}()

	sum, done, err := relroute.RunCheckpointed(sc, relroute.CheckpointPolicy{
		Path:   *ckptPath,
		Every:  *ckptEvery,
		StopAt: *stopAt,
	})
	if err != nil {
		if errors.Is(err, relroute.ErrInterrupted) && *ckptPath != "" {
			if snap, rerr := relroute.ReadCheckpoint(*ckptPath); rerr == nil {
				fmt.Fprintf(os.Stderr, "vanetsim: interrupted; last checkpoint at t=%.2fs of %.2fs — resumable with -resume %s\n",
					snap.T, snap.Duration, *ckptPath)
			}
		}
		return err
	}
	if !done {
		fmt.Fprintf(os.Stderr, "vanetsim: stopped at t=%.2fs as requested; resume with -resume %s\n",
			*stopAt, *ckptPath)
		return nil
	}
	fmt.Printf("protocol   %s\n", sum.Protocol)
	fmt.Printf("scenario   %s\n", sum.Scenario)
	fmt.Printf("sent       %d\n", sum.DataSent)
	fmt.Printf("delivered  %d\n", sum.DataDelivered)
	fmt.Printf("PDR        %.3f\n", sum.PDR)
	fmt.Printf("delay      mean %.4fs  p95 %.4fs\n", sum.MeanDelay, sum.P95Delay)
	fmt.Printf("hops       %.2f\n", sum.MeanHops)
	fmt.Printf("overhead   %.1f control tx per delivered packet\n", sum.Overhead)
	fmt.Printf("collisions %.2f%% of receptions\n", 100*sum.CollisionRate)
	fmt.Printf("routes     %d discoveries, %d breaks, %d repairs\n",
		sum.Discoveries, sum.Breaks, sum.Repairs)
	if sum.Joins > 0 || sum.Leaves > 0 {
		fmt.Printf("membership %d joined, %d left mid-run\n", sum.Joins, sum.Leaves)
	}
	if sum.PathLifetime > 0 {
		fmt.Printf("path life  %.1fs predicted mean\n", sum.PathLifetime)
	}
	if *faults != "" {
		fmt.Printf("faults     %s: %d crashed, %d recovered\n", *faults, sum.Crashes, sum.Recoveries)
		fmt.Printf("fault PDR  %.3f (%d/%d in-window)\n", sum.FaultPDR, sum.FaultDelivered, sum.FaultSent)
		if sum.TimeToReroute > 0 {
			fmt.Printf("reroute    %.3fs mean crash-to-delivery\n", sum.TimeToReroute)
		}
		if sum.RecoveryLatency > 0 {
			fmt.Printf("recovery   %.3fs mean rejoin-to-heard\n", sum.RecoveryLatency)
		}
	}
	return nil
}
