package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSimulation(t *testing.T) {
	err := run([]string{
		"-proto", "Greedy", "-vehicles", "20", "-duration", "10",
		"-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCityTopology(t *testing.T) {
	err := run([]string{
		"-proto", "AODV", "-city", "-vehicles", "25", "-duration", "10",
		"-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-proto", "Bogus", "-duration", "5"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
