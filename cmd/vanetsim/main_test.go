package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSimulation(t *testing.T) {
	err := run([]string{
		"-proto", "Greedy", "-vehicles", "20", "-duration", "10",
		"-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCityTopology(t *testing.T) {
	err := run([]string{
		"-proto", "AODV", "-city", "-vehicles", "25", "-duration", "10",
		"-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-proto", "Bogus", "-duration", "5"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	err := run([]string{
		"-proto", "TBP-SS", "-trace", "../../testdata/fixture_5veh.fcd.xml",
		"-duration", "15", "-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingTraceFile(t *testing.T) {
	if err := run([]string{"-trace", "no-such-file.xml", "-duration", "5"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestRunNamedScenario(t *testing.T) {
	err := run([]string{
		"-proto", "Greedy", "-scenario", "city-rush",
		"-vehicles", "16", "-duration", "12", "-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "atlantis", "-duration", "5"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunOpenWorldFlags(t *testing.T) {
	err := run([]string{
		"-proto", "Greedy", "-vehicles", "14", "-duration", "12",
		"-arrival", "1", "-lifetime", "6", "-flows", "2", "-packets", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}
