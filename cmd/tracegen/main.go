// Command tracegen generates synthetic vehicle traces in SUMO's
// floating-car-data (FCD) XML format by running the built-in mobility
// models, standing in for real SUMO exports in offline environments.
//
// Usage:
//
//	tracegen -vehicles 60 -duration 120 -out highway.fcd.xml
//	tracegen -city -vehicles 100 -out city.fcd.xml
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/roadnet"
	"github.com/vanetlab/relroute/internal/traces"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "-", "output file (- for stdout)")
		seed     = fs.Int64("seed", 1, "random seed")
		vehicles = fs.Int("vehicles", 60, "number of vehicles")
		buses    = fs.Int("buses", 0, "number of ferry buses")
		length   = fs.Float64("length", 2000, "highway length in meters")
		city     = fs.Bool("city", false, "Manhattan grid instead of highway")
		gridN    = fs.Int("grid", 4, "grid junctions per side (with -city)")
		speed    = fs.Float64("speed", 30, "mean desired speed in m/s")
		speedStd = fs.Float64("speedstd", 6, "speed standard deviation in m/s")
		duration = fs.Float64("duration", 60, "trace length in seconds")
		interval = fs.Float64("interval", 1.0, "sampling interval in seconds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var model *mobility.RoadModel
	if *city {
		net, err := roadnet.Grid(*gridN, *gridN, 400, 1, 14)
		if err != nil {
			return err
		}
		model = mobility.NewRoadModel(net, rng, mobility.ContinueRandom)
		mobility.Populate(model, rng, mobility.PopulateOptions{
			Count: *vehicles, SpeedMean: *speed, SpeedStd: *speedStd,
		})
	} else {
		var err error
		model, err = mobility.NewHighwayModel(rng, *vehicles, *length, *speed, *speedStd)
		if err != nil {
			return err
		}
	}
	if *buses > 0 {
		net := model.Network()
		var loop []roadnet.SegmentID
		for i := 0; i < net.Segments(); i++ {
			loop = append(loop, roadnet.SegmentID(i))
		}
		mobility.AddBusLine(model, loop, *buses, *speed*0.7)
	}
	tracks := mobility.Record(model, *interval, *duration)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := traces.Write(w, tracks); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d tracks over %.0fs to %s\n",
			len(tracks), *duration, *out)
	}
	return nil
}
