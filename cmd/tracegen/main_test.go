package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/vanetlab/relroute/internal/traces"
)

func TestGenerateAndParseBack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.fcd.xml")
	err := run([]string{
		"-vehicles", "10", "-duration", "5", "-interval", "0.5",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tracks, err := traces.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 10 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	if len(tracks[0].Waypoints) != 11 {
		t.Fatalf("waypoints = %d, want 0..5s at 0.5s", len(tracks[0].Waypoints))
	}
}

func TestGenerateCityWithBuses(t *testing.T) {
	out := filepath.Join(t.TempDir(), "city.fcd.xml")
	err := run([]string{
		"-city", "-grid", "3", "-vehicles", "8", "-buses", "2",
		"-duration", "4", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tracks, err := traces.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 10 {
		t.Fatalf("tracks = %d (8 cars + 2 buses)", len(tracks))
	}
	buses := 0
	for _, tr := range tracks {
		if tr.Class == 2 { // mobility.Bus
			buses++
		}
	}
	if buses != 2 {
		t.Fatalf("bus tracks = %d", buses)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
