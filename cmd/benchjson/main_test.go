package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/vanetlab/relroute
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScaleVehicles/200-8         	       5	  72451549 ns/op	16805897 B/op	  184829 allocs/op
BenchmarkEngine-8                    	       5	     41467 ns/op	   24009 B/op	     500 allocs/op
BenchmarkProtocolHighway/Greedy-8    	       1	  12345678 ns/op	         0.82 PDR
PASS
ok  	github.com/vanetlab/relroute	1.298s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("environment not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "ScaleVehicles/200" {
		t.Fatalf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 5 || b.NsPerOp != 72451549 || b.BytesPerOp != 16805897 || b.AllocsPerOp != 184829 {
		t.Fatalf("values not parsed: %+v", b)
	}
	if got := rep.Benchmarks[2].Metrics["PDR"]; got != 0.82 {
		t.Fatalf("custom metric PDR = %v, want 0.82", got)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\nnonsense line\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(rep.Benchmarks))
	}
}

func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", &Report{Benchmarks: []Result{
		{Name: "ScaleVehicles/200", NsPerOp: 100},
		{Name: "Engine", NsPerOp: 50},
		{Name: "Retired", NsPerOp: 10},
	}})
	within := writeReport(t, dir, "within.json", &Report{Benchmarks: []Result{
		{Name: "ScaleVehicles/200", NsPerOp: 110},  // +10%: inside the gate
		{Name: "Engine", NsPerOp: 40},              // improvement
		{Name: "ScaleVehicles/1000", NsPerOp: 999}, // new point, no baseline
	}})
	regressed, err := runCompare(old, within, 0.15, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("+10% flagged as regression at threshold 0.15")
	}

	bad := writeReport(t, dir, "bad.json", &Report{Benchmarks: []Result{
		{Name: "ScaleVehicles/200", NsPerOp: 120}, // +20%
		{Name: "Engine", NsPerOp: 50},
	}})
	regressed, err = runCompare(old, bad, 0.15, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("+20% not flagged at threshold 0.15")
	}
}

func TestCompareBadFile(t *testing.T) {
	if _, err := runCompare("does-not-exist.json", "also-missing.json", 0.15, io.Discard); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}

func TestParseArgsInterleaved(t *testing.T) {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	compare := fs.Bool("compare", false, "")
	threshold := fs.Float64("threshold", 0.15, "")
	files := parseArgs(fs, []string{"-compare", "old.json", "new.json", "-threshold", "0.3"})
	if !*compare || *threshold != 0.3 {
		t.Fatalf("flags not parsed: compare=%v threshold=%v", *compare, *threshold)
	}
	if len(files) != 2 || files[0] != "old.json" || files[1] != "new.json" {
		t.Fatalf("files = %v", files)
	}
}
