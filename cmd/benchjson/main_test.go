package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/vanetlab/relroute
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScaleVehicles/200-8         	       5	  72451549 ns/op	16805897 B/op	  184829 allocs/op
BenchmarkEngine-8                    	       5	     41467 ns/op	   24009 B/op	     500 allocs/op
BenchmarkProtocolHighway/Greedy-8    	       1	  12345678 ns/op	         0.82 PDR
PASS
ok  	github.com/vanetlab/relroute	1.298s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("environment not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "ScaleVehicles/200" {
		t.Fatalf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 5 || b.NsPerOp != 72451549 || b.BytesPerOp != 16805897 || b.AllocsPerOp != 184829 {
		t.Fatalf("values not parsed: %+v", b)
	}
	if got := rep.Benchmarks[2].Metrics["PDR"]; got != 0.82 {
		t.Fatalf("custom metric PDR = %v, want 0.82", got)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\nnonsense line\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(rep.Benchmarks))
	}
}
