// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI can archive machine-readable performance
// trajectories (BENCH_core.json) and future PRs can diff them.
//
// Usage:
//
//	go test -bench 'Engine|ScaleVehicles' -benchmem -benchtime=1x . | benchjson -o BENCH_core.json
//
// Lines that are not benchmark results (PASS, ok, goos, ...) are captured
// as environment metadata where recognised and otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document. Baseline is not produced by parsing —
// committed reports may carry the pre-optimization numbers there so a
// single file records the before/after pair.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Baseline   []Result `json:"baseline,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBench parses one result line, e.g.
//
//	BenchmarkScaleVehicles/200-8  5  72451549 ns/op  16805897 B/op  184829 allocs/op  0.95 PDR
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// strip the trailing -GOMAXPROCS suffix
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
