// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI can archive machine-readable performance
// trajectories (BENCH_core.json) and future PRs can diff them — and
// compares two such reports as a regression gate.
//
// Usage:
//
//	go test -bench 'Engine|ScaleVehicles' -benchmem -benchtime=1x . | benchjson -o BENCH_core.json
//	benchjson -compare old.json new.json -threshold 0.15
//
// In -compare mode the two positional arguments are the baseline and the
// candidate report; the command prints a per-benchmark delta table and
// exits non-zero when any shared benchmark's ns/op grew by more than the
// threshold fraction (default 0.15). CI runs it against the committed
// BENCH_core.json so perf regressions fail the bench job instead of
// hiding in artifact diffs.
//
// Lines that are not benchmark results (PASS, ok, goos, ...) are captured
// as environment metadata where recognised and otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document. Baseline is not produced by parsing —
// committed reports may carry the pre-optimization numbers there so a
// single file records the before/after pair.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Baseline   []Result `json:"baseline,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	compare := fs.Bool("compare", false, "compare two report files (baseline, candidate) instead of parsing stdin")
	threshold := fs.Float64("threshold", 0.15, "allowed fractional ns/op growth in -compare mode")
	files := parseArgs(fs, os.Args[1:])

	if *compare {
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files (baseline, candidate)")
			os.Exit(2)
		}
		regressed, err := runCompare(files[0], files[1], *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseArgs parses flags and positional file arguments in any interleaving
// (the standard flag package stops at the first positional), so the
// documented `-compare old.json new.json -threshold 0.15` works verbatim.
func parseArgs(fs *flag.FlagSet, args []string) []string {
	var files []string
	for {
		fs.Parse(args)
		args = fs.Args()
		took := 0
		for took < len(args) && !strings.HasPrefix(args[took], "-") {
			files = append(files, args[took])
			took++
		}
		if took == len(args) {
			return files
		}
		args = args[took:]
	}
}

// readReport loads a report JSON file.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare diffs candidate against baseline and reports whether any
// shared benchmark's ns/op grew by more than threshold. Benchmarks present
// in only one report are listed but never fail the gate (new scale points
// must be addable without a baseline).
func runCompare(basePath, candPath string, threshold float64, w io.Writer) (regressed bool, err error) {
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	cand, err := readReport(candPath)
	if err != nil {
		return false, err
	}
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	fmt.Fprintf(w, "benchjson compare: %s → %s (threshold %+.0f%% ns/op)\n", basePath, candPath, threshold*100)
	seen := make(map[string]bool, len(cand.Benchmarks))
	for _, r := range cand.Benchmarks {
		seen[r.Name] = true
		old, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(w, "  %-28s %12.0f ns/op  (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		if old.NsPerOp <= 0 {
			fmt.Fprintf(w, "  %-28s %12.0f ns/op  (zero baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "  %-28s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n",
			r.Name, old.NsPerOp, r.NsPerOp, delta*100, verdict)
	}
	for _, r := range base.Benchmarks {
		if !seen[r.Name] {
			fmt.Fprintf(w, "  %-28s missing from candidate\n", r.Name)
		}
	}
	return regressed, nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBench parses one result line, e.g.
//
//	BenchmarkScaleVehicles/200-8  5  72451549 ns/op  16805897 B/op  184829 allocs/op  0.95 PDR
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// strip the trailing -GOMAXPROCS suffix
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
