package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig2", "-quick", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	err := runSweep([]string{
		"-protocols", "Greedy", "-vehicles", "15,25", "-seeds", "2",
		"-duration", "12",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepRejectsBadGrid(t *testing.T) {
	if err := runSweep([]string{"-vehicles", "ten"}); err == nil {
		t.Fatal("non-numeric vehicle list accepted")
	}
	if err := runSweep([]string{"-protocols", ""}); err == nil {
		t.Fatal("empty protocol list accepted")
	}
}
