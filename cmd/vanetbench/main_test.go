package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}
