package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig2", "-quick", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	err := runSweep([]string{
		"-protocols", "Greedy", "-vehicles", "15,25", "-seeds", "2",
		"-duration", "12",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepRejectsBadGrid(t *testing.T) {
	if err := runSweep([]string{"-vehicles", "ten"}); err == nil {
		t.Fatal("non-numeric vehicle list accepted")
	}
	if err := runSweep([]string{"-protocols", ""}); err == nil {
		t.Fatal("empty protocol list accepted")
	}
}

func TestScale(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "scale.json")
	err := runScale([]string{
		"-vehicles", "10,15", "-densities", "50", "-seeds", "1",
		"-duration", "5", "-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("scale JSON does not parse: %v", err)
	}
	if rep.Protocol != "Flooding" || len(rep.Results) != 2 {
		t.Fatalf("report = %+v, want 2 Flooding cells", rep)
	}
	for _, c := range rep.Results {
		if c.MeanMs <= 0 || c.MinMs <= 0 || c.LengthM <= 0 {
			t.Fatalf("cell not populated: %+v", c)
		}
	}
}

func TestScaleChurnColumn(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "scale_churn.json")
	err := runScale([]string{
		"-vehicles", "12", "-densities", "50", "-seeds", "1",
		"-duration", "10", "-churn", "-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("scale JSON does not parse: %v", err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("results = %+v", rep.Results)
	}
	c := rep.Results[0]
	if c.ChurnMeanMs <= 0 {
		t.Fatalf("churn column not timed: %+v", c)
	}
	if c.ChurnJoins == 0 || c.ChurnLeaves == 0 {
		t.Fatalf("churn run had no membership changes: %+v", c)
	}
}

func TestScaleRejectsBadGrid(t *testing.T) {
	if err := runScale([]string{"-vehicles", "ten"}); err == nil {
		t.Fatal("non-numeric vehicle list accepted")
	}
	if err := runScale([]string{"-densities", "0"}); err == nil {
		t.Fatal("zero density accepted")
	}
	if err := runScale([]string{"-vehicles", "1"}); err == nil {
		t.Fatal("single-vehicle world accepted")
	}
}
