// Command vanetbench regenerates the paper's figures and table as
// plain-text experiment reports, and sweeps protocol grids with cross-seed
// aggregation.
//
// Usage:
//
//	vanetbench                  # run everything
//	vanetbench -exp fig5        # one experiment
//	vanetbench -list            # list experiment IDs
//	vanetbench -quick           # smaller populations / shorter runs
//	vanetbench -parallel 8      # bound the simulation worker pool
//	vanetbench -shards 4        # shard each simulation's step loop
//	                            # (outputs identical at any shard count)
//
//	vanetbench sweep -protocols Greedy,TBP-SS -vehicles 20,60 -seeds 5
//	                            # protocol × density × seed grid with
//	                            # mean ± 95% CI per cell
//
//	vanetbench scale -vehicles 100,200,500,1000 -densities 50,100 -seeds 3
//	                            # simulator-throughput sweep: vehicles ×
//	                            # density (veh/km; highway length scales to
//	                            # hold it), wall-clock per run, optional
//	                            # -json report for CI archival
//
//	vanetbench linkacc -json BENCH_linkacc.json
//	                            # reliability plane accuracy: every link
//	                            # estimator × {highway, city-rush, trace},
//	                            # prediction MAE/bias vs ground-truth
//	                            # link breaks
//
//	vanetbench chaos -json BENCH_chaos.json
//	                            # fault plane degradation: every chaos
//	                            # profile × protocol, fault-window PDR,
//	                            # time-to-reroute, recovery latency
//
// Profiling: both modes accept -cpuprofile and -memprofile to capture
// pprof profiles of the run, e.g.
//
//	vanetbench -exp abl-storm -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/vanetlab/relroute"
)

// interruptContext returns a context cancelled by the first
// SIGINT/SIGTERM — in-flight simulations are interrupted at their next
// event boundary and journaled work is flushed — while a second signal
// hard-exits.
func interruptContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vanetbench: interrupt — stopping in-flight runs (interrupt again to hard-exit)")
		cancel()
		<-sigs
		os.Exit(130)
	}()
	return ctx, cancel
}

// profileFlags registers -cpuprofile/-memprofile on fs and returns a
// start function whose returned stop function must run before exit.
func profileFlags(fs *flag.FlagSet) (start func() (stop func() error, err error)) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	return func() (func() error, error) {
		var cpuF *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			cpuF = f
		}
		return func() error {
			if cpuF != nil {
				pprof.StopCPUProfile()
				if err := cpuF.Close(); err != nil {
					return err
				}
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
				defer f.Close()
				runtime.GC() // up-to-date allocation statistics
				if err := pprof.WriteHeapProfile(f); err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
			}
			return nil
		}, nil
	}
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "sweep":
		err = runSweep(args[1:])
	case len(args) > 0 && args[0] == "scale":
		err = runScale(args[1:])
	case len(args) > 0 && args[0] == "linkacc":
		err = runLinkAcc(args[1:])
	case len(args) > 0 && args[0] == "chaos":
		err = runChaos(args[1:])
	default:
		err = run(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vanetbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vanetbench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment ID or \"all\"")
		list      = fs.Bool("list", false, "list experiments and exit")
		seed      = fs.Int64("seed", 1, "random seed")
		quick     = fs.Bool("quick", false, "reduced populations and durations")
		parallel  = fs.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 1, "intra-run worker shards per simulation (output is identical for any value)")
		manifest  = fs.String("manifest", "", "durable campaign manifest directory: completed runs are journaled there, and an interrupted invocation re-run with the same -manifest resumes instead of re-executing them")
		ckptDir   = fs.String("checkpoint-dir", "", "auto-checkpoint every simulation into this directory (post-mortem snapshots for failed runs)")
		ckptEvery = fs.Float64("checkpoint-every", 0, "simulated seconds between checkpoint boundaries (0 = default)")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "vanetbench:", perr)
		}
	}()
	if *list {
		for _, e := range relroute.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ctx, cancel := interruptContext()
	defer cancel()
	cfg := relroute.ExperimentConfig{
		Seed: *seed, Quick: *quick, Workers: *parallel, Shards: *shards,
		Context: ctx, ManifestDir: *manifest,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
	}
	resumable := func(err error) error {
		if (errors.Is(err, relroute.ErrInterrupted) || errors.Is(err, context.Canceled)) && *manifest != "" {
			fmt.Fprintf(os.Stderr, "vanetbench: interrupted; completed runs are journaled — re-run with -manifest %s to resume\n", *manifest)
		}
		return err
	}
	if *exp != "all" {
		tab, err := relroute.RunExperiment(*exp, cfg)
		if err != nil {
			return resumable(err)
		}
		tab.Render(os.Stdout)
		return nil
	}
	for _, e := range relroute.Experiments() {
		tab, err := e.Run(cfg)
		if err != nil {
			return resumable(fmt.Errorf("experiment %s: %w", e.ID, err))
		}
		tab.Render(os.Stdout)
	}
	return nil
}

// runSweep executes a protocol × vehicles × seed grid on the batch runner
// and renders one row per (protocol, density) cell, aggregated across
// seeds as mean ± 95% CI.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("vanetbench sweep", flag.ContinueOnError)
	var (
		protocols = fs.String("protocols", "Greedy,TBP-SS", "comma-separated protocol names")
		vehicles  = fs.String("vehicles", "20,60,100", "comma-separated vehicle counts")
		seeds     = fs.Int("seeds", 3, "replication seeds per cell")
		seed0     = fs.Int64("seed", 1, "first replication seed")
		duration  = fs.Float64("duration", 30, "simulated seconds per run")
		length    = fs.Float64("length", 2000, "highway length in meters")
		speed     = fs.Float64("speed", 30, "mean vehicle speed in m/s")
		parallel  = fs.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		manifest  = fs.String("manifest", "", "durable campaign manifest directory; re-running an interrupted sweep with the same -manifest resumes it")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "vanetbench:", perr)
		}
	}()
	protos := splitList(*protocols)
	counts, err := splitInts(*vehicles)
	if err != nil {
		return fmt.Errorf("sweep: -vehicles: %w", err)
	}
	if len(protos) == 0 || len(counts) == 0 || *seeds < 1 {
		return fmt.Errorf("sweep: need at least one protocol, one vehicle count, and one seed")
	}
	for _, v := range counts {
		// reject rather than let scenario defaults silently relabel the row
		if v < 2 {
			return fmt.Errorf("sweep: -vehicles: count %d below the 2 needed for a flow", v)
		}
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed0 + int64(i)
	}
	// one spec per protocol so infrastructure options (RSUs for DRR, ferry
	// buses for Bus) apply only to the protocol that uses them and don't
	// perturb the other protocols' worlds
	var camp relroute.Campaign
	for _, proto := range protos {
		grid := make([]relroute.Options, 0, len(counts))
		for _, v := range counts {
			opts := relroute.Options{
				Vehicles: v, HighwayLength: *length,
				SpeedMean: *speed, Duration: *duration,
			}
			if proto == "Bus" {
				opts.Buses = 2 // the ferry protocol needs ≥1 bus; DRR's RSU default is built in
			}
			grid = append(grid, opts)
		}
		camp.AddSpec(relroute.BatchSpec{Protocols: []string{proto}, Grid: grid, Seeds: seedList})
	}
	ctx, cancel := interruptContext()
	defer cancel()
	pool := relroute.BatchPool{Workers: *parallel}
	var results []relroute.BatchResult
	if *manifest != "" {
		if err := os.MkdirAll(*manifest, 0o755); err != nil {
			return fmt.Errorf("sweep: manifest: %w", err)
		}
		path := filepath.Join(*manifest, fmt.Sprintf("campaign-%016x.jsonl", relroute.CampaignFingerprint(camp)))
		j, err := relroute.OpenCampaignJournal(path, camp)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		results = pool.ExecuteResumable(ctx, camp, j)
		if err := j.Close(); err != nil {
			return fmt.Errorf("sweep: manifest: %w", err)
		}
	} else {
		results = pool.ExecuteContext(ctx, camp)
	}

	tab := &relroute.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("protocol × density sweep (%d seeds, mean ± 95%% CI)", *seeds),
		Columns: []string{
			"protocol", "vehicles", "PDR", "delay(s)", "overhead", "breaks",
		},
	}
	for _, block := range relroute.Replications(results, *seeds) {
		sums, err := relroute.Summaries(block)
		if err != nil {
			if ctx.Err() != nil && *manifest != "" {
				fmt.Fprintf(os.Stderr, "vanetbench: interrupted; completed runs are journaled — re-run with -manifest %s to resume\n", *manifest)
			}
			return fmt.Errorf("sweep: %w", err)
		}
		agg := relroute.AggregateSummaries(sums)
		cell := block[0].Run
		tab.AddRow(
			cell.Protocol,
			strconv.Itoa(cell.Opts.Vehicles),
			fmtCI(agg.PDR, true),
			fmtCI(agg.MeanDelay, false),
			fmtCI(agg.Overhead, false),
			fmtCI(agg.Breaks, false),
		)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("seeds %d..%d; %g s per run on a %g m highway at %g m/s mean speed",
			*seed0, *seed0+int64(*seeds)-1, *duration, *length, *speed))
	tab.Render(os.Stdout)
	return nil
}

// scaleCell is one (vehicles, density) point of the scale sweep, averaged
// over seeds. The churn fields are populated by -churn: the same cell run
// as an open world with Poisson arrivals and lifetime-bounded departures.
type scaleCell struct {
	Vehicles  int     `json:"vehicles"`
	DensityKm float64 `json:"density_veh_per_km"`
	LengthM   float64 `json:"highway_length_m"`
	Seeds     int     `json:"seeds"`
	Shards    int     `json:"shards"`
	MeanMs    float64 `json:"mean_ms"`
	MinMs     float64 `json:"min_ms"`
	// EventsPerSec is simulator throughput: executed engine events per
	// wall-clock second, averaged over seeds — the scheduling-plane figure
	// that stays comparable when scenario geometry changes ms/run.
	EventsPerSec float64 `json:"events_per_sec"`
	PDR          float64 `json:"pdr"`
	ChurnMeanMs  float64 `json:"churn_mean_ms,omitempty"`
	ChurnPDR     float64 `json:"churn_pdr,omitempty"`
	ChurnJoins   float64 `json:"churn_joins,omitempty"`
	ChurnLeaves  float64 `json:"churn_leaves,omitempty"`
}

// scaleReport is the -json document CI archives next to BENCH_core.json.
type scaleReport struct {
	Protocol string      `json:"protocol"`
	Duration float64     `json:"sim_duration_s"`
	Results  []scaleCell `json:"results"`
}

// runScale executes the simulator-throughput sweep the scale benchmarks
// are built on: a vehicles × density grid of flooding (or any protocol)
// runs, timed wall-clock. The highway length scales with the vehicle count
// so each density column holds vehicles-per-km constant — doubling n
// doubles the world instead of compressing it. Runs execute sequentially
// so per-run timings aren't polluted by sibling runs.
func runScale(args []string) error {
	fs := flag.NewFlagSet("vanetbench scale", flag.ContinueOnError)
	var (
		protocol  = fs.String("protocol", "Flooding", "protocol to scale")
		vehicles  = fs.String("vehicles", "100,200,500,1000", "comma-separated vehicle counts")
		densities = fs.String("densities", "100", "comma-separated densities in vehicles/km")
		seeds     = fs.Int("seeds", 1, "replication seeds per cell")
		seed0     = fs.Int64("seed", 1, "first replication seed")
		duration  = fs.Float64("duration", 20, "simulated seconds per run")
		churn     = fs.Bool("churn", false, "add an open-world churn column (Poisson arrivals + departures) per cell")
		shards    = fs.Int("shards", 1, "intra-run worker shards per simulation (output is identical for any value)")
		jsonOut   = fs.String("json", "", "write a machine-readable report to this file")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "vanetbench:", perr)
		}
	}()
	counts, err := splitInts(*vehicles)
	if err != nil {
		return fmt.Errorf("scale: -vehicles: %w", err)
	}
	dens, err := splitFloats(*densities)
	if err != nil {
		return fmt.Errorf("scale: -densities: %w", err)
	}
	if len(counts) == 0 || len(dens) == 0 || *seeds < 1 {
		return fmt.Errorf("scale: need at least one vehicle count, one density, and one seed")
	}
	for _, v := range counts {
		if v < 2 {
			return fmt.Errorf("scale: -vehicles: count %d below the 2 needed for a flow", v)
		}
	}
	for _, d := range dens {
		if d <= 0 {
			return fmt.Errorf("scale: -densities: density must be positive, got %g", d)
		}
	}

	if *shards < 1 {
		*shards = 1
	}
	rep := scaleReport{Protocol: *protocol, Duration: *duration}
	columns := []string{"vehicles", "veh/km", "length(m)", "shards", "mean ms/run", "min ms/run", "events/s", "PDR"}
	if *churn {
		columns = append(columns, "churn ms/run", "churn PDR", "joins/leaves")
	}
	tab := &relroute.Table{
		ID:      "scale",
		Title:   fmt.Sprintf("%s simulator throughput (vehicles × density, %d seed(s))", *protocol, *seeds),
		Columns: columns,
	}
	for _, d := range dens {
		for _, v := range counts {
			length := float64(v) / d * 1000
			cell := scaleCell{Vehicles: v, DensityKm: d, LengthM: length, Seeds: *seeds, Shards: *shards, MinMs: math.Inf(1)}
			var pdrSum float64
			for s := 0; s < *seeds; s++ {
				opts := relroute.Options{
					Seed: *seed0 + int64(s), Vehicles: v,
					HighwayLength: length, Duration: *duration,
					Flows: 2, FlowPackets: 5, Shards: *shards,
				}
				t0 := time.Now()
				sum, err := relroute.Run(*protocol, opts)
				if err != nil {
					return fmt.Errorf("scale: %d vehicles at %g veh/km: %w", v, d, err)
				}
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				cell.MeanMs += ms
				cell.MinMs = math.Min(cell.MinMs, ms)
				cell.EventsPerSec += float64(sum.Events) / (ms / 1000)
				pdrSum += sum.PDR
			}
			cell.MeanMs /= float64(*seeds)
			cell.EventsPerSec /= float64(*seeds)
			cell.PDR = pdrSum / float64(*seeds)
			if *churn {
				var churnPDR, joins, leaves float64
				for s := 0; s < *seeds; s++ {
					opts := relroute.Options{
						Seed: *seed0 + int64(s), Vehicles: v,
						HighwayLength: length, Duration: *duration,
						Flows: 2, FlowPackets: 5, Shards: *shards,
						// replace the population roughly once over the run
						ArrivalRate:  float64(v) / *duration,
						MeanLifetime: *duration / 2,
					}
					t0 := time.Now()
					sum, err := relroute.Run(*protocol, opts)
					if err != nil {
						return fmt.Errorf("scale: churn %d vehicles at %g veh/km: %w", v, d, err)
					}
					cell.ChurnMeanMs += float64(time.Since(t0)) / float64(time.Millisecond)
					churnPDR += sum.PDR
					joins += float64(sum.Joins)
					leaves += float64(sum.Leaves)
				}
				cell.ChurnMeanMs /= float64(*seeds)
				cell.ChurnPDR = churnPDR / float64(*seeds)
				cell.ChurnJoins = joins / float64(*seeds)
				cell.ChurnLeaves = leaves / float64(*seeds)
			}
			rep.Results = append(rep.Results, cell)
			row := []string{
				strconv.Itoa(v),
				fmt.Sprintf("%g", d),
				fmt.Sprintf("%.0f", length),
				strconv.Itoa(cell.Shards),
				fmt.Sprintf("%.1f", cell.MeanMs),
				fmt.Sprintf("%.1f", cell.MinMs),
				fmt.Sprintf("%.0f", cell.EventsPerSec),
				fmt.Sprintf("%.1f%%", cell.PDR*100),
			}
			if *churn {
				row = append(row,
					fmt.Sprintf("%.1f", cell.ChurnMeanMs),
					fmt.Sprintf("%.1f%%", cell.ChurnPDR*100),
					fmt.Sprintf("%.0f/%.0f", cell.ChurnJoins, cell.ChurnLeaves),
				)
			}
			tab.AddRow(row...)
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("%g simulated seconds per run; wall-clock timings, sequential execution", *duration))
	tab.Render(os.Stdout)
	if *jsonOut != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			return fmt.Errorf("scale: %w", err)
		}
	}
	return nil
}

// linkAccReport is the linkacc -json document CI archives as
// BENCH_linkacc.json alongside the performance benchmarks.
type linkAccReport struct {
	HorizonS float64                     `json:"audit_horizon_s"`
	Seed     int64                       `json:"seed"`
	Quick    bool                        `json:"quick"`
	Results  []relroute.LinkAccuracyCell `json:"results"`
}

// runLinkAcc executes the reliability plane's prediction-accuracy grid:
// every registered link estimator across the highway / city-rush / trace
// scenarios, each run audited against ground-truth link breaks.
func runLinkAcc(args []string) error {
	fs := flag.NewFlagSet("vanetbench linkacc", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		quick    = fs.Bool("quick", false, "reduced populations and durations")
		parallel = fs.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 1, "intra-run worker shards per simulation (output is identical for any value)")
		jsonOut  = fs.String("json", "", "write a machine-readable report to this file")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "vanetbench:", perr)
		}
	}()
	ctx, cancel := interruptContext()
	defer cancel()
	cfg := relroute.ExperimentConfig{Seed: *seed, Quick: *quick, Workers: *parallel, Shards: *shards, Context: ctx}
	cells, err := relroute.LinkAccuracy(cfg)
	if err != nil {
		return fmt.Errorf("linkacc: %w", err)
	}
	relroute.LinkAccuracyTable(cells).Render(os.Stdout)
	if *jsonOut != "" {
		rep := linkAccReport{HorizonS: relroute.LinkAuditHorizon, Seed: *seed, Quick: *quick, Results: cells}
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("linkacc: %w", err)
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			return fmt.Errorf("linkacc: %w", err)
		}
	}
	return nil
}

// chaosReport is the chaos -json document CI archives as BENCH_chaos.json
// alongside the other benchmark artifacts.
type chaosReport struct {
	Seed     int64                `json:"seed"`
	Quick    bool                 `json:"quick"`
	Profiles []string             `json:"profiles"`
	Results  []relroute.ChaosCell `json:"results"`
}

// runChaos executes the fault plane's degradation grid: every chaos
// profile of the chaos experiment against its protocol set, reporting
// fault-window PDR, time-to-reroute, and recovery latency per cell.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("vanetbench chaos", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "random seed")
		quick    = fs.Bool("quick", false, "reduced populations and durations")
		parallel = fs.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 1, "intra-run worker shards per simulation (output is identical for any value)")
		jsonOut  = fs.String("json", "", "write a machine-readable report to this file")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "vanetbench:", perr)
		}
	}()
	ctx, cancel := interruptContext()
	defer cancel()
	cfg := relroute.ExperimentConfig{Seed: *seed, Quick: *quick, Workers: *parallel, Shards: *shards, Context: ctx}
	cells, err := relroute.Chaos(cfg)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	relroute.ChaosTable(cells).Render(os.Stdout)
	if *jsonOut != "" {
		rep := chaosReport{Seed: *seed, Quick: *quick, Profiles: relroute.FaultProfiles(), Results: cells}
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	return nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fmtCI(s relroute.Stat, pct bool) string {
	if pct {
		return fmt.Sprintf("%.1f%%±%.1f", s.Mean*100, s.CI95*100)
	}
	return fmt.Sprintf("%.2f±%.2f", s.Mean, s.CI95)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
