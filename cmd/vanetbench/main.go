// Command vanetbench regenerates the paper's figures and table as
// plain-text experiment reports.
//
// Usage:
//
//	vanetbench                  # run everything
//	vanetbench -exp fig5        # one experiment
//	vanetbench -list            # list experiment IDs
//	vanetbench -quick           # smaller populations / shorter runs
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/vanetlab/relroute"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vanetbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vanetbench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment ID or \"all\"")
		list  = fs.Bool("list", false, "list experiments and exit")
		seed  = fs.Int64("seed", 1, "random seed")
		quick = fs.Bool("quick", false, "reduced populations and durations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range relroute.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := relroute.ExperimentConfig{Seed: *seed, Quick: *quick}
	if *exp != "all" {
		tab, err := relroute.RunExperiment(*exp, cfg)
		if err != nil {
			return err
		}
		tab.Render(os.Stdout)
		return nil
	}
	for _, e := range relroute.Experiments() {
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		tab.Render(os.Stdout)
	}
	return nil
}
