package relroute_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/vanetlab/relroute"
)

func TestRunQuickstart(t *testing.T) {
	sum, err := relroute.Run("TBP-SS", relroute.Options{
		Seed: 1, Vehicles: 40, HighwayLength: 1500,
		Duration: 30, Flows: 3, FlowPackets: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.DataSent != 24 {
		t.Fatalf("sent = %d", sum.DataSent)
	}
	if sum.PDR <= 0.5 {
		t.Fatalf("PDR = %v on a well-connected highway", sum.PDR)
	}
}

func TestProtocolsCoverEveryCategory(t *testing.T) {
	names := relroute.Protocols()
	if len(names) < 15 {
		t.Fatalf("protocols = %d", len(names))
	}
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, representative := range []string{"Flooding", "PBR", "DRR", "Greedy", "TBP-SS"} {
		if !byName[representative] {
			t.Errorf("representative %q missing from Protocols()", representative)
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := relroute.RunExperiment("fig99", relroute.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("error %v does not name the bad id", err)
	}
}

func TestRunExperimentFig1(t *testing.T) {
	tab, err := relroute.RunExperiment("fig1", relroute.ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig1" || len(tab.Rows) == 0 {
		t.Fatalf("table = %+v", tab)
	}
}

func TestExperimentsListed(t *testing.T) {
	if got := len(relroute.Experiments()); got != 18 {
		t.Fatalf("experiments = %d", got)
	}
}

func TestEstimatorsListed(t *testing.T) {
	names := relroute.Estimators()
	if len(names) != 4 {
		t.Fatalf("estimators = %v", names)
	}
	// an unknown estimator is rejected at build time, not at run time
	if _, err := relroute.Run("Greedy", relroute.Options{Estimator: "nope", Duration: 1}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestScenariosListed(t *testing.T) {
	names := relroute.Scenarios()
	if len(names) < 7 {
		t.Fatalf("named scenarios = %d: %v", len(names), names)
	}
	descs := relroute.ScenarioDescriptions()
	for _, name := range names {
		if descs[name] == "" {
			t.Errorf("scenario %q undocumented", name)
		}
	}
}

func TestTaxonomyExposed(t *testing.T) {
	entries := relroute.Taxonomy()
	if len(entries) < 25 {
		t.Fatalf("taxonomy entries = %d", len(entries))
	}
	categories := map[relroute.Category]bool{}
	for _, e := range entries {
		categories[e.Category] = true
	}
	for _, c := range []relroute.Category{
		relroute.Connectivity, relroute.Mobility, relroute.Infrastructure,
		relroute.Geographic, relroute.Probability,
	} {
		if !categories[c] {
			t.Errorf("category %v missing", c)
		}
	}
}

func TestLinkLifetimeFacade(t *testing.T) {
	lt := relroute.LinkLifetime(
		relroute.V(0, 0), relroute.V(30, 0),
		relroute.V(100, 0), relroute.V(25, 0), 250)
	// A passes B and breaks 250 m ahead: (250+100)/5 = 70
	if lt < 69.99 || lt > 70.01 {
		t.Fatalf("lifetime = %v, want 70", lt)
	}
	if got := relroute.PathLifetime([]float64{10, 4, 9}); got != 4 {
		t.Fatalf("path lifetime = %v", got)
	}
	if relroute.LinkLifetime(relroute.V(0, 0), relroute.V(30, 0),
		relroute.V(100, 0), relroute.V(30, 0), 250) != relroute.Forever {
		t.Fatal("co-moving link should live forever")
	}
}

func TestLinkStabilityFacade(t *testing.T) {
	stable := relroute.LinkStability(relroute.MetricMeanDuration, relroute.StabilityParams{},
		relroute.V(0, 0), relroute.V(30, 0), relroute.V(80, 0), relroute.V(29, 0), 250)
	fleeting := relroute.LinkStability(relroute.MetricMeanDuration, relroute.StabilityParams{},
		relroute.V(0, 0), relroute.V(30, 0), relroute.V(80, 0), relroute.V(-29, 0), 250)
	if stable <= fleeting {
		t.Fatalf("stability ordering violated: %v vs %v", stable, fleeting)
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	opts := relroute.Options{Seed: 4, Vehicles: 25, Duration: 15, Flows: 2, FlowPackets: 4}
	a, err := relroute.Run("Greedy", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := relroute.Run("Greedy", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}
