package relroute_test

// Checkpoint/restore integration tests at the public API: a mid-run
// snapshot restored in a "fresh process" — at a different shard count —
// must continue to the exact summary of the uninterrupted run, and a
// campaign resumed from its manifest must reproduce the golden experiment
// tables without re-executing journaled runs, at any worker count.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/vanetlab/relroute"
)

func TestCheckpointRoundTripPublicAPI(t *testing.T) {
	opts := relroute.Options{Seed: 7, Vehicles: 40, Duration: 30, Flows: 3, FlowPackets: 10}
	want, err := relroute.Run("TBP-SS", opts)
	if err != nil {
		t.Fatal(err)
	}

	// Run the first half segmented, stopping with a final checkpoint.
	sc, err := relroute.BuildScenario("TBP-SS", opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, done, err := relroute.RunCheckpointed(sc, relroute.CheckpointPolicy{Path: path, Every: 5, StopAt: 15})
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("StopAt run reported completion")
	}

	// "Fresh process": reload the snapshot, restore at a different shard
	// count, and run to the end.
	snap, err := relroute.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Opts.Shards = 4
	restored, err := relroute.RestoreCheckpoint(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, done, err := relroute.RunCheckpointed(restored, relroute.CheckpointPolicy{Path: path, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("resumed run did not complete")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored run diverged from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("completed run left its checkpoint file behind: %v", err)
	}
}

// TestGoldenExperimentResumable re-renders golden experiments through a
// campaign manifest twice: the first pass executes and journals every
// run, the second reconstructs every result from the journal. Both must
// match the golden capture byte for byte at one worker and eight — the
// manifest is a cache of the deterministic contract, not a side channel
// that can drift.
func TestGoldenExperimentResumable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are full simulations; skipped in -short")
	}
	passes := []struct {
		name    string
		workers int
	}{{"execute-w1", 1}, {"resume-w8", 8}}
	for _, id := range []string{"fig2", "table1"} {
		manifest := t.TempDir()
		for _, p := range passes {
			workers := p.workers
			t.Run(id+"/"+p.name, func(t *testing.T) {
				tab, err := relroute.RunExperiment(id, relroute.ExperimentConfig{
					Seed: 1, Quick: true, Workers: workers, ManifestDir: manifest,
				})
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("golden_%s_w1.txt", id)))
				if err != nil {
					t.Fatal(err)
				}
				if tab.String() != string(want) {
					t.Fatalf("manifest-backed %s output diverged from the golden capture.\n--- got ---\n%s\n--- want ---\n%s",
						id, tab.String(), want)
				}
			})
		}
	}
}
