package relroute_test

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

// ExampleRun simulates the paper's TBP-SS protocol on a highway and reports
// delivery. The seed makes the run fully deterministic.
func ExampleRun() {
	sum, err := relroute.Run("TBP-SS", relroute.Options{
		Seed:          7,
		Vehicles:      50,
		HighwayLength: 1500,
		Duration:      30,
		Flows:         2,
		FlowPackets:   10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d of %d\n", sum.DataDelivered, sum.DataSent)
	// Output: delivered 20 of 20
}

// ExampleLinkLifetime solves the paper's Eqn (4) for two vehicles on a
// highway: A at the origin doing 30 m/s, B 100 m ahead doing 25 m/s, with
// a 250 m radio range. A catches up, passes, and the link breaks when A is
// 250 m ahead: (250+100)/5 = 70 s.
func ExampleLinkLifetime() {
	lifetime := relroute.LinkLifetime(
		relroute.V(0, 0), relroute.V(30, 0),
		relroute.V(100, 0), relroute.V(25, 0),
		250,
	)
	fmt.Printf("the link lives %.0f s\n", lifetime)
	// Output: the link lives 70 s
}

// ExamplePathLifetime applies the paper's composition rule: a route lives
// only as long as its weakest link.
func ExamplePathLifetime() {
	fmt.Println(relroute.PathLifetime([]float64{42.0, 7.5, 19.3}))
	// Output: 7.5
}

// ExampleRunBatch fans a protocol × seed grid out across the worker pool
// and folds the per-seed summaries into cross-seed statistics. Results
// come back in submission order, so output is deterministic for any
// worker count.
func ExampleRunBatch() {
	spec := relroute.BatchSpec{
		Protocols: []string{"Greedy", "TBP-SS"},
		Grid: []relroute.Options{{
			Vehicles: 40, HighwayLength: 1500,
			Duration: 20, Flows: 2, FlowPackets: 5,
		}},
		Seeds: []int64{1, 2, 3},
	}
	results := relroute.RunBatch(relroute.Campaign{Runs: spec.Runs()}, 0)
	for _, block := range relroute.Replications(results, len(spec.Seeds)) {
		sums, err := relroute.Summaries(block)
		if err != nil {
			log.Fatal(err)
		}
		agg := relroute.AggregateSummaries(sums)
		fmt.Printf("%s: %d replications\n", agg.Protocol, agg.N)
	}
	// Output:
	// Greedy: 3 replications
	// TBP-SS: 3 replications
}

// ExampleTaxonomy walks the Fig. 1 protocol catalogue.
func ExampleTaxonomy() {
	implemented := 0
	for _, e := range relroute.Taxonomy() {
		if e.Implemented() {
			implemented++
		}
	}
	fmt.Printf("catalogued: %d, implemented: %d\n", len(relroute.Taxonomy()), implemented)
	// Output: catalogued: 29, implemented: 22
}
