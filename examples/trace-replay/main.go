// Trace replay: close the SUMO loop. A trace is recorded from the
// built-in mobility stack (standing in for a real SUMO FCD export),
// written to disk in SUMO's FCD XML format, read back, and replayed as a
// scenario — vehicles enter the world when their trace begins and leave
// when it ends. Point Options.TracePath at any real `sumo --fcd-output`
// file and the same pipeline runs it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/vanetlab/relroute"
)

func main() {
	dir, err := os.MkdirTemp("", "relroute-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "highway.fcd.xml")

	// 1. record a trace (equivalently: cmd/tracegen, or SUMO itself)
	tracks, err := relroute.ReadTraceFile("testdata/fixture_5veh.fcd.xml")
	if err != nil {
		// running from another directory: fall back to an ad-hoc trace of
		// two vehicles crossing
		tracks = []relroute.Track{
			{ID: 0, Waypoints: []relroute.Waypoint{
				{T: 0, Pos: relroute.V(0, 0), Speed: 20},
				{T: 30, Pos: relroute.V(600, 0), Speed: 20},
			}},
			{ID: 1, Waypoints: []relroute.Waypoint{
				{T: 0, Pos: relroute.V(600, 5), Speed: 20},
				{T: 30, Pos: relroute.V(0, 5), Speed: 20},
			}},
		}
	}

	// 2. write → read: the SUMO FCD XML round trip
	if err := relroute.WriteTraceFile(path, tracks); err != nil {
		log.Fatal(err)
	}

	// 3. replay the file as a scenario
	sum, err := relroute.Run("TBP-SS", relroute.Options{
		Seed:      1,
		TracePath: path,
		Duration:  25,
		Flows:     2, FlowPackets: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %s: %s\n", filepath.Base(path), sum)
}
