// Rural sparse traffic: the regime where every V2V category fails and the
// survey's infrastructure category earns its keep (Sec. V, Fig. 5). A
// dozen vehicles on 3 km of road rarely form an end-to-end path; DRR's
// road-side units relay and buffer over their wired backbone, and Kitani-
// style buses ferry messages where even RSUs are absent.
package main

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

func main() {
	fmt.Println("sparse rural highway: 12 vehicles on 3 km, 90 s:")
	fmt.Printf("%-22s %6s %12s\n", "configuration", "PDR", "mean delay")
	run := func(label, proto string, rsus, buses int) {
		sum, err := relroute.Run(proto, relroute.Options{
			Seed:          11,
			Vehicles:      12,
			HighwayLength: 3000,
			SpeedMean:     33,
			Duration:      90,
			Flows:         4,
			FlowPackets:   20,
			RSUs:          rsus,
			Buses:         buses,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %5.0f%% %11.2fs\n", label, 100*sum.PDR, sum.MeanDelay)
	}
	run("greedy V2V only", "Greedy", 0, 0)
	run("AODV V2V only", "AODV", 0, 0)
	run("DRR + 0 RSUs", "DRR", -1, 0) // -1: explicitly no infrastructure
	run("DRR + 2 RSUs", "DRR", 2, 0)
	run("DRR + 4 RSUs", "DRR", 4, 0)
	run("bus ferries x2", "Bus", 0, 2)
	fmt.Println("\ninfrastructure buys delivery that no V2V category can offer in")
	fmt.Println("sparse traffic — at the cost of deployment (Table I, row 3).")
}
