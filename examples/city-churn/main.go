// City churn: drop the closed-world assumption. The "city-rush" named
// scenario replays a rush hour on a Manhattan grid — Poisson arrivals
// ramping up to a peak and back down, lifetime-bounded departures — so
// nodes join and leave the network mid-run, and every protocol's neighbor
// tables, cached radio neighborhoods, and flows have to survive the
// membership changes.
package main

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

func main() {
	for _, proto := range []string{"Greedy", "AODV", "TBP-SS"} {
		sum, err := relroute.Run(proto, relroute.Options{
			Seed:     1,
			Scenario: "city-rush", // named preset: grid + rush-hour churn
			Vehicles: 40,
			Duration: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s PDR %5.1f%%  delay %6.1f ms  %3d joined / %3d left mid-run\n",
			proto, 100*sum.PDR, 1000*sum.MeanDelay, sum.Joins, sum.Leaves)
	}

	// The same open world is reachable without a preset: any Options set
	// with an ArrivalRate runs the Kind-selected topology as an open world.
	sum, err := relroute.Run("Greedy", relroute.Options{
		Seed:         2,
		Vehicles:     30,
		Duration:     40,
		ArrivalRate:  1.0, // one new vehicle per second (Poisson)
		MeanLifetime: 20,  // exponential lifetimes: half the run on average
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nad-hoc open highway: %d joined, %d left, PDR %.1f%%\n",
		sum.Joins, sum.Leaves, 100*sum.PDR)
}
