// Quickstart: run the paper's ticket-based stability-probing protocol
// (TBP-SS) on a 60-vehicle highway and print the delivery metrics.
package main

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

func main() {
	sum, err := relroute.Run("TBP-SS", relroute.Options{
		Seed:     1,
		Vehicles: 60,
		Duration: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TBP-SS on a 2 km highway, 60 vehicles, 60 s:\n")
	fmt.Printf("  delivered %d/%d packets (PDR %.0f%%)\n",
		sum.DataDelivered, sum.DataSent, 100*sum.PDR)
	fmt.Printf("  mean delay %.1f ms over %.1f hops\n",
		1000*sum.MeanDelay, sum.MeanHops)
	fmt.Printf("  %d probe rounds, %d path breaks, %d preemptive repairs\n",
		sum.Discoveries, sum.Breaks, sum.Repairs)
	fmt.Printf("  predicted path stability %.1f s\n", sum.PathLifetime)

	// The analytical core is usable on its own: how long until two
	// vehicles 150 m apart, closing at 8 m/s, lose their 250 m link?
	lt := relroute.LinkLifetime(
		relroute.V(0, 0), relroute.V(33, 0), // vehicle A at origin, 33 m/s
		relroute.V(150, 0), relroute.V(25, 0), // vehicle B ahead, 25 m/s
		250,
	)
	fmt.Printf("\nEqn (4): a 150 m gap closing at 8 m/s keeps the link for %.1f s\n", lt)
}
