// City QoS streaming: the survey's multimedia motivation ("a car that
// travels down an interstate and whose passengers are interested in
// viewing a particular movie"). A content stream crosses a Manhattan
// grid; AODV rebuilds its route only after each break, while the paper's
// TBP-SS probes stable links up front and repairs preemptively, keeping
// delivery up at comparable overhead.
package main

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

func main() {
	fmt.Println("streaming across a 4x4 Manhattan grid (90 vehicles, 80 s):")
	fmt.Printf("%-8s %6s %10s %9s %8s %9s %8s\n",
		"proto", "PDR", "delay(ms)", "overhead", "breaks", "repairs", "probes")
	for _, proto := range []string{"AODV", "GVGrid", "TBP-SS"} {
		sum, err := relroute.Run(proto, relroute.Options{
			Seed:         3,
			Kind:         relroute.CityKind,
			GridN:        4,
			Vehicles:     90,
			SpeedMean:    14, // urban speeds
			SpeedStd:     4,
			Duration:     80,
			Flows:        3,
			FlowPackets:  60,
			FlowInterval: 0.5,
			PacketSize:   1024, // media segments
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %5.0f%% %10.1f %9.1f %8d %9d %8d\n",
			proto, 100*sum.PDR, 1000*sum.MeanDelay, sum.Overhead,
			sum.Breaks, sum.Repairs, sum.Discoveries)
	}
	fmt.Println("\nAODV re-floods after every break (see its breaks column and")
	fmt.Println("overhead); the probability protocols hold orders of magnitude")
	fmt.Println("fewer breaking routes by probing stable links up front (Sec. VII).")
	fmt.Println("City corners blunt straight-line probing — the survey's point")
	fmt.Println("that no single category wins everywhere (Sec. VIII).")
}
