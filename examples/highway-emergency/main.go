// Highway emergency alerts: the survey's motivating dissemination
// workload. An accident report must travel from the crash site to an
// approaching vehicle. Pure flooding reaches it but detonates a broadcast
// storm; Bronsted-style zone flooding and LORA-DCBF gateway clustering
// deliver the same alert at a fraction of the transmissions; Biswas's
// acknowledged flooding adds delivery persistence.
package main

import (
	"fmt"
	"log"

	"github.com/vanetlab/relroute"
)

func main() {
	fmt.Println("emergency alert on a congested 1.5 km highway (100 vehicles):")
	fmt.Printf("%-12s %6s %14s %10s %12s\n",
		"protocol", "PDR", "MAC transmits", "dup ratio", "collisions")
	for _, proto := range []string{"Flooding", "Biswas", "Zone", "LORA-DCBF"} {
		sum, err := relroute.Run(proto, relroute.Options{
			Seed:          7,
			Vehicles:      100,
			HighwayLength: 1500,
			SpeedMean:     15, // congested flow
			Duration:      30,
			Flows:         4,
			FlowPackets:   10,
			PacketSize:    256, // alert payloads are small
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %5.0f%% %14d %10.2f %11.1f%%\n",
			proto, 100*sum.PDR, sum.MACTransmits, sum.DupRatio, 100*sum.CollisionRate)
	}
	fmt.Println("\nzone/gateway scoping keeps the alert inside the relevant road")
	fmt.Println("section (Fig. 6) instead of flooding the whole network (Sec. III).")
}
