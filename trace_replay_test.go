package relroute_test

// The FCD round-trip golden test pins the whole trace pipeline end to
// end: synthetic mobility is recorded (the tracegen path), serialised as
// a SUMO FCD export, parsed back, and replayed as a playback scenario on
// the campaign runner. The rendered result table must be byte-identical
// at Workers=1 and Workers=8 and match the checked-in golden capture —
// any drift in the FCD encoding, the track active windows, the playback
// interpolation, or the open-world membership machinery shows up here.
// Regenerate after an INTENTIONAL behaviour change with
//
//	go test -run TestFCDRoundTripGolden -update-golden

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/vanetlab/relroute"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/traces"
)

// recordedTracks generates the deterministic source trace (the in-process
// equivalent of cmd/tracegen, via the shared pipeline).
func recordedTracks(t *testing.T) []relroute.Track {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	model, err := mobility.NewHighwayModel(rng, 10, 1500, 26, 4)
	if err != nil {
		t.Fatal(err)
	}
	return mobility.Record(model, 0.5, 25)
}

// replayTable runs the replayed tracks through a small protocol campaign
// and renders the summaries as a table.
func replayTable(t *testing.T, tracks []relroute.Track, workers int) string {
	t.Helper()
	protos := []string{"Greedy", "TBP-SS"}
	camp := relroute.Campaign{}
	camp.AddSpec(relroute.BatchSpec{
		Protocols: protos,
		Grid: []relroute.Options{{
			Seed: 1, Duration: 20, Flows: 3, FlowPackets: 6, Tracks: tracks,
		}},
	})
	sums, err := relroute.Summaries(relroute.RunBatch(camp, workers))
	if err != nil {
		t.Fatal(err)
	}
	tab := &relroute.Table{
		ID:      "trace-roundtrip",
		Title:   "tracegen → FCD write → FCD read → playback scenario",
		Columns: []string{"protocol", "scenario", "sent", "delivered", "hops", "control"},
	}
	for _, sum := range sums {
		tab.AddRow(sum.Protocol, sum.Scenario,
			fmt.Sprint(sum.DataSent), fmt.Sprint(sum.DataDelivered),
			fmt.Sprintf("%.2f", sum.MeanHops), fmt.Sprint(sum.ControlTotal))
	}
	return tab.String()
}

func TestFCDRoundTripGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	src := recordedTracks(t)

	// tracegen → traces.Write → traces.Read
	var buf bytes.Buffer
	if err := traces.Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	replayed, err := traces.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(src) {
		t.Fatalf("round trip lost tracks: %d → %d", len(src), len(replayed))
	}
	// the FCD encoding quantises to centimeters; windows must survive exactly
	for i := range src {
		sf, sl := src[i].Span()
		rf, rl := replayed[i].Span()
		if sf != rf || sl != rl {
			t.Fatalf("track %d window changed: [%v,%v] → [%v,%v]", i, sf, sl, rf, rl)
		}
	}

	// replayed scenario runs are byte-stable across worker counts
	seq := replayTable(t, replayed, 1)
	par := replayTable(t, replayed, 8)
	if seq != par {
		t.Fatalf("worker count changed the replay table:\n--- w1 ---\n%s--- w8 ---\n%s", seq, par)
	}

	path := filepath.Join("testdata", "golden_trace_roundtrip.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if seq != string(want) {
		t.Fatalf("trace round-trip output diverged from the golden capture.\n--- got ---\n%s\n--- want ---\n%s", seq, want)
	}
}
