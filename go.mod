module github.com/vanetlab/relroute

go 1.24
