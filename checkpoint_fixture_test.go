package relroute_test

// The committed checkpoint fixture pins cross-version restore: the
// snapshot in testdata was captured by a binary running the event queue
// heap-only (eventq.ForceHeap) — the pre-calendar layout — and a current
// binary, whose queue fronts the same slab with a calendar ring, must
// rebuild it, pass digest and RNG-stream verification, and finish to the
// exact summary of an uninterrupted run. That only holds because the
// queue's pop order and DigestInto are canonical (time, seq) contracts,
// independent of the internal layout; if either ever leaks layout, this
// test is the tripwire.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/vanetlab/relroute"
	"github.com/vanetlab/relroute/internal/eventq"
)

const heapFixturePath = "testdata/fixture_heapq.ckpt"

// Regenerate with: RELROUTE_REGEN_FIXTURES=1 go test -run HeapFixture .
// Only needed if the snapshot schema version bumps; the point of the
// fixture is that it is NOT regenerated when the queue internals change.
func regenHeapFixture(t *testing.T) {
	eventq.ForceHeap = true
	defer func() { eventq.ForceHeap = false }()
	sc, err := relroute.BuildScenario("TBP-SS", relroute.Options{
		Seed: 9, Vehicles: 30, Duration: 24, Flows: 3, FlowPackets: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := relroute.RunCheckpointed(sc, relroute.CheckpointPolicy{
		Path: heapFixturePath, Every: 4, StopAt: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("fixture run completed instead of stopping at the snapshot")
	}
}

func TestCheckpointHeapFixtureRestores(t *testing.T) {
	if os.Getenv("RELROUTE_REGEN_FIXTURES") != "" {
		regenHeapFixture(t)
	}
	snap, err := relroute.ReadCheckpoint(heapFixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Events == 0 || snap.T == 0 {
		t.Fatalf("fixture snapshot is empty: %+v", snap)
	}

	// Restore replays the first half under the calendar queue and
	// verifies the world digest and every RNG stream position against
	// what the heap-only binary recorded.
	restored, err := relroute.RestoreCheckpoint(snap)
	if err != nil {
		t.Fatalf("heap-generated snapshot failed to restore under the calendar queue: %v", err)
	}
	got, done, err := relroute.RunCheckpointed(restored, relroute.CheckpointPolicy{
		Path: filepath.Join(t.TempDir(), "resume.ckpt"), Every: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("resumed run did not complete")
	}

	want, err := relroute.Run(snap.Protocol, snap.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run resumed from the heap-generated snapshot diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
