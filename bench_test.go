package relroute_test

// Benchmarks regenerating every figure and table of the paper (one bench
// per artifact — see DESIGN.md's per-experiment index), the ablations
// backing Table I's qualitative claims, and micro-benchmarks of the
// simulator's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches execute in Quick mode inside the timing loop and
// report headline metrics (PDR, collision rate, ...) via b.ReportMetric so
// the "who wins where" shape is visible straight from the bench output.

import (
	"strconv"
	"testing"

	"github.com/vanetlab/relroute"
	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/sim"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := relroute.RunExperiment(id, relroute.ExperimentConfig{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkFig1Taxonomy regenerates Fig. 1 (the protocol taxonomy).
func BenchmarkFig1Taxonomy(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2Discovery regenerates Fig. 2 (RREQ flood / RREP unicast).
func BenchmarkFig2Discovery(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3LinkLifetime regenerates Fig. 3 (Eqn 1-4 lifetimes).
func BenchmarkFig3LinkLifetime(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Direction regenerates Fig. 4 (direction decomposition).
func BenchmarkFig4Direction(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5RSU regenerates Fig. 5 (RSU-assisted sparse delivery).
func BenchmarkFig5RSU(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Zones regenerates Fig. 6 (zone/gateway suppression).
func BenchmarkFig6Zones(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable1Summary regenerates Table I (category pros/cons matrix).
func BenchmarkTable1Summary(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkAblationBroadcastStorm regenerates E-A1.
func BenchmarkAblationBroadcastStorm(b *testing.B) { benchExperiment(b, "abl-storm") }

// BenchmarkAblationMobilityRegimes regenerates E-A2.
func BenchmarkAblationMobilityRegimes(b *testing.B) { benchExperiment(b, "abl-regimes") }

// BenchmarkAblationPathLifetime regenerates E-A3.
func BenchmarkAblationPathLifetime(b *testing.B) { benchExperiment(b, "abl-lifetime") }

// BenchmarkAblationProbVsGeo regenerates E-A4.
func BenchmarkAblationProbVsGeo(b *testing.B) { benchExperiment(b, "abl-probvsgeo") }

// BenchmarkAblationTickets regenerates E-A5.
func BenchmarkAblationTickets(b *testing.B) { benchExperiment(b, "abl-tickets") }

// BenchmarkAblationHybrid regenerates E-A6 (the Sec. VIII hybrid).
func BenchmarkAblationHybrid(b *testing.B) { benchExperiment(b, "abl-hybrid") }

// BenchmarkAblationDisaster regenerates E-A7 (Sec. V-A infrastructure loss).
func BenchmarkAblationDisaster(b *testing.B) { benchExperiment(b, "abl-disaster") }

// BenchmarkProtocolHighway measures full-stack simulation throughput per
// protocol on the reference highway run, reporting PDR alongside time.
func BenchmarkProtocolHighway(b *testing.B) {
	for _, proto := range relroute.Protocols() {
		b.Run(proto, func(b *testing.B) {
			var pdr float64
			for i := 0; i < b.N; i++ {
				opts := relroute.Options{
					Seed: 1, Vehicles: 50, HighwayLength: 1500,
					Duration: 30, Flows: 3, FlowPackets: 10,
				}
				if proto == "DRR" {
					opts.RSUs = 2
				}
				if proto == "Bus" {
					opts.Buses = 3
				}
				sum, err := relroute.Run(proto, opts)
				if err != nil {
					b.Fatal(err)
				}
				pdr = sum.PDR
			}
			b.ReportMetric(pdr, "PDR")
		})
	}
}

// BenchmarkScaleVehicles measures how simulation cost grows with world
// size under the flooding worst case.
func BenchmarkScaleVehicles(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200, 500, 1000, 2000, 5000, 10000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relroute.Run("Flooding", relroute.Options{
					Seed: 1, Vehicles: n, HighwayLength: 2000,
					Duration: 20, Flows: 2, FlowPackets: 5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleVehiclesSharded is the same worst case with the step loop
// fanned over four shards — the intra-run parallelism axis. Output is
// byte-identical to the sequential rows (the shard tests pin that); only
// wall-clock may differ, by up to the core count.
func BenchmarkScaleVehiclesSharded(b *testing.B) {
	for _, n := range []int{1000, 2000, 5000, 10000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relroute.Run("Flooding", relroute.Options{
					Seed: 1, Vehicles: n, HighwayLength: 2000,
					Duration: 20, Flows: 2, FlowPackets: 5, Shards: 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinkLifetime measures the Eqn (4) closed-form solver.
func BenchmarkLinkLifetime(b *testing.B) {
	i := link.Kinematics1D{X: -100, V: 33, A: 0.5}
	j := link.Kinematics1D{X: 0, V: 25, A: -0.2}
	var s float64
	for n := 0; n < b.N; n++ {
		s += link.Lifetime(i, j, 250, 40)
	}
	_ = s
}

// BenchmarkLinkStability measures the probability-model stability metric
// (numeric integration over the relative-speed distribution) that TBP-SS
// evaluates per candidate next hop.
func BenchmarkLinkStability(b *testing.B) {
	var s float64
	for n := 0; n < b.N; n++ {
		s += core.LinkStability(core.MetricMeanDuration, core.StabilityParams{},
			relroute.V(0, 0), relroute.V(30, 0),
			relroute.V(120, 3), relroute.V(25, 0), 250)
	}
	_ = s
}

// BenchmarkReceiptProb measures REAR's RSSI→probability mapping.
func BenchmarkReceiptProb(b *testing.B) {
	m := prob.DefaultReceiptModel()
	var s float64
	for n := 0; n < b.N; n++ {
		s += m.Prob(float64(n%400) + 1)
	}
	_ = s
}

// BenchmarkEngine measures raw event throughput of the simulation core.
func BenchmarkEngine(b *testing.B) {
	eng := sim.NewEngine(1)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		eng.After(0.001, reschedule)
	}
	eng.After(0, reschedule)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := eng.Run(float64(n+1) * 0.5); err != nil {
			b.Fatal(err)
		}
	}
	if count == 0 {
		b.Fatal("no events ran")
	}
}
