package spatial

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// TestEpoch pins the staleness signal the radio link cache keys on: the
// epoch advances exactly when range-query results can change.
func TestEpoch(t *testing.T) {
	g := NewGrid(100)
	e0 := g.Epoch()

	g.Update(1, geom.V(10, 10)) // insert
	if g.Epoch() == e0 {
		t.Fatal("insert did not advance the epoch")
	}
	e1 := g.Epoch()

	g.Update(1, geom.V(10, 10)) // no-op: same position
	if g.Epoch() != e1 {
		t.Fatal("stationary update advanced the epoch")
	}

	g.Update(1, geom.V(20, 10)) // same-cell move still changes distances
	if g.Epoch() == e1 {
		t.Fatal("same-cell move did not advance the epoch")
	}
	e2 := g.Epoch()

	g.Update(1, geom.V(250, 10)) // cross-cell move
	if g.Epoch() == e2 {
		t.Fatal("cross-cell move did not advance the epoch")
	}
	e3 := g.Epoch()

	g.Remove(99) // unknown item: no-op
	if g.Epoch() != e3 {
		t.Fatal("no-op removal advanced the epoch")
	}
	g.Remove(1)
	if g.Epoch() == e3 {
		t.Fatal("removal did not advance the epoch")
	}
}
