package spatial

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// Range queries over a warmed index must not allocate: positions live in a
// dense slice and the caller passes a reusable result buffer.
func TestWithinAllocFree(t *testing.T) {
	g := NewGrid(250)
	for i := int32(0); i < 200; i++ {
		g.Update(i, geom.V(float64(i)*10, 0))
	}
	dst := make([]int32, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		dst = g.Within(geom.V(1000, 0), 250, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("Within allocates %.1f objects/op with a pre-sized dst, want 0", allocs)
	}
}

// Moving an already-indexed item must not allocate unless it enters a
// brand-new cell of the sparse cell table.
func TestUpdateMoveAllocFree(t *testing.T) {
	g := NewGrid(250)
	for i := int32(0); i < 200; i++ {
		g.Update(i, geom.V(float64(i)*10, 0))
	}
	x := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		g.Update(7, geom.V(70+x, 0))
		x += 0.1
		if x > 50 {
			x = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("in-cell Update allocates %.1f objects/op, want 0", allocs)
	}
}
