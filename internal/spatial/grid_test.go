package spatial

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/vanetlab/relroute/internal/geom"
)

func TestUpdateAndPosition(t *testing.T) {
	g := NewGrid(100)
	g.Update(1, geom.V(10, 10))
	p, ok := g.Position(1)
	if !ok || p != geom.V(10, 10) {
		t.Fatalf("position = %v,%v", p, ok)
	}
	g.Update(1, geom.V(500, 500)) // crosses cells
	p, _ = g.Position(1)
	if p != geom.V(500, 500) {
		t.Fatalf("moved position = %v", p)
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestRemove(t *testing.T) {
	g := NewGrid(100)
	g.Update(1, geom.V(0, 0))
	g.Update(2, geom.V(1, 1))
	g.Remove(1)
	if _, ok := g.Position(1); ok {
		t.Fatal("removed item still present")
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
	g.Remove(99) // unknown: no-op
	got := g.Within(geom.V(0, 0), 10, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("within = %v", got)
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGrid(250)
	type item struct {
		id int32
		p  geom.Vec2
	}
	var items []item
	for i := int32(0); i < 300; i++ {
		p := geom.V(rng.Float64()*3000-500, rng.Float64()*3000-500)
		g.Update(i, p)
		items = append(items, item{i, p})
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.V(rng.Float64()*3000-500, rng.Float64()*3000-500)
		r := rng.Float64() * 600
		got := g.Within(q, r, nil)
		var want []int32
		for _, it := range items {
			if it.p.Dist(q) <= r {
				want = append(want, it.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	g := NewGrid(10)
	g.Update(1, geom.V(0, 0))
	if got := g.Within(geom.V(0, 0), -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestNearest(t *testing.T) {
	g := NewGrid(100)
	if _, _, ok := g.Nearest(geom.V(0, 0), -1); ok {
		t.Fatal("nearest on empty grid reported ok")
	}
	g.Update(1, geom.V(100, 0))
	g.Update(2, geom.V(10, 0))
	g.Update(3, geom.V(500, 500))
	id, d, ok := g.Nearest(geom.V(0, 0), -1)
	if !ok || id != 2 || d != 10 {
		t.Fatalf("nearest = %v d=%v ok=%v", id, d, ok)
	}
	// skip the nearest
	id, _, ok = g.Nearest(geom.V(0, 0), 2)
	if !ok || id != 1 {
		t.Fatalf("nearest with skip = %v", id)
	}
}

func TestMoveWithinSameCell(t *testing.T) {
	g := NewGrid(1000)
	g.Update(1, geom.V(10, 10))
	g.Update(1, geom.V(20, 20)) // same cell
	got := g.Within(geom.V(20, 20), 1, nil)
	if len(got) != 1 {
		t.Fatalf("within after same-cell move = %v", got)
	}
}

func TestGridInvariantLenConsistent(t *testing.T) {
	// property: after a random sequence of updates/removes, Len matches
	// the distinct live ids
	f := func(ops []uint8) bool {
		g := NewGrid(50)
		live := map[int32]bool{}
		for i, op := range ops {
			id := int32(op % 16)
			if op%3 == 0 {
				g.Remove(id)
				delete(live, id)
			} else {
				g.Update(id, geom.V(float64(i*7%300), float64(i*13%300)))
				live[id] = true
			}
		}
		return g.Len() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
