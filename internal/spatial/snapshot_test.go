package spatial

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// bruteNearest is the pre-CSR Nearest: a linear scan over every dense slot
// with a strict-less comparison, so equal distances keep the lowest ID.
// The ring search must be indistinguishable from it.
func bruteNearest(g *Grid, p geom.Vec2, skip int32) (int32, float64, bool) {
	best := int32(-1)
	bestD2 := math.Inf(1)
	for i := range g.pos {
		if !g.in[i] || int32(i) == skip {
			continue
		}
		d2 := g.pos[i].DistSq(p)
		if d2 < bestD2 {
			bestD2 = d2
			best = int32(i)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestD2), true
}

// churnGrid builds a grid with random inserts, moves and removes so the
// dense arrays hold tombstones and cells hold move-reordered lists.
func churnGrid(rng *rand.Rand, n int, span float64) *Grid {
	g := NewGrid(120)
	for id := int32(0); id < int32(n); id++ {
		g.Update(id, geom.V(rng.Float64()*span, rng.Float64()*span))
	}
	for k := 0; k < n*2; k++ {
		id := int32(rng.Intn(n))
		switch rng.Intn(4) {
		case 0:
			g.Remove(id)
		default:
			g.Update(id, geom.V(rng.Float64()*span, rng.Float64()*span))
		}
	}
	// a few exact-tie positions to exercise the lowest-ID break
	if n >= 8 {
		tie := geom.V(span/3, span/3)
		g.Update(int32(n-1), tie)
		g.Update(int32(n-3), tie)
		g.Update(int32(n-5), tie)
	}
	return g
}

// TestSnapshotMirrorsGrid checks the CSR view cell by cell against the
// grid's own map: sorted keys, members in cell list order, positions
// aligned, bounding box tight.
func TestSnapshotMirrorsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := churnGrid(rng, 200, 2000)
	s := g.Snapshot()
	if s.Epoch != g.Epoch() {
		t.Fatalf("snapshot epoch %d != grid epoch %d", s.Epoch, g.Epoch())
	}
	if len(s.Cells) != len(g.cells) {
		t.Fatalf("snapshot has %d cells, grid has %d", len(s.Cells), len(g.cells))
	}
	total := 0
	for i, c := range s.Cells {
		if i > 0 {
			prev := s.Cells[i-1]
			if c.CX < prev.CX || (c.CX == prev.CX && c.CY <= prev.CY) {
				t.Fatalf("cells not strictly sorted at %d: %+v after %+v", i, c, prev)
			}
		}
		want := g.cells[cellKey{c.CX, c.CY}]
		got := s.IDs[c.Start:c.End]
		if len(got) != len(want) {
			t.Fatalf("cell (%d,%d): %d members, want %d", c.CX, c.CY, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("cell (%d,%d) member %d: id %d, want %d (list order must survive)", c.CX, c.CY, k, got[k], want[k])
			}
			if s.Pos[int(c.Start)+k] != g.pos[want[k]] {
				t.Fatalf("cell (%d,%d) member %d: position misaligned", c.CX, c.CY, k)
			}
		}
		if c.CX < s.MinCX || c.CX > s.MaxCX || c.CY < s.MinCY || c.CY > s.MaxCY {
			t.Fatalf("cell (%d,%d) outside bounding box [%d..%d]x[%d..%d]", c.CX, c.CY, s.MinCX, s.MaxCX, s.MinCY, s.MaxCY)
		}
		total += len(got)
	}
	if total != g.Len() || len(s.IDs) != g.Len() || len(s.Pos) != g.Len() {
		t.Fatalf("snapshot holds %d ids / %d pos over %d spans, grid has %d items", len(s.IDs), len(s.Pos), total, g.Len())
	}
	// memoized: same epoch hands back the same value without a rebuild
	if again := g.Snapshot(); again != s {
		t.Fatal("second Snapshot in one epoch returned a different value")
	}
	// invalidated by any geometric change
	g.Update(3, geom.V(5000, 5000))
	if s2 := g.Snapshot(); s2.Epoch != g.Epoch() {
		t.Fatalf("post-move snapshot stuck at epoch %d, grid at %d", s2.Epoch, g.Epoch())
	}
}

// TestSnapshotSearch pins the binary search: for every cell, Search finds
// it; for gaps, Search lands on the next cell.
func TestSnapshotSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := churnGrid(rng, 120, 1500)
	s := g.Snapshot()
	for i, c := range s.Cells {
		if got := s.Search(c.CX, c.CY); got != i {
			t.Fatalf("Search(%d,%d) = %d, want %d", c.CX, c.CY, got, i)
		}
	}
	if got := s.Search(math.MaxInt32, math.MaxInt32); got != len(s.Cells) {
		t.Fatalf("Search past the end = %d, want %d", got, len(s.Cells))
	}
}

// TestNearestMatchesBruteForce pins the ring search against the brute-force
// answer — including ID, distance, and the lowest-ID tie-break — over
// churned grids with tombstones, for query points on, between, and far
// outside the occupied cells.
func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(150)
		span := 500 + rng.Float64()*3000
		g := churnGrid(rng, n, span)
		for q := 0; q < 40; q++ {
			p := geom.V(rng.Float64()*span*1.4-span*0.2, rng.Float64()*span*1.4-span*0.2)
			if q%7 == 0 {
				p = geom.V(rng.Float64()*span*20-span*10, rng.Float64()*span*20-span*10) // far away
			}
			skip := int32(-1)
			if q%3 == 0 {
				skip = int32(rng.Intn(n))
			}
			wantID, wantD, wantOK := bruteNearest(g, p, skip)
			gotID, gotD, gotOK := g.Nearest(p, skip)
			if gotOK != wantOK || gotID != wantID || gotD != wantD {
				t.Fatalf("trial %d query %d: Nearest(%v, %d) = (%d, %v, %v), want (%d, %v, %v)",
					trial, q, p, skip, gotID, gotD, gotOK, wantID, wantD, wantOK)
			}
		}
	}
}

// TestNearestEdgeCases covers the empty grid, the skip-only grid, and exact
// position ties.
func TestNearestEdgeCases(t *testing.T) {
	g := NewGrid(50)
	if _, _, ok := g.Nearest(geom.V(0, 0), -1); ok {
		t.Fatal("empty grid returned a nearest item")
	}
	g.Update(4, geom.V(10, 10))
	if _, _, ok := g.Nearest(geom.V(0, 0), 4); ok {
		t.Fatal("grid holding only the skipped item returned it")
	}
	g.Update(9, geom.V(10, 10)) // exact tie with 4
	id, _, ok := g.Nearest(geom.V(0, 0), -1)
	if !ok || id != 4 {
		t.Fatalf("tie broke to %d, want lowest ID 4", id)
	}
	id, _, ok = g.Nearest(geom.V(0, 0), 4)
	if !ok || id != 9 {
		t.Fatalf("with 4 skipped, got %d, want 9", id)
	}
}

// TestSnapshotSteadyStateAllocs pins the arena contract: once the backing
// arrays have grown to the world's size, per-epoch snapshot rebuilds do not
// allocate.
func TestSnapshotSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := churnGrid(rng, 300, 2500)
	// Anchor two cells so the toggled item below never creates or empties a
	// cell — the pin is about the snapshot's arenas, not the grid map.
	g.Update(300, geom.V(50, 50))
	g.Update(301, geom.V(550, 550))
	g.Snapshot() // warm the arenas
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		if flip {
			g.Update(1, geom.V(60, 60)) // advance the epoch
		} else {
			g.Update(1, geom.V(560, 560))
		}
		flip = !flip
		g.Snapshot()
	})
	if allocs > 0 {
		t.Fatalf("steady-state snapshot rebuild allocates %.1f objects/op, want 0", allocs)
	}
}
