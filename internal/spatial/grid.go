// Package spatial provides a uniform-grid index over node positions. The
// MAC layer uses it to find candidate receivers of a broadcast without
// scanning every node, and geographic routers use it for range queries.
package spatial

import (
	"math"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
)

// Grid is a uniform spatial hash over int32 item IDs. IDs are expected to
// be dense from zero (node IDs are), so positions live in a slice indexed
// by ID — range queries do one bounds-checked load per candidate instead of
// a map lookup. The zero value is not usable; construct with NewGrid.
type Grid struct {
	cell  float64
	cells map[cellKey][]int32
	pos   []geom.Vec2 // indexed by id; valid iff present[id]
	in    []bool      // present[id]: id is indexed
	count int
	epoch uint64 // advances on every geometric change; see Epoch
}

type cellKey struct{ cx, cy int32 }

// NewGrid returns a grid with the given cell size in meters. Cell size
// should be on the order of the radio range so range queries touch at most
// nine cells.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]int32),
		epoch: 1, // 1-based so callers can use 0 as a "never seen" sentinel
	}
}

// CellSize returns the configured cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// Epoch returns a counter that advances whenever the indexed geometry
// changes: an item is inserted, removed, or moved to a different position.
// Range-query results are a pure function of the epoch, so callers (the
// radio link cache) can memoize them and detect staleness with one
// comparison instead of re-scanning. A no-op Update (same item, same
// position) does not advance it.
func (g *Grid) Epoch() uint64 { return g.epoch }

// Len returns the number of indexed items.
func (g *Grid) Len() int { return g.count }

func (g *Grid) key(p geom.Vec2) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// grow extends the dense arrays to cover id.
func (g *Grid) grow(id int32) {
	for int(id) >= len(g.pos) {
		g.pos = append(g.pos, geom.Vec2{})
		g.in = append(g.in, false)
	}
}

// Update inserts the item or moves it to a new position.
func (g *Grid) Update(id int32, p geom.Vec2) {
	if id < 0 {
		return
	}
	g.grow(id)
	if g.in[id] {
		if g.pos[id] == p {
			return // stationary item: geometry unchanged, epoch stays
		}
		g.epoch++
		old := g.key(g.pos[id])
		nk := g.key(p)
		if old == nk {
			g.pos[id] = p
			return
		}
		g.removeFromCell(old, id)
	} else {
		g.epoch++
		g.in[id] = true
		g.count++
	}
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
	g.pos[id] = p
}

// Move is a staged cross-cell transition returned by Stage and applied by
// Commit. Values are opaque to callers.
type Move struct {
	id       int32
	from, to cellKey
}

// Stage writes the indexed position of an item without touching cell
// membership or the epoch. It is the concurrent half of the bulk-update
// protocol the sharded world engine uses for its per-tick refresh:
// distinct items live in distinct slots of the dense position array, so
// Stage may be called concurrently for distinct ids (and for nothing
// else — no query or mutation may overlap it). The serial half then
// applies every returned cross-cell Move in a deterministic order and
// advances the epoch once with AdvanceEpoch.
//
// ok is false when the item is not indexed — the caller falls back to a
// serial Update. changed reports whether the position differed (the
// signal to advance the epoch at the barrier); cross reports that mv
// holds a cell transition to Commit. Between a Stage that returns a move
// and its Commit, range queries over the item are undefined.
func (g *Grid) Stage(id int32, p geom.Vec2) (changed bool, mv Move, cross, ok bool) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return false, Move{}, false, false
	}
	if g.pos[id] == p {
		return false, Move{}, false, true
	}
	old := g.key(g.pos[id])
	nk := g.key(p)
	g.pos[id] = p
	if old == nk {
		return true, Move{}, false, true
	}
	return true, Move{id: id, from: old, to: nk}, true, true
}

// Commit applies a staged cross-cell move: the same remove-then-append
// cell surgery Update performs, in whatever order the caller replays the
// moves — cell list order is observable (it decides range-query order),
// so callers must replay in a deterministic order. Serial only.
func (g *Grid) Commit(mv Move) {
	g.removeFromCell(mv.from, mv.id)
	g.cells[mv.to] = append(g.cells[mv.to], mv.id)
}

// AdvanceEpoch advances the epoch by one. It is the bulk-update
// counterpart of the per-Update bump: a tick's worth of Stage/Commit
// calls changes the geometry once as far as any epoch-keyed memo is
// concerned, no matter how many items moved.
func (g *Grid) AdvanceEpoch() { g.epoch++ }

// Remove deletes the item from the index. Removing an unknown item is a
// no-op.
func (g *Grid) Remove(id int32) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return
	}
	g.epoch++
	g.removeFromCell(g.key(g.pos[id]), id)
	g.in[id] = false
	g.count--
}

func (g *Grid) removeFromCell(k cellKey, id int32) {
	items := g.cells[k]
	for i, v := range items {
		if v == id {
			items[i] = items[len(items)-1]
			items = items[:len(items)-1]
			break
		}
	}
	if len(items) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = items
	}
}

// DigestInto folds the index's logical state into d for checkpoint
// verification: the epoch, the dense position/presence arrays in ID
// order, and every cell's member list in list order (cell list order is
// observable — it decides range-query candidate order — and the sharded
// commit protocol keeps it byte-identical at every shard count). Cells
// are visited in sorted key order so the map's iteration order never
// reaches the digest.
func (g *Grid) DigestInto(d *digest.Writer) {
	d.U64(g.epoch)
	d.Int(g.count)
	d.Int(len(g.pos))
	for id, p := range g.pos {
		if !g.in[id] {
			continue
		}
		d.Int(id)
		d.F64(p.X)
		d.F64(p.Y)
	}
	keys := make([]cellKey, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cx != keys[j].cx {
			return keys[i].cx < keys[j].cx
		}
		return keys[i].cy < keys[j].cy
	})
	for _, k := range keys {
		d.U32(uint32(k.cx))
		d.U32(uint32(k.cy))
		items := g.cells[k]
		d.Int(len(items))
		for _, id := range items {
			d.U32(uint32(id))
		}
	}
}

// Position returns the indexed position of the item.
func (g *Grid) Position(id int32) (geom.Vec2, bool) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return geom.Vec2{}, false
	}
	return g.pos[id], true
}

// Within appends to dst the IDs of all items within radius r of p
// (excluding none) and returns the extended slice. Passing a reused dst
// slice avoids allocation in the MAC hot path.
func (g *Grid) Within(p geom.Vec2, r float64, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	r2 := r * r
	minK := g.key(geom.V(p.X-r, p.Y-r))
	maxK := g.key(geom.V(p.X+r, p.Y+r))
	for cx := minK.cx; cx <= maxK.cx; cx++ {
		for cy := minK.cy; cy <= maxK.cy; cy++ {
			for _, id := range g.cells[cellKey{cx, cy}] {
				if g.pos[id].DistSq(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// Nearest returns the indexed item closest to p, excluding the item with id
// skip (pass a negative value to exclude nothing). ok is false when the
// index is empty or holds only the skipped item. Ties break toward the
// lowest ID (deterministic, unlike map iteration).
func (g *Grid) Nearest(p geom.Vec2, skip int32) (id int32, dist float64, ok bool) {
	best := int32(-1)
	bestD2 := math.Inf(1)
	for i := range g.pos {
		if !g.in[i] || int32(i) == skip {
			continue
		}
		d2 := g.pos[i].DistSq(p)
		if d2 < bestD2 {
			bestD2 = d2
			best = int32(i)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestD2), true
}
