// Package spatial provides a uniform-grid index over node positions. The
// MAC layer uses it to find candidate receivers of a broadcast without
// scanning every node, and geographic routers use it for range queries.
package spatial

import (
	"math"
	"slices"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
)

// Grid is a uniform spatial hash over int32 item IDs. IDs are expected to
// be dense from zero (node IDs are), so positions live in a slice indexed
// by ID — range queries do one bounds-checked load per candidate instead of
// a map lookup. The zero value is not usable; construct with NewGrid.
type Grid struct {
	cell  float64
	cells map[cellKey][]int32
	pos   []geom.Vec2 // indexed by id; valid iff present[id]
	in    []bool      // present[id]: id is indexed
	count int
	epoch uint64    // advances on every geometric change; see Epoch
	snap  *Snapshot // per-epoch CSR view, built on demand; see Snapshot
}

type cellKey struct{ cx, cy int32 }

// NewGrid returns a grid with the given cell size in meters. Cell size
// should be on the order of the radio range so range queries touch at most
// nine cells.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]int32),
		epoch: 1, // 1-based so callers can use 0 as a "never seen" sentinel
	}
}

// CellSize returns the configured cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// Epoch returns a counter that advances whenever the indexed geometry
// changes: an item is inserted, removed, or moved to a different position.
// Range-query results are a pure function of the epoch, so callers (the
// radio link cache) can memoize them and detect staleness with one
// comparison instead of re-scanning. A no-op Update (same item, same
// position) does not advance it.
func (g *Grid) Epoch() uint64 { return g.epoch }

// Len returns the number of indexed items.
func (g *Grid) Len() int { return g.count }

func (g *Grid) key(p geom.Vec2) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// grow extends the dense arrays to cover id.
func (g *Grid) grow(id int32) {
	for int(id) >= len(g.pos) {
		g.pos = append(g.pos, geom.Vec2{})
		g.in = append(g.in, false)
	}
}

// Update inserts the item or moves it to a new position.
func (g *Grid) Update(id int32, p geom.Vec2) {
	if id < 0 {
		return
	}
	g.grow(id)
	if g.in[id] {
		if g.pos[id] == p {
			return // stationary item: geometry unchanged, epoch stays
		}
		g.epoch++
		old := g.key(g.pos[id])
		nk := g.key(p)
		if old == nk {
			g.pos[id] = p
			return
		}
		g.removeFromCell(old, id)
	} else {
		g.epoch++
		g.in[id] = true
		g.count++
	}
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
	g.pos[id] = p
}

// Move is a staged cross-cell transition returned by Stage and applied by
// Commit. Values are opaque to callers.
type Move struct {
	id       int32
	from, to cellKey
}

// Stage writes the indexed position of an item without touching cell
// membership or the epoch. It is the concurrent half of the bulk-update
// protocol the sharded world engine uses for its per-tick refresh:
// distinct items live in distinct slots of the dense position array, so
// Stage may be called concurrently for distinct ids (and for nothing
// else — no query or mutation may overlap it). The serial half then
// applies every returned cross-cell Move in a deterministic order and
// advances the epoch once with AdvanceEpoch.
//
// ok is false when the item is not indexed — the caller falls back to a
// serial Update. changed reports whether the position differed (the
// signal to advance the epoch at the barrier); cross reports that mv
// holds a cell transition to Commit. Between a Stage that returns a move
// and its Commit, range queries over the item are undefined.
func (g *Grid) Stage(id int32, p geom.Vec2) (changed bool, mv Move, cross, ok bool) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return false, Move{}, false, false
	}
	if g.pos[id] == p {
		return false, Move{}, false, true
	}
	old := g.key(g.pos[id])
	nk := g.key(p)
	g.pos[id] = p
	if old == nk {
		return true, Move{}, false, true
	}
	return true, Move{id: id, from: old, to: nk}, true, true
}

// Commit applies a staged cross-cell move: the same remove-then-append
// cell surgery Update performs, in whatever order the caller replays the
// moves — cell list order is observable (it decides range-query order),
// so callers must replay in a deterministic order. Serial only.
func (g *Grid) Commit(mv Move) {
	g.removeFromCell(mv.from, mv.id)
	g.cells[mv.to] = append(g.cells[mv.to], mv.id)
}

// AdvanceEpoch advances the epoch by one. It is the bulk-update
// counterpart of the per-Update bump: a tick's worth of Stage/Commit
// calls changes the geometry once as far as any epoch-keyed memo is
// concerned, no matter how many items moved.
func (g *Grid) AdvanceEpoch() { g.epoch++ }

// Remove deletes the item from the index. Removing an unknown item is a
// no-op.
func (g *Grid) Remove(id int32) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return
	}
	g.epoch++
	g.removeFromCell(g.key(g.pos[id]), id)
	g.in[id] = false
	g.count--
}

func (g *Grid) removeFromCell(k cellKey, id int32) {
	items := g.cells[k]
	for i, v := range items {
		if v == id {
			items[i] = items[len(items)-1]
			items = items[:len(items)-1]
			break
		}
	}
	if len(items) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = items
	}
}

// DigestInto folds the index's logical state into d for checkpoint
// verification: the epoch, the dense position/presence arrays in ID
// order, and every cell's member list in list order (cell list order is
// observable — it decides range-query candidate order — and the sharded
// commit protocol keeps it byte-identical at every shard count). Cells
// are visited in sorted key order so the map's iteration order never
// reaches the digest.
func (g *Grid) DigestInto(d *digest.Writer) {
	d.U64(g.epoch)
	d.Int(g.count)
	d.Int(len(g.pos))
	for id, p := range g.pos {
		if !g.in[id] {
			continue
		}
		d.Int(id)
		d.F64(p.X)
		d.F64(p.Y)
	}
	keys := make([]cellKey, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cx != keys[j].cx {
			return keys[i].cx < keys[j].cx
		}
		return keys[i].cy < keys[j].cy
	})
	for _, k := range keys {
		d.U32(uint32(k.cx))
		d.U32(uint32(k.cy))
		items := g.cells[k]
		d.Int(len(items))
		for _, id := range items {
			d.U32(uint32(id))
		}
	}
}

// Position returns the indexed position of the item.
func (g *Grid) Position(id int32) (geom.Vec2, bool) {
	if id < 0 || int(id) >= len(g.in) || !g.in[id] {
		return geom.Vec2{}, false
	}
	return g.pos[id], true
}

// Within appends to dst the IDs of all items within radius r of p
// (excluding none) and returns the extended slice. Passing a reused dst
// slice avoids allocation in the MAC hot path.
func (g *Grid) Within(p geom.Vec2, r float64, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	r2 := r * r
	minK := g.key(geom.V(p.X-r, p.Y-r))
	maxK := g.key(geom.V(p.X+r, p.Y+r))
	for cx := minK.cx; cx <= maxK.cx; cx++ {
		for cy := minK.cy; cy <= maxK.cy; cy++ {
			for _, id := range g.cells[cellKey{cx, cy}] {
				if g.pos[id].DistSq(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// CellBounds returns the inclusive cell-coordinate rectangle covering the
// axis-aligned square of half-width r around p — the stencil Within
// iterates. Bulk callers (the radio cache) use it to walk the same cells
// with CellList instead of paying Within's scratch-slice round trip.
func (g *Grid) CellBounds(p geom.Vec2, r float64) (minCX, minCY, maxCX, maxCY int32) {
	minK := g.key(geom.V(p.X-r, p.Y-r))
	maxK := g.key(geom.V(p.X+r, p.Y+r))
	return minK.cx, minK.cy, maxK.cx, maxK.cy
}

// CellList returns one cell's member list in list order (the order Within
// visits it). The slice is owned by the grid and valid only until the next
// mutation; callers must not retain or modify it. An empty cell returns nil.
func (g *Grid) CellList(cx, cy int32) []int32 { return g.cells[cellKey{cx, cy}] }

// At returns the indexed position of an item known to be present — ids
// obtained from CellList or a Snapshot. Unlike Position it skips the
// presence check; passing an id that is not indexed returns garbage.
func (g *Grid) At(id int32) geom.Vec2 { return g.pos[id] }

// CellSpan is one occupied cell of a Snapshot: its coordinates and the
// half-open [Start, End) window of the snapshot's IDs/Pos arrays holding
// its members, in cell list order.
type CellSpan struct {
	CX, CY     int32
	Start, End int32
}

// Snapshot is a CSR (compressed sparse row) view of the grid frozen at one
// epoch: every occupied cell sorted by (CX, CY), with member IDs and their
// positions packed contiguously per cell. Bulk sweeps iterate it with
// sequential loads instead of hashing cellKey maps per stencil cell, and
// binary-search cell lookup replaces map probes.
//
// The fields are owned by the grid and read-only to callers; they are valid
// until the grid's next geometric change. Min/Max bound the occupied cell
// rectangle (meaningful only when Cells is non-empty).
type Snapshot struct {
	Epoch uint64
	Cells []CellSpan
	IDs   []int32
	Pos   []geom.Vec2

	MinCX, MaxCX, MinCY, MaxCY int32
}

// Search returns the index of the first cell with key >= (cx, cy) in the
// snapshot's (CX, CY) order, or len(Cells) if no such cell exists.
func (s *Snapshot) Search(cx, cy int32) int {
	lo, hi := 0, len(s.Cells)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := &s.Cells[mid]
		if c.CX < cx || (c.CX == cx && c.CY < cy) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Snapshot returns the CSR view of the grid at the current epoch, building
// it on first use per epoch in O(n + cells·log cells) and memoizing it —
// repeat calls within an epoch are one comparison. The backing arrays are
// reused across epochs, so steady-state rebuilds do not allocate. Serial
// only (it mutates the memo); the returned value may then be read from
// concurrent shards as long as no grid mutation overlaps.
func (g *Grid) Snapshot() *Snapshot {
	s := g.snap
	if s == nil {
		s = &Snapshot{}
		g.snap = s
	}
	if s.Epoch == g.epoch {
		return s
	}
	s.Cells = s.Cells[:0]
	s.IDs = s.IDs[:0]
	s.Pos = s.Pos[:0]
	for k := range g.cells {
		s.Cells = append(s.Cells, CellSpan{CX: k.cx, CY: k.cy})
	}
	slices.SortFunc(s.Cells, func(a, b CellSpan) int {
		if a.CX != b.CX {
			if a.CX < b.CX {
				return -1
			}
			return 1
		}
		if a.CY != b.CY {
			if a.CY < b.CY {
				return -1
			}
			return 1
		}
		return 0
	})
	for i := range s.Cells {
		c := &s.Cells[i]
		c.Start = int32(len(s.IDs))
		for _, id := range g.cells[cellKey{c.CX, c.CY}] {
			s.IDs = append(s.IDs, id)
			s.Pos = append(s.Pos, g.pos[id])
		}
		c.End = int32(len(s.IDs))
		if i == 0 {
			s.MinCX, s.MaxCX = c.CX, c.CX
			s.MinCY, s.MaxCY = c.CY, c.CY
			continue
		}
		s.MaxCX = c.CX // cells are CX-sorted
		if c.CY < s.MinCY {
			s.MinCY = c.CY
		}
		if c.CY > s.MaxCY {
			s.MaxCY = c.CY
		}
	}
	s.Epoch = g.epoch
	return s
}

// Nearest returns the indexed item closest to p, excluding the item with id
// skip (pass a negative value to exclude nothing). ok is false when the
// index is empty or holds only the skipped item. Ties break toward the
// lowest ID (deterministic, unlike map iteration).
//
// The search expands cell rings outward from p's cell over the CSR
// snapshot, stopping once no farther ring can beat the best candidate — a
// point in a cell at Chebyshev ring distance k is at least (k-1) cell
// widths away from p. Cost is O(rings visited) after the per-epoch
// snapshot build, instead of a scan over every dense slot (including
// tombstones) per call.
func (g *Grid) Nearest(p geom.Vec2, skip int32) (id int32, dist float64, ok bool) {
	if g.count == 0 {
		return 0, 0, false
	}
	s := g.Snapshot()
	ck := g.key(p)
	maxRing := max(
		absDelta(s.MinCX, ck.cx), absDelta(s.MaxCX, ck.cx),
		absDelta(s.MinCY, ck.cy), absDelta(s.MaxCY, ck.cy),
	)
	best := int32(-1)
	bestD2 := math.Inf(1)
	for ring := int32(0); ring <= maxRing; ring++ {
		if best >= 0 {
			// Not strict: a ring at exactly bestD2 could still hold an
			// equal-distance item with a lower ID, so only break when the
			// ring's floor distance is strictly worse.
			if lo := float64(ring-1) * g.cell; lo > 0 && lo*lo > bestD2 {
				break
			}
		}
		if ring == 0 {
			s.scanRow(p, ck.cx, ck.cy, ck.cy, skip, &best, &bestD2)
			continue
		}
		s.scanRow(p, ck.cx-ring, ck.cy-ring, ck.cy+ring, skip, &best, &bestD2)
		for cx := ck.cx - ring + 1; cx <= ck.cx+ring-1; cx++ {
			s.scanRow(p, cx, ck.cy-ring, ck.cy-ring, skip, &best, &bestD2)
			s.scanRow(p, cx, ck.cy+ring, ck.cy+ring, skip, &best, &bestD2)
		}
		s.scanRow(p, ck.cx+ring, ck.cy-ring, ck.cy+ring, skip, &best, &bestD2)
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestD2), true
}

func absDelta(a, b int32) int32 {
	if a > b {
		return a - b
	}
	return b - a
}

// scanRow folds the members of cells (cx, cyLo..cyHi) into the running
// nearest candidate: strictly closer wins, equal distance breaks to the
// lower ID.
func (s *Snapshot) scanRow(p geom.Vec2, cx, cyLo, cyHi, skip int32, best *int32, bestD2 *float64) {
	for i := s.Search(cx, cyLo); i < len(s.Cells); i++ {
		c := &s.Cells[i]
		if c.CX != cx || c.CY > cyHi {
			return
		}
		for k := c.Start; k < c.End; k++ {
			id := s.IDs[k]
			if id == skip {
				continue
			}
			d2 := s.Pos[k].DistSq(p)
			if d2 < *bestD2 || (d2 == *bestD2 && id < *best) {
				*bestD2, *best = d2, id
			}
		}
	}
}
