package spatial

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// TestStageCommitMatchesUpdate drives two grids through the same random
// walk — one via Update, one via the two-phase Stage/Commit protocol the
// sharded step loop uses — and checks they answer every query the same.
// The only sanctioned difference is the epoch counter: Update bumps it per
// geometric change, Stage/Commit leaves it for one AdvanceEpoch per tick.
func TestStageCommitMatchesUpdate(t *testing.T) {
	ref := NewGrid(100)
	two := NewGrid(100)
	rng := rand.New(rand.NewSource(42))
	const n = 40
	pos := make([]geom.Vec2, n)
	for id := int32(0); id < n; id++ {
		pos[id] = geom.V(rng.Float64()*1000, rng.Float64()*1000)
		ref.Update(id, pos[id])
		two.Update(id, pos[id])
	}
	for step := 0; step < 50; step++ {
		var moves []Move
		anyChanged := false
		for id := int32(0); id < n; id++ {
			// mix of no-op, intra-cell jitter, and cross-cell jumps
			switch rng.Intn(3) {
			case 1:
				pos[id] = pos[id].Add(geom.V(rng.Float64()*5, rng.Float64()*5))
			case 2:
				pos[id] = geom.V(rng.Float64()*1000, rng.Float64()*1000)
			}
			ref.Update(id, pos[id])
			changed, mv, cross, ok := two.Stage(id, pos[id])
			if !ok {
				t.Fatalf("step %d: Stage(%d) reported unknown id", step, id)
			}
			anyChanged = anyChanged || changed
			if cross {
				moves = append(moves, mv)
			}
		}
		for _, mv := range moves {
			two.Commit(mv)
		}
		if anyChanged {
			two.AdvanceEpoch()
		}
		for id := int32(0); id < n; id++ {
			rp, _ := ref.Position(id)
			tp, ok := two.Position(id)
			if !ok || rp != tp {
				t.Fatalf("step %d: Position(%d) = %v/%v, want %v", step, id, tp, ok, rp)
			}
			want := ref.Within(rp, 150, nil)
			got := two.Within(tp, 150, nil)
			if len(want) != len(got) {
				t.Fatalf("step %d id %d: Within sizes %d != %d", step, id, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("step %d id %d: Within[%d] = %d, want %d (cell-list order diverged)", step, id, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStageUnknownAndRemoved pins Stage's guard results: unknown ids and
// removed ids report ok=false and stage nothing.
func TestStageUnknownAndRemoved(t *testing.T) {
	g := NewGrid(100)
	if _, _, _, ok := g.Stage(0, geom.V(1, 1)); ok {
		t.Fatal("Stage on empty grid reported ok")
	}
	g.Update(0, geom.V(1, 1))
	g.Remove(0)
	if _, _, _, ok := g.Stage(0, geom.V(2, 2)); ok {
		t.Fatal("Stage on removed id reported ok")
	}
}

// TestAdvanceEpochBumpsOnce pins the tick contract the memo layers rely
// on: Stage and Commit never move the epoch; one AdvanceEpoch moves it by
// exactly one.
func TestAdvanceEpochBumpsOnce(t *testing.T) {
	g := NewGrid(100)
	g.Update(0, geom.V(10, 10))
	e0 := g.Epoch()
	changed, mv, cross, ok := g.Stage(0, geom.V(510, 510))
	if !ok || !changed || !cross {
		t.Fatalf("Stage = changed %v cross %v ok %v, want a cross-cell move", changed, cross, ok)
	}
	if g.Epoch() != e0 {
		t.Fatalf("Stage moved the epoch: %d -> %d", e0, g.Epoch())
	}
	g.Commit(mv)
	if g.Epoch() != e0 {
		t.Fatalf("Commit moved the epoch: %d -> %d", e0, g.Epoch())
	}
	g.AdvanceEpoch()
	if g.Epoch() != e0+1 {
		t.Fatalf("AdvanceEpoch moved the epoch %d -> %d, want +1", e0, g.Epoch())
	}
}
