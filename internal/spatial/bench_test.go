package spatial

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// BenchmarkWithin measures a 250 m range query over 200 nodes spread on
// a 2 km highway strip — the MAC's candidate-receiver lookup.
func BenchmarkWithin(b *testing.B) {
	g := NewGrid(250)
	for i := int32(0); i < 200; i++ {
		g.Update(i, geom.V(float64(i)*10, float64(i%4)*3.5))
	}
	var dst []int32
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		dst = g.Within(geom.V(1000, 0), 250, dst[:0])
	}
	if len(dst) == 0 {
		b.Fatal("no results")
	}
}

// BenchmarkUpdate measures moving an indexed node — the per-vehicle
// per-tick cost of World.step.
func BenchmarkUpdate(b *testing.B) {
	g := NewGrid(250)
	for i := int32(0); i < 200; i++ {
		g.Update(i, geom.V(float64(i)*10, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		id := int32(n % 200)
		g.Update(id, geom.V(float64(id)*10+float64(n%7), 0))
	}
}
