package mac

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// TestRNGDrawOrderContract pins the MAC's complete draw-order contract on
// its shared stream (the layer's one engine stream). Every stochastic
// decision the MAC makes, who draws it, and in what order:
//
//	stage                          draws on the MAC stream
//	─────────────────────────────  ──────────────────────────────────────
//	Send (queue idle → arming)     1 uniform: backoff
//	attempt, medium busy (defer)   1 uniform: backoff re-arm — per
//	                               deferral, up to MaxRetries, none on
//	                               the drop that exhausts them
//	transmit, per candidate        in neighborhood order, per receiver:
//	  receiver                       1. channel DecodableAt — exactly the
//	                                    model's draws (Shadowing: 1
//	                                    uniform when the receipt
//	                                    probability is strictly inside
//	                                    (0,1); UnitDisk: none)
//	                                 2. fault-plane partial loss — 1
//	                                    uniform iff 0 < p < 1; a severed
//	                                    link (p ≥ 1) draws nothing
//	finishTx (resolve + deliver)   0 — classification is draw-free; the
//	                               receiver-side RSSI draw belongs to the
//	                               receiver's private stream in netstack
//	finishTx, queue non-empty      1 uniform: backoff for the next frame
//	  (incl. unicast ARQ retry)
//
// The serial RNG lane rule follows from this table: all transmit-side
// draws happen serially in candidate order before any fanned-out
// reception bookkeeping, so the stream is byte-identical at every shard
// count. The same order must hold for every frame kind — broadcast and
// unicast differ only in the ARQ tail, never in the per-receiver lane.
func TestRNGDrawOrderContract(t *testing.T) {
	eng := sim.NewEngine(7)
	grid := spatial.NewGrid(250)
	ch := channel.NewShadowing(prob.DefaultReceiptModel())
	// Three candidate receivers, all with receipt probability strictly
	// inside (0,1) so each costs exactly one channel uniform.
	for id, x := range map[int32]float64{1: 150, 2: 160, 3: 170} {
		grid.Update(id, geom.V(x, 0))
		if p := ch.PathLoss(x); p <= 0 || p >= 1 {
			t.Fatalf("receipt prob at %gm = %v, need strictly interior for the draw count", x, p)
		}
	}
	grid.Update(0, geom.V(0, 0))
	col := metrics.NewCollector()
	layer := NewLayer(eng, radio.NewCache(grid, ch), Config{
		MaxBackoff:  1e-6, // transmits start ~instantly
		LinkRetries: -1,   // ARQ off: a failed unicast drops at first resolve
	}, col, func(int32, Frame) {}, func(int32, Frame) {})
	// Fault plane: rx2's link degrades (one extra uniform), rx3's is
	// severed (no draw at all).
	layer.SetLinkFault(func(from, to int32) float64 {
		switch to {
		case 2:
			return 0.5
		case 3:
			return 1.0
		}
		return 0
	})
	draws := func() uint64 { return eng.AppendStreamStates(nil)[1].Draws }

	// ── broadcast ──
	layer.Send(Frame{From: 0, To: Broadcast, Size: 7500}) // airtime 10ms
	if got := draws(); got != 1 {
		t.Fatalf("after Send: %d draws, want 1 (backoff)", got)
	}
	if err := eng.Run(0.001); err != nil { // transmit done, airtime pending
		t.Fatal(err)
	}
	if got := draws(); got != 5 {
		t.Fatalf("after transmit: %d draws, want 5 (backoff + 3 decodable + 1 partial fault)", got)
	}

	// ── busy-medium deferrals ── node 1 is mid-reception of node 0's
	// frame, so each attempt defers and re-arms until retries exhaust:
	// 1 send backoff + MaxRetries re-arms, nothing for the final drop.
	layer.Send(Frame{From: 1, To: Broadcast, Size: 100})
	if err := eng.Run(0.005); err != nil { // all deferrals fire, airtime still pending
		t.Fatal(err)
	}
	if got := draws(); got != 5+1+7 {
		t.Fatalf("after deferral exhaustion: %d draws, want %d (send backoff + 7 deferral re-arms)", got, 5+1+7)
	}
	if err := eng.Run(1); err != nil { // frame 0 resolves; both queues idle
		t.Fatal(err)
	}
	if got := draws(); got != 13 {
		t.Fatalf("after resolve: %d draws, want 13 (finishTx and delivery draw nothing)", got)
	}

	// ── unicast to a severed link ── same per-receiver lane as
	// broadcast; the guaranteed failure drops without ARQ (disabled), so
	// no trailing backoff draw either.
	layer.Send(Frame{From: 0, To: 3, Size: 7500})
	if err := eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := draws(); got != 13+1+4 {
		t.Fatalf("after unicast lifecycle: %d draws, want %d (backoff + 3 decodable + 1 partial fault, 0 for the drop)", got, 13+1+4)
	}
	if col.MACTransmits != 2 {
		t.Fatalf("MACTransmits = %d, want 2", col.MACTransmits)
	}
}
