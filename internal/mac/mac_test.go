package mac

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

type fixture struct {
	eng   *sim.Engine
	grid  *spatial.Grid
	col   *metrics.Collector
	layer *Layer
	rx    []Frame
	rxBy  map[int32][]Frame
	fails []Frame
}

func newFixture(cfg Config, rangeM float64) *fixture {
	f := &fixture{
		eng:  sim.NewEngine(1),
		grid: spatial.NewGrid(rangeM),
		col:  metrics.NewCollector(),
		rxBy: make(map[int32][]Frame),
	}
	f.layer = NewLayer(f.eng, radio.NewCache(f.grid, channel.UnitDisk{Range: rangeM}), cfg, f.col,
		func(to int32, fr Frame) {
			f.rx = append(f.rx, fr)
			f.rxBy[to] = append(f.rxBy[to], fr)
		},
		func(from int32, fr Frame) { f.fails = append(f.fails, fr) },
	)
	return f
}

func TestBroadcastDelivery(t *testing.T) {
	f := newFixture(Config{}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(100, 0))
	f.grid.Update(2, geom.V(200, 0))
	f.grid.Update(3, geom.V(600, 0)) // out of range
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 100, Payload: "x"})
	if err := f.eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) != 1 || len(f.rxBy[2]) != 1 {
		t.Fatalf("in-range receivers got %d/%d frames", len(f.rxBy[1]), len(f.rxBy[2]))
	}
	if len(f.rxBy[3]) != 0 {
		t.Fatal("out-of-range receiver got the frame")
	}
	if len(f.rxBy[0]) != 0 {
		t.Fatal("sender received its own frame")
	}
	if f.col.MACTransmits != 1 {
		t.Fatalf("transmits = %d", f.col.MACTransmits)
	}
}

func TestUnicastOnlyAddresseeGetsUpcall(t *testing.T) {
	// The MAC delivers every decodable frame; filtering to the addressee
	// happens in the netstack dispatch. Here both hear it.
	f := newFixture(Config{}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(50, 0))
	f.grid.Update(2, geom.V(100, 0))
	f.layer.Send(Frame{From: 0, To: 1, Size: 100})
	if err := f.eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) != 1 {
		t.Fatal("addressee did not receive")
	}
}

func TestRemovedReceiverGetsNoReception(t *testing.T) {
	// Regression: the pre-cache transmit loop ignored the ok return of
	// grid.Position(rx), so a receiver the grid stopped tracking would
	// have been received at a stale/zero position. A node that leaves the
	// index — failure injection, despawn — must stop receiving immediately,
	// even when the sender's neighborhood was cached while it was present.
	f := newFixture(Config{}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(100, 0))
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 100}) // warms the cached neighborhood
	if err := f.eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) != 1 {
		t.Fatalf("receiver got %d frames while present, want 1", len(f.rxBy[1]))
	}
	f.grid.Remove(1)
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 100})
	if err := f.eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) != 1 {
		t.Fatalf("removed node received a frame (got %d total)", len(f.rxBy[1]))
	}
	if f.col.MACTransmits != 2 {
		t.Fatalf("transmits = %d, want 2", f.col.MACTransmits)
	}
}

func TestCollisionOnSimultaneousSend(t *testing.T) {
	// Two senders out of carrier-sense range of each other, both in range
	// of the middle receiver: the classic hidden-terminal collision.
	f := newFixture(Config{MaxBackoff: 1e-9}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(240, 0)) // receiver in range of both
	f.grid.Update(2, geom.V(480, 0)) // 480 m from node 0: hidden
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 1500})
	f.layer.Send(Frame{From: 2, To: Broadcast, Size: 1500})
	if err := f.eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) != 0 {
		t.Fatalf("receiver decoded %d frames through a collision", len(f.rxBy[1]))
	}
	if f.col.MACCollisions == 0 {
		t.Fatal("no collisions recorded")
	}
}

func TestCarrierSenseDefers(t *testing.T) {
	// Two senders within carrier-sense range: the second defers and both
	// frames get through.
	f := newFixture(Config{}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(100, 0))
	f.grid.Update(2, geom.V(50, 0)) // receiver hears both
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 1500})
	f.layer.Send(Frame{From: 1, To: Broadcast, Size: 1500})
	if err := f.eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[2]) != 2 {
		t.Fatalf("receiver got %d of 2 frames", len(f.rxBy[2]))
	}
}

func TestConservation(t *testing.T) {
	// every potential reception resolves exactly once: delivered,
	// collided, or channel-lost
	f := newFixture(Config{MaxBackoff: 1e-6}, 250)
	for i := int32(0); i < 10; i++ {
		f.grid.Update(i, geom.V(float64(i)*60, 0))
	}
	const frames = 40
	for k := 0; k < frames; k++ {
		f.layer.Send(Frame{From: int32(k % 10), To: Broadcast, Size: 400})
	}
	if err := f.eng.Run(5); err != nil {
		t.Fatal(err)
	}
	resolved := f.col.MACDelivered + f.col.MACCollisions + f.col.MACChannelLoss
	if resolved == 0 {
		t.Fatal("nothing resolved")
	}
	if f.col.MACDelivered != len(f.rx) {
		t.Fatalf("delivered counter %d != upcalls %d", f.col.MACDelivered, len(f.rx))
	}
	if f.eng.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", f.eng.Pending())
	}
}

func TestQueueCapDrops(t *testing.T) {
	f := newFixture(Config{QueueCap: 2, MaxBackoff: 10}, 250) // huge backoff jams the queue
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(10, 0))
	for i := 0; i < 10; i++ {
		f.layer.Send(Frame{From: 0, To: Broadcast, Size: 100})
	}
	if f.col.MACChannelLoss < 7 {
		t.Fatalf("queue overflow losses = %d, want ≥7", f.col.MACChannelLoss)
	}
}

func TestUnicastARQRecoversOnRetry(t *testing.T) {
	// Receiver is in range, but a colliding hidden transmission destroys
	// the first attempt; ARQ must retry and succeed.
	f := newFixture(Config{MaxBackoff: 1e-9, LinkRetries: 4}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(240, 0))
	f.grid.Update(2, geom.V(480, 0))
	f.layer.Send(Frame{From: 0, To: 1, Size: 1500})
	f.layer.Send(Frame{From: 2, To: Broadcast, Size: 1500}) // collides once
	if err := f.eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(f.rxBy[1]) == 0 {
		t.Fatal("unicast never recovered despite ARQ")
	}
	if len(f.fails) != 0 {
		t.Fatalf("fail upcall fired despite eventual success: %d", len(f.fails))
	}
}

func TestUnicastFailureUpcall(t *testing.T) {
	f := newFixture(Config{LinkRetries: 2}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(9, geom.V(10000, 0)) // addressee far out of range
	f.layer.Send(Frame{From: 0, To: 9, Size: 100, Payload: "gone"})
	if err := f.eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(f.fails) != 1 {
		t.Fatalf("fail upcalls = %d, want 1", len(f.fails))
	}
	if f.fails[0].Payload != "gone" {
		t.Fatal("failed frame payload lost")
	}
	// broadcast frames never trigger the failure upcall
	f2 := newFixture(Config{LinkRetries: 2}, 250)
	f2.grid.Update(0, geom.V(0, 0))
	f2.layer.Send(Frame{From: 0, To: Broadcast, Size: 100})
	if err := f2.eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(f2.fails) != 0 {
		t.Fatal("broadcast triggered failure upcall")
	}
}

func TestAirtimeScalesWithSize(t *testing.T) {
	f := newFixture(Config{BitRate: 1e6, MaxBackoff: 1e-12}, 250)
	f.grid.Update(0, geom.V(0, 0))
	f.grid.Update(1, geom.V(10, 0))
	var deliveredAt float64
	f.layer.deliver = func(to int32, fr Frame) { deliveredAt = f.eng.Now() }
	f.layer.Send(Frame{From: 0, To: Broadcast, Size: 1000}) // 8000 bits at 1 Mb/s = 8 ms
	if err := f.eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if deliveredAt < 0.008 || deliveredAt > 0.009 {
		t.Fatalf("delivery at %v, want ≈8 ms airtime", deliveredAt)
	}
}
