package mac

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// runShardedStorm drives a dense broadcast storm — every node beacons, so
// neighborhoods are large enough (≥ fanMin) that the reception fan-out
// actually crosses the pool — and returns the layer digest plus the
// delivery counters.
func runShardedStorm(t *testing.T, pool *par.Pool) (uint64, [3]int) {
	t.Helper()
	eng := sim.NewEngine(11)
	grid := spatial.NewGrid(250)
	n := int32(48)
	for id := int32(0); id < n; id++ {
		// 12m spacing: ~40 in-range candidates per sender (crossing the
		// fan-out threshold) while the line's far ends stay hidden from
		// each other, so middle receivers see hidden-terminal collisions
		// that carrier sense cannot prevent.
		grid.Update(id, geom.V(float64(id)*12, 0))
	}
	col := metrics.NewCollector()
	layer := NewLayer(eng, radio.NewCache(grid, channel.UnitDisk{Range: 250}), Config{}, col,
		func(int32, Frame) {}, func(int32, Frame) {})
	layer.SetPool(pool)
	for id := int32(0); id < n; id++ {
		from := id
		eng.Ticker(float64(id)*1e-4, 0.01, 0, nil, func() {
			layer.Send(Frame{From: from, To: Broadcast, Size: 400})
		})
	}
	if err := eng.Run(0.2); err != nil {
		t.Fatal(err)
	}
	d := digest.New()
	layer.DigestInto(d)
	return d.Sum(), [3]int{col.MACDelivered, col.MACCollisions, col.MACChannelLoss}
}

// TestShardedReceptionMatchesSequential pins the sharded beacon-reception
// contract: the serial RNG lane plus the draw-free fan-out must leave the
// MAC byte-identical at every pool size. Run under -race this also proves
// the fan writes disjoint receiver states.
func TestShardedReceptionMatchesSequential(t *testing.T) {
	seqDigest, seqCol := runShardedStorm(t, par.Seq)
	pool := par.New(4)
	defer pool.Close()
	parDigest, parCol := runShardedStorm(t, pool)
	if seqDigest != parDigest {
		t.Fatalf("layer digest diverged: seq %x, 4 shards %x", seqDigest, parDigest)
	}
	if seqCol != parCol {
		t.Fatalf("counters diverged:\nseq    %+v\nshards %+v", seqCol, parCol)
	}
	if seqCol[0] == 0 || seqCol[1] == 0 {
		t.Fatalf("storm too quiet to prove anything: %+v", seqCol)
	}
}
