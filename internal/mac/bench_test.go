package mac

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// BenchmarkBroadcastStorm measures the MAC's steady-state frame lifecycle —
// Send, backoff, carrier sense, per-receiver receptions, collision
// resolution — with 50 nodes each broadcasting into a dense segment. One
// op is a full 50-frame storm wave, drained. This is the per-frame hot
// path behind BenchmarkScaleVehicles; after the pools warm up it must not
// allocate.
func BenchmarkBroadcastStorm(b *testing.B) {
	const nodes = 50
	eng := sim.NewEngine(1)
	grid := spatial.NewGrid(250)
	col := metrics.NewCollector()
	layer := NewLayer(eng, radio.NewCache(grid, channel.UnitDisk{Range: 250}), Config{}, col,
		func(to int32, f Frame) {}, nil)
	for i := int32(0); i < nodes; i++ {
		grid.Update(i, geom.V(float64(i)*20, 0))
	}
	until := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := int32(0); i < nodes; i++ {
			layer.Send(Frame{From: i, To: Broadcast, Size: 400})
		}
		until += 2
		if err := eng.Run(until); err != nil {
			b.Fatal(err)
		}
	}
	if col.MACTransmits == 0 {
		b.Fatal("nothing transmitted")
	}
}

// BenchmarkUnicastARQ measures the steady-state unicast retransmission
// path: every frame is addressed to an out-of-range receiver, so the ARQ
// budget is fully spent per send.
func BenchmarkUnicastARQ(b *testing.B) {
	eng := sim.NewEngine(1)
	grid := spatial.NewGrid(250)
	col := metrics.NewCollector()
	layer := NewLayer(eng, radio.NewCache(grid, channel.UnitDisk{Range: 250}), Config{LinkRetries: 4}, col,
		func(to int32, f Frame) {}, nil)
	grid.Update(0, geom.V(0, 0))
	grid.Update(1, geom.V(5000, 0))
	until := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for k := 0; k < 32; k++ {
			layer.Send(Frame{From: 0, To: 1, Size: 400})
		}
		until += 5
		if err := eng.Run(until); err != nil {
			b.Fatal(err)
		}
	}
}
