// Package mac implements a simplified CSMA broadcast MAC over the channel
// models: frames occupy airtime, senders defer while the medium around
// them is busy, and receptions that overlap in time at a receiver are
// destroyed. That is the minimum realism needed to reproduce the broadcast
// storm problem (Ni et al. [5]) that Table I's "connectivity" row hinges
// on, without modelling full 802.11p EDCA.
//
// The layer is allocation-free in steady state: reception records are
// pooled, end-of-airtime events reuse one pre-bound callback per node
// (instead of a fresh closure per receiver per frame), per-node state
// lives in a dense slice keyed by node ID, and transmit queues are ring
// buffers. The simulation engine is single-threaded, so the free lists
// need no synchronisation.
package mac

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Broadcast is the link-layer broadcast address.
const Broadcast int32 = -1

// Frame is one link-layer transmission.
type Frame struct {
	From    int32
	To      int32 // Broadcast or a node id
	Size    int   // bytes, including headers
	Payload any

	attempts int // link-layer retransmissions so far (unicast ARQ)
}

// Config holds MAC parameters.
type Config struct {
	// BitRate in bits/s. Zero means 6 Mb/s (the 802.11p base rate).
	BitRate float64
	// MaxBackoff is the maximum random access delay in seconds drawn
	// before each transmission attempt. Zero means 2 ms.
	MaxBackoff float64
	// MaxRetries bounds busy-medium deferrals per frame. Zero means 7.
	MaxRetries int
	// QueueCap bounds the per-node transmit queue. Zero means 64.
	QueueCap int
	// LinkRetries is the unicast ARQ budget: how many times a unicast
	// frame is retransmitted when the addressed receiver did not decode
	// it (802.11-style retry, observed via the simulator's omniscient
	// channel state rather than explicit ACK frames). Zero means 4; −1
	// disables ARQ.
	LinkRetries int
}

func (c Config) bitRate() float64 {
	if c.BitRate <= 0 {
		return 6e6
	}
	return c.BitRate
}

func (c Config) maxBackoff() float64 {
	if c.MaxBackoff <= 0 {
		return 2e-3
	}
	return c.MaxBackoff
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 7
	}
	return c.MaxRetries
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) linkRetries() int {
	if c.LinkRetries < 0 {
		return 0
	}
	if c.LinkRetries == 0 {
		return 4
	}
	return c.LinkRetries
}

// reception tracks one in-flight frame arriving at one receiver. Records
// are pooled by the layer; seq is a creation stamp used to match finish
// events to receptions (events fire in exactly (end, seq) order).
type reception struct {
	frame    Frame
	end      float64
	seq      uint64
	decoded  bool // channel draw said the frame is decodable
	collided bool
}

// frameDeque is a ring-buffer queue of frames with O(1) push-front, so ARQ
// retransmissions cut the line without reallocating the queue.
type frameDeque struct {
	buf  []Frame
	head int
	n    int
}

func (d *frameDeque) len() int { return d.n }

func (d *frameDeque) grow() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]Frame, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

func (d *frameDeque) pushBack(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = f
	d.n++
}

func (d *frameDeque) pushFront(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = f
	d.n++
}

func (d *frameDeque) popFront() Frame {
	f := d.buf[d.head]
	d.buf[d.head] = Frame{} // drop payload reference
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return f
}

// recHeap is a min-heap of receptions ordered by (end, seq) — the exact
// order their finish events fire in, so the root is always the reception
// the current finish event belongs to. The backing slice is reused.
type recHeap []*reception

func recBefore(a, b *reception) bool {
	if a.end != b.end {
		return a.end < b.end
	}
	return a.seq < b.seq
}

func (h *recHeap) push(r *reception) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !recBefore(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *recHeap) popMin() *reception {
	s := *h
	n := len(s)
	if n == 0 {
		return nil
	}
	root := s[0]
	n--
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && recBefore(s[right], s[left]) {
			smallest = right
		}
		if !recBefore(s[smallest], s[i]) {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	*h = s
	return root
}

// nodeState is the per-node MAC state.
type nodeState struct {
	queue   frameDeque
	sending bool
	txUntil float64      // sender busy until (own transmission)
	active  []*reception // receptions currently audible at this node (carrier sense)
	pending recHeap      // receptions awaiting their end-of-airtime event
	retries int

	// in-flight transmission state; a node transmits one frame at a time
	// (sending serialises), so it lives here instead of in a closure.
	txFrame      Frame
	txUnicastRec *reception // addressed receiver's reception, until resolved
	txUnicastOK  bool       // outcome copied at reception resolution

	// pre-bound engine callbacks, created once per node
	attemptFn  func()
	finishRxFn func()
	finishTxFn func()
}

// Layer is the shared MAC instance. All nodes transmit through it; it owns
// the collision bookkeeping.
type Layer struct {
	eng     *sim.Engine
	ch      channel.Model
	grid    *spatial.Grid
	cfg     Config
	rng     *rand.Rand
	col     *metrics.Collector
	deliver func(to int32, f Frame)
	fail    func(from int32, f Frame)
	done    func(f Frame)
	nodes   []*nodeState // dense, keyed by node id
	scratch []int32
	recFree []*reception
	recSeq  uint64
}

// NewLayer wires the MAC to the engine, channel, spatial index and metrics
// collector. deliver is the upcall invoked for every successfully received
// frame; fail is invoked at the sender when a unicast frame is dropped
// without the addressed receiver decoding it — ARQ exhaustion or a
// busy-medium (congestion) drop, the 802.11 "transmission failure"
// indication upper layers key link-break detection on. fail may be nil.
func NewLayer(eng *sim.Engine, ch channel.Model, grid *spatial.Grid, cfg Config, col *metrics.Collector, deliver func(to int32, f Frame), fail func(from int32, f Frame)) *Layer {
	return &Layer{
		eng: eng, ch: ch, grid: grid, cfg: cfg,
		rng: eng.Rand(), col: col, deliver: deliver, fail: fail,
	}
}

// OnFrameDone registers a hook invoked exactly once per accepted frame when
// it permanently leaves the MAC: after the transmission (and any ARQ
// retries) completed, or when the frame was dropped on queue overflow,
// congestion, or ARQ exhaustion. The network stack uses it to recycle
// pooled frame payloads; by the time it fires, every receiver upcall for
// the frame has already run.
func (l *Layer) OnFrameDone(fn func(f Frame)) { l.done = fn }

func (l *Layer) frameDone(f Frame) {
	if l.done != nil {
		l.done(f)
	}
}

// state returns the per-node state, creating it (with its pre-bound
// callbacks) on first use. Node IDs are dense from 0.
func (l *Layer) state(id int32) *nodeState {
	for int(id) >= len(l.nodes) {
		l.nodes = append(l.nodes, nil)
	}
	st := l.nodes[id]
	if st == nil {
		st = &nodeState{}
		st.attemptFn = func() { l.attempt(id) }
		st.finishRxFn = func() { l.finishReception(id) }
		st.finishTxFn = func() { l.finishTx(id) }
		l.nodes[id] = st
	}
	return st
}

// newReception takes a record from the pool.
func (l *Layer) newReception(f Frame, end float64, decoded bool) *reception {
	var rec *reception
	if n := len(l.recFree); n > 0 {
		rec = l.recFree[n-1]
		l.recFree = l.recFree[:n-1]
	} else {
		rec = &reception{}
	}
	l.recSeq++
	*rec = reception{frame: f, end: end, decoded: decoded, seq: l.recSeq}
	return rec
}

// releaseReception returns a resolved record to the pool. No reference may
// outlive this call: the record is removed from both per-node lists and the
// sender's ARQ outcome has been copied out before release.
func (l *Layer) releaseReception(rec *reception) {
	rec.frame = Frame{}
	l.recFree = append(l.recFree, rec)
}

// Send enqueues a frame for transmission from frame.From. Frames beyond the
// queue cap are dropped (and counted as channel loss).
func (l *Layer) Send(f Frame) {
	st := l.state(f.From)
	if st.queue.len() >= l.cfg.queueCap() {
		l.col.MACChannelLoss++
		l.frameDone(f)
		return
	}
	st.queue.pushBack(f)
	if !st.sending {
		st.sending = true
		l.scheduleAttempt(st)
	}
}

// scheduleAttempt arms the backoff timer for the head-of-queue frame.
func (l *Layer) scheduleAttempt(st *nodeState) {
	backoff := l.rng.Float64() * l.cfg.maxBackoff()
	l.eng.After(backoff, st.attemptFn)
}

// attempt transmits the head-of-queue frame if the medium is idle at the
// sender, otherwise defers.
func (l *Layer) attempt(id int32) {
	st := l.state(id)
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	if l.mediumBusy(st) {
		st.retries++
		if st.retries > l.cfg.maxRetries() {
			// give up on this frame; unicast drops surface to the router
			// exactly like ARQ exhaustion, so congestion-dropped frames
			// still trigger link-failure handling
			drop := st.queue.popFront()
			st.retries = 0
			l.col.MACChannelLoss++
			if drop.To != Broadcast && l.fail != nil {
				l.fail(id, drop)
			}
			l.frameDone(drop)
			if st.queue.len() == 0 {
				st.sending = false
				return
			}
		}
		l.scheduleAttempt(st)
		return
	}
	st.retries = 0
	l.transmit(id, st, st.queue.popFront())
}

// mediumBusy reports whether the node senses ongoing traffic: its own
// transmission or any audible reception.
func (l *Layer) mediumBusy(st *nodeState) bool {
	now := l.eng.Now()
	if st.txUntil > now {
		return true
	}
	l.pruneActive(st, now)
	return len(st.active) > 0
}

func (l *Layer) pruneActive(st *nodeState, now float64) {
	keep := st.active[:0]
	for _, r := range st.active {
		if r.end > now {
			keep = append(keep, r)
		}
	}
	st.active = keep
}

// transmit puts the frame on the air: for every candidate receiver within
// the channel's maximum range the frame becomes an active reception; when
// it ends, it is delivered unless a concurrent reception collided with it.
func (l *Layer) transmit(from int32, st *nodeState, f Frame) {
	now := l.eng.Now()
	airtime := float64(f.Size*8) / l.cfg.bitRate()
	st.txUntil = now + airtime
	st.txFrame = f
	st.txUnicastRec = nil
	st.txUnicastOK = false
	l.col.MACTransmits++

	pos, ok := l.grid.Position(from)
	if ok {
		l.scratch = l.grid.Within(pos, l.ch.MaxRange(), l.scratch[:0])
		for _, rx := range l.scratch {
			if rx == from {
				continue
			}
			rxPos, _ := l.grid.Position(rx)
			d := rxPos.Dist(pos)
			rec := l.newReception(f, now+airtime, l.ch.Decodable(d, l.rng))
			rxState := l.state(rx)
			l.pruneActive(rxState, now)
			// any temporal overlap destroys both frames (no capture)
			for _, other := range rxState.active {
				other.collided = true
				rec.collided = true
			}
			rxState.active = append(rxState.active, rec)
			rxState.pending.push(rec)
			if f.To == rx {
				st.txUnicastRec = rec
			}
			l.eng.After(airtime, rxState.finishRxFn)
		}
	}
	// After the airtime: resolve unicast ARQ, then start the next frame.
	// Receiver-side finish events were scheduled first, so by the time this
	// fires the addressed receiver's outcome is final.
	l.eng.After(airtime, st.finishTxFn)
}

// finishReception resolves one reception at its end time. Finish events
// fire in (end, creation-seq) order — exactly the order of the engine's
// (time, FIFO) event ordering — so the event firing now belongs to the
// pending heap's root.
func (l *Layer) finishReception(rx int32) {
	st := l.state(rx)
	rec := st.pending.popMin()
	if rec == nil {
		return
	}
	// remove from the carrier-sense set (may already have been pruned)
	for i, r := range st.active {
		if r == rec {
			st.active[i] = st.active[len(st.active)-1]
			st.active = st.active[:len(st.active)-1]
			break
		}
	}
	switch {
	case rec.collided && rec.decoded:
		l.col.MACCollisions++
	case !rec.decoded:
		l.col.MACChannelLoss++
	default:
		l.col.MACDelivered++
		l.deliver(rx, rec.frame)
	}
	// the sender may be awaiting this reception's outcome for unicast ARQ;
	// copy it out before the record is recycled
	if from := rec.frame.From; int(from) < len(l.nodes) {
		if sst := l.nodes[from]; sst != nil && sst.txUnicastRec == rec {
			sst.txUnicastOK = rec.decoded && !rec.collided
			sst.txUnicastRec = nil
		}
	}
	l.releaseReception(rec)
}

// finishTx runs at the sender when its transmission's airtime ends: resolve
// unicast ARQ, then start the next queued frame.
func (l *Layer) finishTx(from int32) {
	st := l.state(from)
	f := st.txFrame
	st.txFrame = Frame{} // drop payload reference
	st.txUnicastRec = nil
	if f.To != Broadcast && !st.txUnicastOK {
		if f.attempts < l.cfg.linkRetries() {
			retry := f
			retry.attempts++
			// retransmissions cut the line: push to the queue front
			st.queue.pushFront(retry)
		} else {
			l.col.MACChannelLoss++
			if l.fail != nil {
				l.fail(from, f)
			}
			l.frameDone(f)
		}
	} else {
		l.frameDone(f)
	}
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	l.scheduleAttempt(st)
}
