// Package mac implements a simplified CSMA broadcast MAC over the channel
// models: frames occupy airtime, senders defer while the medium around
// them is busy, and receptions that overlap in time at a receiver are
// destroyed. That is the minimum realism needed to reproduce the broadcast
// storm problem (Ni et al. [5]) that Table I's "connectivity" row hinges
// on, without modelling full 802.11p EDCA.
//
// The layer is allocation-free in steady state: reception records are
// plain values in a reused per-sender slice, end-of-airtime events reuse
// one pre-bound callback per node (instead of a fresh closure per receiver
// per frame), per-node state lives in a dense slice keyed by node ID, and
// transmit queues are ring buffers. The simulation engine is
// single-threaded, so none of it needs synchronisation.
//
// The transmit path is amortized over mobility epochs: candidate
// receivers, their distances, and the deterministic part of the link
// budget come from the shared radio.Cache instead of a per-frame grid
// scan, and a frame's receptions are resolved by one end-of-airtime event
// at the sender instead of one event per receiver. Both transformations
// are exactly order-preserving — see transmit and finishTx.
//
// Carrier sense and collision marking are O(1) per reception: instead of
// a per-node list of in-flight reception records that every arrival scans
// and every resolution compacts, each node keeps a tiny arrival history —
// the latest airtime end plus the last two distinct arrival instants with
// their multiplicities. Because a reception is destroyed exactly when
// another frame's energy overlaps it at the same receiver, the verdict at
// its end time e for a frame that arrived at s reduces to: was anything
// still on the air at s (recorded at arrival), or did any arrival land in
// [s, e) afterwards — which only ever needs the two most recent distinct
// arrival times, since the query always runs at e = now. See transmit and
// finishTx for the exact equivalence argument.
//
// Reception work is split into a serial RNG lane and a fan-out stage:
// every stochastic draw (channel decodability, fault-plane loss) happens
// serially in candidate order — the draw-order contract pinned by
// TestRNGDrawOrderContract — and only then does the draw-free per-receiver
// bookkeeping (carrier sense, collision marking) fan out across the
// intra-run worker pool; each candidate receiver appears exactly once per
// frame, so shards touch disjoint node states and the result is
// byte-identical at every shard count.
package mac

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
)

// Broadcast is the link-layer broadcast address.
const Broadcast int32 = -1

// Frame is one link-layer transmission.
type Frame struct {
	From    int32
	To      int32 // Broadcast or a node id
	Size    int   // bytes, including headers
	Payload any

	attempts int // link-layer retransmissions so far (unicast ARQ)
}

// Config holds MAC parameters.
type Config struct {
	// BitRate in bits/s. Zero means 6 Mb/s (the 802.11p base rate).
	BitRate float64
	// MaxBackoff is the maximum random access delay in seconds drawn
	// before each transmission attempt. Zero means 2 ms.
	MaxBackoff float64
	// MaxRetries bounds busy-medium deferrals per frame. Zero means 7.
	MaxRetries int
	// QueueCap bounds the per-node transmit queue. Zero means 64.
	QueueCap int
	// LinkRetries is the unicast ARQ budget: how many times a unicast
	// frame is retransmitted when the addressed receiver did not decode
	// it (802.11-style retry, observed via the simulator's omniscient
	// channel state rather than explicit ACK frames). Zero means 4; −1
	// disables ARQ.
	LinkRetries int
}

func (c Config) bitRate() float64 {
	if c.BitRate <= 0 {
		return 6e6
	}
	return c.BitRate
}

func (c Config) maxBackoff() float64 {
	if c.MaxBackoff <= 0 {
		return 2e-3
	}
	return c.MaxBackoff
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 7
	}
	return c.MaxRetries
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) linkRetries() int {
	if c.LinkRetries < 0 {
		return 0
	}
	if c.LinkRetries == 0 {
		return 4
	}
	return c.LinkRetries
}

// txRec is one in-flight reception of the sender's current frame, in
// candidate (neighborhood) order. decoded carries the serial RNG lane's
// channel verdict; collAtArr records whether anything was already on the
// air at this receiver when the frame arrived. Plain values in a reused
// per-sender slice — nothing is pooled or pointer-chased per frame.
type txRec struct {
	rx        int32
	decoded   bool // channel draw said the frame is decodable
	collAtArr bool // receiver was mid-reception when this frame arrived
}

// frameDeque is a ring-buffer queue of frames with O(1) push-front, so ARQ
// retransmissions cut the line without reallocating the queue.
type frameDeque struct {
	buf  []Frame
	head int
	n    int
}

func (d *frameDeque) len() int { return d.n }

func (d *frameDeque) grow() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]Frame, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

func (d *frameDeque) pushBack(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = f
	d.n++
}

func (d *frameDeque) pushFront(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = f
	d.n++
}

func (d *frameDeque) popFront() Frame {
	f := d.buf[d.head]
	d.buf[d.head] = Frame{} // drop payload reference
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return f
}

// nodeState is the per-node MAC state.
type nodeState struct {
	queue   frameDeque
	sending bool
	txUntil float64 // sender busy until (own transmission)
	retries int

	// Arrival history — the O(1) carrier-sense state. maxEnd is the
	// latest airtime end over every reception that ever arrived here (an
	// unresolved reception exists iff maxEnd > now, since resolution fires
	// exactly at the end instant). (t1, c1) is the latest distinct arrival
	// instant and how many receptions arrived at it; (t0, c0) the previous
	// distinct instant. Two suffice: collision queries always run at a
	// resolving frame's end e = now, so the only arrivals that matter are
	// the latest one strictly before e — which is t1, or t0 when t1 == e.
	maxEnd float64
	t1, t0 float64
	c1, c0 int32

	// in-flight transmission state; a node transmits one frame at a time
	// (sending serialises), so it lives here instead of in a closure.
	txFrame      Frame
	txStart      float64 // arrival instant of the in-flight frame
	txRecs       []txRec // this frame's receptions, in candidate order
	txUnicastIdx int     // index into txRecs of the addressed receiver, or -1
	txUnicastOK  bool    // outcome copied at reception resolution

	// pre-bound engine callbacks, created once per node
	attemptFn  func()
	finishTxFn func()
}

// Layer is the shared MAC instance. All nodes transmit through it; it owns
// the collision bookkeeping.
type Layer struct {
	eng     *sim.Engine
	radio   *radio.Cache
	cfg     Config
	rng     *rand.Rand
	col     *metrics.Collector
	deliver func(to int32, f Frame)
	fail    func(from int32, f Frame)
	done    func(f Frame)
	nodes   []*nodeState // dense, keyed by node id
	// pool fans the draw-free per-receiver reception bookkeeping of large
	// frames across shards (see transmit). par.Seq by default; the network
	// stack installs its intra-run pool for the duration of a run.
	pool *par.Pool
	// linkFault, when set, returns an extra loss probability the fault
	// plane imposes on the (from, to) link right now: 0 is a clean link,
	// ≥1 severs it outright, anything between draws one extra uniform.
	linkFault func(from, to int32) float64
}

// NewLayer wires the MAC to the engine, the shared radio link cache
// (which carries the channel model and spatial index), and the metrics
// collector. deliver is the upcall invoked for every successfully received
// frame; fail is invoked at the sender when a unicast frame is dropped
// without the addressed receiver decoding it — ARQ exhaustion or a
// busy-medium (congestion) drop, the 802.11 "transmission failure"
// indication upper layers key link-break detection on. fail may be nil.
func NewLayer(eng *sim.Engine, rc *radio.Cache, cfg Config, col *metrics.Collector, deliver func(to int32, f Frame), fail func(from int32, f Frame)) *Layer {
	return &Layer{
		eng: eng, radio: rc, cfg: cfg,
		rng: eng.Rand(), col: col, deliver: deliver, fail: fail,
		pool: par.Seq,
	}
}

// SetPool installs the worker pool the reception fan-out stage runs on,
// or par.Seq (the default) to keep everything inline. The sharded stage
// is draw-free and touches each receiver exactly once per frame, so the
// simulation is byte-identical at every pool size; callers that close
// their pool must reset the layer to par.Seq first.
func (l *Layer) SetPool(p *par.Pool) {
	if p == nil {
		p = par.Seq
	}
	l.pool = p
}

// SetLinkFault installs the fault plane's per-link loss hook. The RNG
// draw-order contract: for each candidate receiver, the fault draw (one
// uniform, only when the returned probability is strictly inside (0,1))
// happens immediately after the channel's Decodable draw, in neighborhood
// order. A probability ≥1 severs the link with no draw at all, so a hard
// partition perturbs no stream. fn must be nil or allocation-free; it runs
// on the per-frame hot path.
func (l *Layer) SetLinkFault(fn func(from, to int32) float64) { l.linkFault = fn }

// Flush discards every frame queued at id without failure upcalls or loss
// accounting, and disarms unicast ARQ for any transmission currently on
// the air. The fault plane calls it when a node crashes: a dead radio
// neither retries nor reports link breaks, but receptions already in
// flight still resolve at their airtime end (the energy is on the air
// whether or not the sender survives).
func (l *Layer) Flush(id int32) {
	st := l.state(id)
	for st.queue.len() > 0 {
		l.frameDone(st.queue.popFront())
	}
	st.retries = 0
	// Pretend the in-flight unicast (if any) succeeded: finishTx then
	// neither re-queues it nor raises the fail upcall, and the record
	// index is cleared so the resolve loop can't write the outcome back.
	st.txUnicastIdx = -1
	st.txUnicastOK = true
}

// OnFrameDone registers a hook invoked exactly once per accepted frame when
// it permanently leaves the MAC: after the transmission (and any ARQ
// retries) completed, or when the frame was dropped on queue overflow,
// congestion, or ARQ exhaustion. The network stack uses it to recycle
// pooled frame payloads; by the time it fires, every receiver upcall for
// the frame has already run.
func (l *Layer) OnFrameDone(fn func(f Frame)) { l.done = fn }

func (l *Layer) frameDone(f Frame) {
	if l.done != nil {
		l.done(f)
	}
}

// state returns the per-node state, creating it (with its pre-bound
// callbacks) on first use. Node IDs are dense from 0.
func (l *Layer) state(id int32) *nodeState {
	for int(id) >= len(l.nodes) {
		l.nodes = append(l.nodes, nil)
	}
	st := l.nodes[id]
	if st == nil {
		st = &nodeState{txUnicastIdx: -1}
		st.attemptFn = func() { l.attempt(id) }
		st.finishTxFn = func() { l.finishTx(id) }
		l.nodes[id] = st
	}
	return st
}

// Send enqueues a frame for transmission from frame.From. Frames beyond the
// queue cap are dropped (and counted as channel loss).
func (l *Layer) Send(f Frame) {
	st := l.state(f.From)
	if st.queue.len() >= l.cfg.queueCap() {
		l.col.MACChannelLoss++
		l.frameDone(f)
		return
	}
	st.queue.pushBack(f)
	if !st.sending {
		st.sending = true
		l.scheduleAttempt(st)
	}
}

// scheduleAttempt arms the backoff timer for the head-of-queue frame.
func (l *Layer) scheduleAttempt(st *nodeState) {
	backoff := l.rng.Float64() * l.cfg.maxBackoff()
	l.eng.After(backoff, st.attemptFn)
}

// attempt transmits the head-of-queue frame if the medium is idle at the
// sender, otherwise defers.
func (l *Layer) attempt(id int32) {
	st := l.state(id)
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	if l.mediumBusy(st) {
		st.retries++
		if st.retries > l.cfg.maxRetries() {
			// give up on this frame; unicast drops surface to the router
			// exactly like ARQ exhaustion, so congestion-dropped frames
			// still trigger link-failure handling
			drop := st.queue.popFront()
			st.retries = 0
			l.col.MACChannelLoss++
			if drop.To != Broadcast && l.fail != nil {
				l.fail(id, drop)
			}
			l.frameDone(drop)
			if st.queue.len() == 0 {
				st.sending = false
				return
			}
		}
		l.scheduleAttempt(st)
		return
	}
	st.retries = 0
	l.transmit(id, st, st.queue.popFront())
}

// mediumBusy reports whether the node senses ongoing traffic: its own
// transmission or any audible reception. Airtimes ending at exactly now
// do not count as busy — their frames resolve at this same instant. A
// reception is unresolved iff its end lies in the future, so the whole
// carrier-sense question collapses to one comparison against the
// arrival history's high-water end.
func (l *Layer) mediumBusy(st *nodeState) bool {
	now := l.eng.Now()
	return st.txUntil > now || st.maxEnd > now
}

// fanMin is the candidate count below which the reception fan-out stays
// inline: the per-receiver bookkeeping is a handful of stores, so small
// neighborhoods never amortize a pool barrier.
const fanMin = 32

// transmit puts the frame on the air: for every candidate receiver in the
// sender's cached neighborhood the frame becomes an in-flight reception
// record; when the airtime ends, one event at the sender resolves them
// all.
//
// The per-frame cost is one cached-slice walk: the radio.Cache already
// holds the receiver IDs, distances, and deterministic link budgets for
// the current mobility epoch, so no grid scan, position lookup, or
// path-loss math runs here.
//
// The walk is split into the serial RNG lane and the fan-out stage. The
// lane makes every stochastic draw — channel decodability, then the
// optional fault-plane loss — in neighborhood order, identical to the
// order the uncached grid scan produced, which keeps every RNG stream
// byte-identical; it also pre-creates receiver states, so the fan-out
// never mutates the dense node table. The fan-out then updates each
// receiver's arrival history: collAtArr is whether anything was still on
// the air when this frame arrived (maxEnd beyond now, recorded before
// folding in our own end), and the (t1,c1)/(t0,c0) pair shifts exactly
// when a new distinct arrival instant appears. Each receiver appears once
// per frame, so shards write disjoint states and the values are
// independent of the shard layout.
func (l *Layer) transmit(from int32, st *nodeState, f Frame) {
	now := l.eng.Now()
	airtime := float64(f.Size*8) / l.cfg.bitRate()
	end := now + airtime
	st.txUntil = end
	st.txFrame = f
	st.txStart = now
	st.txUnicastIdx = -1
	st.txUnicastOK = false
	l.col.MACTransmits++

	links := l.radio.Links(from)
	// size the reception record list once: an append-doubling chain per
	// cold transmit is pure GC pressure at city density
	if cap(st.txRecs) < len(links) {
		st.txRecs = make([]txRec, len(links))
	}
	st.txRecs = st.txRecs[:len(links)]
	recs := st.txRecs
	for i, lk := range links {
		decoded := l.radio.Decodable(lk, l.rng)
		if l.linkFault != nil {
			// Fault losses stack after the channel draw. Only a partial
			// loss consumes a uniform; severed links (p≥1) draw nothing,
			// keeping fault-free streams byte-identical.
			if p := l.linkFault(from, lk.To); p > 0 {
				if p >= 1 {
					decoded = false
				} else if l.rng.Float64() < p {
					decoded = false
				}
			}
		}
		recs[i] = txRec{rx: lk.To, decoded: decoded}
		if f.To == lk.To {
			st.txUnicastIdx = i
		}
		l.state(lk.To) // ensure receiver state before the draw-free fan
	}
	mark := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rx := l.nodes[recs[i].rx]
			recs[i].collAtArr = rx.maxEnd > now
			if rx.maxEnd < end {
				rx.maxEnd = end
			}
			if rx.t1 == now {
				rx.c1++
			} else {
				rx.t0, rx.c0 = rx.t1, rx.c1
				rx.t1, rx.c1 = now, 1
			}
		}
	}
	if pool := l.pool; len(recs) >= fanMin {
		pool.Run(func(shard int) {
			lo, hi := pool.Range(len(recs), shard)
			mark(lo, hi)
		})
	} else {
		mark(0, len(recs))
	}
	// One event resolves the whole frame: all its receptions end at the
	// same instant, and the engine fires same-time events in scheduling
	// order, so the old one-event-per-receiver block [rx1..rxK, tx] always
	// ran contiguously anyway — collapsing it into a single event preserves
	// the exact upcall order while cutting K event-queue operations per
	// frame.
	l.eng.After(airtime, st.finishTxFn)
}

// finishTx runs at the sender when its transmission's airtime ends:
// resolve every reception in creation order, then unicast ARQ, then start
// the next queued frame.
//
// A reception that arrived at s and ends now is collided iff something
// was on the air at s (collAtArr) or any arrival landed in [s, now) — at
// exactly s it must be a second one (multiplicity > 1: the record's own
// arrival is counted too), and arrivals at exactly now never overlap.
// The receiver's history gives the latest arrival before now directly:
// t1, unless t1 == now (same-instant arrivals from frames sent earlier
// this instant), in which case t0 — which can never predate s, because s
// itself is a distinct arrival instant at this receiver. Arrival
// histories only change at transmit events and none can run mid-resolve
// (Send only arms timers), so the verdicts are fixed before the first
// upcall; computing them up front and then delivering in creation order
// reproduces the interleaved resolve loop exactly. The serial merge
// below keeps counters and upcalls in that deterministic order whatever
// the fan-out's shard layout did.
func (l *Layer) finishTx(from int32) {
	st := l.state(from)
	f := st.txFrame
	st.txFrame = Frame{} // drop payload reference
	now := l.eng.Now()
	start := st.txStart
	for i, tr := range st.txRecs {
		rx := l.nodes[tr.rx]
		t, c := rx.t1, rx.c1
		if t == now {
			t, c = rx.t0, rx.c0
		}
		collided := tr.collAtArr || t > start || (t == start && c > 1)
		switch {
		case collided && tr.decoded:
			l.col.MACCollisions++
		case !tr.decoded:
			l.col.MACChannelLoss++
		default:
			l.col.MACDelivered++
			l.deliver(tr.rx, f)
		}
		if i == st.txUnicastIdx {
			st.txUnicastOK = tr.decoded && !collided
			st.txUnicastIdx = -1
		}
	}
	st.txRecs = st.txRecs[:0]
	if f.To != Broadcast && !st.txUnicastOK {
		if f.attempts < l.cfg.linkRetries() {
			retry := f
			retry.attempts++
			// retransmissions cut the line: push to the queue front
			st.queue.pushFront(retry)
		} else {
			l.col.MACChannelLoss++
			if l.fail != nil {
				l.fail(from, f)
			}
			l.frameDone(f)
		}
	} else {
		l.frameDone(f)
	}
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	l.scheduleAttempt(st)
}

// DigestInto folds the MAC's checkpoint-relevant state into d: for every
// node in ID order, the transmit queue (frame headers — payloads are
// process-local pointers re-derived on restore), backoff/ARQ counters,
// the carrier-sense arrival history, and the in-flight frame's reception
// records in candidate order. The MAC runs entirely on the
// single-threaded event path and the fan-out stage writes shard-
// independent values, so all of this is a deterministic function of the
// event history at any shard count.
func (l *Layer) DigestInto(d *digest.Writer) {
	digestFrame := func(f *Frame) {
		d.U32(uint32(f.From))
		d.U32(uint32(f.To))
		d.Int(f.Size)
		d.Int(f.attempts)
	}
	d.Int(len(l.nodes))
	for id, st := range l.nodes {
		if st == nil {
			d.Bool(false)
			continue
		}
		d.Bool(true)
		d.Int(id)
		d.Int(st.queue.len())
		for i := 0; i < st.queue.n; i++ {
			digestFrame(&st.queue.buf[(st.queue.head+i)%len(st.queue.buf)])
		}
		d.Bool(st.sending)
		d.F64(st.txUntil)
		d.Int(st.retries)
		d.F64(st.maxEnd)
		d.F64(st.t1)
		d.U32(uint32(st.c1))
		d.F64(st.t0)
		d.U32(uint32(st.c0))
		digestFrame(&st.txFrame)
		d.F64(st.txStart)
		d.Int(len(st.txRecs))
		for _, tr := range st.txRecs {
			d.U32(uint32(tr.rx))
			d.Bool(tr.decoded)
			d.Bool(tr.collAtArr)
		}
		d.Int(st.txUnicastIdx)
		d.Bool(st.txUnicastOK)
	}
}
