// Package mac implements a simplified CSMA broadcast MAC over the channel
// models: frames occupy airtime, senders defer while the medium around
// them is busy, and receptions that overlap in time at a receiver are
// destroyed. That is the minimum realism needed to reproduce the broadcast
// storm problem (Ni et al. [5]) that Table I's "connectivity" row hinges
// on, without modelling full 802.11p EDCA.
package mac

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Broadcast is the link-layer broadcast address.
const Broadcast int32 = -1

// Frame is one link-layer transmission.
type Frame struct {
	From    int32
	To      int32 // Broadcast or a node id
	Size    int   // bytes, including headers
	Payload any

	attempts int // link-layer retransmissions so far (unicast ARQ)
}

// Config holds MAC parameters.
type Config struct {
	// BitRate in bits/s. Zero means 6 Mb/s (the 802.11p base rate).
	BitRate float64
	// MaxBackoff is the maximum random access delay in seconds drawn
	// before each transmission attempt. Zero means 2 ms.
	MaxBackoff float64
	// MaxRetries bounds busy-medium deferrals per frame. Zero means 7.
	MaxRetries int
	// QueueCap bounds the per-node transmit queue. Zero means 64.
	QueueCap int
	// LinkRetries is the unicast ARQ budget: how many times a unicast
	// frame is retransmitted when the addressed receiver did not decode
	// it (802.11-style retry, observed via the simulator's omniscient
	// channel state rather than explicit ACK frames). Zero means 4; −1
	// disables ARQ.
	LinkRetries int
}

func (c Config) bitRate() float64 {
	if c.BitRate <= 0 {
		return 6e6
	}
	return c.BitRate
}

func (c Config) maxBackoff() float64 {
	if c.MaxBackoff <= 0 {
		return 2e-3
	}
	return c.MaxBackoff
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 7
	}
	return c.MaxRetries
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) linkRetries() int {
	if c.LinkRetries < 0 {
		return 0
	}
	if c.LinkRetries == 0 {
		return 4
	}
	return c.LinkRetries
}

// reception tracks one in-flight frame arriving at one receiver.
type reception struct {
	frame    Frame
	end      float64
	decoded  bool // channel draw said the frame is decodable
	collided bool
}

// nodeState is the per-node MAC state.
type nodeState struct {
	queue   []Frame
	sending bool
	txUntil float64      // sender busy until (own transmission)
	active  []*reception // receptions currently on the air at this node
	retries int
}

// Layer is the shared MAC instance. All nodes transmit through it; it owns
// the collision bookkeeping.
type Layer struct {
	eng     *sim.Engine
	ch      channel.Model
	grid    *spatial.Grid
	cfg     Config
	rng     *rand.Rand
	col     *metrics.Collector
	deliver func(to int32, f Frame)
	fail    func(from int32, f Frame)
	nodes   map[int32]*nodeState
	scratch []int32
}

// NewLayer wires the MAC to the engine, channel, spatial index and metrics
// collector. deliver is the upcall invoked for every successfully received
// frame; fail is invoked at the sender when a unicast frame exhausts its
// ARQ budget without the addressed receiver decoding it (the 802.11
// "transmission failure" indication upper layers key link-break detection
// on). fail may be nil.
func NewLayer(eng *sim.Engine, ch channel.Model, grid *spatial.Grid, cfg Config, col *metrics.Collector, deliver func(to int32, f Frame), fail func(from int32, f Frame)) *Layer {
	return &Layer{
		eng: eng, ch: ch, grid: grid, cfg: cfg,
		rng: eng.Rand(), col: col, deliver: deliver, fail: fail,
		nodes: make(map[int32]*nodeState),
	}
}

func (l *Layer) state(id int32) *nodeState {
	st, ok := l.nodes[id]
	if !ok {
		st = &nodeState{}
		l.nodes[id] = st
	}
	return st
}

// Send enqueues a frame for transmission from frame.From. Frames beyond the
// queue cap are dropped (and counted as channel loss).
func (l *Layer) Send(f Frame) {
	st := l.state(f.From)
	if len(st.queue) >= l.cfg.queueCap() {
		l.col.MACChannelLoss++
		return
	}
	st.queue = append(st.queue, f)
	if !st.sending {
		st.sending = true
		l.scheduleAttempt(f.From, st)
	}
}

// scheduleAttempt arms the backoff timer for the head-of-queue frame.
func (l *Layer) scheduleAttempt(id int32, st *nodeState) {
	backoff := l.rng.Float64() * l.cfg.maxBackoff()
	l.eng.After(backoff, func() { l.attempt(id, st) })
}

// attempt transmits the head-of-queue frame if the medium is idle at the
// sender, otherwise defers.
func (l *Layer) attempt(id int32, st *nodeState) {
	if len(st.queue) == 0 {
		st.sending = false
		return
	}
	if l.mediumBusy(id, st) {
		st.retries++
		if st.retries > l.cfg.maxRetries() {
			// give up on this frame
			st.queue = st.queue[1:]
			st.retries = 0
			l.col.MACChannelLoss++
			if len(st.queue) == 0 {
				st.sending = false
				return
			}
		}
		l.scheduleAttempt(id, st)
		return
	}
	st.retries = 0
	f := st.queue[0]
	st.queue = st.queue[1:]
	l.transmit(id, st, f)
}

// mediumBusy reports whether the node senses ongoing traffic: its own
// transmission or any audible reception.
func (l *Layer) mediumBusy(id int32, st *nodeState) bool {
	now := l.eng.Now()
	if st.txUntil > now {
		return true
	}
	l.pruneActive(st, now)
	return len(st.active) > 0
}

func (l *Layer) pruneActive(st *nodeState, now float64) {
	keep := st.active[:0]
	for _, r := range st.active {
		if r.end > now {
			keep = append(keep, r)
		}
	}
	st.active = keep
}

// transmit puts the frame on the air: for every candidate receiver within
// the channel's maximum range the frame becomes an active reception; when
// it ends, it is delivered unless a concurrent reception collided with it.
func (l *Layer) transmit(from int32, st *nodeState, f Frame) {
	now := l.eng.Now()
	airtime := float64(f.Size*8) / l.cfg.bitRate()
	st.txUntil = now + airtime
	l.col.MACTransmits++

	var unicastRec *reception
	pos, ok := l.grid.Position(from)
	if ok {
		l.scratch = l.grid.Within(pos, l.ch.MaxRange(), l.scratch[:0])
		for _, rx := range l.scratch {
			if rx == from {
				continue
			}
			rxPos, _ := l.grid.Position(rx)
			d := rxPos.Dist(pos)
			rec := &reception{
				frame:   f,
				end:     now + airtime,
				decoded: l.ch.Decodable(d, l.rng),
			}
			rxState := l.state(rx)
			l.pruneActive(rxState, now)
			// any temporal overlap destroys both frames (no capture)
			for _, other := range rxState.active {
				other.collided = true
				rec.collided = true
			}
			rxState.active = append(rxState.active, rec)
			if f.To == rx {
				unicastRec = rec
			}
			rxID := rx
			l.eng.After(airtime, func() { l.finishReception(rxID, rec) })
		}
	}
	// After the airtime: resolve unicast ARQ, then start the next frame.
	// Receiver-side finishReception events were scheduled first, so by the
	// time this fires the addressed receiver's outcome is final.
	l.eng.After(airtime, func() {
		if f.To != Broadcast {
			success := unicastRec != nil && unicastRec.decoded && !unicastRec.collided
			if !success {
				if f.attempts < l.cfg.linkRetries() {
					retry := f
					retry.attempts++
					// retransmissions cut the line: prepend to the queue
					st.queue = append([]Frame{retry}, st.queue...)
				} else {
					l.col.MACChannelLoss++
					if l.fail != nil {
						l.fail(from, f)
					}
				}
			}
		}
		if len(st.queue) == 0 {
			st.sending = false
			return
		}
		l.scheduleAttempt(from, st)
	})
}

// finishReception resolves one reception at its end time.
func (l *Layer) finishReception(rx int32, rec *reception) {
	st := l.state(rx)
	// remove from active list
	for i, r := range st.active {
		if r == rec {
			st.active[i] = st.active[len(st.active)-1]
			st.active = st.active[:len(st.active)-1]
			break
		}
	}
	switch {
	case rec.collided && rec.decoded:
		l.col.MACCollisions++
	case !rec.decoded:
		l.col.MACChannelLoss++
	default:
		l.col.MACDelivered++
		l.deliver(rx, rec.frame)
	}
}
