// Package mac implements a simplified CSMA broadcast MAC over the channel
// models: frames occupy airtime, senders defer while the medium around
// them is busy, and receptions that overlap in time at a receiver are
// destroyed. That is the minimum realism needed to reproduce the broadcast
// storm problem (Ni et al. [5]) that Table I's "connectivity" row hinges
// on, without modelling full 802.11p EDCA.
//
// The layer is allocation-free in steady state: reception records are
// pooled, end-of-airtime events reuse one pre-bound callback per node
// (instead of a fresh closure per receiver per frame), per-node state
// lives in a dense slice keyed by node ID, and transmit queues are ring
// buffers. The simulation engine is single-threaded, so the free lists
// need no synchronisation.
//
// The transmit path is amortized over mobility epochs: candidate
// receivers, their distances, and the deterministic part of the link
// budget come from the shared radio.Cache instead of a per-frame grid
// scan, and a frame's receptions are resolved by one end-of-airtime event
// at the sender instead of one event per receiver. Both transformations
// are exactly order-preserving — see transmit and finishTx.
package mac

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
)

// Broadcast is the link-layer broadcast address.
const Broadcast int32 = -1

// Frame is one link-layer transmission.
type Frame struct {
	From    int32
	To      int32 // Broadcast or a node id
	Size    int   // bytes, including headers
	Payload any

	attempts int // link-layer retransmissions so far (unicast ARQ)
}

// Config holds MAC parameters.
type Config struct {
	// BitRate in bits/s. Zero means 6 Mb/s (the 802.11p base rate).
	BitRate float64
	// MaxBackoff is the maximum random access delay in seconds drawn
	// before each transmission attempt. Zero means 2 ms.
	MaxBackoff float64
	// MaxRetries bounds busy-medium deferrals per frame. Zero means 7.
	MaxRetries int
	// QueueCap bounds the per-node transmit queue. Zero means 64.
	QueueCap int
	// LinkRetries is the unicast ARQ budget: how many times a unicast
	// frame is retransmitted when the addressed receiver did not decode
	// it (802.11-style retry, observed via the simulator's omniscient
	// channel state rather than explicit ACK frames). Zero means 4; −1
	// disables ARQ.
	LinkRetries int
}

func (c Config) bitRate() float64 {
	if c.BitRate <= 0 {
		return 6e6
	}
	return c.BitRate
}

func (c Config) maxBackoff() float64 {
	if c.MaxBackoff <= 0 {
		return 2e-3
	}
	return c.MaxBackoff
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 7
	}
	return c.MaxRetries
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

func (c Config) linkRetries() int {
	if c.LinkRetries < 0 {
		return 0
	}
	if c.LinkRetries == 0 {
		return 4
	}
	return c.LinkRetries
}

// reception tracks one in-flight frame arriving at one receiver. Records
// are pooled by the layer. The sender keeps the frame and the receiver
// list, so a record only carries what carrier sense and collision marking
// need: when the airtime ends and how the channel treated it.
type reception struct {
	end      float64
	decoded  bool // channel draw said the frame is decodable
	collided bool
}

// frameDeque is a ring-buffer queue of frames with O(1) push-front, so ARQ
// retransmissions cut the line without reallocating the queue.
type frameDeque struct {
	buf  []Frame
	head int
	n    int
}

func (d *frameDeque) len() int { return d.n }

func (d *frameDeque) grow() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]Frame, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

func (d *frameDeque) pushBack(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = f
	d.n++
}

func (d *frameDeque) pushFront(f Frame) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = f
	d.n++
}

func (d *frameDeque) popFront() Frame {
	f := d.buf[d.head]
	d.buf[d.head] = Frame{} // drop payload reference
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return f
}

// txRec pairs an in-flight reception with its receiver, in creation order,
// so the sender's single end-of-airtime event can resolve the whole frame.
type txRec struct {
	rx  int32
	rec *reception
}

// nodeState is the per-node MAC state.
type nodeState struct {
	queue   frameDeque
	sending bool
	txUntil float64      // sender busy until (own transmission)
	active  []*reception // receptions currently audible at this node (carrier sense)
	retries int

	// in-flight transmission state; a node transmits one frame at a time
	// (sending serialises), so it lives here instead of in a closure.
	txFrame      Frame
	txRecs       []txRec    // this frame's receptions, in creation order
	txUnicastRec *reception // addressed receiver's reception, until resolved
	txUnicastOK  bool       // outcome copied at reception resolution

	// pre-bound engine callbacks, created once per node
	attemptFn  func()
	finishTxFn func()
}

// Layer is the shared MAC instance. All nodes transmit through it; it owns
// the collision bookkeeping.
type Layer struct {
	eng     *sim.Engine
	radio   *radio.Cache
	cfg     Config
	rng     *rand.Rand
	col     *metrics.Collector
	deliver func(to int32, f Frame)
	fail    func(from int32, f Frame)
	done    func(f Frame)
	nodes   []*nodeState // dense, keyed by node id
	recFree []*reception
	// linkFault, when set, returns an extra loss probability the fault
	// plane imposes on the (from, to) link right now: 0 is a clean link,
	// ≥1 severs it outright, anything between draws one extra uniform.
	linkFault func(from, to int32) float64
}

// NewLayer wires the MAC to the engine, the shared radio link cache
// (which carries the channel model and spatial index), and the metrics
// collector. deliver is the upcall invoked for every successfully received
// frame; fail is invoked at the sender when a unicast frame is dropped
// without the addressed receiver decoding it — ARQ exhaustion or a
// busy-medium (congestion) drop, the 802.11 "transmission failure"
// indication upper layers key link-break detection on. fail may be nil.
func NewLayer(eng *sim.Engine, rc *radio.Cache, cfg Config, col *metrics.Collector, deliver func(to int32, f Frame), fail func(from int32, f Frame)) *Layer {
	return &Layer{
		eng: eng, radio: rc, cfg: cfg,
		rng: eng.Rand(), col: col, deliver: deliver, fail: fail,
	}
}

// SetLinkFault installs the fault plane's per-link loss hook. The RNG
// draw-order contract: for each candidate receiver, the fault draw (one
// uniform, only when the returned probability is strictly inside (0,1))
// happens immediately after the channel's Decodable draw, in neighborhood
// order. A probability ≥1 severs the link with no draw at all, so a hard
// partition perturbs no stream. fn must be nil or allocation-free; it runs
// on the per-frame hot path.
func (l *Layer) SetLinkFault(fn func(from, to int32) float64) { l.linkFault = fn }

// Flush discards every frame queued at id without failure upcalls or loss
// accounting, and disarms unicast ARQ for any transmission currently on
// the air. The fault plane calls it when a node crashes: a dead radio
// neither retries nor reports link breaks, but receptions already in
// flight still resolve at their airtime end (the energy is on the air
// whether or not the sender survives).
func (l *Layer) Flush(id int32) {
	st := l.state(id)
	for st.queue.len() > 0 {
		l.frameDone(st.queue.popFront())
	}
	st.retries = 0
	// Pretend the in-flight unicast (if any) succeeded: finishTx then
	// neither re-queues it nor raises the fail upcall, and the dangling
	// record pointer is cleared so resolveReception can't write back.
	st.txUnicastRec = nil
	st.txUnicastOK = true
}

// OnFrameDone registers a hook invoked exactly once per accepted frame when
// it permanently leaves the MAC: after the transmission (and any ARQ
// retries) completed, or when the frame was dropped on queue overflow,
// congestion, or ARQ exhaustion. The network stack uses it to recycle
// pooled frame payloads; by the time it fires, every receiver upcall for
// the frame has already run.
func (l *Layer) OnFrameDone(fn func(f Frame)) { l.done = fn }

func (l *Layer) frameDone(f Frame) {
	if l.done != nil {
		l.done(f)
	}
}

// state returns the per-node state, creating it (with its pre-bound
// callbacks) on first use. Node IDs are dense from 0.
func (l *Layer) state(id int32) *nodeState {
	for int(id) >= len(l.nodes) {
		l.nodes = append(l.nodes, nil)
	}
	st := l.nodes[id]
	if st == nil {
		st = &nodeState{}
		st.attemptFn = func() { l.attempt(id) }
		st.finishTxFn = func() { l.finishTx(id) }
		l.nodes[id] = st
	}
	return st
}

// newReception takes a record from the pool.
func (l *Layer) newReception(end float64, decoded bool) *reception {
	var rec *reception
	if n := len(l.recFree); n > 0 {
		rec = l.recFree[n-1]
		l.recFree = l.recFree[:n-1]
	} else {
		rec = &reception{}
	}
	*rec = reception{end: end, decoded: decoded}
	return rec
}

// releaseReception returns a resolved record to the pool. No reference may
// outlive this call: the record is removed from the receiver's
// carrier-sense list and the sender's ARQ outcome has been copied out
// before release.
func (l *Layer) releaseReception(rec *reception) {
	l.recFree = append(l.recFree, rec)
}

// Send enqueues a frame for transmission from frame.From. Frames beyond the
// queue cap are dropped (and counted as channel loss).
func (l *Layer) Send(f Frame) {
	st := l.state(f.From)
	if st.queue.len() >= l.cfg.queueCap() {
		l.col.MACChannelLoss++
		l.frameDone(f)
		return
	}
	st.queue.pushBack(f)
	if !st.sending {
		st.sending = true
		l.scheduleAttempt(st)
	}
}

// scheduleAttempt arms the backoff timer for the head-of-queue frame.
func (l *Layer) scheduleAttempt(st *nodeState) {
	backoff := l.rng.Float64() * l.cfg.maxBackoff()
	l.eng.After(backoff, st.attemptFn)
}

// attempt transmits the head-of-queue frame if the medium is idle at the
// sender, otherwise defers.
func (l *Layer) attempt(id int32) {
	st := l.state(id)
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	if l.mediumBusy(st) {
		st.retries++
		if st.retries > l.cfg.maxRetries() {
			// give up on this frame; unicast drops surface to the router
			// exactly like ARQ exhaustion, so congestion-dropped frames
			// still trigger link-failure handling
			drop := st.queue.popFront()
			st.retries = 0
			l.col.MACChannelLoss++
			if drop.To != Broadcast && l.fail != nil {
				l.fail(id, drop)
			}
			l.frameDone(drop)
			if st.queue.len() == 0 {
				st.sending = false
				return
			}
		}
		l.scheduleAttempt(st)
		return
	}
	st.retries = 0
	l.transmit(id, st, st.queue.popFront())
}

// mediumBusy reports whether the node senses ongoing traffic: its own
// transmission or any audible reception. Entries whose airtime ends at
// exactly now do not count as busy; they are removed by their frame's
// resolution event at this same instant, so the active list never needs
// compaction here — every reception leaves it at its end time.
func (l *Layer) mediumBusy(st *nodeState) bool {
	now := l.eng.Now()
	if st.txUntil > now {
		return true
	}
	for _, r := range st.active {
		if r.end > now {
			return true
		}
	}
	return false
}

// transmit puts the frame on the air: for every candidate receiver in the
// sender's cached neighborhood the frame becomes an active reception; when
// the airtime ends, it is delivered unless a concurrent reception collided
// with it.
//
// The per-frame cost is one cached-slice walk: the radio.Cache already
// holds the receiver IDs, distances, and deterministic link budgets for
// the current mobility epoch, so no grid scan, position lookup, or
// path-loss math runs here. The channel draw per receiver happens in
// neighborhood order — identical to the order the uncached grid scan
// produced — which keeps every RNG stream byte-identical.
func (l *Layer) transmit(from int32, st *nodeState, f Frame) {
	now := l.eng.Now()
	airtime := float64(f.Size*8) / l.cfg.bitRate()
	end := now + airtime
	st.txUntil = end
	st.txFrame = f
	st.txUnicastRec = nil
	st.txUnicastOK = false
	l.col.MACTransmits++

	links := l.radio.Links(from)
	// size the reception record list once: an append-doubling chain per
	// cold transmit is pure GC pressure at city density
	if cap(st.txRecs) < len(links) {
		st.txRecs = make([]txRec, 0, len(links))
	}
	for _, lk := range links {
		decoded := l.radio.Decodable(lk, l.rng)
		if l.linkFault != nil {
			// Fault losses stack after the channel draw. Only a partial
			// loss consumes a uniform; severed links (p≥1) draw nothing,
			// keeping fault-free streams byte-identical.
			if p := l.linkFault(from, lk.To); p > 0 {
				if p >= 1 {
					decoded = false
				} else if l.rng.Float64() < p {
					decoded = false
				}
			}
		}
		rec := l.newReception(end, decoded)
		rxState := l.state(lk.To)
		// any temporal overlap destroys both frames (no capture); entries
		// ending exactly now don't overlap — they resolve this instant
		for _, other := range rxState.active {
			if other.end > now {
				other.collided = true
				rec.collided = true
			}
		}
		rxState.active = append(rxState.active, rec)
		st.txRecs = append(st.txRecs, txRec{rx: lk.To, rec: rec})
		if f.To == lk.To {
			st.txUnicastRec = rec
		}
	}
	// One event resolves the whole frame: all its receptions end at the
	// same instant, and the engine fires same-time events in scheduling
	// order, so the old one-event-per-receiver block [rx1..rxK, tx] always
	// ran contiguously anyway — collapsing it into a single event preserves
	// the exact upcall order while cutting K event-queue operations per
	// frame.
	l.eng.After(airtime, st.finishTxFn)
}

// finishTx runs at the sender when its transmission's airtime ends: resolve
// every reception in creation order, then unicast ARQ, then start the next
// queued frame.
func (l *Layer) finishTx(from int32) {
	st := l.state(from)
	f := st.txFrame
	st.txFrame = Frame{} // drop payload reference
	for i, tr := range st.txRecs {
		l.resolveReception(tr.rx, tr.rec, st, f)
		st.txRecs[i] = txRec{}
	}
	st.txRecs = st.txRecs[:0]
	st.txUnicastRec = nil
	if f.To != Broadcast && !st.txUnicastOK {
		if f.attempts < l.cfg.linkRetries() {
			retry := f
			retry.attempts++
			// retransmissions cut the line: push to the queue front
			st.queue.pushFront(retry)
		} else {
			l.col.MACChannelLoss++
			if l.fail != nil {
				l.fail(from, f)
			}
			l.frameDone(f)
		}
	} else {
		l.frameDone(f)
	}
	if st.queue.len() == 0 {
		st.sending = false
		return
	}
	l.scheduleAttempt(st)
}

// DigestInto folds the MAC's checkpoint-relevant state into d: for every
// node in ID order, the transmit queue (frame headers — payloads are
// process-local pointers re-derived on restore), backoff/ARQ counters,
// and every audible reception in carrier-sense list order. The MAC runs
// entirely on the single-threaded event path, so all of this is a
// deterministic function of the event history at any shard count.
func (l *Layer) DigestInto(d *digest.Writer) {
	digestFrame := func(f *Frame) {
		d.U32(uint32(f.From))
		d.U32(uint32(f.To))
		d.Int(f.Size)
		d.Int(f.attempts)
	}
	d.Int(len(l.nodes))
	for id, st := range l.nodes {
		if st == nil {
			d.Bool(false)
			continue
		}
		d.Bool(true)
		d.Int(id)
		d.Int(st.queue.len())
		for i := 0; i < st.queue.n; i++ {
			digestFrame(&st.queue.buf[(st.queue.head+i)%len(st.queue.buf)])
		}
		d.Bool(st.sending)
		d.F64(st.txUntil)
		d.Int(st.retries)
		d.Int(len(st.active))
		for _, r := range st.active {
			d.F64(r.end)
			d.Bool(r.decoded)
			d.Bool(r.collided)
		}
		digestFrame(&st.txFrame)
		d.Int(len(st.txRecs))
		d.Bool(st.txUnicastRec != nil)
		d.Bool(st.txUnicastOK)
	}
}

// resolveReception settles one reception at its end time: remove it from
// the receiver's carrier-sense set (it may already have been pruned),
// classify it, deliver on success, and copy the outcome out for the
// sender's unicast ARQ before the record is recycled.
func (l *Layer) resolveReception(rx int32, rec *reception, sender *nodeState, f Frame) {
	st := l.state(rx)
	for i, r := range st.active {
		if r == rec {
			st.active[i] = st.active[len(st.active)-1]
			st.active = st.active[:len(st.active)-1]
			break
		}
	}
	switch {
	case rec.collided && rec.decoded:
		l.col.MACCollisions++
	case !rec.decoded:
		l.col.MACChannelLoss++
	default:
		l.col.MACDelivered++
		l.deliver(rx, f)
	}
	if sender.txUnicastRec == rec {
		sender.txUnicastOK = rec.decoded && !rec.collided
		sender.txUnicastRec = nil
	}
	l.releaseReception(rec)
}
