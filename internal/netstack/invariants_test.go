package netstack

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// invariantRouter floods data while asserting stack-level invariants on
// every packet it sees.
type invariantRouter struct {
	Base
	t    *testing.T
	seen map[uint64]int
}

func (r *invariantRouter) Name() string { return "invariant" }

func (r *invariantRouter) NeedsBeacons() bool { return false }

func (r *invariantRouter) Originate(dst NodeID, size int) {
	pkt := &Packet{
		UID: r.API.NewUID(), Kind: KindData, Data: true, Proto: "invariant",
		Src: r.API.Self(), Dst: dst, TTL: 8, Size: size, Created: r.API.Now(),
	}
	r.API.Send(Broadcast, pkt)
}

func (r *invariantRouter) HandlePacket(pkt *Packet) {
	// invariant: the stack increments hops on every delivery, so a packet
	// can never arrive with Hops == 0 or Hops beyond its TTL budget
	if pkt.Hops <= 0 {
		r.t.Errorf("packet arrived with hops %d", pkt.Hops)
	}
	if pkt.Hops > 9 { // TTL 8 + origination hop
		r.t.Errorf("packet travelled %d hops with TTL budget 8", pkt.Hops)
	}
	// invariant: beacons never reach the router
	if pkt.Kind == KindHello {
		r.t.Error("HELLO beacon leaked into HandlePacket")
	}
	// invariant: created timestamps never exceed now
	if pkt.Created > r.API.Now() {
		r.t.Errorf("packet from the future: created %v now %v", pkt.Created, r.API.Now())
	}
	if r.seen[pkt.UID] == 0 {
		if pkt.Dst == r.API.Self() {
			r.API.Deliver(pkt)
		}
		pkt.TTL--
		if !pkt.Expired() {
			r.API.Send(Broadcast, pkt)
		}
	}
	r.seen[pkt.UID]++
}

func TestStackInvariantsUnderFloodLoad(t *testing.T) {
	tracks := make([]mobility.Track, 24)
	for i := range tracks {
		x0 := float64(i%8) * 90
		y0 := float64(i/8) * 90
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(x0, y0), Speed: 15},
				{T: 1000, Pos: geom.V(x0+15*1000, y0), Speed: 15},
			},
		}
	}
	w := NewWorld(Config{Seed: 42}, mobility.NewPlayback(tracks))
	var routers []*invariantRouter
	ids := w.AddVehicleNodes(func() Router {
		r := &invariantRouter{t: t, seen: make(map[uint64]int)}
		routers = append(routers, r)
		return r
	})
	for f := 0; f < 4; f++ {
		w.AddFlow(ids[f], ids[23-f], 1+float64(f), 0.25, 10, 400)
	}
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// conservation: every sent packet was delivered or is accounted as a
	// duplicate/drop; deliveries never exceed sends
	if c.DataDelivered > c.DataSent {
		t.Fatalf("delivered %d > sent %d", c.DataDelivered, c.DataSent)
	}
	// the MAC resolved every reception exactly once
	resolved := c.MACDelivered + c.MACCollisions + c.MACChannelLoss
	if resolved == 0 {
		t.Fatal("no MAC activity under flood load")
	}
	// no engine leakage: the run ends with bounded pending events (the
	// mobility and location tickers remain armed)
	if w.Engine().Pending() > 64 {
		t.Fatalf("%d events still pending — timer leak", w.Engine().Pending())
	}
}
