package netstack

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// countingRouter counts beacons; it never sends.
type countingRouter struct {
	Base
	beacons int
}

func (r *countingRouter) Name() string          { return "counting" }
func (r *countingRouter) HandlePacket(*Packet)  {}
func (r *countingRouter) Originate(NodeID, int) {}
func (r *countingRouter) OnBeacon(Neighbor)     { r.beacons++ }
func (r *countingRouter) NeedsBeacons() bool    { return true }

// A warmed packet pool round-trip must not allocate: getPacket reuses what
// putPacket recycled.
func TestPacketPoolRoundTripAllocFree(t *testing.T) {
	w := NewWorld(Config{Seed: 1}, mobility.NewPlayback(nil))
	// warm: one packet in the free list
	w.putPacket(&Packet{})
	allocs := testing.AllocsPerRun(1000, func() {
		p := w.getPacket()
		p.Kind = KindData
		p.TTL = 8
		w.putPacket(p)
	})
	if allocs != 0 {
		t.Fatalf("packet pool round-trip allocates %.1f objects/op, want 0", allocs)
	}
}

// putPacket must fully scrub the packet so a recycled one carries no state
// from its previous life.
func TestPacketPoolScrubs(t *testing.T) {
	w := NewWorld(Config{Seed: 1}, mobility.NewPlayback(nil))
	p := &Packet{UID: 7, Kind: KindData, Data: true, TTL: 3, Hops: 2, Payload: "stale"}
	w.putPacket(p)
	got := w.getPacket()
	if got != p {
		t.Fatal("pool did not hand back the recycled packet")
	}
	if *got != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *got)
	}
}

// Beacon frames must be recycled through the hello free list once the MAC
// reports the frame done, so steady-state beaconing stops allocating
// packets. This exercises the full loop: sendBeacon → MAC → receiver
// dispatch → frame-done hook.
func TestBeaconFramesRecycled(t *testing.T) {
	w := NewWorld(Config{Seed: 1, BeaconInterval: 0.1}, mobility.NewPlayback(nil))
	r1 := &countingRouter{}
	r2 := &countingRouter{}
	w.AddStaticNode(RSU, geom.V(0, 0), r1)
	w.AddStaticNode(RSU, geom.V(100, 0), r2)
	if err := w.Run(2); err != nil {
		t.Fatal(err)
	}
	if r1.beacons == 0 || r2.beacons == 0 {
		t.Fatalf("beaconing broken: %d/%d beacons seen", r1.beacons, r2.beacons)
	}
	// Each node has at most one beacon in flight at a time, so the free
	// list bounds the total beacon packets ever allocated to ~one per node.
	if got := len(w.helloFree); got == 0 || got > 4 {
		t.Fatalf("hello free list has %d packets after the run, want 1..4 (recycling broken?)", got)
	}
}
