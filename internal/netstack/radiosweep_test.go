package netstack

import (
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/radio"
)

// TestSweepModeInvariantUnderChurnAndFaults is the world-level half of the
// sweep's pure-prefetch contract: the same churn scenario — joins, leaves,
// beacons, flows, plus mid-run crash/recover faults — must produce a
// byte-identical run (full metrics summary AND state digest) whether the
// radio cache is forced to sweep every epoch, forced fully lazy, or left
// on the demand heuristic, at every shard count. Where and when a
// neighborhood is built may differ; nothing observable may.
func TestSweepModeInvariantUnderChurnAndFaults(t *testing.T) {
	run := func(mode radio.EagerMode, shards int) (metrics.Summary, uint64) {
		t.Helper()
		const n = 10
		w := NewWorld(Config{Seed: 7, Shards: shards}, mobility.NewPlayback(staggeredTracks(n)))
		w.SetJoinFactory(newChurnRouter)
		w.Radio().SetEagerMode(mode)
		initial := w.AddVehicleNodes(newChurnRouter)
		w.AddFlow(initial[0], initial[0]+1, 5, 2.0, 12, 256)
		w.AddVehicleFlow(3, 6, 1, 1.0, 30, 128)
		// Tracks join staggered (track i on [2i, 2i+20]); joined nodes get
		// sequential IDs, so initial[0]+k is track k's node once it joins.
		w.Engine().At(8, func() { w.CrashNode(initial[0] + 2) })
		w.Engine().At(14, func() { w.RecoverNode(initial[0] + 2) })
		w.Engine().At(20, func() { w.CrashNode(initial[0] + 5) })
		if err := w.Run(40.5); err != nil {
			t.Fatal(err)
		}
		return w.Collector().Summarize("sweep-mode-test", "staggered"), w.Digest()
	}
	wantSum, wantDig := run(radio.EagerNever, 1)
	for _, shards := range []int{1, 4} {
		for _, mode := range []radio.EagerMode{radio.EagerAuto, radio.EagerAlways, radio.EagerNever} {
			if mode == radio.EagerNever && shards == 1 {
				continue // the reference run
			}
			gotSum, gotDig := run(mode, shards)
			if !reflect.DeepEqual(gotSum, wantSum) {
				t.Fatalf("mode=%v shards=%d summary diverged from lazy sequential:\ngot  %+v\nwant %+v", mode, shards, gotSum, wantSum)
			}
			if gotDig != wantDig {
				t.Fatalf("mode=%v shards=%d digest %x, want %x", mode, shards, gotDig, wantDig)
			}
		}
	}
}
