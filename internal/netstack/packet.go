// Package netstack is the node-level network substrate: packets, nodes,
// HELLO beaconing, neighbor tables, application flows, and the Router
// interface every protocol in internal/routing implements. It wires the
// mobility model, spatial index, channel, and MAC into a World that runs on
// the discrete-event engine.
package netstack

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/linkstate"
)

// NodeID identifies a node (vehicle, RSU, or bus). IDs are dense from 0.
// The type is owned by the reliability plane (internal/linkstate), which
// sits below the netstack; this alias keeps protocol code spelling
// netstack.NodeID.
type NodeID = linkstate.NodeID

// Broadcast is the link-layer broadcast destination.
const Broadcast NodeID = -1

// NodeKind distinguishes the node roles the survey's categories rely on.
type NodeKind = linkstate.NodeKind

// Node kinds, re-exported from the reliability plane.
const (
	// Vehicle is an ordinary car.
	Vehicle = linkstate.Vehicle
	// RSU is a fixed road-side unit with backbone connectivity (Sec. V).
	RSU = linkstate.RSU
	// BusNode is a message-ferry bus on a regular route (Sec. V, Kitani).
	BusNode = linkstate.BusNode
)

// Common packet kind names used for metrics accounting. Protocols may
// define additional kinds; these cover the survey's control packet
// vocabulary (Sec. III-A).
const (
	KindData   = "DATA"
	KindHello  = "HELLO"
	KindRREQ   = "RREQ"
	KindRREP   = "RREP"
	KindRERR   = "RERR"
	KindProbe  = "PROBE"  // TBP-SS tickets
	KindUpdate = "UPDATE" // proactive table dumps (DSDV)
	KindLREQ   = "LREQ"   // gateway cluster location requests
)

// Packet is the network-layer unit. From/To are link-layer addresses set
// per transmission; Src/Dst are end-to-end.
type Packet struct {
	UID     uint64 // unique per originated packet; forwarded copies share it
	Kind    string // metrics label, e.g. KindData, KindRREQ
	Data    bool   // true for application data, false for control
	Proto   string // owning protocol name
	Src     NodeID
	Dst     NodeID // end-to-end destination; Broadcast for dissemination
	From    NodeID // last-hop sender
	To      NodeID // link-layer destination (Broadcast or node)
	TTL     int
	Hops    int
	Size    int     // bytes
	Created float64 // origination time, seconds
	Payload any     // protocol-private extension; treat as immutable
}

// Clone returns a shallow copy. The stack clones packets per receiver on
// broadcast so routers can mutate header fields freely; Payload is shared
// and must be treated as immutable (copy-on-write in the protocol).
//
// Clone always heap-allocates. The per-receiver copies the stack itself
// hands to Router.HandlePacket instead come from the World's free list and
// can be recycled through API.Release when the packet's journey ends —
// see the ownership rules on API.Release.
func (p *Packet) Clone() *Packet {
	cp := *p
	return &cp
}

// Expired reports whether the TTL is exhausted.
func (p *Packet) Expired() bool { return p.TTL <= 0 }

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("%s[%s] uid=%d %d→%d (hop %d→%d ttl=%d)",
		p.Proto, p.Kind, p.UID, p.Src, p.Dst, p.From, p.To, p.TTL)
}
