package netstack

import (
	"math"
	"sort"

	"github.com/vanetlab/relroute/internal/geom"
)

// Neighbor is one entry of a node's neighbor table, refreshed by HELLO
// beacons. It carries exactly the state the surveyed protocols consume:
// position and velocity (mobility/geographic categories), RSSI history
// (REAR's receipt probability), and the node kind (infrastructure
// category).
type Neighbor struct {
	ID       NodeID
	Kind     NodeKind
	Pos      geom.Vec2
	Vel      geom.Vec2
	RSSI     float64 // dBm of the latest beacon
	MeanRSSI float64 // exponentially weighted RSSI average
	LastSeen float64 // sim time of the latest beacon
	Beacons  int     // beacons received from this neighbor
}

// NeighborTable tracks currently live neighbors of one node.
type NeighborTable struct {
	entries map[NodeID]*Neighbor
	ttl     float64
	// oldest is a lower bound on the minimum LastSeen of any entry. The
	// per-tick expiry sweep compares it against now before iterating: a
	// table whose oldest possible entry is still fresh cannot hold anything
	// to expire, which skips the map scan on almost every tick. Refreshing
	// an entry may leave the bound stale-low; that only costs one full
	// sweep, which recomputes it exactly.
	oldest float64
}

// NewNeighborTable returns a table whose entries expire ttl seconds after
// the last beacon.
func NewNeighborTable(ttl float64) *NeighborTable {
	return &NeighborTable{entries: make(map[NodeID]*Neighbor), ttl: ttl, oldest: math.Inf(1)}
}

// Update inserts or refreshes an entry from a received beacon.
func (t *NeighborTable) Update(id NodeID, kind NodeKind, pos, vel geom.Vec2, rssi, now float64) *Neighbor {
	nb, ok := t.entries[id]
	if !ok {
		nb = &Neighbor{ID: id, MeanRSSI: rssi}
		t.entries[id] = nb
	}
	if now < t.oldest {
		t.oldest = now
	}
	nb.Kind = kind
	nb.Pos = pos
	nb.Vel = vel
	nb.RSSI = rssi
	// EWMA over beacons smooths shadowing; alpha 0.3 tracks mobility.
	nb.MeanRSSI = 0.7*nb.MeanRSSI + 0.3*rssi
	nb.LastSeen = now
	nb.Beacons++
	return nb
}

// Get returns the entry for id.
func (t *NeighborTable) Get(id NodeID) (Neighbor, bool) {
	nb, ok := t.entries[id]
	if !ok {
		return Neighbor{}, false
	}
	return *nb, true
}

// Has reports whether id is currently a live neighbor.
func (t *NeighborTable) Has(id NodeID) bool {
	_, ok := t.entries[id]
	return ok
}

// Len returns the number of live entries.
func (t *NeighborTable) Len() int { return len(t.entries) }

// Remove deletes the entry for id, if present.
func (t *NeighborTable) Remove(id NodeID) { delete(t.entries, id) }

// Snapshot returns all live entries sorted by ID (deterministic iteration
// for reproducible routing decisions).
func (t *NeighborTable) Snapshot() []Neighbor {
	out := make([]Neighbor, 0, len(t.entries))
	for _, nb := range t.entries {
		out = append(out, *nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Expire removes entries not refreshed since now−ttl and returns their IDs.
func (t *NeighborTable) Expire(now float64) []NodeID {
	if now-t.oldest <= t.ttl {
		return nil // even the oldest possible entry is still fresh
	}
	var gone []NodeID
	min := math.Inf(1)
	for id, nb := range t.entries {
		if now-nb.LastSeen > t.ttl {
			gone = append(gone, id)
			delete(t.entries, id)
		} else if nb.LastSeen < min {
			min = nb.LastSeen
		}
	}
	t.oldest = min
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	return gone
}
