package netstack

import "github.com/vanetlab/relroute/internal/linkstate"

// Neighbor is one entry of a node's neighbor table, refreshed by HELLO
// beacons. It carries the state the surveyed protocols consume — position
// and velocity (mobility/geographic categories), RSSI history (REAR's
// receipt probability), the node kind (infrastructure category) — plus the
// reliability plane's evidence and predictions.
//
// The table itself is the per-node linkstate.Monitor: the stack feeds it
// beacons, MAC ARQ failure upcalls, and successful receptions, and the
// configured Estimator derives residual-lifetime and receipt-probability
// predictions from that evidence. Entries read through the raw accessors
// (API.Neighbor, API.Neighbors, Router.OnBeacon) carry observed fields
// only; API.LinkState and API.LinkStates fill the derived predictions.
type Neighbor = linkstate.LinkState

// LinkState is the same record under its reliability-plane name: use it
// when reading through API.LinkState/API.LinkStates, where the derived
// Lifetime, ReceiptProb, and Age fields are filled by the estimator.
type LinkState = linkstate.LinkState
