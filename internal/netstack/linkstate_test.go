package netstack

import (
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
)

// TestLinkStateMatchesBeaconKinematics verifies the reliability plane's
// default predictions through the full stack: after beaconing, every
// LinkState carries the Eqn (4) lifetime solved on the beaconed
// kinematics against the node's current ones — the exact value the
// pre-plane routing.LinkLifetime helper computed.
func TestLinkStateMatchesBeaconKinematics(t *testing.T) {
	w, routers, ids := newTestWorld(t, 3, 100)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	api := routers[1].API
	ls, ok := api.LinkState(ids[0])
	if !ok {
		t.Fatal("link state missing for a live neighbor")
	}
	want := link.LifetimeVec(ls.Pos, ls.Vel, api.Pos(), api.Vel(), api.RangeEstimate())
	if ls.Lifetime != want {
		t.Fatalf("Lifetime = %v, want Eqn-4 %v", ls.Lifetime, want)
	}
	if ls.ReceiptProb <= 0 || ls.ReceiptProb > 1 {
		t.Fatalf("ReceiptProb = %v", ls.ReceiptProb)
	}
	if ls.Age < 0 {
		t.Fatalf("Age = %v", ls.Age)
	}
	// LinkStates mirrors Neighbors: same membership, same order
	states := api.LinkStates()
	nbs := api.Neighbors()
	if len(states) != len(nbs) {
		t.Fatalf("LinkStates len %d, Neighbors len %d", len(states), len(nbs))
	}
	for i := range states {
		if states[i].ID != nbs[i].ID {
			t.Fatalf("order mismatch at %d: %d vs %d", i, states[i].ID, nbs[i].ID)
		}
	}
	if _, ok := api.LinkState(99); ok {
		t.Fatal("link state resolved for an unknown node")
	}
}

// TestSendFailureFeedsMonitor verifies the MAC ARQ failure upcall lands in
// the reliability plane before the router reacts: two nodes in range, the
// peer is failure-injected mid-run, so unicasts to it exhaust ARQ.
func TestSendFailureFeedsMonitor(t *testing.T) {
	w, routers, ids := newTestWorld(t, 2, 50)
	w.Engine().At(1.9, func() { w.SetNodeActive(ids[1], false) })
	w.Engine().At(2.0, func() { routers[0].Originate(ids[1], 256) })
	// sample before the silenced peer's entry expires (TTL 2.5 s)
	var ls LinkState
	var found bool
	w.Engine().At(2.4, func() { ls, found = routers[0].API.LinkState(ids[1]) })
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(routers[0].failures) == 0 {
		t.Fatal("OnSendFailed never fired")
	}
	// the router's Base.OnSendFailed is a no-op (no ForgetNeighbor), so
	// the monitor entry survives with the failure recorded
	if !found {
		t.Fatal("entry gone before its TTL")
	}
	if ls.TxFails == 0 {
		t.Fatalf("TxFails = 0 after ARQ exhaustion: %+v", ls)
	}
	if ls.FeedbackProb >= 1 {
		t.Fatalf("FeedbackProb = %v, want < 1 after failures", ls.FeedbackProb)
	}
}

// TestReceptionFeedsMonitor verifies decoded data frames count as
// positive link evidence at the receiver.
func TestReceptionFeedsMonitor(t *testing.T) {
	w, routers, ids := newTestWorld(t, 2, 50)
	w.Engine().At(2.0, func() { routers[0].Originate(ids[1], 256) })
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	ls, ok := routers[1].API.LinkState(ids[0])
	if !ok {
		t.Fatal("entry missing")
	}
	if ls.Received == 0 {
		t.Fatalf("Received = 0 after a delivered data frame: %+v", ls)
	}
}

// TestLinkAuditObservesBreaks drives two nodes apart and checks the audit
// resolves its prediction samples against the geometric break.
func TestLinkAuditObservesBreaks(t *testing.T) {
	// b crosses out of a's 250 m range at t ≈ (250−100)/40 = 3.75 s
	a := mobility.Track{ID: 0, Waypoints: []mobility.Waypoint{
		{T: 0, Pos: geom.V(0, 0), Speed: 0},
		{T: 1000, Pos: geom.V(0, 0), Speed: 0},
	}}
	b := mobility.Track{ID: 1, Waypoints: []mobility.Waypoint{
		{T: 0, Pos: geom.V(100, 0), Speed: 40},
		{T: 1000, Pos: geom.V(100+40*1000, 0), Speed: 40},
	}}
	w := NewWorld(Config{Seed: 1}, mobility.NewPlayback([]mobility.Track{a, b}))
	var routers []*echoRouter
	w.AddVehicleNodes(func() Router {
		r := &echoRouter{}
		routers = append(routers, r)
		return r
	})
	w.EnableLinkAudit(30)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	col := w.Collector()
	if col.LinkSamples == 0 {
		t.Fatal("audit resolved no samples")
	}
	// both directed samples of the one link must have resolved: nothing
	// stays open once the pair separates
	if col.LinkCensored != 0 {
		t.Fatalf("censored = %d, want 0 (the only link broke mid-run)", col.LinkCensored)
	}
	// the link objectively lived ~3.75 s from t=0; with constant
	// velocities the kinematic default predicts it to within the beacon
	// staleness, so MAE must be well under a second
	if mae := col.LinkMAE(); mae <= 0 || mae > 1 {
		t.Fatalf("MAE = %v, want (0, 1]", mae)
	}
	total := 0
	for _, b := range col.LinkCalibration() {
		total += b.N
	}
	if total != col.LinkSamples {
		t.Fatalf("calibration buckets hold %d samples, collector %d", total, col.LinkSamples)
	}
}

// TestLinkAuditDeterministic pins the audit's determinism: two identical
// runs must produce identical summaries, including the float MAE/bias
// accumulations (sample open/close order is node-ID ordered, never map
// ordered).
func TestLinkAuditDeterministic(t *testing.T) {
	run := func() metrics.Summary {
		model := mobility.NewPlayback(lineTracks(8, 120, 10))
		w := NewWorld(Config{Seed: 9}, model)
		var routers []*echoRouter
		w.AddVehicleNodes(func() Router {
			r := &echoRouter{}
			routers = append(routers, r)
			return r
		})
		w.EnableLinkAudit(5)
		if err := w.Run(12); err != nil {
			t.Fatal(err)
		}
		return w.Collector().Summarize("echo", "audit")
	}
	s1, s2 := run(), run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("audit summaries diverged:\n%+v\n%+v", s1, s2)
	}
	if s1.LinkSamples == 0 {
		t.Fatal("no samples resolved")
	}
}
