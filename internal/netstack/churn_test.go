package netstack

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// churnRouter is a minimal beaconing router that rebroadcasts data once.
type churnRouter struct {
	Base
	seen map[uint64]bool
}

func newChurnRouter() Router { return &churnRouter{seen: make(map[uint64]bool)} }

func (r *churnRouter) Name() string { return "churn-test" }

func (r *churnRouter) Originate(dst NodeID, size int) {
	pkt := &Packet{
		UID: r.API.NewUID(), Kind: KindData, Data: true, Proto: "churn-test",
		Src: r.API.Self(), Dst: dst, TTL: 6, Size: size, Created: r.API.Now(),
	}
	r.API.Send(Broadcast, pkt)
}

func (r *churnRouter) HandlePacket(pkt *Packet) {
	if r.seen[pkt.UID] {
		r.API.Release(pkt)
		return
	}
	r.seen[pkt.UID] = true
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if !pkt.Expired() {
		r.API.Send(Broadcast, pkt)
	}
}

// staggeredTracks builds n straight-line tracks whose active windows open
// and close at different times: track i exists on [2*i, 2*i+20].
func staggeredTracks(n int) []mobility.Track {
	tracks := make([]mobility.Track, n)
	for i := range tracks {
		start := 2 * float64(i)
		y := float64(i) * 60
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: start, Pos: geom.V(0, y), Speed: 12},
				{T: start + 20, Pos: geom.V(240, y), Speed: 12},
			},
		}
	}
	return tracks
}

// TestWorldMembershipInvariant drives an open world from a trace whose
// tracks open and close mid-run, and checks after every simulated second
// that the set of active vehicle nodes exactly mirrors the mobility
// model's active vehicle set — nodes join when a track starts and leave
// when it ends, with no parked phantoms in between.
func TestWorldMembershipInvariant(t *testing.T) {
	const n = 10
	model := mobility.NewPlayback(staggeredTracks(n))
	w := NewWorld(Config{Seed: 7}, model)
	w.SetJoinFactory(newChurnRouter)
	// only tracks active at t=0 become initial nodes
	initial := w.AddVehicleNodes(newChurnRouter)
	if len(initial) != 1 {
		t.Fatalf("initial nodes = %d, want 1 (only track 0 is active at t=0)", len(initial))
	}
	// flows keep running across membership changes: the source leaves
	// mid-flow (its window closes at t=20) and later packets must be
	// silently skipped, not crash the stack
	w.AddFlow(initial[0], initial[0]+1, 5, 2.0, 12, 256)

	// probe the invariant just after the mobility tick of every odd
	// second (track windows open and close on even seconds, so odd-second
	// probes are far from any boundary the tick clock could straddle)
	for s := 1; s <= 39; s += 2 {
		w.Engine().At(float64(s)+0.05, func() {
			got := w.ActiveNodes()
			want := model.Len()
			if got != want {
				t.Errorf("t=%.1f: %d active nodes, model has %d active vehicles",
					w.Engine().Now(), got, want)
			}
		})
	}
	if err := w.Run(40.5); err != nil {
		t.Fatal(err)
	}
	// every track joined (n-1 mid-run) and every track's window closed
	if w.Joins() != n-1 {
		t.Errorf("joins = %d, want %d", w.Joins(), n-1)
	}
	if w.Leaves() != n {
		t.Errorf("leaves = %d, want %d", w.Leaves(), n)
	}
	if w.ActiveNodes() != 0 {
		t.Errorf("%d nodes still active after every window closed", w.ActiveNodes())
	}
	sum := w.Collector().Summarize("churn-test", "staggered")
	if sum.Joins != n-1 || sum.Leaves != n {
		t.Errorf("summary joins/leaves = %d/%d", sum.Joins, sum.Leaves)
	}
}

// TestClosedWorldHasNoMembershipChurn pins the compatibility contract:
// without a join factory and with a closed mobility model, the membership
// machinery observes nothing.
func TestClosedWorldHasNoMembershipChurn(t *testing.T) {
	tracks := make([]mobility.Track, 4)
	for i := range tracks {
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(float64(i)*50, 0), Speed: 10},
				{T: 100, Pos: geom.V(float64(i)*50+1000, 0), Speed: 10},
			},
		}
	}
	w := NewWorld(Config{Seed: 3}, mobility.NewPlayback(tracks))
	ids := w.AddVehicleNodes(newChurnRouter)
	w.AddFlow(ids[0], ids[3], 1, 0.5, 8, 200)
	// run past the tracks' windows (they close at t=100): without a join
	// factory the world keeps its legacy fixed population — no leaves,
	// Summary.Joins/Leaves stay zero as documented
	if err := w.Run(120); err != nil {
		t.Fatal(err)
	}
	if w.Joins() != 0 || w.Leaves() != 0 {
		t.Fatalf("closed world churned: joins=%d leaves=%d", w.Joins(), w.Leaves())
	}
	if w.ActiveNodes() != len(tracks) {
		t.Fatalf("active = %d", w.ActiveNodes())
	}
}

// TestDepartedNodesVanishFromOracles checks that a departed vehicle is
// gone from every observation layer: PositionOf/VelocityOf and the
// idealised location service must stop answering for it (the phantom fix
// at the oracle layers, not just the mobility snapshot).
func TestDepartedNodesVanishFromOracles(t *testing.T) {
	// track 0 exists on [0, 20]; run far past that
	model := mobility.NewPlayback(staggeredTracks(1))
	w := NewWorld(Config{Seed: 5}, model)
	w.SetJoinFactory(newChurnRouter)
	ids := w.AddVehicleNodes(newChurnRouter)
	var during, after bool
	w.Engine().At(10, func() {
		_, during = w.PositionOf(ids[0])
	})
	if err := w.Run(25); err != nil {
		t.Fatal(err)
	}
	if !during {
		t.Error("PositionOf failed while the vehicle was active")
	}
	if _, after = w.PositionOf(ids[0]); after {
		t.Error("PositionOf still answers for a departed node")
	}
	if _, ok := w.VelocityOf(ids[0]); ok {
		t.Error("VelocityOf still answers for a departed node")
	}
	if _, _, ok := w.lookupPosition(ids[0]); ok {
		t.Error("location service still answers for a departed node")
	}
}

// TestAddVehicleFlowResolvesLateJoiners checks the open-world flow
// primitive: a flow between vehicles that do not exist at wiring time
// starts delivering once both have joined, and falls silent when the
// source departs.
func TestAddVehicleFlowResolvesLateJoiners(t *testing.T) {
	// tracks 1 and 2 join at t=2 and t=4 and overlap until t=22
	model := mobility.NewPlayback(staggeredTracks(3))
	w := NewWorld(Config{Seed: 9}, model)
	w.SetJoinFactory(newChurnRouter)
	w.AddVehicleNodes(newChurnRouter)
	// wire before either endpoint exists; packets every second from t=1
	w.AddVehicleFlow(1, 2, 1, 1.0, 30, 128)
	if err := w.Run(30); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataSent == 0 {
		t.Fatal("no packets originated after both endpoints joined")
	}
	// sends only happen while the source (window [2,22]) is active and the
	// destination (window [4,24]) has joined: strictly fewer than 30
	if c.DataSent >= 30 {
		t.Fatalf("sent %d packets; expected the out-of-membership ones skipped", c.DataSent)
	}
}

// TestFailureInjectionIsNotDeparture checks that SetNodeActive (failure
// injection) and open-world leave detection do not interfere: a failed
// node whose vehicle is still in the model must stay down, not be
// resurrected by the rejoin path.
func TestFailureInjectionIsNotDeparture(t *testing.T) {
	model := mobility.NewPlayback(staggeredTracks(1))
	w := NewWorld(Config{Seed: 11}, model)
	w.SetJoinFactory(newChurnRouter)
	ids := w.AddVehicleNodes(newChurnRouter)
	w.Engine().At(5, func() { w.SetNodeActive(ids[0], false) })
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	if w.ActiveNodes() != 0 {
		t.Fatalf("failed node resurrected: %d active", w.ActiveNodes())
	}
	if w.Joins() != 0 {
		t.Fatalf("failure injection counted as %d joins", w.Joins())
	}
}
