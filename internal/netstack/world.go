package netstack

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/mac"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/prng"
	"github.com/vanetlab/relroute/internal/radio"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Config parameterises a World.
type Config struct {
	// Seed drives every random stream of the run.
	Seed int64
	// Tick is the mobility update interval in seconds. Zero means 0.1.
	Tick float64
	// BeaconInterval is the HELLO period in seconds. Zero means 1.0.
	BeaconInterval float64
	// NeighborTTL is the neighbor expiry in seconds. Zero means
	// 2.5 × BeaconInterval.
	NeighborTTL float64
	// BeaconSize is the HELLO frame size in bytes. Zero means 32.
	BeaconSize int
	// Channel is the propagation model. Nil means UnitDisk{250}.
	Channel channel.Model
	// MAC holds the MAC parameters.
	MAC mac.Config
	// LocationStaleness is the update period of the idealised location
	// service in seconds; lookups return positions up to this stale.
	// Zero means 1.0.
	LocationStaleness float64
	// Estimator selects the reliability plane's link-quality estimator by
	// registry name (see linkstate.Names). Empty means "composite": the
	// kinematic Eqn (4) lifetime plus the RSSI receipt model — exactly the
	// predictions the protocols computed before the plane existed.
	Estimator string
	// Shards is the intra-run parallelism: the per-tick phases of the
	// step loop (mobility kinematics, the spatial refresh, the radio
	// prefetch, and the per-node sweeps) fan out over this many worker
	// shards. Zero or one means today's fully sequential engine. Output
	// is byte-identical at every fixed shard count: RNG draws stay on the
	// single-threaded event path, parallel phases compute pure functions
	// of positions, and merges replay in node/vehicle order — see the
	// README's "Parallel engine" section.
	Shards int
}

func (c Config) tick() float64 {
	if c.Tick <= 0 {
		return 0.1
	}
	return c.Tick
}

func (c Config) beaconInterval() float64 {
	if c.BeaconInterval <= 0 {
		return 1.0
	}
	return c.BeaconInterval
}

func (c Config) neighborTTL() float64 {
	if c.NeighborTTL <= 0 {
		return 2.5 * c.beaconInterval()
	}
	return c.NeighborTTL
}

func (c Config) beaconSize() int {
	if c.BeaconSize <= 0 {
		return 32
	}
	return c.BeaconSize
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// node is the internal per-node record.
type node struct {
	id      NodeID
	kind    NodeKind
	router  Router
	mon     *linkstate.Monitor
	pos     geom.Vec2
	vel     geom.Vec2
	rngSeed int64              // drawn at addNode; see random
	rng     *rand.Rand         // materialized on first draw
	rngSrc  *prng.Source       // counting source behind rng; nil until materialized
	vehID   mobility.VehicleID // -1 for static nodes
	active  bool
	// open-world membership bookkeeping: seenStep is the last mobility step
	// whose state snapshot contained this vehicle; left marks a node whose
	// vehicle departed the mobility model (as opposed to failure injection,
	// which clears active but not left).
	seenStep uint64
	left     bool
}

// stepShard is one shard's private buffers for the parallel phases of
// World.step. Parallel phases only append to their own shard's buffers;
// the serial sections between barriers drain them in shard order, which —
// because shards own contiguous index ranges — replays every observable
// mutation in exactly the order the sequential engine performs it.
type stepShard struct {
	ops      []stepOp       // kinematics phase: staged grid/membership work
	changed  bool           // kinematics phase: any position changed
	departed []*node        // departure phase: active vehicles gone from the snapshot
	expired  []expiredLinks // expiry phase: per-node expired neighbor sets
	samples  []linkSample   // audit phase: new ground-truth samples
	ids      []linkstate.NodeID
	cand     []linkstate.NodeID
}

// stepOp is one staged observable mutation from the kinematics phase,
// replayed serially in stateBuf order.
type stepOp struct {
	kind uint8 // opMove, opJoin, opRejoin, opInsert
	idx  int32 // index into stateBuf (opJoin/opRejoin/opInsert)
	mv   spatial.Move
}

const (
	opMove uint8 = iota + 1
	opJoin
	opRejoin
	opInsert
)

// expiredLinks records one node's expired neighbors; router callbacks run
// at the serial merge.
type expiredLinks struct {
	n    *node
	gone []linkstate.NodeID
}

// random returns the node's private RNG stream, materializing it on first
// use: seeding a math/rand generator costs ~600 mixing steps, and a node
// that never draws (no beacons to jitter, no shadowing RSSI) should not
// pay for one. The seed is drawn eagerly in addNode, so the root stream —
// and with it every other component's stream — is byte-identical whether
// or when this one materializes.
func (n *node) random() *rand.Rand {
	if n.rng == nil {
		n.rng, n.rngSrc = prng.Rand(n.rngSeed)
	}
	return n.rng
}

// beacon is the HELLO payload.
type beacon struct {
	kind NodeKind
	pos  geom.Vec2
	vel  geom.Vec2
}

// World owns one simulation run: engine, mobility, radio stack, nodes,
// flows and metrics.
type World struct {
	cfg   Config
	eng   *sim.Engine
	model mobility.Model
	grid  *spatial.Grid
	ch    channel.Model
	links *radio.Cache
	mac   *mac.Layer
	col   *metrics.Collector
	nodes []*node
	byVeh []*node // vehicle ID → node; vehicle IDs are dense from 0
	uid   uint64

	// intra-run parallelism: pool fans the step loop's per-tick phases
	// out over Config.Shards shards (par.Seq — inline, no goroutines —
	// until Run upgrades it); actives is the sorted-by-ID slice of nodes
	// with active == true, so sweeps iterate members instead of scanning
	// every node ever created; shards holds each shard's merge buffers.
	pool    *par.Pool
	actives []*node
	shards  []stepShard

	// est is the shared link-quality estimator every node's Monitor
	// predicts with (Config.Estimator); audit is the optional ground-truth
	// link-break tracker behind the link-accuracy experiment.
	est   linkstate.Estimator
	audit *linkAudit

	// open-world membership: when joinFactory is non-nil the world is
	// open — vehicles appearing in the mobility model after the run
	// started get a node (running a fresh router from the factory), and
	// vehicles that disappear from the model have their node leave.
	// stepSeq stamps each mobility step so leave detection is one flag
	// comparison per node; beaconing records whether Run armed the HELLO
	// substrate so joiners get their own beacon ticker.
	joinFactory RouterFactory
	stepSeq     uint64
	beaconing   bool
	joins       int
	leaves      int

	// idealised location service: last sampled kinematics, dense by node ID
	locPos []geom.Vec2
	locVel []geom.Vec2
	locOK  []bool

	// fault-plane hooks (see faultplane.go); all nil unless a fault
	// schedule is installed, so fault-free runs pay one nil check per
	// call site and draw nothing extra.
	beaconFilter     func(NodeID, *rand.Rand) bool
	faultBeaconHeard func(NodeID)
	onFirstDelivery  func(created float64)
	faultWindow      func(now float64) bool

	// stateBuf is the reused mobility snapshot buffer for the tick loop.
	stateBuf []mobility.State

	// free lists: the engine is single-threaded, so recycling needs no
	// synchronisation. pktFree recycles per-receiver dispatch clones that
	// routers hand back via API.Release; helloFree recycles beacon packets
	// (payload *beacon included) once the MAC reports the frame done.
	pktFree   []*Packet
	helloFree []*Packet

	// checkpoint plane: named RNG streams registered by the scenario layer
	// (traffic churn, road-model continuation draws) so the snapshot's
	// stream table covers every generator the run consumes; started tracks
	// whether StartRun armed the tickers (segmented runs call it once).
	extStreams []namedStream
	started    bool
	poolOwned  bool
}

// namedStream is one externally owned RNG stream the checkpoint stream
// table reports.
type namedStream struct {
	name string
	src  *prng.Source
}

// RegisterStream adds an externally owned counting RNG source to the
// world's checkpoint stream table. The scenario layer registers the
// generators it creates outside the engine (road-model continuation
// draws, open-world churn) so a snapshot can record — and a restore can
// verify — every stream position the run depends on.
func (w *World) RegisterStream(name string, src *prng.Source) {
	w.extStreams = append(w.extStreams, namedStream{name: name, src: src})
}

// NewWorld builds a world over the given mobility model. Call one of the
// node-population methods, then Run.
func NewWorld(cfg Config, model mobility.Model) *World {
	eng := sim.NewEngine(cfg.Seed)
	ch := cfg.Channel
	if ch == nil {
		ch = channel.UnitDisk{Range: 250}
	}
	col := metrics.NewCollector()
	cell := ch.MaxRange()
	if cell <= 0 {
		cell = 250
	}
	w := &World{
		cfg:    cfg,
		eng:    eng,
		model:  model,
		grid:   spatial.NewGrid(cell),
		ch:     ch,
		col:    col,
		pool:   par.Seq,
		shards: make([]stepShard, 1),
	}
	// The reliability plane's estimator is shared by every node's Monitor.
	// Unknown names are a programmer error (scenario.Build validates user
	// input before it reaches here).
	w.est = linkstate.MustNew(cfg.Estimator, linkstate.Config{Range: ch.MeanRange()})
	// The radio link cache is the world's shared transmit fast path: the
	// MAC resolves every frame (data and beacons alike) against it, and the
	// world owns its invalidation — each mobility step's grid updates, plus
	// incremental join/leave and failure injection, advance the grid epoch
	// the cache keys on.
	w.links = radio.NewCache(w.grid, ch)
	w.mac = mac.NewLayer(eng, w.links, cfg.MAC, col, w.dispatch, w.txFailed)
	w.mac.OnFrameDone(w.frameDone)
	return w
}

// Radio exposes the shared per-epoch link cache (harness instrumentation
// and tests; protocols must observe the world through beacons).
func (w *World) Radio() *radio.Cache { return w.links }

// getPacket takes a packet from the pool (or allocates one). Callers own
// the result until they pass it to Send or Release.
func (w *World) getPacket() *Packet {
	if n := len(w.pktFree); n > 0 {
		p := w.pktFree[n-1]
		w.pktFree = w.pktFree[:n-1]
		return p
	}
	return &Packet{}
}

// putPacket recycles a packet. The caller asserts no reference to it
// remains anywhere — see the ownership rules in the README's Performance
// section.
func (w *World) putPacket(p *Packet) {
	*p = Packet{}
	w.pktFree = append(w.pktFree, p)
}

// frameDone is the MAC's frame-lifecycle hook: by the time it fires, every
// receiver upcall for the frame has run, so stack-owned payloads (beacons)
// can be recycled.
func (w *World) frameDone(f mac.Frame) {
	pkt, ok := f.Payload.(*Packet)
	if !ok || pkt.Kind != KindHello {
		return
	}
	w.helloFree = append(w.helloFree, pkt)
}

// Engine exposes the underlying engine (used by the harness for extra
// instrumentation events).
func (w *World) Engine() *sim.Engine { return w.eng }

// Collector returns the run's metrics collector.
func (w *World) Collector() *metrics.Collector { return w.col }

// Channel returns the propagation model in use.
func (w *World) Channel() channel.Model { return w.ch }

// Nodes returns the number of nodes.
func (w *World) Nodes() int { return len(w.nodes) }

// NodeIDs returns all node IDs of the given kind.
func (w *World) NodeIDs(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range w.nodes {
		if n.kind == kind {
			out = append(out, n.id)
		}
	}
	return out
}

func (w *World) nodeByID(id NodeID) *node {
	if id < 0 || int(id) >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// PositionOf returns the current true position of a node (harness
// instrumentation; protocols should use beacons or LookupPosition). A
// node whose vehicle left the world has no position.
func (w *World) PositionOf(id NodeID) (geom.Vec2, bool) {
	n := w.nodeByID(id)
	if n == nil || n.left {
		return geom.Vec2{}, false
	}
	return n.pos, true
}

// VelocityOf returns the current true velocity of a node.
func (w *World) VelocityOf(id NodeID) (geom.Vec2, bool) {
	n := w.nodeByID(id)
	if n == nil || n.left {
		return geom.Vec2{}, false
	}
	return n.vel, true
}

// KindOf returns the node kind.
func (w *World) KindOf(id NodeID) (NodeKind, bool) {
	n := w.nodeByID(id)
	if n == nil {
		return 0, false
	}
	return n.kind, true
}

// AddVehicleNodes creates one node per vehicle currently in the mobility
// model, attaching a fresh router from the factory. Buses become BusNode
// kind. It returns the created node IDs in vehicle order.
func (w *World) AddVehicleNodes(factory RouterFactory) []NodeID {
	states := w.model.States()
	ids := make([]NodeID, 0, len(states))
	for _, s := range states {
		kind := Vehicle
		if s.Class == mobility.Bus {
			kind = BusNode
		}
		id := w.addNode(kind, s.Pos, s.Vel, factory(), s.ID)
		ids = append(ids, id)
	}
	return ids
}

// AddStaticNode creates a fixed node (e.g. an RSU) at pos.
func (w *World) AddStaticNode(kind NodeKind, pos geom.Vec2, r Router) NodeID {
	return w.addNode(kind, pos, geom.Vec2{}, r, -1)
}

func (w *World) addNode(kind NodeKind, pos, vel geom.Vec2, r Router, vehID mobility.VehicleID) NodeID {
	id := NodeID(len(w.nodes))
	n := &node{
		id: id, kind: kind, router: r,
		mon: linkstate.NewMonitor(w.cfg.neighborTTL(), w.ch.MeanRange(), w.est),
		pos: pos, vel: vel,
		rngSeed: w.eng.RandSeed(),
		vehID:   vehID,
		active:  true,
	}
	w.nodes = append(w.nodes, n)
	w.markActive(n)
	if vehID >= 0 {
		for int(vehID) >= len(w.byVeh) {
			w.byVeh = append(w.byVeh, nil)
		}
		w.byVeh[vehID] = n
	}
	w.grid.Update(int32(id), pos)
	r.Attach(&API{world: w, node: n})
	return id
}

// markActive inserts n into the sorted active slice (no-op if present).
// New nodes always carry the highest ID, so the common case appends.
func (w *World) markActive(n *node) {
	i := sort.Search(len(w.actives), func(i int) bool { return w.actives[i].id >= n.id })
	if i < len(w.actives) && w.actives[i] == n {
		return
	}
	w.actives = append(w.actives, nil)
	copy(w.actives[i+1:], w.actives[i:])
	w.actives[i] = n
}

// markInactive removes n from the sorted active slice (no-op if absent).
func (w *World) markInactive(n *node) {
	i := sort.Search(len(w.actives), func(i int) bool { return w.actives[i].id >= n.id })
	if i >= len(w.actives) || w.actives[i] != n {
		return
	}
	w.actives = append(w.actives[:i], w.actives[i+1:]...)
}

// SetJoinFactory switches the world to open-world membership: vehicles
// that appear in the mobility model after the run started are given a
// node running a fresh router from factory (joining mid-run, with their
// own beacon ticker when beaconing is armed), and vehicles that disappear
// from the model have their node leave — removed from the spatial index
// and silenced, so the radio cache, neighbor tables, and flows observe
// the departure instead of a parked phantom. Call before Run.
func (w *World) SetJoinFactory(factory RouterFactory) {
	w.joinFactory = factory
}

// Joins returns how many nodes joined the world mid-run.
func (w *World) Joins() int { return w.joins }

// Leaves returns how many nodes left the world mid-run.
func (w *World) Leaves() int { return w.leaves }

// ActiveNodes returns the number of currently active nodes (joined, not
// departed, not failure-injected).
func (w *World) ActiveNodes() int { return len(w.actives) }

// SetNodeActive enables or disables a node (failure injection). Disabled
// nodes neither transmit nor receive and vanish from the spatial index.
func (w *World) SetNodeActive(id NodeID, active bool) {
	n := w.nodeByID(id)
	if n == nil || n.active == active {
		return
	}
	n.active = active
	if active {
		w.markActive(n)
		w.grid.Update(int32(id), n.pos)
	} else {
		w.markInactive(n)
		w.grid.Remove(int32(id))
	}
}

// AddFlow schedules a constant-bit-rate application flow: count packets of
// size bytes from src to dst, one every interval seconds starting at start.
func (w *World) AddFlow(src, dst NodeID, start, interval float64, count, size int) {
	if count <= 0 {
		return
	}
	for i := 0; i < count; i++ {
		at := start + float64(i)*interval
		w.eng.At(at, func() {
			n := w.nodeByID(src)
			if n == nil || !n.active {
				return
			}
			w.col.OnDataSent()
			if w.faultWindow != nil && w.faultWindow(w.eng.Now()) {
				w.col.DataSentFault++
			}
			n.router.Originate(dst, size)
		})
	}
}

// AddVehicleFlow schedules a CBR flow addressed by mobility vehicle IDs
// instead of node IDs, resolving both endpoints at each packet's send
// time. This is the flow primitive for open worlds: the endpoints may
// not have joined yet when the flow is wired (a trace whose tracks start
// mid-run), and packets are only originated while the source is an
// active member and the destination has a known node.
func (w *World) AddVehicleFlow(src, dst mobility.VehicleID, start, interval float64, count, size int) {
	if count <= 0 {
		return
	}
	for i := 0; i < count; i++ {
		at := start + float64(i)*interval
		w.eng.At(at, func() {
			sn := w.vehicleNode(src)
			dn := w.vehicleNode(dst)
			if sn == nil || !sn.active || dn == nil {
				return
			}
			w.col.OnDataSent()
			if w.faultWindow != nil && w.faultWindow(w.eng.Now()) {
				w.col.DataSentFault++
			}
			sn.router.Originate(dn.id, size)
		})
	}
}

// vehicleNode maps a mobility vehicle ID to its node, nil if the vehicle
// never joined.
func (w *World) vehicleNode(id mobility.VehicleID) *node {
	if id < 0 || int(id) >= len(w.byVeh) {
		return nil
	}
	return w.byVeh[id]
}

// Run executes the simulation for duration seconds. It is equivalent to
// StartRun, AdvanceTo(duration), CompleteRun, EndRun — the segmented form
// the checkpoint plane drives so it can snapshot at event-free
// boundaries; a single Run(d) and any sequence of AdvanceTo calls ending
// at d execute the identical event sequence.
func (w *World) Run(duration float64) error {
	w.StartRun()
	defer w.EndRun()
	if err := w.AdvanceTo(duration); err != nil {
		return err
	}
	w.CompleteRun()
	return nil
}

// StartRun arms the run's periodic machinery — the mobility tick, per-node
// beaconing, the location-service refresh, and the intra-run worker pool —
// without executing any events. Calling it more than once is a no-op, so
// segmented drivers need no state of their own. Callers that bypass Run
// must pair it with EndRun to release the worker pool.
func (w *World) StartRun() {
	if w.started {
		return
	}
	w.started = true
	needBeacons := false
	for _, n := range w.nodes {
		if n.router.NeedsBeacons() {
			needBeacons = true
			break
		}
	}
	if !needBeacons && w.joinFactory != nil && len(w.nodes) == 0 {
		// an open world may start empty (a trace whose first track begins
		// after t=0); probe a throwaway router so joiners still get beacons
		needBeacons = w.joinFactory().NeedsBeacons()
	}
	// intra-run worker pool: created here (not NewWorld) so worlds that
	// are built but never run own no goroutines, and torn down when the
	// run ends (EndRun). The workers block between phases — no spinning —
	// so Shards > core count degrades to sequential speed, not livelock.
	if s := w.cfg.shards(); s > 1 {
		w.pool = par.New(s)
		w.poolOwned = true
		w.mac.SetPool(w.pool)
		w.shards = make([]stepShard, s)
		if needBeacons {
			// prewarm the per-node RNG streams across the shards: seeds
			// were drawn eagerly at addNode, so materializing generators
			// early is unobservable — it only moves the ~600 mixing steps
			// per node off the serial beacon-arming loop below.
			pool := w.pool
			pool.Run(func(shard int) {
				lo, hi := pool.Range(len(w.nodes), shard)
				for _, n := range w.nodes[lo:hi] {
					n.random()
				}
			})
		}
	}
	// mobility + housekeeping tick
	tick := w.cfg.tick()
	w.eng.Ticker(0, tick, 0, nil, func() { w.step(tick) })
	// per-node beaconing with phase jitter
	w.beaconing = needBeacons
	if needBeacons {
		for _, n := range w.nodes {
			w.startBeacon(n)
		}
	}
	// location service refresh
	staleness := w.cfg.LocationStaleness
	if staleness <= 0 {
		staleness = 1.0
	}
	w.eng.Ticker(0, staleness, 0, nil, w.refreshLocations)
}

// AdvanceTo runs the engine until the simulation clock reaches t (events
// at exactly t still fire). Repeated calls with increasing t execute the
// identical event sequence as one call with the final t — the property
// that makes checkpoint boundaries unobservable. StartRun must have run.
func (w *World) AdvanceTo(t float64) error {
	if err := w.eng.Run(t); err != nil {
		return fmt.Errorf("netstack: run: %w", err)
	}
	return nil
}

// CompleteRun finalizes end-of-run accounting (censoring the link audit's
// still-open samples). Call once, after the final AdvanceTo.
func (w *World) CompleteRun() { w.finishAudit() }

// EndRun tears down the intra-run worker pool. Idempotent; safe to call
// whether or not the run completed.
func (w *World) EndRun() {
	if w.poolOwned {
		w.mac.SetPool(par.Seq)
		w.pool.Close()
		w.pool = par.Seq
		w.poolOwned = false
	}
}

// step advances mobility and refreshes node kinematics and the spatial
// index. The grid updates below advance the grid epoch, which is what
// invalidates every cached radio neighborhood: transmissions after this
// tick rebuild (lazily, per transmitter) against the new positions, and
// every transmission until the next tick reuses them.
//
// The same snapshot drives open-world membership: a state whose vehicle
// has no node joins (when a join factory is set), and a vehicle node the
// snapshot no longer contains leaves. Closed worlds never hit either
// path, so the bookkeeping is two integer stamps per vehicle per tick.
func (w *World) step(dt float64) {
	w.stepSeq++
	pool := w.pool
	sharded, isSharded := w.model.(mobility.ShardedModel)
	if isSharded {
		w.stateBuf = sharded.StatesIntoShards(w.stateBuf[:0], pool)
	} else {
		w.stateBuf = w.model.StatesInto(w.stateBuf[:0])
	}
	// Kinematics phase, per shard over disjoint stateBuf ranges: write
	// each node's pos/vel and stage its grid move (a write to the node's
	// private slot in the dense position array). Everything whose order
	// is observable — cell-list surgery, joins, re-entries — is recorded
	// in the shard's op list and replayed serially below in stateBuf
	// order, exactly the mutation sequence of the sequential engine.
	pool.Run(func(shard int) {
		sh := &w.shards[shard]
		sh.ops = sh.ops[:0]
		sh.changed = false
		lo, hi := pool.Range(len(w.stateBuf), shard)
		for i := lo; i < hi; i++ {
			s := &w.stateBuf[i]
			var n *node
			if int(s.ID) < len(w.byVeh) {
				n = w.byVeh[s.ID]
			}
			if n == nil {
				if w.joinFactory != nil {
					sh.ops = append(sh.ops, stepOp{kind: opJoin, idx: int32(i)})
				}
				continue
			}
			n.seenStep = w.stepSeq
			if n.left {
				// the vehicle re-entered the world (e.g. a gap in its
				// trace); membership changes are serial-merge work
				sh.ops = append(sh.ops, stepOp{kind: opRejoin, idx: int32(i)})
				continue
			}
			n.pos = s.Pos
			n.vel = s.Vel
			if !n.active {
				continue
			}
			changed, mv, cross, ok := w.grid.Stage(int32(n.id), n.pos)
			if !ok {
				sh.ops = append(sh.ops, stepOp{kind: opInsert, idx: int32(i)})
				continue
			}
			sh.changed = sh.changed || changed
			if cross {
				sh.ops = append(sh.ops, stepOp{kind: opMove, mv: mv})
			}
		}
	})
	// Serial merge in shard (= stateBuf) order, then one epoch advance
	// for the whole tick's staged movement — the radio cache and the
	// kinematic memo see a single geometry change per tick instead of
	// one per moved vehicle. Joins and removals below still bump the
	// epoch themselves (they change membership, not just positions).
	changed := false
	for si := range w.shards {
		sh := &w.shards[si]
		changed = changed || sh.changed
		for _, op := range sh.ops {
			switch op.kind {
			case opMove:
				w.grid.Commit(op.mv)
			case opJoin:
				w.joinVehicle(&w.stateBuf[op.idx])
			case opRejoin:
				s := &w.stateBuf[op.idx]
				n := w.byVeh[s.ID]
				n.left = false
				n.active = true
				w.markActive(n)
				w.joins++
				w.col.NodeJoins++
				n.pos = s.Pos
				n.vel = s.Vel
				w.grid.Update(int32(n.id), n.pos)
			case opInsert:
				n := w.byVeh[w.stateBuf[op.idx].ID]
				w.grid.Update(int32(n.id), n.pos)
			}
		}
	}
	if changed {
		w.grid.AdvanceEpoch()
	}
	if isSharded {
		sharded.AdvanceShards(dt, pool)
	} else {
		w.model.Advance(dt)
	}
	// departure sweep — only in open worlds (SetJoinFactory): an active
	// vehicle node absent from this step's snapshot left the mobility
	// model (trace window closed, lifetime expired, drove off the map).
	// Worlds that never opted into open membership keep the legacy
	// fixed-population behaviour and report zero joins/leaves. Detection
	// (a flag comparison per active node) shards; leaveNode runs at the
	// merge, in node-ID order.
	if w.joinFactory != nil {
		actives := w.actives
		pool.Run(func(shard int) {
			sh := &w.shards[shard]
			sh.departed = sh.departed[:0]
			lo, hi := pool.Range(len(actives), shard)
			for _, n := range actives[lo:hi] {
				if n.vehID >= 0 && n.seenStep != w.stepSeq {
					sh.departed = append(sh.departed, n)
				}
			}
		})
		for si := range w.shards {
			for _, n := range w.shards[si].departed {
				w.leaveNode(n)
			}
		}
	}
	// Neighbor expiry sweep over the active slice: Expire mutates only
	// its own node's monitor and draws nothing, so it shards per node;
	// the router callbacks — which may transmit, enqueueing onto the
	// serial MAC path — replay at the merge in node-ID order.
	now := w.eng.Now()
	actives := w.actives
	pool.Run(func(shard int) {
		sh := &w.shards[shard]
		sh.expired = sh.expired[:0]
		lo, hi := pool.Range(len(actives), shard)
		for _, n := range actives[lo:hi] {
			if gone := n.mon.Expire(now); len(gone) > 0 {
				sh.expired = append(sh.expired, expiredLinks{n: n, gone: gone})
			}
		}
	})
	for si := range w.shards {
		for _, ex := range w.shards[si].expired {
			for _, gone := range ex.gone {
				ex.n.router.OnNeighborExpired(gone)
			}
		}
	}
	if w.audit != nil {
		w.auditStep(now)
	}
	// Radio rebuild: when enough of the population transmitted during
	// the previous epoch that the lazy per-transmitter rebuilds would
	// dominate the serial event path anyway, rebuild every neighborhood
	// here — the symmetric cell-pair sweep over the grid's CSR snapshot,
	// sharded by cell stripes — while the geometry is final for the tick.
	// Pure prefetch — identical lists, identical outputs; sparse-demand
	// worlds stay on the lazy per-node path.
	if w.links.SweepWorthwhile(len(w.actives), pool.Shards()) {
		w.links.RebuildSweep(pool)
	}
}

// Digester is implemented by subsystems that can fold their logical state
// into a checkpoint digest. Mobility models implement it optionally; the
// world skips models that don't.
type Digester interface {
	DigestInto(d *digest.Writer)
}

// streamSource is implemented by subsystems that own serializable RNG
// streams (the road mobility model's per-vehicle streams).
type streamSource interface {
	AppendStreamStates(dst []prng.State) []prng.State
}

// DigestInto folds the world's complete checkpoint-relevant state into d,
// layer by layer in a fixed order: engine (clock, event queue, stream
// positions), spatial grid, mobility model, MAC, every node (kinematics,
// membership flags, RNG position, link-state monitor) in ID order, the
// membership and location-service planes, the metrics collector, the link
// audit, and every registered external stream.
//
// Excluded by design: the radio cache (pure memoization, shard-variant
// population), the worker pool and its shard buffers, the packet free
// lists, and stateBuf — all process-local scratch that a restored world
// re-derives. The result is identical across processes, worker counts,
// and shard counts for the same event history.
func (w *World) DigestInto(d *digest.Writer) {
	w.eng.DigestInto(d)
	w.grid.DigestInto(d)
	if dg, ok := w.model.(Digester); ok {
		d.Bool(true)
		dg.DigestInto(d)
	} else {
		d.Bool(false)
	}
	w.mac.DigestInto(d)
	d.Int(len(w.nodes))
	for _, n := range w.nodes {
		d.U32(uint32(n.id))
		d.Int(int(n.kind))
		d.F64(n.pos.X)
		d.F64(n.pos.Y)
		d.F64(n.vel.X)
		d.F64(n.vel.Y)
		d.I64(n.rngSeed)
		if n.rngSrc != nil {
			d.U64(n.rngSrc.Draws())
		} else {
			d.U64(0)
		}
		d.U32(uint32(n.vehID))
		d.Bool(n.active)
		d.Bool(n.left)
		d.U64(n.seenStep)
		n.mon.DigestInto(d)
	}
	d.U64(w.uid)
	d.U64(w.stepSeq)
	d.Int(w.joins)
	d.Int(w.leaves)
	d.Bool(w.beaconing)
	d.Int(len(w.actives))
	for _, n := range w.actives {
		d.U32(uint32(n.id))
	}
	d.Int(len(w.locPos))
	for i := range w.locPos {
		d.F64(w.locPos[i].X)
		d.F64(w.locPos[i].Y)
		d.F64(w.locVel[i].X)
		d.F64(w.locVel[i].Y)
		d.Bool(w.locOK[i])
	}
	w.col.DigestInto(d)
	if w.audit != nil {
		d.Bool(true)
		w.audit.digestInto(d)
	} else {
		d.Bool(false)
	}
	d.Int(len(w.extStreams))
	for _, s := range w.extStreams {
		d.Str(s.name)
		d.I64(s.src.SeedValue())
		d.U64(s.src.Draws())
	}
}

// Digest returns the world's state digest (DigestInto through a fresh
// writer) — the value checkpoints store and restores verify.
func (w *World) Digest() uint64 {
	d := digest.New()
	w.DigestInto(d)
	return d.Sum()
}

// AppendStreamStates appends the (owner, seed, draw position) of every
// RNG stream the run consumes — the engine's, each node's private stream,
// the mobility model's per-vehicle streams, and every registered external
// stream — to dst. The checkpoint snapshot records the table; restore
// verifies a fast-forwarded world reproduces it exactly.
func (w *World) AppendStreamStates(dst []prng.State) []prng.State {
	dst = w.eng.AppendStreamStates(dst)
	for _, n := range w.nodes {
		if n.rngSrc == nil {
			continue
		}
		dst = append(dst, prng.StateOf(fmt.Sprintf("node%d", n.id), n.rngSrc))
	}
	if ss, ok := w.model.(streamSource); ok {
		dst = ss.AppendStreamStates(dst)
	}
	for _, s := range w.extStreams {
		dst = append(dst, prng.StateOf(s.name, s.src))
	}
	return dst
}

// observer packages a node's current kinematics for the reliability
// plane: the mobility epoch (the spatial grid's) keys the kinematic
// lifetime memo, since node positions only move when the grid does.
func (w *World) observer(n *node) linkstate.Observer {
	return linkstate.Observer{Pos: n.pos, Vel: n.vel, Now: w.eng.Now(), Epoch: w.grid.Epoch()}
}

// joinVehicle creates a node for a vehicle that entered the mobility model
// mid-run, attaching a fresh router from the join factory and arming its
// beacon ticker when the run beacons.
func (w *World) joinVehicle(s *mobility.State) {
	kind := Vehicle
	if s.Class == mobility.Bus {
		kind = BusNode
	}
	id := w.addNode(kind, s.Pos, s.Vel, w.joinFactory(), s.ID)
	n := w.nodes[id]
	n.seenStep = w.stepSeq
	w.joins++
	w.col.NodeJoins++
	if w.beaconing {
		w.startBeacon(n)
	}
}

// leaveNode removes a departed vehicle's node from the world: it vanishes
// from the spatial index (advancing the grid epoch, so every cached radio
// neighborhood drops it) and neither transmits nor receives. Neighbor
// entries pointing at it expire through the normal TTL sweep, surfacing
// OnNeighborExpired to the protocols exactly like any other link break.
func (w *World) leaveNode(n *node) {
	n.left = true
	n.active = false
	w.markInactive(n)
	w.grid.Remove(int32(n.id))
	w.leaves++
	w.col.NodeLeaves++
}

func (w *World) refreshLocations() {
	for len(w.locPos) < len(w.nodes) {
		w.locPos = append(w.locPos, geom.Vec2{})
		w.locVel = append(w.locVel, geom.Vec2{})
		w.locOK = append(w.locOK, false)
	}
	for _, n := range w.nodes {
		w.locPos[n.id] = n.pos
		w.locVel[n.id] = n.vel
		// departed vehicles — and crashed nodes, whose radios are dark —
		// age out of the directory at the next refresh instead of
		// haunting it at their last position forever
		w.locOK[n.id] = !n.left && n.active
	}
}

func (w *World) lookupPosition(dst NodeID) (geom.Vec2, geom.Vec2, bool) {
	if int(dst) >= len(w.locOK) || dst < 0 || !w.locOK[dst] {
		n := w.nodeByID(dst)
		if n == nil || n.left || !n.active {
			return geom.Vec2{}, geom.Vec2{}, false
		}
		return n.pos, n.vel, true
	}
	return w.locPos[dst], w.locVel[dst], true
}

// startBeacon arms one node's HELLO ticker with a random phase and per-
// period jitter, drawn from the node's private stream so beacon phases
// never perturb any other component's randomness. The phase is relative
// to now: for the t=0 population that is the classic absolute phase, and
// for mid-run joiners it keeps their first beacons desynchronized
// instead of clamping them all onto the join tick's timestamp.
func (w *World) startBeacon(n *node) {
	phase := n.random().Float64() * w.cfg.beaconInterval()
	w.eng.Ticker(w.eng.Now()+phase, w.cfg.beaconInterval(), 0.1, n.random(), func() {
		w.sendBeacon(n)
	})
}

// sendBeacon broadcasts a HELLO for node n. Beacon packets (and their
// boxed payload) are recycled through helloFree once the MAC reports the
// frame's lifecycle complete — beacons never reach routers, so the stack
// is their only owner.
func (w *World) sendBeacon(n *node) {
	if !n.active {
		return
	}
	if w.beaconFilter != nil && w.beaconFilter(n.id, n.random()) {
		return // suppressed by a fault window; the draw stays on n's stream
	}
	var pkt *Packet
	if k := len(w.helloFree); k > 0 {
		pkt = w.helloFree[k-1]
		w.helloFree = w.helloFree[:k-1]
	} else {
		pkt = &Packet{Payload: new(beacon)}
	}
	b := pkt.Payload.(*beacon)
	b.kind, b.pos, b.vel = n.kind, n.pos, n.vel
	*pkt = Packet{
		UID:  0, // beacons are unnumbered
		Kind: KindHello, Proto: "hello",
		Src: n.id, Dst: Broadcast, From: n.id, To: Broadcast,
		TTL: 1, Size: w.cfg.beaconSize(), Created: w.eng.Now(),
		Payload: b,
	}
	w.col.OnControl(KindHello, pkt.Size)
	if w.faultWindow != nil && w.faultWindow(w.eng.Now()) {
		w.col.ControlFault++
	}
	w.mac.Send(mac.Frame{From: int32(n.id), To: mac.Broadcast, Size: pkt.Size, Payload: pkt})
}

// sendFrame is API.Send: it stamps link addresses, charges metrics, and
// hands the packet to the MAC.
func (w *World) sendFrame(n *node, to NodeID, pkt *Packet) {
	if !n.active {
		return
	}
	pkt.From = n.id
	pkt.To = to
	if pkt.Data {
		w.col.DataForwarded++
		w.col.DataBytes += pkt.Size
	} else {
		w.col.OnControl(pkt.Kind, pkt.Size)
		if w.faultWindow != nil && w.faultWindow(w.eng.Now()) {
			w.col.ControlFault++
		}
	}
	macTo := mac.Broadcast
	if to != Broadcast {
		macTo = int32(to)
	}
	w.mac.Send(mac.Frame{From: int32(n.id), To: macTo, Size: pkt.Size, Payload: pkt})
}

// txFailed is the MAC failure upcall: surface exhausted unicast ARQ to the
// sending router as a link-failure indication.
func (w *World) txFailed(from int32, f mac.Frame) {
	n := w.nodeByID(NodeID(from))
	if n == nil || !n.active {
		return
	}
	pkt, ok := f.Payload.(*Packet)
	if !ok || pkt.Kind == KindHello {
		return
	}
	// feed the reliability plane before the router reacts (the router may
	// ForgetNeighbor, discarding the entry the evidence belongs to)
	n.mon.RecordSendFailed(NodeID(f.To))
	n.router.OnSendFailed(pkt.Clone(), NodeID(f.To))
}

// dispatch is the MAC upcall: filter by link destination, consume beacons,
// clone per receiver, and hand to the router.
func (w *World) dispatch(to int32, f mac.Frame) {
	n := w.nodeByID(NodeID(to))
	if n == nil || !n.active {
		return
	}
	pkt, ok := f.Payload.(*Packet)
	if !ok {
		return
	}
	if pkt.To != Broadcast && pkt.To != n.id {
		return // unicast not for us; no promiscuous data path
	}
	if pkt.Kind == KindHello {
		b, ok := pkt.Payload.(*beacon)
		if !ok {
			return
		}
		d := n.pos.Dist(b.pos)
		rssi := w.ch.RSSI(d, n.random())
		nb := n.mon.Update(pkt.From, b.kind, b.pos, b.vel, rssi, w.eng.Now())
		n.router.OnBeacon(*nb)
		if w.faultBeaconHeard != nil {
			// someone heard pkt.From beaconing — the fault plane closes
			// its recovery-latency clock for that node, if one is open
			w.faultBeaconHeard(pkt.From)
		}
		return
	}
	// a decoded non-beacon frame is positive link feedback for the
	// reliability plane (no-op until the sender has been heard beaconing)
	n.mon.RecordReceived(pkt.From)
	// Hand the router its own mutable copy, drawn from the pool; the
	// router owns it and may hand it back via API.Release when its
	// journey provably ends.
	cp := w.getPacket()
	*cp = *pkt
	cp.Hops++
	n.router.HandlePacket(cp)
}
