package netstack

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/sim"
)

// Router is the interface every protocol implements. One instance is
// attached per node.
type Router interface {
	// Name returns the protocol name (stable, used in metrics and the
	// taxonomy registry).
	Name() string
	// Attach hands the router its per-node API. Called once before the
	// simulation starts.
	Attach(api *API)
	// HandlePacket processes a link-layer delivered packet (unicast to
	// this node or broadcast). Beacons are consumed by the stack and do
	// not reach HandlePacket.
	HandlePacket(pkt *Packet)
	// Originate injects application data for dst. The router owns
	// queueing and discovery; undeliverable data is dropped by the
	// router.
	Originate(dst NodeID, size int)
	// OnBeacon fires after the stack refreshed the neighbor entry.
	OnBeacon(nb Neighbor)
	// OnNeighborExpired fires when a neighbor times out — the stack-level
	// link-break signal routers use for RERR/repair logic.
	OnNeighborExpired(id NodeID)
	// OnSendFailed fires at the sender when a unicast transmission of pkt
	// to the given next hop exhausted the MAC's ARQ budget — the 802.11
	// transmission-failure indication. Routers typically blacklist the
	// neighbor and re-route or report a broken link.
	OnSendFailed(pkt *Packet, to NodeID)
	// NeedsBeacons reports whether this protocol requires the HELLO
	// beaconing substrate. Stacks without any beacon consumer skip
	// beaconing, so protocols that advertise independence from
	// "neighboring awareness" aren't charged its overhead.
	NeedsBeacons() bool
}

// RouterFactory builds one router per node.
type RouterFactory func() Router

// Base provides default no-op implementations of the optional Router
// hooks. Protocols embed it and override what they need.
type Base struct {
	API *API
}

// Attach stores the API.
func (b *Base) Attach(api *API) { b.API = api }

// OnBeacon is a no-op by default.
func (b *Base) OnBeacon(Neighbor) {}

// OnNeighborExpired is a no-op by default.
func (b *Base) OnNeighborExpired(NodeID) {}

// OnSendFailed is a no-op by default.
func (b *Base) OnSendFailed(*Packet, NodeID) {}

// NeedsBeacons defaults to true; pure flooding protocols override it.
func (b *Base) NeedsBeacons() bool { return true }

// API is the per-node interface the stack exposes to its router.
type API struct {
	world *World
	node  *node
}

// Self returns this node's ID.
func (a *API) Self() NodeID { return a.node.id }

// Kind returns this node's kind.
func (a *API) Kind() NodeKind { return a.node.kind }

// Now returns the simulation time.
func (a *API) Now() float64 { return a.world.eng.Now() }

// Pos returns this node's current position.
func (a *API) Pos() geom.Vec2 { return a.node.pos }

// Vel returns this node's current velocity.
func (a *API) Vel() geom.Vec2 { return a.node.vel }

// Neighbors returns a sorted snapshot of the live neighbor table (observed
// fields only; use LinkStates for the reliability plane's predictions).
func (a *API) Neighbors() []Neighbor { return a.node.mon.Snapshot() }

// Neighbor looks up one neighbor entry (observed fields only).
func (a *API) Neighbor(id NodeID) (Neighbor, bool) { return a.node.mon.Get(id) }

// HasNeighbor reports whether id is currently a live neighbor.
func (a *API) HasNeighbor(id NodeID) bool { return a.node.mon.Has(id) }

// ForgetNeighbor removes id from the neighbor table immediately (without
// firing OnNeighborExpired — the caller already knows). Routers blacklist
// stale neighbors this way after a transmission failure. The reliability
// plane's evidence for the link is discarded with the entry.
func (a *API) ForgetNeighbor(id NodeID) { a.node.mon.Remove(id) }

// LinkState returns the reliability plane's estimate for the link to id:
// the neighbor entry with Age, predicted residual Lifetime, and
// ReceiptProb filled by the world's configured estimator (Config.Estimator,
// default "composite"). The kinematic lifetime behind it is memoized per
// mobility epoch, so repeated queries within one routing decision are
// cheap and allocation-free.
func (a *API) LinkState(id NodeID) (LinkState, bool) {
	return a.node.mon.State(id, a.world.observer(a.node))
}

// LinkStates returns the estimate for every live neighbor, sorted by ID —
// the same iteration order as Neighbors, with predictions filled.
func (a *API) LinkStates() []LinkState {
	return a.node.mon.States(a.world.observer(a.node))
}

// Send transmits pkt on the link layer. to is a node ID or Broadcast. The
// stack fills From/To, charges metrics by packet type, and hands the frame
// to the MAC.
func (a *API) Send(to NodeID, pkt *Packet) {
	a.world.sendFrame(a.node, to, pkt)
}

// After schedules fn after d seconds; the returned timer can be cancelled.
func (a *API) After(d float64, fn func()) sim.TimerID { return a.world.eng.After(d, fn) }

// Cancel cancels a pending timer.
func (a *API) Cancel(id sim.TimerID) { a.world.eng.Cancel(id) }

// Rand returns this node's deterministic random stream (materializing it
// on first use; see node.random).
func (a *API) Rand() *rand.Rand { return a.node.random() }

// Metrics returns the run-wide collector.
func (a *API) Metrics() *metrics.Collector { return a.world.col }

// NewUID issues a fresh packet UID.
func (a *API) NewUID() uint64 {
	a.world.uid++
	return a.world.uid
}

// Deliver reports that a data packet reached its destination. The stack
// records delay and hop metrics; duplicate UIDs are counted as duplicates.
// It reports whether this was the first delivery.
func (a *API) Deliver(pkt *Packet) bool {
	first := a.world.col.OnDataDelivered(pkt.UID, a.Now()-pkt.Created, pkt.Hops)
	if first && a.world.onFirstDelivery != nil {
		a.world.onFirstDelivery(pkt.Created)
	}
	return first
}

// Drop reports that a data packet was abandoned (no route, TTL, queue
// overflow).
func (a *API) Drop(pkt *Packet) {
	if pkt.Data {
		a.world.col.DataDropped++
	}
}

// Release hands a packet back to the stack's free list. Only the packet's
// owner may call it, and only when the packet's journey provably ends at
// this node (duplicate discard, delivery at the destination, terminal
// drop). The caller must hold no other reference: in particular a packet
// that was passed to Send, stored in a retry buffer, or shared with a
// timer callback must NOT be released. Releasing is optional — packets
// that are never released are simply garbage collected. The engine is
// single-threaded, so the free list needs no synchronisation.
func (a *API) Release(pkt *Packet) { a.world.putPacket(pkt) }

// RangeEstimate returns the channel's 50% reception range: the r every
// analytic lifetime computation (Eqn 4) uses.
func (a *API) RangeEstimate() float64 { return a.world.ch.MeanRange() }

// LookupPosition implements an idealised location service: the last
// position/velocity of dst sampled at the configured staleness. The survey
// assumes "vehicles knowing the geographic position of neighbors" and a
// GPS/digital-map substrate for geographic and probability protocols; the
// oracle with staleness models exactly that information with bounded
// freshness.
func (a *API) LookupPosition(dst NodeID) (pos, vel geom.Vec2, ok bool) {
	return a.world.lookupPosition(dst)
}

// NodeKindOf returns the kind of an arbitrary node (directory information,
// like knowing which addresses are RSUs).
func (a *API) NodeKindOf(id NodeID) (NodeKind, bool) {
	n := a.world.nodeByID(id)
	if n == nil {
		return 0, false
	}
	return n.kind, true
}

// Nodes returns the total node count (IDs are 0..Nodes()-1).
func (a *API) Nodes() int { return len(a.world.nodes) }
