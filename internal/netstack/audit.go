package netstack

import (
	"sort"

	"github.com/vanetlab/relroute/internal/linkstate"
)

// Ground-truth link auditing: the world watches true geometry to measure
// how good the reliability plane's lifetime predictions are. When a node
// first holds a neighbor entry for a peer that is genuinely within radio
// range, the audit samples the estimator's predicted residual lifetime;
// when the true inter-node distance later crosses the range (or an
// endpoint leaves the world), the observed lifetime is the elapsed time.
// Prediction and observation are both capped at the audit horizon, which
// bounds memory and removes the censoring bias long-lived links would
// otherwise introduce. Samples feed metrics.Collector.OnLinkPrediction —
// the MAE/bias/calibration block the link-accuracy experiment reports.
//
// The audit is opt-in (EnableLinkAudit): it draws no randomness, and when
// disabled the per-step cost is one nil check, so default worlds — and
// with them every golden experiment output — are unaffected.

// linkSample is one open directed prediction: observer a sampled pred
// seconds of residual lifetime for its link to b at time t0.
type linkSample struct {
	a, b NodeID
	t0   float64
	pred float64
}

// linkAudit tracks open samples. The slice preserves deterministic
// open/close ordering (map iteration never decides anything observable);
// idx provides O(1) membership. ids and cand are reused scratch buffers
// for the per-step open scan, so a step that forms no new links costs no
// allocations, sorting, or estimator work.
type linkAudit struct {
	horizon float64
	open    []linkSample
	idx     map[uint64]bool
	ids     []linkstate.NodeID
	cand    []linkstate.NodeID
}

func pairKey(a, b NodeID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// EnableLinkAudit arms ground-truth link-break tracking with the given
// horizon in seconds (<= 0 means 30): predictions and observations are
// capped there. Call before Run.
func (w *World) EnableLinkAudit(horizon float64) {
	if horizon <= 0 {
		horizon = 30
	}
	w.audit = &linkAudit{horizon: horizon, idx: make(map[uint64]bool)}
}

// auditStep advances the audit at the end of one mobility step: close
// samples whose link broke in truth (or aged past the horizon), then open
// samples for table entries without one. Iteration is node-ID ordered so
// float accumulation in the collector is deterministic across runs.
func (w *World) auditStep(now float64) {
	a := w.audit
	r := w.ch.MeanRange()
	keep := a.open[:0]
	for _, s := range a.open {
		obs, peer := w.nodeByID(s.a), w.nodeByID(s.b)
		broken := obs == nil || peer == nil || !obs.active || !peer.active ||
			obs.pos.Dist(peer.pos) > r
		elapsed := now - s.t0
		if !broken && elapsed < a.horizon {
			keep = append(keep, s)
			continue
		}
		if elapsed > a.horizon {
			elapsed = a.horizon
		}
		w.col.OnLinkPrediction(s.pred, elapsed)
		delete(a.idx, pairKey(s.a, s.b))
	}
	a.open = keep
	for _, n := range w.nodes {
		if !n.active {
			continue
		}
		// Filter first in map order (the filter is pure, so the order is
		// unobservable), then sort only the usually-empty candidate set
		// and run the estimator just for those — most steps form no new
		// links, and the fast path touches no allocation or sort.
		a.cand = a.cand[:0]
		a.ids = n.mon.AppendIDs(a.ids[:0])
		for _, id := range a.ids {
			if a.idx[pairKey(n.id, id)] {
				continue
			}
			peer := w.nodeByID(id)
			if peer == nil || !peer.active || n.pos.Dist(peer.pos) > r {
				continue // never open a sample on a link that is already down
			}
			a.cand = append(a.cand, id)
		}
		if len(a.cand) == 0 {
			continue
		}
		sort.Slice(a.cand, func(i, j int) bool { return a.cand[i] < a.cand[j] })
		obs := w.observer(n)
		for _, id := range a.cand {
			st, ok := n.mon.State(id, obs)
			if !ok {
				continue
			}
			pred := st.Lifetime
			if pred > a.horizon {
				pred = a.horizon
			}
			a.idx[pairKey(n.id, id)] = true
			a.open = append(a.open, linkSample{a: n.id, b: id, t0: now, pred: pred})
		}
	}
}

// finishAudit records samples still open at the end of the run as
// censored: the run ended before either a break or the horizon resolved
// them, so they carry no usable observation.
func (w *World) finishAudit() {
	if w.audit == nil {
		return
	}
	w.col.LinkCensored += len(w.audit.open)
	w.audit.open = w.audit.open[:0]
	clear(w.audit.idx)
}
