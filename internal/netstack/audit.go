package netstack

import (
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
)

// Ground-truth link auditing: the world watches true geometry to measure
// how good the reliability plane's lifetime predictions are. When a node
// first holds a neighbor entry for a peer that is genuinely within radio
// range, the audit samples the estimator's predicted residual lifetime;
// when the true inter-node distance later crosses the range (or an
// endpoint leaves the world), the observed lifetime is the elapsed time.
// Prediction and observation are both capped at the audit horizon, which
// bounds memory and removes the censoring bias long-lived links would
// otherwise introduce. Samples feed metrics.Collector.OnLinkPrediction —
// the MAE/bias/calibration block the link-accuracy experiment reports.
//
// The audit is opt-in (EnableLinkAudit): it draws no randomness, and when
// disabled the per-step cost is one nil check, so default worlds — and
// with them every golden experiment output — are unaffected.

// linkSample is one open directed prediction: observer a sampled pred
// seconds of residual lifetime for its link to b at time t0.
type linkSample struct {
	a, b NodeID
	t0   float64
	pred float64
}

// linkAudit tracks open samples. The slice preserves deterministic
// open/close ordering (map iteration never decides anything observable);
// idx provides O(1) membership. The per-step open scan's scratch buffers
// live in the world's per-shard stepShard records, so a step that forms
// no new links costs no allocations, sorting, or estimator work — on any
// shard count.
type linkAudit struct {
	horizon float64
	open    []linkSample
	idx     map[uint64]bool
}

func pairKey(a, b NodeID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// EnableLinkAudit arms ground-truth link-break tracking with the given
// horizon in seconds (<= 0 means 30): predictions and observations are
// capped there. Call before Run.
func (w *World) EnableLinkAudit(horizon float64) {
	if horizon <= 0 {
		horizon = 30
	}
	w.audit = &linkAudit{horizon: horizon, idx: make(map[uint64]bool)}
}

// auditStep advances the audit at the end of one mobility step: close
// samples whose link broke in truth (or aged past the horizon), then open
// samples for table entries without one. The close pass stays serial (it
// feeds float accumulation in the collector, which must stay node-ID
// ordered); the open scan — membership filter, candidate sort, estimator
// reads — shards per node, since it only reads frozen kinematics, the
// idx map (written solely at the merge), and each node's own monitor.
// Per-shard sample lists concatenate in shard order, which is node-ID
// order, so a.open grows in exactly the sequential sequence.
func (w *World) auditStep(now float64) {
	a := w.audit
	r := w.ch.MeanRange()
	keep := a.open[:0]
	for _, s := range a.open {
		obs, peer := w.nodeByID(s.a), w.nodeByID(s.b)
		broken := obs == nil || peer == nil || !obs.active || !peer.active ||
			obs.pos.Dist(peer.pos) > r
		elapsed := now - s.t0
		if !broken && elapsed < a.horizon {
			keep = append(keep, s)
			continue
		}
		if elapsed > a.horizon {
			elapsed = a.horizon
		}
		w.col.OnLinkPrediction(s.pred, elapsed)
		delete(a.idx, pairKey(s.a, s.b))
	}
	a.open = keep
	pool := w.pool
	actives := w.actives
	pool.Run(func(shard int) {
		sh := &w.shards[shard]
		sh.samples = sh.samples[:0]
		lo, hi := pool.Range(len(actives), shard)
		for _, n := range actives[lo:hi] {
			// Filter first in map order (the filter is pure, so the order
			// is unobservable), then sort only the usually-empty candidate
			// set and run the estimator just for those — most steps form
			// no new links, and the fast path touches no allocation or
			// sort. Two observers never share a pairKey (the key leads
			// with n.id), so deferring idx writes to the merge cannot
			// change any node's filter result within the step.
			sh.cand = sh.cand[:0]
			sh.ids = n.mon.AppendIDs(sh.ids[:0])
			for _, id := range sh.ids {
				if a.idx[pairKey(n.id, id)] {
					continue
				}
				peer := w.nodeByID(id)
				if peer == nil || !peer.active || n.pos.Dist(peer.pos) > r {
					continue // never open a sample on a link that is already down
				}
				sh.cand = append(sh.cand, id)
			}
			if len(sh.cand) == 0 {
				continue
			}
			sort.Slice(sh.cand, func(i, j int) bool { return sh.cand[i] < sh.cand[j] })
			obs := w.observer(n)
			for _, id := range sh.cand {
				st, ok := n.mon.State(id, obs)
				if !ok {
					continue
				}
				pred := st.Lifetime
				if pred > a.horizon {
					pred = a.horizon
				}
				sh.samples = append(sh.samples, linkSample{a: n.id, b: id, t0: now, pred: pred})
			}
		}
	})
	for si := range w.shards {
		for _, s := range w.shards[si].samples {
			a.idx[pairKey(s.a, s.b)] = true
			a.open = append(a.open, s)
		}
	}
}

// digestInto folds the audit's open samples into d in slice order (the
// deterministic open order). idx is derived from open, so only its size
// participates.
func (a *linkAudit) digestInto(d *digest.Writer) {
	d.F64(a.horizon)
	d.Int(len(a.open))
	for _, s := range a.open {
		d.U32(uint32(s.a))
		d.U32(uint32(s.b))
		d.F64(s.t0)
		d.F64(s.pred)
	}
	d.Int(len(a.idx))
}

// finishAudit records samples still open at the end of the run as
// censored: the run ended before either a break or the horizon resolved
// them, so they carry no usable observation.
func (w *World) finishAudit() {
	if w.audit == nil {
		return
	}
	w.col.LinkCensored += len(w.audit.open)
	w.audit.open = w.audit.open[:0]
	clear(w.audit.idx)
}
