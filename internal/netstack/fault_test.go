package netstack

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// parallelTracks builds n side-by-side tracks active on [0, dur], all
// moving in +x at the same speed so every pair stays in radio range.
func parallelTracks(n int, dur float64) []mobility.Track {
	tracks := make([]mobility.Track, n)
	for i := range tracks {
		y := float64(i) * 30
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(0, y), Speed: 10},
				{T: dur, Pos: geom.V(10*dur, y), Speed: 10},
			},
		}
	}
	return tracks
}

// TestCrashRecoverIsNotChurn pins the fault plane's core membership
// semantics: a crash/recover cycle is invisible to the churn counters —
// the node was down, not gone — and is idempotent at both edges.
func TestCrashRecoverIsNotChurn(t *testing.T) {
	model := mobility.NewPlayback(parallelTracks(2, 30))
	w := NewWorld(Config{Seed: 21}, model)
	w.SetJoinFactory(newChurnRouter)
	ids := w.AddVehicleNodes(newChurnRouter)
	w.Engine().At(5, func() {
		if !w.CrashNode(ids[0]) {
			t.Error("CrashNode failed on a healthy node")
		}
		if w.CrashNode(ids[0]) {
			t.Error("CrashNode succeeded on an already-down node")
		}
		if w.CrashNode(ids[1] + 1000) {
			t.Error("CrashNode succeeded on an unknown node")
		}
	})
	w.Engine().At(10, func() {
		if w.RecoverNode(ids[1]) {
			t.Error("RecoverNode succeeded on a node that never crashed")
		}
		if !w.RecoverNode(ids[0]) {
			t.Error("RecoverNode failed on a crashed node")
		}
		if w.RecoverNode(ids[0]) {
			t.Error("RecoverNode succeeded twice")
		}
	})
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	if w.Joins() != 0 || w.Leaves() != 0 {
		t.Errorf("crash/recover churned membership: joins=%d leaves=%d", w.Joins(), w.Leaves())
	}
	if w.ActiveNodes() != 2 {
		t.Errorf("active = %d after recovery, want 2", w.ActiveNodes())
	}
	c := w.Collector()
	if c.FaultCrashes != 1 || c.FaultRecoveries != 1 {
		t.Errorf("fault counters = %d crashes / %d recoveries, want 1/1",
			c.FaultCrashes, c.FaultRecoveries)
	}
}

// TestRecoveredNodeHasFreshMonitor checks the recovery contract on the
// reliability plane: a node rejoining after a crash starts from an empty
// link monitor and re-learns its neighborhood from scratch — its first
// post-recovery entry carries a fresh beacon count, not the pre-crash
// evidence.
func TestRecoveredNodeHasFreshMonitor(t *testing.T) {
	model := mobility.NewPlayback(parallelTracks(2, 30))
	w := NewWorld(Config{Seed: 22}, model)
	ids := w.AddVehicleNodes(newChurnRouter)
	n := w.nodeByID(ids[0])
	var preBeacons int
	w.Engine().At(8, func() {
		e, ok := n.mon.Get(ids[1])
		if !ok || e.Beacons < 3 {
			t.Errorf("pre-crash monitor entry missing or thin: %+v (ok=%v)", e, ok)
		}
		preBeacons = e.Beacons
		w.CrashNode(ids[0])
	})
	w.Engine().At(12, func() {
		w.RecoverNode(ids[0])
		if n.mon.Len() != 0 {
			t.Errorf("monitor has %d entries immediately after recovery, want 0", n.mon.Len())
		}
	})
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	e, ok := n.mon.Get(ids[1])
	if !ok {
		t.Fatal("recovered node never re-learned its neighbor")
	}
	if e.Beacons < 1 || e.Beacons >= preBeacons {
		t.Errorf("post-recovery beacon count = %d, want fresh (1..%d)", e.Beacons, preBeacons-1)
	}
}

// TestCrashedNodeAgesOutOfLocationService checks the directory semantics:
// a crashed node's entry survives only until the next location refresh
// (the directory is allowed to be staleness-bounded), then disappears,
// and reappears after recovery.
func TestCrashedNodeAgesOutOfLocationService(t *testing.T) {
	model := mobility.NewPlayback(parallelTracks(2, 30))
	w := NewWorld(Config{Seed: 23}, model)
	ids := w.AddVehicleNodes(newChurnRouter)
	// crash between two refresh ticks (they fire on whole seconds)
	w.Engine().At(5.3, func() { w.CrashNode(ids[0]) })
	w.Engine().At(5.6, func() {
		if _, _, ok := w.lookupPosition(ids[0]); !ok {
			t.Error("location entry vanished before the next refresh — staleness contract broken")
		}
	})
	w.Engine().At(6.5, func() {
		if _, _, ok := w.lookupPosition(ids[0]); ok {
			t.Error("location service still answers for a crashed node after a refresh")
		}
	})
	w.Engine().At(10, func() { w.RecoverNode(ids[0]) })
	w.Engine().At(11.5, func() {
		if _, _, ok := w.lookupPosition(ids[0]); !ok {
			t.Error("location service does not answer for a recovered node")
		}
	})
	if err := w.Run(12); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverAfterDepartureLeavesInstead: in an open world, a vehicle
// whose trace ended while its node was crashed must not be resurrected —
// RecoverNode settles it as the departure the sweep could not see (the
// sweep only scans active nodes), exactly one churn leave, no recovery.
func TestRecoverAfterDepartureLeavesInstead(t *testing.T) {
	// track 0's window is [0, 20]
	model := mobility.NewPlayback(staggeredTracks(1))
	w := NewWorld(Config{Seed: 24}, model)
	w.SetJoinFactory(newChurnRouter)
	ids := w.AddVehicleNodes(newChurnRouter)
	w.Engine().At(15, func() { w.CrashNode(ids[0]) })
	w.Engine().At(24, func() {
		if w.RecoverNode(ids[0]) {
			t.Error("RecoverNode resurrected a departed vehicle")
		}
	})
	if err := w.Run(25); err != nil {
		t.Fatal(err)
	}
	if w.Leaves() != 1 {
		t.Errorf("leaves = %d, want exactly 1 (the settled departure)", w.Leaves())
	}
	if w.ActiveNodes() != 0 {
		t.Errorf("%d nodes active after the only vehicle departed", w.ActiveNodes())
	}
	c := w.Collector()
	if c.FaultCrashes != 1 || c.FaultRecoveries != 0 {
		t.Errorf("fault counters = %d crashes / %d recoveries, want 1/0",
			c.FaultCrashes, c.FaultRecoveries)
	}
}
