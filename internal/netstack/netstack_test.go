package netstack

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// lineTracks builds n constant-velocity tracks spaced gap meters apart on
// the x axis, all moving east at speed.
func lineTracks(n int, gap, speed float64) []mobility.Track {
	tracks := make([]mobility.Track, n)
	for i := range tracks {
		x0 := float64(i) * gap
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(x0, 0), Speed: speed},
				{T: 1000, Pos: geom.V(x0+speed*1000, 0), Speed: speed},
			},
		}
	}
	return tracks
}

// echoRouter delivers data addressed to it and records calls.
type echoRouter struct {
	Base
	got      []*Packet
	beacons  []Neighbor
	expired  []NodeID
	failures []NodeID
}

func (e *echoRouter) Name() string { return "echo" }

func (e *echoRouter) HandlePacket(pkt *Packet) {
	e.got = append(e.got, pkt)
	if pkt.Dst == e.API.Self() {
		e.API.Deliver(pkt)
	}
}

func (e *echoRouter) Originate(dst NodeID, size int) {
	pkt := &Packet{
		UID: e.API.NewUID(), Kind: KindData, Data: true, Proto: "echo",
		Src: e.API.Self(), Dst: dst, TTL: 8, Size: size, Created: e.API.Now(),
	}
	e.API.Send(dst, pkt)
}

func (e *echoRouter) OnBeacon(nb Neighbor)              { e.beacons = append(e.beacons, nb) }
func (e *echoRouter) OnNeighborExpired(id NodeID)       { e.expired = append(e.expired, id) }
func (e *echoRouter) OnSendFailed(p *Packet, to NodeID) { e.failures = append(e.failures, to) }

func newTestWorld(t *testing.T, n int, gap float64) (*World, []*echoRouter, []NodeID) {
	t.Helper()
	model := mobility.NewPlayback(lineTracks(n, gap, 0))
	w := NewWorld(Config{Seed: 1}, model)
	var routers []*echoRouter
	ids := w.AddVehicleNodes(func() Router {
		r := &echoRouter{}
		routers = append(routers, r)
		return r
	})
	return w, routers, ids
}

func TestBeaconingPopulatesNeighborTables(t *testing.T) {
	w, routers, ids := newTestWorld(t, 3, 100)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	// node 1 must see both 0 and 2
	api := routers[1].API
	if got := len(api.Neighbors()); got != 2 {
		t.Fatalf("node 1 neighbors = %d, want 2", got)
	}
	nb, ok := api.Neighbor(ids[0])
	if !ok {
		t.Fatal("node 0 missing from table")
	}
	if nb.Kind != Vehicle {
		t.Fatalf("neighbor kind = %v", nb.Kind)
	}
	if nb.Beacons == 0 || nb.RSSI == 0 {
		t.Fatalf("beacon bookkeeping empty: %+v", nb)
	}
	if len(routers[1].beacons) == 0 {
		t.Fatal("OnBeacon never fired")
	}
}

func TestNeighborExpiry(t *testing.T) {
	// two nodes move apart: after separation the neighbor entry must
	// expire and the router hook fire
	a := mobility.Track{ID: 0, Waypoints: []mobility.Waypoint{
		{T: 0, Pos: geom.V(0, 0), Speed: 0},
		{T: 1000, Pos: geom.V(0, 0), Speed: 0},
	}}
	b := mobility.Track{ID: 1, Waypoints: []mobility.Waypoint{
		{T: 0, Pos: geom.V(100, 0), Speed: 40},
		{T: 1000, Pos: geom.V(100+40*1000, 0), Speed: 40},
	}}
	model := mobility.NewPlayback([]mobility.Track{a, b})
	w := NewWorld(Config{Seed: 1}, model)
	var routers []*echoRouter
	w.AddVehicleNodes(func() Router {
		r := &echoRouter{}
		routers = append(routers, r)
		return r
	})
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	if len(routers[0].expired) == 0 {
		t.Fatal("neighbor expiry never fired for the departing node")
	}
	if routers[0].API.HasNeighbor(1) {
		t.Fatal("departed node still in the table")
	}
}

func TestFlowDeliveryAndMetrics(t *testing.T) {
	w, _, ids := newTestWorld(t, 2, 100)
	w.AddFlow(ids[0], ids[1], 1, 0.5, 5, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataSent != 5 {
		t.Fatalf("sent = %d", c.DataSent)
	}
	if c.DataDelivered != 5 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	if c.MeanDelay() <= 0 || c.MeanDelay() > 0.1 {
		t.Fatalf("mean delay = %v", c.MeanDelay())
	}
}

func TestUnicastFilteredAtDispatch(t *testing.T) {
	w, routers, ids := newTestWorld(t, 3, 50) // all in range of each other
	w.AddFlow(ids[0], ids[1], 1, 1, 1, 256)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	// node 2 must not see the unicast data frame
	for _, pkt := range routers[2].got {
		if pkt.Kind == KindData {
			t.Fatal("third party received a unicast data frame")
		}
	}
	if len(routers[1].got) == 0 {
		t.Fatal("addressee got nothing")
	}
}

func TestDispatchClonesPerReceiver(t *testing.T) {
	w, routers, ids := newTestWorld(t, 3, 50)
	// a broadcast data packet: every receiver mutates its own clone
	w.Engine().At(1, func() {
		n := w.nodeByID(ids[0])
		pkt := &Packet{
			UID: 99, Kind: KindData, Data: true, Proto: "echo",
			Src: ids[0], Dst: Broadcast, TTL: 8, Size: 64, Created: w.eng.Now(),
		}
		w.sendFrame(n, Broadcast, pkt)
	})
	if err := w.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(routers[1].got) == 0 || len(routers[2].got) == 0 {
		t.Fatal("broadcast not delivered to both")
	}
	p1 := routers[1].got[0]
	p2 := routers[2].got[0]
	if p1 == p2 {
		t.Fatal("receivers share one packet instance")
	}
	p1.TTL = 1
	if p2.TTL == 1 {
		t.Fatal("mutating one receiver's packet affected the other")
	}
	if p1.Hops != 1 {
		t.Fatalf("hops = %d, want incremented on dispatch", p1.Hops)
	}
}

func TestSetNodeActive(t *testing.T) {
	w, _, ids := newTestWorld(t, 2, 100)
	w.SetNodeActive(ids[1], false)
	w.AddFlow(ids[0], ids[1], 1, 0.5, 3, 256)
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got != 0 {
		t.Fatalf("disabled node received %d packets", got)
	}
	// reactivate: traffic flows again
	w.SetNodeActive(ids[1], true)
	w.AddFlow(ids[0], ids[1], 4.5, 0.5, 3, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got == 0 {
		t.Fatal("reactivated node never received")
	}
}

func TestStaticNodeAndKinds(t *testing.T) {
	model := mobility.NewPlayback(lineTracks(1, 0, 0))
	w := NewWorld(Config{Seed: 1}, model)
	var r echoRouter
	w.AddVehicleNodes(func() Router { return &echoRouter{} })
	id := w.AddStaticNode(RSU, geom.V(50, 0), &r)
	if kind, _ := w.KindOf(id); kind != RSU {
		t.Fatalf("kind = %v", kind)
	}
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	// the vehicle's beacon reached the RSU and vice versa
	if !r.API.HasNeighbor(0) {
		t.Fatal("RSU has no vehicle neighbor")
	}
	if got := len(w.NodeIDs(RSU)); got != 1 {
		t.Fatalf("RSU count = %d", got)
	}
	pos, ok := w.PositionOf(id)
	if !ok || pos != geom.V(50, 0) {
		t.Fatalf("static position = %v", pos)
	}
}

func TestSendFailedPropagates(t *testing.T) {
	w, routers, ids := newTestWorld(t, 2, 100)
	// node 0 unicasts to a node that is far outside radio range
	far := w.AddStaticNode(Vehicle, geom.V(1e6, 0), &echoRouter{})
	w.Engine().At(1, func() {
		n := w.nodeByID(ids[0])
		pkt := &Packet{
			UID: 5, Kind: KindData, Data: true, Proto: "echo",
			Src: ids[0], Dst: far, TTL: 8, Size: 64, Created: 1,
		}
		w.sendFrame(n, far, pkt)
	})
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(routers[0].failures) != 1 || routers[0].failures[0] != far {
		t.Fatalf("failures = %v", routers[0].failures)
	}
}

func TestLookupPositionStaleness(t *testing.T) {
	model := mobility.NewPlayback(lineTracks(2, 100, 30))
	w := NewWorld(Config{Seed: 1, LocationStaleness: 2}, model)
	var routers []*echoRouter
	ids := w.AddVehicleNodes(func() Router {
		r := &echoRouter{}
		routers = append(routers, r)
		return r
	})
	if err := w.Run(2.9); err != nil {
		t.Fatal(err)
	}
	pos, _, ok := routers[0].API.LookupPosition(ids[1])
	if !ok {
		t.Fatal("lookup failed")
	}
	truth, _ := w.PositionOf(ids[1])
	// with 2 s staleness and 30 m/s the oracle may lag up to 60 m but not
	// more than ~90
	lag := truth.Dist(pos)
	if lag > 90 {
		t.Fatalf("oracle lag = %v m", lag)
	}
}

func TestPacketCloneAndExpired(t *testing.T) {
	p := &Packet{UID: 1, TTL: 1, Payload: "shared"}
	c := p.Clone()
	if c == p || c.UID != 1 {
		t.Fatal("clone wrong")
	}
	c.TTL = 0
	if p.TTL != 1 {
		t.Fatal("clone shares header")
	}
	if !c.Expired() || p.Expired() {
		t.Fatal("Expired wrong")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

func TestNodeKindString(t *testing.T) {
	for kind, want := range map[NodeKind]string{
		Vehicle: "vehicle", RSU: "rsu", BusNode: "bus", NodeKind(0): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
}
