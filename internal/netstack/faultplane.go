package netstack

import "math/rand"

// This file is the world-side half of the fault plane: crash/recover
// semantics layered on the existing SetNodeActive machinery, plus the
// hook setters the internal/faults engine wires its schedule through.
// Every hook is nil until a fault schedule installs it, so fault-free
// runs cost one nil check per call site and draw no extra randomness —
// the existing goldens stay byte-identical.

// CrashNode fails a node: it goes radio-dark (SetNodeActive false — out
// of the spatial index, neither transmitting nor receiving), its queued
// MAC frames are discarded without failure upcalls (a dead radio reports
// nothing), and it ages out of the location service at the next refresh.
// Unlike a departure, a crash does not count as a churn leave: the node
// is still a member of the world, just down. It reports whether the node
// actually crashed (false if unknown, already down, or departed).
func (w *World) CrashNode(id NodeID) bool {
	n := w.nodeByID(id)
	if n == nil || !n.active || n.left {
		return false
	}
	w.SetNodeActive(id, false)
	w.mac.Flush(int32(id))
	w.col.FaultCrashes++
	return true
}

// RecoverNode brings a crashed node back: it re-enters the spatial index
// at its current mobility position with a fresh linkstate Monitor — no
// stale neighbors, no stale feedback evidence; everything must be
// re-learned from beacons. Its beacon ticker (armed once at startup or
// join) resumes naturally, since sendBeacon only gates on active. A
// recovery is not a churn join. If the node's vehicle departed the
// mobility model while it was down (open worlds), the node leaves
// instead of recovering — exactly as if the departure sweep had caught
// it — and RecoverNode reports false.
func (w *World) RecoverNode(id NodeID) bool {
	n := w.nodeByID(id)
	if n == nil || n.active || n.left {
		return false
	}
	if w.joinFactory != nil && n.vehID >= 0 && n.seenStep != w.stepSeq {
		// crashed vehicle whose trace/lifetime ended while it was down:
		// the departure sweep only scans actives, so settle it here
		w.leaveNode(n)
		return false
	}
	n.mon.Reset()
	w.SetNodeActive(id, true)
	w.col.FaultRecoveries++
	return true
}

// SetLinkFault installs a per-link loss hook on the MAC transmit path:
// fn(from, to) returns an extra loss probability the fault plane imposes
// on that link right now (0 clean, ≥1 severed with no RNG draw, in
// between one extra uniform after the channel draw). fn must be
// allocation-free; it runs once per candidate receiver per frame.
func (w *World) SetLinkFault(fn func(from, to int32) float64) {
	w.mac.SetLinkFault(fn)
}

// SetBeaconFilter installs a beacon-suppression hook: when fn returns
// true the HELLO is silently dropped before it reaches the MAC. Any
// randomness must come from the supplied rng — the beaconing node's own
// stream — so suppression perturbs no other component.
func (w *World) SetBeaconFilter(fn func(id NodeID, rng *rand.Rand) bool) {
	w.beaconFilter = fn
}

// SetFaultWindow installs the predicate classifying simulation times as
// inside a fault window. The world consults it where traffic enters the
// stack (originations, control transmissions) so the collector can split
// accounting into inside/outside-window halves.
func (w *World) SetFaultWindow(fn func(now float64) bool) {
	w.faultWindow = fn
}

// SetDeliveryHook installs a callback invoked on every first-time data
// delivery with the packet's origination time (the fault plane derives
// fault-window PDR and time-to-reroute from it).
func (w *World) SetDeliveryHook(fn func(created float64)) {
	w.onFirstDelivery = fn
}

// SetBeaconHeardHook installs a callback invoked whenever any node's
// beacon is received, with the beaconing node's ID (the fault plane
// closes recovery-latency clocks on it).
func (w *World) SetBeaconHeardHook(fn func(id NodeID)) {
	w.faultBeaconHeard = fn
}
