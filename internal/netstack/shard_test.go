package netstack

import (
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
)

// quietRouter is a router with no beacon substrate: worlds running it do
// nothing per tick beyond kinematics, which is what makes the "a quiet
// world sweeps nothing" regression observable.
type quietRouter struct{ Base }

func newQuietRouter() Router                  { return &quietRouter{} }
func (r *quietRouter) Name() string           { return "quiet-test" }
func (r *quietRouter) NeedsBeacons() bool     { return false }
func (r *quietRouter) HandlePacket(p *Packet) { r.API.Release(p) }
func (r *quietRouter) Originate(NodeID, int)  {}

// longTracks builds n parallel tracks alive for the whole run.
func longTracks(n int, until float64) []mobility.Track {
	tracks := make([]mobility.Track, n)
	for i := range tracks {
		y := float64(i) * 40
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(0, y), Speed: 10},
				{T: until, Pos: geom.V(10*until, y), Speed: 10},
			},
		}
	}
	return tracks
}

// TestQuietWorldSweepsNothing is the active-slice regression: a 1,000-node
// world with no traffic and no beacons must spend its ticks on kinematics
// only — every monitor's expiry stays on the oldest-bound fast path
// (FullSweeps == 0) and the kinematic memo is never even consulted. This
// held before the sweeps iterated the active slice and must keep holding.
func TestQuietWorldSweepsNothing(t *testing.T) {
	const n = 1000
	w := NewWorld(Config{Seed: 13}, mobility.NewPlayback(longTracks(n, 30)))
	w.AddVehicleNodes(newQuietRouter)
	if err := w.Run(20); err != nil {
		t.Fatal(err)
	}
	if w.ActiveNodes() != n {
		t.Fatalf("active = %d, want %d", w.ActiveNodes(), n)
	}
	for _, node := range w.nodes {
		if got := node.mon.FullSweeps(); got != 0 {
			t.Fatalf("node %d ran %d full expiry sweeps in a quiet world", node.id, got)
		}
		if hits, misses := node.mon.MemoStats(); hits+misses != 0 {
			t.Fatalf("node %d did %d/%d memoized lifetime solves in a quiet world", node.id, hits, misses)
		}
	}
}

// TestActiveSliceBookkeeping pins the membership index the sweeps iterate:
// it mirrors failure injection and recovery exactly and stays sorted by
// node ID (the merge order of every sharded sweep).
func TestActiveSliceBookkeeping(t *testing.T) {
	w := NewWorld(Config{Seed: 17}, mobility.NewPlayback(longTracks(10, 30)))
	ids := w.AddVehicleNodes(newQuietRouter)
	checkSorted := func() {
		t.Helper()
		for i := 1; i < len(w.actives); i++ {
			if w.actives[i-1].id >= w.actives[i].id {
				t.Fatalf("actives out of order at %d: %d >= %d", i, w.actives[i-1].id, w.actives[i].id)
			}
		}
	}
	checkSorted()
	// fail a scattered subset, including both ends
	for _, i := range []int{0, 3, 4, 9} {
		w.SetNodeActive(ids[i], false)
	}
	if w.ActiveNodes() != 6 {
		t.Fatalf("active after failures = %d, want 6", w.ActiveNodes())
	}
	checkSorted()
	// double-fail and double-recover must be idempotent
	w.SetNodeActive(ids[3], false)
	w.SetNodeActive(ids[3], true)
	w.SetNodeActive(ids[3], true)
	if w.ActiveNodes() != 7 {
		t.Fatalf("active after recovery = %d, want 7", w.ActiveNodes())
	}
	checkSorted()
}

// TestShardedChurnMatchesSequential runs the staggered open-world churn
// scenario — joins, leaves, beacons, flows — at several shard counts and
// requires the entire metrics summary to match the sequential run: the
// membership machinery, expiry sweeps, and departure detection must be
// shard-count-invariant down to every counter.
func TestShardedChurnMatchesSequential(t *testing.T) {
	run := func(shards int) metrics.Summary {
		t.Helper()
		const n = 10
		w := NewWorld(Config{Seed: 7, Shards: shards}, mobility.NewPlayback(staggeredTracks(n)))
		w.SetJoinFactory(newChurnRouter)
		initial := w.AddVehicleNodes(newChurnRouter)
		w.AddFlow(initial[0], initial[0]+1, 5, 2.0, 12, 256)
		w.AddVehicleFlow(3, 6, 1, 1.0, 30, 128)
		if err := w.Run(40.5); err != nil {
			t.Fatal(err)
		}
		return w.Collector().Summarize("churn-test", "staggered")
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d summary diverged from sequential:\ngot  %+v\nwant %+v", shards, got, want)
		}
	}
}
