// Package faults is the deterministic failure-injection plane: a typed,
// seeded fault schedule executed from the simulation event queue. The
// source paper motivates reliable routing with infrastructure failures —
// "disasters like hurricane and earthquake" — and the comparative
// literature (arXiv:1311.1378 on protocol evaluation, arXiv:1704.07519
// on battery-depleted roadside relays) measures protocols by how
// gracefully they degrade; this package makes that degradation a
// first-class, reproducible experiment axis.
//
// A Spec declares typed events (node crashes and recoveries, RSU
// blackouts, geometric jamming zones, beacon-suppression windows, a
// partition along a roadnet cut); Install schedules them on the world's
// engine and wires the world's fault hooks. Everything stays inside the
// determinism contract: every event fires on the single-threaded event
// path, target selection draws from a dedicated stream (scenario seed
// + 13) that fault-free runs never materialize, jamming draws exactly
// one extra uniform per affected candidate receiver (severed links draw
// nothing), and the per-frame dispatch path allocates nothing.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/netstack"
)

// Kind enumerates the fault event types.
type Kind uint8

const (
	// NodeCrash takes the listed nodes radio-dark at At; Until > At
	// schedules the matching recovery (each node rejoins with a fresh
	// linkstate monitor), Until == 0 means they stay down.
	NodeCrash Kind = iota + 1
	// NodeRecover explicitly recovers the listed nodes at At (for
	// schedules that crash and recover in separate events).
	NodeRecover
	// RSUBlackout crashes every RSU in the world at At — the paper's
	// disaster scenario. Until > At restores them.
	RSUBlackout
	// JamZone adds Loss to every link with an endpoint inside Region
	// during [At, Until) — localized interference.
	JamZone
	// BeaconSuppression drops each HELLO with probability Prob during
	// [At, Until) — a degraded control channel.
	BeaconSuppression
	// Partition severs every link crossing the vertical roadnet cut
	// x = CutX during [At, Until) — a hard geographic split.
	Partition
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "NodeCrash"
	case NodeRecover:
		return "NodeRecover"
	case RSUBlackout:
		return "RSUBlackout"
	case JamZone:
		return "JamZone"
	case BeaconSuppression:
		return "BeaconSuppression"
	case Partition:
		return "Partition"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one typed fault in a schedule. At is when it takes effect;
// Until is the recovery/expiry time (see each Kind for its zero-value
// meaning — windowed kinds treat Until <= At as "until the end of the
// run"). Only the fields a kind reads need to be set.
type Event struct {
	Kind  Kind
	At    float64
	Until float64

	Nodes  []netstack.NodeID // NodeCrash / NodeRecover targets
	Region geom.Rect         // JamZone
	Loss   float64           // JamZone: added loss probability in (0,1]
	Prob   float64           // BeaconSuppression: drop probability
	CutX   float64           // Partition: vertical cut coordinate
}

// Spec is a complete fault schedule for one run.
type Spec struct {
	Events []Event
}

// interval is one merged fault window [From, To).
type interval struct {
	From, To float64
}

// zoneState is a JamZone's runtime state; active is flipped by the
// scheduled window-edge events, never read off the event path.
type zoneState struct {
	region geom.Rect
	loss   float64
	active bool
}

// cutState is a Partition's runtime state.
type cutState struct {
	x      float64
	active bool
}

// suppState is a BeaconSuppression window; it is evaluated against the
// clock directly (no state flips) because the beacon filter already
// receives now via the world.
type suppState struct {
	from, to float64
	prob     float64
}

// Engine executes one installed Spec against one world. All state is
// confined to the single-threaded event path.
type Engine struct {
	world *netstack.World
	col   *metrics.Collector

	zones []zoneState
	cuts  []cutState
	supps []suppState
	// activeGeo counts currently active zones+cuts so the per-frame link
	// hook exits on one integer compare when no geometry fault is live.
	activeGeo int

	// windows are the merged fault intervals the degradation metrics
	// classify against.
	windows []interval

	// pendingReroute holds crash timestamps whose "next delivery" has
	// not happened yet; the first delivery after a crash closes all of
	// them (time-to-reroute).
	pendingReroute []float64
	// awaitBeacon maps a recovered node to its recovery time until some
	// neighbor hears it beacon again (recovery latency).
	awaitBeacon map[netstack.NodeID]float64
}

// Install schedules spec's events on w's engine and wires the world's
// fault hooks. Call after the world is fully populated (topology and
// flows installed) and before Run; events scheduled here fire before
// same-timestamp events scheduled during the run, so a crash at t takes
// effect before that tick's traffic. duration bounds open windows and
// the control-rate accounting.
func Install(w *netstack.World, spec Spec, duration float64) (*Engine, error) {
	e := &Engine{world: w, col: w.Collector()}
	eng := w.Engine()
	for i, ev := range spec.Events {
		ev := ev
		switch ev.Kind {
		case NodeCrash:
			e.addWindow(ev.At, ev.Until, duration)
			nodes := ev.Nodes
			eng.At(ev.At, func() { e.crash(nodes) })
			if ev.Until > ev.At {
				eng.At(ev.Until, func() { e.recover(nodes) })
			}
		case NodeRecover:
			nodes := ev.Nodes
			eng.At(ev.At, func() { e.recover(nodes) })
		case RSUBlackout:
			e.addWindow(ev.At, ev.Until, duration)
			// resolve targets now: the RSU population is static
			nodes := w.NodeIDs(netstack.RSU)
			eng.At(ev.At, func() { e.crash(nodes) })
			if ev.Until > ev.At {
				eng.At(ev.Until, func() { e.recover(nodes) })
			}
		case JamZone:
			if ev.Loss <= 0 {
				return nil, fmt.Errorf("faults: event %d: JamZone needs Loss > 0", i)
			}
			from, to := e.addWindow(ev.At, ev.Until, duration)
			zi := len(e.zones)
			e.zones = append(e.zones, zoneState{region: ev.Region, loss: ev.Loss})
			eng.At(from, func() { e.zones[zi].active = true; e.activeGeo++ })
			eng.At(to, func() { e.zones[zi].active = false; e.activeGeo-- })
		case BeaconSuppression:
			if ev.Prob <= 0 || ev.Prob > 1 {
				return nil, fmt.Errorf("faults: event %d: BeaconSuppression needs Prob in (0,1]", i)
			}
			from, to := e.addWindow(ev.At, ev.Until, duration)
			e.supps = append(e.supps, suppState{from: from, to: to, prob: ev.Prob})
		case Partition:
			from, to := e.addWindow(ev.At, ev.Until, duration)
			ci := len(e.cuts)
			e.cuts = append(e.cuts, cutState{x: ev.CutX})
			eng.At(from, func() { e.cuts[ci].active = true; e.activeGeo++ })
			eng.At(to, func() { e.cuts[ci].active = false; e.activeGeo-- })
		default:
			return nil, fmt.Errorf("faults: event %d: unknown kind %v", i, ev.Kind)
		}
	}
	e.mergeWindows()
	e.col.RunTime = duration
	for _, iv := range e.windows {
		to := iv.To
		if to > duration {
			to = duration
		}
		if to > iv.From {
			e.col.FaultTime += to - iv.From
		}
	}
	// Wire only the hooks this schedule needs: fault-free call sites
	// stay nil-check cheap and, more importantly, absent hooks cannot
	// perturb RNG streams or allocation behaviour.
	if len(e.zones) > 0 || len(e.cuts) > 0 {
		w.SetLinkFault(e.linkLoss)
	}
	if len(e.supps) > 0 {
		w.SetBeaconFilter(e.beaconFilter)
	}
	e.awaitBeacon = make(map[netstack.NodeID]float64)
	w.SetBeaconHeardHook(e.beaconHeard)
	w.SetDeliveryHook(e.onDelivery)
	w.SetFaultWindow(e.InWindow)
	return e, nil
}

// addWindow normalizes an event's [At, Until) to a concrete interval —
// Until <= At means "until the end of the run" — records it for the
// degradation metrics, and returns it.
func (e *Engine) addWindow(at, until, duration float64) (from, to float64) {
	if until <= at {
		until = duration
	}
	e.windows = append(e.windows, interval{From: at, To: until})
	return at, until
}

// mergeWindows sorts and coalesces overlapping fault intervals so
// InWindow is a short linear scan and FaultTime never double-counts.
func (e *Engine) mergeWindows() {
	if len(e.windows) == 0 {
		return
	}
	sort.Slice(e.windows, func(i, j int) bool { return e.windows[i].From < e.windows[j].From })
	merged := e.windows[:1]
	for _, iv := range e.windows[1:] {
		last := &merged[len(merged)-1]
		if iv.From <= last.To {
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		merged = append(merged, iv)
	}
	e.windows = merged
}

// InWindow reports whether t falls inside any fault window. The merged
// interval list is tiny (profiles declare a handful of events), so a
// linear scan beats anything fancier and allocates nothing.
func (e *Engine) InWindow(t float64) bool {
	for _, iv := range e.windows {
		if t >= iv.From && t < iv.To {
			return true
		}
	}
	return false
}

// Windows returns the merged fault intervals (tests and instrumentation).
func (e *Engine) Windows() [][2]float64 {
	out := make([][2]float64, len(e.windows))
	for i, iv := range e.windows {
		out[i] = [2]float64{iv.From, iv.To}
	}
	return out
}

// crash takes the listed nodes down, opening one time-to-reroute clock
// if any of them actually crashed.
func (e *Engine) crash(nodes []netstack.NodeID) {
	any := false
	for _, id := range nodes {
		if e.world.CrashNode(id) {
			any = true
		}
	}
	if any {
		e.pendingReroute = append(e.pendingReroute, e.world.Engine().Now())
	}
}

// recover brings the listed nodes back, opening a recovery-latency clock
// per node that actually rejoined.
func (e *Engine) recover(nodes []netstack.NodeID) {
	now := e.world.Engine().Now()
	for _, id := range nodes {
		if e.world.RecoverNode(id) {
			e.awaitBeacon[id] = now
		}
	}
}

// linkLoss is the MAC's per-candidate fault hook: the extra loss on the
// (from, to) link right now. Partition cuts sever (probability 1, no
// RNG draw); jam zones return their configured loss when either endpoint
// is inside the region. Zero-allocation; one integer compare when no
// geometry fault is active.
func (e *Engine) linkLoss(from, to int32) float64 {
	if e.activeGeo == 0 {
		return 0
	}
	pf, okF := e.world.PositionOf(netstack.NodeID(from))
	pt, okT := e.world.PositionOf(netstack.NodeID(to))
	if !okF || !okT {
		return 0
	}
	for i := range e.cuts {
		c := &e.cuts[i]
		if c.active && (pf.X-c.x)*(pt.X-c.x) < 0 {
			return 1
		}
	}
	loss := 0.0
	for i := range e.zones {
		z := &e.zones[i]
		if z.active && z.loss > loss && (z.region.Contains(pf) || z.region.Contains(pt)) {
			loss = z.loss
		}
	}
	return loss
}

// beaconFilter drops a HELLO with the suppression probability of the
// window covering now, drawing one uniform from the beaconing node's own
// stream — only inside a window, so runs outside windows draw nothing.
func (e *Engine) beaconFilter(_ netstack.NodeID, rng *rand.Rand) bool {
	now := e.world.Engine().Now()
	for _, s := range e.supps {
		if now >= s.from && now < s.to {
			return rng.Float64() < s.prob
		}
	}
	return false
}

// onDelivery classifies a first-time delivery against the fault windows
// (fault-window PDR counts by origination time) and closes any open
// time-to-reroute clocks: the first delivery after a crash is the
// evidence the surviving topology carries traffic again.
func (e *Engine) onDelivery(created float64) {
	if e.InWindow(created) {
		e.col.DataDeliveredFault++
	}
	if len(e.pendingReroute) > 0 {
		now := e.world.Engine().Now()
		for _, t := range e.pendingReroute {
			e.col.OnReroute(now - t)
		}
		e.pendingReroute = e.pendingReroute[:0]
	}
}

// beaconHeard closes the recovery-latency clock of a recovered node the
// first time any neighbor hears it beacon again.
func (e *Engine) beaconHeard(id netstack.NodeID) {
	t0, ok := e.awaitBeacon[id]
	if !ok {
		return
	}
	delete(e.awaitBeacon, id)
	e.col.OnRecoveryLatency(e.world.Engine().Now() - t0)
}
