package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
)

// Context is what a chaos profile sees when materializing its Spec for a
// concrete run: the fault seed (scenario seed + 13, a stream fault-free
// runs never materialize), the run duration, the roadnet bounds, and the
// node populations in creation order. Rand derives from Seed and is the
// only randomness a profile may use — two runs with the same scenario
// produce byte-identical schedules.
type Context struct {
	Seed     int64
	Duration float64
	Bounds   geom.Rect
	Vehicles []netstack.NodeID
	RSUs     []netstack.NodeID
	Rand     *rand.Rand
}

// Profile is a named, parameter-free chaos schedule generator.
type Profile struct {
	Name        string
	Description string
	Build       func(Context) Spec
}

var profiles = map[string]Profile{}

// Register adds a profile to the registry. Registering a duplicate name
// panics: profiles are wired at init time and a collision is a
// programmer error.
func Register(p Profile) {
	if p.Name == "" || p.Build == nil {
		panic("faults: Register needs a name and a build function")
	}
	if _, dup := profiles[p.Name]; dup {
		panic("faults: duplicate profile " + p.Name)
	}
	profiles[p.Name] = p
}

// Named returns the registered profile.
func Named(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Known reports whether name is a registered profile.
func Known(name string) bool {
	_, ok := profiles[name]
	return ok
}

// Names returns the registered profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Descriptions returns name → description for every registered profile.
func Descriptions() map[string]string {
	out := make(map[string]string, len(profiles))
	for name, p := range profiles {
		out[name] = p.Description
	}
	return out
}

// InstallNamed materializes the named profile against ctx and installs
// the resulting schedule on w. ctx.Rand is derived from ctx.Seed when
// the caller did not supply one.
func InstallNamed(name string, w *netstack.World, ctx Context) (*Engine, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown profile %q (have %v)", name, Names())
	}
	if ctx.Rand == nil {
		ctx.Rand = rand.New(rand.NewSource(ctx.Seed))
	}
	return Install(w, p.Build(ctx), ctx.Duration)
}

// pick returns k node IDs drawn without replacement from ids, in draw
// order, using the context's fault stream.
func pick(rng *rand.Rand, ids []netstack.NodeID, k int) []netstack.NodeID {
	if k > len(ids) {
		k = len(ids)
	}
	out := make([]netstack.NodeID, 0, k)
	for _, i := range rng.Perm(len(ids))[:k] {
		out = append(out, ids[i])
	}
	return out
}

func init() {
	Register(Profile{
		Name:        "rsu-blackout",
		Description: "every RSU fails at half-time and stays down — the paper's disaster scenario",
		Build: func(ctx Context) Spec {
			return Spec{Events: []Event{
				{Kind: RSUBlackout, At: 0.5 * ctx.Duration},
			}}
		},
	})
	Register(Profile{
		Name:        "rolling-crashes",
		Description: "an eighth of the vehicles crash one after another, each down for a fifth of the run",
		Build: func(ctx Context) Spec {
			k := len(ctx.Vehicles) / 8
			if k < 1 {
				k = 1
			}
			victims := pick(ctx.Rand, ctx.Vehicles, k)
			var evs []Event
			for i, id := range victims {
				at := (0.2 + 0.5*float64(i)/float64(len(victims))) * ctx.Duration
				evs = append(evs, Event{
					Kind: NodeCrash, At: at, Until: at + 0.2*ctx.Duration,
					Nodes: []netstack.NodeID{id},
				})
			}
			return Spec{Events: evs}
		},
	})
	Register(Profile{
		Name:        "jammed-corridor",
		Description: "the middle third of the map is jammed (75% added loss) for the middle half of the run",
		Build: func(ctx Context) Spec {
			b := ctx.Bounds
			region := geom.NewRect(
				geom.Vec2{X: b.Min.X + b.Width()/3, Y: b.Min.Y - 50},
				geom.Vec2{X: b.Max.X - b.Width()/3, Y: b.Max.Y + 50},
			)
			return Spec{Events: []Event{
				{Kind: JamZone, At: 0.25 * ctx.Duration, Until: 0.75 * ctx.Duration,
					Region: region, Loss: 0.75},
			}}
		},
	})
	Register(Profile{
		Name:        "energy-depletion",
		Description: "battery-powered relays (RSUs, else a sixth of the vehicles) deplete one by one and stay dark (arXiv:1704.07519)",
		Build: func(ctx Context) Spec {
			targets := ctx.RSUs
			if len(targets) == 0 {
				k := len(ctx.Vehicles) / 6
				if k < 1 {
					k = 1
				}
				targets = pick(ctx.Rand, ctx.Vehicles, k)
			}
			var evs []Event
			for i, id := range targets {
				at := (0.25 + 0.6*float64(i)/float64(len(targets))) * ctx.Duration
				evs = append(evs, Event{
					Kind: NodeCrash, At: at,
					Nodes: []netstack.NodeID{id},
				})
			}
			return Spec{Events: evs}
		},
	})
	Register(Profile{
		Name:        "partition",
		Description: "a vertical cut through the map center severs every crossing link for [0.4, 0.75] of the run",
		Build: func(ctx Context) Spec {
			return Spec{Events: []Event{
				{Kind: Partition, At: 0.4 * ctx.Duration, Until: 0.75 * ctx.Duration,
					CutX: ctx.Bounds.Center().X},
			}}
		},
	})
	Register(Profile{
		Name:        "lossy-beacons",
		Description: "half of all HELLO beacons are suppressed for [0.3, 0.7] of the run — a degraded control channel",
		Build: func(ctx Context) Spec {
			return Spec{Events: []Event{
				{Kind: BeaconSuppression, At: 0.3 * ctx.Duration, Until: 0.7 * ctx.Duration,
					Prob: 0.5},
			}}
		},
	})
}
