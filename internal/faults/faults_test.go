// Package faults_test exercises the fault engine from outside: directly
// against hand-built worlds (event semantics, RNG draw order) and through
// the scenario layer (profile wiring, shard invariance). It is an external
// test package because the scenario package imports faults.
package faults_test

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/faults"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/scenario"
)

// floodRouter rebroadcasts each data packet once — enough to deliver over
// one or two hops without any protocol machinery.
type floodRouter struct {
	netstack.Base
	seen map[uint64]bool
}

func (r *floodRouter) Name() string { return "flood-test" }

func (r *floodRouter) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: "flood-test",
		Src: r.API.Self(), Dst: dst, TTL: 4, Size: size, Created: r.API.Now(),
	}
	r.API.Send(netstack.Broadcast, pkt)
}

func (r *floodRouter) HandlePacket(pkt *netstack.Packet) {
	if r.seen[pkt.UID] {
		r.API.Release(pkt)
		return
	}
	r.seen[pkt.UID] = true
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if !pkt.Expired() {
		r.API.Send(netstack.Broadcast, pkt)
	}
}

// staticPair builds a world with two stationary vehicles 100 m apart
// (inside radio range) and returns it with the routers in node order.
func staticPair(seed int64, dur float64) (*netstack.World, []netstack.NodeID, []*floodRouter) {
	tracks := []mobility.Track{
		{ID: 0, Waypoints: []mobility.Waypoint{
			{T: 0, Pos: geom.V(100, 0)}, {T: dur, Pos: geom.V(100, 0)}}},
		{ID: 1, Waypoints: []mobility.Waypoint{
			{T: 0, Pos: geom.V(200, 0)}, {T: dur, Pos: geom.V(200, 0)}}},
	}
	w := netstack.NewWorld(netstack.Config{Seed: seed}, mobility.NewPlayback(tracks))
	var routers []*floodRouter
	ids := w.AddVehicleNodes(func() netstack.Router {
		r := &floodRouter{seen: make(map[uint64]bool)}
		routers = append(routers, r)
		return r
	})
	return w, ids, routers
}

// TestPartitionSeversCrossingLinks pins the hard-cut semantics: a link
// whose endpoints straddle the cut delivers nothing during the window —
// with no RNG draw, so a severed frame cannot perturb any random stream —
// and works again the instant the window closes.
func TestPartitionSeversCrossingLinks(t *testing.T) {
	w, ids, routers := staticPair(31, 10)
	eng, err := faults.Install(w, faults.Spec{Events: []faults.Event{
		{Kind: faults.Partition, At: 2, Until: 6, CutX: 150},
	}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	w.Engine().At(3, func() { routers[0].Originate(ids[1], 256) })
	w.Engine().At(5.9, func() {
		if got := w.Collector().DataDelivered; got != 0 {
			t.Errorf("delivered %d packets across an active partition", got)
		}
	})
	w.Engine().At(8, func() { routers[0].Originate(ids[1], 256) })
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got != 1 {
		t.Errorf("delivered = %d, want 1 (only the post-window packet)", got)
	}
	if eng.InWindow(1.99) || !eng.InWindow(2) || !eng.InWindow(5.99) || eng.InWindow(6) {
		t.Error("InWindow does not match the [2, 6) partition window")
	}
}

// jamDelivered runs the static pair under a JamZone covering the receiver
// and returns how many of the n packets sent inside the window got through.
func jamDelivered(t *testing.T, seed int64, loss float64, n int) int {
	t.Helper()
	w, ids, routers := staticPair(seed, 20)
	_, err := faults.Install(w, faults.Spec{Events: []faults.Event{
		{Kind: faults.JamZone, At: 2, Until: 18, Loss: loss,
			Region: geom.NewRect(geom.V(150, -50), geom.V(250, 50))},
	}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		at := 3 + float64(i)
		w.Engine().At(at, func() { routers[0].Originate(ids[1], 128) })
	}
	if err := w.Run(20); err != nil {
		t.Fatal(err)
	}
	return w.Collector().DataDelivered
}

// TestJamZoneLossIsSeededAndEffective pins the jam semantics: total loss
// (p >= 1) drops everything without drawing randomness, partial loss kills
// a seed-determined strict subset, and the same seed reproduces the exact
// count — the draw order (one uniform per candidate, after the channel
// draw) is part of the determinism contract.
func TestJamZoneLossIsSeededAndEffective(t *testing.T) {
	const n = 12
	if got := jamDelivered(t, 41, 1.0, n); got != 0 {
		t.Errorf("total jam delivered %d packets, want 0", got)
	}
	got := jamDelivered(t, 41, 0.5, n)
	if got == 0 || got == n {
		t.Errorf("half jam delivered %d/%d, want a strict subset", got, n)
	}
	if again := jamDelivered(t, 41, 0.5, n); again != got {
		t.Errorf("same seed delivered %d then %d — jam draws are not deterministic", got, again)
	}
}

// TestWindowsMerge pins the degradation-accounting windows: overlapping
// fault events coalesce into one [From, To) interval.
func TestWindowsMerge(t *testing.T) {
	w, _, _ := staticPair(51, 10)
	eng, err := faults.Install(w, faults.Spec{Events: []faults.Event{
		{Kind: faults.JamZone, At: 2, Until: 6, Loss: 0.5,
			Region: geom.NewRect(geom.V(0, -50), geom.V(300, 50))},
		{Kind: faults.BeaconSuppression, At: 5, Until: 9, Prob: 0.5},
	}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Windows(); !reflect.DeepEqual(got, [][2]float64{{2, 9}}) {
		t.Fatalf("windows = %v, want the merged [[2 9]]", got)
	}
}

// TestProfilesBuildDeterministically: every registered profile, fed the
// same context twice (fresh Rand each time, same seed), must produce
// byte-identical schedules — the registry contract behind reproducible
// chaos tables.
func TestProfilesBuildDeterministically(t *testing.T) {
	ctx := func() faults.Context {
		vehicles := make([]netstack.NodeID, 16)
		for i := range vehicles {
			vehicles[i] = netstack.NodeID(i)
		}
		return faults.Context{
			Seed: 99, Duration: 60,
			Bounds:   geom.NewRect(geom.V(0, 0), geom.V(2000, 200)),
			Vehicles: vehicles,
			RSUs:     []netstack.NodeID{16, 17},
			Rand:     rand.New(rand.NewSource(99)),
		}
	}
	for _, name := range faults.Names() {
		p, ok := faults.Named(name)
		if !ok {
			t.Fatalf("Names listed unknown profile %q", name)
		}
		a, b := p.Build(ctx()), p.Build(ctx())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("profile %q is not deterministic:\n%+v\n%+v", name, a, b)
		}
		if len(a.Events) == 0 {
			t.Errorf("profile %q built an empty schedule", name)
		}
	}
}

// TestRSUBlackoutCrashesEveryRSU drives the profile through the scenario
// layer: a DRR run with three RSUs under rsu-blackout must record exactly
// three crashes and no recoveries.
func TestRSUBlackoutCrashesEveryRSU(t *testing.T) {
	sum, err := scenario.RunProtocol("DRR", scenario.Options{
		Seed: 2, Vehicles: 12, HighwayLength: 3000, SpeedMean: 30,
		Duration: 30, Flows: 2, FlowPackets: 5, RSUs: 3,
		Faults: "rsu-blackout",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Crashes != 3 || sum.Recoveries != 0 {
		t.Errorf("crashes/recoveries = %d/%d, want 3/0", sum.Crashes, sum.Recoveries)
	}
}

// TestFaultedRunIsShardInvariant is the chaos determinism contract at the
// scenario level: the same faulted run produces an identical summary
// whether the step loop is sequential or sharded.
func TestFaultedRunIsShardInvariant(t *testing.T) {
	base := scenario.Options{
		Seed: 3, Vehicles: 24, HighwayLength: 1500, SpeedMean: 28,
		Duration: 20, Flows: 3, FlowPackets: 6,
		Faults: "rolling-crashes",
	}
	seq, err := scenario.RunProtocol("Greedy", base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Crashes == 0 {
		t.Fatal("rolling-crashes crashed nothing — the schedule never fired")
	}
	sharded := base
	sharded.Shards = 4
	par, err := scenario.RunProtocol("Greedy", sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sharded faulted run diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestUnknownProfileIsRejected: a typo in Options.Faults must fail the
// build with the known names, not silently run fault-free.
func TestUnknownProfileIsRejected(t *testing.T) {
	_, err := scenario.Build("Greedy", scenario.Options{Faults: "no-such-profile"})
	if err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}
