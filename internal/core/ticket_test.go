package core_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestTicketProbingDelivers(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), core.NewTicketRouter())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
	c := w.Collector()
	if c.Control["PROBE"] == 0 {
		t.Fatal("no probes sent")
	}
	if c.RouteDiscoveries == 0 {
		t.Fatal("no probing rounds counted")
	}
}

func TestProbingBeatsFloodingOnOverhead(t *testing.T) {
	// the protocol's reason to exist: "selectively probes, rather than
	// brute-force floods". On a wide 2-D topology, a flooded discovery
	// costs ≥ N transmissions (every node rebroadcasts once); ticket
	// probing costs ≈ L × path length, far below N.
	var vehicles []routetest.Vehicle
	for i := 0; i < 48; i++ { // 8×6 grid of vehicles, 100 m spacing
		vehicles = append(vehicles, routetest.Vehicle{
			Pos: geom.V(float64(i%8)*100, float64(i/8)*100),
			Vel: geom.V(20, 0),
		})
	}
	w, ids := routetest.World(t, 1, vehicles, core.NewTicketRouter(core.WithTickets(3)))
	w.AddFlow(ids[0], ids[47], 3, 1, 3, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	probesPerRound := float64(c.Control["PROBE"]) / float64(c.RouteDiscoveries)
	if probesPerRound > float64(len(vehicles)) {
		t.Fatalf("probes per discovery = %v ≥ node count %d; probing degenerated into flooding",
			probesPerRound, len(vehicles))
	}
}

func TestStabilityConstraintRejectsFleetingLinks(t *testing.T) {
	// the only route to the destination crosses a link that dies almost
	// immediately; with a high stability threshold TBP-SS must refuse it
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(30, 0)},
		{Pos: geom.V(240, 0), Vel: geom.V(-30, 0)}, // closing fast: fleeting
		{Pos: geom.V(480, 0), Vel: geom.V(30, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles,
		core.NewTicketRouter(core.WithStabilityThreshold(30)))
	w.AddFlow(ids[0], ids[2], 1, 1, 3, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatalf("delivered %d over links violating the stability constraint", c.DataDelivered)
	}
}

func TestPicksStablePathAmongCandidates(t *testing.T) {
	// two disjoint 2-hop paths: one through a co-moving relay, one
	// through an opposite-direction relay; the active path must use the
	// stable relay
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},      // 0 source
		{Pos: geom.V(200, 15), Vel: geom.V(20, 0)},   // 1 stable relay
		{Pos: geom.V(200, -15), Vel: geom.V(-20, 0)}, // 2 fleeting relay
		{Pos: geom.V(400, 0), Vel: geom.V(20, 0)},    // 3 destination
	}
	var routers []*core.TicketRouter
	factory := core.NewTicketRouter(core.WithTickets(4), core.WithStabilityThreshold(0.1))
	wrapped := func() netstack.Router {
		r := factory().(*core.TicketRouter)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	w.AddFlow(ids[0], ids[3], 2, 1, 3, 256)
	if err := w.Run(7); err != nil {
		t.Fatal(err)
	}
	path, stability, ok := routers[0].ActivePath(ids[3])
	if !ok {
		t.Fatal("source holds no active path")
	}
	if len(path) != 3 || path[1] != ids[1] {
		t.Fatalf("active path = %v, want via stable relay %d", path, ids[1])
	}
	if stability <= 0 {
		t.Fatalf("path stability = %v", stability)
	}
}

func TestBreakRecoveryReprobes(t *testing.T) {
	// the relay drives away mid-flow (break at ~2.8 s); the destination
	// itself drives toward the source and enters direct range at ~11 s:
	// the source must re-probe and resume delivering
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(180, 0), Vel: geom.V(25, 0)},  // departing relay
		{Pos: geom.V(420, 0), Vel: geom.V(-15, 0)}, // approaching destination
	}
	w, ids := routetest.World(t, 1, vehicles, core.NewTicketRouter(core.WithStabilityThreshold(0.5)))
	w.AddFlow(ids[0], ids[2], 1, 0.5, 26, 256)
	if err := w.Run(14); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered < 6 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	if c.RouteDiscoveries < 2 {
		t.Fatalf("discoveries = %d; no re-probing after the break", c.RouteDiscoveries)
	}
}

func TestTicketBudgetControlsFanout(t *testing.T) {
	run := func(tickets int) int {
		vehicles := routetest.Chain(12, 120, 20)
		w, ids := routetest.World(t, 1, vehicles, core.NewTicketRouter(core.WithTickets(tickets)))
		w.AddFlow(ids[0], ids[11], 3, 1, 1, 256)
		if err := w.Run(8); err != nil {
			t.Fatal(err)
		}
		return w.Collector().Control["PROBE"]
	}
	one := run(1)
	eight := run(8)
	if eight <= one {
		t.Fatalf("probe volume did not grow with ticket budget: L=1→%d, L=8→%d", one, eight)
	}
}

func TestNamesByMetric(t *testing.T) {
	tbp := core.NewTicketRouter(core.WithMetric(core.MetricExpectedDuration))()
	tbpss := core.NewTicketRouter(core.WithMetric(core.MetricMeanDuration))()
	if tbp.Name() != "Yan-TBP" {
		t.Fatalf("expected-duration router name = %q", tbp.Name())
	}
	if tbpss.Name() != "TBP-SS" {
		t.Fatalf("mean-duration router name = %q", tbpss.Name())
	}
}
