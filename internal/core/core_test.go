package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
)

func TestLinkStabilityOrdering(t *testing.T) {
	// a co-moving neighbor must score higher than a fast-crossing one,
	// under every metric
	for _, m := range []Metric{MetricExpectedDuration, MetricMeanDuration, MetricDeterministic} {
		t.Run(m.String(), func(t *testing.T) {
			stable := LinkStability(m, StabilityParams{},
				geom.V(0, 0), geom.V(30, 0),
				geom.V(100, 0), geom.V(29, 0), 250)
			fleeting := LinkStability(m, StabilityParams{},
				geom.V(0, 0), geom.V(30, 0),
				geom.V(100, 0), geom.V(-30, 0), 250)
			if stable <= fleeting {
				t.Fatalf("stable link %v not above fleeting %v", stable, fleeting)
			}
		})
	}
}

func TestLinkStabilityOutOfRange(t *testing.T) {
	for _, m := range []Metric{MetricExpectedDuration, MetricMeanDuration} {
		got := LinkStability(m, StabilityParams{},
			geom.V(0, 0), geom.V(30, 0), geom.V(400, 0), geom.V(30, 0), 250)
		if got != 0 {
			t.Fatalf("%v: stability of a down link = %v", m, got)
		}
	}
}

func TestDeterministicMetricMatchesSolver(t *testing.T) {
	params := StabilityParams{Horizon: 1e6}
	aPos, aVel := geom.V(0, 0), geom.V(33, 0)
	bPos, bVel := geom.V(150, 0), geom.V(25, 0)
	want := link.LifetimeVec(aPos, aVel, bPos, bVel, 250)
	got := LinkStability(MetricDeterministic, params, aPos, aVel, bPos, bVel, 250)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("deterministic stability = %v, solver = %v", got, want)
	}
	// Forever clamps to the horizon
	params = StabilityParams{Horizon: 60}
	got = LinkStability(MetricDeterministic, params,
		geom.V(0, 0), geom.V(30, 0), geom.V(10, 0), geom.V(30, 0), 250)
	if got != 60 {
		t.Fatalf("clamped stability = %v", got)
	}
}

func TestMeanMetricWiderUncertainty(t *testing.T) {
	// with a long-lived link, the wider drift model (TBP-SS) must be more
	// pessimistic than the narrow estimation-error model (TBP)
	aPos, aVel := geom.V(0, 0), geom.V(30, 0)
	bPos, bVel := geom.V(50, 0), geom.V(30, 0)
	tbp := LinkStability(MetricExpectedDuration, StabilityParams{}, aPos, aVel, bPos, bVel, 250)
	tbpss := LinkStability(MetricMeanDuration, StabilityParams{}, aPos, aVel, bPos, bVel, 250)
	if tbpss >= tbp {
		t.Fatalf("mean-duration %v not more conservative than expected-duration %v", tbpss, tbp)
	}
}

func TestPathStabilityMinRule(t *testing.T) {
	if got := PathStability([]float64{12, 3, 40}); got != 3 {
		t.Fatalf("path stability = %v", got)
	}
}

func TestSplitTickets(t *testing.T) {
	tests := []struct {
		l, n int
		want []int
	}{
		{3, 2, []int{2, 1}},
		{3, 3, []int{1, 1, 1}},
		{1, 3, []int{1, 0, 0}},
		{5, 2, []int{3, 2}},
		{0, 2, []int{0, 0}},
		{8, 3, []int{3, 3, 2}},
	}
	for _, tc := range tests {
		got := splitTickets(tc.l, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("splitTickets(%d,%d) = %v", tc.l, tc.n, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("splitTickets(%d,%d) = %v, want %v", tc.l, tc.n, got, tc.want)
			}
		}
	}
	if got := splitTickets(3, 0); got != nil {
		t.Fatalf("splitTickets with no candidates = %v", got)
	}
}

func TestSplitTicketsProperties(t *testing.T) {
	f := func(l8, n8 uint8) bool {
		l, n := int(l8%32), int(n8%16)
		out := splitTickets(l, n)
		if n == 0 {
			return out == nil
		}
		sum := 0
		prev := 1 << 30
		for _, v := range out {
			if v < 0 || v > prev {
				return false // must be non-increasing, the best candidate first
			}
			prev = v
			sum += v
		}
		return sum == min(l, sum) && sum <= l && (l == 0 || sum == l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMetricString(t *testing.T) {
	if MetricExpectedDuration.String() != "expected-duration" ||
		MetricMeanDuration.String() != "mean-duration" ||
		MetricDeterministic.String() != "deterministic" {
		t.Fatal("metric names wrong")
	}
}
