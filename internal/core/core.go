// Package core implements the paper's primary contribution: the
// reliable-routing framework built from link-stability prediction.
//
// It provides three things:
//
//  1. Link stability metrics (Metric): the expected link duration and the
//     mean link duration ("stability") computed from the probability model
//     of Sec. VII over the kinematic link-lifetime solution of Sec. IV-A
//     (Eqns 1–4), plus the deterministic point prediction.
//  2. The ticket-based probing router (TicketRouter) of Yan et al. [27]:
//     instead of brute-force flooding, a bounded number of probe tickets
//     is split, divide-and-conquer, among the most stable candidate links;
//     the destination returns the most stable probed path; the source
//     routes data over it and rebuilds shortly before the predicted
//     expiry. With the mean-duration metric and a stability constraint
//     this is the paper's TBP-SS.
//  3. The taxonomy registry (Taxonomy) mirroring Fig. 1, mapping every
//     surveyed protocol to its category and, where this repository
//     implements it, to the implementing package.
package core

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
)

// Metric selects the link-stability estimator used by the ticket router.
type Metric int

const (
	// MetricExpectedDuration is E[T] under a normal relative-speed model
	// around the observed kinematics — the metric of the paper's TBP
	// variant ("expected link duration ... computed by a probability
	// model").
	MetricExpectedDuration Metric = iota + 1
	// MetricMeanDuration is the mean link duration the paper defines as
	// "stability" — the TBP-SS metric. It uses a wider uncertainty model
	// than MetricExpectedDuration (future speed drift, not just current
	// estimation error).
	MetricMeanDuration
	// MetricDeterministic is the point solution of Eqn (4) with the
	// beaconed kinematics taken as exact; the ablation benches use it to
	// quantify what the probability model buys.
	MetricDeterministic
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricExpectedDuration:
		return "expected-duration"
	case MetricMeanDuration:
		return "mean-duration"
	case MetricDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// StabilityParams configures the probability model behind the metrics.
type StabilityParams struct {
	// SpeedSigma is the σ of the relative-speed uncertainty in m/s for
	// MetricExpectedDuration (default 2).
	SpeedSigma float64
	// DriftSigma is the wider σ for MetricMeanDuration (default 5),
	// modelling future speed changes over the path's life.
	DriftSigma float64
	// Horizon truncates duration statistics in seconds (default 300).
	Horizon float64
}

func (p StabilityParams) speedSigma() float64 {
	if p.SpeedSigma <= 0 {
		return 2
	}
	return p.SpeedSigma
}

func (p StabilityParams) driftSigma() float64 {
	if p.DriftSigma <= 0 {
		return 5
	}
	return p.DriftSigma
}

func (p StabilityParams) horizon() float64 {
	if p.Horizon <= 0 {
		return 300
	}
	return p.Horizon
}

// LinkStability computes the chosen stability metric for the directed link
// a→b given positions and velocities (from beacons) and the communication
// range r. Larger is more stable. The result is in seconds.
func LinkStability(m Metric, params StabilityParams, aPos, aVel, bPos, bVel geom.Vec2, r float64) float64 {
	switch m {
	case MetricDeterministic:
		t := link.LifetimeVec(aPos, aVel, bPos, bVel, r)
		if t == link.Forever {
			return params.horizon()
		}
		if t > params.horizon() {
			return params.horizon()
		}
		return t
	case MetricExpectedDuration, MetricMeanDuration:
		axis := bPos.Sub(aPos)
		gap := axis.Len()
		if gap > r {
			return 0
		}
		// Signed relative speed of a w.r.t. b along the axis a→b:
		// positive means a closes on b.
		rel := geom.Project(aVel.Sub(bVel), axis)
		sigma := params.speedSigma()
		if m == MetricMeanDuration {
			sigma = params.driftSigma()
		}
		model := prob.LinkDurationModel{
			// Duration() treats positive Δv as the sender pulling ahead;
			// a closing on b means the gap shrinks, i.e. Δv < 0 with the
			// convention of a signed gap +gap.
			RelSpeed: prob.Normal{Mu: -rel, Sigma: sigma},
			Gap:      gap,
			Range:    r,
			Horizon:  params.horizon(),
		}
		return model.Expected()
	default:
		return 0
	}
}

// PathStability composes link stabilities with the paper's min rule: "the
// lifetime of the routing path is the minimum lifetime of all links
// involved in the routing path".
func PathStability(links []float64) float64 { return link.PathLifetime(links) }

// linkStateStability evaluates the metric for the link self→neighbor on a
// reliability-plane link state (from API.LinkState/LinkStates): the
// deterministic metric consumes the plane's memoized residual-lifetime
// prediction directly, and the probability metrics run the shared
// Sec. VII expected-duration helper over the beaconed kinematics.
func linkStateStability(api *netstack.API, m Metric, params StabilityParams, ls netstack.LinkState) float64 {
	switch m {
	case MetricDeterministic:
		t := ls.Lifetime
		if t > params.horizon() {
			return params.horizon()
		}
		return t
	case MetricExpectedDuration, MetricMeanDuration:
		sigma := params.speedSigma()
		if m == MetricMeanDuration {
			sigma = params.driftSigma()
		}
		obs := linkstate.Observer{Pos: api.Pos(), Vel: api.Vel(), Now: api.Now()}
		return linkstate.ExpectedDuration(obs, ls, sigma, api.RangeEstimate(), params.horizon())
	default:
		return 0
	}
}
