package core

import "sort"

// Category is one of the five classes of the paper's taxonomy (Fig. 1).
type Category int

const (
	// Connectivity covers flooding and enhanced-flooding protocols
	// (Sec. III).
	Connectivity Category = iota + 1
	// Mobility covers link-lifetime and direction-aware protocols
	// (Sec. IV).
	Mobility
	// Infrastructure covers RSU- and ferry-assisted protocols (Sec. V).
	Infrastructure
	// Geographic covers position-based protocols (Sec. VI).
	Geographic
	// Probability covers probability-model-based protocols (Sec. VII).
	Probability
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Connectivity:
		return "connectivity"
	case Mobility:
		return "mobility"
	case Infrastructure:
		return "infrastructure"
	case Geographic:
		return "geographic-location"
	case Probability:
		return "probability-model"
	default:
		return "unknown"
	}
}

// Categories lists all five in paper order.
func Categories() []Category {
	return []Category{Connectivity, Mobility, Infrastructure, Geographic, Probability}
}

// Entry describes one protocol of the Fig. 1 taxonomy.
type Entry struct {
	// Name is the survey's marker name (e.g. "PBR", "Biswas").
	Name string
	// Category is the taxonomy class.
	Category Category
	// Ref is the survey's citation number.
	Ref string
	// Description is a one-line summary of the protocol's idea.
	Description string
	// Package is the implementing package in this repository, empty when
	// the protocol is catalogued but not implemented.
	Package string
}

// Implemented reports whether this repository ships the protocol.
func (e Entry) Implemented() bool { return e.Package != "" }

// taxonomy mirrors Fig. 1 of the paper: every protocol the survey places
// in its tree, with pointers to the implementations this repository
// provides. Representative members of every category are implemented.
var taxonomy = []Entry{
	// Connectivity (flooding) — Sec. III
	{Name: "Flooding", Category: Connectivity, Ref: "—", Description: "broadcast to every node, rebroadcast first copies", Package: "internal/routing/flood"},
	{Name: "AODV", Category: Connectivity, Ref: "[6]", Description: "on-demand RREQ/RREP/RERR route discovery", Package: "internal/routing/aodv"},
	{Name: "DSR", Category: Connectivity, Ref: "[7]", Description: "source routing with route caches", Package: "internal/routing/dsr"},
	{Name: "DSDV", Category: Connectivity, Ref: "[8]", Description: "proactive sequence-numbered distance vector", Package: "internal/routing/dsdv"},
	{Name: "Biswas", Category: Connectivity, Ref: "[9]", Description: "flooding with implicit acknowledgment from downstream rebroadcasts", Package: "internal/routing/flood"},
	{Name: "Murthy", Category: Connectivity, Ref: "[10]", Description: "wireless routing protocol over a directed graph of flooded control messages"},
	{Name: "Abedi", Category: Connectivity, Ref: "[11]", Description: "AODV with mobility parameters (also classified under mobility)", Package: "internal/routing/abedi"},
	{Name: "DisjLi", Category: Connectivity, Ref: "[12]", Description: "on-demand node-disjoint multipath routing"},

	// Mobility — Sec. IV
	{Name: "PBR", Category: Mobility, Ref: "[13]", Description: "predicted route lifetime selection with preemptive rebuild", Package: "internal/routing/pbr"},
	{Name: "Taleb", Category: Mobility, Ref: "[14]", Description: "velocity-vector grouping, rediscovery before shortest link duration", Package: "internal/routing/taleb"},
	{Name: "Abedi-M", Category: Mobility, Ref: "[11]", Description: "direction-first, then position, then speed next-hop ranking", Package: "internal/routing/abedi"},
	{Name: "Wedde", Category: Mobility, Ref: "[15]", Description: "road-condition rating from speed/density/congestion interdependencies"},
	{Name: "NiuDe", Category: Mobility, Ref: "[16]", Description: "link reliability from duration and traffic density with delay bounds", Package: "internal/routing/niude"},

	// Infrastructure — Sec. V
	{Name: "DRR", Category: Infrastructure, Ref: "[17]", Description: "RSUs as virtual equivalent nodes over a wired backbone", Package: "internal/routing/rsu"},
	{Name: "SARC", Category: Infrastructure, Ref: "[18]", Description: "street-based anonymous routing for city environments"},
	{Name: "Bus", Category: Infrastructure, Ref: "[19]", Description: "buses on regular routes as message ferries", Package: "internal/routing/busferry"},

	// Geographic — Sec. VI
	{Name: "CarNet", Category: Geographic, Ref: "[20]", Description: "grid location service with geographic forwarding"},
	{Name: "Kato", Category: Geographic, Ref: "[21]", Description: "lane/position-based network groups"},
	{Name: "Zone", Category: Geographic, Ref: "[22]", Description: "geographic zone flooding and zone routing", Package: "internal/routing/zone"},
	{Name: "Greedy", Category: Geographic, Ref: "[23,24]", Description: "furthest-progress forwarding with direction awareness", Package: "internal/routing/greedy"},
	{Name: "ROVER", Category: Geographic, Ref: "[25]", Description: "zone-based reliable geographical multicast"},
	{Name: "LORA-DCBF", Category: Geographic, Ref: "[26]", Description: "directional cluster-based flooding through elected gateways", Package: "internal/routing/gateway"},

	// Probability — Sec. VII
	{Name: "Yan", Category: Probability, Ref: "[27]", Description: "ticket-based probing on expected link duration", Package: "internal/core"},
	{Name: "TBP-SS", Category: Probability, Ref: "[27]", Description: "ticket-based probing with stability (mean link duration) constraint", Package: "internal/core"},
	{Name: "GVGrid", Category: Probability, Ref: "[28]", Description: "grid paths with normal-speed link-lifetime probability", Package: "internal/routing/gvgrid"},
	{Name: "NiuDe-P", Category: Probability, Ref: "[16]", Description: "link availability prediction for QoS multimedia routes", Package: "internal/routing/niude"},
	{Name: "CAR", Category: Probability, Ref: "[29]", Description: "per-road-segment connectivity probability maximisation", Package: "internal/routing/car"},
	{Name: "REAR", Category: Probability, Ref: "[30]", Description: "receipt probability from signal strength and loss", Package: "internal/routing/rear"},
	{Name: "Hybrid", Category: Probability, Ref: "Sec. VIII", Description: "the conclusion's proposal: probability model strengthened by mobility signals", Package: "internal/routing/hybrid"},
}

// Taxonomy returns a copy of the Fig. 1 protocol catalogue.
func Taxonomy() []Entry {
	out := make([]Entry, len(taxonomy))
	copy(out, taxonomy)
	return out
}

// ByCategory returns the catalogue entries of one category, sorted by
// name.
func ByCategory(c Category) []Entry {
	var out []Entry
	for _, e := range taxonomy {
		if e.Category == c {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ImplementedCount returns how many catalogued protocols this repository
// implements.
func ImplementedCount() int {
	n := 0
	for _, e := range taxonomy {
		if e.Implemented() {
			n++
		}
	}
	return n
}
