package core

import (
	"sort"

	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// TicketOption configures the ticket router factory.
type TicketOption func(*TicketRouter)

// WithTickets sets the probe ticket budget L (default 3). One ticket
// explores one candidate path; the budget is split divide-and-conquer at
// every hop.
func WithTickets(l int) TicketOption {
	return func(r *TicketRouter) { r.tickets = l }
}

// WithMetric selects the stability metric (default MetricMeanDuration —
// the TBP-SS configuration).
func WithMetric(m Metric) TicketOption {
	return func(r *TicketRouter) { r.metric = m }
}

// WithStabilityThreshold sets the minimum acceptable link stability in
// seconds (default 3); probes never traverse weaker links — the "SS"
// stability constraint.
func WithStabilityThreshold(s float64) TicketOption {
	return func(r *TicketRouter) { r.threshold = s }
}

// WithStabilityParams overrides the probability-model parameters.
func WithStabilityParams(p StabilityParams) TicketOption {
	return func(r *TicketRouter) { r.params = p }
}

// WithSelectionWindow sets how long the destination collects probes before
// answering with the best path (default 0.3 s).
func WithSelectionWindow(d float64) TicketOption {
	return func(r *TicketRouter) { r.window = d }
}

// WithRebuildMargin sets how long before the predicted path expiry the
// source re-probes (default 1 s).
func WithRebuildMargin(d float64) TicketOption {
	return func(r *TicketRouter) { r.rebuildMargin = d }
}

// WithScorer replaces the link-stability estimator with a custom function
// (used by the hybrid probability+mobility router the paper's conclusion
// proposes). The scorer must return seconds of predicted usable lifetime;
// the threshold and path-min composition still apply.
func WithScorer(f func(api *netstack.API, nb netstack.Neighbor) float64) TicketOption {
	return func(r *TicketRouter) { r.scorer = f }
}

// TicketRouter is the Yan/TBP-SS probability-model-based router: selective
// ticket probing on a link-stability metric, source-routed data, and
// stability-driven preemptive maintenance.
type TicketRouter struct {
	netstack.Base
	tickets       int
	metric        Metric
	threshold     float64
	params        StabilityParams
	window        float64
	rebuildMargin float64
	scorer        func(api *netstack.API, nb netstack.Neighbor) float64

	reqID   uint64
	dup     *routing.DupCache
	pending *routing.PendingQueue
	trying  map[netstack.NodeID]int
	// source-side active paths: dst → source route + predicted stability
	paths map[netstack.NodeID]*activePath
	// destination-side probe collection
	collect map[routing.DupKey]*probeSet
}

type activePath struct {
	hops      []netstack.NodeID // self ... dst inclusive
	stability float64
	built     float64
}

type probeSet struct {
	bestStability float64
	bestPath      []netstack.NodeID
	armed         bool
}

// probe is the ticket-carrying control payload.
type probe struct {
	Origin    netstack.NodeID
	ReqID     uint64
	Target    netstack.NodeID
	Tickets   int
	Path      []netstack.NodeID // origin ... current holder inclusive
	Stability float64           // min link stability along Path
}

// reply returns the selected path.
type reply struct {
	Origin    netstack.NodeID
	Target    netstack.NodeID
	Path      []netstack.NodeID // origin ... target inclusive
	Stability float64
}

// srcHeader is the source-route header for data.
type srcHeader struct {
	Path []netstack.NodeID
	Next int
}

// NewTicketRouter returns a TBP-SS router factory.
func NewTicketRouter(opts ...TicketOption) netstack.RouterFactory {
	return func() netstack.Router {
		r := &TicketRouter{
			tickets:       3,
			metric:        MetricMeanDuration,
			threshold:     3,
			window:        0.3,
			rebuildMargin: 1,
			dup:           routing.NewDupCache(15),
			pending:       routing.NewPendingQueue(16, 10),
			trying:        make(map[netstack.NodeID]int),
			paths:         make(map[netstack.NodeID]*activePath),
			collect:       make(map[routing.DupKey]*probeSet),
		}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *TicketRouter) Name() string {
	if r.metric == MetricExpectedDuration {
		return "Yan-TBP"
	}
	return "TBP-SS"
}

// Originate implements netstack.Router.
func (r *TicketRouter) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if ap, ok := r.paths[dst]; ok && len(ap.hops) >= 2 {
		r.sendAlong(pkt, ap.hops)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startProbing(dst)
}

func (r *TicketRouter) sendAlong(pkt *netstack.Packet, path []netstack.NodeID) {
	pkt.Payload = srcHeader{Path: append([]netstack.NodeID(nil), path...), Next: 1}
	pkt.Size += 4 * len(path)
	r.API.Send(path[1], pkt)
}

func (r *TicketRouter) startProbing(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendProbes(dst)
}

// sendProbes performs the source's ticket split: rank neighbors by link
// stability (filtered by the threshold and, when the destination position
// is known, by forward progress), then distribute the L tickets over the
// best candidates.
func (r *TicketRouter) sendProbes(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	cands := r.candidates(dst, []netstack.NodeID{r.API.Self()})
	if len(cands) == 0 {
		r.probesFailed(dst)
		return
	}
	split := splitTickets(r.tickets, len(cands))
	for i, c := range cands {
		if split[i] == 0 {
			continue
		}
		pl := probe{
			Origin: r.API.Self(), ReqID: r.reqID, Target: dst,
			Tickets:   split[i],
			Path:      []netstack.NodeID{r.API.Self()},
			Stability: c.stability,
		}
		pkt := &netstack.Packet{
			UID: r.API.NewUID(), Kind: netstack.KindProbe, Proto: r.Name(),
			Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL,
			Size: 48 + 4*len(pl.Path), Created: r.API.Now(), Payload: pl,
		}
		r.API.Send(c.id, pkt)
	}
	dstCopy := dst
	r.API.After(1.0, func() { r.probeDeadline(dstCopy) })
}

func (r *TicketRouter) probeDeadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.paths[dst]; ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		r.probesFailed(dst)
		return
	}
	r.trying[dst] = retries - 1
	r.sendProbes(dst)
}

func (r *TicketRouter) probesFailed(dst netstack.NodeID) {
	delete(r.trying, dst)
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range append(fresh, expired...) {
		r.API.Drop(p)
	}
}

type candidate struct {
	id        netstack.NodeID
	stability float64
	progress  float64
}

// stability evaluates one reliability-plane link state with the
// configured metric or scorer.
func (r *TicketRouter) stability(ls netstack.LinkState) float64 {
	if r.scorer != nil {
		return r.scorer(r.API, ls)
	}
	return linkStateStability(r.API, r.metric, r.params, ls)
}

// candidates ranks admissible next hops for a probe: live neighbors not on
// the path, stability ≥ threshold, ordered by stability and progress.
func (r *TicketRouter) candidates(dst netstack.NodeID, path []netstack.NodeID) []candidate {
	dstPos, _, havePos := r.API.LookupPosition(dst)
	selfD := 0.0
	if havePos {
		selfD = r.API.Pos().Dist(dstPos)
	}
	var out []candidate
	for _, nb := range r.API.LinkStates() {
		if onPath(path, nb.ID) {
			continue
		}
		s := r.stability(nb)
		if s < r.threshold {
			continue
		}
		prog := 0.0
		if havePos {
			prog = selfD - nb.Pos.Dist(dstPos)
			if nb.ID != dst && prog <= 0 {
				continue // require forward progress when geography is known
			}
		}
		out = append(out, candidate{id: nb.ID, stability: s, progress: prog})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].stability != out[j].stability {
			return out[i].stability > out[j].stability
		}
		if out[i].progress != out[j].progress {
			return out[i].progress > out[j].progress
		}
		return out[i].id < out[j].id
	})
	return out
}

// splitTickets distributes l tickets over n ranked candidates: the best
// candidate gets the ceiling share, every funded candidate gets at least
// one, and no more candidates are funded than tickets exist.
func splitTickets(l, n int) []int {
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	if l <= 0 {
		return out
	}
	funded := n
	if l < n {
		funded = l
	}
	base := l / funded
	rem := l % funded
	for i := 0; i < funded; i++ {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// HandlePacket implements netstack.Router.
func (r *TicketRouter) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindProbe:
		r.handleProbe(pkt)
	case netstack.KindRREP:
		r.handleReply(pkt)
	case netstack.KindRERR:
		r.handleBreak(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *TicketRouter) handleProbe(pkt *netstack.Packet) {
	pr, ok := pkt.Payload.(probe)
	if !ok || pr.Origin == r.API.Self() {
		return
	}
	// Fold in the stability of the link just traversed, as measured at
	// the receiving end (the survey's probing is per-link, both ends see
	// the beacons).
	inStab := pr.Stability
	if ls, okLs := r.API.LinkState(pkt.From); okLs {
		s := r.stability(ls)
		if s < inStab {
			inStab = s
		}
	}
	path := append(append([]netstack.NodeID(nil), pr.Path...), r.API.Self())
	if pr.Target == r.API.Self() {
		key := routing.DupKey{Origin: pr.Origin, Seq: pr.ReqID}
		set, okSet := r.collect[key]
		if !okSet {
			set = &probeSet{bestStability: -1}
			r.collect[key] = set
		}
		if inStab > set.bestStability {
			set.bestStability = inStab
			set.bestPath = path
		}
		if !set.armed {
			set.armed = true
			origin := pr.Origin
			r.API.After(r.window, func() { r.answer(key, origin) })
		}
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	cands := r.candidates(pr.Target, path)
	if len(cands) == 0 {
		return // ticket dies here
	}
	limit := pr.Tickets
	if limit > len(cands) {
		limit = len(cands)
	}
	split := splitTickets(pr.Tickets, limit)
	for i := 0; i < limit; i++ {
		if split[i] == 0 {
			continue
		}
		stab := inStab
		if cands[i].stability < stab {
			stab = cands[i].stability
		}
		cp := pr
		cp.Tickets = split[i]
		cp.Path = path
		cp.Stability = stab
		fwd := pkt.Clone()
		fwd.Payload = cp
		fwd.Size = 48 + 4*len(path)
		r.API.Send(cands[i].id, fwd)
	}
}

// answer returns the best probed path to the origin.
func (r *TicketRouter) answer(key routing.DupKey, origin netstack.NodeID) {
	set, ok := r.collect[key]
	if !ok || set.bestStability < 0 {
		return
	}
	delete(r.collect, key)
	path := set.bestPath
	if len(path) < 2 {
		return
	}
	rep := reply{Origin: origin, Target: r.API.Self(), Path: path, Stability: set.bestStability}
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL,
		Size: 32 + 4*len(path), Created: r.API.Now(), Payload: rep,
	}
	r.API.Send(path[len(path)-2], pkt)
}

func (r *TicketRouter) handleReply(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(reply)
	if !ok {
		return
	}
	self := r.API.Self()
	idx := indexOf(rep.Path, self)
	if idx < 0 {
		return
	}
	if self == rep.Origin {
		stab := rep.Stability
		r.paths[rep.Target] = &activePath{
			hops: append([]netstack.NodeID(nil), rep.Path...), stability: stab,
			built: r.API.Now(),
		}
		delete(r.trying, rep.Target)
		r.API.Metrics().OnPathLifetime(capStability(stab))
		r.flushPending(rep.Target)
		// stability-driven preemptive rebuild
		if stab != link.Forever {
			lead := capStability(stab) - r.rebuildMargin
			if lead < 0.1 {
				lead = 0.1
			}
			target := rep.Target
			r.API.After(lead, func() {
				if _, okP := r.paths[target]; okP || r.pending.Waiting(target) {
					delete(r.paths, target)
					r.API.Metrics().RouteRepairs++
					r.startProbing(target)
				}
			})
		}
		return
	}
	if idx == 0 {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rep.Path[idx-1], pkt)
}

// breakNotice reports a dead source route back to the origin.
type breakNotice struct {
	Origin netstack.NodeID
	Target netstack.NodeID
}

func (r *TicketRouter) handleBreak(pkt *netstack.Packet) {
	bn, ok := pkt.Payload.(breakNotice)
	if !ok || bn.Origin != r.API.Self() {
		return
	}
	if _, okP := r.paths[bn.Target]; okP {
		delete(r.paths, bn.Target)
		r.API.Metrics().RouteBreaks++
		r.startProbing(bn.Target)
	}
}

func (r *TicketRouter) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	hdr, ok := pkt.Payload.(srcHeader)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	next := hdr.Next + 1
	if next >= len(hdr.Path) {
		r.API.Drop(pkt)
		return
	}
	nextHop := hdr.Path[next]
	if !r.API.HasNeighbor(nextHop) {
		// link broke under the path: report upstream, drop here
		r.API.Metrics().RouteBreaks++
		r.API.Drop(pkt)
		r.reportBreak(hdr.Path, hdr.Next)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	cp := hdr
	cp.Next = next
	pkt.Payload = cp
	r.API.Send(nextHop, pkt)
}

// reportBreak unicasts a break notice back toward the origin along the
// upstream part of the source route.
func (r *TicketRouter) reportBreak(path []netstack.NodeID, selfIdx int) {
	if selfIdx <= 0 || selfIdx >= len(path) {
		return
	}
	origin := path[0]
	target := path[len(path)-1]
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRERR, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL, Size: 24,
		Created: r.API.Now(),
		Payload: breakNotice{Origin: origin, Target: target},
	}
	r.API.Send(path[selfIdx-1], pkt)
}

// OnSendFailed implements netstack.Router: a probed path broke under data
// — blacklist, report upstream (or re-probe when we are the origin), and
// count the break.
func (r *TicketRouter) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	hdr, ok := pkt.Payload.(srcHeader)
	if !ok || !pkt.Data {
		return
	}
	if r.API.Self() == hdr.Path[0] {
		// origin: rebuild and requeue this packet
		target := pkt.Dst
		if _, okP := r.paths[target]; okP {
			delete(r.paths, target)
			r.API.Metrics().RouteBreaks++
		}
		pkt.Payload = nil
		if ev := r.pending.Push(target, pkt); ev != nil {
			r.API.Drop(ev)
		}
		r.startProbing(target)
		return
	}
	r.API.Metrics().RouteBreaks++
	r.API.Drop(pkt)
	r.reportBreak(hdr.Path, hdr.Next)
}

// OnNeighborExpired implements netstack.Router: source-side paths whose
// first hop died are rebuilt immediately.
func (r *TicketRouter) OnNeighborExpired(id netstack.NodeID) {
	for dst, ap := range r.paths {
		if len(ap.hops) >= 2 && ap.hops[1] == id {
			delete(r.paths, dst)
			r.API.Metrics().RouteBreaks++
			if r.pending.Waiting(dst) {
				r.startProbing(dst)
			}
		}
	}
}

func (r *TicketRouter) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	ap, ok := r.paths[dst]
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.sendAlong(p, ap.hops)
	}
}

// ActivePath exposes the current source route for tests.
func (r *TicketRouter) ActivePath(dst netstack.NodeID) ([]netstack.NodeID, float64, bool) {
	ap, ok := r.paths[dst]
	if !ok {
		return nil, 0, false
	}
	return append([]netstack.NodeID(nil), ap.hops...), ap.stability, true
}

func capStability(s float64) float64 {
	const maxHold = 120
	if s > maxHold {
		return maxHold
	}
	return s
}

func onPath(path []netstack.NodeID, id netstack.NodeID) bool {
	return indexOf(path, id) >= 0
}

func indexOf(path []netstack.NodeID, id netstack.NodeID) int {
	for i, v := range path {
		if v == id {
			return i
		}
	}
	return -1
}
