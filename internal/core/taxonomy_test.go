package core

import "testing"

func TestTaxonomyCoversAllCategories(t *testing.T) {
	for _, cat := range Categories() {
		entries := ByCategory(cat)
		if len(entries) == 0 {
			t.Fatalf("category %v has no catalogued protocols", cat)
		}
		implemented := 0
		for _, e := range entries {
			if e.Implemented() {
				implemented++
			}
		}
		if implemented < 2 {
			t.Errorf("category %v has %d implementations, want ≥2", cat, implemented)
		}
	}
}

func TestTaxonomyNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Taxonomy() {
		if seen[e.Name] {
			t.Errorf("duplicate taxonomy name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestTaxonomyReturnsCopy(t *testing.T) {
	a := Taxonomy()
	a[0].Name = "mutated"
	b := Taxonomy()
	if b[0].Name == "mutated" {
		t.Fatal("Taxonomy exposes internal state")
	}
}

func TestImplementedCount(t *testing.T) {
	if got := ImplementedCount(); got < 16 {
		t.Fatalf("implemented protocols = %d, want ≥16", got)
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		Connectivity:   "connectivity",
		Mobility:       "mobility",
		Infrastructure: "infrastructure",
		Geographic:     "geographic-location",
		Probability:    "probability-model",
		Category(0):    "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestPaperProtocolsPresent(t *testing.T) {
	// every protocol named in Fig. 1 must be catalogued
	want := []string{
		"AODV", "DSR", "DSDV", "Biswas", "Murthy", "Abedi", "DisjLi",
		"PBR", "Taleb", "Wedde", "NiuDe",
		"DRR", "SARC", "Bus",
		"CarNet", "Kato", "Zone", "Greedy", "ROVER", "LORA-DCBF",
		"Yan", "GVGrid", "CAR", "REAR", "TBP-SS",
	}
	have := map[string]bool{}
	for _, e := range Taxonomy() {
		have[e.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("Fig. 1 protocol %q missing from the taxonomy", name)
		}
	}
}
