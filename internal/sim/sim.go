// Package sim provides the discrete-event simulation engine: a virtual
// clock, an event scheduler, and deterministic per-component random number
// streams. Every experiment in the repository runs on this engine, so a
// scenario seed fully determines a run.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/eventq"
	"github.com/vanetlab/relroute/internal/prng"
)

// ErrStopped is returned by Run when the engine was halted by Stop before
// reaching the requested end time.
var ErrStopped = errors.New("sim: engine stopped")

// ErrInterrupted is returned by Run when the engine was aborted by
// Interrupt — typically a per-run deadline firing on another goroutine.
var ErrInterrupted = errors.New("sim: engine interrupted")

// TimerID identifies a scheduled callback so it can be cancelled.
type TimerID = eventq.ID

// Engine is the discrete-event simulator core. It is single-threaded by
// design: all callbacks run on the goroutine that called Run, which removes
// any need for locking in the models layered on top of it.
type Engine struct {
	now     float64
	q       eventq.Queue
	root    *rand.Rand
	rootSrc *prng.Source
	// streams are the counting sources behind every generator handed out
	// by Rand, in creation order (which is deterministic — stream creation
	// happens on the single-threaded event path). Together with rootSrc
	// they are the engine's share of the checkpoint stream table: each
	// stream serializes as (seed, draw position).
	streams []*prng.Source
	stopped bool
	events  uint64
	// interrupted is the only cross-goroutine signal into the engine: a
	// watchdog (the runner's per-run timeout) may flip it while Run is
	// executing events on another goroutine. It is sticky — once set, Run
	// returns ErrInterrupted at the next check and never resumes.
	interrupted atomic.Bool
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	src := prng.New(seed)
	return &Engine{root: rand.New(src), rootSrc: src}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventCount returns the number of events executed so far. It is used by
// benchmarks to report simulator throughput.
func (e *Engine) EventCount() uint64 { return e.events }

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return e.q.Len() }

// Rand derives a new deterministic random stream. Each component (channel,
// MAC, mobility, each router) should take its own stream at construction
// time so that adding randomness to one component does not perturb others.
func (e *Engine) Rand() *rand.Rand {
	r, src := prng.Rand(e.RandSeed())
	e.streams = append(e.streams, src)
	return r
}

// RandSeed draws the next stream seed from the root source without
// building a generator. Seeding math/rand costs ~600 mixing steps, so
// components whose stream may never be drawn from take a seed eagerly
// (keeping the root stream, and therefore every other component's stream,
// byte-identical) and materialize the generator on first use.
func (e *Engine) RandSeed() int64 { return e.root.Int63() }

// DigestInto folds the engine's checkpoint-relevant state into d: the
// clock, the executed-event count, the root stream position, every
// derived stream's (seed, position), and the full pending-event queue in
// canonical (time, scheduling-order) pop order — see eventq.DigestInto,
// which is invariant to the queue's internal layout (heap vs calendar).
// Two engines that executed the same event history digest identically,
// regardless of process, shard count, wall-clock interleaving, or event
// storage layout.
func (e *Engine) DigestInto(d *digest.Writer) {
	d.F64(e.now)
	d.U64(e.events)
	d.I64(e.rootSrc.SeedValue())
	d.U64(e.rootSrc.Draws())
	d.Int(len(e.streams))
	for _, s := range e.streams {
		d.I64(s.SeedValue())
		d.U64(s.Draws())
	}
	e.q.DigestInto(d)
}

// AppendStreamStates appends the serializable state of the engine's own
// random streams — the root source plus every generator created through
// Rand, in creation order — to dst. The checkpoint snapshot stores the
// result; a restored engine must reproduce the table exactly.
func (e *Engine) AppendStreamStates(dst []prng.State) []prng.State {
	dst = append(dst, prng.StateOf("engine/root", e.rootSrc))
	for i, s := range e.streams {
		dst = append(dst, prng.StateOf(fmt.Sprintf("engine/stream%d", i), s))
	}
	return dst
}

// At schedules fn to run at absolute time at. Scheduling in the past is
// clamped to "now" so callers don't silently lose events.
func (e *Engine) At(at float64, fn func()) TimerID {
	if at < e.now {
		at = e.now
	}
	return e.q.Schedule(at, fn)
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) TimerID {
	if d < 0 {
		d = 0
	}
	return e.q.Schedule(e.now+d, fn)
}

// Cancel removes a pending timer. It reports whether a pending event was
// actually cancelled.
func (e *Engine) Cancel(id TimerID) bool { return e.q.Cancel(id) }

// Stop halts Run after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Interrupt aborts Run from any goroutine: the loop notices the flag
// within a bounded number of events and returns ErrInterrupted. Unlike
// Stop it is sticky, so a deadline that fires between runs still aborts
// the next Run call.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// Run executes events in time order until the clock reaches until (events
// scheduled exactly at until still fire) or the queue drains. It returns
// ErrStopped if Stop was called and ErrInterrupted if Interrupt was.
func (e *Engine) Run(until float64) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		// The atomic load is amortized across 64 events so the hot loop
		// stays branch-cheap; an interrupt lands within one batch.
		if e.events&63 == 0 && e.interrupted.Load() {
			return ErrInterrupted
		}
		at, ok := e.q.PeekTime()
		if !ok || at > until {
			e.now = until
			return nil
		}
		_, fn, _ := e.q.Pop()
		e.now = at
		e.events++
		fn()
	}
}

// Drain executes every remaining event regardless of time. It is mainly
// useful in tests that want to flush trailing timers.
func (e *Engine) Drain() {
	for {
		at, fn, ok := e.q.Pop()
		if !ok {
			return
		}
		e.now = at
		e.events++
		fn()
	}
}

// Ticker invokes fn every interval seconds starting at start, until the
// returned stop function is called. A jitter fraction in [0,1) randomises
// each period by ±jitter/2·interval to avoid global phase locking (real
// beacon implementations do the same).
func (e *Engine) Ticker(start, interval, jitter float64, rng *rand.Rand, fn func()) (stop func()) {
	var id TimerID
	stopped := false
	// One closure rescheduling itself keeps periodic work allocation-free.
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		next := e.now + interval
		if jitter > 0 && rng != nil {
			next += interval * jitter * (rng.Float64() - 0.5)
		}
		id = e.At(next, tick)
	}
	id = e.At(start, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}
