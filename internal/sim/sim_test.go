package sim

import (
	"testing"
)

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []float64
	e.At(1, func() { fired = append(fired, e.Now()) })
	e.At(3, func() { fired = append(fired, e.Now()) })
	e.At(5, func() { fired = append(fired, e.Now()) })
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("now = %v, want clock parked at until", e.Now())
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired after second run = %v", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestAfterAndCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	id := e.After(2, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("cancel failed")
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled timer ran")
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	e := NewEngine(1)
	order := []string{}
	e.At(5, func() {
		e.At(1, func() { order = append(order, "past") }) // in the past
		order = append(order, "now")
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "now" || order[1] != "past" {
		t.Fatalf("order = %v", order)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var again func()
	again = func() {
		count++
		if count == 3 {
			e.Stop()
		}
		e.After(1, again)
	}
	e.After(1, again)
	err := e.Run(100)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine(seed)
		rng := e.Rand()
		var times []float64
		var again func()
		again = func() {
			times = append(times, e.Now())
			e.After(rng.Float64(), again)
		}
		e.After(0, again)
		if err := e.Run(10); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	e := NewEngine(7)
	r1 := e.Rand()
	r2 := e.Rand()
	// consuming r1 must not change what r2 yields
	e2 := NewEngine(7)
	e2.Rand() // r1 counterpart, unconsumed
	r2b := e2.Rand()
	for i := 0; i < 10; i++ {
		r1.Float64()
	}
	for i := 0; i < 5; i++ {
		if r2.Float64() != r2b.Float64() {
			t.Fatal("stream 2 perturbed by stream 1 consumption")
		}
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var at []float64
	stop := e.Ticker(1, 2, 0, nil, func() { at = append(at, e.Now()) })
	if err := e.Run(9); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7, 9}
	if len(at) != len(want) {
		t.Fatalf("ticks = %v", at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", at, want)
		}
	}
	stop()
	n := len(at)
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(at) != n {
		t.Fatal("ticker fired after stop")
	}
}

func TestTickerJitterStaysPeriodicOnAverage(t *testing.T) {
	e := NewEngine(3)
	rng := e.Rand()
	count := 0
	e.Ticker(0, 1, 0.5, rng, func() { count++ })
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count < 900 || count > 1100 {
		t.Fatalf("ticks over 1000s with 1s jittered period = %d", count)
	}
}

func TestEventCountAndPending(t *testing.T) {
	e := NewEngine(1)
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if e.EventCount() != 2 {
		t.Fatalf("event count = %d", e.EventCount())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d", e.Pending())
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(100, func() { ran++ })
	e.At(200, func() { ran++ })
	e.Drain()
	if ran != 2 {
		t.Fatalf("ran = %d", ran)
	}
	if e.Now() != 200 {
		t.Fatalf("now = %v", e.Now())
	}
}
