// Package par provides the fixed-size fork-join pool the sharded world
// engine fans its per-tick phases over.
//
// A Pool owns shards−1 long-lived worker goroutines (shard 0 always runs
// on the caller's goroutine, so a one-shard pool is plain inline
// execution with zero synchronisation). Run hands every shard the same
// function and blocks until all of them return — a full barrier, which is
// what makes the sharded engine deterministic: each parallel phase only
// computes pure functions of state frozen at the previous barrier, and
// every cross-shard merge happens serially between barriers.
//
// Workers block on their job channel between phases; they never spin, so
// an oversubscribed machine (shards > cores, including the degenerate
// single-core case) degrades to sequential execution instead of
// livelocking.
package par

import "sync"

// Pool is a fixed-size fork-join worker pool. The zero value is not
// usable; construct with New. A Pool is not safe for concurrent Run
// calls — like every per-world structure it belongs to one simulation.
type Pool struct {
	n      int
	jobs   []chan func(int)
	wg     sync.WaitGroup
	panics []any // recovered panic value per worker, re-raised at the barrier
	closed bool
}

// Seq is the shared one-shard pool: Run executes inline on the caller's
// goroutine with no synchronisation. It is the pool every unsharded world
// (Config.Shards <= 1) phases over, so the sharded and sequential engines
// share one code path.
var Seq = New(1)

// New returns a pool with the given shard count (values below 1 mean 1).
// Pools with more than one shard own goroutines; call Close when done.
func New(shards int) *Pool {
	if shards < 1 {
		shards = 1
	}
	p := &Pool{n: shards}
	if shards == 1 {
		return p
	}
	p.jobs = make([]chan func(int), shards-1)
	p.panics = make([]any, shards-1)
	for i := range p.jobs {
		ch := make(chan func(int), 1)
		p.jobs[i] = ch
		shard := i + 1
		go func() {
			for fn := range ch {
				p.runShard(shard, fn)
			}
		}()
	}
	return p
}

// Shards returns the pool's shard count.
func (p *Pool) Shards() int { return p.n }

// Run executes fn(shard) once per shard — shard 0 on the calling
// goroutine, the rest on the pool's workers — and returns only when every
// shard has finished (the barrier). A panic in any shard is re-raised
// here on the caller after the barrier completes, so no worker is left
// running against torn state.
func (p *Pool) Run(fn func(shard int)) {
	if p.n == 1 {
		fn(0)
		return
	}
	p.wg.Add(p.n - 1)
	for _, ch := range p.jobs {
		ch <- fn
	}
	defer p.barrier()
	fn(0)
}

func (p *Pool) runShard(shard int, fn func(int)) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.panics[shard-1] = r
		}
	}()
	fn(shard)
}

// barrier waits for the workers and surfaces the first worker panic.
func (p *Pool) barrier() {
	p.wg.Wait()
	for i, r := range p.panics {
		if r != nil {
			p.panics[i] = nil
			panic(r)
		}
	}
}

// Close stops the worker goroutines. Running the pool after Close panics;
// closing twice (or closing Seq) is a no-op.
func (p *Pool) Close() {
	if p.closed || p.n == 1 {
		p.closed = true
		return
	}
	p.closed = true
	for _, ch := range p.jobs {
		close(ch)
	}
}

// Range splits n items across the pool's shards as evenly as possible and
// returns the half-open index range [lo, hi) that shard owns. The split
// depends only on (n, shard count), never on timing, so the same world
// always partitions the same way — the first half of the determinism
// contract (the second is that phases only compute pure functions).
func (p *Pool) Range(n, shard int) (lo, hi int) {
	q, r := n/p.n, n%p.n
	lo = shard*q + min(shard, r)
	hi = lo + q
	if shard < r {
		hi++
	}
	return lo, hi
}
