package par

import (
	"sync/atomic"
	"testing"
)

func TestRangeCoversAllItems(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		p := New(shards)
		p.Close()
		for _, n := range []int{0, 1, 3, 7, 100, 101} {
			next := 0
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(n, s)
				if lo != next {
					t.Fatalf("shards=%d n=%d shard=%d: lo=%d, want %d", shards, n, s, lo, next)
				}
				if hi < lo {
					t.Fatalf("shards=%d n=%d shard=%d: hi=%d < lo=%d", shards, n, s, hi, lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("shards=%d n=%d: ranges cover %d items", shards, n, next)
			}
		}
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		p := New(shards)
		counts := make([]atomic.Int64, shards)
		for round := 0; round < 3; round++ {
			p.Run(func(s int) { counts[s].Add(1) })
		}
		for s := range counts {
			if got := counts[s].Load(); got != 3 {
				t.Fatalf("shards=%d: shard %d ran %d times, want 3", shards, s, got)
			}
		}
		p.Close()
	}
}

func TestRunIsABarrier(t *testing.T) {
	p := New(4)
	defer p.Close()
	var done atomic.Int64
	for round := 0; round < 10; round++ {
		p.Run(func(s int) { done.Add(1) })
		if got := done.Load(); got != int64(4*(round+1)) {
			t.Fatalf("round %d: %d shard executions observed after Run returned, want %d", round, got, 4*(round+1))
		}
	}
}

func TestWorkerPanicReachesCaller(t *testing.T) {
	p := New(4)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		// the pool must still be usable after a recovered panic
		var n atomic.Int64
		p.Run(func(s int) { n.Add(1) })
		if n.Load() != 4 {
			t.Fatalf("pool broken after panic: %d shards ran", n.Load())
		}
	}()
	p.Run(func(s int) {
		if s == 2 {
			panic("boom")
		}
	})
}

func TestSeqRunsInline(t *testing.T) {
	if Seq.Shards() != 1 {
		t.Fatalf("Seq.Shards() = %d, want 1", Seq.Shards())
	}
	ran := false
	Seq.Run(func(s int) {
		if s != 0 {
			t.Fatalf("shard = %d, want 0", s)
		}
		ran = true
	})
	if !ran {
		t.Fatal("Seq.Run did not execute the function")
	}
	Seq.Close() // no-op; Seq stays usable by design
	Seq.Run(func(s int) {})
}
