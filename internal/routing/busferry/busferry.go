// Package busferry implements Kitani et al.'s bus-based information
// sharing (survey Sec. V-B, marked "Bus"): buses on regular routes act as
// message ferries with larger storage than cars; cars hand packets to
// passing buses, buses carry them along their route, exchange them with
// other buses they meet, and deliver when the destination (or a car much
// closer to it) enters communication range. The design targets sparse
// traffic, where end-to-end V2V paths rarely exist — experiment E-F5's
// regime.
package busferry

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Router runs on both cars and buses; behaviour switches on the node kind.
// Cars keep a small buffer and opportunistically hand packets to buses;
// buses keep a large buffer and deliver/exchange.
type Router struct {
	netstack.Base
	buffer []*entry
	// CarBufferTTL and BusBufferTTL bound packet custody (defaults 10 s
	// and 60 s: "buses are assumed to have larger storage").
	CarBufferTTL float64
	BusBufferTTL float64
	// CarBufferCap and BusBufferCap bound custody counts (32 / 512).
	CarBufferCap int
	BusBufferCap int
	started      bool
	dup          *routing.DupCache
}

type entry struct {
	pkt   *netstack.Packet
	since float64
}

// New returns a bus-ferry router factory.
func New() netstack.RouterFactory {
	return func() netstack.Router {
		return &Router{
			CarBufferTTL: 10, BusBufferTTL: 60,
			CarBufferCap: 32, BusBufferCap: 512,
			dup: routing.NewDupCache(60),
		}
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Bus" }

// Attach implements netstack.Router.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	var sweep func()
	sweep = func() {
		r.tryDeliverAll()
		r.API.After(0.5, sweep)
	}
	api.After(0.5+api.Rand().Float64()*0.1, sweep)
}

func (r *Router) isBus() bool { return r.API.Kind() == netstack.BusNode }

func (r *Router) bufferTTL() float64 {
	if r.isBus() {
		return r.BusBufferTTL
	}
	return r.CarBufferTTL
}

func (r *Router) bufferCap() int {
	if r.isBus() {
		return r.BusBufferCap
	}
	return r.CarBufferCap
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	r.custody(pkt)
	r.tryDeliver(pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now()) {
		return // already in custody once
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.custody(pkt)
	r.tryDeliver(pkt)
}

// custody stores the packet, evicting the oldest if over cap.
func (r *Router) custody(pkt *netstack.Packet) {
	if len(r.buffer) >= r.bufferCap() {
		r.API.Drop(r.buffer[0].pkt)
		r.buffer = r.buffer[1:]
	}
	r.buffer = append(r.buffer, &entry{pkt: pkt, since: r.API.Now()})
}

// tryDeliver attempts to move one packet toward delivery; it reports
// whether the packet left this node.
func (r *Router) tryDeliver(pkt *netstack.Packet) bool {
	// 1. direct delivery
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		r.forget(pkt)
		return true
	}
	// 2. cars hand custody to a bus ("buses collect as much traffic
	// information as possible from cars in the communication region")
	if !r.isBus() {
		for _, nb := range r.API.Neighbors() {
			if nb.Kind == netstack.BusNode {
				r.API.Send(nb.ID, pkt)
				r.forget(pkt)
				return true
			}
		}
	}
	return false
}

// forget removes the packet from custody after handing it off.
func (r *Router) forget(pkt *netstack.Packet) {
	for i, e := range r.buffer {
		if e.pkt == pkt {
			r.buffer = append(r.buffer[:i], r.buffer[i+1:]...)
			return
		}
	}
}

// OnSendFailed implements netstack.Router: custody handoff failed — take
// the packet back.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.custody(pkt)
}

// tryDeliverAll retries every buffered packet and expires stale ones.
func (r *Router) tryDeliverAll() {
	if len(r.buffer) == 0 {
		return
	}
	now := r.API.Now()
	keep := r.buffer[:0]
	for _, e := range r.buffer {
		if now-e.since > r.bufferTTL() {
			r.API.Drop(e.pkt)
			continue
		}
		if r.tryDeliverBuffered(e.pkt) {
			continue
		}
		keep = append(keep, e)
	}
	r.buffer = keep
}

// tryDeliverBuffered is tryDeliver without the forget bookkeeping (the
// caller owns buffer mutation).
func (r *Router) tryDeliverBuffered(pkt *netstack.Packet) bool {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return true
	}
	if !r.isBus() {
		for _, nb := range r.API.Neighbors() {
			if nb.Kind == netstack.BusNode {
				r.API.Send(nb.ID, pkt)
				return true
			}
		}
		return false
	}
	// bus-to-bus exchange: hand off to a bus moving closer to the
	// destination's last known position
	dstPos, _, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		return false
	}
	selfD := r.API.Pos().Dist(dstPos)
	for _, nb := range r.API.Neighbors() {
		if nb.Kind != netstack.BusNode {
			continue
		}
		if nb.Pos.Dist(dstPos) < selfD*0.8 {
			r.API.Send(nb.ID, pkt)
			return true
		}
	}
	return false
}

// Buffered exposes custody depth for tests.
func (r *Router) Buffered() int { return len(r.buffer) }
