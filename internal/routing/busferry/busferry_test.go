package busferry_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/busferry"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDirectDelivery(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(2, 150, 10), busferry.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[1], 3)
}

func TestBusFerriesAcrossVoid(t *testing.T) {
	// source and destination are parked 2 km apart; a bus drives the gap
	// the ferry covers the ~1.5 km custody leg in ~50 s, inside its 60 s
	// bus-buffer TTL
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},    // 0: source car
		{Pos: geom.V(2000, 0)}, // 1: destination car
		{Pos: geom.V(100, 5), Vel: geom.V(30, 0), Bus: true}, // 2: the ferry
	}
	w, ids := routetest.World(t, 1, vehicles, busferry.New())
	w.AddFlow(ids[0], ids[1], 1, 1, 3, 256)
	if err := w.Run(90); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 3 {
		t.Fatalf("ferried delivery = %d of 3", c.DataDelivered)
	}
	// the ferry takes ~(2000-250-350)/25 ≈ 60 s
	if c.MeanDelay() < 20 {
		t.Fatalf("mean delay = %v s, too fast for a ferry", c.MeanDelay())
	}
}

func TestNoFerryNoDelivery(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(2000, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, busferry.New())
	w.AddFlow(ids[0], ids[1], 1, 1, 3, 256)
	if err := w.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got != 0 {
		t.Fatalf("delivered %d without any ferry", got)
	}
}

func TestCarHandsCustodyToBus(t *testing.T) {
	// a passing bus collects the packet from the source car even though
	// the destination is far away
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(9000, 0)},
		{Pos: geom.V(50, 0), Vel: geom.V(20, 0), Bus: true},
	}
	w, ids := routetest.World(t, 1, vehicles, busferry.New())
	w.AddFlow(ids[0], ids[1], 1, 1, 1, 256)
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	// custody transferred: one data transmission from car to bus
	if got := w.Collector().DataForwarded; got == 0 {
		t.Fatal("no custody handoff transmission")
	}
}

func TestBufferTTLExpiresCustody(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(50000, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, busferry.New())
	w.AddFlow(ids[0], ids[1], 1, 1, 2, 256)
	if err := w.Run(30); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// car buffer TTL is 10 s: both packets must be dropped by then
	if c.DataDropped != 2 {
		t.Fatalf("dropped = %d, want custody expiry", c.DataDropped)
	}
}
