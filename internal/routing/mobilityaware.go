package routing

import (
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
)

// LinkLifetime predicts the remaining lifetime of the link between this
// node and neighbor id through the reliability plane: the value is the
// world's configured estimator's residual-lifetime prediction (the
// default composite estimator solves Eqn (4) on the kinematics advertised
// in the neighbor's latest beacon, memoized per mobility epoch). It
// returns 0 when id is not a live neighbor (the link is already
// considered down) and link.Forever when the link never breaks under the
// model.
func LinkLifetime(api *netstack.API, id netstack.NodeID) float64 {
	ls, ok := api.LinkState(id)
	if !ok {
		return 0
	}
	return ls.Lifetime
}

// LinkLifetimeBetween predicts the lifetime of the link between two of
// this node's neighbors a and b, from their beaconed kinematics. Third-
// party links have no monitor entry, so this solves Eqn (4) directly.
func LinkLifetimeBetween(api *netstack.API, a, b netstack.Neighbor) float64 {
	return link.LifetimeVec(a.Pos, a.Vel, b.Pos, b.Vel, api.RangeEstimate())
}

// DirectionTo classifies the relative direction of a neighbor using the
// Fig. 4 decomposition.
func DirectionTo(api *netstack.API, nb netstack.Neighbor) link.DirectionClass {
	return link.Classify(api.Pos(), api.Vel(), nb.Pos, nb.Vel)
}

// MinLifetime folds a new link lifetime into a path lifetime accumulator
// (the paper's min-over-links composition).
func MinLifetime(pathSoFar, newLink float64) float64 {
	if newLink < pathSoFar {
		return newLink
	}
	return pathSoFar
}
