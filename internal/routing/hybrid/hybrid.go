// Package hybrid implements the combination the survey's conclusion
// proposes: "probability-model-based routing can be combined with
// mobility-based routing as the latter can strengthen the former when the
// traffic motions change." The router is the core ticket-probing machinery
// (TBP-SS) with a blended link scorer: the probability-model mean duration
// is averaged with the deterministic Eqn (4) lifetime, and the Fig. 4
// direction classifier gates the result — opposite-direction links are
// never scored above their deterministic prediction, because the
// probability model's symmetric uncertainty is known-wrong for them (their
// geometry only ever gets worse).
package hybrid

import (
	"math"

	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
)

// Config parameterises the hybrid router.
type Config struct {
	// Tickets is the probe budget (default 3).
	Tickets int
	// StabilityThreshold is the minimum blended link score in seconds
	// (default 3).
	StabilityThreshold float64
	// Blend is the weight of the probability-model metric; the remainder
	// comes from the deterministic mobility prediction (default 0.5).
	Blend float64
	// Params tunes the probability model.
	Params core.StabilityParams
}

func (c Config) withDefaults() Config {
	if c.Tickets <= 0 {
		c.Tickets = 3
	}
	if c.StabilityThreshold <= 0 {
		c.StabilityThreshold = 3
	}
	if c.Blend <= 0 || c.Blend > 1 {
		c.Blend = 0.5
	}
	return c
}

// Score is the hybrid link metric, exported for the ablation benches and
// tests.
func Score(api *netstack.API, cfg Config, nb netstack.Neighbor) float64 {
	cfg = cfg.withDefaults()
	prob := core.LinkStability(core.MetricMeanDuration, cfg.Params,
		api.Pos(), api.Vel(), nb.Pos, nb.Vel, api.RangeEstimate())
	det := core.LinkStability(core.MetricDeterministic, cfg.Params,
		api.Pos(), api.Vel(), nb.Pos, nb.Vel, api.RangeEstimate())
	score := cfg.Blend*prob + (1-cfg.Blend)*det
	if link.Classify(api.Pos(), api.Vel(), nb.Pos, nb.Vel) == link.OppositeDirection {
		score = math.Min(score, det)
	}
	return score
}

// hybridRouter wraps the core ticket router only to change its Name, so
// metrics and taxonomy listings distinguish the hybrid from plain TBP-SS.
type hybridRouter struct {
	netstack.Router
}

// Name implements netstack.Router.
func (h *hybridRouter) Name() string { return "Hybrid" }

// New returns a hybrid probability+mobility router factory.
func New(cfg Config) netstack.RouterFactory {
	cfg = cfg.withDefaults()
	inner := core.NewTicketRouter(
		core.WithTickets(cfg.Tickets),
		core.WithStabilityThreshold(cfg.StabilityThreshold),
		core.WithStabilityParams(cfg.Params),
		core.WithScorer(func(api *netstack.API, nb netstack.Neighbor) float64 {
			return Score(api, cfg, nb)
		}),
	)
	return func() netstack.Router {
		return &hybridRouter{Router: inner()}
	}
}
