package hybrid_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/hybrid"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), hybrid.New(hybrid.Config{}))
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestNameDistinguishesFromTBPSS(t *testing.T) {
	r := hybrid.New(hybrid.Config{})()
	if r.Name() != "Hybrid" {
		t.Fatalf("name = %q", r.Name())
	}
}

func TestScoreGatesOppositeDirectionLinks(t *testing.T) {
	// capture an API by attaching a probe router to a two-node world
	var api *netstack.API
	capture := func() netstack.Router {
		return &captureRouter{apiSink: &api}
	}
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(30, 0)},
		{Pos: geom.V(100, 0), Vel: geom.V(-30, 0)}, // opposite direction
	}
	w, _ := routetest.World(t, 1, vehicles, capture)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	if api == nil {
		t.Fatal("api not captured")
	}
	nbs := api.Neighbors()
	if len(nbs) != 1 {
		t.Fatalf("neighbors = %d", len(nbs))
	}
	cfg := hybrid.Config{}
	got := hybrid.Score(api, cfg, nbs[0])
	det := core.LinkStability(core.MetricDeterministic, core.StabilityParams{},
		api.Pos(), api.Vel(), nbs[0].Pos, nbs[0].Vel, api.RangeEstimate())
	if got > det+1e-9 {
		t.Fatalf("opposite-direction score %v exceeds deterministic prediction %v", got, det)
	}
}

func TestScorePrefersCoMovingNeighbor(t *testing.T) {
	var api *netstack.API
	capture := func() netstack.Router {
		return &captureRouter{apiSink: &api}
	}
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(30, 0)},
		{Pos: geom.V(100, 20), Vel: geom.V(29, 0)},   // co-moving
		{Pos: geom.V(100, -20), Vel: geom.V(-29, 0)}, // head-on
	}
	w, ids := routetest.World(t, 1, vehicles, capture)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	cfg := hybrid.Config{}
	var co, opp float64
	for _, nb := range api.Neighbors() {
		s := hybrid.Score(api, cfg, nb)
		if nb.ID == ids[1] {
			co = s
		} else {
			opp = s
		}
	}
	if co <= opp {
		t.Fatalf("co-moving score %v not above head-on %v", co, opp)
	}
}

// captureRouter only records its API; the first instance wins (node 0).
type captureRouter struct {
	netstack.Base
	apiSink **netstack.API
}

func (c *captureRouter) Name() string { return "capture" }

func (c *captureRouter) Attach(api *netstack.API) {
	c.Base.Attach(api)
	if *c.apiSink == nil {
		*c.apiSink = api
	}
}

func (c *captureRouter) HandlePacket(*netstack.Packet)  {}
func (c *captureRouter) Originate(netstack.NodeID, int) {}
