package rear_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/routing/rear"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), rear.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestPrefersStrongLinkOverLongStride(t *testing.T) {
	// Under a shadowing channel, REAR should prefer the nearer (stronger)
	// relay over the farthest-progress one and still deliver well.
	tracks := make([]mobility.Track, 0)
	layout := []geom.Vec2{
		{X: 0, Y: 0}, {X: 110, Y: 0}, {X: 215, Y: 0}, {X: 330, Y: 0}, {X: 440, Y: 0},
	}
	for i, p := range layout {
		tracks = append(tracks, mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: p, Speed: 0},
				{T: 1000, Pos: p, Speed: 0},
			},
		})
	}
	ch := channel.NewShadowing(prob.DefaultReceiptModel())
	w := netstack.NewWorld(netstack.Config{Seed: 3, Channel: ch}, mobility.NewPlayback(tracks))
	ids := w.AddVehicleNodes(rear.New())
	w.AddFlow(ids[0], ids[4], 3, 0.5, 20, 256)
	if err := w.Run(20); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.PDR() < 0.8 {
		t.Fatalf("PDR = %v under shadowing", c.PDR())
	}
	// receipt-probability forwarding takes short strides: ≥ 2 hops mean
	if c.MeanHops() < 2 {
		t.Fatalf("mean hops = %v; REAR should avoid edge-of-range strides", c.MeanHops())
	}
}

func TestMinReceiptOptionFiltersWeakLinks(t *testing.T) {
	// an extreme threshold rejects every neighbor: packets are carried
	// then dropped
	w, ids := routetest.World(t, 1, routetest.Chain(3, 200, 0),
		rear.New(rear.WithMinReceipt(1.1)))
	w.AddFlow(ids[0], ids[2], 1, 1, 2, 256)
	if err := w.Run(12); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatalf("delivered %d with an impossible receipt threshold", c.DataDelivered)
	}
	if c.DataDropped != 2 {
		t.Fatalf("dropped = %d, want carried-then-dropped", c.DataDropped)
	}
}

func TestReceiptModelOption(t *testing.T) {
	m := prob.DefaultReceiptModel()
	m.RxThreshDBm = -200 // everything decodable → behaves like greedy
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20),
		rear.New(rear.WithReceiptModel(m)))
	routetest.MustDeliverAll(t, w, ids[0], ids[3], 3)
}
