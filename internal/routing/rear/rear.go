// Package rear implements the reliable alarm-message routing of Jiang et
// al. (survey Sec. VII-B, marked REAR): the receipt probability of a
// message at each neighbor is estimated "from the received signal
// strengths" using the wireless loss model (path loss plus shadowing/
// diffraction loss), and "the path with highest receipt probability is
// selected for routing". Next hops are chosen among progress-making
// neighbors by maximum estimated receipt probability rather than maximum
// progress, trading hop count for per-hop reliability.
package rear

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithReceiptModel overrides the signal model used to map RSSI to receipt
// probability. Without it the router consumes the reliability plane's
// estimate (API.LinkState.ReceiptProb), which under the default composite
// estimator is the same prob.DefaultReceiptModel mapping REAR always used.
func WithReceiptModel(m prob.ReceiptModel) Option {
	return func(r *Router) { r.model = &m }
}

// WithMinReceipt sets the minimum acceptable per-hop receipt probability
// (default 0.2); neighbors below it are not considered.
func WithMinReceipt(p float64) Option {
	return func(r *Router) { r.minReceipt = p }
}

// Router is a per-node REAR instance.
type Router struct {
	netstack.Base
	model      *prob.ReceiptModel // nil: use the reliability plane's estimate
	minReceipt float64
	carried    []*carriedPacket
	started    bool
}

type carriedPacket struct {
	pkt   *netstack.Packet
	since float64
}

// New returns a REAR router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{minReceipt: 0.2}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "REAR" }

// Attach implements netstack.Router.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	var sweep func()
	sweep = func() {
		r.retryCarried()
		r.API.After(0.5, sweep)
	}
	api.After(0.5+api.Rand().Float64()*0.1, sweep)
}

// receiptProb estimates the probability that a frame sent to the neighbor
// is received. ls must come from API.LinkState/LinkStates: by default the
// reliability plane's prediction is consumed directly; a router-local
// model (WithReceiptModel) overrides it from the same smoothed RSSI.
func (r *Router) receiptProb(ls netstack.LinkState) float64 {
	if r.model != nil {
		return r.model.ProbFromRSSI(ls.MeanRSSI)
	}
	return ls.ReceiptProb
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	r.route(pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

// route picks the progress-making neighbor with the highest receipt
// probability; with no candidate it carries briefly (alarm messages must
// survive short voids).
func (r *Router) route(pkt *netstack.Packet) {
	if ls, ok := r.API.LinkState(pkt.Dst); ok && r.receiptProb(ls) >= r.minReceipt {
		r.API.Send(pkt.Dst, pkt)
		return
	}
	dstPos, _, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	selfD := r.API.Pos().Dist(dstPos)
	best := netstack.Broadcast
	bestP := -1.0
	for _, nb := range r.API.LinkStates() {
		if nb.Pos.Dist(dstPos) >= selfD {
			continue // no progress
		}
		p := r.receiptProb(nb)
		if p < r.minReceipt {
			continue
		}
		if p > bestP {
			bestP = p
			best = nb.ID
		}
	}
	if best != netstack.Broadcast {
		r.API.Send(best, pkt)
		return
	}
	r.carried = append(r.carried, &carriedPacket{pkt: pkt, since: r.API.Now()})
}

// OnSendFailed implements netstack.Router: the RSSI estimate was too
// optimistic — blacklist and re-route.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

func (r *Router) retryCarried() {
	if len(r.carried) == 0 {
		return
	}
	now := r.API.Now()
	keep := r.carried[:0]
	for _, c := range r.carried {
		if now-c.since > 6 {
			r.API.Drop(c.pkt)
			continue
		}
		if r.tryOnce(c.pkt) {
			continue
		}
		keep = append(keep, c)
	}
	r.carried = keep
}

func (r *Router) tryOnce(pkt *netstack.Packet) bool {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return true
	}
	dstPos, _, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		return false
	}
	selfD := r.API.Pos().Dist(dstPos)
	for _, nb := range r.API.LinkStates() {
		if nb.Pos.Dist(dstPos) < selfD && r.receiptProb(nb) >= r.minReceipt {
			r.API.Send(nb.ID, pkt)
			return true
		}
	}
	return false
}
