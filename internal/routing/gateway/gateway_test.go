package gateway_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/flood"
	"github.com/vanetlab/relroute/internal/routing/gateway"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(6, 150, 20), gateway.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[5], 5)
}

func TestSuppressesDuplicatesVsFlooding(t *testing.T) {
	// a dense cluster: gateway election must cut transmissions well below
	// flooding on the same topology
	cluster := func() []routetest.Vehicle {
		var out []routetest.Vehicle
		for i := 0; i < 24; i++ {
			out = append(out, routetest.Vehicle{
				Pos: geom.V(float64(i%8)*55, float64(i/8)*40),
				Vel: geom.V(10, 0),
			})
		}
		return out
	}
	wf, idsF := routetest.World(t, 1, cluster(), flood.New())
	wf.AddFlow(idsF[0], idsF[23], 1, 1, 5, 256)
	if err := wf.Run(10); err != nil {
		t.Fatal(err)
	}
	wg, idsG := routetest.World(t, 1, cluster(), gateway.New())
	wg.AddFlow(idsG[0], idsG[23], 1, 1, 5, 256)
	if err := wg.Run(10); err != nil {
		t.Fatal(err)
	}
	floodTx := wf.Collector().MACTransmits
	gwTx := wg.Collector().MACTransmits - wg.Collector().Control["HELLO"]
	if wg.Collector().DataDelivered == 0 {
		t.Fatal("gateway clustering delivered nothing")
	}
	if gwTx >= floodTx {
		t.Fatalf("gateway data transmissions %d not below flooding %d", gwTx, floodTx)
	}
}

func TestCellSizeOption(t *testing.T) {
	// cells at half the radio range keep gateway-to-gateway links alive
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20),
		gateway.New(gateway.WithCellSize(100)))
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 3)
}

func TestOversizedCellsPartition(t *testing.T) {
	// cells approaching the radio range can strand packets at members
	// whose gateway sits out of range — the protocol's known failure
	// mode, kept here as a regression of the election semantics
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20),
		gateway.New(gateway.WithCellSize(200)))
	w.AddFlow(ids[0], ids[4], 3, 0.5, 3, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got == 3 {
		t.Skip("topology drifted into favorable cells; nothing to assert")
	}
}

func TestMembersReadWithoutForwarding(t *testing.T) {
	// two nodes share one cell; the farther-from-center one must not
	// rebroadcast (single gateway per cell)
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(10, 0)},  // source, cell [0,125)
		{Pos: geom.V(62, 0)},  // near cell center: the gateway
		{Pos: geom.V(100, 0)}, // member: reads, stays silent
		{Pos: geom.V(240, 0)}, // destination in the next cell
	}
	w, ids := routetest.World(t, 1, vehicles, gateway.New(gateway.WithCellSize(125)))
	w.AddFlow(ids[0], ids[3], 1, 1, 1, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	// src + one gateway relay ≤ 2 data transmissions
	dataTx := c.MACTransmits - c.Control["HELLO"]
	if dataTx > 2 {
		t.Fatalf("data transmissions = %d; a member must have forwarded", dataTx)
	}
}
