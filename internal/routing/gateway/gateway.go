// Package gateway implements LORA-DCBF-style cluster/gateway routing
// (survey Sec. VI-B): the plane is partitioned into fixed geographic
// cells; within each cell exactly one vehicle — the gateway, the node
// closest to the cell center — retransmits flooded control/data packets,
// while "all the members in the zone can read and process the packet; they
// do not retransmit. Only gateway nodes retransmit packets between zones."
// This suppresses the duplicate storm of plain flooding while preserving
// reachability, the effect experiment E-F6 measures.
package gateway

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithCellSize sets the gateway cell edge in meters (default half the
// radio range at attach time, ~125 m).
func WithCellSize(m float64) Option {
	return func(r *Router) { r.cellSize = m }
}

// Router is a per-node gateway-clustered flooding router.
type Router struct {
	netstack.Base
	dup      *routing.DupCache
	cellSize float64
}

// New returns a gateway router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{dup: routing.NewDupCache(30)}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "LORA-DCBF" }

func (r *Router) cell() float64 {
	if r.cellSize > 0 {
		return r.cellSize
	}
	return r.API.RangeEstimate() / 2
}

// cellCenter returns the center of the cell containing p.
func (r *Router) cellCenter(p geom.Vec2) geom.Vec2 {
	c := r.cell()
	return geom.V(
		(math.Floor(p.X/c)+0.5)*c,
		(math.Floor(p.Y/c)+0.5)*c,
	)
}

// isGateway elects this node the gateway of its cell: closest to the cell
// center among itself and its same-cell neighbors, ties broken by lowest
// ID. The election is recomputed per packet from fresh beacon state, so
// gateways rotate naturally as vehicles move.
func (r *Router) isGateway() bool {
	self := r.API.Pos()
	center := r.cellCenter(self)
	myDist := self.Dist(center)
	myID := r.API.Self()
	for _, nb := range r.API.Neighbors() {
		if r.cellCenter(nb.Pos) != center {
			continue // different cell
		}
		d := nb.Pos.Dist(center)
		if d < myDist || (d == myDist && nb.ID < myID) {
			return false
		}
	}
	return true
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	// The source always transmits, gateway or not.
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData && pkt.Kind != netstack.KindLREQ {
		return
	}
	if r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now()) {
		return
	}
	// Members read and process...
	if pkt.Dst == r.API.Self() || pkt.Dst == netstack.Broadcast {
		r.API.Deliver(pkt)
		if pkt.Dst == r.API.Self() {
			return
		}
	}
	// ...but only gateways retransmit between zones.
	if !r.isGateway() {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}
