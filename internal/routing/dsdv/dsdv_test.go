package dsdv_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/dsdv"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestConvergesAndDelivers(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), dsdv.New())
	// start the flow after a few update rounds so tables converge
	w.AddFlow(ids[0], ids[3], 8, 0.5, 5, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 5 {
		t.Fatalf("delivered = %d of 5 (drops=%d)", c.DataDelivered, c.DataDropped)
	}
	if c.Control["UPDATE"] == 0 {
		t.Fatal("no periodic updates")
	}
}

func TestProactiveDropsBeforeConvergence(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), dsdv.New())
	// immediate send: no route yet, DSDV drops rather than buffers
	w.AddFlow(ids[0], ids[3], 0.05, 0.05, 2, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDropped; got == 0 {
		t.Fatal("pre-convergence sends were not dropped")
	}
}

func TestUpdateIntervalOption(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 20), dsdv.New(dsdv.WithUpdateInterval(0.5)))
	w.AddFlow(ids[0], ids[2], 3, 0.5, 3, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// 3 nodes × 8 s / 0.5 s ≈ 48 updates
	if c.Control["UPDATE"] < 30 {
		t.Fatalf("updates = %d with 0.5 s interval", c.Control["UPDATE"])
	}
	if c.DataDelivered != 3 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
}

func TestFresherSequenceWins(t *testing.T) {
	var routers []*dsdv.Router
	factory := dsdv.New()
	wrapped := func() netstack.Router {
		r := factory().(*dsdv.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 20), wrapped)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	rt, ok := routers[0].Table().Lookup(ids[2], w.Engine().Now())
	if !ok {
		t.Fatal("no route after convergence")
	}
	if rt.NextHop != ids[1] {
		t.Fatalf("route to far node via %d, want via middle %d", rt.NextHop, ids[1])
	}
	if rt.Hops != 2 {
		t.Fatalf("hops = %d", rt.Hops)
	}
}

func TestBreakAdvertisedWithOddSeq(t *testing.T) {
	// node 2 drifts away slowly enough for tables to converge first
	// (link 1–2 starts at 100 m and breaks after ~15 s at 10 m/s); node 0
	// must eventually lose the route through 1
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(200, 0)},
		{Pos: geom.V(300, 0), Vel: geom.V(10, 0)},
	}
	var routers []*dsdv.Router
	factory := dsdv.New()
	wrapped := func() netstack.Router {
		r := factory().(*dsdv.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	if err := w.Run(25); err != nil {
		t.Fatal(err)
	}
	if _, ok := routers[0].Table().Lookup(ids[2], w.Engine().Now()); ok {
		t.Fatal("route to departed node still valid at the far end")
	}
	if w.Collector().RouteBreaks == 0 {
		t.Fatal("no breaks recorded")
	}
}
