// Package dsdv implements Destination-Sequenced Distance-Vector routing
// (Perkins & Bhagwat), the proactive member of the survey's connectivity
// category: every node periodically broadcasts its route table stamped
// with per-destination sequence numbers; fresher sequence numbers displace
// stale routes and break count-to-infinity. Its cost profile — constant
// background control traffic independent of data demand — is one of the
// "overhead" cons of Table I row 1.
package dsdv

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithUpdateInterval sets the periodic full-dump interval in seconds
// (default 2).
func WithUpdateInterval(d float64) Option {
	return func(r *Router) { r.updateInterval = d }
}

// Router is a per-node DSDV instance.
type Router struct {
	netstack.Base
	table          *routing.Table
	seq            uint32 // own even sequence number
	updateInterval float64
	started        bool
}

// advert is one advertised route.
type advert struct {
	Dst  netstack.NodeID
	Seq  uint32
	Hops int // hops from the advertiser; -1 marks unreachable
}

// update is the periodic table dump payload.
type update struct {
	Routes []advert
}

// New returns a DSDV router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{table: routing.NewTable(), updateInterval: 2}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "DSDV" }

// Attach implements netstack.Router and starts the periodic advertiser.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	// Phase-shift the first dump so nodes don't synchronise.
	phase := api.Rand().Float64() * r.updateInterval
	var tickFn func()
	tickFn = func() {
		r.advertise()
		r.API.After(r.updateInterval, tickFn)
	}
	api.After(phase, tickFn)
}

// advertise broadcasts the full route table.
func (r *Router) advertise() {
	r.seq += 2 // own sequence numbers stay even while alive
	now := r.API.Now()
	routes := []advert{{Dst: r.API.Self(), Seq: r.seq, Hops: 0}}
	for _, dst := range r.table.Destinations(now) {
		rt, _ := r.table.Get(dst)
		routes = append(routes, advert{Dst: dst, Seq: rt.Seq, Hops: rt.Hops})
	}
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindUpdate, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: 1,
		Size: 16 + 12*len(routes), Created: now,
		Payload: update{Routes: routes},
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindUpdate:
		r.handleUpdate(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleUpdate(pkt *netstack.Packet) {
	up, ok := pkt.Payload.(update)
	if !ok {
		return
	}
	for _, ad := range up.Routes {
		if ad.Dst == r.API.Self() {
			continue
		}
		if ad.Hops < 0 {
			// unreachable advertisement: adopt if it is fresher than ours
			if cur, okCur := r.table.Get(ad.Dst); okCur && cur.Valid && routing.SeqNewer(ad.Seq, cur.Seq) {
				cur.Valid = false
				r.API.Metrics().RouteBreaks++
			}
			continue
		}
		cand := routing.Route{
			Dst: ad.Dst, NextHop: pkt.From, Hops: ad.Hops + 1,
			Seq: ad.Seq, Valid: true,
		}
		cur, okCur := r.table.Get(ad.Dst)
		switch {
		case !okCur || !cur.Valid:
			r.table.Upsert(cand)
		case routing.SeqNewer(ad.Seq, cur.Seq):
			r.table.Upsert(cand)
		case ad.Seq == cur.Seq && cand.Hops < cur.Hops:
			r.table.Upsert(cand)
		}
	}
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// Originate implements netstack.Router: proactive routing either has the
// route or drops (no discovery latency, no buffering).
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// OnNeighborExpired implements netstack.Router: mark routes through the
// lost neighbor unreachable and advertise the break with odd sequence
// numbers (the DSDV link-break rule).
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	if len(broken) == 0 {
		return
	}
	r.API.Metrics().RouteBreaks += len(broken)
	now := r.API.Now()
	routes := make([]advert, 0, len(broken))
	for _, dst := range broken {
		rt, _ := r.table.Get(dst)
		routes = append(routes, advert{Dst: dst, Seq: rt.Seq + 1, Hops: -1})
	}
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindUpdate, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: 1,
		Size: 16 + 12*len(routes), Created: now,
		Payload: update{Routes: routes},
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// OnSendFailed implements netstack.Router: treat like a neighbor loss.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// Table exposes the route table for tests.
func (r *Router) Table() *routing.Table { return r.table }
