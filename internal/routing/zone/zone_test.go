package zone_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/routetest"
	"github.com/vanetlab/relroute/internal/routing/zone"
)

func TestDeliversWithinCorridor(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(6, 150, 20), zone.New(nil))
	routetest.MustDeliverAll(t, w, ids[0], ids[5], 5)
}

func TestNodesOutsideZoneStaySilent(t *testing.T) {
	// a corridor along the x axis plus a far-off-axis node: the latter
	// must not rebroadcast
	vehicles := append(routetest.Chain(4, 150, 0),
		routetest.Vehicle{Pos: geom.V(225, 800)}) // way off the corridor
	w, ids := routetest.World(t, 1, vehicles, zone.New(zone.CorridorPolicy(100)))
	w.AddFlow(ids[0], ids[3], 1, 1, 1, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	// transmissions: src + 2 relays inside the corridor at most; the
	// off-axis node is out of range anyway — rebuild with it in range:
	vehicles2 := append(routetest.Chain(4, 150, 0),
		routetest.Vehicle{Pos: geom.V(225, 200)}) // in radio range, outside zone
	w2, ids2 := routetest.World(t, 1, vehicles2, zone.New(zone.CorridorPolicy(100)))
	w2.AddFlow(ids2[0], ids2[3], 1, 1, 1, 256)
	if err := w2.Run(5); err != nil {
		t.Fatal(err)
	}
	c2 := w2.Collector()
	if c2.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c2.DataDelivered)
	}
	// zone discipline: ≤ 4 transmissions (no rebroadcast from the
	// off-zone node)
	if c2.MACTransmits > 4 {
		t.Fatalf("transmissions = %d; off-zone node rebroadcast", c2.MACTransmits)
	}
}

func TestFixedZoneConfinesDissemination(t *testing.T) {
	// the paper's "500-meter section of a road": only vehicles inside the
	// fixed rect may relay
	fixed := zone.FixedZone(geom.NewRect(geom.V(0, -50), geom.V(500, 50)))
	vehicles := routetest.Chain(8, 150, 0) // nodes at 0..1050
	w, ids := routetest.World(t, 1, vehicles, zone.New(fixed))
	// destination beyond the zone: reachable only while relays sit inside
	w.AddFlow(ids[0], ids[7], 1, 1, 1, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatal("delivered beyond the fixed zone")
	}
	// nodes at 0,150,300,450 are in-zone: at most those + source transmit
	if c.MACTransmits > 4 {
		t.Fatalf("transmissions = %d", c.MACTransmits)
	}
}

func TestZoneNeedsNoBeacons(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 20), zone.New(nil))
	w.AddFlow(ids[0], ids[2], 1, 1, 1, 256)
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().Control["HELLO"]; got != 0 {
		t.Fatalf("zone flooding charged %d beacons", got)
	}
}
