// Package zone implements the zone dissemination protocols of Bronsted &
// Kristensen (survey Sec. VI-B, Fig. 6): a packet carries a geographic
// zone — "for example, a 500-meter section of a road" — and only nodes
// inside the zone rebroadcast it; nodes outside drop it, so "packets are
// only delivered in a section of a road". Zone routing extends this with
// unicast toward the zone for sources outside it.
package zone

import (
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Policy computes the dissemination zone for a packet from source and
// destination positions. The default corridor policy covers the
// source–destination segment padded by the radio range.
type Policy func(src, dst geom.Vec2, radioRange float64) geom.Rect

// CorridorPolicy is the default zone: the axis-aligned bounding box of the
// src→dst segment expanded by pad meters (pad ≤ 0 means one radio range).
func CorridorPolicy(pad float64) Policy {
	return func(src, dst geom.Vec2, radioRange float64) geom.Rect {
		p := pad
		if p <= 0 {
			p = radioRange
		}
		return geom.NewRect(src, dst).Expand(p)
	}
}

// FixedZone always returns the given rectangle — the paper's "500-meter
// section of a road" configuration for event dissemination.
func FixedZone(r geom.Rect) Policy {
	return func(geom.Vec2, geom.Vec2, float64) geom.Rect { return r }
}

// payload carries the zone with the data.
type payload struct {
	Zone geom.Rect
}

// Router is a per-node zone-flooding router.
type Router struct {
	netstack.Base
	dup    *routing.DupCache
	policy Policy
}

// New returns a zone router factory with the given policy (nil means
// CorridorPolicy(0)).
func New(policy Policy) netstack.RouterFactory {
	if policy == nil {
		policy = CorridorPolicy(0)
	}
	return func() netstack.Router {
		return &Router{dup: routing.NewDupCache(30), policy: policy}
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Zone" }

// Originate implements netstack.Router: stamp the zone and flood within
// it.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	srcPos := r.API.Pos()
	dstPos := srcPos
	if p, _, ok := r.API.LookupPosition(dst); ok {
		dstPos = p
	}
	pkt.Payload = payload{Zone: r.policy(srcPos, dstPos, r.API.RangeEstimate())}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
}

// HandlePacket implements netstack.Router: deliver to the destination;
// rebroadcast only inside the zone.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	pl, ok := pkt.Payload.(payload)
	if !ok {
		return
	}
	if r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now()) {
		return
	}
	if pkt.Dst == r.API.Self() || pkt.Dst == netstack.Broadcast {
		r.API.Deliver(pkt)
		if pkt.Dst == r.API.Self() {
			return
		}
	}
	if !pl.Zone.Contains(r.API.Pos()) {
		return // outside the zone: drop silently
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// NeedsBeacons implements netstack.Router: zone flooding needs only own
// position, not neighbor state.
func (r *Router) NeedsBeacons() bool { return false }
