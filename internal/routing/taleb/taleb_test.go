package taleb_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/routetest"
	"github.com/vanetlab/relroute/internal/routing/taleb"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), taleb.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestPrefersSameVelocityGroup(t *testing.T) {
	// Destination can be reached through a same-group relay (eastbound,
	// like source and destination) or an opposite-group relay. The
	// velocity-vector grouping must choose the same-group one.
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},      // 0: source, east
		{Pos: geom.V(200, 12), Vel: geom.V(21, 0)},   // 1: east relay
		{Pos: geom.V(200, -12), Vel: geom.V(-20, 0)}, // 2: west relay
		{Pos: geom.V(400, 0), Vel: geom.V(20, 0)},    // 3: destination, east
	}
	var routers []*taleb.Router
	factory := taleb.New()
	wrapped := func() netstack.Router {
		r := factory().(*taleb.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	w.AddFlow(ids[0], ids[3], 2, 1, 3, 256)
	if err := w.Run(7); err != nil {
		t.Fatal(err)
	}
	rt, ok := routers[3].Table().Get(ids[0])
	if !ok || !rt.Valid {
		t.Fatal("destination has no reverse route")
	}
	if rt.NextHop != ids[1] {
		t.Fatalf("reverse route via %d, want same-group relay %d", rt.NextHop, ids[1])
	}
}

func TestRediscoversBeforePathDuration(t *testing.T) {
	// links live ~(250-180)/7 ≈ 10 s, so the pre-expiry rediscovery must
	// fire within the 14 s run
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(0, 0)},
		{Pos: geom.V(180, 0), Vel: geom.V(7, 0)},
		{Pos: geom.V(360, 0), Vel: geom.V(14, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, taleb.New())
	w.AddFlow(ids[0], ids[2], 1, 0.5, 20, 256)
	if err := w.Run(14); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.RouteRepairs == 0 {
		t.Fatal("no proactive rediscovery before the shortest link duration")
	}
	if c.DataDelivered < 4 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
}

func TestCrossGroupDelayOption(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 20),
		taleb.New(taleb.WithCrossGroupDelay(0.01)))
	routetest.MustDeliverAll(t, w, ids[0], ids[2], 3)
}
