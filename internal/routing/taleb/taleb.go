// Package taleb implements the stable routing protocol of Taleb et al.
// (survey Sec. IV-B): vehicles are grouped into four classes by their
// velocity vector, links between same-group vehicles are considered
// long-lived and preferred during RREQ dissemination, the destination
// picks the most stable arriving path, and — per the survey — "a new route
// discovery is always initiated prior [to the] duration of the routing
// path, i.e. the shortest link duration".
package taleb

import (
	"math"

	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithCrossGroupDelay sets the extra rebroadcast delay imposed on
// different-group relays (default 80 ms), biasing discovery toward
// same-group paths without partitioning the network.
func WithCrossGroupDelay(d float64) Option {
	return func(r *Router) { r.crossDelay = d }
}

// Router is a per-node Taleb instance.
type Router struct {
	netstack.Base
	table   *routing.Table
	pending *routing.PendingQueue
	dup     *routing.DupCache
	reqID   uint64
	trying  map[netstack.NodeID]int
	collect map[routing.DupKey]*candidate

	crossDelay float64
	window     float64
}

type candidate struct {
	bestScore float64
	bestLife  float64
	bestFrom  netstack.NodeID
	hops      int
	armed     bool
}

// rreq carries the origin's velocity group and accumulated path stability.
type rreq struct {
	Origin      netstack.NodeID
	ReqID       uint64
	Target      netstack.NodeID
	OriginGroup int
	MinLife     float64 // shortest link duration on the path so far
	SameGroup   int     // count of same-group links traversed
	Links       int
}

// rrep returns the selection to the origin.
type rrep struct {
	Origin  netstack.NodeID
	Target  netstack.NodeID
	MinLife float64
	Hops    int
}

// New returns a Taleb router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{
			table:      routing.NewTable(),
			pending:    routing.NewPendingQueue(16, 10),
			dup:        routing.NewDupCache(15),
			trying:     make(map[netstack.NodeID]int),
			collect:    make(map[routing.DupKey]*candidate),
			crossDelay: 0.08,
			window:     0.3,
		}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Taleb" }

// group returns this node's velocity group.
func (r *Router) group() int { return link.HeadingGroup(r.API.Vel()) }

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: routing.DefaultTTL,
		Size: 56, Created: r.API.Now(),
		Payload: rreq{
			Origin: r.API.Self(), ReqID: r.reqID, Target: dst,
			OriginGroup: r.group(), MinLife: link.Forever,
		},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	dstCopy := dst
	r.API.After(1.2, func() { r.deadline(dstCopy) })
}

func (r *Router) deadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.table.Lookup(dst, r.API.Now()); ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	now := r.API.Now()
	// one reliability-plane read serves both the lifetime fold and the
	// velocity-group comparison of the previous hop
	lifeFrom := 0.0
	sameGroup := 0
	if ls, okLs := r.API.LinkState(pkt.From); okLs {
		lifeFrom = ls.Lifetime
		if link.HeadingGroup(ls.Vel) == r.group() {
			sameGroup = 1
		}
	}
	lt := routing.MinLifetime(req.MinLife, lifeFrom)
	r.mergeReverse(routing.Route{
		Dst: req.Origin, NextHop: pkt.From, Hops: pkt.Hops,
		Expiry: now + capLife(lt), Valid: true, Lifetime: lt,
	})
	if req.Target == r.API.Self() {
		key := routing.DupKey{Origin: req.Origin, Seq: req.ReqID}
		c, okC := r.collect[key]
		if !okC {
			c = &candidate{bestScore: -1}
			r.collect[key] = c
		}
		// Stability score: same-group fraction dominates, predicted
		// lifetime breaks ties (the protocol's velocity-vector heuristic).
		links := float64(req.Links + 1)
		score := float64(req.SameGroup+sameGroup)/links*1e6 + math.Min(capLife(lt), 1e5)
		if score > c.bestScore {
			c.bestScore = score
			c.bestLife = lt
			c.bestFrom = pkt.From
			c.hops = pkt.Hops
		}
		if !c.armed {
			c.armed = true
			origin := req.Origin
			r.API.After(r.window, func() { r.answer(key, origin) })
		}
		return
	}
	key := routing.DupKey{Origin: req.Origin, Seq: req.ReqID}
	if r.dup.Seen(key, now) {
		return
	}
	cp := req
	cp.MinLife = lt
	cp.SameGroup += sameGroup
	cp.Links++
	pkt.Payload = cp
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	// Same-group relays forward immediately; cross-group relays wait,
	// letting stable paths win the dup-suppression race downstream.
	if sameGroup == 1 {
		r.API.Send(netstack.Broadcast, pkt)
		return
	}
	fwd := pkt
	r.API.After(r.crossDelay, func() { r.API.Send(netstack.Broadcast, fwd) })
}

func (r *Router) answer(key routing.DupKey, origin netstack.NodeID) {
	c, ok := r.collect[key]
	if !ok || c.bestScore < 0 {
		return
	}
	delete(r.collect, key)
	r.table.Upsert(routing.Route{
		Dst: origin, NextHop: c.bestFrom, Hops: c.hops,
		Expiry: r.API.Now() + capLife(c.bestLife), Valid: true, Lifetime: c.bestLife,
	})
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL, Size: 44,
		Created: r.API.Now(),
		Payload: rrep{Origin: origin, Target: r.API.Self(), MinLife: c.bestLife},
	}
	r.API.Send(c.bestFrom, pkt)
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	now := r.API.Now()
	r.table.Upsert(routing.Route{
		Dst: rep.Target, NextHop: pkt.From, Hops: rep.Hops + pkt.Hops,
		Expiry: now + capLife(rep.MinLife), Valid: true, Lifetime: rep.MinLife,
	})
	if rep.Origin == r.API.Self() {
		delete(r.trying, rep.Target)
		r.API.Metrics().OnPathLifetime(capLife(rep.MinLife))
		r.flushPending(rep.Target)
		// Re-discover prior to the shortest link duration elapsing.
		if rep.MinLife != link.Forever {
			lead := math.Max(capLife(rep.MinLife)-0.8, 0.1)
			target := rep.Target
			r.API.After(lead, func() {
				if _, okRt := r.table.Lookup(target, r.API.Now()); okRt || r.pending.Waiting(target) {
					r.API.Metrics().RouteRepairs++
					r.startDiscovery(target)
				}
			})
		}
		return
	}
	rt, okRt := r.table.Lookup(rep.Origin, now)
	if !okRt {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rt.NextHop, pkt)
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// OnNeighborExpired implements netstack.Router.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	r.API.Metrics().RouteBreaks += len(broken)
}

// OnSendFailed implements netstack.Router.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// mergeReverse prefers longer-lived reverse routes among those that do not
// increase the hop count (loop freedom via hop monotonicity).
func (r *Router) mergeReverse(nr routing.Route) {
	cur, ok := r.table.Get(nr.Dst)
	if ok && cur.Valid && !(nr.Hops < cur.Hops || (nr.Hops == cur.Hops && nr.Lifetime > cur.Lifetime)) {
		return
	}
	r.table.Upsert(nr)
}

func (r *Router) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	rt, ok := r.table.Lookup(dst, r.API.Now())
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.API.Send(rt.NextHop, p)
	}
}

func capLife(lifetime float64) float64 {
	const maxHold = 120
	if lifetime > maxHold {
		return maxHold
	}
	return lifetime
}

// Table exposes the route table for tests.
func (r *Router) Table() *routing.Table { return r.table }
