// Package aodv implements Ad hoc On-demand Distance Vector routing
// (Perkins et al., RFC 3561), the canonical enhanced-flooding protocol of
// the survey's connectivity category (Sec. III): route discovery floods
// RREQ control packets, the destination (or an intermediate node with a
// fresh-enough route) returns an RREP along the reverse path, data then
// follows the established hop-by-hop route, and RERR reports broken links.
// The survey's Fig. 2 is exactly one discovery round of this protocol,
// which experiment E-F2 traces.
package aodv

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithNetDiameter sets the RREQ TTL (default routing.DefaultTTL).
func WithNetDiameter(ttl int) Option {
	return func(r *Router) { r.netDiameter = ttl }
}

// WithRouteLifetime sets the active-route timeout in seconds (default 6).
func WithRouteLifetime(d float64) Option {
	return func(r *Router) { r.routeLifetime = d }
}

// WithDiscoveryTimeout sets how long the source waits for an RREP before
// retrying (default 1 s) and the retry budget (fixed at 2 retries).
func WithDiscoveryTimeout(d float64) Option {
	return func(r *Router) { r.discoveryTimeout = d }
}

// Router is a per-node AODV instance.
type Router struct {
	netstack.Base
	table   *routing.Table
	pending *routing.PendingQueue
	dup     *routing.DupCache

	seq    uint32                  // own destination sequence number
	reqID  uint64                  // route-request counter
	trying map[netstack.NodeID]int // dst → remaining discovery retries

	netDiameter      int
	routeLifetime    float64
	discoveryTimeout float64
}

// rreq is the route-request payload.
type rreq struct {
	Origin    netstack.NodeID
	OriginSeq uint32
	ReqID     uint64
	Target    netstack.NodeID
	TargetSeq uint32
	HasTSeq   bool
}

// rrep is the route-reply payload.
type rrep struct {
	Origin    netstack.NodeID
	Target    netstack.NodeID
	TargetSeq uint32
	HopsToDst int
}

// rerr is the route-error payload: destinations now unreachable through
// the sender.
type rerr struct {
	Unreachable []netstack.NodeID
}

// New returns an AODV router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{
			table:            routing.NewTable(),
			pending:          routing.NewPendingQueue(16, 10),
			dup:              routing.NewDupCache(15),
			trying:           make(map[netstack.NodeID]int),
			netDiameter:      routing.DefaultTTL,
			routeLifetime:    6,
			discoveryTimeout: 1,
		}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "AODV" }

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.refresh(rt)
		r.API.Send(rt.NextHop, pkt)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

// startDiscovery floods an RREQ for dst unless one is already in flight.
func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2 // retries remaining
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.seq++
	r.reqID++
	var tseq uint32
	hasTSeq := false
	if rt, ok := r.table.Get(dst); ok {
		tseq = rt.Seq
		hasTSeq = true
	}
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: r.netDiameter,
		Size: 48, Created: r.API.Now(),
		Payload: rreq{
			Origin: r.API.Self(), OriginSeq: r.seq, ReqID: r.reqID,
			Target: dst, TargetSeq: tseq, HasTSeq: hasTSeq,
		},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	// arm discovery timeout
	dstCopy := dst
	r.API.After(r.discoveryTimeout, func() { r.discoveryDeadline(dstCopy) })
}

func (r *Router) discoveryDeadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return // answered
	}
	if _, ok := r.table.Lookup(dst, r.API.Now()); ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindRERR:
		r.handleRERR(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	now := r.API.Now()
	// Reverse route to the origin through the previous hop.
	r.mergeRoute(routing.Route{
		Dst: req.Origin, NextHop: pkt.From, Hops: pkt.Hops,
		Seq: req.OriginSeq, Expiry: now + r.routeLifetime, Valid: true,
	})
	if r.dup.Seen(routing.DupKey{Origin: req.Origin, Seq: req.ReqID}, now) {
		return
	}
	// Can we answer? Destination itself, or fresh-enough cached route.
	if req.Target == r.API.Self() {
		if routing.SeqNewer(req.TargetSeq, r.seq) {
			r.seq = req.TargetSeq
		}
		r.seq++
		r.sendRREP(req.Origin, req.Target, r.seq, 0)
		return
	}
	if rt, okRt := r.table.Lookup(req.Target, now); okRt && req.HasTSeq && routing.SeqNewer(rt.Seq+1, req.TargetSeq) {
		r.sendRREP(req.Origin, req.Target, rt.Seq, rt.Hops)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// sendRREP unicasts a reply toward origin along the reverse route.
func (r *Router) sendRREP(origin, target netstack.NodeID, targetSeq uint32, hopsToDst int) {
	rt, ok := r.table.Lookup(origin, r.API.Now())
	if !ok {
		return
	}
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: r.netDiameter, Size: 44,
		Created: r.API.Now(),
		Payload: rrep{Origin: origin, Target: target, TargetSeq: targetSeq, HopsToDst: hopsToDst},
	}
	r.API.Send(rt.NextHop, pkt)
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	now := r.API.Now()
	// Forward route to the target through the previous hop.
	r.mergeRoute(routing.Route{
		Dst: rep.Target, NextHop: pkt.From, Hops: rep.HopsToDst + pkt.Hops,
		Seq: rep.TargetSeq, Expiry: now + r.routeLifetime, Valid: true,
	})
	if rep.Origin == r.API.Self() {
		delete(r.trying, rep.Target)
		r.flushPending(rep.Target)
		return
	}
	// Relay toward the origin along the reverse route.
	rt, okRt := r.table.Lookup(rep.Origin, now)
	if !okRt {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	// Payload hop count must grow as the RREP travels; copy-on-write.
	cp := rep
	cp.HopsToDst = rep.HopsToDst
	pkt.Payload = cp
	r.API.Send(rt.NextHop, pkt)
}

func (r *Router) handleRERR(pkt *netstack.Packet) {
	er, ok := pkt.Payload.(rerr)
	if !ok {
		return
	}
	var cascade []netstack.NodeID
	for _, dst := range er.Unreachable {
		if rt, okRt := r.table.Get(dst); okRt && rt.Valid && rt.NextHop == pkt.From {
			rt.Valid = false
			cascade = append(cascade, dst)
		}
	}
	if len(cascade) > 0 {
		r.API.Metrics().RouteBreaks += len(cascade)
		r.broadcastRERR(cascade)
	}
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.refresh(rt)
		r.API.Send(rt.NextHop, pkt)
		return
	}
	// No route at an intermediate node: RFC behaviour is to RERR.
	r.API.Drop(pkt)
	r.broadcastRERR([]netstack.NodeID{pkt.Dst})
}

func (r *Router) broadcastRERR(unreachable []netstack.NodeID) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRERR, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: 1, Size: 20 + 4*len(unreachable),
		Created: r.API.Now(),
		Payload: rerr{Unreachable: unreachable},
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// OnNeighborExpired implements netstack.Router: losing a neighbor breaks
// every route through it.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	if len(broken) == 0 {
		return
	}
	r.API.Metrics().RouteBreaks += len(broken)
	r.broadcastRERR(broken)
}

// OnSendFailed implements netstack.Router: a failed unicast is a detected
// link break — invalidate routes over it and report RERR (RFC 3561 §6.11).
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// mergeRoute applies the AODV update rule: fresher sequence number wins;
// equal sequence with fewer hops wins.
func (r *Router) mergeRoute(nr routing.Route) {
	cur, ok := r.table.Get(nr.Dst)
	if ok && cur.Valid {
		if !routing.SeqNewer(nr.Seq, cur.Seq) && !(nr.Seq == cur.Seq && nr.Hops < cur.Hops) {
			// keep current, but refresh expiry on confirmation via same hop
			if cur.NextHop == nr.NextHop && nr.Expiry > cur.Expiry {
				cur.Expiry = nr.Expiry
			}
			return
		}
	}
	r.table.Upsert(nr)
}

// refresh extends an in-use route's expiry.
func (r *Router) refresh(rt *routing.Route) {
	exp := r.API.Now() + r.routeLifetime
	if exp > rt.Expiry {
		rt.Expiry = exp
	}
}

// flushPending releases queued data after a successful discovery.
func (r *Router) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	rt, ok := r.table.Lookup(dst, r.API.Now())
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.API.Send(rt.NextHop, p)
	}
}

// Table exposes the route table for tests and the harness.
func (r *Router) Table() *routing.Table { return r.table }
