package aodv_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/aodv"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDiscoveryAndDelivery(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), aodv.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
	c := w.Collector()
	if c.Control["RREQ"] == 0 || c.Control["RREP"] == 0 {
		t.Fatalf("control plane silent: %v", c.Control)
	}
	if c.RouteDiscoveries == 0 {
		t.Fatal("no discoveries counted")
	}
}

func TestRouteReuseAvoidsRediscovery(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), aodv.New())
	w.AddFlow(ids[0], ids[3], 1, 0.2, 10, 256)
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 10 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	// one discovery serves the whole burst (stable topology)
	if c.RouteDiscoveries > 2 {
		t.Fatalf("discoveries = %d, want route reuse", c.RouteDiscoveries)
	}
}

func TestUnreachableDestinationDropsData(t *testing.T) {
	vehicles := append(routetest.Chain(3, 150, 20),
		routetest.Vehicle{Pos: geom.V(1e5, 0), Vel: geom.V(20, 0)}) // marooned
	w, ids := routetest.World(t, 1, vehicles, aodv.New())
	w.AddFlow(ids[0], ids[3], 1, 0.5, 4, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatal("delivered to unreachable destination")
	}
	if c.DataDropped != 4 {
		t.Fatalf("dropped = %d, want all 4 after discovery failure", c.DataDropped)
	}
}

func TestHandlesLinkBreakWithRERR(t *testing.T) {
	// a 3-hop chain whose middle relay drives away mid-flow
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(0, 0)},
		{Pos: geom.V(200, 0), Vel: geom.V(0, 0)},
		{Pos: geom.V(400, 0), Vel: geom.V(35, 0)}, // destination drives off
	}
	w, ids := routetest.World(t, 1, vehicles, aodv.New())
	w.AddFlow(ids[0], ids[2], 1, 1, 12, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered == 0 {
		t.Fatal("nothing delivered before the break")
	}
	if c.DataDelivered == 12 {
		t.Fatal("no break happened; test topology wrong")
	}
	if c.RouteBreaks == 0 {
		t.Fatal("break never detected")
	}
}

func TestIntermediateNodeTablesPopulated(t *testing.T) {
	var routers []*aodv.Router
	factory := aodv.New()
	wrapped := func() netstack.Router {
		r := factory().(*aodv.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), wrapped)
	w.AddFlow(ids[0], ids[3], 1, 1, 2, 256)
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	// middle node 1 must hold forward and reverse routes
	mid := routers[1]
	if _, ok := mid.Table().Lookup(ids[0], w.Engine().Now()); !ok {
		t.Fatal("no reverse route at relay")
	}
	if _, ok := mid.Table().Lookup(ids[3], w.Engine().Now()); !ok {
		t.Fatal("no forward route at relay")
	}
}

func TestOptionsApply(t *testing.T) {
	factory := aodv.New(
		aodv.WithNetDiameter(2),
		aodv.WithRouteLifetime(1),
		aodv.WithDiscoveryTimeout(0.3),
	)
	// TTL 2 cannot cross a 4-hop chain
	w, ids := routetest.World(t, 1, routetest.Chain(5, 240, 0), factory)
	delivered := routetest.RunFlow(t, w, ids[0], ids[4], 1, 1, 10, 2)
	if delivered != 0 {
		t.Fatalf("delivered %d across 4 hops with RREQ TTL 2", delivered)
	}
}
