// Package gvgrid implements the QoS grid routing of Sun et al. (survey
// Sec. VII-B, marked GVGrid): the plane is partitioned into square grid
// cells; a route is the straight cell sequence from source to destination;
// under the protocol's assumptions — equally spaced relays and normally
// distributed vehicle speeds — each grid transition gets a link-lifetime
// survival probability from the probability model, and forwarding prefers
// the neighbor in the next cell whose predicted link survives the required
// delay bound.
package gvgrid

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithCellSize sets the grid cell edge in meters (default 100).
func WithCellSize(m float64) Option {
	return func(r *Router) { r.cellSize = m }
}

// WithSpeedStd sets the σ of the assumed normal relative-speed model in
// m/s (default 6).
func WithSpeedStd(s float64) Option {
	return func(r *Router) { r.speedStd = s }
}

// WithDelayBound sets the QoS delay bound in seconds a selected link must
// survive (default 2).
func WithDelayBound(d float64) Option {
	return func(r *Router) { r.delayBound = d }
}

// Router is a per-node GVGrid instance.
type Router struct {
	netstack.Base
	cellSize   float64
	speedStd   float64
	delayBound float64
	carried    []*carriedPacket
	started    bool
}

type carriedPacket struct {
	pkt   *netstack.Packet
	since float64
}

// New returns a GVGrid router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{cellSize: 100, speedStd: 6, delayBound: 2}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "GVGrid" }

// Attach implements netstack.Router.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	var sweep func()
	sweep = func() {
		r.retryCarried()
		r.API.After(0.5, sweep)
	}
	api.After(0.5+api.Rand().Float64()*0.1, sweep)
}

// linkReliability returns P(link to the beaconed neighbor survives the
// delay bound) under the protocol's probability model: relative speed
// ~ N(observed Δv, σ²), gap and range from the reliability plane's link
// state. The model is GVGrid's own sign convention (self behind the
// neighbor along the axis toward it), so it stays local rather than using
// linkstate.Survival.
func (r *Router) linkReliability(ls netstack.LinkState) float64 {
	axis := ls.Pos.Sub(r.API.Pos())
	gap := axis.Len()
	relSpeed := geom.Project(r.API.Vel().Sub(ls.Vel), axis)
	model := prob.LinkDurationModel{
		RelSpeed: prob.Normal{Mu: relSpeed, Sigma: r.speedStd},
		Gap:      -gap, // self behind neighbor along the axis toward it
		Range:    r.API.RangeEstimate(),
	}
	return model.SurvivalProb(r.delayBound)
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	r.route(pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

// cellOf returns the integer grid cell of p.
func (r *Router) cellOf(p geom.Vec2) (int, int) {
	return int(math.Floor(p.X / r.cellSize)), int(math.Floor(p.Y / r.cellSize))
}

// route forwards to the most reliable neighbor that advances the grid-cell
// walk toward the destination.
func (r *Router) route(pkt *netstack.Packet) {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return
	}
	dstPos, _, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	cx, cy := r.cellOf(r.API.Pos())
	dx, dy := r.cellOf(dstPos)
	cellDist := func(x, y int) int {
		ax, ay := x-dx, y-dy
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		if ax > ay {
			return ax
		}
		return ay
	}
	myCellD := cellDist(cx, cy)
	best := netstack.Broadcast
	bestScore := -1.0
	// raw snapshot: linkReliability runs GVGrid's own model over the
	// observed fields, so paying the estimator derivation per packet
	// would buy nothing
	for _, nb := range r.API.Neighbors() {
		nx, ny := r.cellOf(nb.Pos)
		cd := cellDist(nx, ny)
		if cd >= myCellD {
			continue // must advance the cell walk
		}
		rel := r.linkReliability(nb)
		// prefer fewer remaining cells, then reliability
		score := float64(myCellD-cd)*10 + rel
		if score > bestScore {
			bestScore = score
			best = nb.ID
		}
	}
	if best != netstack.Broadcast {
		r.API.Send(best, pkt)
		return
	}
	// route repair from the break point: carry briefly, then retry
	r.carried = append(r.carried, &carriedPacket{pkt: pkt, since: r.API.Now()})
}

// OnSendFailed implements netstack.Router: the reliability estimate missed
// — blacklist the neighbor and repair from the break point.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

func (r *Router) retryCarried() {
	if len(r.carried) == 0 {
		return
	}
	now := r.API.Now()
	keep := r.carried[:0]
	for _, c := range r.carried {
		if now-c.since > 8 {
			r.API.Drop(c.pkt)
			continue
		}
		if r.tryOnce(c.pkt) {
			continue
		}
		keep = append(keep, c)
	}
	r.carried = keep
}

func (r *Router) tryOnce(pkt *netstack.Packet) bool {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return true
	}
	dstPos, _, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		return false
	}
	selfD := r.API.Pos().Dist(dstPos)
	for _, nb := range r.API.Neighbors() {
		if nb.Pos.Dist(dstPos) < selfD {
			r.API.Send(nb.ID, pkt)
			return true
		}
	}
	return false
}
