package gvgrid_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/gvgrid"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), gvgrid.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestPrefersReliableNeighborInNextCell(t *testing.T) {
	// two relays in the same forward cell: one co-moving (reliable link),
	// one on the opposite carriageway (link dies within the delay bound);
	// deliveries should flow and keep flowing through the reliable relay
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},
		{Pos: geom.V(160, 8), Vel: geom.V(20, 0)},   // reliable
		{Pos: geom.V(165, -8), Vel: geom.V(-28, 0)}, // fleeting
		{Pos: geom.V(340, 0), Vel: geom.V(20, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, gvgrid.New(gvgrid.WithDelayBound(4)))
	w.AddFlow(ids[0], ids[3], 2, 0.5, 10, 256)
	if err := w.Run(9); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.PDR() < 0.9 {
		t.Fatalf("PDR = %v", c.PDR())
	}
}

func TestCellWalkRequiresProgress(t *testing.T) {
	// destination unreachable: no neighbor in a closer cell → carry, then
	// drop; never bounce between same-distance cells
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(30, 40)}, // same cell as source
		{Pos: geom.V(5000, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, gvgrid.New())
	w.AddFlow(ids[0], ids[2], 1, 1, 2, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatal("delivered the unreachable")
	}
	if c.DataForwarded > 2 {
		t.Fatalf("forwards = %d; packet bounced without cell progress", c.DataForwarded)
	}
	if c.DataDropped != 2 {
		t.Fatalf("dropped = %d", c.DataDropped)
	}
}

func TestOptionsApply(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20),
		gvgrid.New(gvgrid.WithCellSize(80), gvgrid.WithSpeedStd(3), gvgrid.WithDelayBound(1)))
	routetest.MustDeliverAll(t, w, ids[0], ids[3], 3)
}
