// Package routetest provides the controlled-topology fixtures every
// protocol test suite uses: worlds built from constant-velocity playback
// tracks so tests can place vehicles exactly and predict connectivity.
package routetest

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
)

// Vehicle describes one test vehicle with constant velocity.
type Vehicle struct {
	Pos geom.Vec2
	Vel geom.Vec2
	Bus bool
}

// Chain returns n vehicles in a row on the x axis, gap meters apart, all
// moving east at speed.
func Chain(n int, gap, speed float64) []Vehicle {
	out := make([]Vehicle, n)
	for i := range out {
		out[i] = Vehicle{Pos: geom.V(float64(i)*gap, 0), Vel: geom.V(speed, 0)}
	}
	return out
}

// World builds a netstack world over the given vehicles with one router
// per vehicle from the factory. The playback horizon is 1000 s.
func World(t *testing.T, seed int64, vehicles []Vehicle, factory netstack.RouterFactory) (*netstack.World, []netstack.NodeID) {
	t.Helper()
	tracks := make([]mobility.Track, len(vehicles))
	for i, v := range vehicles {
		class := mobility.Car
		if v.Bus {
			class = mobility.Bus
		}
		tracks[i] = mobility.Track{
			ID:    mobility.VehicleID(i),
			Class: class,
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: v.Pos, Speed: v.Vel.Len()},
				{T: 1000, Pos: v.Pos.Add(v.Vel.Scale(1000)), Speed: v.Vel.Len()},
			},
		}
	}
	w := netstack.NewWorld(netstack.Config{Seed: seed}, mobility.NewPlayback(tracks))
	ids := w.AddVehicleNodes(factory)
	return w, ids
}

// RunFlow schedules packets src→dst and runs the world, returning the
// delivered count. Packets start at start and repeat every interval.
func RunFlow(t *testing.T, w *netstack.World, src, dst netstack.NodeID, start, interval, until float64, count int) int {
	t.Helper()
	w.AddFlow(src, dst, start, interval, count, 256)
	if err := w.Run(until); err != nil {
		t.Fatal(err)
	}
	return w.Collector().DataDelivered
}

// MustDeliverAll asserts a flow delivers everything it sent.
func MustDeliverAll(t *testing.T, w *netstack.World, src, dst netstack.NodeID, count int) {
	t.Helper()
	delivered := RunFlow(t, w, src, dst, 3, 0.5, 3+float64(count)*0.5+5, count)
	if delivered != count {
		t.Fatalf("delivered %d of %d packets (drops=%d)",
			delivered, count, w.Collector().DataDropped)
	}
}
