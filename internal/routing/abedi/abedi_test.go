package abedi_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/abedi"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), abedi.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestDirectionFirstNextHop(t *testing.T) {
	// two relays at the same progress: the same-direction one must carry
	// the reverse route (direction is the most important parameter)
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},
		{Pos: geom.V(200, 12), Vel: geom.V(20, 0)},   // same direction
		{Pos: geom.V(200, -12), Vel: geom.V(-20, 0)}, // opposite
		{Pos: geom.V(400, 0), Vel: geom.V(20, 0)},
	}
	var routers []*abedi.Router
	factory := abedi.New()
	wrapped := func() netstack.Router {
		r := factory().(*abedi.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	w.AddFlow(ids[0], ids[3], 2, 1, 3, 256)
	if err := w.Run(7); err != nil {
		t.Fatal(err)
	}
	rt, ok := routers[3].Table().Get(ids[0])
	if !ok || !rt.Valid {
		t.Fatal("destination has no reverse route")
	}
	if rt.NextHop != ids[1] {
		t.Fatalf("reverse route via %d, want same-direction relay %d", rt.NextHop, ids[1])
	}
	if w.Collector().DataDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestBreakTriggersInvalidation(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(200, 0)},
		{Pos: geom.V(300, 0), Vel: geom.V(15, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, abedi.New())
	w.AddFlow(ids[0], ids[2], 1, 1, 15, 256)
	if err := w.Run(18); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered == 0 {
		t.Fatal("nothing delivered before the break")
	}
	if c.RouteBreaks == 0 {
		t.Fatal("break never detected")
	}
}
