// Package abedi implements the mobility-enhanced AODV of Abedi et al.
// (survey Sec. IV-B), which ranks next hops by three mobility parameters
// in strict priority order: direction first ("nodes moving with the same
// directions will be more stable"), then position (progress toward the
// destination), then speed similarity. The ranking is applied as a
// forwarding delay during RREQ dissemination — better-ranked relays
// rebroadcast sooner and win the duplicate-suppression race downstream —
// and as the tie-break when recording reverse routes.
package abedi

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Router is a per-node Abedi instance.
type Router struct {
	netstack.Base
	table   *routing.Table
	pending *routing.PendingQueue
	dup     *routing.DupCache
	reqID   uint64
	trying  map[netstack.NodeID]int
	// MaxDelay scales the rank-based rebroadcast delay (default 0.12 s).
	MaxDelay float64
}

// rreq carries the origin's velocity so relays can rank their direction
// agreement with the flow.
type rreq struct {
	Origin    netstack.NodeID
	ReqID     uint64
	Target    netstack.NodeID
	OriginVel geom.Vec2
}

type rrep struct {
	Origin netstack.NodeID
	Target netstack.NodeID
	Hops   int
}

// New returns an Abedi router factory.
func New() netstack.RouterFactory {
	return func() netstack.Router {
		return &Router{
			table:    routing.NewTable(),
			pending:  routing.NewPendingQueue(16, 10),
			dup:      routing.NewDupCache(15),
			trying:   make(map[netstack.NodeID]int),
			MaxDelay: 0.12,
		}
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Abedi" }

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: routing.DefaultTTL,
		Size: 56, Created: r.API.Now(),
		Payload: rreq{Origin: r.API.Self(), ReqID: r.reqID, Target: dst, OriginVel: r.API.Vel()},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	dstCopy := dst
	r.API.After(1.0, func() { r.deadline(dstCopy) })
}

func (r *Router) deadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.table.Lookup(dst, r.API.Now()); ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// relayDelay converts this node's suitability as a relay into a forwarding
// delay in [0, MaxDelay]: direction agreement with the origin's motion is
// the most important parameter, then progress toward the target, then
// speed similarity — Abedi's priority order.
func (r *Router) relayDelay(req rreq) float64 {
	score := 0.0
	// 1. direction (weight 4): same heading as the flow's origin
	if r.API.Vel().Dot(req.OriginVel) > 0 {
		score += 4
	}
	// 2. position (weight 2): closer to the target than typical
	if tPos, _, ok := r.API.LookupPosition(req.Target); ok {
		d := r.API.Pos().Dist(tPos)
		score += 2 * math.Exp(-d/1000)
	}
	// 3. speed similarity (weight 1)
	score += link.SpeedSimilarity(r.API.Vel(), req.OriginVel)
	const maxScore = 7
	frac := 1 - score/maxScore
	if frac < 0 {
		frac = 0
	}
	return frac * r.MaxDelay
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	now := r.API.Now()
	// Reverse route; prefer same-direction previous hops on replacement.
	r.mergeReverse(pkt.From, req, pkt.Hops, now)
	if r.dup.Seen(routing.DupKey{Origin: req.Origin, Seq: req.ReqID}, now) {
		return
	}
	if req.Target == r.API.Self() {
		rt, okRt := r.table.Lookup(req.Origin, now)
		if !okRt {
			return
		}
		out := &netstack.Packet{
			UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
			Src: r.API.Self(), Dst: req.Origin, TTL: routing.DefaultTTL,
			Size: 44, Created: now,
			Payload: rrep{Origin: req.Origin, Target: r.API.Self()},
		}
		r.API.Send(rt.NextHop, out)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	delay := r.relayDelay(req)
	fwd := pkt
	r.API.After(delay, func() { r.API.Send(netstack.Broadcast, fwd) })
}

// mergeReverse records/updates the reverse route to the RREQ origin.
// Replacement requires strictly fewer hops, with link lifetime breaking
// ties among equal-hop alternatives: hop-count monotonicity keeps the
// reverse paths loop-free while still preferring stable same-direction
// previous hops.
func (r *Router) mergeReverse(from netstack.NodeID, req rreq, hops int, now float64) {
	lifetime := routing.LinkLifetime(r.API, from)
	nr := routing.Route{
		Dst: req.Origin, NextHop: from, Hops: hops,
		Expiry: now + 6, Valid: true, Lifetime: lifetime,
	}
	cur, ok := r.table.Get(req.Origin)
	if !ok || !cur.Valid || nr.Hops < cur.Hops ||
		(nr.Hops == cur.Hops && nr.Lifetime > cur.Lifetime) {
		r.table.Upsert(nr)
	}
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	now := r.API.Now()
	r.table.Upsert(routing.Route{
		Dst: rep.Target, NextHop: pkt.From, Hops: rep.Hops + pkt.Hops,
		Expiry: now + 6, Valid: true,
		Lifetime: routing.LinkLifetime(r.API, pkt.From),
	})
	if rep.Origin == r.API.Self() {
		delete(r.trying, rep.Target)
		r.flushPending(rep.Target)
		return
	}
	rt, okRt := r.table.Lookup(rep.Origin, now)
	if !okRt {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rt.NextHop, pkt)
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// OnNeighborExpired implements netstack.Router.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	r.API.Metrics().RouteBreaks += len(broken)
}

// OnSendFailed implements netstack.Router.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

func (r *Router) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	rt, ok := r.table.Lookup(dst, r.API.Now())
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.API.Send(rt.NextHop, p)
	}
}

// Table exposes the route table for tests.
func (r *Router) Table() *routing.Table { return r.table }
