package dsr_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/dsr"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestSourceRoutingDelivers(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), dsr.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
	c := w.Collector()
	if c.Control["RREQ"] == 0 || c.Control["RREP"] == 0 {
		t.Fatalf("control = %v", c.Control)
	}
}

func TestRouteCacheServesRepeatFlows(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), dsr.New())
	w.AddFlow(ids[0], ids[3], 1, 0.2, 10, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 10 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	if c.RouteDiscoveries > 2 {
		t.Fatalf("discoveries = %d, want cache reuse", c.RouteDiscoveries)
	}
}

func TestCachePopulatedAtIntermediates(t *testing.T) {
	var routers []*dsr.Router
	factory := dsr.New()
	wrapped := func() netstack.Router {
		r := factory().(*dsr.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), wrapped)
	w.AddFlow(ids[0], ids[3], 1, 1, 2, 256)
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	if routers[1].CacheLen() == 0 {
		t.Fatal("relay cache empty after forwarding an RREP")
	}
}

func TestBrokenSourceRouteReported(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(200, 0)},
		{Pos: geom.V(400, 0), Vel: geom.V(40, 0)}, // drives away
	}
	w, ids := routetest.World(t, 1, vehicles, dsr.New())
	w.AddFlow(ids[0], ids[2], 1, 1, 10, 256)
	if err := w.Run(14); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered == 0 {
		t.Fatal("nothing delivered before the break")
	}
	if c.RouteBreaks == 0 && c.Control["RERR"] == 0 {
		t.Fatal("break neither counted nor reported")
	}
}

func TestLoopSuppression(t *testing.T) {
	// a dense clique: RREQs must not loop (Path containment check)
	vehicles := routetest.Chain(6, 60, 10) // everyone hears everyone
	w, ids := routetest.World(t, 1, vehicles, dsr.New())
	w.AddFlow(ids[0], ids[5], 1, 1, 3, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 3 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	// each RREQ flood in a 6-clique is ≤ 6 transmissions if loops are
	// suppressed (everyone forwards once)
	if c.Control["RREQ"] > 12 {
		t.Fatalf("RREQ transmissions = %d; loop suppression failed", c.Control["RREQ"])
	}
}
