// Package dsr implements Dynamic Source Routing (Johnson et al.), the
// source-routed member of the survey's connectivity category: RREQs flood
// outward accumulating the traversed node list, the destination returns
// the complete route in an RREP, and data packets carry their full route
// in the header. Route caches answer later discoveries, and RERRs truncate
// caches when a listed link dies.
package dsr

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Router is a per-node DSR instance.
type Router struct {
	netstack.Base
	cache   map[netstack.NodeID][]netstack.NodeID // dst → full path self→...→dst
	pending *routing.PendingQueue
	dup     *routing.DupCache
	reqID   uint64
	trying  map[netstack.NodeID]int
}

// rreq accumulates the traversed route.
type rreq struct {
	Origin netstack.NodeID
	ReqID  uint64
	Target netstack.NodeID
	Path   []netstack.NodeID // nodes traversed so far, origin first
}

// rrep carries the complete discovered route.
type rrep struct {
	Origin netstack.NodeID
	Target netstack.NodeID
	Path   []netstack.NodeID // origin ... target inclusive
}

// rerr names the broken link.
type rerr struct {
	From, To netstack.NodeID
	Origin   netstack.NodeID
}

// srcHeader is the source-route header on data packets.
type srcHeader struct {
	Path []netstack.NodeID // origin ... destination inclusive
	Next int               // index of the next hop in Path
}

// New returns a DSR router factory.
func New() netstack.RouterFactory {
	return func() netstack.Router {
		return &Router{
			cache:   make(map[netstack.NodeID][]netstack.NodeID),
			pending: routing.NewPendingQueue(16, 10),
			dup:     routing.NewDupCache(15),
			trying:  make(map[netstack.NodeID]int),
		}
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "DSR" }

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if path, ok := r.cache[dst]; ok && len(path) >= 2 {
		r.sendAlong(pkt, path)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

func (r *Router) sendAlong(pkt *netstack.Packet, path []netstack.NodeID) {
	hdr := srcHeader{Path: append([]netstack.NodeID(nil), path...), Next: 1}
	pkt.Payload = hdr
	pkt.Size += 4 * len(path) // source route inflates the header
	r.API.Send(path[1], pkt)
}

func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: routing.DefaultTTL,
		Size: 40, Created: r.API.Now(),
		Payload: rreq{
			Origin: r.API.Self(), ReqID: r.reqID, Target: dst,
			Path: []netstack.NodeID{r.API.Self()},
		},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	dstCopy := dst
	r.API.After(1.0, func() { r.discoveryDeadline(dstCopy) })
}

func (r *Router) discoveryDeadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.cache[dst]; ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindRERR:
		r.handleRERR(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	if contains(req.Path, r.API.Self()) {
		return // loop
	}
	if r.dup.Seen(routing.DupKey{Origin: req.Origin, Seq: req.ReqID}, r.API.Now()) {
		return
	}
	// copy-on-write path extension
	path := make([]netstack.NodeID, 0, len(req.Path)+1)
	path = append(path, req.Path...)
	path = append(path, r.API.Self())
	if req.Target == r.API.Self() {
		// cache the reverse route and reply with the full path
		r.cache[req.Origin] = reverse(path)
		rep := rrep{Origin: req.Origin, Target: req.Target, Path: path}
		out := &netstack.Packet{
			UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
			Src: r.API.Self(), Dst: req.Origin, TTL: routing.DefaultTTL,
			Size: 24 + 4*len(path), Created: r.API.Now(), Payload: rep,
		}
		// unicast back along the accumulated path
		r.API.Send(path[len(path)-2], out)
		return
	}
	cp := req
	cp.Path = path
	pkt.Payload = cp
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	pkt.Size += 4
	r.API.Send(netstack.Broadcast, pkt)
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	self := r.API.Self()
	idx := indexOf(rep.Path, self)
	if idx < 0 {
		return
	}
	// learn the downstream sub-path
	r.cache[rep.Target] = append([]netstack.NodeID(nil), rep.Path[idx:]...)
	if self == rep.Origin {
		delete(r.trying, rep.Target)
		fresh, expired := r.pending.PopAll(rep.Target, r.API.Now())
		for _, p := range expired {
			r.API.Drop(p)
		}
		for _, p := range fresh {
			r.sendAlong(p, rep.Path)
		}
		return
	}
	if idx == 0 {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rep.Path[idx-1], pkt)
}

func (r *Router) handleRERR(pkt *netstack.Packet) {
	er, ok := pkt.Payload.(rerr)
	if !ok {
		return
	}
	r.truncateCaches(er.From, er.To)
}

// truncateCaches removes every cached path that uses the dead link.
func (r *Router) truncateCaches(from, to netstack.NodeID) {
	for dst, path := range r.cache {
		for i := 0; i+1 < len(path); i++ {
			if path[i] == from && path[i+1] == to {
				delete(r.cache, dst)
				break
			}
		}
	}
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	hdr, ok := pkt.Payload.(srcHeader)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	next := hdr.Next + 1
	if next >= len(hdr.Path) {
		r.API.Drop(pkt)
		return
	}
	nextHop := hdr.Path[next]
	// salvage check: is the next hop still a neighbor?
	if !r.API.HasNeighbor(nextHop) {
		r.API.Metrics().RouteBreaks++
		r.API.Drop(pkt)
		r.reportBreak(hdr.Path[0], r.API.Self(), nextHop)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	cp := hdr
	cp.Next = next
	pkt.Payload = cp
	r.API.Send(nextHop, pkt)
}

// reportBreak unicasts an RERR toward the origin and truncates own caches.
func (r *Router) reportBreak(origin, from, to netstack.NodeID) {
	r.truncateCaches(from, to)
	path, ok := r.cache[origin]
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRERR, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL, Size: 28,
		Created: r.API.Now(),
		Payload: rerr{From: from, To: to, Origin: origin},
	}
	if ok && len(path) >= 2 {
		r.API.Send(path[1], pkt)
		return
	}
	// fall back to a 1-hop broadcast so at least upstream neighbors learn
	pkt.TTL = 1
	r.API.Send(netstack.Broadcast, pkt)
}

// OnNeighborExpired implements netstack.Router.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	r.truncateCaches(r.API.Self(), id)
}

// OnSendFailed implements netstack.Router: truncate caches over the dead
// link and send the RERR the in-band salvage check would have sent.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if hdr, ok := pkt.Payload.(srcHeader); ok && pkt.Data && len(hdr.Path) > 0 {
		r.API.Metrics().RouteBreaks++
		r.reportBreak(hdr.Path[0], r.API.Self(), to)
	} else {
		r.truncateCaches(r.API.Self(), to)
	}
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// CacheLen exposes the cache size for tests.
func (r *Router) CacheLen() int { return len(r.cache) }

func contains(s []netstack.NodeID, id netstack.NodeID) bool {
	return indexOf(s, id) >= 0
}

func indexOf(s []netstack.NodeID, id netstack.NodeID) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}

func reverse(s []netstack.NodeID) []netstack.NodeID {
	out := make([]netstack.NodeID, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
