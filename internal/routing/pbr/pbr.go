// Package pbr implements Prediction-Based Routing (Namboodiri & Gao,
// marked PBR in the survey's mobility category, Sec. IV-B): route
// discovery carries the predicted lifetime of the path — the minimum of
// the per-link lifetimes solved from Eqn (4) — the destination selects the
// longest-lived candidate among the RREQs it collects, and the source
// preemptively rebuilds the route shortly before the predicted expiry, so
// data keeps flowing across what would otherwise be a visible break.
package pbr

import (
	"math"

	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithSelectionWindow sets how long the destination collects candidate
// RREQs before answering (default 0.25 s).
func WithSelectionWindow(d float64) Option {
	return func(r *Router) { r.window = d }
}

// WithRebuildMargin sets how many seconds before predicted route expiry
// the source re-discovers (default 1 s).
func WithRebuildMargin(d float64) Option {
	return func(r *Router) { r.rebuildMargin = d }
}

// Router is a per-node PBR instance.
type Router struct {
	netstack.Base
	table   *routing.Table
	pending *routing.PendingQueue
	dup     *routing.DupCache
	reqID   uint64
	trying  map[netstack.NodeID]int
	// destination-side candidate collection per (origin, reqID)
	collect map[routing.DupKey]*candidate

	window        float64
	rebuildMargin float64
}

type candidate struct {
	bestLifetime float64
	bestFrom     netstack.NodeID
	hops         int
	armed        bool
}

// rreq carries the accumulated path lifetime.
type rreq struct {
	Origin   netstack.NodeID
	ReqID    uint64
	Target   netstack.NodeID
	Lifetime float64 // min link lifetime so far
}

// rrep returns the selected path lifetime to the origin.
type rrep struct {
	Origin   netstack.NodeID
	Target   netstack.NodeID
	Lifetime float64
	Hops     int
}

// New returns a PBR router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{
			table:         routing.NewTable(),
			pending:       routing.NewPendingQueue(16, 10),
			dup:           routing.NewDupCache(15),
			trying:        make(map[netstack.NodeID]int),
			collect:       make(map[routing.DupKey]*candidate),
			window:        0.25,
			rebuildMargin: 1,
		}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "PBR" }

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: routing.DefaultTTL,
		Size: 52, Created: r.API.Now(),
		Payload: rreq{Origin: r.API.Self(), ReqID: r.reqID, Target: dst, Lifetime: link.Forever},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	dstCopy := dst
	r.API.After(1.0, func() { r.discoveryDeadline(dstCopy) })
}

func (r *Router) discoveryDeadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.table.Lookup(dst, r.API.Now()); ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	now := r.API.Now()
	// Fold in the lifetime of the link we just traversed (From → self),
	// as predicted by the reliability plane (absent neighbor = dead link).
	lifeFrom := 0.0
	if ls, okLs := r.API.LinkState(pkt.From); okLs {
		lifeFrom = ls.Lifetime
	}
	lt := routing.MinLifetime(req.Lifetime, lifeFrom)
	// Reverse route to origin, annotated with the predicted lifetime.
	r.mergeReverse(routing.Route{
		Dst: req.Origin, NextHop: pkt.From, Hops: pkt.Hops,
		Expiry: r.expiryFrom(now, lt), Valid: true, Lifetime: lt,
	})
	if req.Target == r.API.Self() {
		// Collect candidates for a window, then answer the best one.
		key := routing.DupKey{Origin: req.Origin, Seq: req.ReqID}
		c, okC := r.collect[key]
		if !okC {
			c = &candidate{bestLifetime: -1}
			r.collect[key] = c
		}
		if lt > c.bestLifetime {
			c.bestLifetime = lt
			c.bestFrom = pkt.From
			c.hops = pkt.Hops
		}
		if !c.armed {
			c.armed = true
			origin := req.Origin
			r.API.After(r.window, func() { r.answer(key, origin) })
		}
		return
	}
	// Intermediate: forward the first copy, and also strictly better ones
	// (bounded by the dup cache granularity: one improvement pass).
	key := routing.DupKey{Origin: req.Origin, Seq: req.ReqID}
	if r.dup.Seen(key, now) {
		return
	}
	cp := req
	cp.Lifetime = lt
	pkt.Payload = cp
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// answer sends the RREP for the best collected candidate.
func (r *Router) answer(key routing.DupKey, origin netstack.NodeID) {
	c, ok := r.collect[key]
	if !ok || c.bestLifetime < 0 {
		return
	}
	delete(r.collect, key)
	// route back through the best previous hop
	r.table.Upsert(routing.Route{
		Dst: origin, NextHop: c.bestFrom, Hops: c.hops,
		Expiry: r.expiryFrom(r.API.Now(), c.bestLifetime), Valid: true, Lifetime: c.bestLifetime,
	})
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL, Size: 48,
		Created: r.API.Now(),
		Payload: rrep{Origin: origin, Target: r.API.Self(), Lifetime: c.bestLifetime, Hops: 0},
	}
	r.API.Send(c.bestFrom, pkt)
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	now := r.API.Now()
	r.table.Upsert(routing.Route{
		Dst: rep.Target, NextHop: pkt.From, Hops: rep.Hops + pkt.Hops,
		Expiry: r.expiryFrom(now, rep.Lifetime), Valid: true, Lifetime: rep.Lifetime,
	})
	if rep.Origin == r.API.Self() {
		delete(r.trying, rep.Target)
		r.API.Metrics().OnPathLifetime(capLife(rep.Lifetime))
		r.flushPending(rep.Target)
		// Preemptive rebuild before predicted expiry: the PBR idea.
		if rep.Lifetime != link.Forever {
			lead := math.Max(rep.Lifetime-r.rebuildMargin, 0.1)
			target := rep.Target
			r.API.After(lead, func() {
				if r.pendingOrActive(target) {
					r.API.Metrics().RouteRepairs++
					r.startDiscovery(target)
				}
			})
		}
		return
	}
	rt, okRt := r.table.Lookup(rep.Origin, now)
	if !okRt {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rt.NextHop, pkt)
}

// pendingOrActive reports whether the route to target is still in use
// (valid route entry or queued data), gating preemptive rebuilds.
func (r *Router) pendingOrActive(target netstack.NodeID) bool {
	if r.pending.Waiting(target) {
		return true
	}
	_, ok := r.table.Lookup(target, r.API.Now())
	return ok
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// OnNeighborExpired implements netstack.Router.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	r.API.Metrics().RouteBreaks += len(broken)
}

// OnSendFailed implements netstack.Router.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// mergeReverse keeps the longer-lived of the competing reverse routes
// among those that do not increase the hop count: hop monotonicity keeps
// the reverse forwarding graph loop-free.
func (r *Router) mergeReverse(nr routing.Route) {
	cur, ok := r.table.Get(nr.Dst)
	if ok && cur.Valid && !(nr.Hops < cur.Hops || (nr.Hops == cur.Hops && nr.Lifetime > cur.Lifetime)) {
		return
	}
	r.table.Upsert(nr)
}

// expiryFrom converts a predicted lifetime into an absolute route expiry,
// capped to keep Forever representable.
func (r *Router) expiryFrom(now, lifetime float64) float64 {
	return now + capLife(lifetime)
}

func capLife(lifetime float64) float64 {
	const maxHold = 120
	if lifetime > maxHold {
		return maxHold
	}
	return lifetime
}

func (r *Router) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	rt, ok := r.table.Lookup(dst, r.API.Now())
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.API.Send(rt.NextHop, p)
	}
}

// Table exposes the route table for tests.
func (r *Router) Table() *routing.Table { return r.table }
