package pbr_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/pbr"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), pbr.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestPrefersLongLivedPath(t *testing.T) {
	// Two relays connect src and dst: relay S moves with the flow (stable
	// link), relay U cuts across (short-lived links). The destination
	// collects both RREQ copies and must answer via the stable relay.
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},      // 0: source
		{Pos: geom.V(200, 10), Vel: geom.V(20, 0)},   // 1: stable relay
		{Pos: geom.V(200, -10), Vel: geom.V(-19, 0)}, // 2: opposite-direction relay
		{Pos: geom.V(400, 0), Vel: geom.V(20, 0)},    // 3: destination
	}
	var routers []*pbr.Router
	factory := pbr.New()
	wrapped := func() netstack.Router {
		r := factory().(*pbr.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	w.AddFlow(ids[0], ids[3], 2, 1, 3, 256)
	if err := w.Run(7); err != nil {
		t.Fatal(err)
	}
	// destination's reverse route to the source must run through the
	// stable relay (node 1), not the crossing one
	rt, ok := routers[3].Table().Get(ids[0])
	if !ok || !rt.Valid {
		t.Fatal("destination has no reverse route")
	}
	if rt.NextHop != ids[1] {
		t.Fatalf("reverse route via %d, want stable relay %d", rt.NextHop, ids[1])
	}
	if w.Collector().DataDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPreemptiveRebuildBeforeExpiry(t *testing.T) {
	// destination slowly leaves range: predicted lifetime is finite, so
	// the source must re-discover BEFORE the break (repairs > 0) and keep
	// delivering through the rebuilt path while connectivity lasts
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(0, 0)},
		{Pos: geom.V(180, 0), Vel: geom.V(6, 0)},
		{Pos: geom.V(360, 0), Vel: geom.V(12, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, pbr.New())
	w.AddFlow(ids[0], ids[2], 1, 0.5, 20, 256)
	if err := w.Run(12); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.RouteRepairs == 0 {
		t.Fatal("no preemptive rebuilds with finite predicted lifetime")
	}
	if c.DataDelivered < 5 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	// the predicted path lifetime metric was recorded
	if c.MeanPathLifetime() <= 0 {
		t.Fatal("no path-lifetime predictions recorded")
	}
}

func TestOptionsApply(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 20),
		pbr.New(pbr.WithSelectionWindow(0.05), pbr.WithRebuildMargin(0.5)))
	routetest.MustDeliverAll(t, w, ids[0], ids[2], 3)
}
