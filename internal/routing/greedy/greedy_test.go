package greedy_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/greedy"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(6, 150, 20), greedy.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[5], 5)
}

func TestGreedyTakesLongestStride(t *testing.T) {
	// nodes at 0, 100, 200, 240 and dst at 480: from 0 the best stride is
	// 240 (in range, most progress). Expect 2 data hops (0→240→480), not 4.
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(100, 0)},
		{Pos: geom.V(200, 0)},
		{Pos: geom.V(240, 0)},
		{Pos: geom.V(480, 0)},
	}
	w, ids := routetest.World(t, 1, vehicles, greedy.New())
	w.AddFlow(ids[0], ids[4], 2, 1, 4, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 4 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	if got := c.MeanHops(); got > 2.01 {
		t.Fatalf("mean hops = %v, want 2 (longest stride)", got)
	}
}

func TestCarryAndForwardAcrossVoid(t *testing.T) {
	// a void: the carrier moves toward the destination and bridges it
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},  // source drives east
		{Pos: geom.V(600, 0), Vel: geom.V(0, 0)}, // destination parked beyond range
	}
	// the 350 m gap closes at 20 m/s ≈ 17.5 s: the carry budget must
	// cover the drive
	w, ids := routetest.World(t, 1, vehicles, greedy.New(greedy.WithCarryTimeout(25)))
	w.AddFlow(ids[0], ids[1], 1, 1, 2, 256)
	if err := w.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got != 2 {
		t.Fatalf("delivered = %d; store-carry-forward failed", got)
	}
	// delivery required carrying: delay must reflect the drive time
	if d := w.Collector().MeanDelay(); d < 5 {
		t.Fatalf("mean delay = %v s, too fast for a 350 m carry", d)
	}
}

func TestCarryTimeoutDropsStrandedPackets(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},                        // parked source
		{Pos: geom.V(10000, 0), Vel: geom.V(0, 0)}, // unreachable destination
	}
	w, ids := routetest.World(t, 1, vehicles, greedy.New(greedy.WithCarryTimeout(2)))
	w.AddFlow(ids[0], ids[1], 1, 1, 3, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatal("delivered the undeliverable")
	}
	if c.DataDropped != 3 {
		t.Fatalf("dropped = %d, want all after carry timeout", c.DataDropped)
	}
}

func TestDirectionBiasPicksAdvancingNeighbor(t *testing.T) {
	// two candidates with nearly equal progress; the one driving toward
	// the destination is preferred, measured by which relay forwards
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(0, 0)},      // 0: source
		{Pos: geom.V(200, 15), Vel: geom.V(-20, 0)}, // 1: retreating relay
		{Pos: geom.V(195, -15), Vel: geom.V(20, 0)}, // 2: advancing relay
		{Pos: geom.V(430, 0), Vel: geom.V(20, 0)},   // 3: destination
	}
	w, ids := routetest.World(t, 1, vehicles, greedy.New())
	w.AddFlow(ids[0], ids[3], 2, 0.5, 6, 256)
	if err := w.Run(8); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got < 5 {
		t.Fatalf("delivered = %d", got)
	}
}
