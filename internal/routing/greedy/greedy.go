// Package greedy implements the survey's geographic greedy forwarding
// (Gong et al. / Lochert et al., Sec. VI-B): each node knows its own
// position (GPS) and its neighbors' positions (beacons); data is forwarded
// to the neighbor that makes the most progress toward the destination.
// The direction of vehicle movement is taken into account — among
// near-best candidates the one moving with the flow is preferred, which
// "helps to select long-lived links". At a local maximum (no neighbor
// closer than self) the packet is carried until the topology opens up —
// the store-carry-forward escape VANET greedy variants use instead of
// planar perimeter mode, because vehicles move along roads.
package greedy

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
	"github.com/vanetlab/relroute/internal/sim"
)

// Option configures the router factory.
type Option func(*Router)

// WithCarryTimeout sets how long a packet may be carried waiting for
// progress before being dropped (default 8 s).
func WithCarryTimeout(d float64) Option {
	return func(r *Router) { r.carryTimeout = d }
}

// WithDirectionBias enables/disables the direction-aware tie-break
// (default on); the ablation benches toggle it.
func WithDirectionBias(on bool) Option {
	return func(r *Router) { r.directionBias = on }
}

// Router is a per-node greedy geographic router.
type Router struct {
	netstack.Base
	carried       []*carriedPacket
	carryTimeout  float64
	directionBias bool
	sweep         sim.TimerID
	started       bool
}

type carriedPacket struct {
	pkt   *netstack.Packet
	since float64
}

// New returns a greedy router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{carryTimeout: 8, directionBias: true}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Greedy" }

// Attach implements netstack.Router and starts the carry-buffer sweep.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	var tickFn func()
	tickFn = func() {
		r.retryCarried()
		r.API.After(0.5, tickFn)
	}
	api.After(0.5+api.Rand().Float64()*0.1, tickFn)
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	r.route(pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

// route forwards greedily or buffers the packet for carry-and-forward.
func (r *Router) route(pkt *netstack.Packet) {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return
	}
	dstPos, dstVel, ok := r.API.LookupPosition(pkt.Dst)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	_ = dstVel
	next, found := r.bestNextHop(dstPos)
	if found {
		r.API.Send(next, pkt)
		return
	}
	// local maximum: store, carry, forward later
	r.carried = append(r.carried, &carriedPacket{pkt: pkt, since: r.API.Now()})
}

// bestNextHop picks the neighbor with maximum progress toward dst,
// breaking near-ties (within 10% progress) toward same-direction
// neighbors.
func (r *Router) bestNextHop(dstPos geom.Vec2) (netstack.NodeID, bool) {
	self := r.API.Pos()
	myDist := self.Dist(dstPos)
	var best netstack.NodeID
	bestDist := myDist // must strictly improve
	found := false
	for _, nb := range r.API.Neighbors() {
		d := nb.Pos.Dist(dstPos)
		if d >= bestDist {
			continue
		}
		best = nb.ID
		bestDist = d
		found = true
	}
	if !found || !r.directionBias {
		return best, found
	}
	// direction-aware refinement: among candidates within 10% of the best
	// progress, prefer one moving toward the destination.
	threshold := bestDist + 0.1*(myDist-bestDist)
	bestScore := -math.MaxFloat64
	refined := best
	for _, nb := range r.API.Neighbors() {
		d := nb.Pos.Dist(dstPos)
		if d >= threshold || d >= myDist {
			continue
		}
		toward := dstPos.Sub(nb.Pos).Unit()
		score := nb.Vel.Dot(toward) // m/s of closing speed
		if score > bestScore {
			bestScore = score
			refined = nb.ID
		}
	}
	return refined, true
}

// OnSendFailed implements netstack.Router: blacklist the stale neighbor
// and re-route the packet — the GPSR-style reaction to a failed unicast.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

// retryCarried re-attempts forwarding for buffered packets and expires old
// ones.
func (r *Router) retryCarried() {
	if len(r.carried) == 0 {
		return
	}
	now := r.API.Now()
	keep := r.carried[:0]
	for _, c := range r.carried {
		if now-c.since > r.carryTimeout {
			r.API.Drop(c.pkt)
			continue
		}
		if r.API.HasNeighbor(c.pkt.Dst) {
			r.API.Send(c.pkt.Dst, c.pkt)
			continue
		}
		dstPos, _, ok := r.API.LookupPosition(c.pkt.Dst)
		if !ok {
			r.API.Drop(c.pkt)
			continue
		}
		if next, found := r.bestNextHop(dstPos); found {
			r.API.Send(next, c.pkt)
			continue
		}
		keep = append(keep, c)
	}
	r.carried = keep
}

// Carried exposes the carry-buffer length for tests.
func (r *Router) Carried() int { return len(r.carried) }
