// Package routing holds the building blocks shared by every protocol
// implementation: duplicate caches, distance-vector route tables, pending
// data queues, and sequence-number arithmetic. The concrete protocols live
// in the subpackages (one per surveyed protocol family) and in
// internal/core for the paper's own ticket-probing protocol.
package routing

import (
	"sort"

	"github.com/vanetlab/relroute/internal/netstack"
)

// DefaultTTL is the hop budget given to flooded control packets and data;
// VANET diameters in the experiments stay well below it.
const DefaultTTL = 32

// DupKey identifies a flooded packet instance: origin plus origin-local
// sequence number.
type DupKey struct {
	Origin netstack.NodeID
	Seq    uint64
}

// DupCache remembers recently seen flooded packets so they are forwarded
// at most once. Entries expire after TTL seconds to bound memory.
type DupCache struct {
	ttl     float64
	seen    map[DupKey]float64 // key → insertion time
	sweepAt float64
}

// NewDupCache returns a cache whose entries persist for ttl seconds.
func NewDupCache(ttl float64) *DupCache {
	if ttl <= 0 {
		ttl = 30
	}
	return &DupCache{ttl: ttl, seen: make(map[DupKey]float64)}
}

// Seen records the key and reports whether it was already present.
func (c *DupCache) Seen(k DupKey, now float64) bool {
	if now >= c.sweepAt {
		for key, at := range c.seen {
			if now-at > c.ttl {
				delete(c.seen, key)
			}
		}
		c.sweepAt = now + c.ttl
	}
	if _, ok := c.seen[k]; ok {
		return true
	}
	c.seen[k] = now
	return false
}

// Len returns the number of live entries (after lazily expiring on Seen).
func (c *DupCache) Len() int { return len(c.seen) }

// SeqNewer implements the circular sequence-number comparison used by
// AODV/DSDV: a is fresher than b. Equal numbers are not newer.
func SeqNewer(a, b uint32) bool {
	return int32(a-b) > 0
}

// Route is one distance-vector route entry.
type Route struct {
	Dst      netstack.NodeID
	NextHop  netstack.NodeID
	Hops     int
	Seq      uint32
	Expiry   float64 // sim time after which the route is stale; 0 = none
	Valid    bool
	Lifetime float64 // predicted remaining path lifetime (mobility protocols)

	// deadAt is the sim time the route died (0 while alive); the lazy
	// sweep ages dead entries against it. Invalidate and the Lookup
	// expiry path stamp it exactly; a route killed by direct mutation of
	// the Get pointer is stamped by the first sweep that observes it
	// dead, so it always gets the full grace window.
	deadAt float64
}

// DefaultRouteRetention is how long an invalidated or expired route entry
// is retained before the lazy sweep deletes it, in seconds. The retention
// mirrors AODV's DELETE_PERIOD: dead entries keep their sequence numbers
// visible to Get for a bounded grace window (loop freedom across repair
// races), then go away — without it, per-node tables grow for the whole
// run, worst under open-world churn where departed destinations would
// otherwise linger forever.
const DefaultRouteRetention = 30.0

// Table is a per-node route table. Dead entries (invalidated or expired)
// are garbage-collected by a lazy sweep driven off the time-bearing
// accessors (Lookup, Destinations): once an entry has been dead for the
// retention period it is deleted, bounding table growth under churn.
type Table struct {
	routes    map[netstack.NodeID]*Route
	retention float64
	// lastNow is the latest sim time observed through any accessor;
	// Invalidate (which takes no time argument) stamps death with it —
	// exact whenever the protocol consults the table at the same event
	// (they all do) and a safe under-estimate otherwise.
	lastNow float64
	sweepAt float64
}

// NewTable returns an empty route table with the default retention.
func NewTable() *Table {
	return &Table{routes: make(map[netstack.NodeID]*Route), retention: DefaultRouteRetention}
}

// SetRetention changes how long dead entries are retained before the lazy
// sweep removes them; zero or negative disables sweeping entirely (the
// pre-plane unbounded behaviour).
func (t *Table) SetRetention(seconds float64) { t.retention = seconds }

// observe advances the table's time bound and runs the lazy sweep at most
// once per retention period.
func (t *Table) observe(now float64) {
	if now > t.lastNow {
		t.lastNow = now
	}
	if t.retention <= 0 || now < t.sweepAt {
		return
	}
	t.sweepAt = now + t.retention
	for dst, r := range t.routes {
		if r.Valid && (r.Expiry == 0 || now <= r.Expiry) {
			r.deadAt = 0 // alive (possibly resurrected by direct mutation)
			continue
		}
		// The grace window runs from when the route died, not from its
		// last table write. If death was never stamped (a protocol set
		// Valid = false through the Get pointer), stamp it now: a route
		// that expired on its own died at Expiry, anything else is first
		// observed dead here.
		if r.deadAt == 0 {
			if r.Valid {
				r.deadAt = r.Expiry
			} else {
				r.deadAt = now
			}
		}
		if now-r.deadAt > t.retention {
			delete(t.routes, dst)
		}
	}
}

// Get returns the entry for dst, valid or not. Dead entries remain
// readable (sequence numbers, last hop counts) until the retention sweep
// collects them.
func (t *Table) Get(dst netstack.NodeID) (*Route, bool) {
	r, ok := t.routes[dst]
	return r, ok
}

// Lookup returns the entry only when it is valid and unexpired at now.
func (t *Table) Lookup(dst netstack.NodeID, now float64) (*Route, bool) {
	t.observe(now)
	r, ok := t.routes[dst]
	if !ok || !r.Valid {
		return nil, false
	}
	if r.Expiry > 0 && now > r.Expiry {
		r.Valid = false
		r.deadAt = r.Expiry
		return nil, false
	}
	return r, true
}

// Upsert inserts or replaces the entry for r.Dst and returns it.
func (t *Table) Upsert(r Route) *Route {
	cp := r
	cp.deadAt = 0
	if !cp.Valid {
		cp.deadAt = t.lastNow // inserted already-dead: grace starts now
	}
	t.routes[r.Dst] = &cp
	return &cp
}

// Remove deletes the entry for dst immediately, if present.
func (t *Table) Remove(dst netstack.NodeID) { delete(t.routes, dst) }

// Invalidate marks the route to dst broken; it reports whether a valid
// route existed.
func (t *Table) Invalidate(dst netstack.NodeID) bool {
	r, ok := t.routes[dst]
	if !ok || !r.Valid {
		return false
	}
	r.Valid = false
	r.deadAt = t.lastNow
	return true
}

// InvalidateVia invalidates every valid route whose next hop is via and
// returns the affected destinations (sorted, deterministic).
func (t *Table) InvalidateVia(via netstack.NodeID) []netstack.NodeID {
	var out []netstack.NodeID
	for dst, r := range t.routes {
		if r.Valid && r.NextHop == via {
			r.Valid = false
			r.deadAt = t.lastNow
			out = append(out, dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Destinations returns all destinations with valid routes (sorted).
func (t *Table) Destinations(now float64) []netstack.NodeID {
	t.observe(now)
	var out []netstack.NodeID
	for dst, r := range t.routes {
		if r.Valid && (r.Expiry == 0 || now <= r.Expiry) {
			out = append(out, dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored entries — valid routes plus dead ones
// still inside the retention window. Use LenValid for the routable count.
func (t *Table) Len() int { return len(t.routes) }

// LenValid returns the number of valid, unexpired routes at now (without
// mutating any entry).
func (t *Table) LenValid(now float64) int {
	n := 0
	for _, r := range t.routes {
		if r.Valid && (r.Expiry == 0 || now <= r.Expiry) {
			n++
		}
	}
	return n
}

// PendingQueue buffers data packets awaiting a route, per destination,
// dropping the oldest beyond the cap and expiring packets after maxWait.
type PendingQueue struct {
	cap     int
	maxWait float64
	byDst   map[netstack.NodeID][]*netstack.Packet
}

// NewPendingQueue returns a queue holding at most capPerDst packets per
// destination for at most maxWait seconds.
func NewPendingQueue(capPerDst int, maxWait float64) *PendingQueue {
	if capPerDst <= 0 {
		capPerDst = 16
	}
	if maxWait <= 0 {
		maxWait = 10
	}
	return &PendingQueue{cap: capPerDst, maxWait: maxWait, byDst: make(map[netstack.NodeID][]*netstack.Packet)}
}

// Push buffers pkt for dst. When the per-destination cap is reached the
// oldest buffered packet is evicted and returned; the queue keeps no
// reference to it.
//
// Contract: the caller owns the evicted packet and must terminate its
// journey — Drop it (so the loss is counted) and, if the caller owns it
// exclusively, optionally Release it back to the pool. Ignoring the
// return value leaks the packet from the accounting: it was accepted from
// the application but silently vanishes from both the delivered and
// dropped columns.
func (q *PendingQueue) Push(dst netstack.NodeID, pkt *netstack.Packet) (evicted *netstack.Packet) {
	list := q.byDst[dst]
	if len(list) >= q.cap {
		evicted = list[0]
		list = list[1:]
	}
	q.byDst[dst] = append(list, pkt)
	return evicted
}

// PopAll removes and returns every buffered packet for dst that has not
// exceeded maxWait by now; expired ones are returned separately.
func (q *PendingQueue) PopAll(dst netstack.NodeID, now float64) (fresh, expired []*netstack.Packet) {
	list := q.byDst[dst]
	delete(q.byDst, dst)
	for _, p := range list {
		if now-p.Created > q.maxWait {
			expired = append(expired, p)
		} else {
			fresh = append(fresh, p)
		}
	}
	return fresh, expired
}

// Waiting reports whether packets are buffered for dst.
func (q *PendingQueue) Waiting(dst netstack.NodeID) bool { return len(q.byDst[dst]) > 0 }

// Len returns the total number of buffered packets.
func (q *PendingQueue) Len() int {
	n := 0
	for _, l := range q.byDst {
		n += len(l)
	}
	return n
}
