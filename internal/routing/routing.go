// Package routing holds the building blocks shared by every protocol
// implementation: duplicate caches, distance-vector route tables, pending
// data queues, and sequence-number arithmetic. The concrete protocols live
// in the subpackages (one per surveyed protocol family) and in
// internal/core for the paper's own ticket-probing protocol.
package routing

import (
	"sort"

	"github.com/vanetlab/relroute/internal/netstack"
)

// DefaultTTL is the hop budget given to flooded control packets and data;
// VANET diameters in the experiments stay well below it.
const DefaultTTL = 32

// DupKey identifies a flooded packet instance: origin plus origin-local
// sequence number.
type DupKey struct {
	Origin netstack.NodeID
	Seq    uint64
}

// DupCache remembers recently seen flooded packets so they are forwarded
// at most once. Entries expire after TTL seconds to bound memory.
type DupCache struct {
	ttl     float64
	seen    map[DupKey]float64 // key → insertion time
	sweepAt float64
}

// NewDupCache returns a cache whose entries persist for ttl seconds.
func NewDupCache(ttl float64) *DupCache {
	if ttl <= 0 {
		ttl = 30
	}
	return &DupCache{ttl: ttl, seen: make(map[DupKey]float64)}
}

// Seen records the key and reports whether it was already present.
func (c *DupCache) Seen(k DupKey, now float64) bool {
	if now >= c.sweepAt {
		for key, at := range c.seen {
			if now-at > c.ttl {
				delete(c.seen, key)
			}
		}
		c.sweepAt = now + c.ttl
	}
	if _, ok := c.seen[k]; ok {
		return true
	}
	c.seen[k] = now
	return false
}

// Len returns the number of live entries (after lazily expiring on Seen).
func (c *DupCache) Len() int { return len(c.seen) }

// SeqNewer implements the circular sequence-number comparison used by
// AODV/DSDV: a is fresher than b. Equal numbers are not newer.
func SeqNewer(a, b uint32) bool {
	return int32(a-b) > 0
}

// Route is one distance-vector route entry.
type Route struct {
	Dst      netstack.NodeID
	NextHop  netstack.NodeID
	Hops     int
	Seq      uint32
	Expiry   float64 // sim time after which the route is stale; 0 = none
	Valid    bool
	Lifetime float64 // predicted remaining path lifetime (mobility protocols)
}

// Table is a per-node route table.
type Table struct {
	routes map[netstack.NodeID]*Route
}

// NewTable returns an empty route table.
func NewTable() *Table {
	return &Table{routes: make(map[netstack.NodeID]*Route)}
}

// Get returns the entry for dst, valid or not.
func (t *Table) Get(dst netstack.NodeID) (*Route, bool) {
	r, ok := t.routes[dst]
	return r, ok
}

// Lookup returns the entry only when it is valid and unexpired at now.
func (t *Table) Lookup(dst netstack.NodeID, now float64) (*Route, bool) {
	r, ok := t.routes[dst]
	if !ok || !r.Valid {
		return nil, false
	}
	if r.Expiry > 0 && now > r.Expiry {
		r.Valid = false
		return nil, false
	}
	return r, true
}

// Upsert inserts or replaces the entry for r.Dst and returns it.
func (t *Table) Upsert(r Route) *Route {
	cp := r
	t.routes[r.Dst] = &cp
	return &cp
}

// Invalidate marks the route to dst broken; it reports whether a valid
// route existed.
func (t *Table) Invalidate(dst netstack.NodeID) bool {
	r, ok := t.routes[dst]
	if !ok || !r.Valid {
		return false
	}
	r.Valid = false
	return true
}

// InvalidateVia invalidates every valid route whose next hop is via and
// returns the affected destinations (sorted, deterministic).
func (t *Table) InvalidateVia(via netstack.NodeID) []netstack.NodeID {
	var out []netstack.NodeID
	for dst, r := range t.routes {
		if r.Valid && r.NextHop == via {
			r.Valid = false
			out = append(out, dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Destinations returns all destinations with valid routes (sorted).
func (t *Table) Destinations(now float64) []netstack.NodeID {
	var out []netstack.NodeID
	for dst, r := range t.routes {
		if r.Valid && (r.Expiry == 0 || now <= r.Expiry) {
			out = append(out, dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of entries (including invalid ones).
func (t *Table) Len() int { return len(t.routes) }

// PendingQueue buffers data packets awaiting a route, per destination,
// dropping the oldest beyond the cap and expiring packets after maxWait.
type PendingQueue struct {
	cap     int
	maxWait float64
	byDst   map[netstack.NodeID][]*netstack.Packet
}

// NewPendingQueue returns a queue holding at most capPerDst packets per
// destination for at most maxWait seconds.
func NewPendingQueue(capPerDst int, maxWait float64) *PendingQueue {
	if capPerDst <= 0 {
		capPerDst = 16
	}
	if maxWait <= 0 {
		maxWait = 10
	}
	return &PendingQueue{cap: capPerDst, maxWait: maxWait, byDst: make(map[netstack.NodeID][]*netstack.Packet)}
}

// Push buffers pkt for dst. It returns the packet evicted to make room, if
// any.
func (q *PendingQueue) Push(dst netstack.NodeID, pkt *netstack.Packet) (evicted *netstack.Packet) {
	list := q.byDst[dst]
	if len(list) >= q.cap {
		evicted = list[0]
		list = list[1:]
	}
	q.byDst[dst] = append(list, pkt)
	return evicted
}

// PopAll removes and returns every buffered packet for dst that has not
// exceeded maxWait by now; expired ones are returned separately.
func (q *PendingQueue) PopAll(dst netstack.NodeID, now float64) (fresh, expired []*netstack.Packet) {
	list := q.byDst[dst]
	delete(q.byDst, dst)
	for _, p := range list {
		if now-p.Created > q.maxWait {
			expired = append(expired, p)
		} else {
			fresh = append(fresh, p)
		}
	}
	return fresh, expired
}

// Waiting reports whether packets are buffered for dst.
func (q *PendingQueue) Waiting(dst netstack.NodeID) bool { return len(q.byDst[dst]) > 0 }

// Len returns the total number of buffered packets.
func (q *PendingQueue) Len() int {
	n := 0
	for _, l := range q.byDst {
		n += len(l)
	}
	return n
}
