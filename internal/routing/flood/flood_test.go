package flood_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/routing/flood"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestFloodingDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(6, 150, 20), flood.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[5], 5)
}

func TestFloodingDedupBoundsTransmissions(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 100, 20), flood.New())
	w.AddFlow(ids[0], ids[4], 1, 10, 1, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// one packet: the origin transmits once and at most every other node
	// rebroadcasts once (dst does not) — so ≤ 5 transmissions, not an
	// endless echo
	if c.MACTransmits > 5 {
		t.Fatalf("transmissions = %d; duplicate suppression failed", c.MACTransmits)
	}
	if c.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
}

func TestFloodingDoesNotUseBeacons(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(3, 100, 20), flood.New())
	w.AddFlow(ids[0], ids[2], 1, 1, 1, 256)
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().Control["HELLO"]; got != 0 {
		t.Fatalf("flooding charged %d beacons", got)
	}
}

func TestFloodingTTLLimitsReach(t *testing.T) {
	// chain longer than the TTL budget: far node must NOT receive when
	// TTL runs out first. DefaultTTL is 32, chain of 36 hops needs gaps
	// forcing single-hop progress.
	vehicles := routetest.Chain(36, 240, 0)
	w, ids := routetest.World(t, 1, vehicles, flood.New())
	delivered := routetest.RunFlow(t, w, ids[0], ids[35], 1, 1, 30, 1)
	if delivered != 0 {
		t.Fatalf("delivered across %d hops with TTL 32", 35)
	}
}

func TestBiswasDeliversAndAcks(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), flood.NewBiswas())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 3)
}

func TestBiswasRetransmitsWithoutAck(t *testing.T) {
	// an isolated pair: the destination receives and does NOT rebroadcast
	// (unicast semantics), so the source hears no implicit ack and
	// retransmits up to its budget
	w, ids := routetest.World(t, 1, routetest.Chain(2, 100, 0), flood.NewBiswas())
	w.AddFlow(ids[0], ids[1], 1, 10, 1, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// 1 original + 3 retries
	if c.MACTransmits != 4 {
		t.Fatalf("transmissions = %d, want 1+3 retries", c.MACTransmits)
	}
	if c.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
}

func TestBiswasAckSuppressesRetransmit(t *testing.T) {
	// three in a row: the middle relay's rebroadcast is the implicit ack
	// for the source, so the source must not retransmit
	w, ids := routetest.World(t, 1, routetest.Chain(3, 150, 0), flood.NewBiswas())
	w.AddFlow(ids[0], ids[2], 1, 10, 1, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	// source tx + relay tx; destination keeps quiet; and since the
	// relay's ack also reaches the source, no retries anywhere — but the
	// RELAY itself hears no copy from ahead and retries up to 3 times.
	if c.MACTransmits > 5 {
		t.Fatalf("transmissions = %d", c.MACTransmits)
	}
	if c.DataDelivered != 1 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
}

func TestFloodingBroadcastStormSignature(t *testing.T) {
	// duplicate ratio and collisions must grow with density: run 10 and
	// 40 vehicles in the same area
	run := func(n int) (collRate float64) {
		vehicles := make([]routetest.Vehicle, n)
		for i := range vehicles {
			vehicles[i] = routetest.Vehicle{
				Pos: geom.V(float64(i%10)*40, float64(i/10)*40),
				Vel: geom.V(10, 0),
			}
		}
		w, ids := routetest.World(t, 1, vehicles, flood.New())
		w.AddFlow(ids[0], ids[n-1], 1, 0.2, 20, 512)
		if err := w.Run(10); err != nil {
			t.Fatal(err)
		}
		return w.Collector().CollisionRate()
	}
	sparse := run(10)
	dense := run(40)
	if dense <= sparse {
		t.Fatalf("collision rate did not grow with density: %v → %v", sparse, dense)
	}
}
