// Package flood implements the survey's connectivity-based baseline
// (Sec. III): pure flooding, in which every node rebroadcasts each data
// packet it sees for the first time. It is "easy to implement" and "a good
// solution for traffic notification applications", but exhibits the
// broadcast storm problem as density grows — the behaviour experiment E-A1
// measures. The package also provides Biswas's acknowledged variant, which
// treats overhearing its own rebroadcast from another node as an implicit
// acknowledgment and retransmits until acknowledged.
package flood

import (
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
	"github.com/vanetlab/relroute/internal/sim"
)

// Router is the pure flooding router.
type Router struct {
	netstack.Base
	dup *routing.DupCache
}

// New returns a flooding router factory.
func New() netstack.RouterFactory {
	return func() netstack.Router {
		return &Router{dup: routing.NewDupCache(30)}
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "Flooding" }

// NeedsBeacons implements netstack.Router: flooding needs no neighbor
// state, which is exactly why Table I calls it "simple".
func (r *Router) NeedsBeacons() bool { return false }

// Originate implements netstack.Router: data is simply broadcast.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
}

// HandlePacket implements netstack.Router: deliver if addressed to us,
// rebroadcast the first copy otherwise. Every terminal path hands the
// received copy back to the stack's pool — in a broadcast storm the
// overwhelming majority of receptions are duplicates, so recycling them
// is what keeps the flood allocation-free in steady state.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		r.API.Release(pkt)
		return
	}
	if r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, r.API.Now()) {
		r.API.Release(pkt)
		return
	}
	if pkt.Dst == r.API.Self() || pkt.Dst == netstack.Broadcast {
		r.API.Deliver(pkt)
		if pkt.Dst == r.API.Self() {
			// unicast semantics: the destination does not rebroadcast
			r.API.Release(pkt)
			return
		}
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		r.API.Release(pkt)
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}

// Biswas is the acknowledged flooding router of Biswas et al. [9]: after
// rebroadcasting, a node listens for the same packet from another node; if
// no copy is overheard within AckTimeout it rebroadcasts again, up to
// MaxRetries times. ("If the vehicle does not receive the acknowledgment,
// it will periodically rebroadcast the packet until the acknowledgment is
// received.")
type Biswas struct {
	netstack.Base
	dup   *routing.DupCache
	retry map[uint64]*retryState
	// AckTimeout is the implicit-ack wait; zero means 0.5 s.
	AckTimeout float64
	// MaxRetries bounds retransmissions; zero means 3.
	MaxRetries int
}

type retryState struct {
	timer sim.TimerID
	tries int
	pkt   *netstack.Packet
}

// NewBiswas returns a factory for the acknowledged flooding router.
func NewBiswas() netstack.RouterFactory {
	return func() netstack.Router {
		return &Biswas{
			dup:   routing.NewDupCache(30),
			retry: make(map[uint64]*retryState),
		}
	}
}

// Name implements netstack.Router.
func (b *Biswas) Name() string { return "Biswas" }

// NeedsBeacons implements netstack.Router: implicit-ack flooding needs no
// neighbor state.
func (b *Biswas) NeedsBeacons() bool { return false }

func (b *Biswas) ackTimeout() float64 {
	if b.AckTimeout <= 0 {
		return 0.5
	}
	return b.AckTimeout
}

func (b *Biswas) maxRetries() int {
	if b.MaxRetries <= 0 {
		return 3
	}
	return b.MaxRetries
}

// Originate implements netstack.Router.
func (b *Biswas) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: b.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: b.Name(),
		Src: b.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: b.API.Now(),
	}
	b.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, b.API.Now())
	b.broadcastWithAck(pkt)
}

// HandlePacket implements netstack.Router.
func (b *Biswas) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	// Any overheard copy acknowledges our pending rebroadcast.
	if st, ok := b.retry[pkt.UID]; ok {
		b.API.Cancel(st.timer)
		delete(b.retry, pkt.UID)
	}
	if b.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: pkt.UID}, b.API.Now()) {
		return
	}
	if pkt.Dst == b.API.Self() || pkt.Dst == netstack.Broadcast {
		b.API.Deliver(pkt)
		if pkt.Dst == b.API.Self() {
			return
		}
	}
	pkt.TTL--
	if pkt.Expired() {
		b.API.Drop(pkt)
		return
	}
	b.broadcastWithAck(pkt)
}

// broadcastWithAck transmits and arms the implicit-ack retry timer.
func (b *Biswas) broadcastWithAck(pkt *netstack.Packet) {
	b.API.Send(netstack.Broadcast, pkt)
	st := &retryState{pkt: pkt}
	b.retry[pkt.UID] = st
	var arm func()
	arm = func() {
		st.timer = b.API.After(b.ackTimeout(), func() {
			if st.tries >= b.maxRetries() {
				delete(b.retry, pkt.UID)
				return
			}
			st.tries++
			b.API.Send(netstack.Broadcast, st.pkt.Clone())
			arm()
		})
	}
	arm()
}
