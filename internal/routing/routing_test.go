package routing

import (
	"testing"

	"github.com/vanetlab/relroute/internal/netstack"
)

func TestDupCache(t *testing.T) {
	c := NewDupCache(10)
	k := DupKey{Origin: 1, Seq: 7}
	if c.Seen(k, 0) {
		t.Fatal("fresh key reported seen")
	}
	if !c.Seen(k, 1) {
		t.Fatal("repeated key not seen")
	}
	if c.Seen(DupKey{Origin: 2, Seq: 7}, 1) {
		t.Fatal("different origin collided")
	}
	if c.Seen(DupKey{Origin: 1, Seq: 8}, 1) {
		t.Fatal("different seq collided")
	}
}

func TestDupCacheExpiry(t *testing.T) {
	c := NewDupCache(5)
	c.Seen(DupKey{Origin: 1, Seq: 1}, 0)
	// after ttl passes and a sweep triggers, the key is forgotten
	if c.Seen(DupKey{Origin: 9, Seq: 9}, 11) {
		t.Fatal("sweep-trigger key reported seen")
	}
	if c.Seen(DupKey{Origin: 1, Seq: 1}, 11.5) {
		t.Fatal("expired key still present after sweep")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSeqNewer(t *testing.T) {
	tests := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{5, 5, false},
		{0, 4294967295, true}, // wraparound: 0 is fresher than max
		{4294967295, 0, false},
	}
	for _, tc := range tests {
		if got := SeqNewer(tc.a, tc.b); got != tc.want {
			t.Errorf("SeqNewer(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTableLookup(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup(5, 0); ok {
		t.Fatal("lookup on empty table")
	}
	tb.Upsert(Route{Dst: 5, NextHop: 2, Hops: 3, Expiry: 10, Valid: true})
	rt, ok := tb.Lookup(5, 5)
	if !ok || rt.NextHop != 2 {
		t.Fatalf("lookup = %+v, %v", rt, ok)
	}
	// expired routes turn invalid on lookup
	if _, ok := tb.Lookup(5, 11); ok {
		t.Fatal("expired route returned")
	}
	if rt, _ := tb.Get(5); rt.Valid {
		t.Fatal("expired route still marked valid")
	}
	// zero expiry means no expiry
	tb.Upsert(Route{Dst: 6, NextHop: 2, Valid: true})
	if _, ok := tb.Lookup(6, 1e9); !ok {
		t.Fatal("no-expiry route expired")
	}
}

func TestTableInvalidate(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Route{Dst: 1, NextHop: 10, Valid: true})
	tb.Upsert(Route{Dst: 2, NextHop: 10, Valid: true})
	tb.Upsert(Route{Dst: 3, NextHop: 11, Valid: true})
	if !tb.Invalidate(1) {
		t.Fatal("invalidate reported false")
	}
	if tb.Invalidate(1) {
		t.Fatal("double invalidate reported true")
	}
	broken := tb.InvalidateVia(10)
	if len(broken) != 1 || broken[0] != 2 {
		t.Fatalf("InvalidateVia = %v", broken)
	}
	dsts := tb.Destinations(0)
	if len(dsts) != 1 || dsts[0] != 3 {
		t.Fatalf("destinations = %v", dsts)
	}
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestPendingQueue(t *testing.T) {
	q := NewPendingQueue(2, 5)
	mk := func(created float64) *netstack.Packet {
		return &netstack.Packet{Created: created}
	}
	if ev := q.Push(1, mk(0)); ev != nil {
		t.Fatal("eviction on first push")
	}
	q.Push(1, mk(1))
	ev := q.Push(1, mk(2)) // cap 2: oldest evicted
	if ev == nil || ev.Created != 0 {
		t.Fatalf("evicted = %+v", ev)
	}
	if !q.Waiting(1) || q.Waiting(2) {
		t.Fatal("Waiting wrong")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	fresh, expired := q.PopAll(1, 6.5)
	if len(fresh) != 1 || len(expired) != 1 {
		t.Fatalf("fresh=%d expired=%d", len(fresh), len(expired))
	}
	if q.Waiting(1) {
		t.Fatal("queue not drained")
	}
}
