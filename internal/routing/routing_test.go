package routing

import (
	"testing"

	"github.com/vanetlab/relroute/internal/netstack"
)

func TestDupCache(t *testing.T) {
	c := NewDupCache(10)
	k := DupKey{Origin: 1, Seq: 7}
	if c.Seen(k, 0) {
		t.Fatal("fresh key reported seen")
	}
	if !c.Seen(k, 1) {
		t.Fatal("repeated key not seen")
	}
	if c.Seen(DupKey{Origin: 2, Seq: 7}, 1) {
		t.Fatal("different origin collided")
	}
	if c.Seen(DupKey{Origin: 1, Seq: 8}, 1) {
		t.Fatal("different seq collided")
	}
}

func TestDupCacheExpiry(t *testing.T) {
	c := NewDupCache(5)
	c.Seen(DupKey{Origin: 1, Seq: 1}, 0)
	// after ttl passes and a sweep triggers, the key is forgotten
	if c.Seen(DupKey{Origin: 9, Seq: 9}, 11) {
		t.Fatal("sweep-trigger key reported seen")
	}
	if c.Seen(DupKey{Origin: 1, Seq: 1}, 11.5) {
		t.Fatal("expired key still present after sweep")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSeqNewer(t *testing.T) {
	const max32 = 4294967295
	tests := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{5, 5, false},
		{0, max32, true}, // wraparound: 0 is fresher than max
		{max32, 0, false},
		// the circular comparison holds across the whole wrap window:
		// anything within half the space ahead is newer
		{100, max32 - 100, true},
		{max32 - 100, 100, false},
		{max32, max32 - 1, true},
		{max32 - 1, max32, false},
		{0, 0, false},
		{max32, max32, false},
		// exactly half the space apart: int32(a−b) is MinInt32 (negative),
		// so neither direction reports newer-than in that direction
		{1 << 31, 0, false},
		// ... and one past half flips the comparison
		{1<<31 + 1, 0, false},
		{0, 1<<31 + 1, true},
	}
	for _, tc := range tests {
		if got := SeqNewer(tc.a, tc.b); got != tc.want {
			t.Errorf("SeqNewer(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// antisymmetry everywhere except the ambiguous half-distance point
	for _, d := range []uint32{1, 2, 1000, 1<<31 - 1} {
		a, b := uint32(7)+d, uint32(7)
		if !SeqNewer(a, b) || SeqNewer(b, a) {
			t.Errorf("antisymmetry broken at distance %d", d)
		}
	}
}

func TestTableLookup(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup(5, 0); ok {
		t.Fatal("lookup on empty table")
	}
	tb.Upsert(Route{Dst: 5, NextHop: 2, Hops: 3, Expiry: 10, Valid: true})
	rt, ok := tb.Lookup(5, 5)
	if !ok || rt.NextHop != 2 {
		t.Fatalf("lookup = %+v, %v", rt, ok)
	}
	// expired routes turn invalid on lookup
	if _, ok := tb.Lookup(5, 11); ok {
		t.Fatal("expired route returned")
	}
	if rt, _ := tb.Get(5); rt.Valid {
		t.Fatal("expired route still marked valid")
	}
	// zero expiry means no expiry
	tb.Upsert(Route{Dst: 6, NextHop: 2, Valid: true})
	if _, ok := tb.Lookup(6, 1e9); !ok {
		t.Fatal("no-expiry route expired")
	}
}

func TestTableLookupExpiryEdges(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Route{Dst: 1, NextHop: 2, Expiry: 10, Valid: true})
	// Expiry == now is inclusive: the route is still usable at the instant
	// it expires (Lookup invalidates only strictly past it)
	if _, ok := tb.Lookup(1, 10); !ok {
		t.Fatal("route invalid at Expiry == now")
	}
	if rt, _ := tb.Get(1); !rt.Valid {
		t.Fatal("boundary lookup invalidated the route")
	}
	// the first instant strictly past Expiry kills it
	if _, ok := tb.Lookup(1, 10.000001); ok {
		t.Fatal("route survived past Expiry")
	}
	if rt, _ := tb.Get(1); rt.Valid {
		t.Fatal("expired route still marked valid")
	}
	// Expiry == 0 never expires, even at enormous now
	tb.Upsert(Route{Dst: 2, NextHop: 3, Expiry: 0, Valid: true})
	for _, now := range []float64{0, 1, 1e12} {
		if _, ok := tb.Lookup(2, now); !ok {
			t.Fatalf("zero-expiry route expired at now=%g", now)
		}
	}
	// an invalid route is never returned regardless of expiry fields
	tb.Upsert(Route{Dst: 3, NextHop: 4, Expiry: 0, Valid: false})
	if _, ok := tb.Lookup(3, 0); ok {
		t.Fatal("invalid route returned")
	}
}

// TestTableSweepBoundsGrowth is the churn regression: destinations that
// keep appearing and dying (the open-world pattern — departed vehicles
// linger as invalidated routes) must not grow the table forever. The lazy
// sweep driven by Lookup deletes entries dead longer than the retention.
func TestTableSweepBoundsGrowth(t *testing.T) {
	tb := NewTable()
	tb.SetRetention(30)
	now := 0.0
	for i := 0; i < 1000; i++ {
		dst := netstack.NodeID(i)
		tb.Upsert(Route{Dst: dst, NextHop: 1, Expiry: now + 5, Valid: true})
		tb.Invalidate(dst) // the destination departed
		now += 1
		tb.Lookup(dst, now) // any time-bearing access drives the sweep
	}
	// 1000 destinations died over 1000 s; with 30 s retention and a sweep
	// per retention period, the table holds at most ~2 windows of dead
	// entries at any moment
	if tb.Len() > 100 {
		t.Fatalf("table grew to %d entries; sweep not collecting", tb.Len())
	}
	if got := tb.LenValid(now); got != 0 {
		t.Fatalf("LenValid = %d, want 0 (everything invalidated)", got)
	}
}

func TestTableSweepSparesLiveAndRecentRoutes(t *testing.T) {
	tb := NewTable()
	tb.SetRetention(10)
	tb.Lookup(0, 0)                                                // establish the time bound
	tb.Upsert(Route{Dst: 1, NextHop: 2, Valid: true})              // alive forever
	tb.Upsert(Route{Dst: 2, NextHop: 2, Expiry: 100, Valid: true}) // alive until 100
	tb.Upsert(Route{Dst: 3, NextHop: 2, Valid: true})
	tb.Lookup(0, 50)
	tb.Invalidate(3) // dies at 50
	// at 55 the sweep may run, but dst 3 has only been dead 5 s
	tb.Lookup(0, 55)
	if tb.Len() != 3 {
		t.Fatalf("recently dead entry collected early: len=%d", tb.Len())
	}
	// well past retention: dst 3 goes, the two live routes stay
	tb.Lookup(0, 75)
	tb.Lookup(0, 90)
	if _, ok := tb.Get(3); ok {
		t.Fatal("dead entry outlived retention")
	}
	if _, ok := tb.Get(1); !ok {
		t.Fatal("no-expiry live route collected")
	}
	if _, ok := tb.Get(2); !ok {
		t.Fatal("live route collected")
	}
	// retention <= 0 disables sweeping entirely
	tb2 := NewTable()
	tb2.SetRetention(0)
	tb2.Upsert(Route{Dst: 1, NextHop: 2, Valid: true})
	tb2.Invalidate(1)
	tb2.Lookup(0, 1e6)
	if tb2.Len() != 1 {
		t.Fatal("disabled sweep still collected")
	}
}

// TestTableSweepGraceFromDeath pins the DELETE_PERIOD semantics: the
// retention window of a naturally-expired route runs from its Expiry (the
// moment it died), not from its last table write — an entry that sat
// untouched while alive still gets the full grace window dead.
func TestTableSweepGraceFromDeath(t *testing.T) {
	tb := NewTable()
	tb.SetRetention(30)
	tb.Lookup(0, 0)                                               // arm the sweep clock
	tb.Upsert(Route{Dst: 1, NextHop: 2, Expiry: 40, Valid: true}) // touched at 0
	// dead only 5 s at the t=45 sweep: must survive
	tb.Lookup(0, 45)
	if _, ok := tb.Get(1); !ok {
		t.Fatal("expired route collected with zero grace")
	}
	// well past Expiry+retention: collected
	tb.Lookup(0, 101)
	if _, ok := tb.Get(1); ok {
		t.Fatal("dead entry outlived Expiry + retention")
	}
}

// TestTableSweepGraceAfterDirectMutation covers the DSDV/AODV pattern of
// killing a route by writing Valid = false through the Get pointer: death
// is stamped by the first sweep that observes it, so the entry still gets
// a full grace window measured from that observation.
func TestTableSweepGraceAfterDirectMutation(t *testing.T) {
	tb := NewTable()
	tb.SetRetention(30)
	tb.Lookup(0, 0) // arm the sweep clock
	tb.Upsert(Route{Dst: 1, NextHop: 2, Seq: 7, Valid: true})
	rt, _ := tb.Get(1)
	// protocol kills the route long after its last table write
	tb.Lookup(0, 200)
	rt.Valid = false
	// first sweep past the kill observes the death; the entry must
	// survive it with its Seq intact
	tb.Lookup(0, 240)
	if got, ok := tb.Get(1); !ok || got.Seq != 7 {
		t.Fatal("directly-killed route collected with zero grace")
	}
	// a full retention after the observing sweep it is collected
	tb.Lookup(0, 280)
	tb.Lookup(0, 320)
	if _, ok := tb.Get(1); ok {
		t.Fatal("dead entry outlived its grace window")
	}
}

func TestTableRemove(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Route{Dst: 5, NextHop: 1, Valid: true})
	tb.Remove(5)
	if _, ok := tb.Get(5); ok || tb.Len() != 0 {
		t.Fatal("Remove left the entry behind")
	}
	tb.Remove(5) // removing a missing entry is a no-op
}

func TestTableInvalidate(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Route{Dst: 1, NextHop: 10, Valid: true})
	tb.Upsert(Route{Dst: 2, NextHop: 10, Valid: true})
	tb.Upsert(Route{Dst: 3, NextHop: 11, Valid: true})
	if !tb.Invalidate(1) {
		t.Fatal("invalidate reported false")
	}
	if tb.Invalidate(1) {
		t.Fatal("double invalidate reported true")
	}
	broken := tb.InvalidateVia(10)
	if len(broken) != 1 || broken[0] != 2 {
		t.Fatalf("InvalidateVia = %v", broken)
	}
	dsts := tb.Destinations(0)
	if len(dsts) != 1 || dsts[0] != 3 {
		t.Fatalf("destinations = %v", dsts)
	}
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestPendingQueue(t *testing.T) {
	q := NewPendingQueue(2, 5)
	mk := func(created float64) *netstack.Packet {
		return &netstack.Packet{Created: created}
	}
	if ev := q.Push(1, mk(0)); ev != nil {
		t.Fatal("eviction on first push")
	}
	q.Push(1, mk(1))
	ev := q.Push(1, mk(2)) // cap 2: oldest evicted
	if ev == nil || ev.Created != 0 {
		t.Fatalf("evicted = %+v", ev)
	}
	if !q.Waiting(1) || q.Waiting(2) {
		t.Fatal("Waiting wrong")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	fresh, expired := q.PopAll(1, 6.5)
	if len(fresh) != 1 || len(expired) != 1 {
		t.Fatalf("fresh=%d expired=%d", len(fresh), len(expired))
	}
	if q.Waiting(1) {
		t.Fatal("queue not drained")
	}
}
