// Package rsu implements infrastructure-based routing (survey Sec. V,
// Fig. 5) in the style of He et al.'s DRR: stationary road-side units
// (RSUs) "are connected by backbone links with high bandwidth, low delay,
// and low bit error rates"; vehicles use V2V greedy forwarding where it
// works, and when the vehicular path is broken an RSU acts as a virtual
// equivalent node (VEN), relaying — or buffering — the packet over the
// backbone to the RSU nearest the destination's last known position.
// "After a vehicle successfully connects with an RSU, its position
// information is synchronized to all related RSU instantly."
package rsu

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Backbone is the wired interconnect shared by all RSU routers of a
// scenario, including the synchronized vehicle location registry.
type Backbone struct {
	// Delay is the one-way backbone latency in seconds (default 2 ms).
	Delay float64
	rsus  map[netstack.NodeID]*UnitRouter
	// lastSeen maps a vehicle to the RSU that most recently heard its
	// beacon — the "position synchronized to all related RSU" registry.
	lastSeen map[netstack.NodeID]netstack.NodeID
}

// NewBackbone returns an empty backbone.
func NewBackbone() *Backbone {
	return &Backbone{
		Delay:    2e-3,
		rsus:     make(map[netstack.NodeID]*UnitRouter),
		lastSeen: make(map[netstack.NodeID]netstack.NodeID),
	}
}

func (b *Backbone) delay() float64 {
	if b.Delay <= 0 {
		return 2e-3
	}
	return b.Delay
}

// register adds an RSU router to the backbone.
func (b *Backbone) register(u *UnitRouter) { b.rsus[u.API.Self()] = u }

// noteVehicle updates the location registry. On a handover (the vehicle
// surfaced under a different RSU) every packet buffered for it elsewhere
// is re-transferred to the new owner — the "position information is
// synchronized to all related RSU instantly" behaviour of DRR.
func (b *Backbone) noteVehicle(vehicle, rsu netstack.NodeID) {
	prev, had := b.lastSeen[vehicle]
	b.lastSeen[vehicle] = rsu
	if had && prev == rsu {
		return
	}
	owner, ok := b.rsus[rsu]
	if !ok {
		return
	}
	for id, u := range b.rsus {
		if id == rsu {
			continue
		}
		for _, pkt := range u.takeBuffered(vehicle) {
			b.transfer(u, owner, pkt)
		}
	}
}

// rsuFor returns the RSU that last heard the vehicle, or the RSU closest
// to the vehicle's registered position.
func (b *Backbone) rsuFor(vehicle netstack.NodeID, fallbackPos geom.Vec2, hasPos bool) (*UnitRouter, bool) {
	if id, ok := b.lastSeen[vehicle]; ok {
		if u, okU := b.rsus[id]; okU {
			return u, true
		}
	}
	if !hasPos {
		return nil, false
	}
	var best *UnitRouter
	bd := math.Inf(1)
	for _, u := range b.rsus {
		if d := u.API.Pos().DistSq(fallbackPos); d < bd {
			bd = d
			best = u
		}
	}
	return best, best != nil
}

// transfer moves a packet over the backbone to the target RSU with the
// configured delay.
func (b *Backbone) transfer(from *UnitRouter, to *UnitRouter, pkt *netstack.Packet) {
	from.API.After(b.delay(), func() { to.receiveFromBackbone(pkt) })
}

// UnitRouter runs on an RSU node: it delivers buffered packets to
// destination vehicles entering its coverage and accepts handoffs from
// vehicles and the backbone.
type UnitRouter struct {
	netstack.Base
	backbone *Backbone
	buffered map[netstack.NodeID][]*netstack.Packet
	// BufferTTL bounds how long a packet is held for an absent vehicle
	// (default 30 s).
	BufferTTL float64
	started   bool
}

// NewUnit returns a router for one RSU attached to the backbone.
func NewUnit(b *Backbone) *UnitRouter {
	return &UnitRouter{
		backbone:  b,
		buffered:  make(map[netstack.NodeID][]*netstack.Packet),
		BufferTTL: 30,
	}
}

// Name implements netstack.Router.
func (u *UnitRouter) Name() string { return "DRR-RSU" }

// Attach implements netstack.Router.
func (u *UnitRouter) Attach(api *netstack.API) {
	u.Base.Attach(api)
	u.backbone.register(u)
	if u.started {
		return
	}
	u.started = true
	var sweep func()
	sweep = func() {
		u.flushBuffers()
		u.API.After(0.25, sweep)
	}
	api.After(0.25, sweep)
}

// OnBeacon implements netstack.Router: every vehicle beacon an RSU hears
// synchronizes the location registry.
func (u *UnitRouter) OnBeacon(nb netstack.Neighbor) {
	if nb.Kind == netstack.Vehicle || nb.Kind == netstack.BusNode {
		u.backbone.noteVehicle(nb.ID, u.API.Self())
	}
}

// Originate implements netstack.Router: RSUs do not originate app data in
// the experiments; treat as deliver-to-self or drop.
func (u *UnitRouter) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: u.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: u.Name(),
		Src: u.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: u.API.Now(),
	}
	u.handleData(pkt)
}

// HandlePacket implements netstack.Router.
func (u *UnitRouter) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	u.handleData(pkt)
}

func (u *UnitRouter) handleData(pkt *netstack.Packet) {
	if pkt.Dst == u.API.Self() {
		u.API.Deliver(pkt)
		return
	}
	// direct delivery if the destination is under our coverage
	if u.API.HasNeighbor(pkt.Dst) {
		pkt.TTL--
		if pkt.Expired() {
			u.API.Drop(pkt)
			return
		}
		u.API.Send(pkt.Dst, pkt)
		return
	}
	// backbone transfer toward the RSU that owns the destination
	dstPos, _, hasPos := u.API.LookupPosition(pkt.Dst)
	target, ok := u.backbone.rsuFor(pkt.Dst, dstPos, hasPos)
	if ok && target != u {
		u.backbone.transfer(u, target, pkt)
		return
	}
	// we are the best RSU: buffer as a virtual equivalent node
	u.buffer(pkt)
}

// receiveFromBackbone accepts a packet transferred over the wire.
func (u *UnitRouter) receiveFromBackbone(pkt *netstack.Packet) {
	if u.API.HasNeighbor(pkt.Dst) {
		pkt.TTL--
		if pkt.Expired() {
			u.API.Drop(pkt)
			return
		}
		u.API.Send(pkt.Dst, pkt)
		return
	}
	u.buffer(pkt)
}

func (u *UnitRouter) buffer(pkt *netstack.Packet) {
	u.buffered[pkt.Dst] = append(u.buffered[pkt.Dst], pkt)
}

// takeBuffered removes and returns every packet buffered for dst (used by
// the backbone during a handover).
func (u *UnitRouter) takeBuffered(dst netstack.NodeID) []*netstack.Packet {
	list := u.buffered[dst]
	delete(u.buffered, dst)
	return list
}

// flushBuffers delivers buffered packets whose destinations have arrived
// and expires stale ones.
func (u *UnitRouter) flushBuffers() {
	now := u.API.Now()
	for dst, list := range u.buffered {
		if u.API.HasNeighbor(dst) {
			for _, pkt := range list {
				pkt.TTL--
				if pkt.Expired() {
					u.API.Drop(pkt)
					continue
				}
				u.API.Send(dst, pkt)
			}
			delete(u.buffered, dst)
			continue
		}
		keep := list[:0]
		for _, pkt := range list {
			if now-pkt.Created > u.BufferTTL {
				u.API.Drop(pkt)
				continue
			}
			keep = append(keep, pkt)
		}
		if len(keep) == 0 {
			delete(u.buffered, dst)
		} else {
			u.buffered[dst] = keep
		}
	}
}

// OnSendFailed implements netstack.Router: the vehicle left coverage
// mid-delivery — re-buffer and retry on the sweep.
func (u *UnitRouter) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	u.API.ForgetNeighbor(to)
	if pkt.Data && pkt.Dst == to {
		u.buffer(pkt)
	}
}

// Buffered exposes the buffer depth for tests.
func (u *UnitRouter) Buffered() int {
	n := 0
	for _, l := range u.buffered {
		n += len(l)
	}
	return n
}

// VehicleRouter runs on vehicles in the DRR scenario: greedy V2V toward
// the destination while progress exists; otherwise hand the packet to any
// RSU in range (the differentiated reliable path), falling back to a short
// carry while neither works.
type VehicleRouter struct {
	netstack.Base
	carried []*carriedPacket
	// CarryTimeout bounds the local buffer (default 5 s).
	CarryTimeout float64
	started      bool
}

type carriedPacket struct {
	pkt   *netstack.Packet
	since float64
}

// NewVehicle returns a factory for DRR vehicle routers.
func NewVehicle() netstack.RouterFactory {
	return func() netstack.Router { return &VehicleRouter{CarryTimeout: 5} }
}

// Name implements netstack.Router.
func (v *VehicleRouter) Name() string { return "DRR" }

// Attach implements netstack.Router.
func (v *VehicleRouter) Attach(api *netstack.API) {
	v.Base.Attach(api)
	if v.started {
		return
	}
	v.started = true
	var sweep func()
	sweep = func() {
		v.retryCarried()
		v.API.After(0.5, sweep)
	}
	api.After(0.5+api.Rand().Float64()*0.1, sweep)
}

// Originate implements netstack.Router.
func (v *VehicleRouter) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: v.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: v.Name(),
		Src: v.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: v.API.Now(),
	}
	if dst == v.API.Self() {
		v.API.Deliver(pkt)
		return
	}
	v.route(pkt)
}

// HandlePacket implements netstack.Router.
func (v *VehicleRouter) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == v.API.Self() {
		v.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		v.API.Drop(pkt)
		return
	}
	v.route(pkt)
}

func (v *VehicleRouter) route(pkt *netstack.Packet) {
	if v.API.HasNeighbor(pkt.Dst) {
		v.API.Send(pkt.Dst, pkt)
		return
	}
	// greedy V2V progress through vehicles only
	if dstPos, _, ok := v.API.LookupPosition(pkt.Dst); ok {
		self := v.API.Pos().Dist(dstPos)
		var best netstack.NodeID
		bestD := self
		found := false
		for _, nb := range v.API.Neighbors() {
			if nb.Kind == netstack.RSU {
				continue
			}
			if d := nb.Pos.Dist(dstPos); d < bestD {
				bestD = d
				best = nb.ID
				found = true
			}
		}
		if found {
			v.API.Send(best, pkt)
			return
		}
	}
	// no vehicular progress: differentiated path through the nearest RSU
	var rsuID netstack.NodeID
	rsuFound := false
	rsuDist := math.Inf(1)
	for _, nb := range v.API.Neighbors() {
		if nb.Kind != netstack.RSU {
			continue
		}
		if d := nb.Pos.DistSq(v.API.Pos()); d < rsuDist {
			rsuDist = d
			rsuID = nb.ID
			rsuFound = true
		}
	}
	if rsuFound {
		v.API.Send(rsuID, pkt)
		return
	}
	v.carried = append(v.carried, &carriedPacket{pkt: pkt, since: v.API.Now()})
}

// OnSendFailed implements netstack.Router.
func (v *VehicleRouter) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	v.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		v.API.Drop(pkt)
		return
	}
	v.route(pkt)
}

func (v *VehicleRouter) retryCarried() {
	if len(v.carried) == 0 {
		return
	}
	now := v.API.Now()
	keep := v.carried[:0]
	for _, c := range v.carried {
		if now-c.since > v.CarryTimeout {
			v.API.Drop(c.pkt)
			continue
		}
		// retry the full decision ladder
		before := len(v.carried)
		_ = before
		if v.tryOnce(c.pkt) {
			continue
		}
		keep = append(keep, c)
	}
	v.carried = keep
}

// tryOnce attempts one routing step; it reports whether the packet left
// this node.
func (v *VehicleRouter) tryOnce(pkt *netstack.Packet) bool {
	if v.API.HasNeighbor(pkt.Dst) {
		v.API.Send(pkt.Dst, pkt)
		return true
	}
	for _, nb := range v.API.Neighbors() {
		if nb.Kind == netstack.RSU {
			v.API.Send(nb.ID, pkt)
			return true
		}
	}
	if dstPos, _, ok := v.API.LookupPosition(pkt.Dst); ok {
		self := v.API.Pos().Dist(dstPos)
		for _, nb := range v.API.Neighbors() {
			if nb.Kind != netstack.RSU && nb.Pos.Dist(dstPos) < self {
				v.API.Send(nb.ID, pkt)
				return true
			}
		}
	}
	return false
}
