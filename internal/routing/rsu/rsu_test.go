package rsu_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/routetest"
	"github.com/vanetlab/relroute/internal/routing/rsu"
)

// drrWorld builds vehicles plus RSUs wired to one backbone.
func drrWorld(t *testing.T, vehicles []routetest.Vehicle, rsuPos []geom.Vec2) (*netstack.World, []netstack.NodeID, []netstack.NodeID, *rsu.Backbone) {
	t.Helper()
	backbone := rsu.NewBackbone()
	w, ids := routetest.World(t, 1, vehicles, rsu.NewVehicle())
	var rsuIDs []netstack.NodeID
	for _, p := range rsuPos {
		rsuIDs = append(rsuIDs, w.AddStaticNode(netstack.RSU, p, rsu.NewUnit(backbone)))
	}
	return w, ids, rsuIDs, backbone
}

func TestV2VWhenConnected(t *testing.T) {
	w, ids, _, _ := drrWorld(t, routetest.Chain(4, 150, 20), nil)
	routetest.MustDeliverAll(t, w, ids[0], ids[3], 5)
}

func TestBackboneBridgesPartition(t *testing.T) {
	// two vehicle clusters far apart, one RSU per cluster: only the wired
	// backbone can bridge them
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(100, 0)},
		{Pos: geom.V(5000, 0)},
		{Pos: geom.V(5100, 0)},
	}
	w, ids, _, _ := drrWorld(t, vehicles,
		[]geom.Vec2{geom.V(150, 0), geom.V(4950, 0)})
	w.AddFlow(ids[0], ids[3], 3, 0.5, 5, 256)
	if err := w.Run(15); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 5 {
		t.Fatalf("delivered = %d of 5 across the partition", c.DataDelivered)
	}
	// sanity: with no RSUs the same flow dies
	w2, ids2, _, _ := drrWorld(t, vehicles, nil)
	w2.AddFlow(ids2[0], ids2[3], 3, 0.5, 5, 256)
	if err := w2.Run(15); err != nil {
		t.Fatal(err)
	}
	if got := w2.Collector().DataDelivered; got != 0 {
		t.Fatalf("partition crossed without infrastructure: %d", got)
	}
}

func TestRSUBuffersForAbsentVehicle(t *testing.T) {
	// destination arrives in RSU coverage only later: the RSU must act as
	// a virtual equivalent node, holding the packet until then
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},                         // source next to RSU A
		{Pos: geom.V(2000, 0), Vel: geom.V(-25, 0)}, // dest driving toward RSU B
	}
	w, ids, rsuIDs, _ := drrWorld(t, vehicles,
		[]geom.Vec2{geom.V(100, 0), geom.V(1000, 0)})
	_ = rsuIDs
	w.AddFlow(ids[0], ids[1], 1, 1, 3, 256)
	if err := w.Run(40); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 3 {
		t.Fatalf("delivered = %d of 3 buffered packets", c.DataDelivered)
	}
	// delivery waited for the drive: (2000-1000-250)/25 = 30 s
	if c.MeanDelay() < 5 {
		t.Fatalf("mean delay = %v, too fast for a buffered handover", c.MeanDelay())
	}
}

func TestBufferTTLDropsStalePackets(t *testing.T) {
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},
		{Pos: geom.V(50000, 0)}, // never arrives
	}
	backbone := rsu.NewBackbone()
	w, ids := routetest.World(t, 1, vehicles, rsu.NewVehicle())
	unit := rsu.NewUnit(backbone)
	unit.BufferTTL = 2
	w.AddStaticNode(netstack.RSU, geom.V(100, 0), unit)
	w.AddFlow(ids[0], ids[1], 1, 1, 2, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	if unit.Buffered() != 0 {
		t.Fatalf("buffered = %d after TTL", unit.Buffered())
	}
	if got := w.Collector().DataDropped; got == 0 {
		t.Fatal("stale buffered packets not counted as drops")
	}
}

func TestLocationRegistryTracksBeacons(t *testing.T) {
	// the vehicle drives from RSU A's coverage to RSU B's; packets sent
	// after the move must land via B (registry synchronization)
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0)},                       // source, static near A
		{Pos: geom.V(200, 0), Vel: geom.V(25, 0)}, // dest drives toward B
	}
	w, ids, _, _ := drrWorld(t, vehicles,
		[]geom.Vec2{geom.V(100, 0), geom.V(1200, 0)})
	// send late, once the dest is only reachable via B
	w.AddFlow(ids[0], ids[1], 30, 0.5, 4, 256)
	if err := w.Run(45); err != nil {
		t.Fatal(err)
	}
	if got := w.Collector().DataDelivered; got != 4 {
		t.Fatalf("delivered = %d of 4 after handover", got)
	}
}
