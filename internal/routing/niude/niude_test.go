package niude_test

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing/niude"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20), niude.New())
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestDelayBoundRejectsLongPaths(t *testing.T) {
	// an impossible delay bound: the destination admits no candidate and
	// data is dropped after discovery fails
	w, ids := routetest.World(t, 1, routetest.Chain(5, 150, 20),
		niude.New(niude.WithDelayBound(1e-9)))
	w.AddFlow(ids[0], ids[4], 3, 0.5, 3, 256)
	if err := w.Run(10); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 0 {
		t.Fatalf("delivered %d despite an impossible delay bound", c.DataDelivered)
	}
	if c.DataDropped != 3 {
		t.Fatalf("dropped = %d", c.DataDropped)
	}
}

func TestPrefersReliableRelay(t *testing.T) {
	// two relays at equal progress: the co-moving one has availability ≈1
	// over the horizon, the crossing one ≈0 — the destination must answer
	// through the reliable relay
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(0, 0), Vel: geom.V(20, 0)},
		{Pos: geom.V(200, 12), Vel: geom.V(20, 0)},
		{Pos: geom.V(200, -12), Vel: geom.V(-25, 0)},
		{Pos: geom.V(400, 0), Vel: geom.V(20, 0)},
	}
	var routers []*niude.Router
	factory := niude.New()
	wrapped := func() netstack.Router {
		r := factory().(*niude.Router)
		routers = append(routers, r)
		return r
	}
	w, ids := routetest.World(t, 1, vehicles, wrapped)
	w.AddFlow(ids[0], ids[3], 2, 1, 3, 256)
	if err := w.Run(7); err != nil {
		t.Fatal(err)
	}
	rt, ok := routers[3].Table().Get(ids[0])
	if !ok || !rt.Valid {
		t.Fatal("destination has no reverse route")
	}
	if rt.NextHop != ids[1] {
		t.Fatalf("reverse route via %d, want reliable relay %d", rt.NextHop, ids[1])
	}
	if w.Collector().DataDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestProactiveMaintenance(t *testing.T) {
	w, ids := routetest.World(t, 1, routetest.Chain(4, 150, 20), niude.New())
	w.AddFlow(ids[0], ids[3], 1, 0.5, 24, 256)
	if err := w.Run(14); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.RouteRepairs == 0 {
		t.Fatal("no proactive rebuilds before the reliability horizon")
	}
	if c.PDR() < 0.9 {
		t.Fatalf("PDR = %v", c.PDR())
	}
}
