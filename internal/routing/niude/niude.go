// Package niude implements the QoS routing algorithm of Niu et al. (DeReQ,
// survey Secs. IV-B and VII-B, marked NiuDe): route selection "considers
// not only the impact of the link duration but also the traffic density",
// so that "a selected route is not only reliable but also compliant with
// delay requirements in multimedia application".
//
// Discovery is AODV-shaped, but each RREQ accumulates two QoS quantities:
//
//   - path reliability: the product of per-link availability probabilities
//     P(link survives the delay requirement), from the Sec. VII link-
//     duration model over the beaconed kinematics ("the reliability is on
//     the basis of a probability function that predicts the future status
//     of a wireless link");
//   - expected path delay: per-hop transmission plus a contention penalty
//     growing with local density (the denser the relay's neighborhood, the
//     longer the MAC wait).
//
// The destination collects candidates for a window and answers the most
// reliable path whose expected delay meets the bound; the source
// proactively rebuilds before the predicted break ("if a link is going to
// break, the route will be rebuilt before the link breaks").
package niude

import (
	"math"

	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/routing"
)

// Option configures the router factory.
type Option func(*Router)

// WithDelayBound sets the QoS delay requirement in seconds a candidate
// path must meet (default 0.5).
func WithDelayBound(d float64) Option {
	return func(r *Router) { r.delayBound = d }
}

// WithReliabilityHorizon sets the survival time links are scored against
// in seconds (default 4): reliability = P(link lives ≥ horizon).
func WithReliabilityHorizon(h float64) Option {
	return func(r *Router) { r.horizon = h }
}

// WithSpeedSigma sets the σ of the relative-speed uncertainty (default 4).
func WithSpeedSigma(s float64) Option {
	return func(r *Router) { r.speedSigma = s }
}

// Router is a per-node NiuDe/DeReQ instance.
type Router struct {
	netstack.Base
	table   *routing.Table
	pending *routing.PendingQueue
	dup     *routing.DupCache
	reqID   uint64
	trying  map[netstack.NodeID]int
	collect map[routing.DupKey]*candidate

	delayBound float64
	horizon    float64
	speedSigma float64
	window     float64
}

type candidate struct {
	bestReliability float64
	bestDelay       float64
	bestFrom        netstack.NodeID
	hops            int
	armed           bool
}

// rreq accumulates the QoS path metrics.
type rreq struct {
	Origin      netstack.NodeID
	ReqID       uint64
	Target      netstack.NodeID
	Reliability float64 // product of per-link availability so far
	Delay       float64 // expected forwarding delay so far, seconds
}

// rrep returns the selection.
type rrep struct {
	Origin      netstack.NodeID
	Target      netstack.NodeID
	Reliability float64
	Hops        int
}

// New returns a NiuDe router factory.
func New(opts ...Option) netstack.RouterFactory {
	return func() netstack.Router {
		r := &Router{
			table:      routing.NewTable(),
			pending:    routing.NewPendingQueue(16, 10),
			dup:        routing.NewDupCache(15),
			trying:     make(map[netstack.NodeID]int),
			collect:    make(map[routing.DupKey]*candidate),
			delayBound: 0.5,
			horizon:    4,
			speedSigma: 4,
			window:     0.3,
		}
		for _, o := range opts {
			o(r)
		}
		return r
	}
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "NiuDe" }

// linkAvailability returns P(link to the beaconed neighbor survives the
// reliability horizon) under the Sec. VII model, via the reliability
// plane's shared survival helper.
func (r *Router) linkAvailability(ls netstack.LinkState) float64 {
	obs := linkstate.Observer{Pos: r.API.Pos(), Vel: r.API.Vel(), Now: r.API.Now()}
	return linkstate.Survival(obs, ls, r.speedSigma, r.API.RangeEstimate(), 600, r.horizon)
}

// hopDelay estimates this relay's forwarding delay: base transmission plus
// a contention penalty growing with local density (the traffic-density
// input of the NiuDe model).
func (r *Router) hopDelay() float64 {
	const base = 2e-3 // airtime + processing
	n := float64(len(r.API.Neighbors()))
	return base * (1 + n/8)
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	if rt, ok := r.table.Lookup(dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	if ev := r.pending.Push(dst, pkt); ev != nil {
		r.API.Drop(ev)
	}
	r.startDiscovery(dst)
}

func (r *Router) startDiscovery(dst netstack.NodeID) {
	if _, inFlight := r.trying[dst]; inFlight {
		return
	}
	r.trying[dst] = 2
	r.sendRREQ(dst)
}

func (r *Router) sendRREQ(dst netstack.NodeID) {
	r.API.Metrics().RouteDiscoveries++
	r.reqID++
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREQ, Proto: r.Name(),
		Src: r.API.Self(), Dst: netstack.Broadcast, TTL: routing.DefaultTTL,
		Size: 56, Created: r.API.Now(),
		Payload: rreq{Origin: r.API.Self(), ReqID: r.reqID, Target: dst, Reliability: 1},
	}
	r.dup.Seen(routing.DupKey{Origin: pkt.Src, Seq: r.reqID}, r.API.Now())
	r.API.Send(netstack.Broadcast, pkt)
	dstCopy := dst
	r.API.After(1.0, func() { r.deadline(dstCopy) })
}

func (r *Router) deadline(dst netstack.NodeID) {
	retries, inFlight := r.trying[dst]
	if !inFlight {
		return
	}
	if _, ok := r.table.Lookup(dst, r.API.Now()); ok {
		delete(r.trying, dst)
		return
	}
	if retries <= 0 {
		delete(r.trying, dst)
		fresh, expired := r.pending.PopAll(dst, r.API.Now())
		for _, p := range append(fresh, expired...) {
			r.API.Drop(p)
		}
		return
	}
	r.trying[dst] = retries - 1
	r.sendRREQ(dst)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	switch pkt.Kind {
	case netstack.KindRREQ:
		r.handleRREQ(pkt)
	case netstack.KindRREP:
		r.handleRREP(pkt)
	case netstack.KindData:
		r.handleData(pkt)
	}
}

func (r *Router) handleRREQ(pkt *netstack.Packet) {
	req, ok := pkt.Payload.(rreq)
	if !ok || req.Origin == r.API.Self() {
		return
	}
	now := r.API.Now()
	// fold in the link just traversed
	avail := 0.0
	if ls, okLs := r.API.LinkState(pkt.From); okLs {
		avail = r.linkAvailability(ls)
	}
	reliability := req.Reliability * avail
	delay := req.Delay + r.hopDelay()
	// reverse route: keep the most reliable, loop-free by hop monotonicity
	r.mergeReverse(routing.Route{
		Dst: req.Origin, NextHop: pkt.From, Hops: pkt.Hops,
		Expiry: now + 6, Valid: true, Lifetime: reliability * 100,
	})
	if req.Target == r.API.Self() {
		key := routing.DupKey{Origin: req.Origin, Seq: req.ReqID}
		c, okC := r.collect[key]
		if !okC {
			c = &candidate{bestReliability: -1}
			r.collect[key] = c
		}
		// QoS admission: delay bound first, then reliability
		if delay <= r.delayBound && reliability > c.bestReliability {
			c.bestReliability = reliability
			c.bestDelay = delay
			c.bestFrom = pkt.From
			c.hops = pkt.Hops
		}
		if !c.armed {
			c.armed = true
			origin := req.Origin
			r.API.After(r.window, func() { r.answer(key, origin) })
		}
		return
	}
	if r.dup.Seen(routing.DupKey{Origin: req.Origin, Seq: req.ReqID}, now) {
		return
	}
	// relays with zero availability in would only poison the product
	if reliability <= 0 {
		return
	}
	cp := req
	cp.Reliability = reliability
	cp.Delay = delay
	pkt.Payload = cp
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(netstack.Broadcast, pkt)
}

func (r *Router) answer(key routing.DupKey, origin netstack.NodeID) {
	c, ok := r.collect[key]
	if !ok {
		return
	}
	delete(r.collect, key)
	if c.bestReliability < 0 {
		return // nothing met the delay bound
	}
	r.table.Upsert(routing.Route{
		Dst: origin, NextHop: c.bestFrom, Hops: c.hops,
		Expiry: r.API.Now() + 6, Valid: true, Lifetime: c.bestReliability * 100,
	})
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindRREP, Proto: r.Name(),
		Src: r.API.Self(), Dst: origin, TTL: routing.DefaultTTL, Size: 48,
		Created: r.API.Now(),
		Payload: rrep{Origin: origin, Target: r.API.Self(), Reliability: c.bestReliability},
	}
	r.API.Send(c.bestFrom, pkt)
}

func (r *Router) handleRREP(pkt *netstack.Packet) {
	rep, ok := pkt.Payload.(rrep)
	if !ok {
		return
	}
	now := r.API.Now()
	r.table.Upsert(routing.Route{
		Dst: rep.Target, NextHop: pkt.From, Hops: rep.Hops + pkt.Hops,
		Expiry: now + 6, Valid: true, Lifetime: rep.Reliability * 100,
	})
	if rep.Origin == r.API.Self() {
		delete(r.trying, rep.Target)
		r.API.Metrics().OnPathLifetime(r.horizon * math.Max(rep.Reliability, 0.01))
		r.flushPending(rep.Target)
		// proactive maintenance: rebuild before the reliability horizon
		// elapses ("the route will be rebuilt before the link breaks")
		target := rep.Target
		lead := math.Max(r.horizon-1, 0.5)
		r.API.After(lead, func() {
			if _, okRt := r.table.Lookup(target, r.API.Now()); okRt || r.pending.Waiting(target) {
				r.API.Metrics().RouteRepairs++
				r.startDiscovery(target)
			}
		})
		return
	}
	rt, okRt := r.table.Lookup(rep.Origin, now)
	if !okRt {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		return
	}
	r.API.Send(rt.NextHop, pkt)
}

func (r *Router) handleData(pkt *netstack.Packet) {
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	if rt, ok := r.table.Lookup(pkt.Dst, r.API.Now()); ok {
		r.API.Send(rt.NextHop, pkt)
		return
	}
	r.API.Drop(pkt)
}

// OnNeighborExpired implements netstack.Router.
func (r *Router) OnNeighborExpired(id netstack.NodeID) {
	broken := r.table.InvalidateVia(id)
	r.API.Metrics().RouteBreaks += len(broken)
}

// OnSendFailed implements netstack.Router.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	r.OnNeighborExpired(to)
	if pkt.Data {
		r.API.Drop(pkt)
	}
}

// mergeReverse keeps the more reliable reverse route among those not
// increasing the hop count (loop freedom via hop monotonicity).
func (r *Router) mergeReverse(nr routing.Route) {
	cur, ok := r.table.Get(nr.Dst)
	if ok && cur.Valid && !(nr.Hops < cur.Hops || (nr.Hops == cur.Hops && nr.Lifetime > cur.Lifetime)) {
		return
	}
	r.table.Upsert(nr)
}

func (r *Router) flushPending(dst netstack.NodeID) {
	fresh, expired := r.pending.PopAll(dst, r.API.Now())
	for _, p := range expired {
		r.API.Drop(p)
	}
	rt, ok := r.table.Lookup(dst, r.API.Now())
	if !ok {
		for _, p := range fresh {
			r.API.Drop(p)
		}
		return
	}
	for _, p := range fresh {
		r.API.Send(rt.NextHop, p)
	}
}

// Table exposes the route table for tests.
func (r *Router) Table() *routing.Table { return r.table }
