package car_test

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/roadnet"
	"github.com/vanetlab/relroute/internal/routing/car"
	"github.com/vanetlab/relroute/internal/routing/routetest"
)

func TestDensityMapConnectivity(t *testing.T) {
	net, eb, wb, err := roadnet.Highway(2000, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	dmap := car.NewDensityMap(net, 250)
	// crowd the eastbound carriageway, leave the westbound one empty
	var positions []geom.Vec2
	for i := 0; i < 40; i++ {
		positions = append(positions, net.Segment(eb).PosAt(0, float64(i)*50))
	}
	// two refreshes to overcome the EWMA start-up
	dmap.Update(positions)
	dmap.Update(positions)
	if got := dmap.Density(eb); got <= 0 {
		t.Fatalf("eastbound density = %v", got)
	}
	if dmap.Connectivity(eb) <= dmap.Connectivity(wb) {
		t.Fatalf("crowded segment connectivity %v not above empty %v",
			dmap.Connectivity(eb), dmap.Connectivity(wb))
	}
}

func TestBestRoadPathPrefersConnectedRoad(t *testing.T) {
	// a 2x3 grid: two parallel west-east corridors; crowd the northern
	// one and the best path must run through it
	net, err := roadnet.Grid(3, 2, 500, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	dmap := car.NewDensityMap(net, 250)
	var positions []geom.Vec2
	// crowd the whole northern route: up the west connector, along the
	// y=500 corridor, down the east connector
	for y := 0.0; y <= 500; y += 40 {
		positions = append(positions, geom.V(0, y), geom.V(1000, y))
	}
	for x := 0.0; x <= 1000; x += 40 {
		positions = append(positions, geom.V(x, 500))
	}
	for i := 0; i < 4; i++ {
		dmap.Update(positions)
	}
	anchors, ok := dmap.BestRoadPath(geom.V(0, 0), geom.V(1000, 0))
	if !ok {
		t.Fatal("no road path found")
	}
	// the path must visit the crowded northern corridor
	north := false
	for _, a := range anchors {
		if a.Y > 400 {
			north = true
		}
	}
	if !north {
		t.Fatalf("path ignored the connected corridor: %v", anchors)
	}
}

func carWorld(t *testing.T, vehicles []routetest.Vehicle) (*netstack.World, []netstack.NodeID) {
	t.Helper()
	net, _, _, err := roadnet.Highway(2000, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	dmap := car.NewDensityMap(net, 250)
	w, ids := routetest.World(t, 1, vehicles, car.New(dmap))
	// refresh densities from true positions once per second
	var refresh func()
	eng := w.Engine()
	refresh = func() {
		var positions []geom.Vec2
		for i := 0; i < w.Nodes(); i++ {
			if p, ok := w.PositionOf(netstack.NodeID(i)); ok {
				positions = append(positions, p)
			}
		}
		dmap.Update(positions)
		eng.After(1, refresh)
	}
	eng.After(0, refresh)
	return w, ids
}

func TestDeliversAcrossChain(t *testing.T) {
	w, ids := carWorld(t, routetest.Chain(5, 150, 20))
	routetest.MustDeliverAll(t, w, ids[0], ids[4], 5)
}

func TestShortcutSkipsAbsurdAnchors(t *testing.T) {
	// src and dst sit on opposite carriageways 10 m apart; the road path
	// would detour via the crossover but the packet must go direct
	vehicles := []routetest.Vehicle{
		{Pos: geom.V(1000, 0), Vel: geom.V(20, 0)},
		{Pos: geom.V(1010, 10.5), Vel: geom.V(-20, 0)},
	}
	w, ids := carWorld(t, vehicles)
	w.AddFlow(ids[0], ids[1], 1, 0.5, 4, 256)
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	c := w.Collector()
	if c.DataDelivered != 4 {
		t.Fatalf("delivered = %d", c.DataDelivered)
	}
	if got := c.MeanHops(); got > 1.01 {
		t.Fatalf("mean hops = %v, want direct delivery", got)
	}
}

func TestMonteCarloAgreesWithModelUnderTraffic(t *testing.T) {
	// integration sanity: a populated road model feeds plausible densities
	net, eb, _, err := roadnet.Highway(2000, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	model := mobility.NewRoadModel(net, rand.New(rand.NewSource(1)), mobility.ContinueRandom)
	mobility.Populate(model, rand.New(rand.NewSource(2)), mobility.PopulateOptions{
		Count: 60, SpeedMean: 25, SpeedStd: 4,
		Segments: []roadnet.SegmentID{eb},
	})
	dmap := car.NewDensityMap(net, 250)
	var positions []geom.Vec2
	for _, s := range model.States() {
		positions = append(positions, s.Pos)
	}
	// several refreshes to pass the EWMA warm-up
	for i := 0; i < 6; i++ {
		dmap.Update(positions)
	}
	// 60 vehicles / 2000 m = 0.03 veh/m
	if d := dmap.Density(eb); d < 0.02 || d > 0.04 {
		t.Fatalf("estimated density = %v, want ≈0.03", d)
	}
	if got := dmap.Connectivity(eb); got < 0.9 {
		t.Fatalf("connectivity at 0.03 veh/m = %v, want ≈1", got)
	}
}
