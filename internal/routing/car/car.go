// Package car implements the Connectivity-Aware Routing protocol of Yang
// et al. (survey Sec. VII-B): every road segment gets a connectivity
// probability derived from its vehicle density on a 5-meter grid (the
// average car length); a road-level route is chosen to maximise the
// product of per-segment connectivity probabilities; data is then
// geo-forwarded through the junction anchors of the chosen road path.
//
// Density input: the paper's protocol aggregates densities from beacons
// flowing along roads. The simulation substitutes a DensityMap refreshed
// from ground truth at a configurable period — the same information with
// idealised dissemination, isolating the routing behaviour under test.
package car

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/roadnet"
	"github.com/vanetlab/relroute/internal/routing"
)

// DensityMap holds smoothed per-segment vehicle densities (vehicles per
// meter). One instance is shared by all CAR routers of a scenario and
// refreshed by the scenario harness.
type DensityMap struct {
	net     *roadnet.Network
	density []float64
	rng     float64 // communication range for the connectivity model
}

// NewDensityMap returns an empty map over the network, with the given
// communication range feeding the connectivity model.
func NewDensityMap(net *roadnet.Network, commRange float64) *DensityMap {
	return &DensityMap{
		net:     net,
		density: make([]float64, net.Segments()),
		rng:     commRange,
	}
}

// Update recomputes densities from vehicle positions (one call per
// refresh period; the harness samples node positions).
func (m *DensityMap) Update(positions []geom.Vec2) {
	counts := make([]int, m.net.Segments())
	for _, p := range positions {
		seg, _ := m.net.NearestSegment(p)
		counts[seg]++
	}
	for i := range m.density {
		l := m.net.Segment(roadnet.SegmentID(i)).Length()
		if l <= 0 {
			m.density[i] = 0
			continue
		}
		// EWMA keeps route choices stable between refreshes
		fresh := float64(counts[i]) / l
		m.density[i] = 0.5*m.density[i] + 0.5*fresh
	}
}

// Density returns the density of segment s in vehicles/meter.
func (m *DensityMap) Density(s roadnet.SegmentID) float64 { return m.density[s] }

// Connectivity returns the CAR connectivity probability of segment s.
func (m *DensityMap) Connectivity(s roadnet.SegmentID) float64 {
	seg := m.net.Segment(s)
	sc := prob.SegmentConnectivity{
		Length:  seg.Length(),
		Density: m.density[s],
		Range:   m.rng,
	}
	return sc.Prob()
}

// BestRoadPath returns the junction path from the junction nearest src to
// the junction nearest dst maximising the product of segment connectivity
// probabilities (Dijkstra on −log p, with a small length tiebreak).
func (m *DensityMap) BestRoadPath(src, dst geom.Vec2) ([]geom.Vec2, bool) {
	from := m.net.NearestJunction(src)
	to := m.net.NearestJunction(dst)
	if from == to {
		return []geom.Vec2{m.net.Junction(from).Pos}, true
	}
	segs, _, ok := m.net.BestPath(from, to, func(s *roadnet.Segment) float64 {
		p := m.Connectivity(s.ID)
		const floor = 1e-6
		if p < floor {
			p = floor
		}
		return -math.Log(p) + 1e-4*s.Length()
	})
	if !ok {
		return nil, false
	}
	anchors := make([]geom.Vec2, 0, len(segs)+1)
	anchors = append(anchors, m.net.Junction(from).Pos)
	for _, sid := range segs {
		anchors = append(anchors, m.net.Junction(m.net.Segment(sid).To).Pos)
	}
	return anchors, true
}

// header carries the anchor path on data packets.
type header struct {
	Anchors []geom.Vec2
	Next    int // index of the next anchor to reach
}

// pathLen measures the polyline src → anchors… → dst.
func pathLen(src geom.Vec2, anchors []geom.Vec2, dst geom.Vec2) float64 {
	total := 0.0
	prev := src
	for _, a := range anchors {
		total += prev.Dist(a)
		prev = a
	}
	return total + prev.Dist(dst)
}

// Router is a per-node CAR instance.
type Router struct {
	netstack.Base
	dmap    *DensityMap
	carried []*carriedPacket
	started bool
}

type carriedPacket struct {
	pkt   *netstack.Packet
	since float64
}

// New returns a CAR router factory over the shared density map.
func New(dmap *DensityMap) netstack.RouterFactory {
	return func() netstack.Router { return &Router{dmap: dmap} }
}

// Name implements netstack.Router.
func (r *Router) Name() string { return "CAR" }

// Attach implements netstack.Router.
func (r *Router) Attach(api *netstack.API) {
	r.Base.Attach(api)
	if r.started {
		return
	}
	r.started = true
	var sweep func()
	sweep = func() {
		r.retryCarried()
		r.API.After(0.5, sweep)
	}
	api.After(0.5+api.Rand().Float64()*0.1, sweep)
}

// Originate implements netstack.Router.
func (r *Router) Originate(dst netstack.NodeID, size int) {
	pkt := &netstack.Packet{
		UID: r.API.NewUID(), Kind: netstack.KindData, Data: true, Proto: r.Name(),
		Src: r.API.Self(), Dst: dst, TTL: routing.DefaultTTL, Size: size,
		Created: r.API.Now(),
	}
	if dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	dstPos, _, ok := r.API.LookupPosition(dst)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	// Anchor the packet along the most-connected road path; with no road
	// path (or src/dst on the same segment) fall back to plain
	// geo-forwarding toward the destination. A road path much longer than
	// the radio geodesic (e.g. a median U-turn on a highway) is skipped
	// too — the radio does not follow lane topology.
	if anchors, okPath := r.dmap.BestRoadPath(r.API.Pos(), dstPos); okPath && len(anchors) > 1 {
		direct := r.API.Pos().Dist(dstPos)
		if pathLen(r.API.Pos(), anchors, dstPos) <= 2*direct+100 {
			pkt.Payload = header{Anchors: anchors}
			pkt.Size += 8 * len(anchors)
		}
	}
	r.route(pkt)
}

// HandlePacket implements netstack.Router.
func (r *Router) HandlePacket(pkt *netstack.Packet) {
	if pkt.Kind != netstack.KindData {
		return
	}
	if pkt.Dst == r.API.Self() {
		r.API.Deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

// currentTarget returns the position forwarding currently aims at: the
// next unreached anchor, or the destination once anchors are exhausted.
func (r *Router) currentTarget(pkt *netstack.Packet) (geom.Vec2, bool) {
	hdr, ok := pkt.Payload.(header)
	if !ok {
		dstPos, _, okD := r.API.LookupPosition(pkt.Dst)
		return dstPos, okD
	}
	const anchorReach = 60 // meters: an anchor counts as passed
	next := hdr.Next
	for next < len(hdr.Anchors) && r.API.Pos().Dist(hdr.Anchors[next]) < anchorReach {
		next++
	}
	if next != hdr.Next {
		cp := hdr
		cp.Next = next
		pkt.Payload = cp
	}
	if next < len(hdr.Anchors) {
		return hdr.Anchors[next], true
	}
	dstPos, _, okD := r.API.LookupPosition(pkt.Dst)
	return dstPos, okD
}

func (r *Router) route(pkt *netstack.Packet) {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return
	}
	target, ok := r.currentTarget(pkt)
	if !ok {
		r.API.Drop(pkt)
		return
	}
	selfD := r.API.Pos().Dist(target)
	best := netstack.Broadcast
	bestD := selfD
	for _, nb := range r.API.Neighbors() {
		if d := nb.Pos.Dist(target); d < bestD {
			bestD = d
			best = nb.ID
		}
	}
	if best != netstack.Broadcast {
		r.API.Send(best, pkt)
		return
	}
	r.carried = append(r.carried, &carriedPacket{pkt: pkt, since: r.API.Now()})
}

// OnSendFailed implements netstack.Router.
func (r *Router) OnSendFailed(pkt *netstack.Packet, to netstack.NodeID) {
	r.API.ForgetNeighbor(to)
	if pkt.Kind != netstack.KindData {
		return
	}
	pkt.TTL--
	if pkt.Expired() {
		r.API.Drop(pkt)
		return
	}
	r.route(pkt)
}

func (r *Router) retryCarried() {
	if len(r.carried) == 0 {
		return
	}
	now := r.API.Now()
	keep := r.carried[:0]
	for _, c := range r.carried {
		if now-c.since > 8 {
			r.API.Drop(c.pkt)
			continue
		}
		if r.tryOnce(c.pkt) {
			continue
		}
		keep = append(keep, c)
	}
	r.carried = keep
}

func (r *Router) tryOnce(pkt *netstack.Packet) bool {
	if r.API.HasNeighbor(pkt.Dst) {
		r.API.Send(pkt.Dst, pkt)
		return true
	}
	target, ok := r.currentTarget(pkt)
	if !ok {
		return false
	}
	selfD := r.API.Pos().Dist(target)
	for _, nb := range r.API.Neighbors() {
		if nb.Pos.Dist(target) < selfD {
			r.API.Send(nb.ID, pkt)
			return true
		}
	}
	return false
}
