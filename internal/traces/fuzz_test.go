package traces

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadFCD drives Read with arbitrary byte strings. The invariant under
// test is the hardening contract of the trace-ingestion path: whatever the
// input, Read either fails with an error or returns tracks that are
// internally sane — it must never panic, and it must never let a
// non-finite coordinate or an unordered waypoint sequence through into the
// mobility layer. A round-trip check on accepted inputs pins the
// Write/Read pair: re-serializing the parsed tracks must produce a
// document Read accepts again with the same shape.
//
// Run with: go test -fuzz=FuzzReadFCD ./internal/traces
func FuzzReadFCD(f *testing.F) {
	seeds := []string{
		// well-formed two-vehicle document
		`<fcd-export>
    <timestep time="0.00">
        <vehicle id="veh0" x="0.00" y="0.00" speed="10.00"/>
        <vehicle id="veh1" x="100.00" y="3.50" speed="20.00" type="bus"/>
    </timestep>
    <timestep time="1.00">
        <vehicle id="veh0" x="10.50" y="0.00" speed="10.50"/>
    </timestep>
</fcd-export>`,
		// empty export
		`<fcd-export></fcd-export>`,
		// values the validator must reject
		`<fcd-export><timestep time="0"><vehicle id="a" x="NaN" y="0" speed="0"/></timestep></fcd-export>`,
		`<fcd-export><timestep time="0"><vehicle id="a" x="0" y="Inf" speed="0"/></timestep></fcd-export>`,
		`<fcd-export><timestep time="2"/><timestep time="1"/></fcd-export>`,
		`<fcd-export><timestep time="1"/><timestep time="1"/></fcd-export>`,
		// truncated mid-attribute
		`<fcd-export><timestep time="0"><vehicle id="a" x="0" y="0" sp`,
		// exotic-but-legal float syntax
		`<fcd-export><timestep time="1e-3"><vehicle id="a" x="-0x1p4" y="1_0" speed=".5"/></timestep></fcd-export>`,
		// not XML at all
		`RRCKPT01 garbage`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tracks, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is a correct outcome; panics are not
		}
		for _, tr := range tracks {
			prev := math.Inf(-1)
			for _, wp := range tr.Waypoints {
				if math.IsNaN(wp.Pos.X) || math.IsInf(wp.Pos.X, 0) ||
					math.IsNaN(wp.Pos.Y) || math.IsInf(wp.Pos.Y, 0) ||
					math.IsNaN(wp.Speed) || math.IsInf(wp.Speed, 0) ||
					math.IsNaN(wp.T) || math.IsInf(wp.T, 0) {
					t.Fatalf("accepted track %d carries non-finite waypoint %+v", tr.ID, wp)
				}
				if wp.T <= prev {
					t.Fatalf("accepted track %d has non-increasing waypoint times (%g after %g)", tr.ID, wp.T, prev)
				}
				prev = wp.T
			}
		}
		// Write/Read round trip on accepted input. Write quantizes times
		// to two decimals, so distinct parsed times may collide and the
		// re-read legitimately reject the document — but neither side may
		// panic, and a successful re-read must preserve the track count.
		var buf bytes.Buffer
		if err := Write(&buf, tracks); err != nil {
			t.Fatalf("Write rejected tracks Read accepted: %v", err)
		}
		if again, err := Read(strings.NewReader(buf.String())); err == nil && len(again) != len(tracks) {
			t.Fatalf("round trip changed track count: %d -> %d", len(tracks), len(again))
		}
	})
}
