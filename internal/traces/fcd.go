// Package traces reads and writes vehicle trajectories in SUMO's
// floating-car-data (FCD) XML format, and generates synthetic traces from
// the mobility models. The paper's evaluation habitat — SUMO-driven VANET
// simulation — is reproduced by generating traces with internal/mobility,
// exporting them in the same format, and replaying them through
// mobility.PlaybackModel.
package traces

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

// fcdExport mirrors SUMO's <fcd-export> document.
type fcdExport struct {
	XMLName   xml.Name      `xml:"fcd-export"`
	Timesteps []fcdTimestep `xml:"timestep"`
}

type fcdTimestep struct {
	Time     string       `xml:"time,attr"`
	Vehicles []fcdVehicle `xml:"vehicle"`
}

type fcdVehicle struct {
	ID    string `xml:"id,attr"`
	X     string `xml:"x,attr"`
	Y     string `xml:"y,attr"`
	Speed string `xml:"speed,attr"`
	Type  string `xml:"type,attr,omitempty"`
}

// Write serialises tracks as a SUMO FCD export document.
func Write(w io.Writer, tracks []mobility.Track) error {
	// group waypoints by timestep
	type sample struct {
		id    mobility.VehicleID
		class mobility.Class
		wp    mobility.Waypoint
	}
	byTime := make(map[float64][]sample)
	var times []float64
	for _, tr := range tracks {
		for _, wp := range tr.Waypoints {
			if _, ok := byTime[wp.T]; !ok {
				times = append(times, wp.T)
			}
			byTime[wp.T] = append(byTime[wp.T], sample{id: tr.ID, class: tr.Class, wp: wp})
		}
	}
	sort.Float64s(times)
	doc := fcdExport{}
	for _, t := range times {
		ts := fcdTimestep{Time: fmtF(t)}
		samples := byTime[t]
		sort.Slice(samples, func(i, j int) bool { return samples[i].id < samples[j].id })
		for _, s := range samples {
			v := fcdVehicle{
				ID:    fmt.Sprintf("veh%d", s.id),
				X:     fmtF(s.wp.Pos.X),
				Y:     fmtF(s.wp.Pos.Y),
				Speed: fmtF(s.wp.Speed),
			}
			if s.class == mobility.Bus {
				v.Type = "bus"
			}
			ts.Vehicles = append(ts.Vehicles, v)
		}
		doc.Timesteps = append(doc.Timesteps, ts)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("traces: write header: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "    ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("traces: encode fcd: %w", err)
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return nil
}

// Read parses a SUMO FCD export document into per-vehicle tracks. Vehicle
// ids may be arbitrary strings; they are mapped to dense VehicleIDs in
// first-seen order.
//
// Read validates as it parses and reports malformed input as wrapped
// errors, never a panic or a silently poisoned track set: timestep times
// must be finite and strictly increasing (SUMO writes them that way, and
// downstream interpolation assumes it), a vehicle may appear at most once
// per timestep, and every coordinate and speed must be a finite number —
// a single NaN position would propagate through waypoint interpolation
// into the spatial index and corrupt the whole simulation.
func Read(r io.Reader) ([]mobility.Track, error) {
	var doc fcdExport
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("traces: decode fcd: %w", err)
	}
	idMap := make(map[string]int)
	var tracks []mobility.Track
	prev := math.Inf(-1)
	for i, ts := range doc.Timesteps {
		t, err := parseFinite(ts.Time)
		if err != nil {
			return nil, fmt.Errorf("traces: bad timestep time %q: %w", ts.Time, err)
		}
		if t <= prev {
			return nil, fmt.Errorf("traces: timestep %d: time %s does not increase (previous %s): %w",
				i, ts.Time, fmtF(prev), ErrMalformed)
		}
		prev = t
		seen := make(map[string]bool, len(ts.Vehicles))
		for _, v := range ts.Vehicles {
			if seen[v.ID] {
				return nil, fmt.Errorf("traces: timestep %s lists vehicle %q twice: %w", ts.Time, v.ID, ErrMalformed)
			}
			seen[v.ID] = true
			idx, ok := idMap[v.ID]
			if !ok {
				idx = len(tracks)
				idMap[v.ID] = idx
				class := mobility.Car
				if v.Type == "bus" {
					class = mobility.Bus
				}
				tracks = append(tracks, mobility.Track{ID: mobility.VehicleID(idx), Class: class})
			}
			x, err := parseFinite(v.X)
			if err != nil {
				return nil, fmt.Errorf("traces: vehicle %q bad x: %w", v.ID, err)
			}
			y, err := parseFinite(v.Y)
			if err != nil {
				return nil, fmt.Errorf("traces: vehicle %q bad y: %w", v.ID, err)
			}
			sp, err := parseFinite(v.Speed)
			if err != nil {
				return nil, fmt.Errorf("traces: vehicle %q bad speed: %w", v.ID, err)
			}
			tracks[idx].Waypoints = append(tracks[idx].Waypoints, mobility.Waypoint{
				T: t, Pos: geom.V(x, y), Speed: sp,
			})
		}
	}
	return tracks, nil
}

// ErrMalformed marks FCD input that parsed as XML but violates the
// format's semantic contract (non-finite numbers, non-monotonic
// timesteps). Callers can errors.Is against it to distinguish bad data
// from I/O failures.
var ErrMalformed = errors.New("malformed FCD document")

// parseFinite parses a float and rejects NaN and ±Inf, which ParseFloat
// happily accepts.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q: %w", s, ErrMalformed)
	}
	return v, nil
}

// ReadFile parses the SUMO FCD export at path — the scenario engine's
// trace-ingestion entry point (vanetsim -trace, Options.TracePath).
func ReadFile(path string) ([]mobility.Track, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traces: %w", err)
	}
	defer f.Close()
	tracks, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("traces: read %s: %w", path, err)
	}
	return tracks, nil
}

// WriteFile serialises tracks as a SUMO FCD export document at path.
func WriteFile(path string, tracks []mobility.Track) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	if err := Write(f, tracks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'f', 2, 64) }
