package traces

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
)

func sampleTracks() []mobility.Track {
	return []mobility.Track{
		{
			ID: 0,
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(0, 0), Speed: 10},
				{T: 1, Pos: geom.V(10.5, 0), Speed: 10.5},
			},
		},
		{
			ID:    1,
			Class: mobility.Bus,
			Waypoints: []mobility.Waypoint{
				{T: 0, Pos: geom.V(100, 3.5), Speed: 20},
				{T: 1, Pos: geom.V(120, 3.5), Speed: 20},
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTracks()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("tracks = %d", len(got))
	}
	if got[1].Class != mobility.Bus {
		t.Fatal("bus class lost in round trip")
	}
	if got[0].Class != mobility.Car {
		t.Fatal("car class lost in round trip")
	}
	for ti, tr := range got {
		want := sampleTracks()[ti]
		if len(tr.Waypoints) != len(want.Waypoints) {
			t.Fatalf("track %d waypoints = %d", ti, len(tr.Waypoints))
		}
		for wi, wp := range tr.Waypoints {
			w := want.Waypoints[wi]
			if math.Abs(wp.Pos.X-w.Pos.X) > 0.01 || math.Abs(wp.Pos.Y-w.Pos.Y) > 0.01 {
				t.Errorf("track %d wp %d pos = %v, want %v", ti, wi, wp.Pos, w.Pos)
			}
			if math.Abs(wp.Speed-w.Speed) > 0.01 {
				t.Errorf("track %d wp %d speed = %v, want %v", ti, wi, wp.Speed, w.Speed)
			}
			if wp.T != w.T {
				t.Errorf("track %d wp %d t = %v, want %v", ti, wi, wp.T, w.T)
			}
		}
	}
}

func TestWriteFormatLooksLikeSUMO(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTracks()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<fcd-export>", `<timestep time="0.00">`, `<vehicle id="veh0"`, `type="bus"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not-xml":        "hello",
		"bad-time":       `<fcd-export><timestep time="zzz"/></fcd-export>`,
		"bad-x":          `<fcd-export><timestep time="0"><vehicle id="a" x="?" y="0" speed="0"/></timestep></fcd-export>`,
		"bad-y":          `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="?" speed="0"/></timestep></fcd-export>`,
		"bad-speed":      `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="0" speed="?"/></timestep></fcd-export>`,
		"nan-x":          `<fcd-export><timestep time="0"><vehicle id="a" x="NaN" y="0" speed="0"/></timestep></fcd-export>`,
		"inf-y":          `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="+Inf" speed="0"/></timestep></fcd-export>`,
		"neg-inf-speed":  `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="0" speed="-inf"/></timestep></fcd-export>`,
		"nan-time":       `<fcd-export><timestep time="nan"/></fcd-export>`,
		"duplicate-time": `<fcd-export><timestep time="1"/><timestep time="1"/></fcd-export>`,
		"backwards-time": `<fcd-export><timestep time="2"/><timestep time="1"/></fcd-export>`,
		"truncated":      `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="0" sp`,
		"dup-vehicle":    `<fcd-export><timestep time="0"><vehicle id="a" x="0" y="0" speed="0"/><vehicle id="a" x="1" y="1" speed="1"/></timestep></fcd-export>`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(doc)); err == nil {
				t.Error("malformed document accepted")
			}
		})
	}
}

func TestReadMalformedErrorsAreTyped(t *testing.T) {
	for _, doc := range []string{
		`<fcd-export><timestep time="0"><vehicle id="a" x="NaN" y="0" speed="0"/></timestep></fcd-export>`,
		`<fcd-export><timestep time="1"/><timestep time="1"/></fcd-export>`,
	} {
		_, err := Read(strings.NewReader(doc))
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("err = %v, want wrapped ErrMalformed", err)
		}
	}
}

func TestReadArbitraryVehicleIDs(t *testing.T) {
	doc := `<fcd-export>
	<timestep time="0.0">
		<vehicle id="flow0.23" x="1" y="2" speed="3"/>
		<vehicle id="bus_7" x="4" y="5" speed="6" type="bus"/>
	</timestep>
	<timestep time="1.0">
		<vehicle id="flow0.23" x="2" y="2" speed="3"/>
	</timestep>
</fcd-export>`
	tracks, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	if len(tracks[0].Waypoints) != 2 || len(tracks[1].Waypoints) != 1 {
		t.Fatalf("waypoint counts = %d/%d", len(tracks[0].Waypoints), len(tracks[1].Waypoints))
	}
	if tracks[1].Class != mobility.Bus {
		t.Fatal("bus type not mapped")
	}
}

func TestRoundTripThroughPlayback(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTracks()); err != nil {
		t.Fatal(err)
	}
	tracks, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pb := mobility.NewPlayback(tracks)
	pb.Advance(0.5)
	s := pb.States()
	if len(s) != 2 {
		t.Fatalf("states = %d", len(s))
	}
	if math.Abs(s[0].Pos.X-5.25) > 0.01 {
		t.Fatalf("interpolated playback pos = %v", s[0].Pos)
	}
}

func TestReadWriteFile(t *testing.T) {
	tracks := []mobility.Track{{
		ID: 0,
		Waypoints: []mobility.Waypoint{
			{T: 0, Pos: geom.V(0, 0), Speed: 10},
			{T: 1, Pos: geom.V(10, 0), Speed: 10},
		},
	}}
	path := filepath.Join(t.TempDir(), "out.fcd.xml")
	if err := WriteFile(path, tracks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Waypoints) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("missing file read without error")
	}
}

func TestReadFixture(t *testing.T) {
	tracks, err := ReadFile("../../testdata/fixture_5veh.fcd.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 5 {
		t.Fatalf("fixture tracks = %d, want 5", len(tracks))
	}
	for i, tr := range tracks {
		first, last := tr.Span()
		if first != 0 || last != 30 {
			t.Fatalf("fixture track %d window = [%v, %v], want [0, 30]", i, first, last)
		}
	}
}
