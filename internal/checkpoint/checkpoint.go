// Package checkpoint makes simulation runs crash-safe and resumable with
// byte-identical recovery.
//
// # Design: logical snapshot + verified deterministic re-derivation
//
// A running world is a graph of closures — every pending event in the
// engine's queue captures routers, nodes, and buffers by reference — so a
// faithful object-graph serialization is impossible in Go without
// rewriting every subsystem around serializable event descriptors. The
// repository's determinism contract offers a stronger primitive instead:
// a run is a pure function of (protocol, Options), byte-identical at
// every worker and shard count. A snapshot therefore stores the run's
// *identity* and *progress*, not its object graph:
//
//   - identity: protocol name plus the post-adjustment scenario Options
//     (scenario.Build is idempotent on them);
//   - progress: the simulation time T and executed-event count at the
//     checkpoint boundary;
//   - verification: the full RNG stream table — (owner, seed, draw
//     position) for every generator the run consumes — and a multi-layer
//     FNV-1a digest of the live state (engine clock and event queue,
//     spatial grid, mobility model, MAC, every node and its link-state
//     monitor, membership, location service, metrics, link audit).
//
// Restore rebuilds the scenario from the identity, fast-forwards the
// fresh engine to T, and then *proves* it reached the same state by
// recomputing the digest and the stream table. A restored run is not
// assumed identical — it is checked, and the continuation is
// byte-identical to the uninterrupted run because checkpoint boundaries
// are event-free: Engine.Run(t1); Run(t2) executes exactly the event
// sequence of Run(t2).
//
// Serialized: identity, progress, stream table, digest. Re-derived on
// restore: event-queue closures (by replay), the radio neighborhood
// cache (pure memoization, rebuilt cold), kinematic-lifetime memos.
// Checkpoints are constant-size — a few KB regardless of world size —
// and capture costs one digest pass, never a serialization of the world.
//
// # On-disk format
//
// An 8-byte magic ("RRCKPT01", the version in the last two bytes), an
// 8-byte little-endian payload length, an 8-byte FNV-1a checksum of the
// payload, then the JSON-encoded Snapshot. Files are written atomically
// (temp file + rename), so a crash mid-write leaves the previous
// checkpoint intact, never a torn one.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/prng"
	"github.com/vanetlab/relroute/internal/scenario"
)

// FormatVersion is the snapshot schema version. Bump it when Snapshot's
// fields or any DigestInto implementation changes incompatibly; ReadFile
// rejects mismatched files with ErrVersion.
const FormatVersion = 1

var fileMagic = [8]byte{'R', 'R', 'C', 'K', 'P', 'T', '0', '1'}

var (
	// ErrMagic marks a file that is not a checkpoint at all.
	ErrMagic = errors.New("checkpoint: bad magic (not a checkpoint file)")
	// ErrChecksum marks a corrupted or truncated checkpoint payload.
	ErrChecksum = errors.New("checkpoint: payload checksum mismatch")
	// ErrVersion marks a checkpoint from an incompatible format version.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrVerify marks a restore whose fast-forwarded state failed
	// verification against the snapshot (digest or stream divergence).
	ErrVerify = errors.New("checkpoint: restored state does not match snapshot")
)

// Snapshot is one checkpoint: everything needed to rebuild a run, prove
// the rebuild reached the captured state, and continue byte-identically.
type Snapshot struct {
	Version  int    `json:"version"`
	Protocol string `json:"protocol"`
	Name     string `json:"name"`
	// Opts are the post-adjustment scenario options (sc.Opts after Build),
	// on which Build is idempotent. Opts.Channel must be nil — custom
	// in-memory channel models are not serializable, and Capture refuses
	// them.
	Opts scenario.Options `json:"opts"`
	// T is the simulation time of the checkpoint boundary; Events the
	// executed-event count there.
	T      float64 `json:"t"`
	Events uint64  `json:"events"`
	// Duration is the run's target end time, so a resume knows how far is
	// left without consulting anything else.
	Duration float64 `json:"duration"`
	// Digest is the world state digest at T (netstack.World.Digest):
	// shard- and worker-invariant, so a snapshot captured at Shards=1
	// verifies when restored at Shards=4 and vice versa.
	Digest uint64 `json:"digest"`
	// Streams is the full RNG stream table at T: every generator the run
	// consumes, with its seed and draw position.
	Streams []prng.State `json:"streams"`
	// HasSetup marks a run built with an in-process Setup hook (failure
	// injection, extra instrumentation). Such a run is only rebuildable by
	// the process that owns the hook: Restore refuses, Resume (with the
	// caller re-applying the hook to a fresh build) works.
	HasSetup bool `json:"has_setup,omitempty"`
}

// Capture snapshots a scenario at the current engine time. It must be
// called at an event-free boundary — after an AdvanceTo(t) returned, with
// no events executed since — never from inside a running event. The
// scenario's Options must be self-contained (Opts.Channel nil).
func Capture(sc *scenario.Scenario) (*Snapshot, error) {
	if sc.Opts.Channel != nil {
		return nil, fmt.Errorf("checkpoint: scenario %s/%s uses an in-memory channel model; only options-derived channels are serializable", sc.Protocol, sc.Name)
	}
	w := sc.World
	return &Snapshot{
		Version:  FormatVersion,
		Protocol: sc.Protocol,
		Name:     sc.Name,
		Opts:     sc.Opts,
		T:        w.Engine().Now(),
		Events:   w.Engine().EventCount(),
		Duration: sc.Opts.Duration,
		Digest:   w.Digest(),
		Streams:  w.AppendStreamStates(nil),
	}, nil
}

// WriteFile atomically writes the snapshot to path: the payload lands in
// a temp file in the same directory and is renamed into place, so readers
// (and crashes) see either the old checkpoint or the new one, never a
// torn write.
func WriteFile(path string, snap *Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, 24+len(payload))
	buf = append(buf, fileMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, digest.Sum64(payload))
	buf = append(buf, payload...)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// ReadFile reads and validates a checkpoint file: magic, length,
// checksum, then format version. Corruption surfaces as ErrChecksum,
// foreign files as ErrMagic, incompatible versions as ErrVersion.
func ReadFile(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	if len(raw) < 24 || [8]byte(raw[:8]) != fileMagic {
		return nil, fmt.Errorf("%w: %s", ErrMagic, path)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	sum := binary.LittleEndian.Uint64(raw[16:24])
	if uint64(len(raw)-24) != n {
		return nil, fmt.Errorf("%w: %s: truncated payload (%d of %d bytes)", ErrChecksum, path, len(raw)-24, n)
	}
	payload := raw[24:]
	if digest.Sum64(payload) != sum {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	if snap.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %s has version %d, this build reads %d", ErrVersion, path, snap.Version, FormatVersion)
	}
	return &snap, nil
}

// Restore rebuilds the snapshot's scenario from scratch and fast-forwards
// it to the checkpoint, verifying digest and stream table. On success the
// returned scenario's engine sits at snap.T with the run's periodic
// machinery armed (StartRun has run); continue with sc.World.AdvanceTo /
// CompleteRun / EndRun, or Complete. On failure the world's pool is torn
// down before returning.
//
// Shards is not part of a run's identity: mutate snap.Opts.Shards before
// calling to restore at a different shard count — the digest still
// verifies, and the continuation stays byte-identical.
func Restore(snap *Snapshot) (*scenario.Scenario, error) {
	if snap.HasSetup {
		return nil, fmt.Errorf("checkpoint: snapshot of %s/%s was captured under a run-specific Setup hook; rebuild the scenario in-process and use Resume", snap.Protocol, snap.Name)
	}
	sc, err := scenario.Build(snap.Protocol, snap.Opts)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuild: %w", err)
	}
	if err := Resume(sc, snap); err != nil {
		sc.World.EndRun()
		return nil, err
	}
	return sc, nil
}

// Resume fast-forwards a freshly built scenario to the snapshot boundary
// and verifies it reached the captured state: event count, then every
// stream's (owner, seed, position) — which pinpoints the diverging
// component on mismatch — then the full state digest. The scenario must
// be a fresh build of the snapshot's identity (same protocol and Opts,
// any Shards), with any Setup hook already re-applied.
func Resume(sc *scenario.Scenario, snap *Snapshot) error {
	w := sc.World
	w.StartRun()
	if err := w.AdvanceTo(snap.T); err != nil {
		return fmt.Errorf("checkpoint: fast-forward to t=%g: %w", snap.T, err)
	}
	if got := w.Engine().EventCount(); got != snap.Events {
		return fmt.Errorf("%w: executed %d events reaching t=%g, snapshot recorded %d", ErrVerify, got, snap.T, snap.Events)
	}
	got := w.AppendStreamStates(nil)
	if len(got) != len(snap.Streams) {
		return fmt.Errorf("%w: stream table has %d entries, snapshot recorded %d", ErrVerify, len(got), len(snap.Streams))
	}
	for i, s := range snap.Streams {
		if got[i] != s {
			return fmt.Errorf("%w: stream %q diverged: rebuilt (seed=%d draws=%d), snapshot (seed=%d draws=%d)",
				ErrVerify, s.Owner, got[i].Seed, got[i].Draws, s.Seed, s.Draws)
		}
	}
	if got := w.Digest(); got != snap.Digest {
		return fmt.Errorf("%w: state digest %#x, snapshot recorded %#x", ErrVerify, got, snap.Digest)
	}
	return nil
}

// Complete finishes a restored scenario: advance to the run's end,
// finalize accounting, tear down the pool, and summarize. The result is
// byte-identical to the summary an uninterrupted run would have produced.
func Complete(sc *scenario.Scenario) (metrics.Summary, error) {
	defer sc.World.EndRun()
	if err := sc.World.AdvanceTo(sc.Opts.Duration); err != nil {
		return metrics.Summary{}, err
	}
	sc.World.CompleteRun()
	return sc.Summary(), nil
}

// Policy configures segmented execution with periodic checkpoints.
type Policy struct {
	// Path is the snapshot file, atomically rewritten at every boundary.
	// Empty disables checkpoint writes (the run still executes segmented,
	// which is unobservable).
	Path string
	// Every is the simulation-time spacing of checkpoint boundaries in
	// seconds; <= 0 means 10.
	Every float64
	// StopAt, when positive and before the run's Duration, stops the run
	// at that boundary after writing a final checkpoint — the "kill and
	// resume later" path CLIs expose as -stop-at.
	StopAt float64
	// HasSetup stamps written snapshots as runner-rebuilt-only (see
	// Snapshot.HasSetup).
	HasSetup bool
	// OnCheckpoint, if non-nil, is invoked after each successful snapshot
	// write (progress reporting).
	OnCheckpoint func(snap *Snapshot)
}

func (p Policy) every() float64 {
	if p.Every <= 0 {
		return 10
	}
	return p.Every
}

// Run executes the scenario in checkpoint-spaced segments: each boundary
// is event-free, so the run's event sequence — and therefore its output —
// is byte-identical to Scenario.Run. It works on fresh builds and on
// scenarios positioned by Resume alike (segments start at the engine's
// current time).
//
// done reports whether the run reached its Duration: true means the
// summary is valid and any checkpoint file has been removed (the run
// needs no resuming); false means the run stopped at Policy.StopAt with
// a checkpoint on disk and a zero summary. An engine interruption (a
// deadline or Ctrl-C) surfaces as an error; the last boundary snapshot
// on disk is then the durable artifact — state mid-segment is never
// captured.
func Run(sc *scenario.Scenario, pol Policy) (sum metrics.Summary, done bool, err error) {
	w := sc.World
	w.StartRun()
	defer w.EndRun()
	end := sc.Opts.Duration
	stop := end
	if pol.StopAt > 0 && pol.StopAt < end {
		stop = pol.StopAt
	}
	every := pol.every()
	t := w.Engine().Now()
	for t < stop {
		t += every
		if t > stop {
			t = stop
		}
		if err := w.AdvanceTo(t); err != nil {
			return metrics.Summary{}, false, err
		}
		if pol.Path != "" && (t < end || stop < end) {
			snap, err := Capture(sc)
			if err != nil {
				return metrics.Summary{}, false, err
			}
			snap.HasSetup = pol.HasSetup
			if err := WriteFile(pol.Path, snap); err != nil {
				return metrics.Summary{}, false, err
			}
			if pol.OnCheckpoint != nil {
				pol.OnCheckpoint(snap)
			}
		}
	}
	if stop < end {
		return metrics.Summary{}, false, nil
	}
	w.CompleteRun()
	if pol.Path != "" {
		os.Remove(pol.Path) // completed runs need no resume artifact
	}
	return sc.Summary(), true, nil
}
