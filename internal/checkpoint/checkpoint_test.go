package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/scenario"
)

// runClean executes the scenario uninterrupted and returns its summary.
func runClean(t *testing.T, protocol string, opts scenario.Options) metrics.Summary {
	t.Helper()
	sum, err := scenario.RunProtocol(protocol, opts)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	return sum
}

// captureAt builds the scenario, advances to t, captures, and returns the
// snapshot (tearing the interrupted run down).
func captureAt(t *testing.T, protocol string, opts scenario.Options, at float64) *Snapshot {
	t.Helper()
	sc, err := scenario.Build(protocol, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer sc.World.EndRun()
	sc.World.StartRun()
	if err := sc.World.AdvanceTo(at); err != nil {
		t.Fatalf("advance to %g: %v", at, err)
	}
	snap, err := Capture(sc)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return snap
}

// roundTrip asserts that capture-at-mid-run → write → read → restore in a
// "fresh process" → run-to-end reproduces the uninterrupted summary
// exactly, at the given restore shard count.
func roundTrip(t *testing.T, protocol string, opts scenario.Options, restoreShards int) {
	t.Helper()
	want := runClean(t, protocol, opts)
	snap := captureAt(t, protocol, opts, opts.Duration/2)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteFile(path, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	loaded.Opts.Shards = restoreShards
	sc, err := Restore(loaded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	got, err := Complete(sc)
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored run diverged from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

func baseOpts() scenario.Options {
	return scenario.Options{Seed: 42, Vehicles: 30, Duration: 20, Flows: 3, FlowPackets: 12}
}

func TestRoundTripHighwayTBPSS(t *testing.T) {
	roundTrip(t, "TBP-SS", baseOpts(), 0)
}

func TestRoundTripCityRushGreedy(t *testing.T) {
	o := baseOpts()
	o.Scenario = "city-rush"
	roundTrip(t, "Greedy", o, 0)
}

func TestRoundTripOpenWorldChurn(t *testing.T) {
	o := baseOpts()
	o.ArrivalRate = 0.5
	o.MeanLifetime = 15
	roundTrip(t, "Greedy", o, 0)
}

func TestRoundTripFaultProfile(t *testing.T) {
	o := baseOpts()
	o.Faults = "rolling-crashes"
	roundTrip(t, "AODV", o, 0)
}

func TestRoundTripCrossShards(t *testing.T) {
	// Capture at Shards=1, restore at Shards=4: Shards is not part of a
	// run's identity, so the digest must verify and the continuation must
	// match byte for byte.
	roundTrip(t, "TBP-SS", baseOpts(), 4)
}

func TestRoundTripCaptureShardedRestoreSequential(t *testing.T) {
	o := baseOpts()
	o.Shards = 4
	roundTrip(t, "TBP-SS", o, 0)
}

func TestCaptureRefusesInMemoryChannel(t *testing.T) {
	o := baseOpts()
	sc, err := scenario.Build("Greedy", o)
	if err != nil {
		t.Fatal(err)
	}
	sc.Opts.Channel = sc.World.Channel() // simulate an injected model
	if _, err := Capture(sc); err == nil {
		t.Fatal("Capture accepted a scenario with an in-memory channel model")
	}
}

func TestRestoreRefusesSetupSnapshots(t *testing.T) {
	snap := captureAt(t, "Greedy", baseOpts(), 5)
	snap.HasSetup = true
	if _, err := Restore(snap); err == nil {
		t.Fatal("Restore accepted a HasSetup snapshot")
	}
}

func TestFileFormatRejectsCorruption(t *testing.T) {
	snap := captureAt(t, "Greedy", baseOpts(), 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), raw...)
	flip[len(flip)-1] ^= 0xff
	bad := filepath.Join(dir, "flip.ckpt")
	os.WriteFile(bad, flip, 0o644)
	if _, err := ReadFile(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: got %v, want ErrChecksum", err)
	}

	trunc := filepath.Join(dir, "trunc.ckpt")
	os.WriteFile(trunc, raw[:len(raw)-5], 0o644)
	if _, err := ReadFile(trunc); !errors.Is(err, ErrChecksum) {
		t.Errorf("truncated payload: got %v, want ErrChecksum", err)
	}

	foreign := filepath.Join(dir, "foreign.ckpt")
	os.WriteFile(foreign, []byte("<fcd-export>this is not a checkpoint</fcd-export>"), 0o644)
	if _, err := ReadFile(foreign); !errors.Is(err, ErrMagic) {
		t.Errorf("foreign file: got %v, want ErrMagic", err)
	}
}

func TestVerifyCatchesDigestTampering(t *testing.T) {
	snap := captureAt(t, "Greedy", baseOpts(), 5)
	snap.Digest ^= 1
	if _, err := Restore(snap); !errors.Is(err, ErrVerify) {
		t.Fatalf("tampered digest: got %v, want ErrVerify", err)
	}
}

func TestVerifyCatchesStreamTampering(t *testing.T) {
	snap := captureAt(t, "Greedy", baseOpts(), 5)
	if len(snap.Streams) == 0 {
		t.Fatal("snapshot has no streams")
	}
	snap.Streams[0].Draws++
	if _, err := Restore(snap); !errors.Is(err, ErrVerify) {
		t.Fatalf("tampered stream table: got %v, want ErrVerify", err)
	}
}

func TestPolicyRunMatchesUninterrupted(t *testing.T) {
	o := baseOpts()
	want := runClean(t, "TBP-SS", o)
	sc, err := scenario.Build("TBP-SS", o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	boundaries := 0
	got, done, err := Run(sc, Policy{Path: path, Every: 3, OnCheckpoint: func(*Snapshot) { boundaries++ }})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Run did not report completion")
	}
	if boundaries == 0 {
		t.Fatal("Run wrote no checkpoints")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segmented run diverged from Scenario.Run:\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("completed run left its checkpoint file behind: %v", err)
	}
}

func TestStopAtThenResumeCompletes(t *testing.T) {
	o := baseOpts()
	want := runClean(t, "TBP-SS", o)
	sc, err := scenario.Build("TBP-SS", o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, done, err := Run(sc, Policy{Path: path, Every: 4, StopAt: 10})
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("StopAt run reported completion")
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatalf("StopAt left no loadable checkpoint: %v", err)
	}
	if snap.T != 10 {
		t.Fatalf("final checkpoint at t=%g, want 10", snap.T)
	}
	resumed, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, done, err := Run(resumed, Policy{Path: path, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("resumed run did not complete")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stop/resume run diverged from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}
