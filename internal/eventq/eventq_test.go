package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var fired []int
	q.Schedule(3, func() { fired = append(fired, 3) })
	q.Schedule(1, func() { fired = append(fired, 1) })
	q.Schedule(2, func() { fired = append(fired, 2) })
	for {
		_, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func() { fired = append(fired, i) })
	}
	for {
		_, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("equal-time events out of insertion order: %v", fired)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	id := q.Schedule(1, func() { ran = true })
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	if !q.Cancel(id) {
		t.Fatal("cancel reported false for pending event")
	}
	if q.Cancel(id) {
		t.Fatal("double cancel reported true")
	}
	if q.Len() != 0 {
		t.Fatalf("len after cancel = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop returned a cancelled event")
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelUnknown(t *testing.T) {
	var q Queue
	if q.Cancel(12345) {
		t.Fatal("cancel of unknown id reported true")
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("peek on empty queue reported ok")
	}
	q.Schedule(7, func() {})
	id := q.Schedule(2, func() {})
	if at, ok := q.PeekTime(); !ok || at != 2 {
		t.Fatalf("peek = %v,%v", at, ok)
	}
	q.Cancel(id)
	if at, ok := q.PeekTime(); !ok || at != 7 {
		t.Fatalf("peek after cancel head = %v,%v", at, ok)
	}
}

func TestCancelledHeadDoesNotBlock(t *testing.T) {
	var q Queue
	a := q.Schedule(1, func() {})
	q.Schedule(2, func() {})
	q.Cancel(a)
	at, _, ok := q.Pop()
	if !ok || at != 2 {
		t.Fatalf("pop = %v,%v", at, ok)
	}
}

func TestPopOrderProperty(t *testing.T) {
	// property: whatever times go in, pops are non-decreasing
	f := func(times []float64) bool {
		var q Queue
		for _, at := range times {
			if math.IsNaN(at) {
				return true // NaN times are out of contract
			}
			q.Schedule(at, func() {})
		}
		prev := math.Inf(-1)
		for {
			at, _, ok := q.Pop()
			if !ok {
				break
			}
			if at < prev {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomCancelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var q Queue
	var ids []ID
	var times []float64
	for i := 0; i < 500; i++ {
		at := rng.Float64() * 100
		ids = append(ids, q.Schedule(at, func() {}))
		times = append(times, at)
	}
	// cancel a random half
	cancelled := make(map[int]bool)
	for i := 0; i < 250; i++ {
		idx := rng.Intn(len(ids))
		if q.Cancel(ids[idx]) {
			cancelled[idx] = true
		}
	}
	var expect []float64
	for i, at := range times {
		if !cancelled[i] {
			expect = append(expect, at)
		}
	}
	sort.Float64s(expect)
	var got []float64
	for {
		at, _, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, at)
	}
	if len(got) != len(expect) {
		t.Fatalf("got %d events, want %d", len(got), len(expect))
	}
	for i := range got {
		if got[i] != expect[i] {
			t.Fatalf("event %d time %v, want %v", i, got[i], expect[i])
		}
	}
}
