package eventq

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/vanetlab/relroute/internal/digest"
)

// refQueue is a deliberately naive reference implementation: a sorted-on-
// demand slice with (at, seq) keys and explicit ID bookkeeping. The real
// queue — heap-only or calendar — must match its pop order and its
// generation-stamp semantics exactly under arbitrary Schedule/Cancel/Pop
// interleavings.
type refQueue struct {
	ents []refEnt
	seq  uint64
	next int
}

type refEnt struct {
	at        float64
	seq       uint64
	id        int
	cancelled bool
}

func (r *refQueue) schedule(at float64) int {
	r.seq++
	r.next++
	r.ents = append(r.ents, refEnt{at: at, seq: r.seq, id: r.next})
	return r.next
}

func (r *refQueue) cancel(id int) bool {
	for i := range r.ents {
		if r.ents[i].id == id && !r.ents[i].cancelled {
			r.ents[i].cancelled = true
			return true
		}
	}
	return false
}

func (r *refQueue) pop() (float64, int, bool) {
	best := -1
	for i := range r.ents {
		if r.ents[i].cancelled {
			continue
		}
		if best < 0 || r.ents[i].at < r.ents[best].at ||
			(r.ents[i].at == r.ents[best].at && r.ents[i].seq < r.ents[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	e := r.ents[best]
	r.ents = append(r.ents[:best], r.ents[best+1:]...)
	return e.at, e.id, true
}

func (r *refQueue) len() int {
	n := 0
	for i := range r.ents {
		if !r.ents[i].cancelled {
			n++
		}
	}
	return n
}

// runInterleaving drives Queue and refQueue through the same randomized
// op sequence and fails on the first divergence. Times are drawn from a
// narrow range so equal-time FIFO ties are exercised constantly, and the
// op mix keeps the queue large enough to cross the calendar build
// threshold (and, with drift phases, to migrate heap overflow back in).
func runInterleaving(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var q Queue
	ref := &refQueue{}
	ids := make(map[int]ID)  // ref id → real id, pending only
	done := make(map[int]ID) // ref id → real id, fired: stale handles
	fired := make(map[int]bool)
	var order []int // ref ids in real pop order (via closure capture)
	now := 0.0

	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.55 || q.Len() == 0:
			// Mix of near-future (dense, collision-heavy), same-time
			// (FIFO ties), and far-future (heap overflow) times.
			var at float64
			switch k := rng.Intn(10); {
			case k < 6:
				at = now + float64(rng.Intn(64)) // integral: forces ties
			case k < 8:
				at = now + rng.Float64()*50
			case k == 8:
				at = now + 1e6 + rng.Float64()*1e6 // far future
			default:
				at = now - rng.Float64()*5 // past: clamps to cursor
			}
			rid := ref.schedule(at)
			ids[rid] = q.Schedule(at, func() {
				if fired[rid] {
					t.Fatalf("ref id %d fired twice", rid)
				}
				fired[rid] = true
				order = append(order, rid)
			})
		case r < 0.75:
			// Cancel a random pending event — or a stale/fired ID,
			// which must report false.
			if len(ids) > 0 && rng.Intn(4) > 0 {
				var rid int
				for k := range ids {
					rid = k
					break
				}
				gotReal := q.Cancel(ids[rid])
				gotRef := ref.cancel(rid)
				if gotReal != gotRef {
					t.Fatalf("op %d: Cancel(pending %d) = %v, ref %v", op, rid, gotReal, gotRef)
				}
				if q.Cancel(ids[rid]) {
					t.Fatalf("op %d: double Cancel(%d) reported true", op, rid)
				}
				delete(ids, rid)
			} else if len(order) > 0 {
				rid := order[rng.Intn(len(order))]
				if q.Cancel(done[rid]) {
					t.Fatalf("op %d: Cancel of fired id %d reported true", op, rid)
				}
			}
		default:
			at, fn, ok := q.Pop()
			rat, rid, rok := ref.pop()
			if ok != rok {
				t.Fatalf("op %d: Pop ok=%v, ref %v", op, ok, rok)
			}
			if !ok {
				continue
			}
			if at != rat {
				t.Fatalf("op %d: Pop at=%v, ref %v", op, at, rat)
			}
			fn()
			if n := len(order); n == 0 || order[n-1] != rid {
				t.Fatalf("op %d: popped ref id %v, want %d", op, order, rid)
			}
			if at > now {
				now = at
			}
			done[rid] = ids[rid]
			delete(ids, rid)
		}
		if q.Len() != ref.len() {
			t.Fatalf("op %d: Len=%d, ref %d", op, q.Len(), ref.len())
		}
	}
	// Drain both completely; tails must agree too.
	for {
		at, fn, ok := q.Pop()
		rat, rid, rok := ref.pop()
		if ok != rok {
			t.Fatalf("drain: Pop ok=%v, ref %v", ok, rok)
		}
		if !ok {
			break
		}
		if at != rat {
			t.Fatalf("drain: Pop at=%v, ref %v", at, rat)
		}
		fn()
		if n := len(order); order[n-1] != rid {
			t.Fatalf("drain: popped wrong event, want ref id %d", rid)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drained queue reports Len=%d", q.Len())
	}
}

func TestInterleavingsVsReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		runInterleaving(t, seed, 3000)
	}
}

// FuzzInterleavings lets the fuzzer hunt for op sequences (via the seed)
// where the calendar layout diverges from the reference. Run with
// go test -fuzz=FuzzInterleavings ./internal/eventq.
func FuzzInterleavings(f *testing.F) {
	f.Add(int64(42), uint16(500))
	f.Add(int64(7), uint16(2000))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		runInterleaving(t, seed, int(ops)%4096)
	})
}

// TestDigestLayoutInvariant pins the canonical-digest contract: the same
// logical pending set must digest identically whether it lives in the
// heap-only layout (ForceHeap) or the calendar layout, regardless of the
// cancel/pop history that shaped the internal arrays.
func TestDigestLayoutInvariant(t *testing.T) {
	build := func(forceHeap bool) ([]float64, uint64, float64) {
		defer func(prev bool) { ForceHeap = prev }(ForceHeap)
		ForceHeap = forceHeap
		rng := rand.New(rand.NewSource(99))
		var q Queue
		var ids []ID
		for i := 0; i < 2000; i++ {
			ids = append(ids, q.Schedule(rng.Float64()*100, func() {}))
		}
		for i := 0; i < 500; i++ {
			q.Cancel(ids[rng.Intn(len(ids))])
		}
		for i := 0; i < 700; i++ {
			q.Pop()
		}
		for i := 0; i < 300; i++ {
			q.Schedule(50+rng.Float64()*100, func() {})
		}
		var times []float64
		for _, e := range q.heap {
			if !q.slots[e.slot].cancelled {
				times = append(times, e.at)
			}
		}
		for bi := range q.buckets {
			for _, e := range q.buckets[bi] {
				if !q.slots[e.slot].cancelled {
					times = append(times, e.at)
				}
			}
		}
		sort.Float64s(times)
		d := digest.New()
		q.DigestInto(d)
		return times, d.Sum(), q.width
	}
	ht, hd, hw := build(true)
	ct, cd, cw := build(false)
	if hw != 0.0 {
		t.Fatalf("ForceHeap run still built a calendar")
	}
	if cw == 0 {
		t.Fatalf("calendar run never built a calendar; threshold drifted?")
	}
	if len(ht) != len(ct) {
		t.Fatalf("pending sets diverged: %d vs %d events", len(ht), len(ct))
	}
	for i := range ht {
		if ht[i] != ct[i] {
			t.Fatalf("pending times diverged at %d: %v vs %v", i, ht[i], ct[i])
		}
	}
	if hd != cd {
		t.Fatalf("digest differs across layouts: heap %x, calendar %x", hd, cd)
	}
}
