package eventq

import "testing"

// The queue must be allocation-free in steady state: slots and heap
// entries are recycled, so once the slab has grown to the working-set
// size, Schedule, Pop, and Cancel never touch the garbage collector.

func TestSchedulePopAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	for i := 0; i < 256; i++ {
		q.Schedule(float64(i), fn)
	}
	at := 256.0
	allocs := testing.AllocsPerRun(1000, func() {
		q.Schedule(at, fn)
		at++
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Pop allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// warmCalendar drives q through enough schedule/pop churn (at ascending
// times spaced like a beacon workload) that the calendar layer builds and
// its geometry settles. It fails the test if the calendar never engages.
func warmCalendar(t *testing.T, q *Queue, pending int) float64 {
	t.Helper()
	fn := func() {}
	at := 0.0
	for i := 0; i < pending; i++ {
		q.Schedule(at, fn)
		at++
	}
	for i := 0; i < 2*calMinGaps+pending; i++ {
		q.Schedule(at, fn)
		at++
		q.Pop()
	}
	if q.width == 0 {
		t.Fatal("calendar never engaged during warm-up")
	}
	return at
}

// TestCalendarSchedulePopAllocFree pins the steady-state allocation
// behaviour of the calendar layout specifically: once built, Schedule+Pop
// cycles recycle bucket entries and slots without touching the allocator.
func TestCalendarSchedulePopAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	at := warmCalendar(t, &q, 512)
	allocs := testing.AllocsPerRun(2000, func() {
		q.Schedule(at, fn)
		at++
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("calendar Schedule+Pop allocates %.1f objects/op in steady state, want 0", allocs)
	}
	if q.width == 0 {
		t.Fatal("calendar tore down mid-measurement")
	}
}

// TestCalendarScheduleCancelAllocFree is the cancel-path pin for the
// calendar layout: armed-then-disarmed timers recycle through the bucket
// scan without allocating.
func TestCalendarScheduleCancelAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	at := warmCalendar(t, &q, 512)
	allocs := testing.AllocsPerRun(2000, func() {
		id := q.Schedule(at, fn)
		at++
		q.Cancel(id)
		q.Schedule(at, fn) // keep the queue populated
		at++
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("calendar Schedule+Cancel allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestForceHeapSchedulePopAllocFree pins the heap-only layout (the
// ForceHeap escape hatch used by layout-invariance fixtures) to the same
// zero-alloc contract.
func TestForceHeapSchedulePopAllocFree(t *testing.T) {
	defer func(prev bool) { ForceHeap = prev }(ForceHeap)
	ForceHeap = true
	var q Queue
	fn := func() {}
	for i := 0; i < 512; i++ {
		q.Schedule(float64(i), fn)
	}
	at := 512.0
	allocs := testing.AllocsPerRun(2000, func() {
		q.Schedule(at, fn)
		at++
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("ForceHeap Schedule+Pop allocates %.1f objects/op, want 0", allocs)
	}
	if q.width != 0 {
		t.Fatal("ForceHeap queue built a calendar")
	}
}

func TestScheduleCancelAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	// warm up: grow the slab past the working set, then drain
	ids := make([]ID, 0, 256)
	for i := 0; i < 256; i++ {
		ids = append(ids, q.Schedule(float64(i), fn))
	}
	for _, id := range ids {
		q.Cancel(id)
	}
	for {
		if _, ok := q.PeekTime(); !ok {
			break
		}
		q.Pop()
	}
	at := 1000.0
	allocs := testing.AllocsPerRun(100, func() {
		id := q.Schedule(at, fn)
		at++
		q.Cancel(id)
		q.PeekTime() // drains the cancelled head, recycling the slot
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
