package eventq

import "testing"

// The queue must be allocation-free in steady state: slots and heap
// entries are recycled, so once the slab has grown to the working-set
// size, Schedule, Pop, and Cancel never touch the garbage collector.

func TestSchedulePopAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	for i := 0; i < 256; i++ {
		q.Schedule(float64(i), fn)
	}
	at := 256.0
	allocs := testing.AllocsPerRun(1000, func() {
		q.Schedule(at, fn)
		at++
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Pop allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func TestScheduleCancelAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	// warm up: grow the slab past the working set, then drain
	ids := make([]ID, 0, 256)
	for i := 0; i < 256; i++ {
		ids = append(ids, q.Schedule(float64(i), fn))
	}
	for _, id := range ids {
		q.Cancel(id)
	}
	for {
		if _, ok := q.PeekTime(); !ok {
			break
		}
		q.Pop()
	}
	at := 1000.0
	allocs := testing.AllocsPerRun(100, func() {
		id := q.Schedule(at, fn)
		at++
		q.Cancel(id)
		q.PeekTime() // drains the cancelled head, recycling the slot
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
