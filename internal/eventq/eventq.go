// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulation engine. Events fire in non-decreasing time
// order; events scheduled for the same instant fire in the order they were
// scheduled (FIFO), which keeps runs deterministic.
package eventq

import "container/heap"

// ID identifies a scheduled event so it can be cancelled. The zero ID is
// never issued.
type ID uint64

// Event is a queued callback.
type event struct {
	at        float64
	seq       uint64 // tie-breaker for equal times: insertion order
	id        ID
	fn        func()
	cancelled bool
	index     int // heap index, maintained by heap.Interface
}

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation engine owns it.
type Queue struct {
	h      eventHeap
	nextID ID
	seq    uint64
	byID   map[ID]*event
	live   int // scheduled and not cancelled
}

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return q.live }

// Schedule enqueues fn to run at time at and returns a handle that can be
// passed to Cancel.
func (q *Queue) Schedule(at float64, fn func()) ID {
	if q.byID == nil {
		q.byID = make(map[ID]*event)
	}
	q.nextID++
	q.seq++
	ev := &event{at: at, seq: q.seq, id: q.nextID, fn: fn}
	heap.Push(&q.h, ev)
	q.byID[ev.id] = ev
	q.live++
	return ev.id
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (q *Queue) Cancel(id ID) bool {
	ev, ok := q.byID[id]
	if !ok || ev.cancelled {
		return false
	}
	ev.cancelled = true
	delete(q.byID, id)
	q.live--
	return true
}

// PeekTime returns the time of the next pending event. ok is false when the
// queue is empty.
func (q *Queue) PeekTime() (at float64, ok bool) {
	q.drainCancelled()
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Pop removes and returns the next event's time and callback. ok is false
// when the queue is empty.
func (q *Queue) Pop() (at float64, fn func(), ok bool) {
	q.drainCancelled()
	if q.h.Len() == 0 {
		return 0, nil, false
	}
	ev := heap.Pop(&q.h).(*event)
	delete(q.byID, ev.id)
	q.live--
	return ev.at, ev.fn, true
}

// drainCancelled lazily discards cancelled events sitting at the head.
func (q *Queue) drainCancelled() {
	for q.h.Len() > 0 && q.h[0].cancelled {
		heap.Pop(&q.h)
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
