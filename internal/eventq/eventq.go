// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulation engine. Events fire in non-decreasing time
// order; events scheduled for the same instant fire in the order they were
// scheduled (FIFO), which keeps runs deterministic.
//
// Storage is a two-level structure. Near-future events — beacon ticks,
// end-of-airtime, step ticks, the bulk of the workload — live in a calendar
// of power-of-two time buckets (a timer wheel keyed by absolute bucket
// index), giving O(1) amortized Schedule/Pop/Cancel. Far-future events
// overflow into a binary heap and migrate into the calendar as the cursor
// advances. Small queues run heap-only; the calendar switches on once the
// queue is big enough for the bucket math to pay for itself, with the
// bucket width adapted from the observed inter-pop gap. The split is
// invisible to callers: pop order is exactly (time, seq) regardless of
// which side an event sits on.
//
// The queue is allocation-free in steady state: callbacks live in a slab of
// slots recycled through a free list, calendar and heap entries carry their
// own (time, seq) sort key so comparisons never chase a pointer, and IDs
// carry a generation stamp so a recycled slot cannot be cancelled through a
// stale handle. After warm-up — including the one-time calendar build —
// Schedule, Pop, and Cancel do not allocate.
package eventq

import (
	"math/bits"
	"slices"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
)

// ForceHeap disables the calendar layer so the queue runs heap-only, the
// pre-calendar layout. It is a test hook — checkpoint layout-invariance
// tests capture a snapshot under one layout and restore it under the other
// — and must be set before the queue is first used.
var ForceHeap bool

// ID identifies a scheduled event so it can be cancelled. The zero ID is
// never issued. An ID packs the slot index (high 32 bits) and the slot's
// generation at scheduling time (low 32 bits); generations start at 1 and
// bump on every cancel/pop, so stale IDs are rejected without a map.
type ID uint64

func makeID(slot int32, gen uint32) ID { return ID(uint64(slot)<<32 | uint64(gen)) }

func (id ID) slot() int32 { return int32(id >> 32) }
func (id ID) gen() uint32 { return uint32(id) }

// slot holds the callback of one scheduled event. A slot is live (its
// generation matches outstanding IDs), cancelled (still referenced by a
// calendar or heap entry, lazily drained), or free (on the free list).
type slot struct {
	fn        func()
	gen       uint32
	cancelled bool
}

// ent is one queue entry: the sort key inline plus the slot index.
type ent struct {
	at   float64
	seq  uint64 // tie-breaker for equal times: insertion order
	slot int32
}

func (a ent) before(b ent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const (
	// calMinLive is the live-event count above which the calendar layer
	// switches on. Below it a plain heap is both smaller and faster.
	calMinLive = 64
	// calMinGaps is how many inter-pop gap samples must accumulate before
	// the first calendar build, so the initial bucket width is informed.
	calMinGaps = 32
	// maxBuckets bounds the ring; beyond it, extra events simply deepen
	// the buckets, which stays O(live/nb) per pop.
	maxBuckets = 1 << 16
	// bucketCap is the initial per-bucket capacity, sized for the ~2
	// events/bucket the width policy targets, so steady-state appends
	// never grow a bucket.
	bucketCap = 4
	// maxBucketFloat guards the float→int64 bucket-index conversion:
	// indices at or beyond it (including +Inf and NaN) go to the heap.
	maxBucketFloat = float64(1 << 62)
	// widthCheckEvery is how many pops pass between bucket-width drift
	// checks once the calendar is live.
	widthCheckEvery = 4096
	// sortAbove is the bucket depth beyond which the cursor bucket is
	// sorted once and consumed from the tail instead of min-scanned per
	// pop. Contention bursts (MAC backoff storms) pile hundreds of
	// events into one bucket; sorting turns that from O(k) per pop into
	// O(log k) amortized.
	sortAbove = 12
)

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation engine owns it.
type Queue struct {
	slots []slot
	free  []int32 // recycled slot indices
	seq   uint64
	live  int // scheduled and not cancelled

	// heap holds all events while the calendar is off, and far-future
	// overflow (at beyond the calendar window) once it is on.
	heap []ent

	// Calendar ring. width == 0 means the calendar is off. cur is the
	// cursor's absolute bucket index (at/width truncated); an event maps
	// into the ring iff its index falls in [cur, cur+nb). Entries within
	// a bucket are unordered; pops scan the cursor bucket for the
	// (at, seq) minimum, which the ~2 events/bucket width policy keeps
	// O(1) amortized.
	width    float64
	nb       int // power of two
	mask     int64
	cur      int64
	buckets  [][]ent
	occ      []uint64 // occupancy bitmap, one bit per bucket
	calCount int
	sortedBI int // physical index of the one descending-sorted bucket, -1 if none

	// Inter-pop gap statistics feeding the width policy (decayed sums).
	// Zero gaps (same-instant events) count toward the mean: they are
	// real bucket occupancy, and ignoring them would widen buckets by
	// exactly the same-time multiplicity.
	lastPop float64
	havePop bool
	gapSum  float64
	gapCnt  int
	sincChk int

	// cancelPending counts cancelled entries still sitting in a bucket
	// or the heap. While zero — the overwhelmingly common case — bucket
	// scans skip the per-entry slot dereference entirely.
	cancelPending int

	// Peek cache: the engine calls PeekTime then Pop back to back; the
	// min found by the first call is reused by the second. Any Schedule
	// or Cancel invalidates it.
	pkValid  bool
	pkHeap   bool
	pkBucket int
	pkIdx    int

	scratch []ent // rebuild + digest scratch
}

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return q.live }

// Schedule enqueues fn to run at time at and returns a handle that can be
// passed to Cancel. It does not allocate once the slab has grown to the
// queue's steady-state size.
func (q *Queue) Schedule(at float64, fn func()) ID {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot{gen: 1})
		idx = int32(len(q.slots) - 1)
	}
	q.seq++
	s := &q.slots[idx]
	s.fn = fn
	s.cancelled = false
	id := makeID(idx, s.gen)
	q.insert(ent{at: at, seq: q.seq, slot: idx})
	q.live++
	return id
}

// insert places e into the calendar when it maps into the current window,
// else into the heap.
func (q *Queue) insert(e ent) {
	q.pkValid = false
	if q.width > 0 {
		if b, ok := q.bucketFor(e.at); ok {
			q.putBucket(int(b&q.mask), e)
			if q.calCount > 2*q.nb && q.nb < maxBuckets {
				q.rebuild()
			}
			return
		}
	}
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
}

// putBucket appends e to physical bucket p — or, when p is the sorted
// cursor bucket, splices it in at its (at, seq) rank so the descending
// order (minimum at the tail) survives.
func (q *Queue) putBucket(p int, e ent) {
	bkt := q.buckets[p]
	if p == q.sortedBI {
		pos := sort.Search(len(bkt), func(i int) bool { return bkt[i].before(e) })
		bkt = append(bkt, ent{})
		copy(bkt[pos+1:], bkt[pos:])
		bkt[pos] = e
	} else {
		bkt = append(bkt, e)
	}
	q.buckets[p] = bkt
	q.occ[p>>6] |= 1 << uint(p&63)
	q.calCount++
}

// bucketFor maps a time to an absolute bucket index within the current
// window. Past times clamp to the cursor bucket (they must still pop first,
// which the in-bucket (at, seq) scan guarantees); times at or beyond the
// window end — or not representable as a bucket index — report false and
// overflow to the heap.
func (q *Queue) bucketFor(at float64) (int64, bool) {
	f := at / q.width
	if !(f < maxBucketFloat) {
		return 0, false
	}
	b := int64(f)
	if b < q.cur {
		b = q.cur
	}
	if b >= q.cur+int64(q.nb) {
		return 0, false
	}
	return b, true
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (q *Queue) Cancel(id ID) bool {
	idx := id.slot()
	if idx < 0 || int(idx) >= len(q.slots) {
		return false
	}
	s := &q.slots[idx]
	if s.gen != id.gen() {
		return false // already fired, already cancelled, or recycled
	}
	s.cancelled = true
	s.fn = nil // release the closure immediately
	s.gen++    // stale handles (including double cancels) now mismatch
	q.live--
	q.cancelPending++
	q.pkValid = false
	return true
}

// PeekTime returns the time of the next pending event. ok is false when the
// queue is empty.
func (q *Queue) PeekTime() (at float64, ok bool) {
	if !q.findMin() {
		return 0, false
	}
	if q.pkHeap {
		return q.heap[0].at, true
	}
	return q.buckets[q.pkBucket][q.pkIdx].at, true
}

// Pop removes and returns the next event's time and callback. ok is false
// when the queue is empty.
func (q *Queue) Pop() (at float64, fn func(), ok bool) {
	if !q.findMin() {
		return 0, nil, false
	}
	var e ent
	if q.pkHeap {
		e = q.heap[0]
		q.removeRoot()
	} else {
		bi := q.pkBucket
		bkt := q.buckets[bi]
		e = bkt[q.pkIdx]
		last := len(bkt) - 1
		bkt[q.pkIdx] = bkt[last]
		q.buckets[bi] = bkt[:last]
		if last == 0 {
			q.occ[bi>>6] &^= 1 << uint(bi&63)
			if bi == q.sortedBI {
				q.sortedBI = -1
			}
		}
		q.calCount--
	}
	q.pkValid = false
	s := &q.slots[e.slot]
	fn = s.fn
	s.fn = nil
	s.gen++
	q.free = append(q.free, e.slot)
	q.live--
	q.notePop(e.at)
	q.maintain()
	return e.at, fn, true
}

// findMin locates the next live event and records its position in the peek
// cache. It reports false when the queue is empty. On the way it drains
// cancelled entries it walks over, migrates heap overflow that the
// advancing cursor has brought into the window, and moves the cursor to
// the first occupied bucket.
func (q *Queue) findMin() bool {
	if q.pkValid {
		return true
	}
	q.drainHeapHead()
	if q.width == 0 {
		if len(q.heap) == 0 {
			return false
		}
		q.pkValid, q.pkHeap = true, true
		return true
	}
restart:
	if q.calCount == 0 {
		if len(q.heap) == 0 {
			return false
		}
		// Jump the cursor forward to the heap head's bucket so migration
		// can pull it (and its neighbourhood) into the ring.
		if f := q.heap[0].at / q.width; f < maxBucketFloat {
			if b := int64(f); b > q.cur {
				q.cur = b
			}
		}
	}
	q.migrate()
	if q.calCount == 0 {
		// Nothing migratable: the remaining events are beyond the
		// representable window; serve them straight from the heap.
		if len(q.heap) == 0 {
			return false
		}
		q.pkValid, q.pkHeap = true, true
		return true
	}
	for {
		q.cur = q.nextOcc(q.cur)
		bi := int(q.cur & q.mask)
		bkt := q.buckets[bi]
		best := -1
		if q.cancelPending == 0 {
			switch {
			case bi == q.sortedBI:
				// Sorted cursor bucket: the minimum is at the tail.
				best = len(bkt) - 1
			case len(bkt) > sortAbove:
				// Deep bucket (a contention burst): sort it once,
				// descending, and consume from the tail from now on.
				slices.SortFunc(bkt, func(a, b ent) int {
					if a.before(b) {
						return 1
					}
					if b.before(a) {
						return -1
					}
					return 0
				})
				q.sortedBI = bi
				best = len(bkt) - 1
			default:
				// Shallow bucket: a pure (at, seq) min scan over a
				// contiguous slice.
				var bestE ent
				for i, e := range bkt {
					if best < 0 || e.before(bestE) {
						best, bestE = i, e
					}
				}
			}
		} else {
			if bi == q.sortedBI {
				q.sortedBI = -1 // compaction below breaks the order
			}
			for i := 0; i < len(bkt); {
				s := &q.slots[bkt[i].slot]
				if s.cancelled {
					s.cancelled = false
					q.free = append(q.free, bkt[i].slot)
					q.cancelPending--
					last := len(bkt) - 1
					bkt[i] = bkt[last]
					bkt = bkt[:last]
					q.calCount--
					continue
				}
				if best < 0 || bkt[i].before(bkt[best]) {
					best = i
				}
				i++
			}
			q.buckets[bi] = bkt
		}
		if best < 0 {
			q.occ[bi>>6] &^= 1 << uint(bi&63)
			if q.calCount == 0 {
				goto restart
			}
			continue
		}
		q.pkValid, q.pkHeap = true, false
		q.pkBucket, q.pkIdx = bi, best
		return true
	}
}

// migrate moves heap-overflow events that now fall inside the calendar
// window into their buckets. Heap entries are time-ordered, so it only ever
// needs to look at the head.
func (q *Queue) migrate() {
	limit := float64(q.cur+int64(q.nb)) * q.width
	for len(q.heap) > 0 && q.heap[0].at < limit {
		e := q.heap[0]
		q.removeRoot()
		s := &q.slots[e.slot]
		if s.cancelled {
			s.cancelled = false
			q.free = append(q.free, e.slot)
			q.cancelPending--
			continue
		}
		b, ok := q.bucketFor(e.at)
		if !ok {
			// Float rounding put at/width exactly on the window edge;
			// push back and stop rather than loop.
			q.heap = append(q.heap, e)
			q.siftUp(len(q.heap) - 1)
			return
		}
		q.putBucket(int(b&q.mask), e)
	}
}

// nextOcc returns the absolute index of the first occupied bucket at or
// after from. The caller guarantees calCount > 0, so a set bit exists
// within one lap of the ring.
func (q *Queue) nextOcc(from int64) int64 {
	p := int(from & q.mask)
	wi := p >> 6
	word := q.occ[wi] & (^uint64(0) << uint(p&63))
	for {
		if word != 0 {
			bit := wi<<6 + bits.TrailingZeros64(word)
			d := bit - p
			if d < 0 {
				d += q.nb
			}
			return from + int64(d)
		}
		wi++
		if wi == len(q.occ) {
			wi = 0
		}
		word = q.occ[wi]
	}
}

// notePop feeds the inter-pop gap statistics behind the width policy. The
// sums decay by half every 256 samples so the estimate tracks the current
// workload, not the run's history.
func (q *Queue) notePop(at float64) {
	if q.havePop {
		if gap := at - q.lastPop; gap >= 0 {
			q.gapSum += gap
			q.gapCnt++
			if q.gapCnt >= 256 {
				q.gapSum *= 0.5
				q.gapCnt /= 2
			}
		}
	}
	q.lastPop = at
	q.havePop = true
}

// targetWidth is the bucket width the gap statistics currently suggest:
// twice the mean inter-pop gap, i.e. ~2 events per bucket.
func (q *Queue) targetWidth() float64 {
	if q.gapCnt == 0 {
		return 0
	}
	w := 2 * q.gapSum / float64(q.gapCnt)
	if w < 1e-9 {
		w = 1e-9
	}
	return w
}

// maintain runs the calendar policy after each pop: first build once the
// queue is big enough and the gap estimate has settled, shrink back to
// heap-only when the queue empties out, and rebuild when the bucket width
// has drifted an order of magnitude from target.
func (q *Queue) maintain() {
	if ForceHeap {
		return
	}
	if q.width == 0 {
		if q.live >= calMinLive && q.gapCnt >= calMinGaps {
			q.rebuild()
		}
		return
	}
	if q.live < calMinLive/2 {
		q.teardown()
		return
	}
	q.sincChk++
	if q.sincChk >= widthCheckEvery {
		q.sincChk = 0
		if w := q.targetWidth(); w > 0 && (w > q.width*8 || w < q.width/8) {
			q.rebuild()
		} else if q.live > 2*q.nb*bucketCap && q.nb < maxBuckets {
			q.rebuild()
		} else if q.nb > calMinLive && q.live < q.nb/8 {
			q.rebuild()
		}
	}
}

// collectLive drains every pending entry (dropping cancelled ones and
// recycling their slots) into scratch and empties both layers.
func (q *Queue) collectLive() {
	q.pkValid = false
	q.scratch = q.scratch[:0]
	for _, e := range q.heap {
		s := &q.slots[e.slot]
		if s.cancelled {
			s.cancelled = false
			q.free = append(q.free, e.slot)
			q.cancelPending--
			continue
		}
		q.scratch = append(q.scratch, e)
	}
	q.heap = q.heap[:0]
	for bi := range q.buckets {
		for _, e := range q.buckets[bi] {
			s := &q.slots[e.slot]
			if s.cancelled {
				s.cancelled = false
				q.free = append(q.free, e.slot)
				q.cancelPending--
				continue
			}
			q.scratch = append(q.scratch, e)
		}
		q.buckets[bi] = q.buckets[bi][:0]
	}
	for i := range q.occ {
		q.occ[i] = 0
	}
	q.calCount = 0
	q.sortedBI = -1
}

// rebuild re-derives the calendar geometry from the live count and gap
// statistics and redistributes every pending event. Amortized over the
// pops between rebuilds this is O(1) per operation.
func (q *Queue) rebuild() {
	q.collectLive()
	w := q.targetWidth()
	if w <= 0 {
		w = q.width
	}
	if w <= 0 {
		// No gap data at all; leave everything on the heap.
		q.reheap()
		return
	}
	nb := calMinLive
	for nb < len(q.scratch) && nb < maxBuckets {
		nb <<= 1
	}
	if nb != q.nb || q.buckets == nil {
		q.buckets = make([][]ent, nb)
		back := make([]ent, nb*bucketCap)
		for i := range q.buckets {
			q.buckets[i] = back[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
		}
		q.occ = make([]uint64, (nb+63)/64)
		q.nb = nb
		q.mask = int64(nb - 1)
	}
	q.width = w
	// Anchor the window at the earliest pending event (or the last pop
	// time) so the whole near future is representable.
	anchor := q.lastPop
	if len(q.scratch) > 0 {
		min := q.scratch[0]
		for _, e := range q.scratch[1:] {
			if e.before(min) {
				min = e
			}
		}
		if min.at < anchor || !q.havePop {
			anchor = min.at
		}
	}
	if f := anchor / w; f < maxBucketFloat && f > -maxBucketFloat {
		q.cur = int64(f)
	} else {
		q.cur = 0
	}
	if q.cur < 0 {
		q.cur = 0
	}
	for _, e := range q.scratch {
		if b, ok := q.bucketFor(e.at); ok {
			p := int(b & q.mask)
			q.buckets[p] = append(q.buckets[p], e)
			q.occ[p>>6] |= 1 << uint(p&63)
			q.calCount++
			continue
		}
		q.heap = append(q.heap, e)
		q.siftUp(len(q.heap) - 1)
	}
	q.scratch = q.scratch[:0]
}

// teardown switches back to heap-only storage (small queues).
func (q *Queue) teardown() {
	q.collectLive()
	q.width = 0
	q.reheap()
}

// reheap pushes everything in scratch back onto the heap.
func (q *Queue) reheap() {
	for _, e := range q.scratch {
		q.heap = append(q.heap, e)
		q.siftUp(len(q.heap) - 1)
	}
	q.scratch = q.scratch[:0]
}

// DigestInto folds the queue's logical state into d for checkpoint
// verification: the global sequence counter, the live count, and every
// pending non-cancelled event's (time, sequence) key in canonical pop
// order. The digest is layout-invariant by construction — it does not see
// slot indices, generations, bucket geometry, or heap shape — so a
// snapshot captured under one storage layout (heap-only vs calendar)
// verifies under the other. The callbacks themselves are intentionally
// excluded: closures are process-local and are re-derived on restore by
// rebuilding the scenario and replaying to the checkpoint time.
func (q *Queue) DigestInto(d *digest.Writer) {
	d.U64(q.seq)
	d.Int(q.live)
	sc := q.scratch[:0]
	for _, e := range q.heap {
		if !q.slots[e.slot].cancelled {
			sc = append(sc, e)
		}
	}
	for bi := range q.buckets {
		for _, e := range q.buckets[bi] {
			if !q.slots[e.slot].cancelled {
				sc = append(sc, e)
			}
		}
	}
	// Sort into (at, seq) pop order: canonical regardless of which layer
	// each event sat in.
	slices.SortFunc(sc, func(a, b ent) int {
		if a.before(b) {
			return -1
		}
		if b.before(a) {
			return 1
		}
		return 0
	})
	for _, e := range sc {
		d.F64(e.at)
		d.U64(e.seq)
	}
	q.scratch = sc[:0]
}

// drainHeapHead lazily discards cancelled events sitting at the heap head.
func (q *Queue) drainHeapHead() {
	for len(q.heap) > 0 {
		idx := q.heap[0].slot
		if !q.slots[idx].cancelled {
			return
		}
		q.slots[idx].cancelled = false
		q.removeRoot()
		q.free = append(q.free, idx)
		q.cancelPending--
	}
}

// removeRoot removes the heap root and restores the heap property.
func (q *Queue) removeRoot() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	e := h[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h[right].before(h[left]) {
			smallest = right
		}
		if !h[smallest].before(e) {
			break
		}
		h[i] = h[smallest]
		i = smallest
	}
	h[i] = e
}
