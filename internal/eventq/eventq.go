// Package eventq implements the cancellable priority queue that drives the
// discrete-event simulation engine. Events fire in non-decreasing time
// order; events scheduled for the same instant fire in the order they were
// scheduled (FIFO), which keeps runs deterministic.
//
// The queue is allocation-free in steady state: callbacks live in a slab of
// slots recycled through a free list, the heap entries carry their own
// (time, seq) sort key so comparisons never chase a pointer, and IDs carry
// a generation stamp so a recycled slot cannot be cancelled through a stale
// handle. After warm-up, Schedule, Pop, and Cancel do not allocate.
package eventq

import "github.com/vanetlab/relroute/internal/digest"

// ID identifies a scheduled event so it can be cancelled. The zero ID is
// never issued. An ID packs the slot index (high 32 bits) and the slot's
// generation at scheduling time (low 32 bits); generations start at 1 and
// bump on every cancel/pop, so stale IDs are rejected without a map.
type ID uint64

func makeID(slot int32, gen uint32) ID { return ID(uint64(slot)<<32 | uint64(gen)) }

func (id ID) slot() int32 { return int32(id >> 32) }
func (id ID) gen() uint32 { return uint32(id) }

// slot holds the callback of one scheduled event. A slot is live (its
// generation matches outstanding IDs), cancelled (still referenced by a
// heap entry, lazily drained), or free (on the free list).
type slot struct {
	fn        func()
	gen       uint32
	cancelled bool
}

// ent is one heap entry: the sort key inline plus the slot index.
type ent struct {
	at   float64
	seq  uint64 // tie-breaker for equal times: insertion order
	slot int32
}

func (a ent) before(b ent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation engine owns it.
type Queue struct {
	slots []slot
	heap  []ent
	free  []int32 // recycled slot indices
	seq   uint64
	live  int // scheduled and not cancelled
}

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return q.live }

// Schedule enqueues fn to run at time at and returns a handle that can be
// passed to Cancel. It does not allocate once the slab has grown to the
// queue's steady-state size.
func (q *Queue) Schedule(at float64, fn func()) ID {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot{gen: 1})
		idx = int32(len(q.slots) - 1)
	}
	q.seq++
	s := &q.slots[idx]
	s.fn = fn
	s.cancelled = false
	q.heap = append(q.heap, ent{at: at, seq: q.seq, slot: idx})
	q.siftUp(len(q.heap) - 1)
	q.live++
	return makeID(idx, s.gen)
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (q *Queue) Cancel(id ID) bool {
	idx := id.slot()
	if idx < 0 || int(idx) >= len(q.slots) {
		return false
	}
	s := &q.slots[idx]
	if s.gen != id.gen() {
		return false // already fired, already cancelled, or recycled
	}
	s.cancelled = true
	s.fn = nil // release the closure immediately
	s.gen++    // stale handles (including double cancels) now mismatch
	q.live--
	return true
}

// PeekTime returns the time of the next pending event. ok is false when the
// queue is empty.
func (q *Queue) PeekTime() (at float64, ok bool) {
	q.drainCancelled()
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// Pop removes and returns the next event's time and callback. ok is false
// when the queue is empty.
func (q *Queue) Pop() (at float64, fn func(), ok bool) {
	q.drainCancelled()
	if len(q.heap) == 0 {
		return 0, nil, false
	}
	idx := q.heap[0].slot
	at = q.heap[0].at
	s := &q.slots[idx]
	fn = s.fn
	s.fn = nil
	s.gen++
	q.removeRoot()
	q.free = append(q.free, idx)
	q.live--
	return at, fn, true
}

// DigestInto folds the queue's logical state into d for checkpoint
// verification: the global sequence counter, the live count, and every
// heap entry — pending time, scheduling sequence, slot index, and the
// slot's generation and cancellation flag — in heap-array order.
//
// The heap's array layout (and the slab's slot/generation assignment) is
// a deterministic function of the Schedule/Cancel/Pop history, so two
// processes that executed the same event sequence digest identically;
// the callbacks themselves are intentionally excluded — closures are
// process-local and are re-derived on restore by rebuilding the scenario
// and replaying to the checkpoint time.
func (q *Queue) DigestInto(d *digest.Writer) {
	d.U64(q.seq)
	d.Int(q.live)
	d.Int(len(q.slots))
	d.Int(len(q.heap))
	for _, e := range q.heap {
		d.F64(e.at)
		d.U64(e.seq)
		d.U32(uint32(e.slot))
		s := &q.slots[e.slot]
		d.U32(s.gen)
		d.Bool(s.cancelled)
	}
}

// drainCancelled lazily discards cancelled events sitting at the head.
func (q *Queue) drainCancelled() {
	for len(q.heap) > 0 {
		idx := q.heap[0].slot
		if !q.slots[idx].cancelled {
			return
		}
		q.slots[idx].cancelled = false
		q.removeRoot()
		q.free = append(q.free, idx)
	}
}

// removeRoot removes the heap root and restores the heap property.
func (q *Queue) removeRoot() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	e := h[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h[right].before(h[left]) {
			smallest = right
		}
		if !h[smallest].before(e) {
			break
		}
		h[i] = h[smallest]
		i = smallest
	}
	h[i] = e
}
