package eventq

import "testing"

// BenchmarkSchedulePop measures the steady-state cost of one
// Schedule+Pop pair over a queue pre-warmed with 1024 pending events —
// the engine's per-event hot path.
func BenchmarkSchedulePop(b *testing.B) {
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Schedule(float64(i), fn)
	}
	t := 1024.0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		q.Schedule(t, fn)
		t++
		q.Pop()
	}
}

// BenchmarkScheduleCancel measures Schedule immediately followed by
// Cancel — the timer-armed-then-disarmed pattern ARQ and route timeouts
// produce.
func BenchmarkScheduleCancel(b *testing.B) {
	var q Queue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		id := q.Schedule(float64(n), fn)
		q.Cancel(id)
		if n%1024 == 0 {
			// drain lazily-cancelled slots so the heap stays bounded
			for {
				if _, ok := q.PeekTime(); !ok {
					break
				}
				q.Pop()
			}
		}
	}
}
