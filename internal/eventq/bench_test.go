package eventq

import (
	"strconv"
	"testing"
)

// BenchmarkSchedulePop measures the steady-state cost of one
// Schedule+Pop pair over a queue pre-warmed with 1024 pending events —
// the engine's per-event hot path.
func BenchmarkSchedulePop(b *testing.B) {
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Schedule(float64(i), fn)
	}
	t := 1024.0
	// Warm past the lazy calendar build so short -benchtime runs measure
	// the steady state.
	for i := 0; i < 1024; i++ {
		q.Schedule(t, fn)
		t++
		q.Pop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		q.Schedule(t, fn)
		t++
		q.Pop()
	}
}

// benchMixedWorkload drives the queue with the engine's characteristic
// mix: n periodic producers (beacon-style tickers with distinct phases)
// plus a one-shot event per op (end-of-airtime style) that fires shortly
// after scheduling, and a timer that is armed and immediately cancelled
// every 8th op (ARQ style). One benchmark op = one pop + the reschedules
// it triggers.
func benchMixedWorkload(b *testing.B, producers int) {
	var q Queue
	period := 1.0
	phase := period / float64(producers)
	for i := 0; i < producers; i++ {
		q.Schedule(float64(i)*phase, func() {})
	}
	now := 0.0
	op := func(n int) {
		at, _, ok := q.Pop()
		if !ok {
			b.Fatal("queue drained")
		}
		now = at
		// periodic producer reschedule
		q.Schedule(now+period, func() {})
		if n%2 == 0 {
			// inject a one-shot near-future event ...
			q.Schedule(now+phase*0.5, func() {})
		} else if _, _, ok := q.Pop(); !ok {
			// ... and drain it the next op, keeping the queue size flat
			b.Fatal("queue drained")
		}
		// armed-then-disarmed timer
		if n%8 == 0 {
			id := q.Schedule(now+5*period, func() {})
			q.Cancel(id)
		}
	}
	// Warm-up: enough ops to accumulate the gap samples that trigger the
	// one-time calendar build, so short -benchtime runs measure steady
	// state rather than amortizing the build over a handful of ops.
	for n := 0; n < 1024; n++ {
		op(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		op(n)
	}
}

// BenchmarkEventqCalendar measures the mixed periodic/one-shot workload on
// the default two-level layout (calendar + overflow heap).
func BenchmarkEventqCalendar(b *testing.B) {
	for _, producers := range []int{1000, 10000} {
		b.Run(strconv.Itoa(producers), func(b *testing.B) {
			benchMixedWorkload(b, producers)
		})
	}
}

// BenchmarkEventqHeap is the identical workload pinned to the heap-only
// layout via ForceHeap — the before/after pair for the calendar front end.
func BenchmarkEventqHeap(b *testing.B) {
	defer func(prev bool) { ForceHeap = prev }(ForceHeap)
	ForceHeap = true
	for _, producers := range []int{1000, 10000} {
		b.Run(strconv.Itoa(producers), func(b *testing.B) {
			benchMixedWorkload(b, producers)
		})
	}
}

// BenchmarkScheduleCancel measures Schedule immediately followed by
// Cancel — the timer-armed-then-disarmed pattern ARQ and route timeouts
// produce.
func BenchmarkScheduleCancel(b *testing.B) {
	var q Queue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		id := q.Schedule(float64(n), fn)
		q.Cancel(id)
		if n%1024 == 0 {
			// drain lazily-cancelled slots so the heap stays bounded
			for {
				if _, ok := q.PeekTime(); !ok {
					break
				}
				q.Pop()
			}
		}
	}
}
