// Package metrics collects the quantities every experiment reports: packet
// delivery ratio, end-to-end delay, control overhead, MAC collisions, path
// lifetime, and route-repair counts. One Collector is shared per scenario
// run so protocol categories are compared on identical accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
)

// Collector accumulates counters for one simulation run. It is not safe
// for concurrent use; the single-threaded engine owns it.
type Collector struct {
	// data plane
	DataSent      int // data packets originated by applications
	DataDelivered int // data packets that reached their destination
	DataDuplicate int // duplicate deliveries suppressed at destination
	DataDropped   int // data packets dropped (TTL, queue, no route)
	DataForwarded int // data transmissions by intermediate nodes

	// control plane, keyed by packet type name (RREQ, RREP, HELLO, ...)
	Control map[string]int
	// ControlBytes accumulates control packet sizes.
	ControlBytes int
	// DataBytes accumulates data packet sizes (all transmissions).
	DataBytes int

	// MAC layer
	MACTransmits   int // frames handed to the radio
	MACDelivered   int // frame receptions delivered up the stack
	MACCollisions  int // receptions destroyed by collisions
	MACChannelLoss int // receptions lost to channel fading

	// routing events
	RouteDiscoveries int // discovery rounds initiated
	RouteBreaks      int // links/routes detected broken
	RouteRepairs     int // successful re-establishments

	// open-world membership (zero in closed-world scenarios)
	NodeJoins  int // nodes that joined the world mid-run
	NodeLeaves int // nodes that left the world mid-run

	// fault plane (all zero when no fault profile is installed)
	FaultCrashes       int     // nodes crashed by fault events
	FaultRecoveries    int     // crashed nodes that came back
	DataSentFault      int     // data packets originated inside a fault window
	DataDeliveredFault int     // deliveries of packets originated inside a fault window
	ControlFault       int     // control transmissions inside fault windows
	FaultTime          float64 // total seconds covered by fault windows
	RunTime            float64 // run duration, for in/out-of-window rates
	rerouteLats        []float64
	recoveryLats       []float64

	// link-prediction accuracy (populated only when the world's link audit
	// is enabled; see netstack.World.EnableLinkAudit)
	LinkSamples  int // resolved predicted-vs-observed lifetime samples
	LinkCensored int // samples unresolved when the run ended
	linkAbsErr   float64
	linkSgnErr   float64
	linkBuckets  [len(LinkBucketEdges) + 1]CalBucket

	delays    []float64 // seconds, one per delivered packet
	hops      []int     // hop counts of delivered packets
	pathLives []float64 // observed lifetimes of established paths

	deliveredByUID map[uint64]bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		Control:        make(map[string]int),
		deliveredByUID: make(map[uint64]bool),
	}
}

// OnDataSent records an application-layer origination.
func (c *Collector) OnDataSent() { c.DataSent++ }

// OnDataDelivered records a first-time delivery with its end-to-end delay
// and hop count. Duplicate deliveries of the same UID are counted
// separately and do not skew delay statistics. It reports whether the
// delivery was a first.
func (c *Collector) OnDataDelivered(uid uint64, delay float64, hops int) bool {
	if c.deliveredByUID[uid] {
		c.DataDuplicate++
		return false
	}
	c.deliveredByUID[uid] = true
	c.DataDelivered++
	c.delays = append(c.delays, delay)
	c.hops = append(c.hops, hops)
	return true
}

// OnControl records a control-plane transmission of the given type and
// size in bytes.
func (c *Collector) OnControl(kind string, bytes int) {
	c.Control[kind]++
	c.ControlBytes += bytes
}

// OnReroute records how long after a fault-induced crash the next data
// packet reached its destination — the time the surviving topology took
// to carry traffic around the hole.
func (c *Collector) OnReroute(seconds float64) {
	c.rerouteLats = append(c.rerouteLats, seconds)
}

// OnRecoveryLatency records how long after a node's recovery it was first
// heard again (its first beacon reached some neighbor) — the time the
// network took to re-absorb it.
func (c *Collector) OnRecoveryLatency(seconds float64) {
	c.recoveryLats = append(c.recoveryLats, seconds)
}

// FaultPDR returns the delivery ratio of packets originated inside fault
// windows, the headline graceful-degradation number.
func (c *Collector) FaultPDR() float64 {
	if c.DataSentFault == 0 {
		return 0
	}
	return float64(c.DataDeliveredFault) / float64(c.DataSentFault)
}

// MeanTimeToReroute returns the mean crash-to-next-delivery latency.
func (c *Collector) MeanTimeToReroute() float64 { return mean(c.rerouteLats) }

// MeanRecoveryLatency returns the mean recovery-to-first-beacon-heard
// latency of recovered nodes.
func (c *Collector) MeanRecoveryLatency() float64 { return mean(c.recoveryLats) }

// FaultControlSpike returns the ratio of the control transmission rate
// inside fault windows to the rate outside them: >1 means faults made the
// control plane chattier (route re-discovery storms). It is 0 when no
// fault windows exist and equals the inside rate when nothing was sent
// outside.
func (c *Collector) FaultControlSpike() float64 {
	if c.FaultTime <= 0 || c.RunTime <= c.FaultTime {
		return 0
	}
	in := float64(c.ControlFault) / c.FaultTime
	out := float64(c.ControlTotal()-c.ControlFault) / (c.RunTime - c.FaultTime)
	if out == 0 {
		return in
	}
	return in / out
}

// OnPathLifetime records the observed lifetime of an established path.
func (c *Collector) OnPathLifetime(seconds float64) {
	c.pathLives = append(c.pathLives, seconds)
}

// LinkBucketEdges are the predicted-lifetime boundaries (seconds) of the
// calibration buckets: bucket i holds predictions in [edge(i-1), edge(i)).
var LinkBucketEdges = [...]float64{2, 5, 10, 20}

// CalBucket accumulates one calibration bucket of the link audit: how
// many predictions landed in the bucket's predicted-lifetime range and
// what predicted/observed lifetimes they averaged.
type CalBucket struct {
	N       int
	PredSum float64
	ObsSum  float64
}

// MeanPred returns the bucket's mean predicted lifetime.
func (b CalBucket) MeanPred() float64 {
	if b.N == 0 {
		return 0
	}
	return b.PredSum / float64(b.N)
}

// MeanObs returns the bucket's mean observed lifetime.
func (b CalBucket) MeanObs() float64 {
	if b.N == 0 {
		return 0
	}
	return b.ObsSum / float64(b.N)
}

// OnLinkPrediction records one resolved link-lifetime prediction: pred is
// the residual lifetime the estimator claimed at sample time, obs the
// ground-truth lifetime the world observed (both capped at the audit
// horizon by the caller).
func (c *Collector) OnLinkPrediction(pred, obs float64) {
	c.LinkSamples++
	d := pred - obs
	c.linkAbsErr += math.Abs(d)
	c.linkSgnErr += d
	i := 0
	for i < len(LinkBucketEdges) && pred >= LinkBucketEdges[i] {
		i++
	}
	c.linkBuckets[i].N++
	c.linkBuckets[i].PredSum += pred
	c.linkBuckets[i].ObsSum += obs
}

// LinkMAE returns the mean absolute error of the audited lifetime
// predictions in seconds.
func (c *Collector) LinkMAE() float64 {
	if c.LinkSamples == 0 {
		return 0
	}
	return c.linkAbsErr / float64(c.LinkSamples)
}

// LinkBias returns the mean signed error (predicted − observed) of the
// audited lifetime predictions: positive means the estimator is
// optimistic.
func (c *Collector) LinkBias() float64 {
	if c.LinkSamples == 0 {
		return 0
	}
	return c.linkSgnErr / float64(c.LinkSamples)
}

// LinkCalibration returns the calibration buckets, indexed by predicted
// lifetime against LinkBucketEdges.
func (c *Collector) LinkCalibration() [len(LinkBucketEdges) + 1]CalBucket {
	return c.linkBuckets
}

// PDR returns the packet delivery ratio in [0,1].
func (c *Collector) PDR() float64 {
	if c.DataSent == 0 {
		return 0
	}
	return float64(c.DataDelivered) / float64(c.DataSent)
}

// MeanDelay returns the mean end-to-end delay of delivered packets.
func (c *Collector) MeanDelay() float64 { return mean(c.delays) }

// P95Delay returns the 95th-percentile delay.
func (c *Collector) P95Delay() float64 { return percentile(c.delays, 0.95) }

// MeanHops returns the mean hop count of delivered packets.
func (c *Collector) MeanHops() float64 {
	if len(c.hops) == 0 {
		return 0
	}
	s := 0
	for _, h := range c.hops {
		s += h
	}
	return float64(s) / float64(len(c.hops))
}

// MeanPathLifetime returns the mean observed path lifetime.
func (c *Collector) MeanPathLifetime() float64 { return mean(c.pathLives) }

// ControlTotal returns the total number of control transmissions.
func (c *Collector) ControlTotal() int {
	t := 0
	for _, v := range c.Control {
		t += v
	}
	return t
}

// OverheadRatio returns control transmissions per delivered data packet,
// the survey's "overhead" con. Infinite overhead (nothing delivered) is
// reported as the control count itself to keep tables finite.
func (c *Collector) OverheadRatio() float64 {
	ctl := float64(c.ControlTotal())
	if c.DataDelivered == 0 {
		return ctl
	}
	return ctl / float64(c.DataDelivered)
}

// DuplicateRatio returns duplicate deliveries per delivered packet, the
// broadcast-storm indicator.
func (c *Collector) DuplicateRatio() float64 {
	if c.DataDelivered == 0 {
		return 0
	}
	return float64(c.DataDuplicate) / float64(c.DataDelivered)
}

// CollisionRate returns the fraction of potential receptions destroyed by
// collisions.
func (c *Collector) CollisionRate() float64 {
	total := c.MACDelivered + c.MACCollisions + c.MACChannelLoss
	if total == 0 {
		return 0
	}
	return float64(c.MACCollisions) / float64(total)
}

// Summary is a flattened snapshot used by the experiment harness tables.
// The Control map makes the struct non-comparable; compare summaries with
// reflect.DeepEqual rather than ==.
type Summary struct {
	Protocol      string
	Scenario      string
	PDR           float64
	MeanDelay     float64
	P95Delay      float64
	MeanHops      float64
	Overhead      float64
	DupRatio      float64
	CollisionRate float64
	Discoveries   int
	Breaks        int
	Repairs       int
	PathLifetime  float64
	DataSent      int
	DataDelivered int
	DataForwarded int
	MACTransmits  int
	ControlTotal  int
	// Events is the number of simulator events the run executed — the
	// numerator of the events/sec throughput figure the scale benchmarks
	// report. The collector never sees the engine, so the scenario layer
	// stamps it after Summarize.
	Events int
	// Joins and Leaves count open-world membership changes: nodes that
	// entered or left the world mid-run. Both are zero for closed worlds.
	Joins  int
	Leaves int
	// Link-prediction accuracy from the world's link audit (all zero when
	// the audit is disabled): resolved sample count, mean absolute error
	// and mean signed error of predicted residual lifetimes in seconds,
	// run-end-censored samples, and the calibration buckets.
	LinkSamples     int
	LinkMAE         float64
	LinkBias        float64
	LinkCensored    int
	LinkCalibration [len(LinkBucketEdges) + 1]CalBucket
	// Fault-plane degradation metrics (all zero without a fault profile):
	// crash/recovery event counts, in-window traffic accounting, the
	// fault-window delivery ratio, the control-rate spike factor, and the
	// reroute/recovery latencies in seconds.
	Crashes         int
	Recoveries      int
	FaultSent       int
	FaultDelivered  int
	FaultPDR        float64
	FaultControl    int
	FaultCtlSpike   float64
	TimeToReroute   float64
	RecoveryLatency float64
	// Control is the per-type control transmission count (RREQ, RREP, ...),
	// a copy of the collector's map.
	Control map[string]int
}

// Summarize produces the snapshot, labelled with protocol and scenario
// names.
func (c *Collector) Summarize(protocol, scenario string) Summary {
	ctl := make(map[string]int, len(c.Control))
	for k, v := range c.Control {
		ctl[k] = v
	}
	return Summary{
		Protocol:        protocol,
		Scenario:        scenario,
		PDR:             c.PDR(),
		MeanDelay:       c.MeanDelay(),
		P95Delay:        c.P95Delay(),
		MeanHops:        c.MeanHops(),
		Overhead:        c.OverheadRatio(),
		DupRatio:        c.DuplicateRatio(),
		CollisionRate:   c.CollisionRate(),
		Discoveries:     c.RouteDiscoveries,
		Breaks:          c.RouteBreaks,
		Repairs:         c.RouteRepairs,
		PathLifetime:    c.MeanPathLifetime(),
		DataSent:        c.DataSent,
		DataDelivered:   c.DataDelivered,
		DataForwarded:   c.DataForwarded,
		MACTransmits:    c.MACTransmits,
		ControlTotal:    c.ControlTotal(),
		Joins:           c.NodeJoins,
		Leaves:          c.NodeLeaves,
		LinkSamples:     c.LinkSamples,
		LinkMAE:         c.LinkMAE(),
		LinkBias:        c.LinkBias(),
		LinkCensored:    c.LinkCensored,
		LinkCalibration: c.LinkCalibration(),
		Crashes:         c.FaultCrashes,
		Recoveries:      c.FaultRecoveries,
		FaultSent:       c.DataSentFault,
		FaultDelivered:  c.DataDeliveredFault,
		FaultPDR:        c.FaultPDR(),
		FaultControl:    c.ControlFault,
		FaultCtlSpike:   c.FaultControlSpike(),
		TimeToReroute:   c.MeanTimeToReroute(),
		RecoveryLatency: c.MeanRecoveryLatency(),
		Control:         ctl,
	}
}

// DigestInto folds the collector's full accumulated state into d: every
// counter, the per-type control map in sorted key order, the sample
// slices in append order (append order is event order, deterministic),
// and the delivered-UID set as a size plus an order-independent fold
// (XOR of per-element hashes — map iteration order never reaches the
// digest).
func (c *Collector) DigestInto(d *digest.Writer) {
	d.Int(c.DataSent)
	d.Int(c.DataDelivered)
	d.Int(c.DataDuplicate)
	d.Int(c.DataDropped)
	d.Int(c.DataForwarded)
	keys := make([]string, 0, len(c.Control))
	for k := range c.Control {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	d.Int(len(keys))
	for _, k := range keys {
		d.Str(k)
		d.Int(c.Control[k])
	}
	d.Int(c.ControlBytes)
	d.Int(c.DataBytes)
	d.Int(c.MACTransmits)
	d.Int(c.MACDelivered)
	d.Int(c.MACCollisions)
	d.Int(c.MACChannelLoss)
	d.Int(c.RouteDiscoveries)
	d.Int(c.RouteBreaks)
	d.Int(c.RouteRepairs)
	d.Int(c.NodeJoins)
	d.Int(c.NodeLeaves)
	d.Int(c.FaultCrashes)
	d.Int(c.FaultRecoveries)
	d.Int(c.DataSentFault)
	d.Int(c.DataDeliveredFault)
	d.Int(c.ControlFault)
	d.F64(c.FaultTime)
	d.F64(c.RunTime)
	digestF64s := func(xs []float64) {
		d.Int(len(xs))
		for _, x := range xs {
			d.F64(x)
		}
	}
	digestF64s(c.rerouteLats)
	digestF64s(c.recoveryLats)
	d.Int(c.LinkSamples)
	d.Int(c.LinkCensored)
	d.F64(c.linkAbsErr)
	d.F64(c.linkSgnErr)
	for _, b := range c.linkBuckets {
		d.Int(b.N)
		d.F64(b.PredSum)
		d.F64(b.ObsSum)
	}
	digestF64s(c.delays)
	d.Int(len(c.hops))
	for _, h := range c.hops {
		d.Int(h)
	}
	digestF64s(c.pathLives)
	d.Int(len(c.deliveredByUID))
	var fold uint64
	for uid := range c.deliveredByUID {
		fold ^= digest.Mix(uid)
	}
	d.U64(fold)
}

// String renders a one-line human summary.
func (s Summary) String() string {
	return fmt.Sprintf("%s/%s: PDR=%.2f delay=%.3fs hops=%.1f overhead=%.1f dup=%.2f coll=%.2f",
		s.Protocol, s.Scenario, s.PDR, s.MeanDelay, s.MeanHops, s.Overhead, s.DupRatio, s.CollisionRate)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(math.Ceil(p*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Series is a labelled sequence of (x, y) points, the unit the harness
// renders figures from.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}
