package metrics

import (
	"math"
	"testing"
)

func TestNewStat(t *testing.T) {
	if s := NewStat(nil); s != (Stat{}) {
		t.Fatalf("empty stat = %+v", s)
	}
	if s := NewStat([]float64{5}); s.Mean != 5 || s.Std != 0 || s.CI95 != 0 || s.N != 1 {
		t.Fatalf("single-sample stat = %+v", s)
	}
	s := NewStat([]float64{2, 4, 6, 8})
	if s.Mean != 5 || s.N != 4 {
		t.Fatalf("stat = %+v", s)
	}
	wantStd := math.Sqrt(20.0 / 3.0) // sample variance of {2,4,6,8}
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 3.182 * wantStd / 2 // t(0.975, df=3)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, wantCI)
	}
	// large samples fall back to the normal quantile
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i % 2)
	}
	b := NewStat(big)
	wantBig := 1.96 * b.Std / math.Sqrt(40)
	if math.Abs(b.CI95-wantBig) > 1e-12 {
		t.Fatalf("large-sample ci95 = %v, want %v", b.CI95, wantBig)
	}
}

func TestAggregateSummaries(t *testing.T) {
	if a := AggregateSummaries(nil); a.N != 0 {
		t.Fatalf("empty aggregate = %+v", a)
	}
	sums := []Summary{
		{Protocol: "Greedy", Scenario: "highway/60-veh", PDR: 0.8, Breaks: 4, DataSent: 100},
		{Protocol: "Greedy", Scenario: "highway/60-veh", PDR: 0.6, Breaks: 8, DataSent: 100},
	}
	a := AggregateSummaries(sums)
	if a.Protocol != "Greedy" || a.Scenario != "highway/60-veh" || a.N != 2 {
		t.Fatalf("labels = %+v", a)
	}
	if math.Abs(a.PDR.Mean-0.7) > 1e-12 {
		t.Fatalf("PDR mean = %v", a.PDR.Mean)
	}
	if a.Breaks.Mean != 6 || a.DataSent.Std != 0 {
		t.Fatalf("int fields misaggregated: breaks %+v sent %+v", a.Breaks, a.DataSent)
	}
	if a.PDR.CI95 <= 0 {
		t.Fatalf("CI not computed: %+v", a.PDR)
	}
}
