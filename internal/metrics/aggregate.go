package metrics

import "math"

// Stat summarises one metric across replications: sample mean, sample
// standard deviation, and the half-width of the 95% confidence interval,
// t(0.975, n−1)·σ/√n, using the Student-t quantile so small seed counts
// get honestly wide intervals. N below 2 leaves Std and CI95 at zero.
type Stat struct {
	Mean float64
	Std  float64
	CI95 float64
	N    int
}

// tQuantile975 holds t(0.975, df) for df 1..30; larger df use the normal
// approximation 1.96.
var tQuantile975 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tQuantile975) {
		return tQuantile975[df-1]
	}
	return 1.96
}

// NewStat computes the statistics of one sample set.
func NewStat(xs []float64) Stat {
	n := len(xs)
	if n == 0 {
		return Stat{}
	}
	s := Stat{Mean: mean(xs), N: n}
	if n < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(n-1))
	s.CI95 = tQuantile(n-1) * s.Std / math.Sqrt(float64(n))
	return s
}

// Aggregate holds cross-replication statistics over every numeric Summary
// field, labelled with the protocol and scenario of the first replication.
type Aggregate struct {
	Protocol string
	Scenario string
	N        int

	PDR           Stat
	MeanDelay     Stat
	P95Delay      Stat
	MeanHops      Stat
	Overhead      Stat
	DupRatio      Stat
	CollisionRate Stat
	PathLifetime  Stat
	Discoveries   Stat
	Breaks        Stat
	Repairs       Stat
	DataSent      Stat
	DataDelivered Stat
	DataForwarded Stat
	MACTransmits  Stat
	ControlTotal  Stat
	Joins         Stat
	Leaves        Stat
	LinkSamples   Stat
	LinkMAE       Stat
	LinkBias      Stat
	LinkCensored  Stat

	Crashes         Stat
	Recoveries      Stat
	FaultPDR        Stat
	FaultCtlSpike   Stat
	TimeToReroute   Stat
	RecoveryLatency Stat
}

// AggregateSummaries folds per-seed summaries (typically one per
// replication seed of the same scenario grid point) into cross-seed
// statistics. An empty input returns the zero Aggregate.
func AggregateSummaries(sums []Summary) Aggregate {
	if len(sums) == 0 {
		return Aggregate{}
	}
	col := func(f func(Summary) float64) Stat {
		xs := make([]float64, len(sums))
		for i, s := range sums {
			xs[i] = f(s)
		}
		return NewStat(xs)
	}
	return Aggregate{
		Protocol:      sums[0].Protocol,
		Scenario:      sums[0].Scenario,
		N:             len(sums),
		PDR:           col(func(s Summary) float64 { return s.PDR }),
		MeanDelay:     col(func(s Summary) float64 { return s.MeanDelay }),
		P95Delay:      col(func(s Summary) float64 { return s.P95Delay }),
		MeanHops:      col(func(s Summary) float64 { return s.MeanHops }),
		Overhead:      col(func(s Summary) float64 { return s.Overhead }),
		DupRatio:      col(func(s Summary) float64 { return s.DupRatio }),
		CollisionRate: col(func(s Summary) float64 { return s.CollisionRate }),
		PathLifetime:  col(func(s Summary) float64 { return s.PathLifetime }),
		Discoveries:   col(func(s Summary) float64 { return float64(s.Discoveries) }),
		Breaks:        col(func(s Summary) float64 { return float64(s.Breaks) }),
		Repairs:       col(func(s Summary) float64 { return float64(s.Repairs) }),
		DataSent:      col(func(s Summary) float64 { return float64(s.DataSent) }),
		DataDelivered: col(func(s Summary) float64 { return float64(s.DataDelivered) }),
		DataForwarded: col(func(s Summary) float64 { return float64(s.DataForwarded) }),
		MACTransmits:  col(func(s Summary) float64 { return float64(s.MACTransmits) }),
		ControlTotal:  col(func(s Summary) float64 { return float64(s.ControlTotal) }),
		Joins:         col(func(s Summary) float64 { return float64(s.Joins) }),
		Leaves:        col(func(s Summary) float64 { return float64(s.Leaves) }),
		LinkSamples:   col(func(s Summary) float64 { return float64(s.LinkSamples) }),
		LinkMAE:       col(func(s Summary) float64 { return s.LinkMAE }),
		LinkBias:      col(func(s Summary) float64 { return s.LinkBias }),
		LinkCensored:  col(func(s Summary) float64 { return float64(s.LinkCensored) }),

		Crashes:         col(func(s Summary) float64 { return float64(s.Crashes) }),
		Recoveries:      col(func(s Summary) float64 { return float64(s.Recoveries) }),
		FaultPDR:        col(func(s Summary) float64 { return s.FaultPDR }),
		FaultCtlSpike:   col(func(s Summary) float64 { return s.FaultCtlSpike }),
		TimeToReroute:   col(func(s Summary) float64 { return s.TimeToReroute }),
		RecoveryLatency: col(func(s Summary) float64 { return s.RecoveryLatency }),
	}
}
