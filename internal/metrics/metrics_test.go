package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPDRAndDelivery(t *testing.T) {
	c := NewCollector()
	if c.PDR() != 0 {
		t.Error("PDR on empty collector should be 0")
	}
	for i := 0; i < 10; i++ {
		c.OnDataSent()
	}
	if !c.OnDataDelivered(1, 0.5, 3) {
		t.Error("first delivery reported as duplicate")
	}
	if c.OnDataDelivered(1, 0.9, 5) {
		t.Error("second delivery of same UID reported as first")
	}
	c.OnDataDelivered(2, 1.5, 5)
	if got := c.PDR(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("PDR = %v", got)
	}
	if c.DataDuplicate != 1 {
		t.Fatalf("duplicates = %d", c.DataDuplicate)
	}
	if got := c.MeanDelay(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("mean delay = %v", got)
	}
	if got := c.MeanHops(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("mean hops = %v", got)
	}
	if got := c.DuplicateRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("dup ratio = %v", got)
	}
}

func TestControlAccounting(t *testing.T) {
	c := NewCollector()
	c.OnControl("RREQ", 48)
	c.OnControl("RREQ", 48)
	c.OnControl("HELLO", 32)
	if c.Control["RREQ"] != 2 || c.Control["HELLO"] != 1 {
		t.Fatalf("control = %v", c.Control)
	}
	if c.ControlBytes != 128 {
		t.Fatalf("control bytes = %d", c.ControlBytes)
	}
	if c.ControlTotal() != 3 {
		t.Fatalf("control total = %d", c.ControlTotal())
	}
	// nothing delivered: overhead reported as raw control count
	if got := c.OverheadRatio(); got != 3 {
		t.Fatalf("overhead with zero deliveries = %v", got)
	}
	c.OnDataSent()
	c.OnDataDelivered(9, 0.1, 1)
	if got := c.OverheadRatio(); got != 3 {
		t.Fatalf("overhead = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.OnDataSent()
		c.OnDataDelivered(uint64(i), float64(i), 1)
	}
	if got := c.P95Delay(); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	empty := NewCollector()
	if empty.P95Delay() != 0 {
		t.Error("p95 of empty collector should be 0")
	}
}

func TestCollisionRate(t *testing.T) {
	c := NewCollector()
	if c.CollisionRate() != 0 {
		t.Error("collision rate on empty collector")
	}
	c.MACDelivered = 70
	c.MACCollisions = 20
	c.MACChannelLoss = 10
	if got := c.CollisionRate(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("collision rate = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	c.OnDataSent()
	c.OnDataDelivered(1, 0.25, 2)
	c.OnControl("RREQ", 48)
	c.OnPathLifetime(12)
	c.RouteDiscoveries = 3
	c.RouteBreaks = 2
	c.MACTransmits = 55
	s := c.Summarize("AODV", "test")
	if s.Protocol != "AODV" || s.Scenario != "test" {
		t.Fatal("labels lost")
	}
	if s.PDR != 1 || s.MeanDelay != 0.25 || s.PathLifetime != 12 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MACTransmits != 55 || s.ControlTotal != 1 {
		t.Fatalf("summary MAC/control = %+v", s)
	}
	str := s.String()
	for _, want := range []string{"AODV", "PDR=1.00"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary string %q missing %q", str, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if len(s.X) != 2 || s.Y[1] != 20 {
		t.Fatalf("series = %+v", s)
	}
}

func TestPathLifetimes(t *testing.T) {
	c := NewCollector()
	if c.MeanPathLifetime() != 0 {
		t.Error("empty mean path lifetime")
	}
	c.OnPathLifetime(10)
	c.OnPathLifetime(20)
	if got := c.MeanPathLifetime(); got != 15 {
		t.Fatalf("mean path lifetime = %v", got)
	}
}
