// Package harness defines the reproduction experiments: one per figure and
// table of the paper, plus the ablations supporting Table I's qualitative
// claims. Each experiment declares its scenario grid as data, submits it to
// the runner's worker pool, and renders a plain-text table whose rows are
// the series a plot of the corresponding figure would show.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/runner"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all scenarios (default 1).
	Seed int64
	// Quick shrinks durations and populations for CI-speed runs; the
	// shapes still hold but confidence intervals widen.
	Quick bool
	// Workers bounds the simulation worker pool; <= 0 means GOMAXPROCS.
	// Tables are byte-identical for any worker count: the runner returns
	// results in submission order and each run is seeded independently.
	Workers int
	// Shards is the intra-run parallelism applied to every scenario of
	// the experiment (scenario.Options.Shards): each simulation's step
	// loop fans out over this many worker shards. The second determinism
	// axis next to Workers — tables are byte-identical for any fixed
	// value of either. Zero or one means sequential worlds.
	Shards int
	// Context, when non-nil, cancels in-flight simulation work: pending
	// runs fail fast and running engines are interrupted at their next
	// event boundary (the CLI's Ctrl-C path).
	Context context.Context
	// ManifestDir, when non-empty, makes every submitted campaign durable:
	// completed runs are journaled to
	// <dir>/campaign-<fingerprint>.jsonl, and re-running the same
	// experiment against the same directory resumes — finished runs are
	// reused from the journal, byte-identical, instead of re-executed.
	// The fingerprint keys the file, so experiments that submit several
	// campaigns get one journal each.
	ManifestDir string
	// CheckpointDir, when non-empty, auto-checkpoints every run there
	// (see runner.Pool.CheckpointDir); CheckpointEvery is the boundary
	// spacing in simulated seconds (0 means the default).
	CheckpointDir   string
	CheckpointEvery float64
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// submit executes a campaign on the config's worker pool and unwraps the
// summaries in submission order, threading through the config's
// cancellation context, checkpoint policy, and campaign manifest.
func (c Config) submit(camp runner.Campaign) ([]metrics.Summary, error) {
	results, err := c.submitResults(camp)
	if err != nil {
		return nil, err
	}
	return runner.Summaries(results)
}

// submitResults is submit for experiments that need the full results —
// the single execution path every experiment goes through, so the
// config's context, checkpoint, and manifest plumbing apply uniformly.
func (c Config) submitResults(camp runner.Campaign) ([]runner.Result, error) {
	camp = c.stampShards(camp)
	pool := runner.Pool{
		Workers:         c.Workers,
		CheckpointDir:   c.CheckpointDir,
		CheckpointEvery: c.CheckpointEvery,
	}
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if c.ManifestDir == "" {
		return pool.ExecuteContext(ctx, camp), nil
	}
	if err := os.MkdirAll(c.ManifestDir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: campaign manifest: %w", err)
	}
	path := filepath.Join(c.ManifestDir, fmt.Sprintf("campaign-%016x.jsonl", runner.CampaignHash(camp)))
	j, err := runner.OpenJournal(path, camp)
	if err != nil {
		return nil, err
	}
	results := pool.ExecuteResumable(ctx, camp, j)
	if err := j.Close(); err != nil {
		return nil, fmt.Errorf("harness: campaign manifest: %w", err)
	}
	return results, nil
}

// stampShards propagates the config's intra-run shard count onto every
// run that does not choose its own — the single choke point through which
// each experiment's scenarios inherit the Shards axis.
func (c Config) stampShards(camp runner.Campaign) runner.Campaign {
	if c.Shards > 1 {
		for i := range camp.Runs {
			if camp.Runs[i].Opts.Shards == 0 {
				camp.Runs[i].Opts.Shards = c.Shards
			}
		}
	}
	return camp
}

// Table is the render unit: experiment output as labelled rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short handle (fig1..fig6, table1, abl-*).
	ID string
	// Title describes what is reproduced.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Table, error)
}

// registry is populated by the experiment files' init order below.
func registry() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "taxonomy of VANET routing techniques (Fig. 1)", Run: Fig1Taxonomy},
		{ID: "fig2", Title: "connectivity-based RREQ/RREP discovery (Fig. 2)", Run: Fig2Discovery},
		{ID: "fig3", Title: "lifetime of communication link, Eqns 1-4 (Fig. 3)", Run: Fig3LinkLifetime},
		{ID: "fig4", Title: "direction of mobility and link duration (Fig. 4)", Run: Fig4Direction},
		{ID: "fig5", Title: "road-side units rescue sparse traffic (Fig. 5)", Run: Fig5RSU},
		{ID: "fig6", Title: "zone and gateway duplicate suppression (Fig. 6)", Run: Fig6Zones},
		{ID: "table1", Title: "measured pros/cons of the five categories (Table I)", Run: Table1Summary},
		{ID: "abl-storm", Title: "broadcast storm growth with density (E-A1)", Run: AblationBroadcastStorm},
		{ID: "abl-regimes", Title: "mobility prediction across traffic regimes (E-A2)", Run: AblationMobilityRegimes},
		{ID: "abl-lifetime", Title: "path lifetime vs speed: lifetime-aware wins (E-A3)", Run: AblationPathLifetime},
		{ID: "abl-probvsgeo", Title: "probability vs geographic under heterogeneity (E-A4)", Run: AblationProbVsGeo},
		{ID: "abl-tickets", Title: "ticket budget trade-off in TBP-SS (E-A5)", Run: AblationTickets},
		{ID: "abl-hybrid", Title: "the conclusion's hybrid probability+mobility proposal (E-A6)", Run: AblationHybrid},
		{ID: "abl-disaster", Title: "infrastructure damaged mid-run, Sec. V-A (E-A7)", Run: AblationDisaster},
		{ID: "churn", Title: "open-world vehicle churn vs the closed-world assumption (E-S1)", Run: ScenarioChurn},
		{ID: "trace-replay", Title: "end-to-end FCD trace replay through the playback model (E-S2)", Run: ScenarioTraceReplay},
		{ID: "link-accuracy", Title: "predicted vs observed link lifetime per estimator (E-R1)", Run: LinkAccuracy},
		{ID: "chaos", Title: "graceful degradation under injected faults (E-F1)", Run: Chaos},
	}
}

// All returns every registered experiment, sorted by ID for deterministic
// listings.
func All() []Experiment {
	exps := registry()
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtF formats a float at sensible precision for tables.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
