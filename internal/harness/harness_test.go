package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegisteredAndRunnable(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("registered experiments = %d", len(exps))
	}
	wantIDs := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1",
		"abl-storm", "abl-regimes", "abl-lifetime", "abl-probvsgeo", "abl-tickets", "abl-hybrid", "abl-disaster",
		"churn", "trace-replay", "link-accuracy", "chaos"}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown experiment id resolved")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	out := tab.String()
	for _, want := range []string{"== x: demo ==", "a note", "bee"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1TaxonomyComplete(t *testing.T) {
	tab, err := Fig1Taxonomy(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 25 {
		t.Fatalf("taxonomy rows = %d, want the full Fig. 1 catalogue", len(tab.Rows))
	}
	categories := map[string]bool{}
	for _, row := range tab.Rows {
		categories[row[0]] = true
	}
	if len(categories) != 5 {
		t.Fatalf("categories rendered = %d, want 5", len(categories))
	}
}

func TestFig2DiscoveryDelivers(t *testing.T) {
	tab, err := Fig2Discovery(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] == "0" {
			t.Fatalf("no discovery in run %v:\n%s", row, tab)
		}
		rreq, _ := strconv.Atoi(row[4])
		rrep, _ := strconv.Atoi(row[5])
		if rreq > 0 && rrep > 0 && rreq <= rrep {
			t.Fatalf("RREQ flood %d not above RREP unicast %d — the Fig. 2 asymmetry", rreq, rrep)
		}
	}
	// at least one run must deliver (all-partitioned would be a regression)
	delivered := false
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[1], "0/") {
			delivered = true
		}
	}
	if !delivered {
		t.Fatalf("no run delivered anything:\n%s", tab)
	}
}

func TestFig3AnalyticMatchesNumeric(t *testing.T) {
	tab, err := Fig3LinkLifetime(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		errCol := row[5]
		if errCol == "-" {
			continue
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(errCol, "%"), 64)
		if err != nil {
			t.Fatalf("bad err cell %q", errCol)
		}
		if pct > 1.0 {
			t.Fatalf("analytic vs numeric error %v%% in row %v", pct, row)
		}
	}
}

func TestFig4SameDirectionOutlivesOpposite(t *testing.T) {
	tab, err := Fig4Direction(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var same, opp float64
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		switch row[0] {
		case "same":
			same = v
		case "opposite":
			opp = v
		}
	}
	if opp <= 0 || same <= 0 {
		t.Fatalf("missing measurements:\n%s", tab)
	}
	if same <= 2*opp {
		t.Fatalf("same-direction %v s not decisively above opposite %v s", same, opp)
	}
}

func TestFig5RSUsHelpSparseTraffic(t *testing.T) {
	tab, err := Fig5RSU(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// at the sparsest density, PDR with RSUs must beat PDR without
	var base, assisted float64
	for _, row := range tab.Rows {
		if row[0] != tab.Rows[0][0] {
			continue // only the sparsest density rows
		}
		pdr, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if row[1] == "0" {
			base = pdr
		} else if pdr > assisted {
			assisted = pdr
		}
	}
	if assisted <= base {
		t.Fatalf("RSUs did not lift sparse PDR: %v%% → %v%%\n%s", base, assisted, tab)
	}
}

func TestFig6ZonesSuppressDuplication(t *testing.T) {
	tab, err := Fig6Zones(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := map[string]float64{}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		tx[row[0]] = v
	}
	if !(tx["Zone"] < tx["Flooding"]) {
		t.Fatalf("zone transmissions %v not below flooding %v", tx["Zone"], tx["Flooding"])
	}
	if !(tx["LORA-DCBF"] < tx["Flooding"]) {
		t.Fatalf("gateway transmissions %v not below flooding %v", tx["LORA-DCBF"], tx["Flooding"])
	}
}

func TestAblationHybridRuns(t *testing.T) {
	tab, err := AblationHybrid(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	protos := map[string]bool{}
	for _, row := range tab.Rows {
		protos[row[0]] = true
	}
	if !protos["Hybrid"] || !protos["TBP-SS"] || !protos["PBR"] {
		t.Fatalf("missing protocols: %v", protos)
	}
}

func TestAblationDisasterDegradesGracefully(t *testing.T) {
	tab, err := AblationDisaster(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	pdr := map[string]float64{}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		pdr[row[0]] = v
	}
	healthy := pdr["DRR, RSUs healthy"]
	damaged := pdr["DRR, RSUs destroyed at t/2"]
	if damaged >= healthy {
		t.Fatalf("destroying the RSUs did not hurt: %v%% vs healthy %v%%\n%s", damaged, healthy, tab)
	}
}

// TestParallelTablesByteIdentical is the harness half of the determinism
// contract: for a fixed seed, an experiment renders byte-identical tables
// whether the runner pool uses one worker or many. It exercises a seed
// grid (fig2), a protocol × options grid (fig6), and an explicit labelled
// campaign with a post-build hook (abl-disaster).
func TestParallelTablesByteIdentical(t *testing.T) {
	for _, id := range []string{"fig2", "fig6", "abl-disaster", "link-accuracy"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			seq, err := exp.Run(Config{Quick: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := exp.Run(Config{Quick: true, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if seq.String() != par.String() {
				t.Fatalf("worker count changed rendered table:\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
					seq.String(), par.String())
			}
		})
	}
}

func rowMap(t *Table) map[string]string {
	out := map[string]string{}
	for _, row := range t.Rows {
		if len(row) >= 2 {
			out[row[0]] = row[1]
		}
	}
	return out
}

func TestScenarioChurnExperiment(t *testing.T) {
	tab, err := ScenarioChurn(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 protocols × 2 worlds", len(tab.Rows))
	}
	// columns: protocol, world, PDR, delay, breaks, joins, leaves
	for _, row := range tab.Rows {
		joins, _ := strconv.Atoi(row[5])
		leaves, _ := strconv.Atoi(row[6])
		if row[1] == "closed" {
			if joins != 0 || leaves != 0 {
				t.Errorf("closed world churned: %v", row)
			}
			continue
		}
		if joins == 0 || leaves == 0 {
			t.Errorf("open world without churn: %v", row)
		}
	}
}

func TestScenarioTraceReplayExperiment(t *testing.T) {
	tab, err := ScenarioTraceReplay(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	delivered := false
	for _, row := range tab.Rows {
		if row[1] != "0.0%" {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("no protocol delivered anything over the replayed trace")
	}
}
