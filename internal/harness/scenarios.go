package harness

import (
	"fmt"
	"math/rand"

	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// ScenarioChurn (churn) measures how protocol rankings shift when the
// closed-world assumption is dropped: the same highway and workload, once
// with the population fixed at t=0 and once as an open world with Poisson
// arrivals and lifetime-bounded departures, where nodes join and leave the
// network mid-run. Mobility-prediction and stability-probing protocols
// lose their "the neighbor set only drifts" premise exactly here — the
// scenario-diversity axis trace-driven evaluations (TDMP, arXiv:2009.01302)
// stress.
func ScenarioChurn(cfg Config) (*Table, error) {
	duration := 40.0
	vehicles := 50
	if cfg.Quick {
		duration = 25
		vehicles = 30
	}
	protos := []string{"Greedy", "AODV", "TBP-SS"}
	closed := scenario.Options{
		Seed: cfg.seed(), Vehicles: vehicles, HighwayLength: 2000,
		Duration: duration, Flows: 4, FlowPackets: 12,
	}
	open := closed
	open.ArrivalRate = float64(vehicles) / duration // replace the population ~once
	open.MeanLifetime = duration / 2
	grid := []scenario.Options{closed, open}

	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: protos, Grid: grid}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "churn",
		Title:   "open-world vehicle churn vs the closed-world assumption",
		Columns: []string{"protocol", "world", "PDR", "delay(s)", "breaks", "joins", "leaves"},
	}
	worlds := []string{"closed", "open (churn)"}
	for i, sum := range sums {
		t.AddRow(
			protos[i/len(grid)], worlds[i%len(grid)],
			fmtPct(sum.PDR), fmtF(sum.MeanDelay), fmt.Sprint(sum.Breaks),
			fmt.Sprint(sum.Joins), fmt.Sprint(sum.Leaves),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("open world: Poisson arrivals at %.2f veh/s, exponential lifetimes of mean %.0f s — every arrival joins and every expiry leaves the network mid-run", open.ArrivalRate, open.MeanLifetime))
	return t, nil
}

// ScenarioTraceReplay (trace-replay) closes the SUMO loop end to end: a
// trace is recorded from the synthetic mobility stack (the stand-in for a
// SUMO FCD export in offline environments), then replayed through the
// playback mobility model — per-track active windows, open-world
// membership — under every protocol of the grid. The same FCD file
// format round-trips through cmd/tracegen and vanetsim -trace.
func ScenarioTraceReplay(cfg Config) (*Table, error) {
	duration := 30.0
	vehicles := 40
	if cfg.Quick {
		duration = 20
		vehicles = 24
	}
	tracks, err := recordHighwayTrace(cfg.seed(), vehicles, duration+10)
	if err != nil {
		return nil, err
	}
	protos := []string{"Greedy", "AODV", "TBP-SS"}
	sums, err := cfg.submit(runner.New(runner.Spec{
		Protocols: protos,
		Grid: []scenario.Options{{
			Seed: cfg.seed(), Duration: duration,
			Flows: 4, FlowPackets: 12, Tracks: tracks,
		}},
	}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "trace-replay",
		Title:   "end-to-end FCD trace replay (recorded mobility, played back)",
		Columns: []string{"protocol", "PDR", "delay(s)", "hops", "overhead"},
	}
	for i, sum := range sums {
		t.AddRow(protos[i], fmtPct(sum.PDR), fmtF(sum.MeanDelay),
			fmtF(sum.MeanHops), fmtF(sum.Overhead))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tracks recorded at 0.5 s sampling from the IDM highway model and replayed via mobility.PlaybackModel with per-track active windows", len(tracks)))
	return t, nil
}

// recordHighwayTrace generates a deterministic highway trace: the
// in-process equivalent of cmd/tracegen, via the shared pipeline.
func recordHighwayTrace(seed int64, vehicles int, duration float64) ([]mobility.Track, error) {
	rng := rand.New(rand.NewSource(seed))
	model, err := mobility.NewHighwayModel(rng, vehicles, 2000, 28, 5)
	if err != nil {
		return nil, err
	}
	return mobility.Record(model, 0.5, duration), nil
}
