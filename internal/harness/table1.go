package harness

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// regime is one traffic condition of the Table I comparison.
type regime struct {
	name string
	opts scenario.Options
}

// regimes returns the three traffic conditions Table I's pros/cons hinge
// on: sparse rural traffic, normal highway flow, and congested urban
// traffic (dense, slow, jammed).
func regimes(cfg Config) []regime {
	duration := 60.0
	packets := 20
	if cfg.Quick {
		duration = 35
		packets = 12
	}
	return []regime{
		{
			name: "sparse",
			opts: scenario.Options{
				Seed: cfg.seed(), Vehicles: 12, HighwayLength: 3000,
				SpeedMean: 33, Duration: duration,
				Flows: 4, FlowPackets: packets,
			},
		},
		{
			name: "normal",
			opts: scenario.Options{
				Seed: cfg.seed(), Vehicles: 60, HighwayLength: 2000,
				SpeedMean: 30, Duration: duration,
				Flows: 4, FlowPackets: packets,
			},
		},
		{
			name: "congested",
			opts: scenario.Options{
				Seed: cfg.seed(), Vehicles: 140, HighwayLength: 1500,
				SpeedMean: 8, SpeedStd: 3, Duration: duration,
				Flows: 4, FlowPackets: packets,
			},
		},
	}
}

// representatives maps each Table I row to the protocol run for it.
func representatives() []struct{ category, protocol string } {
	return []struct{ category, protocol string }{
		{"Connectivity", "Flooding"},
		{"Mobility", "PBR"},
		{"Infrastructure", "DRR"},
		{"Location", "Greedy"},
		{"Probability", "TBP-SS"},
	}
}

// Table1Summary regenerates Table I: one representative protocol per
// category, measured across the three traffic regimes. The paper's
// qualitative pros/cons become measured PDR, delay, overhead, and
// collision columns.
func Table1Summary(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "measured summary of the five routing categories",
		Columns: []string{
			"category", "protocol", "regime", "PDR", "delay(s)",
			"overhead", "collisions", "breaks",
		},
	}
	// declare the full representative × regime grid as labelled runs
	type cell struct{ category, regime string }
	var cells []cell
	var camp runner.Campaign
	rgs := regimes(cfg)
	for _, rep := range representatives() {
		for _, rg := range rgs {
			opts := rg.opts
			if rep.protocol == "DRR" {
				opts.RSUs = 3
			}
			cells = append(cells, cell{rep.category, rg.name})
			camp.Add(runner.Run{Protocol: rep.protocol, Opts: opts})
		}
	}
	results, err := cfg.submitResults(camp)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("table1 %s/%s: %w", camp.Runs[i].Protocol, cells[i].regime, res.Err)
		}
		sum := res.Summary
		t.AddRow(cells[i].category, camp.Runs[i].Protocol, cells[i].regime,
			fmtPct(sum.PDR), fmtF(sum.MeanDelay), fmtF(sum.Overhead),
			fmtPct(sum.CollisionRate), fmt.Sprint(sum.Breaks))
	}
	t.Notes = append(t.Notes,
		"Table I row 1 (connectivity): simple but overhead/broadcast storm — see collisions grow with density",
		"Table I row 2 (mobility): reliable in normal traffic, degraded in sparse/congested",
		"Table I row 3 (infrastructure): reliable+accurate, needs RSUs (expensive, urban-only)",
		"Table I row 4 (location): simple+direct but not optimal (PDR below mobility/probability in normal traffic)",
		"Table I row 5 (probability): efficient (low overhead per delivery) but tuned to a traffic model",
	)
	return t, nil
}
