package harness

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// ChaosCell is one (fault profile, protocol) cell of the chaos grid: how
// gracefully the protocol degraded under that injected failure mode.
type ChaosCell struct {
	Profile  string `json:"profile"`
	Protocol string `json:"protocol"`
	// PDR is the whole-run delivery ratio; FaultPDR counts only packets
	// originated inside fault windows.
	PDR      float64 `json:"pdr"`
	FaultPDR float64 `json:"fault_pdr"`
	// Crashes and Recoveries are the fault events that actually landed.
	Crashes    int `json:"crashes"`
	Recoveries int `json:"recoveries"`
	// Reroute is the mean crash-to-next-delivery latency; Recovery the
	// mean recovery-to-first-beacon-heard latency; CtlSpike the ratio of
	// control transmission rates inside vs outside fault windows.
	Reroute  float64 `json:"time_to_reroute_s"`
	Recovery float64 `json:"recovery_latency_s"`
	CtlSpike float64 `json:"control_spike"`
}

// chaosGrid declares the fault-profile × protocol grid. The V2V
// protocols face the mobile failure modes on a closed highway; DRR — the
// only infrastructure protocol — faces the two infrastructure-death
// profiles with three RSUs to lose.
func chaosGrid(cfg Config) []runner.Run {
	duration := 60.0
	vehicles := 40
	packets := 20
	protos := []string{"Greedy", "AODV", "TBP-SS"}
	if cfg.Quick {
		duration = 30
		vehicles = 24
		packets = 12
		protos = []string{"Greedy", "TBP-SS"}
	}
	base := scenario.Options{
		Seed: cfg.seed(), Vehicles: vehicles, HighwayLength: 2500,
		SpeedMean: 28, Duration: duration, Flows: 4, FlowPackets: packets,
		// spread each flow across the run so packets land inside and
		// outside the fault windows — FaultPDR needs both populations
		FlowInterval: (duration - 10) / float64(packets),
	}
	var runs []runner.Run
	for _, profile := range []string{"rolling-crashes", "jammed-corridor", "partition"} {
		for _, proto := range protos {
			opts := base
			opts.Faults = profile
			runs = append(runs, runner.Run{
				Label: profile + "/" + proto, Protocol: proto, Opts: opts,
			})
		}
	}
	for _, profile := range []string{"rsu-blackout", "energy-depletion"} {
		opts := base
		opts.Faults = profile
		opts.RSUs = 3
		runs = append(runs, runner.Run{
			Label: profile + "/DRR", Protocol: "DRR", Opts: opts,
		})
	}
	return runs
}

// ChaosData runs the grid and returns one cell per (profile, protocol)
// combination, in grid order.
func ChaosData(cfg Config) ([]ChaosCell, error) {
	var camp runner.Campaign
	camp.Add(chaosGrid(cfg)...)
	sums, err := cfg.submit(camp)
	if err != nil {
		return nil, err
	}
	cells := make([]ChaosCell, len(sums))
	for i, sum := range sums {
		run := camp.Runs[i]
		cells[i] = ChaosCell{
			Profile:    run.Opts.Faults,
			Protocol:   run.Protocol,
			PDR:        sum.PDR,
			FaultPDR:   sum.FaultPDR,
			Crashes:    sum.Crashes,
			Recoveries: sum.Recoveries,
			Reroute:    sum.TimeToReroute,
			Recovery:   sum.RecoveryLatency,
			CtlSpike:   sum.FaultCtlSpike,
		}
	}
	return cells, nil
}

// ChaosTable renders chaos cells as the experiment table — the single
// renderer shared by the chaos experiment and vanetbench's chaos
// subcommand, so columns and caveats cannot diverge.
func ChaosTable(cells []ChaosCell) *Table {
	t := &Table{
		ID:      "chaos",
		Title:   "graceful degradation under injected faults, per profile and protocol",
		Columns: []string{"profile", "protocol", "PDR", "faultPDR", "crash", "recov", "reroute(s)", "recovery(s)", "ctl-spike"},
	}
	for _, c := range cells {
		t.AddRow(c.Profile, c.Protocol, fmtPct(c.PDR), fmtPct(c.FaultPDR),
			fmt.Sprint(c.Crashes), fmt.Sprint(c.Recoveries),
			fmtF(c.Reroute), fmtF(c.Recovery), fmtF(c.CtlSpike))
	}
	t.Notes = append(t.Notes,
		"faultPDR counts only packets originated inside fault windows; whole-run PDR dilutes the damage with healthy-period traffic",
		"reroute(s) is crash → next successful delivery; recovery(s) is node recovery → first beacon heard; ctl-spike > 1 means faults made the control plane chattier",
		"schedules are seeded (scenario seed + 13) and fire on the event queue — same seed, same faults, byte-identical tables at any Workers/Shards",
	)
	return t
}

// Chaos (E-F1) measures graceful degradation: every fault profile in the
// chaos grid — rolling vehicle crashes, a jammed corridor, a hard
// partition for the V2V protocols; RSU blackout and energy depletion for
// the infrastructure protocol — against the degradation metrics of the
// fault plane.
func Chaos(cfg Config) (*Table, error) {
	cells, err := ChaosData(cfg)
	if err != nil {
		return nil, err
	}
	return ChaosTable(cells), nil
}
