package harness

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// AblationHybrid (E-A6) evaluates the survey conclusion's proposal —
// combining probability-model routing with mobility-based signals — under
// traffic whose motion changes (high speed heterogeneity plus a dense
// opposite-direction stream): exactly the regime where "the latter can
// strengthen the former when the traffic motions change".
func AblationHybrid(cfg Config) (*Table, error) {
	duration := 50.0
	if cfg.Quick {
		duration = 30
	}
	t := &Table{
		ID:      "abl-hybrid",
		Title:   "hybrid probability+mobility routing under changing motion",
		Columns: []string{"protocol", "PDR", "delay(s)", "overhead", "breaks", "repairs"},
	}
	protos := []string{"PBR", "TBP-SS", "Hybrid"}
	sums, err := cfg.submit(runner.New(runner.Spec{
		Protocols: protos,
		Grid: []scenario.Options{{
			Seed: cfg.seed(), Vehicles: 70, HighwayLength: 2000,
			SpeedMean: 28, SpeedStd: 10, // strongly heterogeneous motion
			Duration: duration, Flows: 4, FlowPackets: 15,
		}},
	}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(protos[i], fmtPct(sum.PDR), fmtF(sum.MeanDelay), fmtF(sum.Overhead),
			fmt.Sprint(sum.Breaks), fmt.Sprint(sum.Repairs))
	}
	t.Notes = append(t.Notes,
		"the hybrid gates the probability metric with the Fig. 4 direction class and the deterministic Eqn (4) prediction — the combination Sec. VIII proposes")
	return t, nil
}

// AblationDisaster (E-A7) measures Sec. V-A's warning about infrastructure
// routing: "in disasters like hurricane and earthquake where traffic
// information is most needed, the information may however not be delivered
// because the infrastructure is damaged." Half-way through a sparse-traffic
// run every RSU is disabled; DRR's delivery collapses to its V2V fallback,
// while the bus-ferry and pure-V2V baselines are unaffected. The disaster
// is the fault plane's rsu-blackout profile (Options.Faults), so crashed
// RSUs also drop their queued frames and age out of the location service —
// no post-build scheduling hook.
func AblationDisaster(cfg Config) (*Table, error) {
	duration := 80.0
	packets := 30
	if cfg.Quick {
		duration = 50
		packets = 18
	}
	t := &Table{
		ID:      "abl-disaster",
		Title:   "infrastructure failure mid-run (sparse traffic)",
		Columns: []string{"configuration", "PDR", "delivered/sent"},
	}
	base := scenario.Options{
		Seed: cfg.seed(), Vehicles: 12, HighwayLength: 3000,
		SpeedMean: 30, Duration: duration, Flows: 4, FlowPackets: packets,
		// spread the flow over the whole run so half the packets are sent
		// after the disaster strikes at t/2
		FlowInterval: (duration - 15) / float64(packets),
		RSUs:         3,
	}
	disasterOpts := base
	disasterOpts.Faults = "rsu-blackout"
	busOpts := base
	busOpts.RSUs = 0
	busOpts.Buses = 2
	v2vOpts := base
	v2vOpts.RSUs = 0
	var camp runner.Campaign
	camp.Add(
		runner.Run{Label: "DRR, RSUs healthy", Protocol: "DRR", Opts: base},
		runner.Run{Label: "DRR, RSUs destroyed at t/2", Protocol: "DRR", Opts: disasterOpts},
		runner.Run{Label: "Bus ferries (no RSUs)", Protocol: "Bus", Opts: busOpts},
		runner.Run{Label: "Greedy V2V (no RSUs)", Protocol: "Greedy", Opts: v2vOpts},
	)
	sums, err := cfg.submit(camp)
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(camp.Runs[i].Label, fmtPct(sum.PDR),
			fmt.Sprintf("%d/%d", sum.DataDelivered, sum.DataSent))
	}
	t.Notes = append(t.Notes,
		"the damaged-infrastructure PDR must land between healthy DRR and pure V2V — Table I row 3's availability caveat, measured")
	return t, nil
}
