package harness

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/roadnet"
	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// newRand derives a deterministic stream for harness-local sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Fig1Taxonomy regenerates Fig. 1: the five-category protocol taxonomy,
// with the implementing package of every protocol this repository ships.
func Fig1Taxonomy(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "taxonomy of VANET routing techniques",
		Columns: []string{"category", "protocol", "ref", "implementation", "idea"},
	}
	for _, cat := range core.Categories() {
		for _, e := range core.ByCategory(cat) {
			impl := e.Package
			if impl == "" {
				impl = "(catalogued)"
			}
			t.AddRow(cat.String(), e.Name, e.Ref, impl, e.Description)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d of %d catalogued protocols implemented; every category has ≥2 implementations",
		core.ImplementedCount(), len(core.Taxonomy())))
	return t, nil
}

// Fig2Discovery regenerates Fig. 2: AODV discovery on a dense highway —
// RREQ floods away from the source while the RREP unicasts back — by
// counting control transmissions per phase and verifying delivery, over
// three independently seeded runs.
func Fig2Discovery(cfg Config) (*Table, error) {
	vehicles := 40
	seeds := []int64{cfg.seed(), cfg.seed() + 1, cfg.seed() + 2}
	if cfg.Quick {
		vehicles = 30
		seeds = seeds[:2]
	}
	t := &Table{
		ID:      "fig2",
		Title:   "AODV discovery + short flow (per-seed runs)",
		Columns: []string{"seed", "delivered/sent", "PDR", "discoveries", "RREQ tx", "RREP tx", "mean hops", "delay(s)"},
	}
	sums, err := cfg.submit(runner.New(runner.Spec{
		Protocols: []string{"AODV"},
		Grid: []scenario.Options{{
			Vehicles:      vehicles,
			HighwayLength: 1200, SpeedStd: 2,
			Flows: 2, FlowPackets: 5, Duration: 20,
		}},
		Seeds: seeds,
	}))
	if err != nil {
		return nil, err
	}
	totalDelivered := 0
	for i, sum := range sums {
		totalDelivered += sum.DataDelivered
		t.AddRow(fmt.Sprint(seeds[i]),
			fmt.Sprintf("%d/%d", sum.DataDelivered, sum.DataSent),
			fmtPct(sum.PDR), fmt.Sprint(sum.Discoveries),
			fmt.Sprint(sum.Control[netstack.KindRREQ]), fmt.Sprint(sum.Control[netstack.KindRREP]),
			fmtF(sum.MeanHops), fmtF(sum.MeanDelay))
	}
	t.Notes = append(t.Notes,
		"RREQ spreads by flooding (tens of transmissions per discovery), the RREP unicasts back over the one selected path — the Fig. 2 asymmetry",
		fmt.Sprintf("total delivered across seeds: %d", totalDelivered))
	return t, nil
}

// Fig3LinkLifetime regenerates Fig. 3: link lifetime from Eqns 1-4 for the
// same-direction case (a) and opposite-direction case (b), with and
// without acceleration, validating the closed-form solver against
// numerical integration of the same kinematics.
func Fig3LinkLifetime(cfg Config) (*Table, error) {
	const r = 250.0 // communication range (m)
	const vm = 40.0 // speed limit v_m (m/s)
	t := &Table{
		ID:      "fig3",
		Title:   "link lifetime vs relative speed (r=250 m, v_m=40 m/s)",
		Columns: []string{"case", "dv (m/s)", "accel (m/s^2)", "analytic (s)", "numeric (s)", "err"},
	}
	type scen struct {
		name   string
		vi, vj float64
		ai, aj float64
		d0     float64
	}
	var scens []scen
	for _, dv := range []float64{2, 5, 10, 20} {
		// (a) same direction: follower i behind at d0=-100 m, faster by dv
		scens = append(scens, scen{"same-dir", 25 + dv, 25, 0, 0, -100})
		// (b) opposite direction modelled on the axis: j moves backward,
		// relative speed 25+dv
		scens = append(scens, scen{"opposite", 25, -dv, 0, 0, -100})
	}
	// acceleration variants of case (a)
	scens = append(scens,
		scen{"same-dir+acc", 27, 25, 1.0, 0, -100},
		scen{"same-dir-dec", 30, 25, -1.0, 0, -100},
		scen{"opp+acc", 25, -25, 1.0, -1.0, 0},
	)
	// direction-preserving speed clamp matching the analytic solver
	speedFn := func(v0, a float64) func(float64) float64 {
		lo, hi := -vm, vm
		if v0 > 0 {
			lo = 0
		} else if v0 < 0 {
			hi = 0
		}
		return func(t float64) float64 { return clampF(v0+a*t, lo, hi) }
	}
	for _, s := range scens {
		i := link.Kinematics1D{X: s.d0, V: s.vi, A: s.ai}
		j := link.Kinematics1D{X: 0, V: s.vj, A: s.aj}
		analytic := link.Lifetime(i, j, r, vm)
		numeric := link.LifetimeNumeric(
			speedFn(s.vi, s.ai),
			speedFn(s.vj, s.aj),
			s.d0, r, 3600, 0.001,
		)
		errStr := "-"
		if analytic != link.Forever && numeric != link.Forever {
			errStr = fmt.Sprintf("%.2f%%", 100*math.Abs(analytic-numeric)/math.Max(numeric, 1e-9))
		}
		dv := s.vi - s.vj
		t.AddRow(s.name, fmtF(dv), fmtF(s.ai-s.aj), fmtLife(analytic), fmtLife(numeric), errStr)
	}
	t.Notes = append(t.Notes,
		"lifetime shrinks as |dv| grows; opposite-direction links (case b) live ~an order of magnitude shorter — the Fig. 3 geometry")
	return t, nil
}

// Fig4Direction regenerates Fig. 4: the velocity-decomposition direction
// classifier, and the measured mean link duration of same-direction vs
// opposite-direction vehicle pairs on a bidirectional highway.
func Fig4Direction(cfg Config) (*Table, error) {
	duration := 120.0
	vehicles := 60
	if cfg.Quick {
		duration = 60
		vehicles = 40
	}
	net, eb, wb, err := roadnet.Highway(3000, 2, 36)
	if err != nil {
		return nil, err
	}
	rng := newRand(cfg.seed())
	model := mobility.NewRoadModel(net, rng, mobility.ContinueRandom)
	mobility.Populate(model, rng, mobility.PopulateOptions{
		Count: vehicles / 2, SpeedMean: 28, SpeedStd: 5,
		Segments: []roadnet.SegmentID{eb},
	})
	mobility.Populate(model, rng, mobility.PopulateOptions{
		Count: vehicles / 2, SpeedMean: 28, SpeedStd: 5,
		Segments: []roadnet.SegmentID{wb},
	})

	const r = 250.0
	const dt = 0.1
	type pairKey struct{ a, b mobility.VehicleID }
	linkUp := make(map[pairKey]float64) // start time of current link
	durSame, durOpp := []float64{}, []float64{}
	classify := func(sa, sb mobility.State) link.DirectionClass {
		return link.Classify(sa.Pos, sa.Vel, sb.Pos, sb.Vel)
	}
	for now := 0.0; now < duration; now += dt {
		states := model.States()
		index := make(map[pairKey]bool)
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				a, b := states[i], states[j]
				k := pairKey{a.ID, b.ID}
				inRange := a.Pos.Dist(b.Pos) <= r
				if inRange {
					index[k] = true
					if _, up := linkUp[k]; !up {
						linkUp[k] = now
					}
				} else if start, up := linkUp[k]; up {
					delete(linkUp, k)
					d := now - start
					if classify(a, b) == link.OppositeDirection {
						durOpp = append(durOpp, d)
					} else {
						durSame = append(durSame, d)
					}
				}
			}
		}
		model.Advance(dt)
	}
	t := &Table{
		ID:      "fig4",
		Title:   "measured link duration by direction class (bidirectional highway)",
		Columns: []string{"direction class", "links observed", "mean duration (s)", "max duration (s)"},
	}
	t.AddRow("same", fmt.Sprint(len(durSame)), fmtF(mean(durSame)), fmtF(maxF(durSame)))
	t.AddRow("opposite", fmt.Sprint(len(durOpp)), fmtF(mean(durOpp)), fmtF(maxF(durOpp)))
	ratio := mean(durSame) / math.Max(mean(durOpp), 1e-9)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"same-direction links live %.1f× longer — the Fig. 4 rule's payoff (projections with agreeing signs → stable links)", ratio))
	return t, nil
}

// Fig5RSU regenerates Fig. 5: infrastructure rescues sparse traffic. PDR
// of the DRR (RSU-assisted) protocol vs vehicle density, with 0, 2, and 4
// road-side units on a 2 km highway.
func Fig5RSU(cfg Config) (*Table, error) {
	densities := []int{8, 16, 32}
	rsus := []int{0, 2, 4}
	duration := 60.0
	if cfg.Quick {
		densities = []int{8, 20}
		rsus = []int{0, 2}
		duration = 40
	}
	t := &Table{
		ID:      "fig5",
		Title:   "PDR vs density with road-side units (DRR protocol)",
		Columns: []string{"vehicles", "RSUs", "PDR", "mean delay (s)", "delivered/sent"},
	}
	type point struct{ vehicles, rsus int }
	var points []point
	var grid []scenario.Options
	for _, v := range densities {
		for _, n := range rsus {
			rsuOpt := n
			if rsuOpt == 0 {
				rsuOpt = -1 // explicitly none: the Fig. 5 baseline
			}
			points = append(points, point{v, n})
			grid = append(grid, scenario.Options{
				Seed: cfg.seed(), Vehicles: v, RSUs: rsuOpt,
				HighwayLength: 3000, Duration: duration,
				Flows: 4, FlowPackets: 20,
			})
		}
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: []string{"DRR"}, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(fmt.Sprint(points[i].vehicles), fmt.Sprint(points[i].rsus),
			fmtPct(sum.PDR), fmtF(sum.MeanDelay),
			fmt.Sprintf("%d/%d", sum.DataDelivered, sum.DataSent))
	}
	t.Notes = append(t.Notes,
		"at low density the V2V path rarely exists; RSUs relay/buffer over the backbone (VEN), lifting PDR — Fig. 5's promise. The gain shrinks as density grows")
	return t, nil
}

// Fig6Zones regenerates Fig. 6: geographic scoping suppresses the
// duplicate storm. Flooding vs zone flooding vs gateway (LORA-DCBF)
// clustering on the same dense highway: MAC transmissions and duplicate
// deliveries per delivered packet.
func Fig6Zones(cfg Config) (*Table, error) {
	vehicles := 80
	duration := 40.0
	if cfg.Quick {
		vehicles = 50
		duration = 25
	}
	t := &Table{
		ID:      "fig6",
		Title:   "duplicate suppression: flooding vs zone vs gateway",
		Columns: []string{"protocol", "PDR", "data transmits", "tx per delivered", "collision rate"},
	}
	protos := []string{"Flooding", "Zone", "LORA-DCBF"}
	sums, err := cfg.submit(runner.New(runner.Spec{
		Protocols: protos,
		Grid: []scenario.Options{{
			Seed: cfg.seed(), Vehicles: vehicles,
			HighwayLength: 1500, Duration: duration,
			Flows: 4, FlowPackets: 15,
		}},
	}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		// beacons are substrate, not dissemination cost: compare the
		// data-plane transmissions only
		perDelivered := float64(sum.DataForwarded)
		if sum.DataDelivered > 0 {
			perDelivered /= float64(sum.DataDelivered)
		}
		t.AddRow(protos[i], fmtPct(sum.PDR), fmt.Sprint(sum.DataForwarded),
			fmtF(perDelivered), fmtPct(sum.CollisionRate))
	}
	t.Notes = append(t.Notes,
		"zone flooding confines rebroadcasts to the src-dst corridor; gateway clustering leaves one relay per cell — both cut duplicates and collisions vs flooding (Fig. 6's groups/gateways)")
	return t, nil
}

func fmtLife(v float64) string {
	if v == link.Forever {
		return "inf"
	}
	return fmtF(v)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxF(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
