package harness

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// AblationBroadcastStorm (E-A1) measures the broadcast storm: flooding's
// MAC transmissions, duplicate ratio, and collision rate as density grows
// (Sec. III-B: "the performance of network will dramatically drop when the
// population of nodes increases").
func AblationBroadcastStorm(cfg Config) (*Table, error) {
	densities := []int{20, 40, 80, 140}
	duration := 30.0
	if cfg.Quick {
		densities = []int{20, 60}
		duration = 20
	}
	t := &Table{
		ID:      "abl-storm",
		Title:   "broadcast storm: flooding vs node count",
		Columns: []string{"vehicles", "PDR", "MAC transmits", "tx per delivered", "dup ratio", "collision rate"},
	}
	grid := make([]scenario.Options, 0, len(densities))
	for _, v := range densities {
		grid = append(grid, scenario.Options{
			Seed: cfg.seed(), Vehicles: v, HighwayLength: 1500,
			Duration: duration, Flows: 3, FlowPackets: 10,
		})
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: []string{"Flooding"}, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		perDelivered := float64(sum.MACTransmits)
		if sum.DataDelivered > 0 {
			perDelivered /= float64(sum.DataDelivered)
		}
		t.AddRow(fmt.Sprint(densities[i]), fmtPct(sum.PDR), fmt.Sprint(sum.MACTransmits),
			fmtF(perDelivered), fmtF(sum.DupRatio), fmtPct(sum.CollisionRate))
	}
	t.Notes = append(t.Notes, "transmissions per delivered packet grow superlinearly with density — the broadcast storm [5]")
	return t, nil
}

// AblationMobilityRegimes (E-A2) shows mobility-based prediction works in
// normal flow but degrades in sparse and congested traffic (Table I row 2:
// "not working in sparse/congested traffic").
func AblationMobilityRegimes(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "abl-regimes",
		Title:   "PBR (mobility prediction) across traffic regimes",
		Columns: []string{"regime", "PDR", "delay(s)", "discoveries", "breaks", "path lifetime(s)"},
	}
	rgs := regimes(cfg)
	grid := make([]scenario.Options, 0, len(rgs))
	for _, rg := range rgs {
		grid = append(grid, rg.opts)
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: []string{"PBR"}, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(rgs[i].name, fmtPct(sum.PDR), fmtF(sum.MeanDelay),
			fmt.Sprint(sum.Discoveries), fmt.Sprint(sum.Breaks), fmtF(sum.PathLifetime))
	}
	t.Notes = append(t.Notes,
		"sparse: paths rarely exist so prediction has nothing to protect; congested: queueing and collisions dominate — prediction accuracy stops mattering")
	return t, nil
}

// AblationPathLifetime (E-A3) compares AODV (lifetime-blind) against PBR
// and TBP-SS (lifetime-aware) as speed grows: the survey's thesis that
// "use of knowledge of the stability of various potential links ... would
// naturally help avoid unstable links".
func AblationPathLifetime(cfg Config) (*Table, error) {
	speeds := []float64{10, 20, 30, 40}
	duration := 50.0
	if cfg.Quick {
		speeds = []float64{15, 35}
		duration = 30
	}
	t := &Table{
		ID:      "abl-lifetime",
		Title:   "lifetime-aware routing vs speed",
		Columns: []string{"protocol", "speed(m/s)", "PDR", "breaks", "discoveries", "repairs"},
	}
	protos := []string{"AODV", "PBR", "TBP-SS"}
	grid := make([]scenario.Options, 0, len(speeds))
	for _, sp := range speeds {
		grid = append(grid, scenario.Options{
			Seed: cfg.seed(), Vehicles: 60, HighwayLength: 2000,
			SpeedMean: sp, SpeedStd: sp / 4, Duration: duration,
			Flows: 4, FlowPackets: 15,
		})
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: protos, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(protos[i/len(speeds)], fmtF(speeds[i%len(speeds)]), fmtPct(sum.PDR),
			fmt.Sprint(sum.Breaks), fmt.Sprint(sum.Discoveries), fmt.Sprint(sum.Repairs))
	}
	t.Notes = append(t.Notes,
		"as speed rises, AODV's breaks climb while the lifetime-aware protocols trade extra discoveries/repairs for sustained PDR")
	return t, nil
}

// AblationProbVsGeo (E-A4) contrasts probability-based TBP-SS with
// geographic greedy under homogeneous vs heterogeneous speeds (Table I
// rows 4/5: location is "not optimal"; probability is "efficient" but
// model-bound).
func AblationProbVsGeo(cfg Config) (*Table, error) {
	duration := 50.0
	if cfg.Quick {
		duration = 30
	}
	type cond struct {
		name     string
		speedStd float64
	}
	conds := []cond{{"homogeneous", 1}, {"heterogeneous", 9}}
	t := &Table{
		ID:      "abl-probvsgeo",
		Title:   "probability vs geographic routing under speed heterogeneity",
		Columns: []string{"protocol", "traffic", "PDR", "delay(s)", "overhead", "breaks"},
	}
	protos := []string{"Greedy", "TBP-SS"}
	grid := make([]scenario.Options, 0, len(conds))
	for _, c := range conds {
		grid = append(grid, scenario.Options{
			Seed: cfg.seed(), Vehicles: 70, HighwayLength: 2000,
			SpeedMean: 28, SpeedStd: c.speedStd, Duration: duration,
			Flows: 4, FlowPackets: 15,
		})
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: protos, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(protos[i/len(conds)], conds[i%len(conds)].name, fmtPct(sum.PDR), fmtF(sum.MeanDelay),
			fmtF(sum.Overhead), fmt.Sprint(sum.Breaks))
	}
	t.Notes = append(t.Notes,
		"with homogeneous speeds, geography is near-optimal; heterogeneity makes greedy's shortest links churn while stability-probing holds its paths")
	return t, nil
}

// AblationTickets (E-A5) sweeps the TBP-SS ticket budget L: probe overhead
// vs delivery — the protocol's core knob ("selectively probes, rather than
// brute-force floods").
func AblationTickets(cfg Config) (*Table, error) {
	budgets := []int{1, 2, 3, 5, 8}
	duration := 50.0
	if cfg.Quick {
		budgets = []int{1, 3, 6}
		duration = 30
	}
	t := &Table{
		ID:      "abl-tickets",
		Title:   "TBP-SS ticket budget trade-off",
		Columns: []string{"tickets", "PDR", "probes sent", "overhead", "path lifetime(s)"},
	}
	grid := make([]scenario.Options, 0, len(budgets))
	for _, l := range budgets {
		grid = append(grid, scenario.Options{
			Seed: cfg.seed(), Vehicles: 70, HighwayLength: 2000,
			Duration: duration, Flows: 4, FlowPackets: 15,
			TicketBudget: l,
		})
	}
	sums, err := cfg.submit(runner.New(runner.Spec{Protocols: []string{"TBP-SS"}, Grid: grid}))
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		t.AddRow(fmt.Sprint(budgets[i]), fmtPct(sum.PDR), fmt.Sprint(sum.ControlTotal),
			fmtF(sum.Overhead), fmtF(sum.PathLifetime))
	}
	t.Notes = append(t.Notes,
		"a handful of tickets buys most of the reachability of flooding-style discovery at a fraction of the probes; beyond L≈5 returns diminish")
	return t, nil
}
