package harness

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
)

// LinkAccCell is one (estimator, scenario) cell of the link-accuracy
// grid: how well the estimator's residual-lifetime predictions matched
// the link breaks the world actually observed.
type LinkAccCell struct {
	Estimator string  `json:"estimator"`
	Scenario  string  `json:"scenario"`
	Samples   int     `json:"samples"`
	Censored  int     `json:"censored"`
	MAE       float64 `json:"mae_s"`
	Bias      float64 `json:"bias_s"`
	PDR       float64 `json:"pdr"`
	// Calibration carries the per-bucket mean predicted vs observed
	// lifetimes, bucketed by predicted lifetime (metrics.LinkBucketEdges).
	Calibration [len(metrics.LinkBucketEdges) + 1]metrics.CalBucket `json:"calibration"`
}

// LinkAccuracyHorizon caps audited predictions and observations, seconds.
const LinkAccuracyHorizon = 30.0

// linkAccScenario is one evaluation habitat of the accuracy grid.
type linkAccScenario struct {
	name string
	opts scenario.Options
}

// linkAccScenarios returns the three habitats the estimators are measured
// in: a free-flow highway (kinematics honest, Eqn 4 at its best), the
// open-world city-rush preset (turning at junctions and mid-run churn
// violate the constant-velocity assumption), and trace replay (recorded
// trajectories with per-track active windows).
func linkAccScenarios(cfg Config) ([]linkAccScenario, error) {
	duration := 40.0
	vehicles := 40
	if cfg.Quick {
		duration = 25
		vehicles = 24
	}
	tracks, err := recordHighwayTrace(cfg.seed()+1, vehicles/2, duration+10)
	if err != nil {
		return nil, err
	}
	return []linkAccScenario{
		{
			name: "highway",
			opts: scenario.Options{
				Seed: cfg.seed(), Vehicles: vehicles, HighwayLength: 2000,
				Duration: duration, Flows: 4, FlowPackets: 12,
			},
		},
		{
			name: "city-rush",
			opts: scenario.Options{
				Seed: cfg.seed(), Scenario: "city-rush", Vehicles: vehicles,
				Duration: duration, Flows: 4, FlowPackets: 12,
			},
		},
		{
			name: "trace",
			opts: scenario.Options{
				Seed: cfg.seed(), Tracks: tracks,
				Duration: duration, Flows: 4, FlowPackets: 12,
			},
		},
	}, nil
}

// LinkAccuracyData runs the estimator × scenario grid and returns one
// cell per combination. Every run carries the same Greedy workload —
// Greedy never consumes lifetime or receipt predictions, so routing
// behaviour (and with it the beacon/feedback evidence stream) is
// identical across estimators and the cells differ only in what the
// estimators predicted from it.
func LinkAccuracyData(cfg Config) ([]LinkAccCell, error) {
	scens, err := linkAccScenarios(cfg)
	if err != nil {
		return nil, err
	}
	estimators := linkstate.Names()
	var camp runner.Campaign
	var cells []LinkAccCell
	for _, est := range estimators {
		for _, sc := range scens {
			opts := sc.opts
			opts.Estimator = est
			cells = append(cells, LinkAccCell{Estimator: est, Scenario: sc.name})
			camp.Add(runner.Run{
				Protocol: "Greedy",
				Opts:     opts,
				Setup: func(s *scenario.Scenario) {
					s.World.EnableLinkAudit(LinkAccuracyHorizon)
				},
			})
		}
	}
	results, err := cfg.submitResults(camp)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("link-accuracy %s/%s: %w", cells[i].Estimator, cells[i].Scenario, res.Err)
		}
		sum := res.Summary
		cells[i].Samples = sum.LinkSamples
		cells[i].Censored = sum.LinkCensored
		cells[i].MAE = sum.LinkMAE
		cells[i].Bias = sum.LinkBias
		cells[i].PDR = sum.PDR
		cells[i].Calibration = sum.LinkCalibration
	}
	return cells, nil
}

// LinkAccuracyTable renders accuracy cells as the experiment table — the
// single renderer shared by the link-accuracy experiment and vanetbench's
// linkacc subcommand, so columns and caveats cannot diverge.
func LinkAccuracyTable(cells []LinkAccCell) *Table {
	t := &Table{
		ID:      "link-accuracy",
		Title:   "predicted vs observed link lifetime, per estimator and scenario",
		Columns: []string{"estimator", "scenario", "samples", "censored", "MAE(s)", "bias(s)", "PDR"},
	}
	for _, c := range cells {
		t.AddRow(c.Estimator, c.Scenario, fmt.Sprint(c.Samples), fmt.Sprint(c.Censored),
			fmtF(c.MAE), fmt.Sprintf("%+.3f", c.Bias), fmtPct(c.PDR))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("predictions and observations capped at the %g s audit horizon; bias > 0 means the estimator is optimistic", LinkAccuracyHorizon),
		"composite (the default plane configuration) predicts lifetime kinematically, so its lifetime error matches `kinematic`; they differ in receipt probability",
		calibrationNote(cells),
	)
	return t
}

// LinkAccuracy (link-accuracy) measures the reliability plane's central
// claim: that residual link lifetimes can be predicted. Every estimator in
// the registry runs the same scenarios while the world records ground-
// truth link breaks from geometry; the table reports the prediction MAE,
// the signed bias (positive = optimistic), and sample counts per cell.
func LinkAccuracy(cfg Config) (*Table, error) {
	cells, err := LinkAccuracyData(cfg)
	if err != nil {
		return nil, err
	}
	return LinkAccuracyTable(cells), nil
}

// calibrationNote condenses the kinematic estimator's highway calibration
// buckets into one line: mean predicted → mean observed per bucket.
func calibrationNote(cells []LinkAccCell) string {
	for _, c := range cells {
		if c.Estimator != "kinematic" || c.Scenario != "highway" {
			continue
		}
		s := "kinematic/highway calibration (pred→obs s): "
		for i, b := range c.Calibration {
			if i > 0 {
				s += ", "
			}
			if b.N == 0 {
				s += "–"
				continue
			}
			s += fmt.Sprintf("%.1f→%.1f (n=%d)", b.MeanPred(), b.MeanObs(), b.N)
		}
		return s
	}
	return "calibration: no kinematic/highway cell"
}
