package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/prng"
	"github.com/vanetlab/relroute/internal/roadnet"
)

// churnSeedOffset derives the open-world arrival/departure stream from
// Options.Seed without perturbing any existing stream (the root stream
// sits at Seed, the workload stream at Seed+7).
const churnSeedOffset = 13

// ClosedTraffic is the classic closed-world population: Options.Vehicles
// cars (plus Options.Buses ferries) scattered at t=0, present for the
// whole run. It reproduces the pre-provider scenario builder draw for
// draw, which is what keeps every golden experiment output byte-identical
// through the provider refactor.
type ClosedTraffic struct{}

// BuildModel implements Traffic. Draw order: one stream seed for the road
// model, one for the population scatter.
func (ClosedTraffic) BuildModel(net *roadnet.Network, segs []roadnet.SegmentID, rng *rand.Rand, opts *Options) (mobility.Model, error) {
	model := mobility.NewRoadModelSeeded(net, rng.Int63(), mobility.ContinueRandom)
	mobility.Populate(model, rand.New(rand.NewSource(rng.Int63())), mobility.PopulateOptions{
		Count:     opts.Vehicles,
		SpeedMean: opts.SpeedMean,
		SpeedStd:  opts.SpeedStd,
		Segments:  segs,
	})
	if opts.Buses > 0 {
		var loop []roadnet.SegmentID
		for i := 0; i < net.Segments(); i++ {
			loop = append(loop, roadnet.SegmentID(i))
		}
		mobility.AddBusLine(model, loop, opts.Buses, opts.SpeedMean*0.7)
	}
	return model, nil
}

// Install implements Traffic (closed worlds have no runtime behaviour).
func (ClosedTraffic) Install(*Scenario) {}

// RateProfile is a time-varying Poisson arrival intensity in vehicles per
// second. Peak bounds the intensity (the thinning envelope); Rate maps
// simulation time to the instantaneous intensity, nil meaning constant
// Peak.
type RateProfile struct {
	Peak float64
	Rate func(t float64) float64
}

// ConstantRate is a homogeneous arrival process of r vehicles per second.
func ConstantRate(r float64) RateProfile { return RateProfile{Peak: r} }

// RushHour ramps the arrival intensity linearly from base up to peak at
// time peakAt and back down, width seconds in each direction — the
// classic commute profile where density builds, saturates, and drains
// within one run.
func RushHour(base, peak, peakAt, width float64) RateProfile {
	if width <= 0 {
		width = 1
	}
	return RateProfile{
		Peak: peak,
		Rate: func(t float64) float64 {
			d := t - peakAt
			if d < 0 {
				d = -d
			}
			if d >= width {
				return base
			}
			return base + (peak-base)*(1-d/width)
		},
	}
}

// OpenTraffic is the open-world population: an initial scatter plus a
// seeded Poisson arrival process (optionally rate-profiled) and
// lifetime-bounded departures. Vehicles spawn at segment entries, drive
// under IDM like everyone else, and despawn when their lifetime expires —
// the network stack observes every entry and exit through its open-world
// membership machinery (nodes join and leave mid-run).
type OpenTraffic struct {
	// Initial is the population at t=0 (default Options.Vehicles/2,
	// minimum 2 so workloads have endpoints).
	Initial int
	// Arrivals is the Poisson arrival intensity profile. Peak <= 0
	// disables arrivals.
	Arrivals RateProfile
	// MeanLifetime is the mean of the exponential lifetime assigned to
	// every vehicle (initial and spawned); 0 keeps vehicles until the run
	// ends.
	MeanLifetime float64
	// MaxVehicles caps the live population (default 4 × Options.Vehicles).
	MaxVehicles int
}

func (t OpenTraffic) initial(opts *Options) int {
	if t.Initial > 0 {
		return t.Initial
	}
	n := opts.Vehicles / 2
	if n < 2 {
		n = 2
	}
	return n
}

// BuildModel implements Traffic: the initial scatter mirrors
// ClosedTraffic with the reduced count.
func (t OpenTraffic) BuildModel(net *roadnet.Network, segs []roadnet.SegmentID, rng *rand.Rand, opts *Options) (mobility.Model, error) {
	model := mobility.NewRoadModelSeeded(net, rng.Int63(), mobility.ContinueRandom)
	mobility.Populate(model, rand.New(rand.NewSource(rng.Int63())), mobility.PopulateOptions{
		Count:     t.initial(opts),
		SpeedMean: opts.SpeedMean,
		SpeedStd:  opts.SpeedStd,
		Segments:  segs,
	})
	return model, nil
}

// Install implements Traffic: enable open-world membership on the world
// and schedule the arrival/departure processes on the engine, all driven
// by one private stream at Seed+churnSeedOffset.
func (t OpenTraffic) Install(sc *Scenario) {
	road := sc.Road
	if road == nil {
		return
	}
	opts := &sc.Opts
	rng, churnSrc := prng.Rand(opts.Seed + churnSeedOffset)
	sc.World.RegisterStream("scenario/churn", churnSrc)
	eng := sc.World.Engine()
	sc.World.SetJoinFactory(sc.factory)

	maxVehicles := t.MaxVehicles
	if maxVehicles <= 0 {
		maxVehicles = 4 * opts.Vehicles
	}
	scheduleDeparture := func(id mobility.VehicleID) {
		if t.MeanLifetime <= 0 {
			return
		}
		eng.After(rng.ExpFloat64()*t.MeanLifetime, func() {
			road.RemoveVehicle(id)
		})
	}
	// lifetime-bounded departures for the initial population
	for _, s := range road.States() {
		scheduleDeparture(s.ID)
	}

	peak := t.Arrivals.Peak
	if peak <= 0 {
		return
	}
	spawnSegs := sc.Segments
	if len(spawnSegs) == 0 {
		for i := 0; i < sc.Net.Segments(); i++ {
			spawnSegs = append(spawnSegs, roadnet.SegmentID(i))
		}
	}
	rate := t.Arrivals.Rate
	spawn := func() {
		segID := spawnSegs[rng.Intn(len(spawnSegs))]
		seg := sc.Net.Segment(segID)
		lane := rng.Intn(seg.Lanes)
		speed := opts.SpeedMean + opts.SpeedStd*rng.NormFloat64()
		if speed < 5 {
			speed = 5
		}
		if speed > seg.SpeedLimit*1.1 {
			speed = seg.SpeedLimit * 1.1
		}
		// enter at the segment start, like a car merging from a ramp
		id := road.AddVehicle(segID, lane, 0, mobility.DefaultIDM(speed), mobility.Car)
		scheduleDeparture(id)
	}
	// homogeneous Poisson process at the peak intensity, thinned down to
	// the profile: one exponential gap per event, one acceptance draw when
	// the profile varies — a fixed draw order, so equal seeds replay the
	// exact same arrival history
	var arrive func()
	arrive = func() {
		accept := true
		if rate != nil {
			accept = rng.Float64()*peak <= rate(eng.Now())
		}
		if accept && road.Len() < maxVehicles {
			spawn()
		}
		eng.After(rng.ExpFloat64()/peak, arrive)
	}
	eng.After(rng.ExpFloat64()/peak, arrive)
}

// TraceTraffic replays recorded trajectories (SUMO FCD exports or
// tracegen output) through a PlaybackModel. Every track carries its own
// active window, so vehicles enter the world when their trace begins and
// leave when it ends; the world's open membership follows along.
type TraceTraffic struct {
	Tracks []mobility.Track
}

// normalizeTracks deep-copies tracks into canonical form — waypoints
// time-sorted, classes defaulted — so the caller's slice is never
// mutated (one Options value may be shared across parallel campaign
// runs) and Track.Span's sortedness assumption holds.
func normalizeTracks(tracks []mobility.Track) []mobility.Track {
	cp := make([]mobility.Track, len(tracks))
	copy(cp, tracks)
	for i := range cp {
		wps := append([]mobility.Waypoint(nil), cp[i].Waypoints...)
		sort.Slice(wps, func(a, b int) bool { return wps[a].T < wps[b].T })
		cp[i].Waypoints = wps
		if cp[i].Class == 0 {
			cp[i].Class = mobility.Car
		}
	}
	return cp
}

// BuildModel implements Traffic.
func (t TraceTraffic) BuildModel(_ *roadnet.Network, _ []roadnet.SegmentID, _ *rand.Rand, _ *Options) (mobility.Model, error) {
	if len(t.Tracks) == 0 {
		return nil, fmt.Errorf("scenario: trace traffic has no tracks")
	}
	return mobility.NewPlayback(normalizeTracks(t.Tracks)), nil
}

// Install implements Traffic: tracks whose window opens mid-run join the
// world through the factory; closed windows leave. The tracks are also
// published on the scenario — in normalized form, so window arithmetic
// is valid — for workloads to wire flows over their active windows.
func (t TraceTraffic) Install(sc *Scenario) {
	sc.Tracks = normalizeTracks(t.Tracks)
	sc.World.SetJoinFactory(sc.factory)
}
