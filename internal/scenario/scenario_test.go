package scenario

import (
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/metrics"
)

func quickOpts() Options {
	return Options{
		Seed: 1, Vehicles: 30, HighwayLength: 1200,
		Duration: 20, Flows: 2, FlowPackets: 5,
	}
}

func TestBuildAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			opts := quickOpts()
			if proto == "DRR" {
				opts.RSUs = 2
			}
			if proto == "Bus" {
				opts.Buses = 2
			}
			sc, err := Build(proto, opts)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if sum.DataSent == 0 {
				t.Fatal("no traffic generated")
			}
			if sum.Protocol != proto {
				t.Fatalf("summary labelled %q", sum.Protocol)
			}
		})
	}
}

func TestUnknownProtocol(t *testing.T) {
	if _, err := Build("NoSuchProto", quickOpts()); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() metrics.Summary {
		sum, err := RunProtocol("AODV", quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal seeds diverged:\n%+v\n%+v", a, b)
	}
	opts := quickOpts()
	opts.Seed = 99
	c, err := RunProtocol("AODV", opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestTopologyKinds(t *testing.T) {
	for _, kind := range []Kind{HighwayKind, CityKind, RingKind} {
		opts := quickOpts()
		opts.Kind = kind
		sum, err := RunProtocol("Greedy", opts)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if sum.DataSent == 0 {
			t.Fatalf("kind %v: no traffic", kind)
		}
	}
}

func TestDRRPlacesRSUs(t *testing.T) {
	opts := quickOpts()
	opts.RSUs = 3
	sc, err := Build("DRR", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.RSUs) != 3 {
		t.Fatalf("placed %d RSUs", len(sc.RSUs))
	}
	// DRR defaults RSUs when none requested
	sc2, err := Build("DRR", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc2.RSUs) == 0 {
		t.Fatal("DRR built without any RSUs")
	}
}

func TestNonInfraProtocolsOmitRSUs(t *testing.T) {
	opts := quickOpts()
	opts.RSUs = 3 // requested but meaningless for AODV
	sc, err := Build("AODV", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.RSUs) != 0 {
		t.Fatalf("AODV scenario placed %d RSUs", len(sc.RSUs))
	}
}

func TestShadowingChannelOption(t *testing.T) {
	opts := quickOpts()
	opts.Shadowing = true
	sc, err := Build("Greedy", opts)
	if err != nil {
		t.Fatal(err)
	}
	got := sc.World.Channel().MeanRange()
	// quickOpts leaves Range defaulted to 250; the shadowing channel is
	// calibrated so its median range matches that
	if got < 200 || got > 300 {
		t.Fatalf("shadowing median range = %v, want ≈250", got)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Vehicles != 60 || o.Duration != 60 || o.Range != 250 || o.Kind != HighwayKind {
		t.Fatalf("defaults = %+v", o)
	}
}
