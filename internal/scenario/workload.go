package scenario

import (
	"math"
	"math/rand"

	"github.com/vanetlab/relroute/internal/netstack"
)

// CBRWorkload wires Options.Flows constant-bit-rate flows between
// distinct random vehicle pairs — the paper's evaluation workload, and
// the default. The flow endpoints, start jitter, and packet schedule
// reproduce the pre-provider builder draw for draw.
//
// When fewer than two vehicles exist at build time but the scenario
// replays a trace (a SUMO export whose vehicles all depart after t=0),
// the flows are wired over the tracks' active windows instead: endpoints
// are picked among track pairs that coexist, addressed by vehicle ID,
// and resolved to nodes at send time once the vehicles have joined.
type CBRWorkload struct{}

// Install implements Workload.
func (CBRWorkload) Install(sc *Scenario, rng *rand.Rand) {
	n := len(sc.Vehicles)
	if n < 2 {
		if len(sc.Tracks) >= 2 {
			installTraceFlows(sc, rng)
		}
		return
	}
	for f := 0; f < sc.Opts.Flows; f++ {
		src := sc.Vehicles[rng.Intn(n)]
		dst := sc.Vehicles[rng.Intn(n)]
		for dst == src {
			dst = sc.Vehicles[rng.Intn(n)]
		}
		start := sc.Opts.WarmUp + rng.Float64()*2
		sc.World.AddFlow(src, dst, start, sc.Opts.FlowInterval, sc.Opts.FlowPackets, sc.Opts.PacketSize)
	}
}

// installTraceFlows wires CBR flows between track pairs whose active
// windows overlap, starting each flow inside the overlap (slightly after
// it opens so both vehicles have joined by the first packet).
func installTraceFlows(sc *Scenario, rng *rand.Rand) {
	tracks := sc.Tracks
	for f := 0; f < sc.Opts.Flows; f++ {
		for try := 0; try < 32; try++ {
			a := rng.Intn(len(tracks))
			b := rng.Intn(len(tracks))
			if a == b {
				continue
			}
			af, al := tracks[a].Span()
			bf, bl := tracks[b].Span()
			lo := math.Max(af, bf)
			hi := math.Min(al, bl)
			if hi-lo < 1 {
				continue // need the pair to coexist for at least a second
			}
			start := lo + 0.2 + rng.Float64()*(hi-lo)/2
			sc.World.AddVehicleFlow(tracks[a].ID, tracks[b].ID, start,
				sc.Opts.FlowInterval, sc.Opts.FlowPackets, sc.Opts.PacketSize)
			break
		}
	}
}

// BurstWorkload models bursty emergency broadcast: at the trigger time a
// few alarm sources each fan a rapid packet train out to several
// destinations at once — a sudden synchronized load spike on top of an
// otherwise idle network, the accident-notification pattern safety
// messaging papers stress.
type BurstWorkload struct {
	// At is the trigger time in seconds (default WarmUp + 2).
	At float64
	// Sources is how many vehicles raise the alarm (default 1).
	Sources int
	// Fanout is the destinations per source (default 3).
	Fanout int
	// Packets per (source, destination) train (default Options.FlowPackets).
	Packets int
	// Gap is the intra-train packet spacing in seconds (default 0.05).
	Gap float64
}

// Install implements Workload.
func (w BurstWorkload) Install(sc *Scenario, rng *rand.Rand) {
	n := len(sc.Vehicles)
	if n < 2 {
		return
	}
	at := w.At
	if at <= 0 {
		at = sc.Opts.WarmUp + 2
	}
	sources := w.Sources
	if sources <= 0 {
		sources = 1
	}
	fanout := w.Fanout
	if fanout <= 0 {
		fanout = 3
	}
	if fanout > n-1 {
		fanout = n - 1
	}
	packets := w.Packets
	if packets <= 0 {
		packets = sc.Opts.FlowPackets
	}
	gap := w.Gap
	if gap <= 0 {
		gap = 0.05
	}
	for s := 0; s < sources; s++ {
		src := sc.Vehicles[rng.Intn(n)]
		for f := 0; f < fanout; f++ {
			dst := sc.Vehicles[rng.Intn(n)]
			for dst == src {
				dst = sc.Vehicles[rng.Intn(n)]
			}
			sc.World.AddFlow(src, dst, at, gap, packets, sc.Opts.PacketSize)
		}
	}
}

// V2IWorkload models vehicle-to-infrastructure request/response: static
// roadside servers (running the scenario's own protocol stack) spread
// along the network, and vehicle clients exchanging small requests for
// larger responses with them — the traffic-information-service pattern of
// Sec. V, where reachability of fixed infrastructure is what matters.
type V2IWorkload struct {
	// Servers is the roadside server count (default 2).
	Servers int
	// Clients is the requesting vehicle count (default Options.Flows).
	Clients int
	// Requests per client (default Options.FlowPackets).
	Requests int
	// Interval between a client's requests in seconds (default
	// Options.FlowInterval).
	Interval float64
}

// RequestSize is the fixed V2I request payload in bytes; responses use
// Options.PacketSize.
const RequestSize = 64

// Install implements Workload: it places the servers as RSU-kind static
// nodes and wires, per client, a request flow to its server and the
// server's response flow back, offset by half an interval.
func (w V2IWorkload) Install(sc *Scenario, rng *rand.Rand) {
	servers := w.Servers
	if servers <= 0 {
		servers = 2
	}
	ids := make([]netstack.NodeID, 0, servers)
	for _, p := range rsuPositions(sc.Net, servers) {
		id := sc.World.AddStaticNode(netstack.RSU, p, sc.factory())
		ids = append(ids, id)
	}
	sc.RSUs = append(sc.RSUs, ids...)

	n := len(sc.Vehicles)
	if n == 0 {
		return
	}
	clients := w.Clients
	if clients <= 0 {
		clients = sc.Opts.Flows
	}
	requests := w.Requests
	if requests <= 0 {
		requests = sc.Opts.FlowPackets
	}
	interval := w.Interval
	if interval <= 0 {
		interval = sc.Opts.FlowInterval
	}
	for c := 0; c < clients; c++ {
		v := sc.Vehicles[rng.Intn(n)]
		srv := ids[c%len(ids)]
		start := sc.Opts.WarmUp + rng.Float64()*2
		sc.World.AddFlow(v, srv, start, interval, requests, RequestSize)
		sc.World.AddFlow(srv, v, start+interval/2, interval, requests, sc.Opts.PacketSize)
	}
}

// Workloads composes several workloads into one (e.g. CBR background plus
// an emergency burst).
type Workloads []Workload

// Install implements Workload.
func (ws Workloads) Install(sc *Scenario, rng *rand.Rand) {
	for _, w := range ws {
		w.Install(sc, rng)
	}
}
