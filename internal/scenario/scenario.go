// Package scenario assembles complete simulation runs from three
// composable providers — a Topology (the road network), a Traffic source
// (the vehicle population: closed-world scatter, open-world churn, or
// trace playback), and a Workload (the application flows) — plus one
// routing protocol instantiated on every node. Every experiment in the
// harness is a grid of scenarios built here, so protocol categories are
// compared on identical worlds, seeds, and flows.
//
// Scenarios come in three flavours:
//
//   - Options-driven: Build(protocol, Options{...}) composes the classic
//     closed-world scenario the paper evaluates (the Options struct is a
//     thin facade over the providers; equal options remain byte-identical
//     to the pre-provider builder).
//   - Named: Options.Scenario selects a registered preset ("city-rush",
//     "highway-churn", ...) from the registry; see Names.
//   - Trace-driven: Options.TracePath (or Options.Tracks) replays a SUMO
//     FCD trace through a playback mobility model with open-world
//     membership — vehicles join the world when their trace begins and
//     leave when it ends.
package scenario

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/roadnet"
	"github.com/vanetlab/relroute/internal/routing/abedi"
	"github.com/vanetlab/relroute/internal/routing/aodv"
	"github.com/vanetlab/relroute/internal/routing/busferry"
	"github.com/vanetlab/relroute/internal/routing/car"
	"github.com/vanetlab/relroute/internal/routing/dsdv"
	"github.com/vanetlab/relroute/internal/routing/dsr"
	"github.com/vanetlab/relroute/internal/routing/flood"
	"github.com/vanetlab/relroute/internal/routing/gateway"
	"github.com/vanetlab/relroute/internal/routing/greedy"
	"github.com/vanetlab/relroute/internal/routing/gvgrid"
	"github.com/vanetlab/relroute/internal/routing/hybrid"
	"github.com/vanetlab/relroute/internal/routing/niude"
	"github.com/vanetlab/relroute/internal/routing/pbr"
	"github.com/vanetlab/relroute/internal/routing/rear"
	"github.com/vanetlab/relroute/internal/routing/rsu"
	"github.com/vanetlab/relroute/internal/routing/taleb"
	"github.com/vanetlab/relroute/internal/routing/zone"
	"github.com/vanetlab/relroute/internal/traces"
)

// Protocols lists every runnable protocol name accepted by Build.
func Protocols() []string {
	return []string{
		"Flooding", "Biswas", "AODV", "DSDV", "DSR",
		"PBR", "Taleb", "Abedi",
		"DRR", "Bus",
		"Greedy", "Zone", "LORA-DCBF",
		"REAR", "CAR", "GVGrid", "Yan-TBP", "TBP-SS",
		"NiuDe", "Hybrid",
	}
}

// Kind selects the world topology.
type Kind int

const (
	// HighwayKind is a straight bidirectional multi-lane highway.
	HighwayKind Kind = iota + 1
	// CityKind is a Manhattan street grid.
	CityKind
	// RingKind is a closed loop that holds density constant indefinitely.
	RingKind
)

// Options parameterise a scenario. Zero values take the defaults noted on
// each field. Options is the compatibility facade over the provider API:
// Build translates it into a Spec (topology, traffic source, workload),
// and the translation of any pre-provider option set is draw-for-draw
// identical to the old monolithic builder.
type Options struct {
	// Seed drives everything; equal seeds give byte-identical runs.
	Seed int64
	// Kind of topology (default HighwayKind).
	Kind Kind
	// Scenario selects a named preset from the registry (see Names) and
	// overrides Kind; presets still honor the numeric options below.
	Scenario string
	// TracePath replays the SUMO FCD trace at this path instead of
	// synthetic mobility (overrides Kind and Scenario). Vehicles enter
	// the world when their trace begins and leave when it ends.
	TracePath string
	// Tracks replays in-memory trajectories; used when TracePath is
	// empty. The slice is treated as read-only.
	Tracks []mobility.Track
	// ArrivalRate opens the world: a Poisson process spawning this many
	// vehicles per second, with nodes joining the network mid-run. Zero
	// keeps the classic fixed population.
	ArrivalRate float64
	// MeanLifetime is the mean exponential lifetime in seconds assigned
	// to vehicles in open-world runs; expired vehicles despawn and their
	// nodes leave. A positive value opens the world even when
	// ArrivalRate is zero (departures without arrivals); zero keeps
	// vehicles until the run ends.
	MeanLifetime float64
	// Vehicles to scatter (default 60).
	Vehicles int
	// HighwayLength in meters for highway/ring topologies (default 2000).
	HighwayLength float64
	// LanesPerDirection for highway topologies (default 2).
	LanesPerDirection int
	// GridN is the junction count per side for city topologies
	// (default 4) with 400 m blocks.
	GridN int
	// SpeedMean and SpeedStd parameterise desired speeds in m/s
	// (defaults 30 and 6 — heterogeneous highway traffic).
	SpeedMean, SpeedStd float64
	// Range is the unit-disk radio range in meters when Channel is nil
	// (default 250).
	Range float64
	// Estimator selects the reliability plane's link-quality estimator by
	// registry name ("kinematic", "receipt", "rssi", "composite"; see
	// linkstate.Names). Empty means the composite default, whose
	// predictions match the pre-plane protocol behaviour exactly.
	Estimator string
	// Channel overrides the propagation model.
	Channel channel.Model
	// Shadowing switches the default channel to log-normal shadowing.
	Shadowing bool
	// RSUs places this many road-side units evenly along the topology.
	// Zero means "protocol default" (2 for DRR, none otherwise); −1 means
	// explicitly none even for DRR (the Fig. 5 baseline).
	RSUs int
	// Buses adds this many ferry buses looping the topology (default 0;
	// Bus protocol requires ≥ 1).
	Buses int
	// Flows is the number of CBR flows between random vehicle pairs
	// (default 4).
	Flows int
	// FlowPackets per flow (default 30).
	FlowPackets int
	// FlowInterval seconds between packets (default 0.5).
	FlowInterval float64
	// PacketSize in bytes (default 512).
	PacketSize int
	// Duration of the run in seconds (default 60).
	Duration float64
	// WarmUp delays the first flow packet (default 5 s) so beacons and
	// proactive tables converge.
	WarmUp float64
	// TicketBudget overrides the TBP-SS ticket count (default 3).
	TicketBudget int
	// StabilityThreshold overrides the TBP-SS constraint (default 3 s).
	StabilityThreshold float64
	// DirectionBias toggles greedy's direction tie-break (default true).
	DirectionBiasOff bool
	// Shards is the world's intra-run parallelism (netstack.Config.Shards):
	// the step loop's per-tick phases fan out over this many worker shards
	// within one simulation. Zero or one keeps the fully sequential
	// engine. Output is byte-identical at every fixed shard count, so —
	// unlike Seed — Shards is not part of the scenario's identity and
	// does not appear in its name.
	Shards int
	// Faults installs the named chaos profile from the fault-plane
	// registry (see faults.Names): a deterministic, seeded schedule of
	// crashes, blackouts, jamming, beacon suppression, or partitions.
	// Empty means no fault injection; fault-free runs draw nothing from
	// the fault stream and stay byte-identical to pre-fault-plane runs.
	Faults string
}

func (o *Options) setDefaults() {
	if o.Kind == 0 {
		o.Kind = HighwayKind
	}
	if o.Vehicles <= 0 {
		o.Vehicles = 60
	}
	if o.HighwayLength <= 0 {
		o.HighwayLength = 2000
	}
	if o.LanesPerDirection <= 0 {
		o.LanesPerDirection = 2
	}
	if o.GridN <= 0 {
		o.GridN = 4
	}
	if o.SpeedMean <= 0 {
		o.SpeedMean = 30
	}
	if o.SpeedStd < 0 {
		o.SpeedStd = 0
	} else if o.SpeedStd == 0 {
		o.SpeedStd = 6
	}
	if o.Range <= 0 {
		o.Range = 250
	}
	if o.Flows <= 0 {
		o.Flows = 4
	}
	if o.FlowPackets <= 0 {
		o.FlowPackets = 30
	}
	if o.FlowInterval <= 0 {
		o.FlowInterval = 0.5
	}
	if o.PacketSize <= 0 {
		o.PacketSize = 512
	}
	if o.Duration <= 0 {
		o.Duration = 60
	}
	if o.WarmUp <= 0 {
		o.WarmUp = 5
	}
	if o.TicketBudget <= 0 {
		o.TicketBudget = 3
	}
	if o.StabilityThreshold <= 0 {
		o.StabilityThreshold = 3
	}
}

// Scenario is an assembled, not-yet-run simulation.
type Scenario struct {
	Name     string
	Protocol string
	World    *netstack.World
	Net      *roadnet.Network
	// Model is the mobility model driving the run.
	Model mobility.Model
	// Road is the model as a RoadModel when the traffic source is
	// synthetic (nil for trace playback).
	Road *mobility.RoadModel
	// Segments are the topology's traffic segments (nil means all).
	Segments []roadnet.SegmentID
	// Tracks are the replayed trajectories of a trace scenario (nil
	// otherwise); workloads use their active windows to wire flows
	// between vehicles that only join mid-run.
	Tracks   []mobility.Track
	Vehicles []netstack.NodeID
	RSUs     []netstack.NodeID
	Opts     Options

	// factory builds one router per node — workloads and open-world
	// traffic sources use it for servers and mid-run joiners.
	factory netstack.RouterFactory
}

// Build assembles a scenario running the named protocol, translating the
// options into providers: a trace (TracePath/Tracks) wins over a named
// preset (Scenario), which wins over the Kind-selected closed world; a
// positive ArrivalRate opens the Kind-selected world.
func Build(protocol string, opts Options) (*Scenario, error) {
	opts.setDefaults()
	spec, opts, err := specFromOptions(opts)
	if err != nil {
		return nil, err
	}
	return BuildSpec(protocol, spec, opts)
}

// specFromOptions resolves the facade options into a provider spec (and
// possibly adjusted options, e.g. the trace's vehicle count).
func specFromOptions(opts Options) (Spec, Options, error) {
	tracks := opts.Tracks
	if opts.TracePath != "" {
		var err error
		tracks, err = traces.ReadFile(opts.TracePath)
		if err != nil {
			return Spec{}, opts, fmt.Errorf("scenario: %w", err)
		}
	}
	if len(tracks) > 0 {
		opts.Vehicles = len(tracks)
		return Spec{
			Name:     "trace",
			Topology: TraceTopology{Tracks: tracks},
			Traffic:  TraceTraffic{Tracks: tracks},
		}, opts, nil
	}
	if opts.Scenario != "" {
		def, ok := Named(opts.Scenario)
		if !ok {
			return Spec{}, opts, fmt.Errorf("scenario: unknown scenario %q (known: %v)", opts.Scenario, Names())
		}
		return def.Build(opts), opts, nil
	}
	var spec Spec // zero value: Kind-selected topology, closed traffic, CBR
	if opts.ArrivalRate > 0 || opts.MeanLifetime > 0 {
		// either knob opens the world: arrivals without departures grows
		// the population, departures without arrivals (ArrivalRate 0)
		// drains it
		spec.Traffic = OpenTraffic{
			Initial:      opts.Vehicles,
			Arrivals:     ConstantRate(opts.ArrivalRate),
			MeanLifetime: opts.MeanLifetime,
		}
	}
	return spec, opts, nil
}

// channelReceiptFor tunes the shadowing model so its median range is close
// to the requested unit-disk range.
func channelReceiptFor(r float64) prob.ReceiptModel {
	m := prob.DefaultReceiptModel()
	// adjust the receiver threshold so that MedianRange ≈ r
	lo, hi := -120.0, -40.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		m.RxThreshDBm = mid
		if m.MedianRange() > r {
			lo = mid
		} else {
			hi = mid
		}
	}
	return m
}

// protocolFactory resolves a protocol name to a vehicle router factory and
// an optional static-node installer (for RSUs).
func (s *Scenario) protocolFactory(name string) (netstack.RouterFactory, func(*Scenario), error) {
	switch name {
	case "Flooding":
		return flood.New(), s.maybeRSUs(nil), nil
	case "Biswas":
		return flood.NewBiswas(), s.maybeRSUs(nil), nil
	case "AODV":
		return aodv.New(), s.maybeRSUs(nil), nil
	case "DSDV":
		return dsdv.New(), s.maybeRSUs(nil), nil
	case "DSR":
		return dsr.New(), s.maybeRSUs(nil), nil
	case "PBR":
		return pbr.New(), s.maybeRSUs(nil), nil
	case "Taleb":
		return taleb.New(), s.maybeRSUs(nil), nil
	case "Abedi":
		return abedi.New(), s.maybeRSUs(nil), nil
	case "Greedy":
		return greedy.New(greedy.WithDirectionBias(!s.Opts.DirectionBiasOff)), s.maybeRSUs(nil), nil
	case "Zone":
		return zone.New(nil), s.maybeRSUs(nil), nil
	case "LORA-DCBF":
		return gateway.New(), s.maybeRSUs(nil), nil
	case "REAR":
		return rear.New(), s.maybeRSUs(nil), nil
	case "Bus":
		return busferry.New(), s.maybeRSUs(nil), nil
	case "DRR":
		if s.Opts.RSUs == 0 {
			s.Opts.RSUs = 2
		}
		backbone := rsu.NewBackbone()
		return rsu.NewVehicle(), s.maybeRSUs(backbone), nil
	case "CAR":
		dmap := car.NewDensityMap(s.Net, s.World.Channel().MeanRange())
		s.installDensityRefresh(dmap)
		return car.New(dmap), s.maybeRSUs(nil), nil
	case "GVGrid":
		return gvgrid.New(), s.maybeRSUs(nil), nil
	case "Yan-TBP":
		return core.NewTicketRouter(
			core.WithMetric(core.MetricExpectedDuration),
			core.WithTickets(s.Opts.TicketBudget),
			core.WithStabilityThreshold(s.Opts.StabilityThreshold),
		), s.maybeRSUs(nil), nil
	case "TBP-SS":
		return core.NewTicketRouter(
			core.WithMetric(core.MetricMeanDuration),
			core.WithTickets(s.Opts.TicketBudget),
			core.WithStabilityThreshold(s.Opts.StabilityThreshold),
		), s.maybeRSUs(nil), nil
	case "NiuDe":
		return niude.New(), s.maybeRSUs(nil), nil
	case "Hybrid":
		return hybrid.New(hybrid.Config{
			Tickets:            s.Opts.TicketBudget,
			StabilityThreshold: s.Opts.StabilityThreshold,
		}), s.maybeRSUs(nil), nil
	default:
		return nil, nil, fmt.Errorf("scenario: unknown protocol %q (known: %v)", name, Protocols())
	}
}

// maybeRSUs returns the static-node installer: with a backbone it places
// DRR RSU routers; without, RSUs are omitted (they only matter to DRR).
func (s *Scenario) maybeRSUs(backbone *rsu.Backbone) func(*Scenario) {
	return func(sc *Scenario) {
		if sc.Opts.RSUs <= 0 || backbone == nil {
			return
		}
		positions := rsuPositions(sc.Net, sc.Opts.RSUs)
		for _, p := range positions {
			id := sc.World.AddStaticNode(netstack.RSU, p, rsu.NewUnit(backbone))
			sc.RSUs = append(sc.RSUs, id)
		}
	}
}

// rsuPositions spreads n RSUs evenly over the network bounds' long axis.
func rsuPositions(net *roadnet.Network, n int) []geom.Vec2 {
	b := net.Bounds()
	out := make([]geom.Vec2, 0, n)
	for i := 0; i < n; i++ {
		frac := (float64(i) + 0.5) / float64(n)
		out = append(out, geom.V(b.Min.X+frac*b.Width(), b.Center().Y))
	}
	return out
}

// installDensityRefresh samples true vehicle positions once per second to
// feed CAR's density map (idealised density dissemination; see the CAR
// package comment).
func (s *Scenario) installDensityRefresh(dmap *car.DensityMap) {
	world := s.World
	eng := world.Engine()
	var refresh func()
	refresh = func() {
		positions := make([]geom.Vec2, 0, world.Nodes())
		for id := 0; id < world.Nodes(); id++ {
			if kind, ok := world.KindOf(netstack.NodeID(id)); ok && kind != netstack.RSU {
				if p, okP := world.PositionOf(netstack.NodeID(id)); okP {
					positions = append(positions, p)
				}
			}
		}
		dmap.Update(positions)
		eng.After(1.0, refresh)
	}
	eng.After(0, refresh)
}

// Run executes the scenario and returns the metrics summary.
func (s *Scenario) Run() (metrics.Summary, error) {
	if err := s.World.Run(s.Opts.Duration); err != nil {
		return metrics.Summary{}, fmt.Errorf("scenario %s/%s: %w", s.Protocol, s.Name, err)
	}
	return s.Summary(), nil
}

// Summary snapshots the run's metrics, labelled with the scenario's
// protocol and name and stamped with the engine's executed-event count.
// Segmented drivers (the checkpoint plane) call it after the final
// AdvanceTo + CompleteRun instead of Run.
func (s *Scenario) Summary() metrics.Summary {
	sum := s.World.Collector().Summarize(s.Protocol, s.Name)
	sum.Events = int(s.World.Engine().EventCount())
	return sum
}

// RunProtocol is the one-call convenience: build and run.
func RunProtocol(protocol string, opts Options) (metrics.Summary, error) {
	sc, err := Build(protocol, opts)
	if err != nil {
		return metrics.Summary{}, err
	}
	return sc.Run()
}
