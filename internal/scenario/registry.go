package scenario

import (
	"fmt"
	"sort"
)

// Definition is one named scenario preset: a description for listings and
// a builder that composes the provider Spec from the (defaulted) options,
// so presets scale with whatever Vehicles/Duration/GridN the caller asks
// for.
type Definition struct {
	Name        string
	Description string
	Build       func(opts Options) Spec
}

// registry holds every named scenario. It is populated at init time and
// read-only afterwards, so campaign workers can resolve names without
// locking.
var registry = map[string]Definition{}

// Register adds a named scenario. It panics on duplicate or empty names —
// registration is programmer-time wiring, not runtime input.
func Register(def Definition) {
	if def.Name == "" || def.Build == nil {
		panic("scenario: Register needs a name and a builder")
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate scenario %q", def.Name))
	}
	registry[def.Name] = def
}

// Named returns the definition registered under name.
func Named(name string) (Definition, bool) {
	def, ok := registry[name]
	return def, ok
}

// Names lists every registered scenario name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Descriptions returns name → description for listings.
func Descriptions() map[string]string {
	out := make(map[string]string, len(registry))
	for name, def := range registry {
		out[name] = def.Description
	}
	return out
}

func init() {
	Register(Definition{
		Name:        "highway",
		Description: "closed-world bidirectional highway (the paper's default habitat)",
		Build: func(Options) Spec {
			return Spec{Name: "highway", Topology: HighwayTopology{}}
		},
	})
	Register(Definition{
		Name:        "city",
		Description: "closed-world Manhattan grid",
		Build: func(Options) Spec {
			return Spec{Name: "city", Topology: GridTopology{}}
		},
	})
	Register(Definition{
		Name:        "ring",
		Description: "closed-world ring road holding density constant",
		Build: func(Options) Spec {
			return Spec{Name: "ring", Topology: RingTopology{}}
		},
	})
	Register(Definition{
		Name:        "highway-churn",
		Description: "open-world highway: Poisson arrivals, lifetime-bounded departures",
		Build: func(o Options) Spec {
			// replace roughly the whole population once over the run
			rate := float64(o.Vehicles) / o.Duration
			return Spec{
				Name:     "highway-churn",
				Topology: HighwayTopology{},
				Traffic: OpenTraffic{
					Arrivals:     ConstantRate(rate),
					MeanLifetime: o.Duration / 2,
				},
			}
		},
	})
	Register(Definition{
		Name:        "city-rush",
		Description: "open-world city grid under a rush-hour arrival ramp",
		Build: func(o Options) Spec {
			base := float64(o.Vehicles) / o.Duration
			return Spec{
				Name: "city-rush",
				// downtown-density blocks: a 250 m radio reaches around a
				// corner, so the rush hour congests the network instead of
				// partitioning it
				Topology: GridTopology{Spacing: 250},
				Traffic: OpenTraffic{
					Initial:      o.Vehicles,
					Arrivals:     RushHour(base, 3*base, o.Duration/2, o.Duration/2),
					MeanLifetime: o.Duration / 2,
				},
			}
		},
	})
	Register(Definition{
		Name:        "emergency",
		Description: "closed highway with a bursty emergency-broadcast workload on top of CBR",
		Build: func(Options) Spec {
			return Spec{
				Name:     "emergency",
				Topology: HighwayTopology{},
				Workload: Workloads{CBRWorkload{}, BurstWorkload{Sources: 2}},
			}
		},
	})
	Register(Definition{
		Name:        "v2i",
		Description: "highway with roadside servers and V2I request/response traffic",
		Build: func(Options) Spec {
			return Spec{
				Name:     "v2i",
				Topology: HighwayTopology{},
				Workload: V2IWorkload{},
			}
		},
	})
}
