package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/roadnet"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty scenario registry")
	}
	for _, want := range []string{"highway", "city", "ring", "highway-churn", "city-rush", "emergency", "v2i"} {
		if _, ok := Named(want); !ok {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
	descs := Descriptions()
	for _, name := range names {
		if descs[name] == "" {
			t.Errorf("scenario %q has no description", name)
		}
	}
}

func TestUnknownNamedScenario(t *testing.T) {
	opts := quickOpts()
	opts.Scenario = "no-such-scenario"
	if _, err := Build("Greedy", opts); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

// TestFacadeMatchesExplicitSpec pins the compatibility contract of the
// provider refactor: the Options facade must produce exactly the run an
// explicitly composed closed-world spec produces.
func TestFacadeMatchesExplicitSpec(t *testing.T) {
	opts := quickOpts()
	viaFacade, err := RunProtocol("AODV", opts)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildSpec("AODV", Spec{
		Topology: HighwayTopology{},
		Traffic:  ClosedTraffic{},
		Workload: CBRWorkload{},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaFacade, viaSpec) {
		t.Fatalf("facade and explicit spec diverged:\n%+v\n%+v", viaFacade, viaSpec)
	}
}

func runChurn(t *testing.T, opts Options) (metrics.Summary, *Scenario) {
	t.Helper()
	sc, err := Build("Greedy", opts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sum, sc
}

// TestOpenWorldChurn checks the ArrivalRate facade: vehicles arrive and
// depart mid-run, the network observes the membership changes, and equal
// seeds replay the identical churn history.
func TestOpenWorldChurn(t *testing.T) {
	opts := quickOpts()
	opts.Vehicles = 20
	opts.Duration = 25
	opts.ArrivalRate = 1.0
	opts.MeanLifetime = 10

	a, scA := runChurn(t, opts)
	if a.Joins == 0 {
		t.Error("no nodes joined under a 1 veh/s arrival rate")
	}
	if a.Leaves == 0 {
		t.Error("no nodes left despite 10 s mean lifetimes in a 25 s run")
	}
	if scA.World.Joins() != a.Joins || scA.World.Leaves() != a.Leaves {
		t.Errorf("world counters %d/%d != summary %d/%d",
			scA.World.Joins(), scA.World.Leaves(), a.Joins, a.Leaves)
	}
	b, _ := runChurn(t, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal seeds diverged under churn:\n%+v\n%+v", a, b)
	}
	opts.Seed = 99
	c, _ := runChurn(t, opts)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical churn runs")
	}
}

// TestCityRushScenario drives the acceptance scenario: a named open-world
// preset whose population ramps through a rush hour, deterministic, with
// joins and leaves mid-run.
func TestCityRushScenario(t *testing.T) {
	opts := quickOpts()
	opts.Scenario = "city-rush"
	opts.Vehicles = 24
	opts.Duration = 30

	a, sc := runChurn(t, opts)
	if a.Joins == 0 || a.Leaves == 0 {
		t.Fatalf("city-rush without churn: joins=%d leaves=%d", a.Joins, a.Leaves)
	}
	if sc.Name != "city-rush/24-veh" {
		t.Errorf("scenario name = %q", sc.Name)
	}
	b, _ := runChurn(t, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("city-rush not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestTraceReplayScenario(t *testing.T) {
	// record a deterministic trace from the synthetic mobility stack
	net, eb, wb, err := roadnet.Highway(1500, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	model := mobility.NewRoadModel(net, rng, mobility.ContinueRandom)
	mobility.Populate(model, rng, mobility.PopulateOptions{
		Count: 12, SpeedMean: 25, SpeedStd: 4,
		Segments: []roadnet.SegmentID{eb, wb},
	})
	tracks := mobility.Record(model, 0.5, 25)

	opts := Options{Seed: 1, Duration: 20, Flows: 2, FlowPackets: 5, Tracks: tracks}
	sc, err := Build("TBP-SS", opts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Road != nil {
		t.Error("trace scenario exposed a RoadModel")
	}
	if sc.Net == nil {
		t.Fatal("trace scenario has no envelope network")
	}
	if len(sc.Vehicles) != 12 {
		t.Fatalf("%d vehicle nodes for a 12-track trace", len(sc.Vehicles))
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.DataSent == 0 {
		t.Fatal("trace replay generated no traffic")
	}
	sc2, err := Build("TBP-SS", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("trace replay not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestStaggeredTraceGeneratesTraffic is the regression test for traces
// whose vehicles all depart after t=0 (the shape of real SUMO exports):
// no nodes exist at build time, so flows must be wired over the track
// active windows and resolved as the vehicles join.
func TestStaggeredTraceGeneratesTraffic(t *testing.T) {
	tracks := make([]mobility.Track, 8)
	for i := range tracks {
		start := 1 + float64(i) // nobody exists at t=0
		y := float64(i) * 40
		tracks[i] = mobility.Track{
			ID: mobility.VehicleID(i),
			Waypoints: []mobility.Waypoint{
				{T: start, Pos: geom.V(0, y), Speed: 10},
				{T: start + 25, Pos: geom.V(250, y), Speed: 10},
			},
		}
	}
	opts := Options{Seed: 1, Duration: 25, Flows: 3, FlowPackets: 6, Tracks: tracks}
	sc, err := Build("Flooding", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Vehicles) != 0 {
		t.Fatalf("%d nodes at build time, want 0", len(sc.Vehicles))
	}
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.DataSent == 0 {
		t.Fatal("staggered trace generated no traffic")
	}
	if a.Joins != len(tracks) {
		t.Fatalf("joins = %d, want every track to join mid-run", a.Joins)
	}
	sc2, err := Build("Flooding", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("staggered trace not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestTraceScenarioRejectsEmptyTrace(t *testing.T) {
	opts := quickOpts()
	opts.Tracks = []mobility.Track{{ID: 0}}
	if _, err := Build("Greedy", opts); err == nil {
		t.Fatal("waypoint-less trace accepted")
	}
}

func TestEmergencyBurstWorkload(t *testing.T) {
	opts := quickOpts()
	opts.Scenario = "emergency"
	base := quickOpts()
	sumBurst, err := RunProtocol("Flooding", opts)
	if err != nil {
		t.Fatal(err)
	}
	sumBase, err := RunProtocol("Flooding", base)
	if err != nil {
		t.Fatal(err)
	}
	// the burst rides on top of the CBR background: strictly more traffic
	if sumBurst.DataSent <= sumBase.DataSent {
		t.Fatalf("burst sent %d <= baseline %d", sumBurst.DataSent, sumBase.DataSent)
	}
}

func TestV2IWorkloadPlacesServers(t *testing.T) {
	opts := quickOpts()
	opts.Scenario = "v2i"
	sc, err := Build("Greedy", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.RSUs) != 2 {
		t.Fatalf("v2i placed %d servers, want 2", len(sc.RSUs))
	}
	sum, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.DataSent == 0 {
		t.Fatal("v2i generated no traffic")
	}
}

func TestCustomTopology(t *testing.T) {
	net, _, _, err := roadnet.Highway(800, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	sc, err := BuildSpec("Greedy", Spec{
		Topology: CustomTopology{Label: "bespoke", Network: net},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "bespoke/30-veh" {
		t.Errorf("name = %q", sc.Name)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSpec("Greedy", Spec{Topology: CustomTopology{}}, opts); err == nil {
		t.Fatal("nil custom network accepted")
	}
}

func TestRushHourProfile(t *testing.T) {
	p := RushHour(1, 5, 50, 25)
	if got := p.Rate(50); got != 5 {
		t.Errorf("rate at peak = %v", got)
	}
	if got := p.Rate(0); got != 1 {
		t.Errorf("rate far before peak = %v", got)
	}
	if got := p.Rate(100); got != 1 {
		t.Errorf("rate far after peak = %v", got)
	}
	mid := p.Rate(37.5)
	if mid <= 1 || mid >= 5 {
		t.Errorf("ramp rate = %v, want strictly between base and peak", mid)
	}
	if p.Peak != 5 {
		t.Errorf("peak = %v", p.Peak)
	}
}
