package scenario

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/roadnet"
)

// HighwayTopology is a straight bidirectional multi-lane highway
// (Options.HighwayLength, Options.LanesPerDirection), the paper's default
// evaluation habitat.
type HighwayTopology struct{}

// Name implements Topology.
func (HighwayTopology) Name() string { return "highway" }

// Build implements Topology. Traffic scatters only on the two
// carriageways, not the median crossovers.
func (HighwayTopology) Build(opts *Options) (*roadnet.Network, []roadnet.SegmentID, error) {
	net, eb, wb, err := roadnet.Highway(opts.HighwayLength, opts.LanesPerDirection, opts.SpeedMean+10)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: build highway: %w", err)
	}
	return net, []roadnet.SegmentID{eb, wb}, nil
}

// GridTopology is a Manhattan street grid. The zero value takes the
// junction count from Options.GridN with 400 m blocks.
type GridTopology struct {
	// N overrides Options.GridN when positive.
	N int
	// Spacing is the block edge in meters (default 400).
	Spacing float64
}

// Name implements Topology.
func (GridTopology) Name() string { return "city" }

// Build implements Topology.
func (t GridTopology) Build(opts *Options) (*roadnet.Network, []roadnet.SegmentID, error) {
	n := t.N
	if n <= 0 {
		n = opts.GridN
	}
	spacing := t.Spacing
	if spacing <= 0 {
		spacing = 400
	}
	net, err := roadnet.Grid(n, n, spacing, 1, 14)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: build city: %w", err)
	}
	return net, nil, nil
}

// RingTopology is a closed loop that holds density constant indefinitely
// (circumference Options.HighwayLength).
type RingTopology struct {
	// Sides is the polygon side count approximating the circle (default 16).
	Sides int
}

// Name implements Topology.
func (RingTopology) Name() string { return "ring" }

// Build implements Topology.
func (t RingTopology) Build(opts *Options) (*roadnet.Network, []roadnet.SegmentID, error) {
	sides := t.Sides
	if sides <= 0 {
		sides = 16
	}
	net, err := roadnet.Ring(opts.HighwayLength, sides, opts.LanesPerDirection, opts.SpeedMean+10)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: build ring: %w", err)
	}
	return net, nil, nil
}

// CustomTopology wraps a caller-supplied road network, the escape hatch
// for roadnets built programmatically (or imported from external map
// data) that none of the presets cover.
type CustomTopology struct {
	// Label names the topology in scenario names (default "custom").
	Label string
	// Network is the prebuilt road graph (required).
	Network *roadnet.Network
	// Segments optionally restricts traffic placement.
	Segments []roadnet.SegmentID
}

// Name implements Topology.
func (t CustomTopology) Name() string {
	if t.Label == "" {
		return "custom"
	}
	return t.Label
}

// Build implements Topology.
func (t CustomTopology) Build(*Options) (*roadnet.Network, []roadnet.SegmentID, error) {
	if t.Network == nil {
		return nil, nil, fmt.Errorf("scenario: custom topology has no network")
	}
	return t.Network, t.Segments, nil
}

// TraceTopology derives an envelope road network from the bounding box of
// an FCD trace: a straight two-way road across the long axis of the
// recorded area. Replayed vehicles follow their recorded trajectories
// regardless, but road-aware protocols (CAR's density map, GVGrid's grid
// paths) need some road graph to reason over, and RSU placement spreads
// along the network bounds.
type TraceTopology struct {
	Tracks []mobility.Track
}

// Name implements Topology.
func (TraceTopology) Name() string { return "trace" }

// Build implements Topology.
func (t TraceTopology) Build(*Options) (*roadnet.Network, []roadnet.SegmentID, error) {
	var bounds geom.Rect
	first := true
	for _, tr := range t.Tracks {
		for _, wp := range tr.Waypoints {
			r := geom.NewRect(wp.Pos, wp.Pos)
			if first {
				bounds = r
				first = false
			} else {
				bounds = bounds.Union(r)
			}
		}
	}
	if first {
		return nil, nil, fmt.Errorf("scenario: trace has no waypoints")
	}
	bounds = bounds.Expand(20)
	b := roadnet.NewBuilder()
	c := bounds.Center()
	var j0, j1 roadnet.JunctionID
	if bounds.Width() >= bounds.Height() {
		j0 = b.AddJunction(geom.V(bounds.Min.X, c.Y))
		j1 = b.AddJunction(geom.V(bounds.Max.X, c.Y))
	} else {
		j0 = b.AddJunction(geom.V(c.X, bounds.Min.Y))
		j1 = b.AddJunction(geom.V(c.X, bounds.Max.Y))
	}
	b.AddTwoWay(j0, j1, 1, 3.5, 30)
	net, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: trace envelope: %w", err)
	}
	return net, nil, nil
}
