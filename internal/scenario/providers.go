package scenario

import (
	"fmt"
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/faults"
	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/netstack"
	"github.com/vanetlab/relroute/internal/roadnet"
)

// Topology builds the road network a scenario runs on. Implementations
// are small value types (HighwayTopology, GridTopology, RingTopology,
// TraceTopology, CustomTopology) so specs stay declarative.
type Topology interface {
	// Name labels the topology in scenario names ("highway", "city", ...).
	Name() string
	// Build returns the road network and, optionally, the segments the
	// traffic source should restrict itself to (nil means all segments).
	Build(opts *Options) (*roadnet.Network, []roadnet.SegmentID, error)
}

// Traffic creates and drives the vehicle population. Closed-world sources
// place every vehicle at t=0 and keep the population fixed; open-world
// sources additionally schedule arrivals and departures at runtime, and
// trace sources replay recorded trajectories with per-track lifetimes.
type Traffic interface {
	// BuildModel creates the mobility model. Implementations must draw
	// from rng in a fixed, documented order — the draw sequence is part of
	// the determinism contract that keeps equal seeds byte-identical.
	BuildModel(net *roadnet.Network, segs []roadnet.SegmentID, rng *rand.Rand, opts *Options) (mobility.Model, error)
	// Install wires runtime behaviour (arrival processes, departures,
	// open-world membership) once the world exists. Closed-world sources
	// are a no-op.
	Install(sc *Scenario)
}

// Workload injects application traffic into a built scenario: CBR flows,
// bursty emergency broadcasts, V2I request/response, or any mix.
type Workload interface {
	// Install schedules the workload's traffic on the scenario's world.
	// rng is the workload's private stream (derived from Options.Seed).
	Install(sc *Scenario, rng *rand.Rand)
}

// Spec composes a scenario from providers. Nil fields take the
// closed-world defaults: the topology selected by Options.Kind, a
// ClosedTraffic population, and a CBRWorkload.
type Spec struct {
	// Name labels the scenario ("" uses the topology name).
	Name string
	// Topology builds the road network.
	Topology Topology
	// Traffic populates and drives the vehicle population.
	Traffic Traffic
	// Workload injects application traffic.
	Workload Workload
}

// topologyFor maps the legacy Options.Kind selector to its provider.
func topologyFor(k Kind) Topology {
	switch k {
	case CityKind:
		return GridTopology{}
	case RingKind:
		return RingTopology{}
	default:
		return HighwayTopology{}
	}
}

// BuildSpec assembles a scenario from explicitly composed providers. The
// legacy Build(protocol, opts) facade routes through here; the draw order
// below (mobility streams from the root, world seed, workload stream at
// Seed+7) is frozen — reordering it would silently change every golden
// experiment output.
func BuildSpec(protocol string, spec Spec, opts Options) (*Scenario, error) {
	opts.setDefaults()
	if !linkstate.Known(opts.Estimator) {
		return nil, fmt.Errorf("scenario: unknown link estimator %q (known: %v)", opts.Estimator, linkstate.Names())
	}
	if opts.Faults != "" && !faults.Known(opts.Faults) {
		return nil, fmt.Errorf("scenario: unknown fault profile %q (known: %v)", opts.Faults, faults.Names())
	}
	if spec.Topology == nil {
		spec.Topology = topologyFor(opts.Kind)
	}
	if spec.Traffic == nil {
		spec.Traffic = ClosedTraffic{}
	}
	if spec.Workload == nil {
		spec.Workload = CBRWorkload{}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	net, segs, err := spec.Topology.Build(&opts)
	if err != nil {
		return nil, err
	}
	model, err := spec.Traffic.BuildModel(net, segs, rng, &opts)
	if err != nil {
		return nil, err
	}

	ch := opts.Channel
	if ch == nil {
		if opts.Shadowing {
			m := channelReceiptFor(opts.Range)
			ch = channel.NewShadowing(m)
		} else {
			ch = channel.UnitDisk{Range: opts.Range}
		}
	}
	world := netstack.NewWorld(netstack.Config{
		Seed:      rng.Int63(),
		Channel:   ch,
		Estimator: opts.Estimator,
		Shards:    opts.Shards,
	}, model)

	label := spec.Name
	if label == "" {
		label = spec.Topology.Name()
	}
	sc := &Scenario{
		Name:     fmt.Sprintf("%s/%d-veh", label, opts.Vehicles),
		Protocol: protocol,
		World:    world, Net: net, Model: model, Segments: segs, Opts: opts,
	}
	if road, ok := model.(*mobility.RoadModel); ok {
		sc.Road = road
	}

	factory, static, err := sc.protocolFactory(protocol)
	if err != nil {
		return nil, err
	}
	sc.factory = factory
	sc.Vehicles = world.AddVehicleNodes(factory)
	if static != nil {
		static(sc)
	}
	spec.Traffic.Install(sc)
	spec.Workload.Install(sc, rand.New(rand.NewSource(opts.Seed+7)))
	// Fault injection installs last, after the population and workload are
	// final, so profiles see the complete node lists and their scheduled
	// events fire before same-timestamp run-time events (a crash at t
	// lands before that tick's traffic). The fault stream (Seed+13) is
	// only materialized here — fault-free runs draw nothing extra.
	if opts.Faults != "" {
		if _, err := faults.InstallNamed(opts.Faults, world, faults.Context{
			Seed:     opts.Seed + 13,
			Duration: opts.Duration,
			Bounds:   net.Bounds(),
			Vehicles: sc.Vehicles,
			RSUs:     sc.RSUs,
		}); err != nil {
			return nil, err
		}
	}
	return sc, nil
}
