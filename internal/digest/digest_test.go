package digest

import (
	"hash/fnv"
	"math"
	"testing"
)

func TestSum64MatchesStdlibFNV(t *testing.T) {
	for _, s := range []string{"", "a", "hello, world", "\x00\xff\x10"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := Sum64([]byte(s)), h.Sum64(); got != want {
			t.Errorf("Sum64(%q) = %#x, stdlib fnv = %#x", s, got, want)
		}
	}
}

func TestWriterIsOrderSensitive(t *testing.T) {
	a := New()
	a.U64(1)
	a.U64(2)
	b := New()
	b.U64(2)
	b.U64(1)
	if a.Sum() == b.Sum() {
		t.Fatal("digest must depend on write order")
	}
}

func TestStrLengthPrefixPreventsConcatCollisions(t *testing.T) {
	a := New()
	a.Str("ab")
	a.Str("c")
	b := New()
	b.Str("a")
	b.Str("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length-prefixed strings must not collide on concatenation")
	}
}

func TestF64DistinguishesBitPatterns(t *testing.T) {
	a := New()
	a.F64(0.0)
	b := New()
	b.F64(math.Copysign(0, -1))
	if a.Sum() == b.Sum() {
		t.Fatal("+0 and -0 must digest differently (bit-pattern contract)")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() uint64 {
		w := New()
		w.I64(-7)
		w.F64(3.14159)
		w.Bool(true)
		w.Str("node")
		w.Int(42)
		w.U32(9)
		return w.Sum()
	}
	if mk() != mk() {
		t.Fatal("same writes must give same digest")
	}
	// Pin the value so accidental algorithm changes (which would invalidate
	// every existing checkpoint file) fail loudly.
	const pinned uint64 = 0xfd4cc0d170acb2d5
	if got := mk(); got != pinned {
		t.Errorf("digest algorithm changed: got %#x, pinned %#x — bump the checkpoint format version if intentional", got, pinned)
	}
}
