// Package digest computes deterministic fingerprints of simulation state.
//
// The checkpoint plane's restore contract is "re-derive, then verify": a
// snapshot stores a compact digest of every subsystem's live state instead
// of a serialized object graph, and a restored process proves it reached
// the exact same state by recomputing the digest after fast-forwarding.
// For that to work the digest must be a pure function of logical state —
// independent of process, pointer values, map iteration order, shard
// count, and worker count. Every DigestInto implementation in the
// repository therefore walks its state in a canonical order (node ID,
// vehicle ID, sorted map keys, heap layout) and feeds only semantic
// fields through the typed writers below.
//
// The hash is FNV-1a 64: stable across Go versions (unlike hash/maphash),
// dependency-free, and cheap enough that digesting a 1,000-vehicle world
// costs well under a millisecond. Digests are computed only at checkpoint
// boundaries, never on the event hot path.
package digest

import "math"

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Writer accumulates an FNV-1a 64 digest. The zero value is NOT ready;
// use New. Writers are plain values — copy one to fork a sub-digest.
type Writer struct {
	sum uint64
}

// New returns a writer seeded with the FNV offset basis.
func New() *Writer {
	return &Writer{sum: offset64}
}

// Sum returns the current digest value.
func (w *Writer) Sum() uint64 { return w.sum }

// U64 folds one uint64 into the digest, byte by byte (little-endian).
func (w *Writer) U64(v uint64) {
	s := w.sum
	for i := 0; i < 8; i++ {
		s ^= v & 0xff
		s *= prime64
		v >>= 8
	}
	w.sum = s
}

// I64 folds one int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int folds one int.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// U32 folds one uint32.
func (w *Writer) U32(v uint32) { w.U64(uint64(v)) }

// Bool folds one bool.
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// F64 folds one float64 by its IEEE-754 bit pattern, so the digest
// distinguishes every representable value (including -0 from +0 and every
// NaN payload the simulation could deterministically produce).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str folds a string, length-prefixed so concatenations can't collide.
func (w *Writer) Str(v string) {
	w.U64(uint64(len(v)))
	s := w.sum
	for i := 0; i < len(v); i++ {
		s ^= uint64(v[i])
		s *= prime64
	}
	w.sum = s
}

// Mix hashes one uint64 to a well-distributed value. It exists for
// order-independent folds over sets (XOR of Mix over the elements):
// XORing raw values would cancel structured IDs, Mix makes collisions
// as unlikely as the hash width allows. The function is FNV-1a over the
// value's little-endian bytes, so it is as stable as the rest of the
// package.
func Mix(v uint64) uint64 {
	s := uint64(offset64)
	for i := 0; i < 8; i++ {
		s ^= v & 0xff
		s *= prime64
		v >>= 8
	}
	return s
}

// Sum64 is the one-shot convenience for hashing a byte slice (the
// checkpoint file format uses it to checksum its payload).
func Sum64(b []byte) uint64 {
	s := uint64(offset64)
	for i := 0; i < len(b); i++ {
		s ^= uint64(b[i])
		s *= prime64
	}
	return s
}
