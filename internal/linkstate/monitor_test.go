package linkstate

import (
	"math"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/prob"
)

func TestMonitorUpdateAndExpire(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	m.Update(1, Vehicle, geom.V(10, 0), geom.V(5, 0), -60, 0)
	m.Update(2, RSU, geom.V(50, 0), geom.Vec2{}, -70, 0.4)
	if m.Len() != 2 || !m.Has(1) || m.Has(3) {
		t.Fatalf("table contents wrong: len=%d", m.Len())
	}
	e, ok := m.Get(1)
	if !ok || e.Kind != Vehicle || e.Beacons != 1 || e.MeanRSSI != -60 {
		t.Fatalf("entry = %+v", e)
	}
	if e.FeedbackProb != 1 {
		t.Fatalf("fresh link FeedbackProb = %v, want 1", e.FeedbackProb)
	}
	// refresh: EWMA pulls MeanRSSI toward the new sample
	m.Update(1, Vehicle, geom.V(15, 0), geom.V(5, 0), -70, 1)
	e, _ = m.Get(1)
	if want := 0.7*-60 + 0.3*-70; e.MeanRSSI != want {
		t.Fatalf("MeanRSSI = %v, want %v", e.MeanRSSI, want)
	}
	if e.Beacons != 2 || e.FirstSeen != 0 {
		t.Fatalf("entry after refresh = %+v", e)
	}
	// RSSI dropped 10 dB over 1 s: trend is smoothed toward −10 dB/s
	if want := 0.3 * -10.0; e.RSSITrend != want {
		t.Fatalf("RSSITrend = %v, want %v", e.RSSITrend, want)
	}
	// node 2 expires (last beacon 0.4, ttl 2.5), node 1 stays (beacon at 1)
	gone := m.Expire(3.2)
	if len(gone) != 1 || gone[0] != 2 {
		t.Fatalf("expired = %v", gone)
	}
	if m.Len() != 1 {
		t.Fatalf("len after expire = %d", m.Len())
	}
}

func TestMonitorFeedback(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	m.Update(7, Vehicle, geom.V(10, 0), geom.Vec2{}, -60, 0)
	m.RecordSendFailed(7)
	e, _ := m.Get(7)
	if e.TxFails != 1 {
		t.Fatalf("TxFails = %d", e.TxFails)
	}
	if e.FeedbackProb >= 1 {
		t.Fatalf("FeedbackProb did not drop on failure: %v", e.FeedbackProb)
	}
	after := e.FeedbackProb
	m.RecordReceived(7)
	e, _ = m.Get(7)
	if e.Received != 1 || e.FeedbackProb <= after {
		t.Fatalf("reception did not recover feedback: %+v", e)
	}
	// unknown links are ignored, not created
	m.RecordSendFailed(99)
	m.RecordReceived(99)
	if m.Has(99) {
		t.Fatal("feedback created a phantom entry")
	}
}

func TestMonitorStateMatchesEqn4(t *testing.T) {
	m := NewMonitor(2.5, 250, nil) // default composite estimator
	pos, vel := geom.V(100, 0), geom.V(-5, 0)
	m.Update(3, Vehicle, pos, vel, -58, 1)
	obs := Observer{Pos: geom.V(0, 0), Vel: geom.V(5, 0), Now: 1.5, Epoch: 4}
	st, ok := m.State(3, obs)
	if !ok {
		t.Fatal("state missing")
	}
	if want := link.LifetimeVec(pos, vel, obs.Pos, obs.Vel, 250); st.Lifetime != want {
		t.Fatalf("Lifetime = %v, want Eqn-4 %v", st.Lifetime, want)
	}
	if want := prob.DefaultReceiptModel().ProbFromRSSI(st.MeanRSSI); st.ReceiptProb != want {
		t.Fatalf("ReceiptProb = %v, want %v", st.ReceiptProb, want)
	}
	if st.Age != 0.5 {
		t.Fatalf("Age = %v", st.Age)
	}
	// raw accessors never carry derived fields
	raw, _ := m.Get(3)
	if raw.Age != 0 || raw.ReceiptProb != 0 {
		t.Fatalf("raw entry carries derived fields: %+v", raw)
	}
}

func TestMonitorLifetimeMemo(t *testing.T) {
	calls := 0
	Register("counting", func(c Config) Estimator { return countingEstimator{calls: &calls} })
	defer delete(registry, "counting")
	m := NewMonitor(2.5, 250, MustNew("counting", Config{}))
	m.Update(1, Vehicle, geom.V(100, 0), geom.V(-1, 0), -60, 0)

	obs := Observer{Pos: geom.Vec2{}, Vel: geom.V(2, 0), Now: 1, Epoch: 10}
	first, _ := m.State(1, obs)
	again, _ := m.State(1, obs)
	if first.Lifetime != again.Lifetime {
		t.Fatalf("memoized lifetime changed: %v vs %v", first.Lifetime, again.Lifetime)
	}
	// same epoch, same beacons → the kinematic solve ran once
	e := m.entries[1]
	if !e.lifeOK || e.lifeEpoch != 10 {
		t.Fatalf("memo not recorded: %+v", e)
	}
	// a new beacon invalidates the memo even within the epoch
	m.Update(1, Vehicle, geom.V(90, 0), geom.V(-1, 0), -60, 1.5)
	refreshed, _ := m.State(1, obs)
	if refreshed.Lifetime == first.Lifetime {
		t.Fatal("beacon refresh did not invalidate the lifetime memo")
	}
	// an epoch advance invalidates it too
	obs2 := obs
	obs2.Epoch = 11
	obs2.Pos = geom.V(10, 0)
	moved, _ := m.State(1, obs2)
	if moved.Lifetime == refreshed.Lifetime {
		t.Fatal("epoch advance did not invalidate the lifetime memo")
	}
}

// countingEstimator passes the kinematic value through and counts calls.
type countingEstimator struct{ calls *int }

func (countingEstimator) Name() string { return "counting" }
func (c countingEstimator) Estimate(ls LinkState, obs Observer, kin float64) Prediction {
	*c.calls++
	return Prediction{Lifetime: kin, ReceiptProb: 1}
}

func TestMonitorSnapshotSorted(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	for _, id := range []NodeID{9, 2, 5} {
		m.Update(id, Vehicle, geom.V(float64(id), 0), geom.Vec2{}, -60, 0)
	}
	snap := m.Snapshot()
	states := m.States(Observer{Now: 1})
	if len(snap) != 3 || len(states) != 3 {
		t.Fatalf("lens = %d, %d", len(snap), len(states))
	}
	for i, want := range []NodeID{2, 5, 9} {
		if snap[i].ID != want || states[i].ID != want {
			t.Fatalf("order: snap[%d]=%d states[%d]=%d want %d", i, snap[i].ID, i, states[i].ID, want)
		}
	}
	m.Remove(5)
	if m.Has(5) || m.Len() != 2 {
		t.Fatal("remove failed")
	}
	if _, ok := m.State(5, Observer{}); ok {
		t.Fatal("state of removed link resolved")
	}
}

func TestMonitorOldestBound(t *testing.T) {
	m := NewMonitor(1, 250, nil)
	if gone := m.Expire(100); gone != nil {
		t.Fatalf("empty expire = %v", gone)
	}
	m.Update(1, Vehicle, geom.Vec2{}, geom.Vec2{}, -60, 5)
	if math.IsInf(m.oldest, 1) {
		t.Fatal("oldest bound not lowered by update")
	}
	if gone := m.Expire(5.5); gone != nil {
		t.Fatalf("fresh entry expired: %v", gone)
	}
}

// TestMonitorReset pins the crash-recovery contract: Reset returns the
// monitor to its freshly-constructed state — no entries, no evidence, the
// expiry bound re-armed — while lifetime instrumentation survives. A
// re-learned entry starts from scratch (Beacons == 1, FeedbackProb == 1).
func TestMonitorReset(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	m.Update(1, Vehicle, geom.V(10, 0), geom.V(5, 0), -60, 0)
	m.Update(2, Vehicle, geom.V(30, 0), geom.V(5, 0), -65, 0)
	m.Update(1, Vehicle, geom.V(15, 0), geom.V(5, 0), -62, 1)
	m.RecordSendFailed(2)
	m.Expire(4) // walks the table once: both entries are stale
	sweepsBefore := m.FullSweeps()
	if m.Len() != 0 {
		t.Fatalf("len before reset = %d, want 0 after full expiry", m.Len())
	}
	m.Update(1, Vehicle, geom.V(20, 0), geom.V(5, 0), -61, 5)
	m.Reset()
	if m.Len() != 0 || m.Has(1) || m.Has(2) {
		t.Fatalf("reset left entries behind: len=%d", m.Len())
	}
	// the oldest-entry bound is re-armed: an empty table never sweeps,
	// no matter how far time advances
	if m.Expire(1e9); m.FullSweeps() != sweepsBefore {
		t.Fatalf("reset table swept: %d sweeps, want %d", m.FullSweeps(), sweepsBefore)
	}
	// evidence re-accumulates from scratch
	e := m.Update(1, Vehicle, geom.V(25, 0), geom.V(5, 0), -63, 10)
	if e.Beacons != 1 || e.FirstSeen != 10 || e.FeedbackProb != 1 {
		t.Fatalf("re-learned entry carries stale evidence: %+v", e)
	}
}
