// Package linkstate is the reliability plane: a unified link-state
// estimation subsystem shared by every routing protocol. Each node owns a
// Monitor that accumulates evidence about its radio links — HELLO beacon
// kinematics and RSSI, MAC ARQ failure upcalls, successful frame
// receptions — and exposes one LinkState per neighbor with derived
// predictions (residual link lifetime, receipt probability) computed by a
// pluggable Estimator.
//
// Before this plane existed every protocol hand-rolled the estimation math
// at decision time against raw neighbor snapshots: PBR/Taleb/Abedi solved
// Eqn (4) per candidate per packet, REAR mapped RSSI to receipt
// probability with its private model, NiuDe/GVGrid rebuilt the Sec. VII
// link-duration model inline, and none of them folded in observed MAC
// failures or could be asked "how good were your predictions?". The
// Monitor centralises the bookkeeping, memoizes the pairwise kinematic
// lifetime per mobility epoch (0 allocs steady-state), and the netstack's
// ground-truth audit measures each estimator's prediction error against
// geometric link breaks (see the link-accuracy experiment).
//
// The identity vocabulary (NodeID, NodeKind) lives here because the plane
// sits below the netstack: netstack aliases these types, so protocol code
// keeps spelling netstack.NodeID.
package linkstate

import (
	"github.com/vanetlab/relroute/internal/geom"
)

// NodeID identifies a node (vehicle, RSU, or bus). IDs are dense from 0.
// netstack.NodeID aliases this type.
type NodeID int32

// NodeKind distinguishes the node roles the survey's categories rely on.
// netstack.NodeKind aliases this type.
type NodeKind int

const (
	// Vehicle is an ordinary car.
	Vehicle NodeKind = iota + 1
	// RSU is a fixed road-side unit with backbone connectivity (Sec. V).
	RSU
	// BusNode is a message-ferry bus on a regular route (Sec. V, Kitani).
	BusNode
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Vehicle:
		return "vehicle"
	case RSU:
		return "rsu"
	case BusNode:
		return "bus"
	default:
		return "unknown"
	}
}

// LinkState is everything one node knows and predicts about the link to
// one neighbor. The observed fields are refreshed by the Monitor from
// beacons and MAC feedback; the derived fields (Age, Lifetime,
// ReceiptProb) are filled by the configured Estimator when the state is
// read through Monitor.State/States — they are zero on entries delivered
// through the raw beacon path (Router.OnBeacon, API.Neighbor).
type LinkState struct {
	ID       NodeID
	Kind     NodeKind
	Pos      geom.Vec2 // last beaconed position
	Vel      geom.Vec2 // last beaconed velocity
	RSSI     float64   // dBm of the latest beacon
	MeanRSSI float64   // exponentially weighted RSSI average
	LastSeen float64   // sim time of the latest beacon
	Beacons  int       // beacons received from this neighbor

	// reliability-plane evidence
	FirstSeen float64 // sim time the link entered the table (link age origin)
	RSSITrend float64 // EWMA slope of the beacon RSSI in dB/s (negative = fading)
	Received  int     // non-beacon frames received over this link
	TxFails   int     // unicast ARQ exhaustions reported by the MAC
	// FeedbackProb is the EWMA of per-frame link outcomes: beacon and data
	// receptions push it toward 1, MAC transmission failures toward 0. It
	// starts at 1 when the link is first heard.
	FeedbackProb float64

	// derived by the Estimator (see the struct comment)
	Age         float64 // seconds since the last beacon
	Lifetime    float64 // predicted residual link lifetime in seconds
	ReceiptProb float64 // predicted per-frame receipt probability in [0,1]

	// kinematic-lifetime memo: the Eqn (4) solution is reused while the
	// observer's mobility epoch and this entry's beacon count are unchanged.
	lifeOK      bool
	lifeEpoch   uint64
	lifeBeacons int
	lifeVal     float64
}

// Observer is the monitoring node's own state at estimation time. Epoch is
// the mobility epoch the kinematic-lifetime memo keys on: the observer's
// position and velocity must only change when Epoch advances.
type Observer struct {
	Pos, Vel geom.Vec2
	Now      float64
	Epoch    uint64
}
