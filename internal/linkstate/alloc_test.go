package linkstate

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// Steady-state allocation pins: the epoch-memoized lifetime cache sits on
// every routing decision's hot path, so once the monitor's entries exist,
// neither same-epoch queries nor post-epoch recomputation may allocate.

func warmMonitor() *Monitor {
	m := NewMonitor(2.5, 250, nil)
	for id := NodeID(0); id < 32; id++ {
		m.Update(id, Vehicle, geom.V(float64(id)*20, 0), geom.V(5, 0), -60, 0)
	}
	// materialize every memo once
	obs := Observer{Pos: geom.V(300, 10), Vel: geom.V(-5, 0), Now: 0.5, Epoch: 1}
	for id := NodeID(0); id < 32; id++ {
		m.State(id, obs)
	}
	return m
}

func TestStateAllocFree(t *testing.T) {
	m := warmMonitor()
	obs := Observer{Pos: geom.V(300, 10), Vel: geom.V(-5, 0), Now: 0.7, Epoch: 1}
	allocs := testing.AllocsPerRun(200, func() {
		for id := NodeID(0); id < 32; id++ {
			m.State(id, obs)
		}
	})
	if allocs != 0 {
		t.Fatalf("same-epoch State allocated %v times per run, want 0", allocs)
	}
}

func TestEpochRecomputeAllocFree(t *testing.T) {
	m := warmMonitor()
	obs := Observer{Pos: geom.V(300, 10), Vel: geom.V(-5, 0), Now: 0.7, Epoch: 1}
	allocs := testing.AllocsPerRun(100, func() {
		obs.Epoch++ // every pass invalidates all 32 memos
		obs.Pos.X -= 0.5
		for id := NodeID(0); id < 32; id++ {
			m.State(id, obs)
		}
	})
	if allocs != 0 {
		t.Fatalf("post-epoch recompute allocated %v times per run, want 0", allocs)
	}
}

func TestFeedbackAllocFree(t *testing.T) {
	m := warmMonitor()
	allocs := testing.AllocsPerRun(200, func() {
		for id := NodeID(0); id < 32; id++ {
			m.RecordReceived(id)
			m.RecordSendFailed(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("feedback recording allocated %v times per run, want 0", allocs)
	}
}
