package linkstate

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

// TestMemoStatsCountHitRate pins the observable side of the once-per-tick
// epoch contract: with the grid epoch frozen, every kinematic read after
// the first per (entry, tick) is a memo hit, and an epoch advance turns
// exactly one read per entry back into a miss.
func TestMemoStatsCountHitRate(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	m.Update(1, Vehicle, geom.V(100, 0), geom.V(-1, 0), -60, 0)
	m.Update(2, Vehicle, geom.V(120, 0), geom.V(-2, 0), -62, 0)

	obs := Observer{Vel: geom.V(2, 0), Now: 1, Epoch: 5}
	for i := 0; i < 4; i++ {
		m.State(1, obs)
		m.State(2, obs)
	}
	hits, misses := m.MemoStats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (one cold solve per entry)", misses)
	}
	if hits != 6 {
		t.Fatalf("hits = %d, want 6 (three repeat reads per entry)", hits)
	}

	// one AdvanceEpoch per tick → exactly one extra miss per entry read
	obs.Epoch = 6
	m.State(1, obs)
	m.State(1, obs)
	hits, misses = m.MemoStats()
	if misses != 3 || hits != 7 {
		t.Fatalf("after epoch advance: hits/misses = %d/%d, want 7/3", hits, misses)
	}
}

// TestFullSweepsStayZeroWhenQuiet pins the expiry fast path: a monitor
// whose entries are all fresh — or that has none at all — answers Expire
// from the oldest-entry lower bound without ever walking the table.
func TestFullSweepsStayZeroWhenQuiet(t *testing.T) {
	m := NewMonitor(2.5, 250, nil)
	for i := 0; i < 100; i++ {
		m.Expire(float64(i) * 0.1) // empty table: oldest bound short-circuits
	}
	if got := m.FullSweeps(); got != 0 {
		t.Fatalf("empty monitor did %d full sweeps", got)
	}
	m.Update(1, Vehicle, geom.V(10, 0), geom.V(5, 0), -60, 10)
	for i := 0; i < 20; i++ {
		m.Update(1, Vehicle, geom.V(10, 0), geom.V(5, 0), -60, 10+float64(i)*0.1)
		m.Expire(10 + float64(i)*0.1)
	}
	if got := m.FullSweeps(); got != 0 {
		t.Fatalf("fresh-entry monitor did %d full sweeps", got)
	}
	// let the entry age past the ttl: now a sweep must actually run
	gone := m.Expire(20)
	if len(gone) != 1 || m.FullSweeps() != 1 {
		t.Fatalf("expiry sweep: gone=%v sweeps=%d, want 1/1", gone, m.FullSweeps())
	}
}
