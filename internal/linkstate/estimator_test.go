package linkstate

import (
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/prob"
)

func TestRegistry(t *testing.T) {
	want := []string{"composite", "kinematic", "receipt", "rssi"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
		e, err := New(name, Config{})
		if err != nil || e.Name() != name {
			t.Errorf("New(%q) = %v, %v", name, e, err)
		}
	}
	if !Known("") {
		t.Error("empty name must resolve to the default")
	}
	if def := MustNew("", Config{}); def.Name() != DefaultEstimator {
		t.Errorf("default estimator = %q", def.Name())
	}
	if _, err := New("nope", Config{}); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestKinematicEstimator(t *testing.T) {
	e := MustNew("kinematic", Config{Range: 250})
	ls := LinkState{Pos: geom.V(100, 0), Vel: geom.V(-5, 0)}
	obs := Observer{Pos: geom.Vec2{}, Vel: geom.V(5, 0)}
	kin := link.LifetimeVec(ls.Pos, ls.Vel, obs.Pos, obs.Vel, 250)
	p := e.Estimate(ls, obs, kin)
	if p.Lifetime != kin {
		t.Fatalf("Lifetime = %v, want %v", p.Lifetime, kin)
	}
	if p.ReceiptProb != 1 {
		t.Fatalf("in-range ReceiptProb = %v", p.ReceiptProb)
	}
	if far := e.Estimate(LinkState{Pos: geom.V(400, 0)}, obs, 0); far.ReceiptProb != 0 {
		t.Fatalf("out-of-range ReceiptProb = %v", far.ReceiptProb)
	}
}

func TestRSSIEstimator(t *testing.T) {
	model := prob.DefaultReceiptModel()
	e := MustNew("rssi", Config{Receipt: model})
	// 20 dB above sensitivity, fading 2 dB/s → ~10 s predicted
	ls := LinkState{MeanRSSI: model.RxThreshDBm + 20, RSSITrend: -2}
	p := e.Estimate(ls, Observer{}, 123)
	if p.Lifetime != 10 {
		t.Fatalf("fading Lifetime = %v, want 10", p.Lifetime)
	}
	if want := model.ProbFromRSSI(ls.MeanRSSI); p.ReceiptProb != want {
		t.Fatalf("ReceiptProb = %v, want %v", p.ReceiptProb, want)
	}
	// flat trend → unbreakable under this model
	flat := e.Estimate(LinkState{MeanRSSI: model.RxThreshDBm + 20, RSSITrend: 0}, Observer{}, 0)
	if flat.Lifetime != link.Forever {
		t.Fatalf("flat-trend Lifetime = %v, want Forever", flat.Lifetime)
	}
	// below sensitivity → already dead
	dead := e.Estimate(LinkState{MeanRSSI: model.RxThreshDBm - 1, RSSITrend: -2}, Observer{}, 0)
	if dead.Lifetime != 0 {
		t.Fatalf("below-threshold Lifetime = %v, want 0", dead.Lifetime)
	}
}

func TestReceiptEstimator(t *testing.T) {
	e := MustNew("receipt", Config{MinAge: 1})
	p := e.Estimate(LinkState{FirstSeen: 2, FeedbackProb: 0.5}, Observer{Now: 10}, 999)
	if p.ReceiptProb != 0.5 {
		t.Fatalf("ReceiptProb = %v", p.ReceiptProb)
	}
	if p.Lifetime != 8*0.5 {
		t.Fatalf("age-based Lifetime = %v, want 4", p.Lifetime)
	}
	// the age floor keeps newborn links from predicting ~0
	young := e.Estimate(LinkState{FirstSeen: 10, FeedbackProb: 1}, Observer{Now: 10}, 0)
	if young.Lifetime != 1 {
		t.Fatalf("floored Lifetime = %v, want 1", young.Lifetime)
	}
}

func TestCompositeMatchesPrePlaneMath(t *testing.T) {
	// The composite estimator is the default precisely because its two
	// outputs reproduce what the protocols hand-rolled: Eqn (4) for
	// lifetime (PBR/Taleb/Abedi) and DefaultReceiptModel over MeanRSSI
	// for receipt (REAR).
	e := MustNew("composite", Config{Range: 250})
	ls := LinkState{Pos: geom.V(120, 30), Vel: geom.V(-8, 0), MeanRSSI: -77}
	obs := Observer{Pos: geom.V(0, 0), Vel: geom.V(9, 1)}
	kin := link.LifetimeVec(ls.Pos, ls.Vel, obs.Pos, obs.Vel, 250)
	p := e.Estimate(ls, obs, kin)
	if p.Lifetime != kin {
		t.Fatalf("Lifetime = %v, want %v", p.Lifetime, kin)
	}
	if want := prob.DefaultReceiptModel().ProbFromRSSI(-77); p.ReceiptProb != want {
		t.Fatalf("ReceiptProb = %v, want %v", p.ReceiptProb, want)
	}
}

func TestSurvivalHelperMatchesInlineModel(t *testing.T) {
	// the helper must be value-identical to the construction NiuDe used
	// inline (axis from observer to neighbor, Mu = −projected Δv)
	obs := Observer{Pos: geom.V(0, 0), Vel: geom.V(10, 0)}
	ls := LinkState{Pos: geom.V(80, 40), Vel: geom.V(4, -2)}
	axis := ls.Pos.Sub(obs.Pos)
	rel := geom.Project(obs.Vel.Sub(ls.Vel), axis)
	model := prob.LinkDurationModel{
		RelSpeed: prob.Normal{Mu: -rel, Sigma: 4},
		Gap:      axis.Len(),
		Range:    250,
		Horizon:  600,
	}
	if got, want := Survival(obs, ls, 4, 250, 600, 4), model.SurvivalProb(4); got != want {
		t.Fatalf("Survival = %v, want %v", got, want)
	}
	if got, want := ExpectedDuration(obs, ls, 4, 250, 300), (prob.LinkDurationModel{
		RelSpeed: prob.Normal{Mu: -rel, Sigma: 4}, Gap: axis.Len(), Range: 250, Horizon: 300,
	}).Expected(); got != want {
		t.Fatalf("ExpectedDuration = %v, want %v", got, want)
	}
	// out-of-range links are dead in both helpers
	far := LinkState{Pos: geom.V(400, 0)}
	if Survival(obs, far, 4, 250, 600, 1) != 0 || ExpectedDuration(obs, far, 4, 250, 300) != 0 {
		t.Fatal("out-of-range link not dead")
	}
}
