package linkstate

import (
	"math"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
)

// rssiAlpha is the EWMA weight of a fresh beacon RSSI sample: 0.3 smooths
// shadowing while still tracking mobility (the constant the pre-plane
// neighbor table used — part of the golden determinism contract).
const rssiAlpha = 0.3

// trendAlpha smooths the per-beacon RSSI slope into RSSITrend.
const trendAlpha = 0.3

// feedbackAlpha is the EWMA weight of one observed link outcome
// (reception success or ARQ failure) in FeedbackProb.
const feedbackAlpha = 0.25

// Monitor tracks the currently live links of one node and estimates their
// quality. It subsumes the old netstack neighbor table: entries are
// created and refreshed by HELLO beacons, expire ttl seconds after the
// last beacon, and additionally accumulate MAC feedback (receptions and
// ARQ failures). Derived predictions are computed on read by the
// configured Estimator, with the kinematic Eqn (4) lifetime memoized per
// (mobility epoch, beacon count) so repeated routing decisions within one
// epoch cost no recomputation and no allocations.
//
// Shard safety: a Monitor is confined to its owning node. The sharded
// world engine calls Expire and State on different nodes' monitors
// concurrently, but never the same monitor from two shards; every
// mutation (including the kinematic memo write-back in derive) stays
// inside this monitor's own entries, so that confinement is the only
// requirement. The shared Estimator must be stateless (the registry
// contract) for the same reason.
type Monitor struct {
	entries map[NodeID]*LinkState
	ttl     float64
	rangeM  float64 // communication range r for Eqn (4)
	est     Estimator
	// oldest is a lower bound on the minimum LastSeen of any entry. The
	// per-tick expiry sweep compares it against now before iterating: a
	// table whose oldest possible entry is still fresh cannot hold anything
	// to expire, which skips the map scan on almost every tick. Refreshing
	// an entry may leave the bound stale-low; that only costs one full
	// sweep, which recomputes it exactly.
	oldest float64
	// instrumentation: kinematic-memo effectiveness and how often the
	// expiry sweep actually walked the table (tests pin both).
	memoHits   uint64
	memoMisses uint64
	fullSweeps uint64
}

// NewMonitor returns a monitor whose links expire ttl seconds after the
// last beacon, predicting with the given estimator (nil means the default
// composite estimator) over communication range rangeM.
func NewMonitor(ttl, rangeM float64, est Estimator) *Monitor {
	if est == nil {
		est = MustNew("", Config{Range: rangeM})
	}
	return &Monitor{
		entries: make(map[NodeID]*LinkState),
		ttl:     ttl,
		rangeM:  rangeM,
		est:     est,
		oldest:  math.Inf(1),
	}
}

// Estimator returns the monitor's estimator.
func (m *Monitor) Estimator() Estimator { return m.est }

// Update inserts or refreshes an entry from a received beacon and returns
// the stored entry (observed fields only; derived fields are not
// recomputed here — read through State for predictions).
func (m *Monitor) Update(id NodeID, kind NodeKind, pos, vel geom.Vec2, rssi, now float64) *LinkState {
	e, ok := m.entries[id]
	if !ok {
		e = &LinkState{ID: id, MeanRSSI: rssi, FirstSeen: now, FeedbackProb: 1}
		m.entries[id] = e
	}
	if now < m.oldest {
		m.oldest = now
	}
	if ok && now > e.LastSeen {
		// slope of the raw RSSI between consecutive beacons, smoothed
		inst := (rssi - e.RSSI) / (now - e.LastSeen)
		e.RSSITrend = (1-trendAlpha)*e.RSSITrend + trendAlpha*inst
	}
	e.Kind = kind
	e.Pos = pos
	e.Vel = vel
	e.RSSI = rssi
	// EWMA over beacons smooths shadowing; alpha 0.3 tracks mobility.
	e.MeanRSSI = (1-rssiAlpha)*e.MeanRSSI + rssiAlpha*rssi
	e.LastSeen = now
	e.Beacons++
	// a beacon got through: positive link feedback
	e.FeedbackProb = (1-feedbackAlpha)*e.FeedbackProb + feedbackAlpha
	return e
}

// RecordReceived folds a successfully received non-beacon frame from id
// into the link's feedback evidence. Unknown links (no beacon heard yet)
// are ignored — the table stays beacon-driven.
func (m *Monitor) RecordReceived(id NodeID) {
	e, ok := m.entries[id]
	if !ok {
		return
	}
	e.Received++
	e.FeedbackProb = (1-feedbackAlpha)*e.FeedbackProb + feedbackAlpha
}

// RecordSendFailed folds a MAC transmission failure (unicast ARQ budget
// exhausted sending to id) into the link's feedback evidence.
func (m *Monitor) RecordSendFailed(id NodeID) {
	e, ok := m.entries[id]
	if !ok {
		return
	}
	e.TxFails++
	e.FeedbackProb = (1 - feedbackAlpha) * e.FeedbackProb
}

// Get returns the raw observed entry for id (derived fields zero).
func (m *Monitor) Get(id NodeID) (LinkState, bool) {
	e, ok := m.entries[id]
	if !ok {
		return LinkState{}, false
	}
	return *e, true
}

// Has reports whether id is currently a live link.
func (m *Monitor) Has(id NodeID) bool {
	_, ok := m.entries[id]
	return ok
}

// Len returns the number of live links.
func (m *Monitor) Len() int { return len(m.entries) }

// Remove deletes the entry for id, if present, discarding its evidence.
func (m *Monitor) Remove(id NodeID) { delete(m.entries, id) }

// Reset discards every entry and its accumulated evidence, returning the
// monitor to its freshly-constructed state. A node recovering from a
// crash calls this so it re-enters the network with no stale neighbors or
// feedback history — everything it knows must be re-learned from beacons.
// Instrumentation counters survive; they describe the monitor's lifetime,
// not the current table.
func (m *Monitor) Reset() {
	clear(m.entries)
	m.oldest = math.Inf(1)
}

// AppendIDs appends the ID of every live link to dst and returns it,
// in map order — callers that act on the result must filter or sort it
// before anything observable depends on the order. It exists so periodic
// scanners (the netstack's link audit) can check membership without
// paying Snapshot's copy and sort.
func (m *Monitor) AppendIDs(dst []NodeID) []NodeID {
	for id := range m.entries {
		dst = append(dst, id)
	}
	return dst
}

// Snapshot returns all live entries sorted by ID (deterministic iteration
// for reproducible routing decisions). Derived fields are zero; use States
// for predictions.
func (m *Monitor) Snapshot() []LinkState {
	out := make([]LinkState, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State returns the link state for id with derived predictions filled by
// the estimator. It allocates nothing in steady state: the kinematic
// lifetime is memoized per (epoch, beacon count) inside the entry.
func (m *Monitor) State(id NodeID, obs Observer) (LinkState, bool) {
	e, ok := m.entries[id]
	if !ok {
		return LinkState{}, false
	}
	return m.derive(e, obs), true
}

// States returns the link state of every live link, sorted by ID, with
// derived predictions filled. The slice is freshly allocated (like the raw
// Snapshot), so callers may keep it.
func (m *Monitor) States(obs Observer) []LinkState {
	out := make([]LinkState, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, m.derive(e, obs))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// derive copies the entry and fills the estimator-derived fields. The
// kinematic memo is written back into the stored entry.
func (m *Monitor) derive(e *LinkState, obs Observer) LinkState {
	kin := m.kinematic(e, obs)
	ls := *e
	ls.Age = obs.Now - ls.LastSeen
	p := m.est.Estimate(ls, obs, kin)
	ls.Lifetime = p.Lifetime
	ls.ReceiptProb = p.ReceiptProb
	return ls
}

// kinematic returns the memoized Eqn (4) residual lifetime of the link,
// solved on the neighbor's beaconed kinematics against the observer's
// current ones. The cached solution is reused while the observer's
// mobility epoch and the entry's beacon count are both unchanged — the
// only events that can move either endpoint's kinematics.
func (m *Monitor) kinematic(e *LinkState, obs Observer) float64 {
	if e.lifeOK && e.lifeEpoch == obs.Epoch && e.lifeBeacons == e.Beacons {
		m.memoHits++
		return e.lifeVal
	}
	m.memoMisses++
	v := link.LifetimeVec(e.Pos, e.Vel, obs.Pos, obs.Vel, m.rangeM)
	e.lifeOK = true
	e.lifeEpoch = obs.Epoch
	e.lifeBeacons = e.Beacons
	e.lifeVal = v
	return v
}

// DigestInto folds the monitor's checkpoint-relevant state into d: every
// live entry's observed evidence in sorted ID order, plus the expiry
// lower bound and the instrumentation counters (all deterministic
// functions of the event history). The kinematic-lifetime memo fields
// are a pure cache keyed on shard-invariant inputs and re-derived on
// first read after restore, so they are excluded — like the radio cache.
func (m *Monitor) DigestInto(d *digest.Writer) {
	d.Int(len(m.entries))
	ids := make([]NodeID, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := m.entries[id]
		d.U32(uint32(e.ID))
		d.Int(int(e.Kind))
		d.F64(e.Pos.X)
		d.F64(e.Pos.Y)
		d.F64(e.Vel.X)
		d.F64(e.Vel.Y)
		d.F64(e.RSSI)
		d.F64(e.MeanRSSI)
		d.F64(e.LastSeen)
		d.Int(e.Beacons)
		d.F64(e.FirstSeen)
		d.F64(e.RSSITrend)
		d.Int(e.Received)
		d.Int(e.TxFails)
		d.F64(e.FeedbackProb)
	}
	d.F64(m.oldest)
	d.U64(m.memoHits)
	d.U64(m.memoMisses)
	d.U64(m.fullSweeps)
}

// Expire removes entries not refreshed since now−ttl and returns their IDs
// (sorted, deterministic).
func (m *Monitor) Expire(now float64) []NodeID {
	if now-m.oldest <= m.ttl {
		return nil // even the oldest possible entry is still fresh
	}
	m.fullSweeps++
	var gone []NodeID
	min := math.Inf(1)
	for id, e := range m.entries {
		if now-e.LastSeen > m.ttl {
			gone = append(gone, id)
			delete(m.entries, id)
		} else if e.LastSeen < min {
			min = e.LastSeen
		}
	}
	m.oldest = min
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	return gone
}

// MemoStats returns how often the kinematic lifetime memo hit and missed.
// With the grid epoch advancing once per tick, every State read after the
// first per (entry, tick) should hit — the counter test pins that.
func (m *Monitor) MemoStats() (hits, misses uint64) {
	return m.memoHits, m.memoMisses
}

// FullSweeps returns how many Expire calls actually walked the table
// (rather than being dismissed by the oldest-entry lower bound). A quiet
// table — no links, or none old enough to expire — must keep this at
// zero no matter how many ticks elapse.
func (m *Monitor) FullSweeps() uint64 { return m.fullSweeps }
