package linkstate

import (
	"fmt"
	"sort"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/prob"
)

// Prediction is an estimator's output for one link: the predicted
// residual lifetime in seconds and the per-frame receipt probability.
type Prediction struct {
	Lifetime    float64
	ReceiptProb float64
}

// Estimator predicts link quality from the monitored evidence; kinematic
// is the memoized Eqn (4) residual lifetime precomputed by the Monitor.
// Implementations must be stateless and deterministic — per-link state
// belongs in the LinkState evidence fields, and estimators run inside the
// single-threaded engines of many concurrent simulations. The value-in,
// value-out shape keeps Monitor.State allocation-free (a pointer argument
// would escape through the interface call).
type Estimator interface {
	// Name returns the registry name of the estimator.
	Name() string
	// Estimate predicts from the observed link evidence.
	Estimate(ls LinkState, obs Observer, kinematic float64) Prediction
}

// Config parameterises estimator construction. The zero value of every
// field takes the documented default.
type Config struct {
	// Range is the communication range r in meters used by geometric
	// predictions (default 250 — the nominal DSRC figure).
	Range float64
	// Receipt maps RSSI to receipt probability for the rssi and composite
	// estimators (zero value means prob.DefaultReceiptModel).
	Receipt prob.ReceiptModel
	// TrendFloor is the minimum fading rate in dB/s the rssi estimator
	// extrapolates; flatter trends predict an unbreakable link
	// (default 1e-3).
	TrendFloor float64
	// MinAge floors the receipt estimator's age-based residual in seconds
	// (default 1).
	MinAge float64
}

func (c Config) withDefaults() Config {
	if c.Range <= 0 {
		c.Range = 250
	}
	if c.Receipt == (prob.ReceiptModel{}) {
		c.Receipt = prob.DefaultReceiptModel()
	}
	if c.TrendFloor <= 0 {
		c.TrendFloor = 1e-3
	}
	if c.MinAge <= 0 {
		c.MinAge = 1
	}
	return c
}

// Factory builds an estimator from a config.
type Factory func(Config) Estimator

// registry maps estimator names to factories. Register before running
// simulations; the map is read concurrently by runner workers.
var registry = map[string]Factory{
	"kinematic": func(c Config) Estimator { return kinematicEstimator{cfg: c.withDefaults()} },
	"rssi":      func(c Config) Estimator { return rssiEstimator{cfg: c.withDefaults()} },
	"receipt":   func(c Config) Estimator { return receiptEstimator{cfg: c.withDefaults()} },
	"composite": func(c Config) Estimator { return compositeEstimator{cfg: c.withDefaults()} },
}

// DefaultEstimator is the registry name resolved for an empty estimator
// selection: the composite estimator, whose predictions reproduce exactly
// what the protocols computed before the reliability plane existed.
const DefaultEstimator = "composite"

// Register adds a named estimator factory (call before building worlds).
func Register(name string, f Factory) { registry[name] = f }

// Known reports whether name resolves in the registry ("" is the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	_, ok := registry[name]
	return ok
}

// Names returns the registered estimator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named estimator ("" selects DefaultEstimator).
func New(name string, cfg Config) (Estimator, error) {
	if name == "" {
		name = DefaultEstimator
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("linkstate: unknown estimator %q (known: %v)", name, Names())
	}
	return f(cfg), nil
}

// MustNew is New for statically known names; it panics on unknown ones.
func MustNew(name string, cfg Config) Estimator {
	e, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// kinematicEstimator is the paper's Sec. IV-A predictor: the residual
// lifetime is the Eqn (4) solution on the beaconed kinematics, and receipt
// is the unit-disk indicator of the current geometric distance.
type kinematicEstimator struct{ cfg Config }

// Name implements Estimator.
func (kinematicEstimator) Name() string { return "kinematic" }

// Estimate implements Estimator.
func (e kinematicEstimator) Estimate(ls LinkState, obs Observer, kinematic float64) Prediction {
	p := Prediction{Lifetime: kinematic}
	if ls.Pos.Dist(obs.Pos) <= e.cfg.Range {
		p.ReceiptProb = 1
	}
	return p
}

// rssiEstimator is the radio-only predictor (REAR's family): receipt from
// the shadowing loss model over the smoothed beacon RSSI, and lifetime by
// extrapolating the RSSI trend down to the receiver sensitivity.
type rssiEstimator struct{ cfg Config }

// Name implements Estimator.
func (rssiEstimator) Name() string { return "rssi" }

// Estimate implements Estimator.
func (e rssiEstimator) Estimate(ls LinkState, obs Observer, kinematic float64) Prediction {
	p := Prediction{ReceiptProb: e.cfg.Receipt.ProbFromRSSI(ls.MeanRSSI)}
	margin := ls.MeanRSSI - e.cfg.Receipt.RxThreshDBm
	switch {
	case margin <= 0:
		p.Lifetime = 0 // already below sensitivity
	case ls.RSSITrend < -e.cfg.TrendFloor:
		p.Lifetime = margin / -ls.RSSITrend
	default:
		p.Lifetime = link.Forever // flat or improving signal
	}
	return p
}

// receiptEstimator is the pure feedback predictor (the REAR-style
// fold-in-observed-reception direction of arXiv:1704.07519): receipt is
// the EWMA of observed per-frame outcomes, and the residual lifetime is
// age-proportional (a link that has survived t tends to survive about t
// more) discounted by that same feedback.
type receiptEstimator struct{ cfg Config }

// Name implements Estimator.
func (receiptEstimator) Name() string { return "receipt" }

// Estimate implements Estimator.
func (e receiptEstimator) Estimate(ls LinkState, obs Observer, kinematic float64) Prediction {
	age := obs.Now - ls.FirstSeen
	if age < e.cfg.MinAge {
		age = e.cfg.MinAge
	}
	return Prediction{Lifetime: age * ls.FeedbackProb, ReceiptProb: ls.FeedbackProb}
}

// compositeEstimator is the default: the best single-source estimate per
// quantity — kinematic Eqn (4) for the residual lifetime, the RSSI loss
// model for receipt probability. Its predictions are exactly what the
// protocols hand-rolled before the plane existed, which is what keeps the
// golden experiment outputs byte-identical.
type compositeEstimator struct{ cfg Config }

// Name implements Estimator.
func (compositeEstimator) Name() string { return "composite" }

// Estimate implements Estimator.
func (e compositeEstimator) Estimate(ls LinkState, obs Observer, kinematic float64) Prediction {
	return Prediction{Lifetime: kinematic, ReceiptProb: e.cfg.Receipt.ProbFromRSSI(ls.MeanRSSI)}
}

// durationModel builds the Sec. VII link-duration model for the link
// from the observer to ls: the axis points observer → neighbor, the gap
// is signed positive along it, and Mu is the negated projected closing
// speed (positive Δv toward the neighbor shrinks the gap). It reports
// false when the gap already exceeds the range — the link is down.
func durationModel(obs Observer, ls LinkState, sigma, rangeM, horizon float64) (prob.LinkDurationModel, bool) {
	axis := ls.Pos.Sub(obs.Pos)
	gap := axis.Len()
	if gap > rangeM {
		return prob.LinkDurationModel{}, false
	}
	rel := geom.Project(obs.Vel.Sub(ls.Vel), axis)
	return prob.LinkDurationModel{
		RelSpeed: prob.Normal{Mu: -rel, Sigma: sigma},
		Gap:      gap,
		Range:    rangeM,
		Horizon:  horizon,
	}, true
}

// Survival is the shared Sec. VII link-availability helper: the
// probability that the link from the observer to ls outlives t seconds
// under a normal relative-speed model N(observed Δv, sigma²) — the inline
// math NiuDe-style QoS protocols used to duplicate. horizon truncates the
// duration statistics (0 means the model default).
func Survival(obs Observer, ls LinkState, sigma, rangeM, horizon, t float64) float64 {
	model, up := durationModel(obs, ls, sigma, rangeM, horizon)
	if !up {
		return 0
	}
	return model.SurvivalProb(t)
}

// ExpectedDuration is the shared Sec. VII expected-link-duration helper:
// E[min(T, horizon)] under the same normal relative-speed model — the
// metric behind the paper's TBP variants.
func ExpectedDuration(obs Observer, ls LinkState, sigma, rangeM, horizon float64) float64 {
	model, up := durationModel(obs, ls, sigma, rangeM, horizon)
	if !up {
		return 0
	}
	return model.Expected()
}
