package mobility

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/roadnet"
)

func TestPlaybackInterpolation(t *testing.T) {
	tracks := []Track{{
		ID: 0,
		Waypoints: []Waypoint{
			{T: 0, Pos: geom.V(0, 0), Speed: 10},
			{T: 10, Pos: geom.V(100, 0), Speed: 10},
		},
	}}
	m := NewPlayback(tracks)
	m.Advance(5)
	s := m.States()[0]
	if math.Abs(s.Pos.X-50) > 1e-9 {
		t.Fatalf("interpolated pos = %v", s.Pos)
	}
	if math.Abs(s.Vel.X-10) > 1e-9 {
		t.Fatalf("interpolated vel = %v", s.Vel)
	}
	if math.Abs(s.Speed-10) > 1e-9 {
		t.Fatalf("interpolated speed = %v", s.Speed)
	}
}

// TestPlaybackActiveWindows is the regression test for the "parked
// phantom" bug: vehicles outside their [first, last] waypoint window used
// to sit frozen at the endpoint with zero velocity and keep receiving and
// forwarding packets. They must instead be absent from the state set.
func TestPlaybackActiveWindows(t *testing.T) {
	tracks := []Track{{
		ID: 0,
		Waypoints: []Waypoint{
			{T: 5, Pos: geom.V(10, 10), Speed: 3},
			{T: 15, Pos: geom.V(20, 10), Speed: 3},
		},
	}}
	m := NewPlayback(tracks)
	if got := m.States(); len(got) != 0 {
		t.Fatalf("pre-span states = %+v, want vehicle absent", got)
	}
	if m.Len() != 0 {
		t.Fatalf("pre-span Len = %d", m.Len())
	}
	m.Advance(5) // t = 5: window opens at the first waypoint
	if got := m.States(); len(got) != 1 || got[0].Pos != geom.V(10, 10) {
		t.Fatalf("window-open states = %+v", got)
	}
	m.Advance(10) // t = 15: last waypoint is still inside the window
	if got := m.States(); len(got) != 1 || got[0].Pos != geom.V(20, 10) {
		t.Fatalf("window-close states = %+v", got)
	}
	m.Advance(0.1) // t > 15: the vehicle has left the world
	if got := m.States(); len(got) != 0 {
		t.Fatalf("post-span states = %+v, want vehicle absent", got)
	}
	if m.Len() != 0 {
		t.Fatalf("post-span Len = %d", m.Len())
	}
}

func TestTrackSpan(t *testing.T) {
	tr := Track{Waypoints: []Waypoint{{T: 2}, {T: 7}}}
	if first, last := tr.Span(); first != 2 || last != 7 {
		t.Fatalf("span = [%v, %v]", first, last)
	}
	empty := Track{}
	if first, last := empty.Span(); first <= last {
		t.Fatalf("empty track span [%v, %v] not empty", first, last)
	}
}

func TestPlaybackSortsWaypoints(t *testing.T) {
	tracks := []Track{{
		ID: 0,
		Waypoints: []Waypoint{
			{T: 10, Pos: geom.V(100, 0)},
			{T: 0, Pos: geom.V(0, 0)},
		},
	}}
	m := NewPlayback(tracks)
	m.Advance(5)
	if s := m.States()[0]; math.Abs(s.Pos.X-50) > 1e-9 {
		t.Fatalf("pos with unsorted input = %v", s.Pos)
	}
}

func TestPlaybackDefaultsClassCar(t *testing.T) {
	m := NewPlayback([]Track{{ID: 0, Waypoints: []Waypoint{{T: 0, Pos: geom.V(0, 0)}}}})
	if got := m.States()[0].Class; got != Car {
		t.Fatalf("class = %v", got)
	}
}

func TestPlaybackEmptyTrackSkipped(t *testing.T) {
	m := NewPlayback([]Track{{ID: 0}, {ID: 1, Waypoints: []Waypoint{{T: 0, Pos: geom.V(1, 1)}}}})
	if got := len(m.States()); got != 1 {
		t.Fatalf("states = %d, want empty track skipped", got)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d, want only the in-window track counted", m.Len())
	}
	if m.Tracks() != 2 {
		t.Fatalf("tracks = %d", m.Tracks())
	}
}

func TestRecordRoundTripsThroughPlayback(t *testing.T) {
	net, eb, _, err := roadnet.Highway(5000, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	src := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	src.AddVehicle(eb, 0, 0, DefaultIDM(25), Car)
	src.AddVehicle(eb, 1, 200, DefaultIDM(30), Car)
	tracks := Record(src, 0.5, 20)
	if len(tracks) != 2 {
		t.Fatalf("recorded %d tracks", len(tracks))
	}
	if len(tracks[0].Waypoints) != 41 { // 0..20 inclusive at 0.5 s
		t.Fatalf("waypoints = %d", len(tracks[0].Waypoints))
	}
	// replay and verify motion is monotone eastbound like the source
	pb := NewPlayback(tracks)
	prevX := pb.States()[0].Pos.X
	for i := 0; i < 40; i++ {
		pb.Advance(0.5)
		x := pb.States()[0].Pos.X
		if x < prevX-1e-6 {
			t.Fatalf("playback moved backwards at step %d", i)
		}
		prevX = x
	}
}
