// Package mobility moves vehicles over a road network. It provides the
// Intelligent Driver Model (IDM) for car-following, a simple incentive-based
// lane-change rule, route progression at junctions, and a trace-playback
// adapter, all behind a single Model interface the network stack polls each
// mobility tick.
//
// The survey's premise is that "cars in various lanes move at different
// speed, making the underlying network highly dynamic"; this package is the
// source of that dynamism, so its realism bar is: heterogeneous speeds,
// lane structure, direction mix, and density regimes from sparse to jammed.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/prng"
	"github.com/vanetlab/relroute/internal/roadnet"
)

// VehicleID identifies a vehicle within a Model. IDs are dense, starting at
// zero, and never reused.
type VehicleID int32

// State is the externally visible kinematic state of a vehicle.
type State struct {
	ID      VehicleID
	Pos     geom.Vec2 // plane position, meters
	Vel     geom.Vec2 // velocity vector, m/s
	Speed   float64   // scalar speed, m/s
	Accel   float64   // scalar acceleration along heading, m/s²
	Segment roadnet.SegmentID
	Lane    int
	Offset  float64 // meters along the segment
	Class   Class
}

// Class tags special vehicle roles the protocols care about.
type Class int

const (
	// Car is an ordinary vehicle.
	Car Class = iota + 1
	// Bus is a message-ferry bus on a regular route (Kitani's protocol).
	Bus
)

// Model is the interface the simulation polls. Advance moves every vehicle
// by dt seconds; States returns the current state of every active vehicle.
// StatesInto appends the same states to dst and returns the extended slice,
// so per-tick pollers can reuse one buffer instead of allocating a fresh
// snapshot every tick.
type Model interface {
	Advance(dt float64)
	States() []State
	StatesInto(dst []State) []State
	// Len returns the number of active vehicles.
	Len() int
}

// ShardedModel is implemented by models whose per-tick work can fan out
// over a par.Pool. The contract is strict determinism: for any fixed
// input state, AdvanceShards and StatesIntoShards must produce results
// byte-identical to Advance and StatesInto on any pool — the sharded
// world engine runs the same golden experiments at every shard count.
type ShardedModel interface {
	Model
	// AdvanceShards is Advance with its per-vehicle phases run per shard.
	AdvanceShards(dt float64, pool *par.Pool)
	// StatesIntoShards is StatesInto with the snapshot filled per shard.
	StatesIntoShards(dst []State, pool *par.Pool) []State
}

// IDMParams are the Intelligent Driver Model parameters.
type IDMParams struct {
	DesiredSpeed float64 // v0: free-flow speed, m/s
	TimeHeadway  float64 // T: safe time headway, s
	MaxAccel     float64 // a: maximum acceleration, m/s²
	ComfortDecel float64 // b: comfortable braking, m/s²
	MinGap       float64 // s0: minimum bumper gap, m
	Length       float64 // vehicle length, m
}

// DefaultIDM returns standard passenger-car IDM parameters with the given
// desired speed.
func DefaultIDM(desiredSpeed float64) IDMParams {
	return IDMParams{
		DesiredSpeed: desiredSpeed,
		TimeHeadway:  1.5,
		MaxAccel:     1.4,
		ComfortDecel: 2.0,
		MinGap:       2.0,
		Length:       5.0,
	}
}

// accel returns the IDM acceleration for a vehicle at speed v with a gap
// (bumper to bumper) and approach rate dv = v − vLeader. Pass gap = +Inf
// for free road.
func (p IDMParams) accel(v, gap, dv float64) float64 {
	// (v/v0)^4 as two squarings. math.Pow's integer-exponent path computes
	// exactly this repeated-squaring product (one rounding per squaring),
	// so the result is bit-identical for the physical domain here — and an
	// order of magnitude cheaper in the per-vehicle hot loop.
	r := v / math.Max(p.DesiredSpeed, 0.1)
	r2 := r * r
	free := 1 - r2*r2
	if math.IsInf(gap, 1) {
		return p.MaxAccel * free
	}
	if gap < 0.1 {
		gap = 0.1
	}
	sStar := p.MinGap + math.Max(0, v*p.TimeHeadway+v*dv/(2*math.Sqrt(p.MaxAccel*p.ComfortDecel)))
	return p.MaxAccel * (free - (sStar/gap)*(sStar/gap))
}

// vehicle is the internal mutable vehicle record.
type vehicle struct {
	id      VehicleID
	class   Class
	params  IDMParams
	seg     roadnet.SegmentID
	lane    int
	offset  float64
	speed   float64
	accel   float64
	route   []roadnet.SegmentID // pending segments after the current one
	rngSeed int64               // drawn at AddVehicle; see random
	rng     *rand.Rand          // materialized on first draw
	rngSrc  *prng.Source        // counting source behind rng; nil until materialized
	// lane-change hysteresis: no second change for a short period
	laneCooldown float64
	// orderIdx is this vehicle's position in its (segment, lane) ordered
	// list, refreshed by advance's sort phases and kept exact by list
	// surgery between ticks; it makes the same-lane leader lookup O(1)
	// and makes ordered removal O(shift) instead of O(search).
	orderIdx int32
}

// memberMove records one vehicle leaving the lane list it occupied at the
// start of a sharded phase — because it changed lane, crossed a junction,
// or despawned. Shards only record; the serial merge after the phase
// barrier performs the ordered remove (and, unless gone, the ordered
// reinsert under the vehicle's new key), so list mutation never races.
type memberMove struct {
	v      *vehicle
	oldKey int32 // index into order the vehicle is being removed from
	gone   bool  // despawned: remove without reinsert
}

// random returns the vehicle's private RNG stream, materializing it on
// first use: seeding a math/rand generator costs ~600 mixing steps, and a
// vehicle only draws when it crosses a junction with an empty route. The
// seed is drawn eagerly in AddVehicle, so the model's root stream is
// byte-identical whether or when this one materializes — and since the
// only draws happen inside the junction phase, materialization lands on
// whichever shard owns the vehicle instead of on the serial spawn path.
func (v *vehicle) random() *rand.Rand {
	if v.rng == nil {
		v.rng, v.rngSrc = prng.Rand(v.rngSeed)
	}
	return v.rng
}

// RoadModel moves vehicles over a roadnet.Network with IDM + lane changes.
// Vehicles follow per-vehicle routes; when the route runs out the
// NextSegment policy picks a continuation (ring roads loop forever,
// Manhattan grids turn randomly).
type RoadModel struct {
	net   *roadnet.Network
	vs    []*vehicle
	rng   *rand.Rand
	now   float64
	exitP ExitPolicy
	// order holds the per (segment, lane) vehicle lists, sorted by
	// (offset, ID) and indexed densely by seg*maxLanes+lane — no map
	// hashing in the per-vehicle hot path. Once listsLive is set the lists
	// persist across ticks and are maintained incrementally: integration
	// only perturbs order (fixed by the near-linear insertion resort), and
	// every membership change — lane change, junction transition, spawn,
	// despawn — is applied as an ordered remove/insert at a serial merge
	// point. Rebuilding and fully sorting from scratch each tick was the
	// single largest cost in dense worlds. vehBefore is a total order, so
	// the incrementally maintained lists are byte-identical to
	// scratch-built ones.
	order     [][]*vehicle
	maxLanes  int
	listsLive bool
	// moves holds the per-shard membership-change buffers the lane-change
	// and junction phases fill; the serial merge drains them in shard
	// order (= vehicle index order). Backing arrays are reused.
	moves [][]memberMove
	// shardStart is StatesIntoShards' reused output-offset scratch.
	shardStart []int
	// rngSrc is the counting source behind rng when the model was built
	// through NewRoadModelSeeded; nil for an externally supplied rng. The
	// model draws from it at runtime (one seed per spawned vehicle), so
	// the checkpoint stream table must cover it.
	rngSrc *prng.Source
	// maxVehLen and maxSpeedLimit bound any vehicle's follower safety
	// envelope Length + speed·1s + 2: lengths are fixed at spawn (the
	// high-water mark only ever rises) and speeds are clamped to their
	// segment's limit every integration step. maybeChangeLane uses the sum
	// to cut the follower safety scan off early; because the bound is
	// conservative, the truncated scan returns exactly the verdict the
	// full-list scan would.
	maxVehLen     float64
	maxSpeedLimit float64
}

// ExitPolicy decides what happens when a vehicle reaches the end of its
// current segment with an empty route.
type ExitPolicy int

const (
	// ContinueRandom picks a random outgoing segment (straight-biased).
	ContinueRandom ExitPolicy = iota + 1
	// Despawn removes the vehicle from the simulation.
	Despawn
)

// NewRoadModel returns an empty road mobility model.
func NewRoadModel(net *roadnet.Network, rng *rand.Rand, exit ExitPolicy) *RoadModel {
	if exit == 0 {
		exit = ContinueRandom
	}
	maxLanes := 1
	maxLimit := 0.0
	for s := 0; s < net.Segments(); s++ {
		seg := net.Segment(roadnet.SegmentID(s))
		if seg.Lanes > maxLanes {
			maxLanes = seg.Lanes
		}
		if seg.SpeedLimit > maxLimit {
			maxLimit = seg.SpeedLimit
		}
	}
	return &RoadModel{
		net: net, rng: rng, exitP: exit,
		order:         make([][]*vehicle, net.Segments()*maxLanes),
		maxLanes:      maxLanes,
		maxSpeedLimit: maxLimit,
	}
}

// NewRoadModelSeeded is NewRoadModel with the model's private RNG built
// from seed over a counting source, so checkpoints can record and verify
// its draw position. Scenario builders should prefer it; the draw
// sequence is identical to NewRoadModel(net, rand.New(rand.NewSource(
// seed)), exit).
func NewRoadModelSeeded(net *roadnet.Network, seed int64, exit ExitPolicy) *RoadModel {
	r, src := prng.Rand(seed)
	m := NewRoadModel(net, r, exit)
	m.rngSrc = src
	return m
}

// laneList returns the ordered vehicle list of one (segment, lane).
func (m *RoadModel) laneList(seg roadnet.SegmentID, lane int) []*vehicle {
	return m.order[int(seg)*m.maxLanes+lane]
}

// Network returns the underlying road network.
func (m *RoadModel) Network() *roadnet.Network { return m.net }

// AddVehicle places a vehicle and returns its ID. Speed starts at the
// smaller of the desired speed and the segment limit.
func (m *RoadModel) AddVehicle(seg roadnet.SegmentID, lane int, offset float64, params IDMParams, class Class) VehicleID {
	s := m.net.Segment(seg)
	if lane < 0 {
		lane = 0
	}
	if lane >= s.Lanes {
		lane = s.Lanes - 1
	}
	v := &vehicle{
		id:      VehicleID(len(m.vs)),
		class:   class,
		params:  params,
		seg:     seg,
		lane:    lane,
		offset:  math.Mod(math.Abs(offset), math.Max(s.Length(), 1)),
		speed:   math.Min(params.DesiredSpeed, s.SpeedLimit),
		rngSeed: m.rng.Int63(),
	}
	if params.Length > m.maxVehLen {
		m.maxVehLen = params.Length
	}
	m.vs = append(m.vs, v)
	if m.listsLive {
		m.insertOrdered(v)
	}
	return v.id
}

// SetRoute assigns the pending segment route of a vehicle (after its
// current segment).
func (m *RoadModel) SetRoute(id VehicleID, route []roadnet.SegmentID) {
	v := m.vs[id]
	v.route = append(v.route[:0], route...)
}

// RemoveVehicle despawns a vehicle mid-run (open-world churn: a car
// reaching its destination and parking, or leaving the simulated area).
// The ID is never reused; the vehicle simply stops appearing in States.
// It reports whether the vehicle was present.
func (m *RoadModel) RemoveVehicle(id VehicleID) bool {
	if id < 0 || int(id) >= len(m.vs) || m.vs[id] == nil {
		return false
	}
	v := m.vs[id]
	m.vs[id] = nil
	if m.listsLive {
		m.removeOrdered(int32(int(v.seg)*m.maxLanes+v.lane), v)
	}
	return true
}

// Has reports whether the vehicle is currently active (spawned and not
// despawned).
func (m *RoadModel) Has(id VehicleID) bool {
	return id >= 0 && int(id) < len(m.vs) && m.vs[id] != nil
}

// Len implements Model: the number of active (non-despawned) vehicles.
func (m *RoadModel) Len() int {
	n := 0
	for _, v := range m.vs {
		if v != nil {
			n++
		}
	}
	return n
}

// Advance implements Model: one IDM step for every vehicle, then lane
// changes, then junction handling.
func (m *RoadModel) Advance(dt float64) { m.advance(dt, par.Seq) }

// AdvanceShards implements ShardedModel: the same step with each
// per-vehicle phase fanned out over the pool. Byte-identical to Advance —
// both are the same phased implementation, only the pool differs.
func (m *RoadModel) AdvanceShards(dt float64, pool *par.Pool) { m.advance(dt, pool) }

// advance is one mobility step as a sequence of per-vehicle phases with a
// full barrier between them. Every phase reads only state frozen at the
// previous barrier and writes only vehicle-private fields (or, for the
// sort phases, disjoint lane lists), so the phase bodies may run per
// shard over disjoint index ranges in any interleaving:
//
//   - sort: each (segment, lane) list is sorted independently; membership
//     was fixed by the serial bucket pass.
//   - accel: reads leaders' frozen offset/speed, writes only v.accel.
//   - integrate: reads only v.accel, writes v.speed/v.offset/cooldown.
//   - resort + lane changes + junctions: lane changes write only v.lane
//     (list membership stays stale through the phase, exactly as in the
//     sequential formulation; the serial merge after the barrier splices
//     the lists), and junction transitions touch only the vehicle's own
//     record and slot, drawing only its private RNG.
//
// Lane changes and junctions stay separate phases: a junction transition
// rewrites v.offset relative to a new segment, and the sequential
// formulation let every lane-change decision observe pre-transition
// offsets.
//
// The lane lists are rebuilt from scratch only on the first tick after
// construction (or restore). Every later tick inherits lists that are
// already membership-exact and sorted: the previous tick's surgery merges
// applied every lane change, junction move, and despawn, and AddVehicle/
// RemoveVehicle splice between ticks. Since vehBefore is a total order,
// "maintained incrementally" and "rebuilt from scratch" denote the same
// unique permutation — the skip changes no observable state.
func (m *RoadModel) advance(dt float64, pool *par.Pool) {
	m.now += dt
	for len(m.moves) < pool.Shards() {
		m.moves = append(m.moves, nil)
	}
	if !m.listsLive {
		m.bucketOrder()
		pool.Run(func(shard int) {
			lo, hi := pool.Range(len(m.order), shard)
			for _, list := range m.order[lo:hi] {
				sortVehicles(list)
				for i, o := range list {
					o.orderIdx = int32(i)
				}
			}
		})
		m.listsLive = true
	}
	// 1. accelerations from current leaders
	pool.Run(func(shard int) {
		lo, hi := pool.Range(len(m.vs), shard)
		for _, v := range m.vs[lo:hi] {
			if v == nil {
				continue
			}
			gap, leadSpeed := m.gapAhead(v, v.lane)
			limit := m.net.Segment(v.seg).SpeedLimit
			a := v.params.accel(v.speed, gap, v.speed-leadSpeed)
			// respect the speed limit as the v_m clamp
			if v.speed > limit {
				a = math.Min(a, -v.params.ComfortDecel)
			}
			v.accel = clampF(a, -8, v.params.MaxAccel)
		}
	})
	// 2. integrate
	pool.Run(func(shard int) {
		lo, hi := pool.Range(len(m.vs), shard)
		for _, v := range m.vs[lo:hi] {
			if v == nil {
				continue
			}
			v.speed = clampF(v.speed+v.accel*dt, 0, m.net.Segment(v.seg).SpeedLimit)
			v.offset += v.speed * dt
			if v.laneCooldown > 0 {
				v.laneCooldown -= dt
			}
		}
	})
	// 3. lane changes (after movement so gaps reflect fresh positions).
	// Integration never moves a vehicle across a (segment, lane) list, so
	// membership is unchanged since the rebuild above — re-sorting the
	// nearly-sorted lists in place is enough (and ~linear).
	pool.Run(func(shard int) {
		lo, hi := pool.Range(len(m.order), shard)
		for _, list := range m.order[lo:hi] {
			insertionSortVehicles(list)
			for i, o := range list {
				o.orderIdx = int32(i)
			}
		}
	})
	pool.Run(func(shard int) {
		buf := m.moves[shard]
		lo, hi := pool.Range(len(m.vs), shard)
		for _, v := range m.vs[lo:hi] {
			if v == nil {
				continue
			}
			oldLane := v.lane
			m.maybeChangeLane(v)
			if v.lane != oldLane {
				buf = append(buf, memberMove{v: v, oldKey: int32(int(v.seg)*m.maxLanes + oldLane)})
			}
		}
		m.moves[shard] = buf
	})
	// The lane merge runs before the junction phase so junction records
	// capture the post-lane-change key; nothing in the junction phase
	// reads the lists, so the mid-tick splice is unobservable.
	m.applyMoves()
	// 4. junction transitions
	pool.Run(func(shard int) {
		buf := m.moves[shard]
		lo, hi := pool.Range(len(m.vs), shard)
		for i := lo; i < hi; i++ {
			v := m.vs[i]
			if v == nil {
				continue
			}
			seg := m.net.Segment(v.seg)
			if v.offset < seg.Length() {
				continue
			}
			// The vehicle leaves its current list: it either enters a new
			// segment, despawns, or parks at a dead end (same key, new
			// offset — still a remove+reinsert to keep the list sorted).
			oldKey := int32(int(v.seg)*m.maxLanes + v.lane)
			for v.offset >= seg.Length() {
				over := v.offset - seg.Length()
				next, ok := m.nextSegment(v)
				if !ok {
					if m.exitP == Despawn {
						m.vs[i] = nil
					} else {
						v.offset = seg.Length()
						v.speed = 0
					}
					break
				}
				v.seg = next
				seg = m.net.Segment(next)
				if v.lane >= seg.Lanes {
					v.lane = seg.Lanes - 1
				}
				v.offset = over
			}
			buf = append(buf, memberMove{v: v, oldKey: oldKey, gone: m.vs[i] == nil})
		}
		m.moves[shard] = buf
	})
	m.applyMoves()
}

// applyMoves drains the per-shard membership-move buffers in shard order.
// pool.Range splits the vehicle slice into contiguous index windows, so
// shard order concatenates to vehicle-ID order — the merge is byte-
// deterministic at every shard count. Runs serially: list splices and the
// orderIdx fixups they imply must not race.
func (m *RoadModel) applyMoves() {
	for s, buf := range m.moves {
		for _, mv := range buf {
			m.removeOrdered(mv.oldKey, mv.v)
			if !mv.gone {
				m.insertOrdered(mv.v)
			}
		}
		clear(buf) // don't pin despawned vehicles through the reused arena
		m.moves[s] = buf[:0]
	}
}

// removeOrdered splices v out of the lane list at key, preserving order
// and restoring the orderIdx invariant for every shifted entry. v.orderIdx
// is trusted: it is exact at every merge point and between ticks.
func (m *RoadModel) removeOrdered(key int32, v *vehicle) {
	list := m.order[key]
	i := int(v.orderIdx)
	copy(list[i:], list[i+1:])
	list = list[:len(list)-1]
	m.order[key] = list
	for ; i < len(list); i++ {
		list[i].orderIdx = int32(i)
	}
}

// insertOrdered splices v into the lane list of its current (segment,
// lane) at the position vehBefore dictates, fixing orderIdx from the
// insertion point on.
func (m *RoadModel) insertOrdered(v *vehicle) {
	key := int(v.seg)*m.maxLanes + v.lane
	list := m.order[key]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vehBefore(list[mid], v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	list = append(list, nil)
	copy(list[lo+1:], list[lo:])
	list[lo] = v
	m.order[key] = list
	for i := lo; i < len(list); i++ {
		list[i].orderIdx = int32(i)
	}
}

// nextSegment pops the route or applies the exit policy.
func (m *RoadModel) nextSegment(v *vehicle) (roadnet.SegmentID, bool) {
	if len(v.route) > 0 {
		next := v.route[0]
		v.route = v.route[1:]
		return next, true
	}
	choices := m.net.NextSegments(v.seg)
	if len(choices) == 0 {
		return 0, false
	}
	if m.exitP == Despawn {
		return 0, false
	}
	// straight bias: prefer the continuation with the closest heading
	cur := m.net.Segment(v.seg).Dir()
	if v.random().Float64() < 0.7 {
		best := choices[0]
		bd := -math.MaxFloat64
		for _, c := range choices {
			if d := m.net.Segment(c).Dir().Dot(cur); d > bd {
				bd = d
				best = c
			}
		}
		return best, true
	}
	return choices[v.random().Intn(len(choices))], true
}

// bucketOrder refills the per-(segment, lane) lists from the live vehicle
// set, leaving them unsorted — the sort (plus orderIdx refresh) runs as
// the first parallel phase of the one rebuild tick; every later tick
// maintains the lists incrementally and skips both. Lane lists are
// truncated and refilled in place (instead of reallocated) so their
// backing arrays are reused. Equal-offset vehicles order by ID because
// vehBefore breaks ties on ID (a total order — the sort need not be
// stable), the invariant gapAhead's tie-break relies on.
func (m *RoadModel) bucketOrder() {
	for k, list := range m.order {
		if len(list) > 0 {
			m.order[k] = list[:0]
		}
	}
	for _, v := range m.vs {
		if v == nil {
			continue
		}
		k := int(v.seg)*m.maxLanes + v.lane
		m.order[k] = append(m.order[k], v)
	}
}

// vehBefore is the lane-list order: by offset, ties broken by ID. It is a
// total order (IDs are unique), so every sort below produces the same
// list regardless of input permutation — which is what lets the full sort
// (ID-ordered input from bucketOrder) and the insertion resort
// (previous-tick order) coexist deterministically.
func vehBefore(a, b *vehicle) bool {
	if a.offset != b.offset {
		return a.offset < b.offset
	}
	return a.id < b.id
}

func insertionSortVehicles(list []*vehicle) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && vehBefore(list[j], list[j-1]); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
}

// sortVehicles sorts a lane list from scratch. Rebuilds feed it ID-ordered
// (i.e. effectively random by offset) input, where insertion sort alone is
// quadratic — at 1,000 vehicles that was the single largest cost in the
// whole simulation. vehBefore is a total order, so the unstable stdlib
// sort still yields one unique permutation.
func sortVehicles(list []*vehicle) {
	slices.SortFunc(list, func(a, b *vehicle) int {
		// open-coded vehBefore both ways: one comparison per pair instead
		// of two full vehBefore calls — this comparator is the hottest
		// function in dense worlds
		if a.offset != b.offset {
			if a.offset < b.offset {
				return -1
			}
			return 1
		}
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		return 0
	})
}

// gapAhead returns the bumper gap and speed of the leader in the given lane
// of v's segment (or on the following segment within lookahead). Gap is
// +Inf on free road.
//
// Lane lists are sorted by (offset, ID), so the same-lane leader is simply
// the next list entry after v (everything before v is behind it or an
// excluded equal-offset lower ID); for a foreign lane, a binary search
// finds the first candidate at or ahead of v's offset.
func (m *RoadModel) gapAhead(v *vehicle, lane int) (gap, leaderSpeed float64) {
	list := m.laneList(v.seg, lane)
	var leader *vehicle
	if lane == v.lane && int(v.orderIdx) < len(list) && list[v.orderIdx] == v {
		if int(v.orderIdx)+1 < len(list) {
			leader = list[v.orderIdx+1]
		}
	} else {
		lo, hi := 0, len(list)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if list[mid].offset < v.offset {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for ; lo < len(list); lo++ {
			o := list[lo]
			if o == v {
				continue
			}
			if o.offset == v.offset && o.id < v.id {
				continue // deterministic tie-break
			}
			leader = o
			break
		}
	}
	if leader != nil {
		return leader.offset - v.offset - leader.params.Length, leader.speed
	}
	return m.lookaheadGap(v, lane)
}

// lookaheadGap is gapAhead's empty-lane tail: when no leader exists on
// v's own segment, peek into the next segment the vehicle would enter
// (within 100 m) and measure against its first occupant. +Inf on free
// road.
func (m *RoadModel) lookaheadGap(v *vehicle, lane int) (gap, leaderSpeed float64) {
	remaining := m.net.Segment(v.seg).Length() - v.offset
	if remaining < 100 {
		var nextSeg roadnet.SegmentID = -1
		if len(v.route) > 0 {
			nextSeg = v.route[0]
		} else if ns := m.net.NextSegments(v.seg); len(ns) == 1 {
			nextSeg = ns[0]
		}
		if nextSeg >= 0 {
			nl := lane
			if nl >= m.net.Segment(nextSeg).Lanes {
				nl = m.net.Segment(nextSeg).Lanes - 1
			}
			for _, o := range m.laneList(nextSeg, nl) {
				return remaining + o.offset - o.params.Length, o.speed
			}
		}
	}
	return math.Inf(1), 0
}

// maybeChangeLane applies a simplified MOBIL rule: change lane when the
// target lane offers a clearly better gap and the follower there is not
// forced to brake hard.
func (m *RoadModel) maybeChangeLane(v *vehicle) {
	seg := m.net.Segment(v.seg)
	if seg.Lanes < 2 || v.laneCooldown > 0 {
		return
	}
	curGap, _ := m.gapAhead(v, v.lane)
	if curGap > v.speed*3+20 {
		return // no incentive
	}
	for _, cand := range [2]int{v.lane - 1, v.lane + 1} {
		if cand < 0 || cand >= seg.Lanes {
			continue
		}
		if m.laneChangeOK(v, cand, curGap) {
			v.lane = cand
			v.laneCooldown = 4
			return
		}
	}
}

// laneChangeOK evaluates one candidate lane with a single binary search:
// the insertion position of v's offset yields both the prospective leader
// (first entry at or ahead, same tie-break gapAhead uses) and the two
// safety windows around it. The follower scan walks backwards from the
// split and stops once the distance exceeds the model-wide reach bound
// maxVehLen + maxSpeedLimit + 2 ≥ any follower's Length + speed·1s + 2;
// the leader scan walks forward and stops at v's own (exact) envelope.
// Both cutoffs are sound, so the verdict — gap incentive first, then
// safety, exactly the sequential rule's order — matches a full-list scan
// bit for bit. v is never in the candidate list (membership is keyed by
// v.lane and stays frozen through the lane-change phase).
func (m *RoadModel) laneChangeOK(v *vehicle, cand int, curGap float64) bool {
	list := m.laneList(v.seg, cand)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].offset < v.offset {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// leader + incentive gap, matching gapAhead's foreign-lane semantics
	var leader *vehicle
	for i := lo; i < len(list); i++ {
		o := list[i]
		if o.offset == v.offset && o.id < v.id {
			continue // deterministic tie-break
		}
		leader = o
		break
	}
	var newGap float64
	if leader != nil {
		newGap = leader.offset - v.offset - leader.params.Length
	} else {
		newGap, _ = m.lookaheadGap(v, cand)
	}
	if newGap < curGap*1.5+5 {
		return false // no incentive
	}
	// safety: follower in target lane must keep ≥ minGap
	reach := m.maxVehLen + m.maxSpeedLimit + 2
	for i := lo - 1; i >= 0; i-- {
		o := list[i]
		d := v.offset - o.offset
		if d >= reach {
			break
		}
		if d < o.params.Length+o.speed*1.0+2 {
			return false // follower too close behind
		}
	}
	// Ahead, v's envelope is the same for every entry and offsets ascend,
	// so only the nearest at-or-ahead entry can decide. Equal offset means
	// a zero follower gap — always unsafe, whichever side of the ID
	// tie-break the entry is on.
	if lo < len(list) {
		o := list[lo]
		if o.offset == v.offset {
			return false // side-by-side: zero gap
		}
		if o.offset-v.offset < v.params.Length+v.speed*1.0+2 {
			return false // leader too close ahead
		}
	}
	return true
}

// States implements Model.
func (m *RoadModel) States() []State {
	return m.StatesInto(make([]State, 0, len(m.vs)))
}

// StatesInto implements Model: it appends every active vehicle's state to
// dst, allocating only when dst lacks capacity.
func (m *RoadModel) StatesInto(dst []State) []State {
	for _, v := range m.vs {
		if v == nil {
			continue
		}
		dst = append(dst, m.stateOf(v))
	}
	return dst
}

// StatesIntoShards implements ShardedModel: the same snapshot, filled per
// shard. A serial counting pass assigns each shard's output window (the
// snapshot keeps vehicle-index order, so the result is byte-identical to
// StatesInto), then every shard projects its own vehicles — the per-
// vehicle geometry (PosAt, Heading) is the actual cost, and it is pure.
func (m *RoadModel) StatesIntoShards(dst []State, pool *par.Pool) []State {
	if pool.Shards() == 1 {
		return m.StatesInto(dst)
	}
	n := pool.Shards()
	if cap(m.shardStart) < n+1 {
		m.shardStart = make([]int, n+1)
	}
	starts := m.shardStart[:n+1]
	base := len(dst)
	total := base
	for s := 0; s < n; s++ {
		starts[s] = total
		lo, hi := pool.Range(len(m.vs), s)
		for _, v := range m.vs[lo:hi] {
			if v != nil {
				total++
			}
		}
	}
	starts[n] = total
	if cap(dst) < total {
		grown := make([]State, total)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:total]
	}
	pool.Run(func(shard int) {
		out := starts[shard]
		lo, hi := pool.Range(len(m.vs), shard)
		for _, v := range m.vs[lo:hi] {
			if v == nil {
				continue
			}
			dst[out] = m.stateOf(v)
			out++
		}
	})
	return dst
}

// DigestInto folds the model's checkpoint-relevant state into d: the
// mobility clock and, for every vehicle slot in ID order, the full
// kinematic record plus the private RNG stream position. Despawned slots
// digest as a tombstone so "vehicle 7 left" and "vehicle 7 never existed"
// cannot collide. orderIdx and the order lists are per-tick scratch
// rebuilt from this state, so they are intentionally excluded.
func (m *RoadModel) DigestInto(d *digest.Writer) {
	d.F64(m.now)
	if m.rngSrc != nil {
		d.Bool(true)
		d.I64(m.rngSrc.SeedValue())
		d.U64(m.rngSrc.Draws())
	} else {
		d.Bool(false)
	}
	d.Int(len(m.vs))
	for _, v := range m.vs {
		if v == nil {
			d.Bool(false)
			continue
		}
		d.Bool(true)
		d.U32(uint32(v.id))
		d.Int(int(v.class))
		d.U32(uint32(v.seg))
		d.Int(v.lane)
		d.F64(v.offset)
		d.F64(v.speed)
		d.F64(v.accel)
		d.F64(v.laneCooldown)
		d.Int(len(v.route))
		for _, s := range v.route {
			d.U32(uint32(s))
		}
		d.I64(v.rngSeed)
		if v.rngSrc != nil {
			d.U64(v.rngSrc.Draws())
		} else {
			d.U64(0)
		}
	}
}

// AppendStreamStates appends the (seed, draw position) of every
// materialized per-vehicle RNG stream to dst. Unmaterialized streams are
// omitted — a seed with zero draws reproduces itself on demand.
func (m *RoadModel) AppendStreamStates(dst []prng.State) []prng.State {
	if m.rngSrc != nil {
		dst = append(dst, prng.StateOf("mobility/model", m.rngSrc))
	}
	for _, v := range m.vs {
		if v == nil || v.rngSrc == nil {
			continue
		}
		dst = append(dst, prng.StateOf(fmt.Sprintf("mobility/vehicle%d", v.id), v.rngSrc))
	}
	return dst
}

// stateOf projects one vehicle's externally visible state.
func (m *RoadModel) stateOf(v *vehicle) State {
	seg := m.net.Segment(v.seg)
	return State{
		ID:      v.id,
		Pos:     seg.PosAt(v.lane, v.offset),
		Vel:     seg.Heading(v.speed),
		Speed:   v.speed,
		Accel:   v.accel,
		Segment: v.seg,
		Lane:    v.lane,
		Offset:  v.offset,
		Class:   v.class,
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
