package mobility

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/roadnet"
)

// StatesInto with a pre-sized buffer must not allocate — it is called once
// per mobility tick by the network stack.
func TestStatesIntoAllocFree(t *testing.T) {
	net, eb, wb, err := roadnet.Highway(2000, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	for i := 0; i < 100; i++ {
		seg := eb
		if i%2 == 1 {
			seg = wb
		}
		m.AddVehicle(seg, i%2, float64(i)*15, DefaultIDM(30), Car)
	}
	m.Advance(0.1)
	buf := make([]State, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.StatesInto(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("StatesInto allocates %.1f objects/op with a pre-sized buffer, want 0", allocs)
	}
	if len(buf) != 100 {
		t.Fatalf("StatesInto returned %d states, want 100", len(buf))
	}
}

// StatesInto must agree exactly with States.
func TestStatesIntoMatchesStates(t *testing.T) {
	net, eb, _, err := roadnet.Highway(1000, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(2)), ContinueRandom)
	for i := 0; i < 20; i++ {
		m.AddVehicle(eb, i%2, float64(i)*30, DefaultIDM(28), Car)
	}
	for tick := 0; tick < 5; tick++ {
		m.Advance(0.1)
		a := m.States()
		b := m.StatesInto(nil)
		if len(a) != len(b) {
			t.Fatalf("tick %d: States %d entries, StatesInto %d", tick, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d entry %d: States %+v != StatesInto %+v", tick, i, a[i], b[i])
			}
		}
	}
}
