package mobility

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/roadnet"
)

// cityModel builds a RoadModel on a 4x4 city grid populated densely enough
// that every phase of advance does real work: car-following interactions,
// lane changes, and junction transitions (which draw from each vehicle's
// private RNG) all fire within a few hundred steps.
func cityModel(t *testing.T, seed int64) *RoadModel {
	t.Helper()
	net, err := roadnet.Grid(4, 4, 300, 2, 14)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(seed)), ContinueRandom)
	rng := rand.New(rand.NewSource(seed + 100))
	for i := 0; i < 120; i++ {
		seg := roadnet.SegmentID(rng.Intn(net.Segments()))
		lane := rng.Intn(2)
		off := rng.Float64() * (net.Segment(seg).Length() - 10)
		m.AddVehicle(seg, lane, off, DefaultIDM(10+rng.Float64()*8), Car)
	}
	return m
}

// TestAdvanceShardsMatchesAdvance is the mobility half of the determinism
// contract: a sharded model and a sequential model built identically must
// stay bit-for-bit equal through hundreds of steps — same positions, same
// speeds, same lane choices, same junction draws — for any shard count.
func TestAdvanceShardsMatchesAdvance(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		ref := cityModel(t, 7)
		shd := cityModel(t, 7)
		pool := par.New(shards)
		defer pool.Close()
		for step := 0; step < 400; step++ {
			ref.Advance(0.1)
			shd.AdvanceShards(0.1, pool)
			a, b := ref.States(), shd.States()
			if len(a) != len(b) {
				t.Fatalf("shards=%d step %d: %d vs %d vehicles", shards, step, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shards=%d step %d vehicle %d diverged:\nseq %+v\nshd %+v",
						shards, step, i, a[i], b[i])
				}
			}
		}
	}
}

// TestStatesIntoShardsMatchesStatesInto checks the parallel snapshot is
// byte-identical to the sequential one, including after despawns punch
// holes in the dense vehicle slice, and that it honours dst's existing
// prefix the way StatesInto does.
func TestStatesIntoShardsMatchesStatesInto(t *testing.T) {
	m := cityModel(t, 3)
	pool := par.New(4)
	defer pool.Close()
	// punch holes so shard windows must skip nil slots
	for _, id := range []VehicleID{5, 6, 7, 50, 119} {
		m.RemoveVehicle(id)
	}
	for step := 0; step < 50; step++ {
		m.Advance(0.1)
		want := m.StatesInto(nil)
		got := m.StatesIntoShards(nil, pool)
		if len(want) != len(got) {
			t.Fatalf("step %d: %d vs %d states", step, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("step %d state %d diverged:\nseq %+v\nshd %+v", step, i, want[i], got[i])
			}
		}
	}
	// reuse: a second call into the same backing array must not allocate
	// differently or shuffle entries
	buf := m.StatesIntoShards(nil, pool)
	again := m.StatesIntoShards(buf[:0], pool)
	if &again[0] != &buf[0] {
		t.Fatal("StatesIntoShards reallocated despite sufficient capacity")
	}
}
