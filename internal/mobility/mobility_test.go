package mobility

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/roadnet"
)

func testNet(t *testing.T) (*roadnet.Network, roadnet.SegmentID) {
	t.Helper()
	net, eb, _, err := roadnet.Highway(5000, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	return net, eb
}

func TestIDMFreeRoad(t *testing.T) {
	p := DefaultIDM(30)
	// at rest on free road: accelerate at close to max
	a := p.accel(0, math.Inf(1), 0)
	if math.Abs(a-p.MaxAccel) > 1e-9 {
		t.Fatalf("free-road accel from rest = %v, want %v", a, p.MaxAccel)
	}
	// at desired speed: zero acceleration
	if got := p.accel(30, math.Inf(1), 0); math.Abs(got) > 1e-9 {
		t.Fatalf("accel at desired speed = %v, want 0", got)
	}
	// above desired speed: decelerate
	if got := p.accel(40, math.Inf(1), 0); got >= 0 {
		t.Fatalf("accel above desired speed = %v, want negative", got)
	}
}

func TestIDMBrakesForLeader(t *testing.T) {
	p := DefaultIDM(30)
	// closing fast on a close leader → strong braking
	a := p.accel(30, 10, 10)
	if a > -2 {
		t.Fatalf("accel closing on leader = %v, want strong braking", a)
	}
	// huge gap ≈ free road
	af := p.accel(20, 1e6, 0)
	free := p.accel(20, math.Inf(1), 0)
	if math.Abs(af-free) > 0.01 {
		t.Fatalf("large-gap accel %v differs from free %v", af, free)
	}
}

func TestNoNegativeSpeeds(t *testing.T) {
	net, eb := testNet(t)
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	// a stopped vehicle right behind another
	m.AddVehicle(eb, 0, 100, DefaultIDM(30), Car)
	m.AddVehicle(eb, 0, 95, DefaultIDM(30), Car)
	for i := 0; i < 600; i++ {
		m.Advance(0.1)
		for _, s := range m.States() {
			if s.Speed < 0 {
				t.Fatalf("negative speed %v at step %d", s.Speed, i)
			}
		}
	}
}

func TestNoRearEndPassThrough(t *testing.T) {
	net, eb := testNet(t)
	m := NewRoadModel(net, rand.New(rand.NewSource(2)), ContinueRandom)
	// fast follower behind slow leader in the same lane; keep one lane to
	// forbid overtaking
	net1, eb1, _, err := roadnet.Highway(5000, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	_ = net
	_ = eb
	m = NewRoadModel(net1, rand.New(rand.NewSource(2)), ContinueRandom)
	slow := DefaultIDM(10)
	fast := DefaultIDM(40)
	leader := m.AddVehicle(eb1, 0, 200, slow, Car)
	follower := m.AddVehicle(eb1, 0, 50, fast, Car)
	for i := 0; i < 1200; i++ {
		m.Advance(0.1)
		var lo, fo float64
		for _, s := range m.States() {
			switch s.ID {
			case leader:
				lo = s.Offset
			case follower:
				fo = s.Offset
			}
		}
		// follower must never pass through the leader (same segment until
		// the end of the road)
		if lo > fo+1 || lo > 4900 {
			continue
		}
		if fo > lo-1 {
			t.Fatalf("step %d: follower %.1f overlapped leader %.1f", i, fo, lo)
		}
	}
}

func TestVehiclesProgress(t *testing.T) {
	net, eb := testNet(t)
	m := NewRoadModel(net, rand.New(rand.NewSource(3)), ContinueRandom)
	id := m.AddVehicle(eb, 0, 0, DefaultIDM(30), Car)
	for i := 0; i < 100; i++ {
		m.Advance(0.1)
	}
	for _, s := range m.States() {
		if s.ID == id && s.Offset < 200 {
			t.Fatalf("vehicle moved only %.1f m in 10 s", s.Offset)
		}
	}
}

func TestJunctionTransitionKeepsMoving(t *testing.T) {
	net, err := roadnet.Ring(2000, 8, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(4)), ContinueRandom)
	m.AddVehicle(0, 0, 0, DefaultIDM(25), Car)
	total := 0.0
	prev := m.States()[0]
	for i := 0; i < 2000; i++ {
		m.Advance(0.1)
		cur := m.States()[0]
		total += prev.Pos.Dist(cur.Pos)
		prev = cur
	}
	// 200 s at ~25 m/s ≈ 5000 m: the vehicle loops the 2 km ring without
	// parking at segment ends
	if total < 3000 {
		t.Fatalf("vehicle travelled only %.0f m on the ring", total)
	}
}

func TestStatesFields(t *testing.T) {
	net, eb := testNet(t)
	m := NewRoadModel(net, rand.New(rand.NewSource(5)), ContinueRandom)
	m.AddVehicle(eb, 1, 100, DefaultIDM(25), Bus)
	s := m.States()[0]
	if s.Class != Bus {
		t.Fatalf("class = %v", s.Class)
	}
	if s.Lane != 1 || s.Segment != eb {
		t.Fatalf("lane/segment = %d/%d", s.Lane, s.Segment)
	}
	if s.Vel.X <= 0 {
		t.Fatalf("velocity = %v, want eastbound", s.Vel)
	}
	if math.Abs(s.Speed-s.Vel.Len()) > 1e-9 {
		t.Fatalf("speed %v != |vel| %v", s.Speed, s.Vel.Len())
	}
}

func TestAddVehicleClamping(t *testing.T) {
	net, eb := testNet(t)
	m := NewRoadModel(net, rand.New(rand.NewSource(6)), ContinueRandom)
	m.AddVehicle(eb, 99, 100, DefaultIDM(25), Car) // lane clamped
	m.AddVehicle(eb, -1, 100, DefaultIDM(25), Car)
	for _, s := range m.States() {
		if s.Lane < 0 || s.Lane >= net.Segment(eb).Lanes {
			t.Fatalf("lane %d out of range", s.Lane)
		}
	}
}

func TestPopulateUniformAndDeterministic(t *testing.T) {
	net, _ := testNet(t)
	build := func(seed int64) []State {
		m := NewRoadModel(net, rand.New(rand.NewSource(99)), ContinueRandom)
		Populate(m, rand.New(rand.NewSource(seed)), PopulateOptions{
			Count: 40, SpeedMean: 30, SpeedStd: 5,
		})
		return m.States()
	}
	a, b := build(7), build(7)
	if len(a) != 40 {
		t.Fatalf("populated %d vehicles", len(a))
	}
	for i := range a {
		if a[i].Pos != b[i].Pos {
			t.Fatal("populate not deterministic for equal seeds")
		}
	}
	c := build(8)
	same := true
	for i := range a {
		if a[i].Pos != c[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestAddBusLine(t *testing.T) {
	net, err := roadnet.Ring(4000, 8, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	var route []roadnet.SegmentID
	for i := 0; i < net.Segments(); i++ {
		route = append(route, roadnet.SegmentID(i))
	}
	ids := AddBusLine(m, route, 3, 20)
	if len(ids) != 3 {
		t.Fatalf("bus count = %d", len(ids))
	}
	for _, s := range m.States() {
		if s.Class != Bus {
			t.Fatalf("class = %v", s.Class)
		}
	}
	// buses stay on the ring over a long run
	for i := 0; i < 3000; i++ {
		m.Advance(0.1)
	}
	if got := m.Len(); got != 3 {
		t.Fatalf("buses despawned: %d left", got)
	}
	if ids2 := AddBusLine(m, nil, 3, 20); ids2 != nil {
		t.Fatal("empty route produced buses")
	}
}

func TestDespawnPolicy(t *testing.T) {
	// on a plain two-junction one-way road, Despawn removes vehicles at
	// the end
	b := roadnet.NewBuilder()
	a := b.AddJunction(geom.V(0, 0))
	c := b.AddJunction(geom.V(500, 0))
	seg := b.AddSegment(a, c, 1, 3.5, 30)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), Despawn)
	m.AddVehicle(seg, 0, 450, DefaultIDM(30), Car)
	for i := 0; i < 200; i++ {
		m.Advance(0.1)
	}
	if m.Len() != 0 {
		t.Fatalf("vehicle not despawned at road end: %d left", m.Len())
	}
}

func TestRemoveVehicleMidRun(t *testing.T) {
	net, eb, _, err := roadnet.Highway(2000, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	a := m.AddVehicle(eb, 0, 100, DefaultIDM(30), Car)
	bID := m.AddVehicle(eb, 1, 300, DefaultIDM(25), Car)
	m.Advance(0.1)
	if !m.Has(a) || !m.Has(bID) {
		t.Fatal("vehicles missing before removal")
	}
	if !m.RemoveVehicle(a) {
		t.Fatal("RemoveVehicle reported absent vehicle")
	}
	if m.RemoveVehicle(a) {
		t.Fatal("double removal succeeded")
	}
	if m.Has(a) {
		t.Fatal("removed vehicle still present")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after removal", m.Len())
	}
	// the model keeps advancing and the removed ID never reappears
	for i := 0; i < 50; i++ {
		m.Advance(0.1)
		for _, s := range m.States() {
			if s.ID == a {
				t.Fatal("removed vehicle reappeared in States")
			}
		}
	}
	// a vehicle spawned after the removal gets a fresh, never-reused ID
	c := m.AddVehicle(eb, 0, 50, DefaultIDM(28), Car)
	if c == a {
		t.Fatal("vehicle ID reused after removal")
	}
	m.Advance(0.1)
	if m.Len() != 2 {
		t.Fatalf("Len = %d after mid-run spawn", m.Len())
	}
}
