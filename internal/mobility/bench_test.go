package mobility

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/roadnet"
)

func benchModel(b *testing.B, vehicles int) *RoadModel {
	b.Helper()
	net, eb, wb, err := roadnet.Highway(2000, 2, 33)
	if err != nil {
		b.Fatal(err)
	}
	m := NewRoadModel(net, rand.New(rand.NewSource(1)), ContinueRandom)
	for i := 0; i < vehicles; i++ {
		seg := eb
		if i%2 == 1 {
			seg = wb
		}
		m.AddVehicle(seg, i%2, float64(i)*7, DefaultIDM(30), Car)
	}
	return m
}

// BenchmarkAdvance measures one IDM mobility tick for 200 vehicles.
func BenchmarkAdvance(b *testing.B) {
	m := benchModel(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Advance(0.1)
	}
}

// BenchmarkStates measures the per-tick kinematic snapshot the network
// stack polls (200 vehicles).
func BenchmarkStates(b *testing.B) {
	m := benchModel(b, 200)
	m.Advance(0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if len(m.States()) == 0 {
			b.Fatal("no states")
		}
	}
}
