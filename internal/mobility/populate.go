package mobility

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/roadnet"
)

// PopulateOptions control random vehicle placement.
type PopulateOptions struct {
	// Count is the number of vehicles to place.
	Count int
	// SpeedMean and SpeedStd draw each vehicle's desired speed from a
	// normal distribution (the survey's standard assumption), clamped to
	// [5, segment limit + 10%].
	SpeedMean, SpeedStd float64
	// Segments restricts placement to these segments; empty means all.
	Segments []roadnet.SegmentID
	// Class tags the spawned vehicles; zero means Car.
	Class Class
}

// Populate scatters vehicles uniformly over segments and lanes with
// normally distributed desired speeds. It returns the spawned IDs.
func Populate(m *RoadModel, rng *rand.Rand, opts PopulateOptions) []VehicleID {
	segs := opts.Segments
	if len(segs) == 0 {
		for i := 0; i < m.Network().Segments(); i++ {
			segs = append(segs, roadnet.SegmentID(i))
		}
	}
	class := opts.Class
	if class == 0 {
		class = Car
	}
	// weight segments by length so density is uniform per meter
	total := 0.0
	lens := make([]float64, len(segs))
	for i, s := range segs {
		lens[i] = m.Network().Segment(s).Length()
		total += lens[i]
	}
	ids := make([]VehicleID, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		pick := rng.Float64() * total
		idx := 0
		for pick > lens[idx] && idx < len(segs)-1 {
			pick -= lens[idx]
			idx++
		}
		seg := m.Network().Segment(segs[idx])
		lane := rng.Intn(seg.Lanes)
		offset := rng.Float64() * seg.Length()
		speed := opts.SpeedMean + opts.SpeedStd*rng.NormFloat64()
		if speed < 5 {
			speed = 5
		}
		if speed > seg.SpeedLimit*1.1 {
			speed = seg.SpeedLimit * 1.1
		}
		params := DefaultIDM(speed)
		ids = append(ids, m.AddVehicle(segs[idx], lane, offset, params, class))
	}
	return ids
}

// NewHighwayModel builds a bidirectional two-lane highway populated with
// count vehicles scattered over the carriageways, model and scatter
// sharing one rng stream. It is the canonical trace-generation pipeline:
// cmd/tracegen, the harness trace-replay experiment, and the FCD
// round-trip golden test all record from a model built here, so the
// recording contract lives in exactly one place.
func NewHighwayModel(rng *rand.Rand, count int, length, speedMean, speedStd float64) (*RoadModel, error) {
	net, eb, wb, err := roadnet.Highway(length, 2, speedMean+10)
	if err != nil {
		return nil, err
	}
	m := NewRoadModel(net, rng, ContinueRandom)
	Populate(m, rng, PopulateOptions{
		Count: count, SpeedMean: speedMean, SpeedStd: speedStd,
		Segments: []roadnet.SegmentID{eb, wb},
	})
	return m, nil
}

// AddBusLine places count buses evenly spaced along the route and pins
// their route to loop over it, modelling Kitani's message ferries on
// regular routes.
func AddBusLine(m *RoadModel, route []roadnet.SegmentID, count int, speed float64) []VehicleID {
	if len(route) == 0 || count <= 0 {
		return nil
	}
	total := 0.0
	for _, s := range route {
		total += m.Network().Segment(s).Length()
	}
	ids := make([]VehicleID, 0, count)
	for i := 0; i < count; i++ {
		target := total * float64(i) / float64(count)
		segIdx := 0
		for target > m.Network().Segment(route[segIdx]).Length() && segIdx < len(route)-1 {
			target -= m.Network().Segment(route[segIdx]).Length()
			segIdx++
		}
		params := DefaultIDM(speed)
		params.Length = 12 // buses are longer
		id := m.AddVehicle(route[segIdx], 0, target, params, Bus)
		// Pin the remaining loop as the route; RoadModel re-loops via
		// ContinueRandom exits, but buses keep an explicit cyclic route.
		var pending []roadnet.SegmentID
		for k := 1; k < 64; k++ { // long enough horizon for any run
			pending = append(pending, route[(segIdx+k)%len(route)])
		}
		m.SetRoute(id, pending)
		ids = append(ids, id)
	}
	return ids
}
