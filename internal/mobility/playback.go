package mobility

import (
	"math"
	"sort"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/geom"
)

// Waypoint is one sampled trace point of one vehicle.
type Waypoint struct {
	T     float64
	Pos   geom.Vec2
	Speed float64
}

// Track is the time-ordered trajectory of one vehicle.
type Track struct {
	ID        VehicleID
	Waypoints []Waypoint
	Class     Class
}

// Span returns the track's active window [first, last] — the times of its
// first and last waypoint. Tracks with no waypoints return (0, -1), an
// empty window.
func (t *Track) Span() (first, last float64) {
	if len(t.Waypoints) == 0 {
		return 0, -1
	}
	return t.Waypoints[0].T, t.Waypoints[len(t.Waypoints)-1].T
}

// PlaybackModel replays recorded trajectories (e.g. parsed from a SUMO
// floating-car-data export) as a mobility model, interpolating positions
// linearly between waypoints.
//
// Every track has an active window: the closed interval from its first to
// its last waypoint. Outside that window the vehicle does not exist —
// StatesInto omits it, so a network stack polling the model sees the
// vehicle join the world when its trace begins and leave when it ends,
// exactly like a SUMO vehicle entering and completing its route. (Earlier
// versions parked out-of-window vehicles at the nearest endpoint with zero
// velocity, where they kept receiving and forwarding packets as phantom
// relays.)
type PlaybackModel struct {
	tracks []Track
	now    float64
}

// NewPlayback returns a playback model over the given tracks. Waypoints of
// each track are sorted by time.
func NewPlayback(tracks []Track) *PlaybackModel {
	for i := range tracks {
		wps := tracks[i].Waypoints
		sort.Slice(wps, func(a, b int) bool { return wps[a].T < wps[b].T })
		if tracks[i].Class == 0 {
			tracks[i].Class = Car
		}
	}
	return &PlaybackModel{tracks: tracks}
}

// Len implements Model: the number of vehicles currently inside their
// active window.
func (m *PlaybackModel) Len() int {
	n := 0
	for i := range m.tracks {
		if first, last := m.tracks[i].Span(); m.now >= first && m.now <= last {
			n++
		}
	}
	return n
}

// Tracks returns the number of tracks, active or not.
func (m *PlaybackModel) Tracks() int { return len(m.tracks) }

// Advance implements Model.
func (m *PlaybackModel) Advance(dt float64) { m.now += dt }

// Now returns the playback clock.
func (m *PlaybackModel) Now() float64 { return m.now }

// DigestInto folds the playback state into d. The tracks themselves are
// immutable input data reproduced by the scenario rebuild, so only the
// clock and the track count participate.
func (m *PlaybackModel) DigestInto(d *digest.Writer) {
	d.F64(m.now)
	d.Int(len(m.tracks))
}

// States implements Model.
func (m *PlaybackModel) States() []State {
	return m.StatesInto(make([]State, 0, len(m.tracks)))
}

// StatesInto implements Model: it appends the state of every track whose
// active window contains the current playback time. Vehicles before their
// first or after their last waypoint are absent, not parked.
func (m *PlaybackModel) StatesInto(dst []State) []State {
	for i := range m.tracks {
		tr := &m.tracks[i]
		first, last := tr.Span()
		if m.now < first || m.now > last {
			continue
		}
		pos, vel, speed := interpolate(tr.Waypoints, m.now)
		dst = append(dst, State{
			ID:    tr.ID,
			Pos:   pos,
			Vel:   vel,
			Speed: speed,
			Class: tr.Class,
		})
	}
	return dst
}

func interpolate(wps []Waypoint, t float64) (pos, vel geom.Vec2, speed float64) {
	if t <= wps[0].T {
		return wps[0].Pos, geom.Vec2{}, 0
	}
	last := wps[len(wps)-1]
	if t >= last.T {
		return last.Pos, geom.Vec2{}, 0
	}
	idx := sort.Search(len(wps), func(i int) bool { return wps[i].T > t }) - 1
	a, b := wps[idx], wps[idx+1]
	span := b.T - a.T
	if span <= 0 {
		return a.Pos, geom.Vec2{}, a.Speed
	}
	frac := (t - a.T) / span
	pos = geom.Lerp(a.Pos, b.Pos, frac)
	vel = b.Pos.Sub(a.Pos).Scale(1 / span)
	speed = a.Speed + frac*(b.Speed-a.Speed)
	if speed == 0 {
		speed = vel.Len()
	}
	if math.IsNaN(speed) {
		speed = 0
	}
	return pos, vel, speed
}

// Record samples a model's states at fixed intervals for duration seconds,
// producing tracks suitable for SUMO FCD export or later playback. It
// advances the model as a side effect.
func Record(m Model, interval, duration float64) []Track {
	byID := make(map[VehicleID]*Track)
	var order []VehicleID
	for t := 0.0; t <= duration+1e-9; t += interval {
		for _, s := range m.States() {
			tr, ok := byID[s.ID]
			if !ok {
				tr = &Track{ID: s.ID, Class: s.Class}
				byID[s.ID] = tr
				order = append(order, s.ID)
			}
			tr.Waypoints = append(tr.Waypoints, Waypoint{T: t, Pos: s.Pos, Speed: s.Speed})
		}
		m.Advance(interval)
	}
	out := make([]Track, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
