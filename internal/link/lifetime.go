// Package link implements the paper's link-lifetime analytical framework
// (Sec. IV-A). Given the kinematics of a sender i and receiver j and the
// communication range r, it solves Eqn (4), d_t = r·I(i,j), for the first
// time the inter-vehicle distance reaches the range boundary:
//
//	S(t)  = ∫₀ᵗ v(x) dx                  (Eqn 1, distance travelled)
//	d_t   = S_i(t) − S_j(t) + d₀          (Eqn 2, inter-vehicle distance)
//	I(i,j)= 1 if d_t > 0, −1 otherwise    (Eqn 3, ahead indicator)
//	break when d_t = r · I(i,j)           (Eqn 4)
//
// The solver covers the constant-speed case in closed form, the
// constant-acceleration case (with speeds clamped to [0, vmax], matching
// the paper's speed-limit v_m) piecewise in closed form, and arbitrary
// speed profiles numerically. The lifetime of a routing path is the
// minimum lifetime of its links.
package link

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
)

// Forever is the lifetime reported for links that never break under the
// modelled kinematics (e.g. identical constant velocities).
const Forever = math.MaxFloat64

// Kinematics1D describes a vehicle's motion projected onto the road axis:
// position X in meters, speed V in m/s (signed: positive along the axis),
// and acceleration A in m/s².
type Kinematics1D struct {
	X, V, A float64
}

// Indicator implements Eqn (3): it reports +1 when vehicle i will be ahead
// of j at the moment the link breaks and −1 otherwise. For an unbreakable
// link it falls back to the sign of the current gap.
func Indicator(i, j Kinematics1D, r, vmax float64) int {
	t := Lifetime(i, j, r, vmax)
	var d float64
	if t == Forever {
		d = i.X - j.X
	} else {
		d = displacement(i, t, vmax) - displacement(j, t, vmax) + (i.X - j.X)
	}
	if d > 0 {
		return 1
	}
	return -1
}

// speedBounds returns the clamp interval of a vehicle's signed speed. The
// sign of V encodes the direction of travel along the axis: a vehicle
// saturates at the speed limit in its own direction and brakes to a stop
// without reversing. Stationary vehicles may start moving either way.
func speedBounds(k Kinematics1D, vmax float64) (lo, hi float64) {
	switch {
	case k.V > 0:
		return 0, vmax
	case k.V < 0:
		return -vmax, 0
	default:
		return -vmax, vmax
	}
}

// displacement returns S(t) for clamped constant-acceleration motion:
// v(x) = clamp(V + A·x, lo, hi) with direction-preserving bounds.
func displacement(k Kinematics1D, t, vmax float64) float64 {
	if t <= 0 {
		return 0
	}
	lo, hi := speedBounds(k, vmax)
	v0 := clamp(k.V, lo, hi)
	if k.A == 0 {
		return v0 * t
	}
	// Time at which speed saturates (hits lo or hi).
	var vSat float64
	if k.A > 0 {
		vSat = hi
	} else {
		vSat = lo
	}
	tSat := (vSat - v0) / k.A
	if tSat < 0 {
		tSat = 0
	}
	if t <= tSat {
		return v0*t + 0.5*k.A*t*t
	}
	return v0*tSat + 0.5*k.A*tSat*tSat + vSat*(t-tSat)
}

// Lifetime returns the time until the i–j link breaks under clamped
// constant-acceleration motion, solving Eqn (4). It returns Forever when
// the distance never reaches r. Vehicles whose current distance already
// exceeds r have lifetime 0: the link is down.
func Lifetime(i, j Kinematics1D, r, vmax float64) float64 {
	if r <= 0 {
		return 0
	}
	d0 := i.X - j.X
	if math.Abs(d0) > r {
		return 0
	}
	// The relative displacement g(t) = d_t is piecewise quadratic with
	// breakpoints where either vehicle's speed saturates at 0 or vmax.
	// Walk the pieces in order and solve |g(t)| = r on each.
	breaks := saturationTimes(i, vmax)
	breaks = append(breaks, saturationTimes(j, vmax)...)
	breaks = append(breaks, 0)
	sortFloats(breaks)

	const horizon = 24 * 3600 // beyond a day the link is effectively stable
	prev := 0.0
	for idx := 0; idx <= len(breaks); idx++ {
		var end float64
		if idx < len(breaks) {
			end = breaks[idx]
		} else {
			end = horizon
		}
		if end <= prev {
			continue
		}
		if t, ok := solvePiece(i, j, prev, end, r, vmax); ok {
			return t
		}
		prev = end
	}
	return Forever
}

// solvePiece solves |d(t)| = r on [t0, t1] where both speeds evolve
// without saturating inside the open interval, so d(t) is a single
// quadratic there.
func solvePiece(i, j Kinematics1D, t0, t1, r, vmax float64) (float64, bool) {
	// Effective kinematics at t0.
	vi, ai := speedAt(i, t0, vmax)
	vj, aj := speedAt(j, t0, vmax)
	d0 := (i.X - j.X) + displacement(i, t0, vmax) - displacement(j, t0, vmax)
	dv := vi - vj
	da := ai - aj
	// d(t0+s) = d0 + dv·s + da/2·s², s in [0, t1-t0].
	span := t1 - t0
	best := math.Inf(1)
	for _, target := range [2]float64{r, -r} {
		for _, s := range quadRoots(0.5*da, dv, d0-target) {
			if s >= 0 && s <= span && s < best {
				best = s
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return t0 + best, true
}

// speedAt returns the speed and remaining acceleration of k at time t under
// clamping. The saturation comparison carries a small tolerance so that
// evaluation exactly at a saturation breakpoint (where floating-point
// error can leave v a hair short of the bound) does not extrapolate
// phantom acceleration into the following piece.
func speedAt(k Kinematics1D, t, vmax float64) (v, a float64) {
	const eps = 1e-9
	lo, hi := speedBounds(k, vmax)
	v0 := clamp(k.V, lo, hi)
	if k.A == 0 {
		return v0, 0
	}
	v = v0 + k.A*t
	if k.A > 0 && v >= hi-eps {
		return hi, 0
	}
	if k.A < 0 && v <= lo+eps {
		return lo, 0
	}
	return v, k.A
}

// saturationTimes returns the times at which k's speed hits a clamp bound.
func saturationTimes(k Kinematics1D, vmax float64) []float64 {
	if k.A == 0 {
		return nil
	}
	lo, hi := speedBounds(k, vmax)
	v0 := clamp(k.V, lo, hi)
	var bound float64
	if k.A > 0 {
		bound = hi
	} else {
		bound = lo
	}
	t := (bound - v0) / k.A
	if t <= 0 {
		return nil
	}
	return []float64{t}
}

// quadRoots returns the real roots of a·x² + b·x + c = 0. Degenerate
// (linear, constant) cases are handled.
func quadRoots(a, b, c float64) []float64 {
	r1, r2, n := quadRoots2(a, b, c)
	switch n {
	case 1:
		return []float64{r1}
	case 2:
		return []float64{r1, r2}
	default:
		return nil
	}
}

// quadRoots2 is the allocation-free form of quadRoots, for hot paths (the
// per-decision LifetimeVec behind the reliability plane's memo): it
// returns up to two real roots and their count, computed with the exact
// arithmetic of quadRoots so results stay bit-identical.
func quadRoots2(a, b, c float64) (r1, r2 float64, n int) {
	const eps = 1e-12
	if math.Abs(a) < eps {
		if math.Abs(b) < eps {
			return 0, 0, 0
		}
		return -c / b, 0, 1
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, 0
	}
	sq := math.Sqrt(disc)
	// Numerically stable form.
	var q float64
	if b >= 0 {
		q = -0.5 * (b + sq)
	} else {
		q = -0.5 * (b - sq)
	}
	r1 = q / a
	if sq == 0 {
		return r1, 0, 1
	}
	return r1, c / q, 2
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortFloats(s []float64) {
	// insertion sort: slices here hold at most three values.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// LifetimeVec returns the link lifetime for two vehicles moving with
// constant planar velocities: the first t ≥ 0 with |Δp + Δv·t| = r. This is
// the 2-D generalisation used by routers that consume beacon positions and
// velocities directly.
func LifetimeVec(pi, vi, pj, vj geom.Vec2, r float64) float64 {
	dp := pi.Sub(pj)
	dv := vi.Sub(vj)
	if dp.Len() > r {
		return 0
	}
	a := dv.LenSq()
	if a == 0 {
		return Forever
	}
	b := 2 * dp.Dot(dv)
	c := dp.LenSq() - r*r
	r1, r2, n := quadRoots2(a, b, c)
	best := math.Inf(1)
	if n >= 1 && r1 >= 0 && r1 < best {
		best = r1
	}
	if n >= 2 && r2 >= 0 && r2 < best {
		best = r2
	}
	if math.IsInf(best, 1) {
		return Forever
	}
	return best
}

// LifetimeNumeric integrates arbitrary speed profiles vi(t), vj(t) (signed
// speeds along the axis) with step dt and returns the first crossing of
// |d| = r within horizon, refined by bisection to dt/64 resolution. It
// returns Forever when no crossing occurs.
func LifetimeNumeric(vi, vj func(t float64) float64, d0, r, horizon, dt float64) float64 {
	if math.Abs(d0) > r {
		return 0
	}
	if dt <= 0 {
		dt = 0.01
	}
	d := d0
	t := 0.0
	for t < horizon {
		// trapezoidal step of the relative displacement
		next := t + dt
		rel0 := vi(t) - vj(t)
		rel1 := vi(next) - vj(next)
		dNext := d + 0.5*(rel0+rel1)*dt
		if math.Abs(dNext) >= r {
			// bisection refine within [t, next]
			lo, hi := t, next
			dLo := d
			for k := 0; k < 20; k++ {
				mid := 0.5 * (lo + hi)
				relM := vi(lo) - vj(lo)
				relMid := vi(mid) - vj(mid)
				dMid := dLo + 0.5*(relM+relMid)*(mid-lo)
				if math.Abs(dMid) >= r {
					hi = mid
				} else {
					lo = mid
					dLo = dMid
				}
			}
			return hi
		}
		d = dNext
		t = next
	}
	return Forever
}

// PathLifetime implements the paper's composition rule: "the lifetime of
// the routing path is the minimum lifetime of all links involved". An empty
// path lives forever (a node talking to itself).
func PathLifetime(links []float64) float64 {
	min := Forever
	for _, l := range links {
		if l < min {
			min = l
		}
	}
	return min
}
