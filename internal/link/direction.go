package link

import (
	"math"

	"github.com/vanetlab/relroute/internal/geom"
)

// DirectionClass buckets a pair of vehicle velocities the way the surveyed
// mobility-based protocols do: Taleb groups vehicles by velocity vector and
// prefers links whose endpoints move together; Abedi treats direction as
// the most important next-hop parameter.
type DirectionClass int

const (
	// SameDirection means both velocity projections agree along the axis
	// joining the vehicles (Fig. 4's decomposition rule).
	SameDirection DirectionClass = iota + 1
	// OppositeDirection means the horizontal projections conflict: the
	// vehicles approach or separate head-on, giving the shortest links.
	OppositeDirection
	// CrossingDirection means the perpendicular components conflict while
	// the along-axis ones agree (e.g. a turning vehicle).
	CrossingDirection
	// Stationary means at least one vehicle is not moving; direction
	// carries no information.
	Stationary
)

// String implements fmt.Stringer.
func (c DirectionClass) String() string {
	switch c {
	case SameDirection:
		return "same"
	case OppositeDirection:
		return "opposite"
	case CrossingDirection:
		return "crossing"
	case Stationary:
		return "stationary"
	default:
		return "unknown"
	}
}

// Classify applies the Fig. 4 decomposition: project both velocities on the
// axis joining vehicle a to vehicle b and on its perpendicular, then
// compare signs of the projections.
func Classify(posA, velA, posB, velB geom.Vec2) DirectionClass {
	const still = 0.1 // m/s below which a vehicle counts as stationary
	if velA.Len() < still || velB.Len() < still {
		return Stationary
	}
	axis := posB.Sub(posA).Unit()
	if axis.IsZero() {
		axis = geom.V(1, 0)
	}
	perp := geom.V(-axis.Y, axis.X)
	ah, bh := velA.Dot(axis), velB.Dot(axis)
	av, bv := velA.Dot(perp), velB.Dot(perp)
	const tol = 1e-9
	horizontalAgree := ah*bh >= -tol
	verticalAgree := av*bv >= -tol
	switch {
	case horizontalAgree && verticalAgree:
		return SameDirection
	case !horizontalAgree:
		return OppositeDirection
	default:
		return CrossingDirection
	}
}

// HeadingGroup assigns a velocity to one of four heading quadrants
// (N/E/S/W), the grouping Taleb's protocol uses to cluster vehicles with
// similar velocity vectors.
func HeadingGroup(vel geom.Vec2) int {
	if vel.Len() < 0.1 {
		return 0 // stationary group
	}
	ang := math.Atan2(vel.Y, vel.X) // (-π, π]
	switch {
	case ang >= -math.Pi/4 && ang < math.Pi/4:
		return 1 // east
	case ang >= math.Pi/4 && ang < 3*math.Pi/4:
		return 2 // north
	case ang >= -3*math.Pi/4 && ang < -math.Pi/4:
		return 4 // south
	default:
		return 3 // west
	}
}

// SpeedSimilarity returns a score in [0,1] expressing how alike two speeds
// are; 1 means identical. Abedi's protocol uses speed as its third
// selection criterion after direction and position.
func SpeedSimilarity(va, vb geom.Vec2) float64 {
	sa, sb := va.Len(), vb.Len()
	if sa == 0 && sb == 0 {
		return 1
	}
	max := math.Max(sa, sb)
	return 1 - math.Abs(sa-sb)/max
}
