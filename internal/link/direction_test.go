package link

import (
	"math"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

func TestClassify(t *testing.T) {
	a := geom.V(0, 0)
	b := geom.V(100, 0)
	tests := []struct {
		name       string
		velA, velB geom.Vec2
		want       DirectionClass
	}{
		{"both-east", geom.V(30, 0), geom.V(25, 0), SameDirection},
		{"head-on", geom.V(30, 0), geom.V(-25, 0), OppositeDirection},
		{"a-stationary", geom.V(0, 0), geom.V(25, 0), Stationary},
		{"b-stationary", geom.V(30, 0), geom.V(0.01, 0), Stationary},
		{"crossing", geom.V(30, 5), geom.V(25, -5), CrossingDirection},
		{"both-west", geom.V(-30, 0), geom.V(-25, 0), SameDirection},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(a, tc.velA, b, tc.velB); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassifySymmetricRoles(t *testing.T) {
	// swapping the pair must not change same/opposite classification
	a, b := geom.V(0, 0), geom.V(80, 40)
	va, vb := geom.V(20, 10), geom.V(-15, -8)
	if Classify(a, va, b, vb) != Classify(b, vb, a, va) {
		t.Error("classification not symmetric under swapping the pair")
	}
}

func TestDirectionClassString(t *testing.T) {
	for cls, want := range map[DirectionClass]string{
		SameDirection:     "same",
		OppositeDirection: "opposite",
		CrossingDirection: "crossing",
		Stationary:        "stationary",
		DirectionClass(0): "unknown",
	} {
		if cls.String() != want {
			t.Errorf("%d.String() = %q, want %q", cls, cls.String(), want)
		}
	}
}

func TestHeadingGroup(t *testing.T) {
	tests := []struct {
		vel  geom.Vec2
		want int
	}{
		{geom.V(30, 0), 1},  // east
		{geom.V(0, 30), 2},  // north
		{geom.V(-30, 0), 3}, // west
		{geom.V(0, -30), 4}, // south
		{geom.V(0, 0), 0},   // stationary
		{geom.V(20, 20.1), 2},
		{geom.V(20, -19), 1},
	}
	for _, tc := range tests {
		if got := HeadingGroup(tc.vel); got != tc.want {
			t.Errorf("HeadingGroup(%v) = %d, want %d", tc.vel, got, tc.want)
		}
	}
}

func TestHeadingGroupCoversCircle(t *testing.T) {
	// every moving heading falls in exactly one of groups 1..4
	for deg := 0; deg < 360; deg++ {
		rad := float64(deg) * math.Pi / 180
		v := geom.V(10*math.Cos(rad), 10*math.Sin(rad))
		g := HeadingGroup(v)
		if g < 1 || g > 4 {
			t.Fatalf("heading %d° → group %d", deg, g)
		}
	}
}

func TestSpeedSimilarity(t *testing.T) {
	if got := SpeedSimilarity(geom.V(30, 0), geom.V(30, 0)); got != 1 {
		t.Errorf("identical speeds similarity = %v", got)
	}
	if got := SpeedSimilarity(geom.V(0, 0), geom.V(0, 0)); got != 1 {
		t.Errorf("both stationary similarity = %v", got)
	}
	if got := SpeedSimilarity(geom.V(30, 0), geom.V(15, 0)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half speed similarity = %v, want 0.5", got)
	}
	if got := SpeedSimilarity(geom.V(30, 0), geom.V(0, 0)); got != 0 {
		t.Errorf("stationary vs moving similarity = %v, want 0", got)
	}
	// direction does not matter, only magnitude
	if got := SpeedSimilarity(geom.V(30, 0), geom.V(0, 30)); got != 1 {
		t.Errorf("same magnitude different heading = %v, want 1", got)
	}
}

func TestSameDirectionLinksLiveLonger(t *testing.T) {
	// the Fig. 4 payoff, analytically: same-direction pair outlives the
	// opposite-direction pair with the same speeds and gap
	same := LifetimeVec(geom.V(0, 0), geom.V(30, 0), geom.V(100, 0), geom.V(25, 0), 250)
	opp := LifetimeVec(geom.V(0, 0), geom.V(30, 0), geom.V(100, 0), geom.V(-25, 0), 250)
	if same <= opp {
		t.Fatalf("same-direction lifetime %v not longer than opposite %v", same, opp)
	}
	if opp <= 0 || opp > 10 {
		t.Fatalf("opposite lifetime %v outside plausible (0,10]s", opp)
	}
}
