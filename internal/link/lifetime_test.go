package link

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vanetlab/relroute/internal/geom"
)

const (
	testRange = 250.0
	testVMax  = 40.0
)

func TestLifetimeConstantSpeed(t *testing.T) {
	tests := []struct {
		name string
		i, j Kinematics1D
		want float64
	}{
		// i behind j by 100 m, closing at 5 m/s: must first catch up 100m
		// then pull ahead 250 m => (250-(-100))/5 = 70? No: d0 = -100,
		// break at d=+250 if dv>0: t = (250-(-100))/5 = 70.
		{"closing-from-behind", Kinematics1D{X: -100, V: 30}, Kinematics1D{X: 0, V: 25}, 70},
		// i ahead by 100, pulling away at 5: (250-100)/5 = 30
		{"pulling-away-ahead", Kinematics1D{X: 100, V: 30}, Kinematics1D{X: 0, V: 25}, 30},
		// i behind by 100, falling back at 5: reaches -250: (250-100)/5 = 30
		{"falling-behind", Kinematics1D{X: -100, V: 25}, Kinematics1D{X: 0, V: 30}, 30},
		// equal speeds: never breaks
		{"equal-speeds", Kinematics1D{X: -100, V: 30}, Kinematics1D{X: 0, V: 30}, Forever},
		// opposite directions (projected): j backwards at 25, i forward 25:
		// closing at 50 from -100 → breaks at +250: 350/50 = 7
		{"opposite", Kinematics1D{X: -100, V: 25}, Kinematics1D{X: 0, V: 0}, 14},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Lifetime(tc.i, tc.j, testRange, testVMax)
			if tc.want == Forever {
				if got != Forever {
					t.Fatalf("lifetime = %v, want Forever", got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("lifetime = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLifetimeOutOfRange(t *testing.T) {
	i := Kinematics1D{X: 300, V: 30}
	j := Kinematics1D{X: 0, V: 30}
	if got := Lifetime(i, j, testRange, testVMax); got != 0 {
		t.Fatalf("already-broken link lifetime = %v, want 0", got)
	}
	if got := Lifetime(i, j, 0, testVMax); got != 0 {
		t.Fatalf("zero range lifetime = %v, want 0", got)
	}
}

func TestLifetimeWithAcceleration(t *testing.T) {
	// i starts equal speed but accelerates at 1 m/s² until vmax=40 from 30.
	// Gap grows quadratically: d(t) = 0.5·t² until saturation at t=10
	// (d=50), then linearly at 10 m/s. Break at 250: 50 + 10(t-10) = 250
	// → t = 30.
	i := Kinematics1D{X: 0, V: 30, A: 1}
	j := Kinematics1D{X: 0, V: 30}
	got := Lifetime(i, j, testRange, testVMax)
	if math.Abs(got-30) > 1e-9 {
		t.Fatalf("lifetime = %v, want 30", got)
	}
}

func TestLifetimeDecelerationToStop(t *testing.T) {
	// j brakes to a stop; i keeps 20 m/s. j stops after 2 s having moved
	// 10+... v0=10,a=-5: stops at t=2 (distance 10). i gains afterwards at
	// 20 m/s.
	i := Kinematics1D{X: 0, V: 20}
	j := Kinematics1D{X: 0, V: 10, A: -5}
	got := Lifetime(i, j, testRange, testVMax)
	// relative displacement: ∫(20 - v_j). At t=2: i moved 40, j moved 10
	// → d=30. After: closes at 20. 250-30 = 220 → t = 2 + 11 = 13.
	if math.Abs(got-13) > 1e-9 {
		t.Fatalf("lifetime = %v, want 13", got)
	}
}

func TestAnalyticMatchesNumericProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	speedFn := func(k Kinematics1D) func(float64) float64 {
		lo, hi := speedBounds(k, testVMax)
		return func(t float64) float64 { return clamp(k.V+k.A*t, lo, hi) }
	}
	for trial := 0; trial < 300; trial++ {
		i := Kinematics1D{
			X: rng.Float64()*400 - 200,
			V: rng.Float64()*2*testVMax - testVMax, // either direction
			A: rng.Float64()*4 - 2,
		}
		j := Kinematics1D{
			X: 0,
			V: rng.Float64()*2*testVMax - testVMax,
			A: rng.Float64()*4 - 2,
		}
		if math.Abs(i.X) > testRange {
			continue
		}
		analytic := Lifetime(i, j, testRange, testVMax)
		numeric := LifetimeNumeric(
			speedFn(i), speedFn(j),
			i.X-j.X, testRange, 2000, 0.0005,
		)
		if analytic == Forever && numeric == Forever {
			continue
		}
		if analytic == Forever || numeric == Forever {
			// borderline: accept when the finite one is huge
			finite := math.Min(analytic, numeric)
			if finite > 1500 {
				continue
			}
			t.Fatalf("trial %d: analytic=%v numeric=%v (i=%+v j=%+v)", trial, analytic, numeric, i, j)
		}
		tol := 0.01 * math.Max(numeric, 1)
		if math.Abs(analytic-numeric) > tol {
			t.Fatalf("trial %d: analytic=%v numeric=%v (i=%+v j=%+v)", trial, analytic, numeric, i, j)
		}
	}
}

func TestIndicatorAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		i := Kinematics1D{X: rng.Float64()*300 - 150, V: rng.Float64() * 40, A: rng.Float64()*2 - 1}
		j := Kinematics1D{X: 0, V: rng.Float64() * 40, A: rng.Float64()*2 - 1}
		if i.X == 0 {
			continue
		}
		if Lifetime(i, j, testRange, testVMax) == Forever {
			continue
		}
		if Indicator(i, j, testRange, testVMax) != -Indicator(j, i, testRange, testVMax) {
			t.Fatalf("trial %d: indicator not antisymmetric for i=%+v j=%+v", trial, i, j)
		}
	}
}

func TestIndicatorAheadSemantics(t *testing.T) {
	// i pulls ahead: at break i must be in front → +1
	i := Kinematics1D{X: 0, V: 35}
	j := Kinematics1D{X: 0, V: 25}
	if got := Indicator(i, j, testRange, testVMax); got != 1 {
		t.Fatalf("indicator = %d, want 1", got)
	}
	// i falls behind → -1
	i, j = j, i
	if got := Indicator(i, j, testRange, testVMax); got != -1 {
		t.Fatalf("indicator = %d, want -1", got)
	}
}

func TestLifetimeVec(t *testing.T) {
	// 2-D: B ahead 150 m on x, A closing at 8 m/s. A catches up, passes,
	// and the link breaks when A is 250 m AHEAD: (250+150)/8 = 50.
	got := LifetimeVec(geom.V(0, 0), geom.V(33, 0), geom.V(150, 0), geom.V(25, 0), 250)
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("lifetime = %v, want 50", got)
	}
	// same velocity: forever
	if got := LifetimeVec(geom.V(0, 0), geom.V(30, 0), geom.V(100, 0), geom.V(30, 0), 250); got != Forever {
		t.Fatalf("lifetime = %v, want Forever", got)
	}
	// already out of range
	if got := LifetimeVec(geom.V(0, 0), geom.V(30, 0), geom.V(300, 0), geom.V(30, 0), 250); got != 0 {
		t.Fatalf("lifetime = %v, want 0", got)
	}
}

func TestLifetimeVecMatchesScalar(t *testing.T) {
	// property: 1-D constant-speed cases agree between the two solvers
	f := func(x, vi, vj uint8) bool {
		d0 := float64(x%200) - 100
		i1 := Kinematics1D{X: d0, V: float64(vi % 40)}
		j1 := Kinematics1D{X: 0, V: float64(vj % 40)}
		a := Lifetime(i1, j1, testRange, testVMax)
		b := LifetimeVec(geom.V(d0, 0), geom.V(float64(vi%40), 0), geom.V(0, 0), geom.V(float64(vj%40), 0), testRange)
		if a == Forever || b == Forever {
			return a == b
		}
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLifetime(t *testing.T) {
	if got := PathLifetime(nil); got != Forever {
		t.Fatalf("empty path = %v", got)
	}
	if got := PathLifetime([]float64{10, 3, 25}); got != 3 {
		t.Fatalf("path lifetime = %v, want 3 (min rule)", got)
	}
}

func TestLifetimeNumericImmediateBreak(t *testing.T) {
	got := LifetimeNumeric(func(float64) float64 { return 0 }, func(float64) float64 { return 0 }, 300, 250, 100, 0.01)
	if got != 0 {
		t.Fatalf("numeric lifetime = %v, want 0", got)
	}
}

func TestQuadRoots(t *testing.T) {
	// x² - 3x + 2 = 0 → 1, 2
	roots := quadRoots(1, -3, 2)
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	lo, hi := math.Min(roots[0], roots[1]), math.Max(roots[0], roots[1])
	if math.Abs(lo-1) > 1e-12 || math.Abs(hi-2) > 1e-12 {
		t.Fatalf("roots = %v", roots)
	}
	// linear: 2x - 4 = 0
	roots = quadRoots(0, 2, -4)
	if len(roots) != 1 || roots[0] != 2 {
		t.Fatalf("linear roots = %v", roots)
	}
	// no real roots
	if roots = quadRoots(1, 0, 1); roots != nil {
		t.Fatalf("complex roots = %v", roots)
	}
	// constant
	if roots = quadRoots(0, 0, 3); roots != nil {
		t.Fatalf("constant roots = %v", roots)
	}
}
