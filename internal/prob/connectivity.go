package prob

import (
	"math"
	"math/rand"
)

// SegmentConnectivity models the probability that a road segment is
// multi-hop connected, the routing metric of the CAR protocol (Sec. VII-B):
// the segment is partitioned into grid cells the length of a car and "the
// probability of the connection between two vehicles is the probability
// that their distance is within a certain value (transmission range)"; a
// route over road segments with the highest connectivity product wins.
type SegmentConnectivity struct {
	// Length of the road segment in meters.
	Length float64
	// Density is the vehicle density in vehicles per meter.
	Density float64
	// Range is the communication range in meters.
	Range float64
	// CellSize is the grid granularity; CAR uses the average car length,
	// 5 m. Zero means 5.
	CellSize float64
}

func (s SegmentConnectivity) cell() float64 {
	if s.CellSize <= 0 {
		return 5
	}
	return s.CellSize
}

// PairProb returns the probability that two consecutive vehicles are within
// communication range, assuming exponential (free-flow Poisson) headways
// with the configured density: P(gap ≤ r) = 1 − exp(−λ·r).
func (s SegmentConnectivity) PairProb() float64 {
	if s.Density <= 0 {
		return 0
	}
	return 1 - math.Exp(-s.Density*s.Range)
}

// Prob returns the probability that the whole segment is connected, i.e.
// that every consecutive gap among the expected vehicles on the segment is
// within range. With n ≈ λ·L vehicles there are about n−1 independent
// exponential gaps, giving P ≈ (1 − e^{−λr})^{n−1}. Empty or single-vehicle
// segments count as connected only when they are shorter than the range
// (the endpoints can bridge them directly).
func (s SegmentConnectivity) Prob() float64 {
	if s.Length <= s.Range {
		return 1
	}
	n := s.Density * s.Length
	if n < 2 {
		return 0
	}
	gaps := n - 1
	return math.Pow(s.PairProb(), gaps)
}

// MonteCarlo estimates the connectivity probability empirically by placing
// Poisson(λL) vehicles uniformly on the segment and checking every gap
// (including the distances from the segment ends to the first and last
// vehicle, which a relaying endpoint must bridge). Tests compare it to the
// analytic approximation.
func (s SegmentConnectivity) MonteCarlo(trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	if s.Length <= s.Range {
		return 1
	}
	mean := s.Density * s.Length
	ok := 0
	pos := make([]float64, 0, int(mean)+8)
	for t := 0; t < trials; t++ {
		n := poisson(mean, rng)
		pos = pos[:0]
		for i := 0; i < n; i++ {
			pos = append(pos, rng.Float64()*s.Length)
		}
		sortInPlace(pos)
		if connectedChain(pos, s.Length, s.Range) {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// connectedChain reports whether a chain of relays at sorted positions
// bridges [0, L] with hops of at most r (treating 0 and L as the
// communicating endpoints).
func connectedChain(sorted []float64, length, r float64) bool {
	prev := 0.0
	for _, p := range sorted {
		if p-prev > r {
			return false
		}
		prev = p
	}
	return length-prev <= r
}

// poisson draws a Poisson variate with the given mean (Knuth for small
// means, normal approximation above 60).
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sortInPlace(s []float64) {
	// insertion sort keeps this allocation-free; segments hold tens of
	// vehicles at most.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RouteConnectivity composes per-segment connectivity probabilities along a
// candidate road route, CAR's path selection metric.
func RouteConnectivity(segments []SegmentConnectivity) float64 {
	p := 1.0
	for _, s := range segments {
		p *= s.Prob()
	}
	return p
}
