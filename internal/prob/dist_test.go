package prob

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.99865},
	}
	for _, tc := range tests {
		if got := n.CDF(tc.x); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	sum := 0.0
	const dx = 0.01
	for x := -20.0; x < 25; x += dx {
		sum += n.PDF(x) * dx
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("PDF integral = %v", sum)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 2}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalDegenerateSigma(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0}
	if n.CDF(2.9) != 0 || n.CDF(3.1) != 1 {
		t.Error("degenerate normal CDF should be a step at mu")
	}
	if n.PDF(3) != 0 {
		t.Error("degenerate normal PDF defined as 0")
	}
}

func TestSampleMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []struct {
		name string
		d    Dist
		tol  float64
	}{
		{"normal", Normal{Mu: 4, Sigma: 2}, 0.05},
		{"lognormal", LogNormal{Mu: 1, Sigma: 0.5}, 0.1},
		{"gamma", Gamma{Shape: 3, Scale: 2}, 0.1},
		{"gamma-sub1", Gamma{Shape: 0.5, Scale: 2}, 0.05},
		{"exponential", Exponential{Rate: 0.25}, 0.1},
		{"uniform", Uniform{Lo: -2, Hi: 6}, 0.05},
	}
	const n = 200000
	for _, tc := range dists {
		t.Run(tc.name, func(t *testing.T) {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += tc.d.Sample(rng)
			}
			got := sum / n
			want := tc.d.Mean()
			if math.Abs(got-want) > tc.tol*math.Max(math.Abs(want), 1) {
				t.Errorf("sample mean = %v, dist mean = %v", got, want)
			}
		})
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	dists := []Dist{
		Normal{Mu: 0, Sigma: 3},
		LogNormal{Mu: 0.5, Sigma: 1},
		Gamma{Shape: 2.5, Scale: 1.5},
		Exponential{Rate: 0.5},
		Uniform{Lo: 1, Hi: 9},
	}
	for _, d := range dists {
		prev := -1.0
		for x := -10.0; x <= 50; x += 0.25 {
			c := d.CDF(x)
			if c < 0 || c > 1 {
				t.Fatalf("%T CDF(%v) = %v out of [0,1]", d, x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%T CDF not monotone at %v: %v < %v", d, x, c, prev)
			}
			prev = c
		}
	}
}

func TestCDFMatchesSampleFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dists := []Dist{
		Gamma{Shape: 2, Scale: 3},
		LogNormal{Mu: 0, Sigma: 0.8},
		Exponential{Rate: 0.2},
	}
	const n = 100000
	for _, d := range dists {
		x := d.Mean()
		count := 0
		for i := 0; i < n; i++ {
			if d.Sample(rng) <= x {
				count++
			}
		}
		frac := float64(count) / n
		if got := d.CDF(x); math.Abs(got-frac) > 0.01 {
			t.Errorf("%T: CDF(mean)=%v but sample fraction=%v", d, got, frac)
		}
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, θ) is Exponential(1/θ)
	g := Gamma{Shape: 1, Scale: 2}
	e := Exponential{Rate: 0.5}
	for _, x := range []float64{0.1, 1, 3, 10} {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-9 {
			t.Errorf("Gamma(1,2).CDF(%v)=%v, Exp(0.5)=%v", x, g.CDF(x), e.CDF(x))
		}
	}
	// large-x regime exercises the continued fraction
	g2 := Gamma{Shape: 3, Scale: 1}
	if got := g2.CDF(30); math.Abs(got-1) > 1e-9 {
		t.Errorf("Gamma(3,1).CDF(30) = %v", got)
	}
}

func TestEdgeCases(t *testing.T) {
	if got := (Exponential{Rate: 0}).Mean(); !math.IsInf(got, 1) {
		t.Errorf("zero-rate exponential mean = %v", got)
	}
	if got := (Uniform{Lo: 5, Hi: 5}).PDF(5); got != 0 {
		t.Errorf("degenerate uniform PDF = %v", got)
	}
	if got := (Gamma{Shape: 1, Scale: 1}).PDF(0); got != 1 {
		t.Errorf("Gamma(1,1).PDF(0) = %v, want 1", got)
	}
	if got := (LogNormal{Mu: 0, Sigma: 1}).CDF(-1); got != 0 {
		t.Errorf("lognormal CDF(-1) = %v", got)
	}
}
