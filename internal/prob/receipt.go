package prob

import "math"

// ReceiptModel computes the receipt probability of a frame from the wireless
// signal-strength model, the basis of the REAR protocol (Sec. VII-B): "the
// receipt probability is computed by using the relationship between packet
// loss rate and received signal strength", with the loss composed of path
// loss and (log-normally distributed) shadowing/diffraction loss.
//
// Received power in dBm at distance d:
//
//	Prx(d) = TxPowerDBm − PL(d) + X,  X ~ N(0, ShadowSigmaDB²)
//	PL(d)  = RefLossDB + 10·PathLossExp·log10(d/RefDist)
//
// A frame is decodable when Prx exceeds RxThreshDBm, so
//
//	P(receipt | d) = Q((RxThreshDBm − meanPrx(d)) / ShadowSigmaDB)
type ReceiptModel struct {
	TxPowerDBm    float64 // transmit power, e.g. 20 dBm
	RefLossDB     float64 // path loss at the reference distance, e.g. 46.7 dB
	RefDist       float64 // reference distance in meters, e.g. 1 m
	PathLossExp   float64 // path loss exponent, 2 (free space) to 4 (urban)
	ShadowSigmaDB float64 // shadowing standard deviation in dB
	RxThreshDBm   float64 // receiver sensitivity
}

// DefaultReceiptModel returns parameters tuned so the mean decodable range
// is roughly 250 m, the nominal DSRC figure used throughout the repo.
func DefaultReceiptModel() ReceiptModel {
	return ReceiptModel{
		TxPowerDBm:    20,
		RefLossDB:     46.7,
		RefDist:       1,
		PathLossExp:   2.8,
		ShadowSigmaDB: 4,
		RxThreshDBm:   -94,
	}
}

// MeanRxPower returns the mean received power in dBm at distance d.
func (m ReceiptModel) MeanRxPower(d float64) float64 {
	if d < m.RefDist {
		d = m.RefDist
	}
	pl := m.RefLossDB + 10*m.PathLossExp*math.Log10(d/m.RefDist)
	return m.TxPowerDBm - pl
}

// Prob returns the receipt probability at distance d.
func (m ReceiptModel) Prob(d float64) float64 {
	if d <= 0 {
		return 1
	}
	mean := m.MeanRxPower(d)
	if m.ShadowSigmaDB <= 0 {
		if mean >= m.RxThreshDBm {
			return 1
		}
		return 0
	}
	z := (m.RxThreshDBm - mean) / m.ShadowSigmaDB
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ProbFromRSSI returns the receipt probability estimated from a measured
// RSSI sample instead of a distance, which is how REAR nodes estimate
// next-hop quality from overheard beacons.
func (m ReceiptModel) ProbFromRSSI(rssiDBm float64) float64 {
	if m.ShadowSigmaDB <= 0 {
		if rssiDBm >= m.RxThreshDBm {
			return 1
		}
		return 0
	}
	z := (m.RxThreshDBm - rssiDBm) / m.ShadowSigmaDB
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// MedianRange returns the distance at which the receipt probability is 0.5,
// found by bisection; useful for calibrating scenarios.
func (m ReceiptModel) MedianRange() float64 {
	lo, hi := m.RefDist, 10000.0
	if m.Prob(hi) > 0.5 {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if m.Prob(mid) > 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// PathReceiptProb composes per-hop receipt probabilities into an
// end-to-end delivery probability assuming hop independence, REAR's path
// metric.
func PathReceiptProb(hops []float64) float64 {
	p := 1.0
	for _, h := range hops {
		if h < 0 {
			h = 0
		}
		if h > 1 {
			h = 1
		}
		p *= h
	}
	return p
}
