package prob

import (
	"math"
	"testing"
)

func TestReceiptProbMonotoneInDistance(t *testing.T) {
	m := DefaultReceiptModel()
	prev := 1.1
	for d := 1.0; d <= 2000; d *= 1.4 {
		p := m.Prob(d)
		if p < 0 || p > 1 {
			t.Fatalf("Prob(%v) = %v out of [0,1]", d, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("Prob not decreasing at %v: %v > %v", d, p, prev)
		}
		prev = p
	}
	if got := m.Prob(0); got != 1 {
		t.Fatalf("Prob(0) = %v, want 1", got)
	}
}

func TestMedianRange(t *testing.T) {
	m := DefaultReceiptModel()
	r := m.MedianRange()
	if r < 100 || r > 600 {
		t.Fatalf("median range = %v m, outside plausible DSRC band", r)
	}
	if got := m.Prob(r); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("Prob(MedianRange) = %v, want 0.5", got)
	}
}

func TestProbFromRSSI(t *testing.T) {
	m := DefaultReceiptModel()
	// far above threshold: near-certain receipt
	if got := m.ProbFromRSSI(m.RxThreshDBm + 20); got < 0.99 {
		t.Errorf("strong RSSI receipt = %v", got)
	}
	// at threshold: 50%
	if got := m.ProbFromRSSI(m.RxThreshDBm); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("threshold RSSI receipt = %v, want 0.5", got)
	}
	// far below: near zero
	if got := m.ProbFromRSSI(m.RxThreshDBm - 20); got > 0.01 {
		t.Errorf("weak RSSI receipt = %v", got)
	}
}

func TestProbDeterministicWithoutShadowing(t *testing.T) {
	m := DefaultReceiptModel()
	m.ShadowSigmaDB = 0
	// step function at the threshold distance
	var edge float64
	for d := 1.0; d < 5000; d += 1 {
		if m.Prob(d) == 0 {
			edge = d
			break
		}
	}
	if edge == 0 {
		t.Fatal("no cutoff distance found")
	}
	if m.Prob(edge-2) != 1 {
		t.Fatalf("Prob just inside cutoff = %v, want 1", m.Prob(edge-2))
	}
}

func TestMeanRxPowerLogDistance(t *testing.T) {
	m := DefaultReceiptModel()
	// doubling the distance costs 10·n·log10(2) ≈ 3n dB
	drop := m.MeanRxPower(100) - m.MeanRxPower(200)
	want := 10 * m.PathLossExp * math.Log10(2)
	if math.Abs(drop-want) > 1e-9 {
		t.Fatalf("power drop per octave = %v, want %v", drop, want)
	}
	// below the reference distance the curve is flat
	if m.MeanRxPower(0.1) != m.MeanRxPower(m.RefDist) {
		t.Error("power not clamped at reference distance")
	}
}

func TestPathReceiptProb(t *testing.T) {
	if got := PathReceiptProb(nil); got != 1 {
		t.Errorf("empty path = %v", got)
	}
	if got := PathReceiptProb([]float64{0.9, 0.5}); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("product = %v", got)
	}
	// values clamped into [0,1]
	if got := PathReceiptProb([]float64{2, -1}); got != 0 {
		t.Errorf("clamped = %v", got)
	}
}
