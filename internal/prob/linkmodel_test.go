package prob

import (
	"math"
	"math/rand"
	"testing"
)

func TestDurationClosedForm(t *testing.T) {
	m := LinkDurationModel{Gap: 100, Range: 250, Horizon: 1000}
	// sender ahead (gap +100) pulling away at 5: (250-100)/5 = 30
	if got := m.Duration(5); math.Abs(got-30) > 1e-12 {
		t.Errorf("Duration(5) = %v, want 30", got)
	}
	// falling behind at 5: (250+100)/5 = 70
	if got := m.Duration(-5); math.Abs(got-70) > 1e-12 {
		t.Errorf("Duration(-5) = %v, want 70", got)
	}
	// zero relative speed: horizon
	if got := m.Duration(0); got != 1000 {
		t.Errorf("Duration(0) = %v, want horizon", got)
	}
	// already out of range
	broken := LinkDurationModel{Gap: 300, Range: 250}
	if got := broken.Duration(1); got != 0 {
		t.Errorf("broken Duration = %v, want 0", got)
	}
}

func TestExpectedDecreasesWithRelSpeed(t *testing.T) {
	prev := math.Inf(1)
	for _, mu := range []float64{0.5, 2, 5, 10, 20} {
		m := LinkDurationModel{
			RelSpeed: Normal{Mu: mu, Sigma: 1},
			Gap:      50, Range: 250, Horizon: 600,
		}
		e := m.Expected()
		if e >= prev {
			t.Fatalf("Expected not decreasing: mu=%v gives %v, previous %v", mu, e, prev)
		}
		prev = e
	}
}

func TestExpectedMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := LinkDurationModel{
		RelSpeed: Normal{Mu: 4, Sigma: 3},
		Gap:      -80, Range: 250, Horizon: 300,
	}
	analytic := m.Expected()
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += m.SampleDuration(rng)
	}
	mc := sum / n
	if math.Abs(analytic-mc) > 0.03*mc {
		t.Fatalf("Expected = %v, Monte Carlo = %v", analytic, mc)
	}
}

func TestSurvivalProbMonotone(t *testing.T) {
	m := LinkDurationModel{
		RelSpeed: Normal{Mu: 5, Sigma: 4},
		Gap:      0, Range: 250, Horizon: 600,
	}
	prev := 1.1
	for _, tt := range []float64{0, 1, 5, 20, 60, 200} {
		p := m.SurvivalProb(tt)
		if p < 0 || p > 1 {
			t.Fatalf("SurvivalProb(%v) = %v out of [0,1]", tt, p)
		}
		if p > prev+1e-9 {
			t.Fatalf("SurvivalProb not monotone at %v: %v > %v", tt, p, prev)
		}
		prev = p
	}
	if got := m.SurvivalProb(0); got != 1 {
		t.Fatalf("SurvivalProb(0) = %v for an up link", got)
	}
	broken := LinkDurationModel{RelSpeed: Normal{Mu: 0, Sigma: 1}, Gap: 400, Range: 250}
	if got := broken.SurvivalProb(0); got != 0 {
		t.Fatalf("SurvivalProb(0) = %v for a down link", got)
	}
}

func TestQuantileInvertsSurvival(t *testing.T) {
	m := LinkDurationModel{
		RelSpeed: Normal{Mu: 6, Sigma: 2},
		Gap:      20, Range: 250, Horizon: 600,
	}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		q := m.Quantile(p)
		if got := 1 - m.SurvivalProb(q); math.Abs(got-p) > 0.02 {
			t.Errorf("1-Survival(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestStabilityAliasesExpected(t *testing.T) {
	m := LinkDurationModel{
		RelSpeed: Normal{Mu: 3, Sigma: 2},
		Gap:      10, Range: 250,
	}
	if m.Stability() != m.Expected() {
		t.Fatal("Stability() must equal Expected() (the paper's naming)")
	}
}

func TestDefaultHorizon(t *testing.T) {
	m := LinkDurationModel{RelSpeed: Normal{Mu: 0, Sigma: 0.001}, Gap: 0, Range: 250}
	// with essentially zero relative speed the expectation approaches the
	// default 3600 s horizon
	if got := m.Expected(); got < 3000 {
		t.Fatalf("Expected = %v, want near default horizon", got)
	}
}
