package prob

import (
	"math"
	"math/rand"
	"testing"
)

func TestPairProb(t *testing.T) {
	s := SegmentConnectivity{Length: 1000, Density: 0.02, Range: 250}
	// P(gap ≤ 250) with λ=0.02: 1 - e^-5 ≈ 0.9933
	if got := s.PairProb(); math.Abs(got-(1-math.Exp(-5))) > 1e-12 {
		t.Fatalf("PairProb = %v", got)
	}
	if got := (SegmentConnectivity{Density: 0, Range: 250}).PairProb(); got != 0 {
		t.Fatalf("zero-density PairProb = %v", got)
	}
}

func TestProbEdgeCases(t *testing.T) {
	// segment shorter than the range is bridged directly
	short := SegmentConnectivity{Length: 200, Density: 0, Range: 250}
	if got := short.Prob(); got != 1 {
		t.Fatalf("short segment Prob = %v, want 1", got)
	}
	// long empty segment cannot be connected
	empty := SegmentConnectivity{Length: 2000, Density: 0.0001, Range: 250}
	if got := empty.Prob(); got != 0 {
		t.Fatalf("near-empty Prob = %v, want 0", got)
	}
}

func TestProbIncreasesWithDensity(t *testing.T) {
	prev := -1.0
	for _, lam := range []float64{0.004, 0.008, 0.016, 0.032, 0.064} {
		s := SegmentConnectivity{Length: 2000, Density: lam, Range: 250}
		p := s.Prob()
		if p < prev-1e-12 {
			t.Fatalf("Prob not increasing with density at λ=%v: %v < %v", lam, p, prev)
		}
		prev = p
	}
	if prev < 0.9 {
		t.Fatalf("dense segment Prob = %v, want ≈1", prev)
	}
}

func TestAnalyticNearMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, lam := range []float64{0.01, 0.02, 0.04} {
		s := SegmentConnectivity{Length: 1500, Density: lam, Range: 250}
		analytic := s.Prob()
		mc := s.MonteCarlo(4000, rng)
		// the analytic form is an approximation; require agreement within
		// 0.12 absolute, enough to rank road segments consistently
		if math.Abs(analytic-mc) > 0.12 {
			t.Errorf("λ=%v: analytic %v vs Monte Carlo %v", lam, analytic, mc)
		}
	}
}

func TestMonteCarloEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SegmentConnectivity{Length: 100, Density: 0.01, Range: 250}
	if got := s.MonteCarlo(100, rng); got != 1 {
		t.Fatalf("short-segment MC = %v, want 1", got)
	}
	if got := s.MonteCarlo(0, rng); got != 0 {
		t.Fatalf("zero-trials MC = %v", got)
	}
}

func TestConnectedChain(t *testing.T) {
	if !connectedChain([]float64{100, 200, 300}, 400, 150) {
		t.Error("chain with ≤150 m gaps reported disconnected")
	}
	if connectedChain([]float64{100, 300}, 400, 150) {
		t.Error("chain with 200 m gap reported connected")
	}
	if !connectedChain(nil, 100, 150) {
		t.Error("empty chain over short span reported disconnected")
	}
	if connectedChain(nil, 200, 150) {
		t.Error("empty chain over long span reported connected")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, mean := range []float64{0.5, 4, 30, 100} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += poisson(mean, rng)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*math.Max(mean, 1) {
			t.Errorf("poisson(%v) sample mean = %v", mean, got)
		}
	}
	if got := poisson(0, rng); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
}

func TestRouteConnectivity(t *testing.T) {
	segs := []SegmentConnectivity{
		{Length: 100, Density: 0.05, Range: 250},  // 1 (short)
		{Length: 2000, Density: 0.05, Range: 250}, // high
	}
	p := RouteConnectivity(segs)
	if p <= 0 || p > 1 {
		t.Fatalf("route connectivity = %v", p)
	}
	if p != segs[0].Prob()*segs[1].Prob() {
		t.Fatal("route connectivity is not the product of segments")
	}
}
