// Package prob implements the probability models the survey's Sec. VII
// protocols are built on: the standard distributions it lists for mobility
// parameters (speed and acceleration normally distributed, inter-vehicle
// gaps gamma/normal/log-normally distributed), link-duration models derived
// from them, receipt probability from log-normal shadowing (REAR), and
// road-segment connectivity probability (CAR).
package prob

import (
	"math"
	"math/rand"
)

// Dist is a one-dimensional probability distribution.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Mean returns the expected value.
	Mean() float64
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
}

// Normal is the N(Mu, Sigma²) distribution. The survey notes speed and
// acceleration are commonly modelled as normal.
type Normal struct {
	Mu, Sigma float64
}

var _ Dist = Normal{}

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Quantile returns the x with CDF(x) = p, via bisection on the CDF.
func (n Normal) Quantile(p float64) float64 {
	return quantileBisect(n, p, n.Mu-10*n.Sigma-1, n.Mu+10*n.Sigma+1)
}

// LogNormal is the distribution of exp(N(Mu, Sigma²)); the survey lists it
// for received signal strength and inter-vehicle distances.
type LogNormal struct {
	Mu, Sigma float64 // parameters of the underlying normal
}

var _ Dist = LogNormal{}

// PDF implements Dist.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 || l.Sigma <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-0.5*z*z) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Gamma is the Gamma(Shape k, Scale θ) distribution; the survey lists it
// for the distance between consecutive vehicles.
type Gamma struct {
	Shape, Scale float64
}

var _ Dist = Gamma{}

// PDF implements Dist.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 || g.Shape <= 0 || g.Scale <= 0 {
		return 0
	}
	if x == 0 {
		if g.Shape < 1 {
			return math.Inf(1)
		}
		if g.Shape == 1 {
			return 1 / g.Scale
		}
		return 0
	}
	k, th := g.Shape, g.Scale
	lg, _ := math.Lgamma(k)
	return math.Exp((k-1)*math.Log(x) - x/th - lg - k*math.Log(th))
}

// CDF implements Dist via the regularised lower incomplete gamma function.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.Shape, x/g.Scale)
}

// Mean implements Dist.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Sample implements Dist using the Marsaglia–Tsang method.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	k := g.Shape
	if k < 1 {
		// boost: Gamma(k) = Gamma(k+1) * U^(1/k)
		u := rng.Float64()
		return Gamma{Shape: k + 1, Scale: g.Scale}.Sample(rng) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * g.Scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * g.Scale
		}
	}
}

// Exponential is the Exp(Rate) distribution, used for Poisson traffic
// arrivals and as the free-flow headway model.
type Exponential struct {
	Rate float64
}

var _ Dist = Exponential{}

// PDF implements Dist.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 || e.Rate <= 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Mean implements Dist.
func (e Exponential) Mean() float64 {
	if e.Rate <= 0 {
		return math.Inf(1)
	}
	return 1 / e.Rate
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

var _ Dist = Uniform{}

// PDF implements Dist.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi || u.Hi <= u.Lo {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Dist.
func (u Uniform) CDF(x float64) float64 {
	if x <= u.Lo {
		return 0
	}
	if x >= u.Hi {
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// quantileBisect inverts a monotone CDF by bisection on [lo, hi].
func quantileBisect(d Dist, p, lo, hi float64) float64 {
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// regIncGammaLower computes P(a, x), the regularised lower incomplete gamma
// function, by series expansion for x < a+1 and continued fraction
// otherwise (Numerical Recipes style).
func regIncGammaLower(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// series
		sum := 1 / a
		term := sum
		ap := a
		for i := 0; i < 500; i++ {
			ap++
			term *= x / ap
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// continued fraction for Q(a,x), then P = 1 − Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
