package prob

import (
	"math"
	"math/rand"
)

// LinkDurationModel derives the distribution of a link's remaining lifetime
// from a probabilistic relative-speed model, the construction the survey
// describes for probability-model-based routing (Sec. VII-A): "speed and
// acceleration both are often assumed as normally distributed ... under
// these assumptions, the distribution of link lifetime can be developed."
//
// The kinematic core is the constant-speed solution of Eqn (4): with a
// signed gap d₀ (positive when the sender is ahead) and relative speed
// Δv = v_i − v_j, the link breaks after
//
//	T(Δv) = (r − d₀)/Δv   if Δv > 0   (sender pulls ahead)
//	T(Δv) = (r + d₀)/(−Δv) if Δv < 0  (sender falls behind)
//	T(0)  = ∞
//
// Uncertainty about Δv (estimation error, future speed changes) is
// expressed by the RelSpeed distribution; all summary statistics integrate
// T over it numerically.
type LinkDurationModel struct {
	// RelSpeed is the distribution of the relative speed Δv in m/s.
	RelSpeed Dist
	// Gap is the current signed axis distance d₀ in meters.
	Gap float64
	// Range is the communication range r in meters.
	Range float64
	// Horizon truncates the lifetime for statistics, keeping expectations
	// finite even though T(Δv→0) → ∞. Zero means 3600 s.
	Horizon float64
}

func (m LinkDurationModel) horizon() float64 {
	if m.Horizon <= 0 {
		return 3600
	}
	return m.Horizon
}

// Duration returns T(dv), the deterministic lifetime at relative speed dv,
// truncated to the horizon. A gap already outside the range yields 0.
func (m LinkDurationModel) Duration(dv float64) float64 {
	h := m.horizon()
	if math.Abs(m.Gap) > m.Range {
		return 0
	}
	var t float64
	switch {
	case dv > 0:
		t = (m.Range - m.Gap) / dv
	case dv < 0:
		t = (m.Range + m.Gap) / -dv
	default:
		return h
	}
	if t > h {
		return h
	}
	return t
}

// Expected returns E[min(T, horizon)], the "expected link duration" routing
// metric of the Yan ticket-probing protocol, integrating the deterministic
// lifetime over the relative-speed distribution with Simpson's rule.
func (m LinkDurationModel) Expected() float64 {
	return m.integrate(func(dv float64) float64 { return m.Duration(dv) })
}

// SurvivalProb returns P(T > t): the probability the link is still up after
// t seconds, the quantity GVGrid and NiuDe-style protocols threshold on.
func (m LinkDurationModel) SurvivalProb(t float64) float64 {
	if t <= 0 {
		if math.Abs(m.Gap) > m.Range {
			return 0
		}
		return 1
	}
	return m.integrate(func(dv float64) float64 {
		if m.Duration(dv) > t {
			return 1
		}
		return 0
	})
}

// Quantile returns the t with P(T ≤ t) = p, by bisection on SurvivalProb.
func (m LinkDurationModel) Quantile(p float64) float64 {
	lo, hi := 0.0, m.horizon()
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if 1-m.SurvivalProb(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// SampleDuration draws a lifetime variate: first a relative speed, then the
// deterministic lifetime at it.
func (m LinkDurationModel) SampleDuration(rng *rand.Rand) float64 {
	return m.Duration(m.RelSpeed.Sample(rng))
}

// integrate computes E[f(Δv)] over the relative-speed density with a
// composite Simpson rule over ±8σ-ish support. For distributions without a
// finite PDF support hint the integration window is found by scanning the
// CDF.
func (m LinkDurationModel) integrate(f func(dv float64) float64) float64 {
	d := m.RelSpeed
	lo := quantileBisect(d, 1e-6, -1e4, 1e4)
	hi := quantileBisect(d, 1-1e-6, -1e4, 1e4)
	if hi <= lo {
		return f(d.Mean())
	}
	const n = 400 // even
	h := (hi - lo) / n
	sum := f(lo)*d.PDF(lo) + f(hi)*d.PDF(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		sum += w * f(x) * d.PDF(x)
	}
	val := sum * h / 3
	// Normalise by the captured probability mass so truncation of the
	// tails does not bias the expectation.
	mass := d.CDF(hi) - d.CDF(lo)
	if mass <= 0 {
		return f(d.Mean())
	}
	return val / mass
}

// Stability is the TBP-SS routing metric: the mean link duration under the
// model, i.e. Expected() — exposed under the paper's name ("the routing
// metric is the mean link duration (defined as stability)").
func (m LinkDurationModel) Stability() float64 { return m.Expected() }
